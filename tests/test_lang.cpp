// Tests for the ISPC-like kernel language: lexer, parser, semantic
// checks, code generation semantics, vectorization-shape selection, and
// interoperability with the detector passes and the fault injector.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/foreach_detector.hpp"
#include "detect/uniform_detector.hpp"
#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "spmd/kernel_builder.hpp"
#include "spmd/lang/compiler.hpp"
#include "spmd/lang/lexer.hpp"
#include "spmd/lang/parser.hpp"
#include "vulfi/driver.hpp"

namespace vulfi::spmd::lang {
namespace {

using interp::RtVal;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesKernelHeader) {
  const LexResult result = lex("kernel f(uniform float a[], uniform int n)");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result.tokens.size(), 13u);
  EXPECT_EQ(result.tokens[0].kind, TokKind::Identifier);
  EXPECT_EQ(result.tokens[0].text, "kernel");
  EXPECT_EQ(result.tokens[2].kind, TokKind::LParen);
}

TEST(Lexer, EllipsisVersusFloat) {
  const LexResult result = lex("0 ... n 1.5 2e3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.tokens[0].kind, TokKind::IntLiteral);
  EXPECT_EQ(result.tokens[1].kind, TokKind::Ellipsis);
  EXPECT_EQ(result.tokens[3].kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(result.tokens[3].float_value, 1.5);
  EXPECT_EQ(result.tokens[4].kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(result.tokens[4].float_value, 2000.0);
}

TEST(Lexer, CompoundOperatorsAndComments) {
  const LexResult result = lex("a += b; // trailing comment\nc <= d");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.tokens[1].kind, TokKind::PlusAssign);
  EXPECT_EQ(result.tokens[5].kind, TokKind::LessEq);
}

TEST(Lexer, ReportsUnknownCharacters) {
  const LexResult result = lex("a $ b");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.errors.front().find("unexpected character"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(LangParser, ParsesForeachKernel) {
  const auto result = parse_program(
      "kernel copy(uniform float a[], uniform float b[], uniform int n) {\n"
      "  foreach (i = 0 ... n) { b[i] = a[i]; }\n"
      "}\n");
  ASSERT_TRUE(result.ok()) << (result.errors.empty()
                                   ? std::string()
                                   : result.errors.front());
  ASSERT_EQ(result.program->kernels.size(), 1u);
  const Kernel& kernel = *result.program->kernels[0];
  EXPECT_EQ(kernel.name, "copy");
  ASSERT_EQ(kernel.params.size(), 3u);
  EXPECT_TRUE(kernel.params[0].is_array);
  EXPECT_FALSE(kernel.params[2].is_array);
  ASSERT_EQ(kernel.body.size(), 1u);
  EXPECT_EQ(kernel.body[0]->kind, StmtKind::Foreach);
}

TEST(LangParser, RejectsMalformedFor) {
  const auto result = parse_program(
      "kernel f(uniform int n) {\n"
      "  for (uniform int k = 0; n > k; k++) { }\n"  // cond must be k < n
      "}\n");
  EXPECT_FALSE(result.ok());
}

TEST(LangParser, OperatorPrecedence) {
  const auto result = parse_program(
      "kernel f(uniform float o[], uniform float a, uniform float b,"
      " uniform float c) {\n"
      "  o[0] = a + b * c;\n"
      "}\n");
  ASSERT_TRUE(result.ok());
  const Stmt& assign = *result.program->kernels[0]->body[0];
  const Expr& rhs = *assign.value;
  ASSERT_EQ(rhs.kind, ExprKind::Binary);
  EXPECT_EQ(rhs.binary_op, BinaryOp::Add);               // + at the top
  EXPECT_EQ(rhs.children[1]->binary_op, BinaryOp::Mul);  // * below
}

// ---------------------------------------------------------------------------
// Compilation + execution
// ---------------------------------------------------------------------------

struct Compiled {
  std::unique_ptr<ir::Module> module;
  ir::Function* fn;
};

Compiled must_compile(const std::string& source, const Target& target,
                      const std::string& kernel_name) {
  CompileResult result = compile_program(source, target);
  EXPECT_TRUE(result.ok()) << (result.errors.empty()
                                   ? std::string("no module")
                                   : result.errors.front());
  Compiled out;
  out.module = std::move(result.module);
  out.fn = out.module ? out.module->find_function(kernel_name) : nullptr;
  return out;
}

TEST(LangCompile, SaxpyMatchesScalarReference) {
  const std::string source =
      "kernel saxpy(uniform float x[], uniform float y[], uniform int n,\n"
      "             uniform float a) {\n"
      "  foreach (i = 0 ... n) {\n"
      "    y[i] = a * x[i] + y[i];\n"
      "  }\n"
      "}\n";
  for (const Target& target : {Target::avx(), Target::sse4()}) {
    Compiled compiled = must_compile(source, target, "saxpy");
    ASSERT_NE(compiled.fn, nullptr);

    const int n = 29;
    interp::Arena arena;
    const std::uint64_t x = arena.alloc(n * 4, "x");
    const std::uint64_t y = arena.alloc(n * 4, "y");
    for (int i = 0; i < n; ++i) {
      arena.write<float>(x + i * 4u, static_cast<float>(i));
      arena.write<float>(y + i * 4u, 100.0f - i);
    }
    interp::RuntimeEnv env;
    interp::Interpreter interp(arena, env);
    const auto result = interp.run(
        *compiled.fn, {RtVal::ptr(x), RtVal::ptr(y), RtVal::i32(n),
                       RtVal::f32(1.5f)});
    ASSERT_TRUE(result.ok()) << result.trap.detail;
    for (int i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(arena.read<float>(y + i * 4u),
                      1.5f * i + (100.0f - i))
          << target.name() << " i=" << i;
    }
  }
}

TEST(LangCompile, DotProductReductionSugar) {
  const std::string source =
      "kernel dot(uniform float a[], uniform float b[],\n"
      "           uniform float out[], uniform int n) {\n"
      "  uniform float sum = 0.0;\n"
      "  foreach (i = 0 ... n) {\n"
      "    sum += a[i] * b[i];\n"
      "  }\n"
      "  out[0] = sum;\n"
      "}\n";
  const Target target = Target::avx();
  Compiled compiled = must_compile(source, target, "dot");
  ASSERT_NE(compiled.fn, nullptr);

  const int n = 21;
  interp::Arena arena;
  const std::uint64_t a = arena.alloc(n * 4, "a");
  const std::uint64_t b = arena.alloc(n * 4, "b");
  const std::uint64_t out = arena.alloc(4, "out");
  std::vector<float> partial(8, 0.0f);
  for (int i = 0; i < n; ++i) {
    const float av = 0.5f + i;
    const float bv = 2.0f - 0.1f * i;
    arena.write<float>(a + i * 4u, av);
    arena.write<float>(b + i * 4u, bv);
    partial[i % 8] += av * bv;
  }
  float expected = partial[0];
  for (int lane = 1; lane < 8; ++lane) expected += partial[lane];

  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*compiled.fn, {RtVal::ptr(a), RtVal::ptr(b),
                                        RtVal::ptr(out), RtVal::i32(n)})
                  .ok());
  EXPECT_FLOAT_EQ(arena.read<float>(out), expected);
}

TEST(LangCompile, StencilOffsetsAndForLoop) {
  const std::string source =
      "kernel smooth(uniform float in[], uniform float out[],\n"
      "              uniform int n, uniform int steps) {\n"
      "  for (uniform int t = 0; t < steps; t++) {\n"
      "    foreach (i = 1 ... n - 1) {\n"
      "      out[i] = 0.25 * in[i - 1] + 0.5 * in[i] + 0.25 * in[i + 1];\n"
      "    }\n"
      "  }\n"
      "}\n";
  const Target target = Target::sse4();
  Compiled compiled = must_compile(source, target, "smooth");
  ASSERT_NE(compiled.fn, nullptr);

  const int n = 14;
  interp::Arena arena;
  const std::uint64_t in = arena.alloc(n * 4, "in");
  const std::uint64_t out = arena.alloc(n * 4, "out");
  for (int i = 0; i < n; ++i) {
    arena.write<float>(in + i * 4u, static_cast<float>(i * i));
    arena.write<float>(out + i * 4u, 0.0f);
  }
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*compiled.fn, {RtVal::ptr(in), RtVal::ptr(out),
                                        RtVal::i32(n), RtVal::i32(1)})
                  .ok());
  for (int i = 1; i + 1 < n; ++i) {
    const float expected = 0.25f * ((i - 1) * (i - 1)) + 0.5f * (i * i) +
                           0.25f * ((i + 1) * (i + 1));
    EXPECT_NEAR(arena.read<float>(out + i * 4u), expected, 1e-4f) << i;
  }
}

TEST(LangCompile, ChebyshevStyleCarriedForInsideForeach) {
  // Loop-carried varying values inside foreach (the chebyshev pattern),
  // with a uniform coefficient load broadcast per step.
  const std::string source =
      "kernel cheb(uniform float x[], uniform float c[],\n"
      "            uniform float out[], uniform int n, uniform int d) {\n"
      "  foreach (i = 0 ... n) {\n"
      "    float t0 = 1.0;\n"
      "    float t1 = x[i];\n"
      "    float acc = c[0] * t0 + c[1] * t1;\n"
      "    for (uniform int k = 2; k < d + 1; k++) {\n"
      "      float t2 = 2.0 * x[i] * t1 - t0;\n"
      "      acc += c[k] * t2;\n"
      "      t0 = t1;\n"
      "      t1 = t2;\n"
      "    }\n"
      "    out[i] = acc;\n"
      "  }\n"
      "}\n";
  const Target target = Target::avx();
  Compiled compiled = must_compile(source, target, "cheb");
  ASSERT_NE(compiled.fn, nullptr);

  const int n = 11, degree = 6;
  interp::Arena arena;
  const std::uint64_t x = arena.alloc(n * 4, "x");
  const std::uint64_t c = arena.alloc((degree + 1) * 4, "c");
  const std::uint64_t out = arena.alloc(n * 4, "out");
  for (int i = 0; i < n; ++i) {
    arena.write<float>(x + i * 4u, -1.0f + 0.2f * i);
  }
  for (int k = 0; k <= degree; ++k) {
    arena.write<float>(c + k * 4u, 0.3f - 0.05f * k);
  }
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*compiled.fn,
                         {RtVal::ptr(x), RtVal::ptr(c), RtVal::ptr(out),
                          RtVal::i32(n), RtVal::i32(degree)})
                  .ok());
  for (int i = 0; i < n; ++i) {
    const float xv = -1.0f + 0.2f * i;
    float t0 = 1.0f, t1 = xv;
    float acc = 0.3f + (0.3f - 0.05f) * xv;
    for (int k = 2; k <= degree; ++k) {
      const float t2 = 2.0f * xv * t1 - t0;
      acc += (0.3f - 0.05f * k) * t2;
      t0 = t1;
      t1 = t2;
    }
    EXPECT_NEAR(arena.read<float>(out + i * 4u), acc, 1e-4f) << i;
  }
}

TEST(LangCompile, GatherScatterForGeneralIndices) {
  const std::string source =
      "kernel reverse(uniform int in[], uniform int out[], uniform int n) {\n"
      "  foreach (i = 0 ... n) {\n"
      "    out[n - 1 - i] = in[i];\n"
      "  }\n"
      "}\n";
  const Target target = Target::avx();
  Compiled compiled = must_compile(source, target, "reverse");
  ASSERT_NE(compiled.fn, nullptr);
  // The store index (n-1-i) is varying and non-affine in our classifier:
  // it must lower to a scatter.
  const std::string text = ir::to_string(*compiled.fn);
  EXPECT_NE(text.find("scatter_lane"), std::string::npos) << text;

  const int n = 13;
  interp::Arena arena;
  const std::uint64_t in = arena.alloc(n * 4, "in");
  const std::uint64_t out = arena.alloc(n * 4, "out");
  for (int i = 0; i < n; ++i) {
    arena.write<std::int32_t>(in + i * 4u, i * 7);
  }
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*compiled.fn, {RtVal::ptr(in), RtVal::ptr(out),
                                        RtVal::i32(n)})
                  .ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(arena.read<std::int32_t>(out + (n - 1 - i) * 4u), i * 7);
  }
}

TEST(LangCompile, TernarySelectsPerLane) {
  const std::string source =
      "kernel clampit(uniform float a[], uniform int n, uniform float lo) {\n"
      "  foreach (i = 0 ... n) {\n"
      "    a[i] = a[i] < lo ? lo : a[i];\n"
      "  }\n"
      "}\n";
  const Target target = Target::avx();
  Compiled compiled = must_compile(source, target, "clampit");
  ASSERT_NE(compiled.fn, nullptr);

  const int n = 10;
  interp::Arena arena;
  const std::uint64_t a = arena.alloc(n * 4, "a");
  for (int i = 0; i < n; ++i) {
    arena.write<float>(a + i * 4u, static_cast<float>(i) - 5.0f);
  }
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(
      interp.run(*compiled.fn, {RtVal::ptr(a), RtVal::i32(n), RtVal::f32(0.0f)})
          .ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(arena.read<float>(a + i * 4u),
                    std::fmax(static_cast<float>(i) - 5.0f, 0.0f));
  }
}

TEST(LangCompile, MultiDimensionalForeach) {
  // Paper footnote 4: foreach with more than one dimension variable.
  const std::string source =
      "kernel transpose_add(uniform float g[], uniform int w,\n"
      "                     uniform int h, uniform float bias) {\n"
      "  foreach (y = 0 ... h, x = 0 ... w) {\n"
      "    g[y * w + x] = g[y * w + x] + bias + float(y);\n"
      "  }\n"
      "}\n";
  const Target target = Target::avx();
  Compiled compiled = must_compile(source, target, "transpose_add");
  ASSERT_NE(compiled.fn, nullptr);

  const int w = 11, h = 5;
  interp::Arena arena;
  const std::uint64_t g = arena.alloc(w * h * 4, "g");
  for (int i = 0; i < w * h; ++i) {
    arena.write<float>(g + i * 4u, static_cast<float>(i));
  }
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*compiled.fn,
                         {RtVal::ptr(g), RtVal::i32(w), RtVal::i32(h),
                          RtVal::f32(0.5f)})
                  .ok());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int i = y * w + x;
      EXPECT_FLOAT_EQ(arena.read<float>(g + i * 4u),
                      static_cast<float>(i) + 0.5f + static_cast<float>(y))
          << "y=" << y << " x=" << x;
    }
  }
  // The inner dimension vectorized: exactly one foreach loop exists.
  EXPECT_EQ(detect::find_foreach_loops(*compiled.fn).size(), 1u);
}

// ---------------------------------------------------------------------------
// Semantic errors
// ---------------------------------------------------------------------------

TEST(LangSema, RejectsVaryingDeclOutsideForeach) {
  const auto result = compile_program(
      "kernel f(uniform int n) { float x = 1.0; }", Target::avx());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.errors.front().find("foreach"), std::string::npos);
}

TEST(LangSema, RejectsNonAddUniformUpdateInForeach) {
  const auto result = compile_program(
      "kernel f(uniform float a[], uniform int n) {\n"
      "  uniform float m = 0.0;\n"
      "  foreach (i = 0 ... n) { m = a[i]; }\n"
      "}\n",
      Target::avx());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.errors.front().find("+="), std::string::npos);
}

TEST(LangSema, RejectsNestedForeach) {
  const auto result = compile_program(
      "kernel f(uniform int n) {\n"
      "  foreach (i = 0 ... n) { foreach (j = 0 ... n) { } }\n"
      "}\n",
      Target::avx());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.errors.front().find("nest"), std::string::npos);
}

TEST(LangSema, RejectsVaryingForeachBounds) {
  const auto result = compile_program(
      "kernel f(uniform int idx[], uniform int n) {\n"
      "  foreach (i = 0 ... n) {\n"
      "    for (uniform int k = 0; k < idx[i]; k++) { }\n"
      "  }\n"
      "}\n",
      Target::avx());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.errors.front().find("uniform"), std::string::npos);
}

TEST(LangSema, RejectsUndeclaredNames) {
  const auto result = compile_program(
      "kernel f(uniform int n) { uniform int x = mystery; }", Target::avx());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.errors.front().find("undeclared"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Interop: detectors and fault injection on compiled kernels
// ---------------------------------------------------------------------------

TEST(LangInterop, CompiledForeachMatchesDetectorPattern) {
  Compiled compiled = must_compile(
      "kernel copy(uniform float a[], uniform float b[], uniform int n) {\n"
      "  foreach (i = 0 ... n) { b[i] = a[i]; }\n"
      "}\n",
      Target::avx(), "copy");
  ASSERT_NE(compiled.fn, nullptr);
  // The compiled foreach has the Figure-7 shape the detector pass
  // recognizes.
  const auto loops = detect::find_foreach_loops(*compiled.fn);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].vl, 8u);
  EXPECT_EQ(detect::insert_foreach_detectors(*compiled.fn), 1u);
  EXPECT_TRUE(ir::verify(*compiled.module).empty());
}

TEST(LangInterop, UniformBroadcastsAreDetectable) {
  Compiled compiled = must_compile(
      "kernel scale(uniform float a[], uniform int n, uniform float f) {\n"
      "  foreach (i = 0 ... n) { a[i] = f * a[i]; }\n"
      "}\n",
      Target::avx(), "scale");
  ASSERT_NE(compiled.fn, nullptr);
  EXPECT_GE(detect::find_broadcasts(*compiled.fn).size(), 1u);
}

TEST(LangInterop, CompiledKernelSurvivesFaultInjection) {
  CompileResult compiled = compile_program(
      "kernel square(uniform float a[], uniform int n) {\n"
      "  foreach (i = 0 ... n) { a[i] = a[i] * a[i]; }\n"
      "}\n",
      Target::avx());
  ASSERT_TRUE(compiled.ok());

  RunSpec spec;
  spec.module = std::move(compiled.module);
  spec.entry = spec.module->find_function("square");
  const int n = 19;
  const std::uint64_t a = spec.arena.alloc(n * 4, "a");
  for (int i = 0; i < n; ++i) {
    spec.arena.write<float>(a + i * 4u, 1.0f + i);
  }
  spec.args = {RtVal::ptr(a), RtVal::i32(n)};
  spec.output_regions = {"a"};

  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(61);
  unsigned sdc = 0;
  for (int i = 0; i < 40; ++i) {
    if (engine.run_experiment(rng).outcome == Outcome::SDC) sdc += 1;
  }
  EXPECT_GT(sdc, 20u);
}

// ---------------------------------------------------------------------------
// KernelBuilder misuse diagnostics
//
// Malformed builder usage — the shapes the random kernel generator probes
// (src/fuzz) — must record a diagnostic and fail finish(), never abort.
// ---------------------------------------------------------------------------

TEST(BuilderDiagnostics, CarriedCountMismatchIsDiagnosed) {
  ir::Module module("neg");
  KernelBuilder kb(module, Target::avx(), "bad_carried",
                   {ir::Type::ptr(), ir::Type::i32()});
  kb.foreach_reduce(
      kb.b().i32_const(0), kb.arg(1), {kb.vconst_f32(0.0f)},
      [](ForeachCtx&, const std::vector<ir::Value*>&)
          -> std::vector<ir::Value*> { return {}; });
  EXPECT_FALSE(kb.ok());
  EXPECT_FALSE(kb.finish());
  ASSERT_FALSE(kb.errors().empty());
  EXPECT_NE(kb.errors().front().find("carried"), std::string::npos);
}

TEST(BuilderDiagnostics, TypedMaskInFullBodyIsDiagnosed) {
  ir::Module module("neg");
  KernelBuilder kb(module, Target::avx(), "bad_mask",
                   {ir::Type::ptr(), ir::Type::i32()});
  kb.foreach_loop(kb.b().i32_const(0), kb.arg(1), [&](ForeachCtx& ctx) {
    if (!ctx.partial()) {
      // Misuse: the full body has no execution mask.
      ir::Value* mask = ctx.typed_mask(ir::Type::f32());
      ASSERT_NE(mask, nullptr);  // safe placeholder, not a crash
    }
  });
  EXPECT_FALSE(kb.finish());
  ASSERT_FALSE(kb.errors().empty());
  EXPECT_NE(kb.errors().front().find("full body"), std::string::npos);
}

TEST(BuilderDiagnostics, ScalarStoreThroughVaryingApiIsDiagnosed) {
  ir::Module module("neg");
  KernelBuilder kb(module, Target::avx(), "bad_store",
                   {ir::Type::ptr(), ir::Type::i32()});
  kb.foreach_loop(kb.b().i32_const(0), kb.arg(1), [&](ForeachCtx& ctx) {
    // Misuse: the varying-store API fed a uniform scalar.
    ctx.store(kb.b().f32_const(1.0f), kb.arg(0));
  });
  EXPECT_FALSE(kb.finish());
  ASSERT_FALSE(kb.errors().empty());
  EXPECT_NE(kb.errors().front().find("varying"), std::string::npos);
}

TEST(BuilderDiagnostics, ZeroTripLoopsAreDiagnosed) {
  ir::Module module("neg");
  KernelBuilder kb(module, Target::avx(), "bad_trip",
                   {ir::Type::ptr(), ir::Type::i32()});
  // Constant empty interval [5, 5) — and a constant-reversed scalar loop.
  kb.foreach_loop(kb.b().i32_const(5), kb.b().i32_const(5),
                  [](ForeachCtx&) { FAIL() << "body must not run"; });
  kb.scalar_loop(kb.b().i32_const(3), kb.b().i32_const(1), {},
                 [](ir::Value*, const std::vector<ir::Value*>&)
                     -> std::vector<ir::Value*> {
                   ADD_FAILURE() << "body must not run";
                   return {};
                 });
  EXPECT_FALSE(kb.finish());
  ASSERT_EQ(kb.errors().size(), 2u);
  EXPECT_NE(kb.errors()[0].find("zero-trip"), std::string::npos);
  EXPECT_NE(kb.errors()[1].find("zero-trip"), std::string::npos);
}

TEST(BuilderDiagnostics, MaskedForeachNestingIsDiagnosed) {
  ir::Module module("neg");
  KernelBuilder kb(module, Target::sse4(), "bad_nesting",
                   {ir::Type::ptr(), ir::Type::i32()});
  kb.foreach_loop(kb.b().i32_const(0), kb.arg(1), [&](ForeachCtx& ctx) {
    if (ctx.partial()) {
      // Misuse: a foreach inside the masked remainder would execute
      // lanes the outer mask disabled.
      kb.foreach_loop(kb.b().i32_const(0), kb.arg(1), [](ForeachCtx&) {
        FAIL() << "nested foreach body must not run";
      });
    }
  });
  EXPECT_FALSE(kb.finish());
  ASSERT_FALSE(kb.errors().empty());
  EXPECT_NE(kb.errors().front().find("mask nesting"), std::string::npos);
}

TEST(BuilderDiagnostics, CleanUsageStillVerifies) {
  ir::Module module("pos");
  KernelBuilder kb(module, Target::avx(), "good",
                   {ir::Type::ptr(), ir::Type::i32()});
  kb.foreach_loop(kb.b().i32_const(0), kb.arg(1), [&](ForeachCtx& ctx) {
    ctx.store(ctx.load(ir::Type::f32(), kb.arg(0)), kb.arg(0));
  });
  EXPECT_TRUE(kb.ok());
  EXPECT_TRUE(kb.finish());
  EXPECT_TRUE(kb.errors().empty());
}

}  // namespace
}  // namespace vulfi::spmd::lang
