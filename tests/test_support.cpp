// Unit tests for the support library: RNG, statistics, bit utilities,
// string formatting, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/bits.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace vulfi {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) same += 1;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.next_below(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) same += 1;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, JumpChangesSequence) {
  Rng a(29), b(29);
  b.jump();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBoolRespectsProbabilityExtremes) {
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// ---------------------------------------------------------------------------
// Counter-based stream derivation (parallel campaign seeding)
// ---------------------------------------------------------------------------

TEST(DeriveStreamSeed, SamePairYieldsSameStream) {
  const std::uint64_t seed = derive_stream_seed(0x5eed, 3, 17);
  EXPECT_EQ(seed, derive_stream_seed(0x5eed, 3, 17));
  Rng a(seed), b(derive_stream_seed(0x5eed, 3, 17));
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(DeriveStreamSeed, DistinctPairsYieldDistinctSeeds) {
  // Every (campaign, experiment) coordinate over a campaign-shaped grid
  // must get its own seed — a collision would make two experiments of one
  // run identical twins.
  std::set<std::uint64_t> seeds;
  constexpr std::uint64_t kCampaigns = 64;
  constexpr std::uint64_t kExperiments = 128;
  for (std::uint64_t c = 0; c < kCampaigns; ++c) {
    for (std::uint64_t e = 0; e < kExperiments; ++e) {
      seeds.insert(derive_stream_seed(0x5eed, c, e));
    }
  }
  EXPECT_EQ(seeds.size(), kCampaigns * kExperiments);
}

TEST(DeriveStreamSeed, CoordinatesAreNotInterchangeable) {
  // (c, e) and (e, c) live in different streams even though the words are
  // numerically equal — each input is absorbed by its own mixing round.
  EXPECT_NE(derive_stream_seed(1, 2, 5), derive_stream_seed(1, 5, 2));
  EXPECT_NE(derive_stream_seed(1, 0, 7), derive_stream_seed(1, 7, 0));
}

TEST(DeriveStreamSeed, MasterSeedSeparatesRuns) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t master = 0; master < 32; ++master) {
    seeds.insert(derive_stream_seed(master, 0, 0));
  }
  EXPECT_EQ(seeds.size(), 32u);
}

TEST(DeriveStreamSeed, DerivedStreamsAreIndependent) {
  // Neighbouring experiments must not produce correlated xoshiro output.
  Rng a(derive_stream_seed(0x5eed, 0, 0));
  Rng b(derive_stream_seed(0x5eed, 0, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) same += 1;
  }
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------------------
// OnlineStats and inference machinery
// ---------------------------------------------------------------------------

TEST(Stats, MeanAndVarianceKnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Stats, EmptyAndSingleSampleSafe) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.std_error(), 0.0);
}

TEST(Stats, SkewnessOfSymmetricDataIsZero) {
  OnlineStats s;
  for (double x : {-2.0, -1.0, 0.0, 1.0, 2.0}) s.add(x);
  EXPECT_NEAR(s.skewness(), 0.0, 1e-12);
}

TEST(Stats, SkewnessSignMatchesTail) {
  OnlineStats right;
  for (double x : {1.0, 1.0, 1.0, 1.0, 10.0}) right.add(x);
  EXPECT_GT(right.skewness(), 0.0);
}

TEST(Stats, StudentsTCriticalMatchesTables) {
  // Classic two-sided 95% critical values.
  EXPECT_NEAR(students_t_critical(0.95, 19), 2.093, 0.002);
  EXPECT_NEAR(students_t_critical(0.95, 9), 2.262, 0.002);
  EXPECT_NEAR(students_t_critical(0.99, 19), 2.861, 0.003);
  EXPECT_NEAR(students_t_critical(0.95, 1), 12.706, 0.05);
  // Converges to the normal quantile for large df.
  EXPECT_NEAR(students_t_critical(0.95, 100000), 1.960, 0.002);
}

TEST(Stats, MarginOfErrorMatchesHandComputation) {
  OnlineStats s;
  for (int i = 0; i < 20; ++i) s.add(i % 2 == 0 ? 0.40 : 0.44);
  // s = 0.02 (about), se = s/sqrt(20), moe = t(0.95,19) * se.
  const double expected =
      students_t_critical(0.95, 19) * s.stddev() / std::sqrt(20.0);
  EXPECT_NEAR(margin_of_error(s, 0.95), expected, 1e-12);
}

TEST(Stats, MarginOfErrorInfiniteForTinySamples) {
  OnlineStats s;
  s.add(0.5);
  EXPECT_TRUE(std::isinf(margin_of_error(s, 0.95)));
}

TEST(Stats, JarqueBeraAcceptsUniformishRejectsSpike) {
  Rng rng(37);
  OnlineStats normalish;
  // Sum of 12 uniforms is approximately normal (Irwin–Hall).
  for (int i = 0; i < 400; ++i) {
    double sum = 0;
    for (int k = 0; k < 12; ++k) sum += rng.next_double();
    normalish.add(sum);
  }
  EXPECT_TRUE(near_normal(normalish));

  OnlineStats spike;
  for (int i = 0; i < 400; ++i) spike.add(i == 0 ? 100.0 : 0.0);
  EXPECT_FALSE(near_normal(spike));
}

TEST(Stats, RegIncompleteBetaBoundsAndSymmetry) {
  EXPECT_DOUBLE_EQ(reg_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(reg_incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  const double x = 0.3;
  EXPECT_NEAR(reg_incomplete_beta(2.5, 4.0, x),
              1.0 - reg_incomplete_beta(4.0, 2.5, 1.0 - x), 1e-10);
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(reg_incomplete_beta(1.0, 1.0, 0.42), 0.42, 1e-10);
}

TEST(Stats, SummarizeMatchesManualAccumulation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const OnlineStats s = summarize(xs);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

// ---------------------------------------------------------------------------
// bits
// ---------------------------------------------------------------------------

TEST(Bits, FlipIsAnInvolution) {
  const float f = 3.14159f;
  const double d = -2.71828;
  for (unsigned bit = 0; bit < 32; ++bit) {
    EXPECT_EQ(flip_bit(flip_bit(f, bit), bit), f);
  }
  for (unsigned bit = 0; bit < 64; ++bit) {
    EXPECT_EQ(flip_bit(flip_bit(d, bit), bit), d);
  }
}

TEST(Bits, FlipChangesExactlyOneBit) {
  const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
  for (unsigned bit = 0; bit < 64; ++bit) {
    EXPECT_EQ(__builtin_popcountll(v ^ flip_bit(v, bit)), 1);
  }
}

TEST(Bits, FloatSignFlip) {
  EXPECT_EQ(flip_bit(1.0f, 31), -1.0f);
  EXPECT_EQ(flip_bit(-8.0, 63), 8.0);
}

TEST(Bits, FlipInWidthStaysInWidth) {
  for (unsigned width : {1u, 8u, 16u, 32u, 64u}) {
    for (unsigned bit = 0; bit < 70; ++bit) {
      const std::uint64_t flipped = flip_bit_in_width(0, bit, width);
      if (width < 64) {
        EXPECT_LT(flipped, std::uint64_t{1} << width);
      }
      EXPECT_EQ(__builtin_popcountll(flipped), 1);
    }
  }
}

// ---------------------------------------------------------------------------
// str / table
// ---------------------------------------------------------------------------

TEST(Str, Strf) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(Str, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(108000), "108,000");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Str, Pct) {
  EXPECT_EQ(pct(0.4235), "42.35%");
  EXPECT_EQ(pct(1.0, 0), "100%");
  EXPECT_EQ(pct(0.08, 1), "8.0%");
}

TEST(Str, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Table, RendersAlignedColumnsWithRule) {
  TextTable table({"Name", "Value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Name    Value"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  TextTable table({"a", "b"});
  table.add_row({"has,comma", "has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

// Property-style sweep: margin of error shrinks as 1/sqrt(n).
class MarginSweep : public ::testing::TestWithParam<int> {};

TEST_P(MarginSweep, MarginShrinksWithSampleCount) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  OnlineStats small_sample, big_sample;
  for (int i = 0; i < n; ++i) small_sample.add(rng.next_double());
  for (int i = 0; i < n * 4; ++i) big_sample.add(rng.next_double());
  EXPECT_LT(margin_of_error(big_sample, 0.95),
            margin_of_error(small_sample, 0.95));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MarginSweep,
                         ::testing::Values(8, 16, 32, 64, 128));

}  // namespace
}  // namespace vulfi
