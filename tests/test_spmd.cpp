// Unit tests for the SPMD lowering layer: the Figure-7 foreach CFG shape,
// trip-count correctness across a parameter sweep, uniform broadcast,
// reductions, gathers/scatters, and scalar loops.
#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "spmd/kernel_builder.hpp"

namespace vulfi::spmd {
namespace {

using interp::RtVal;
using ir::Type;
using ir::Value;

/// Builds "iota with offset": out[i] = i + 100 for i in [0, n).
struct IotaKernel {
  std::unique_ptr<ir::Module> module;
  ir::Function* fn;

  explicit IotaKernel(const Target& target) {
    module = std::make_unique<ir::Module>("iota");
    KernelBuilder kb(*module, target, "iota",
                     {Type::ptr(), Type::i32()});
    Value* out = kb.arg(0);
    Value* n = kb.arg(1);
    kb.foreach_loop(kb.b().i32_const(0), n, [&](ForeachCtx& ctx) {
      Value* val =
          ctx.b().add(ctx.index(), kb.vconst_i32(100), "val");
      ctx.store(val, out);
    });
    kb.finish();
    fn = module->find_function("iota");
  }
};

// ---------------------------------------------------------------------------
// Structural shape (paper Figure 7)
// ---------------------------------------------------------------------------

TEST(ForeachShape, HasFigure7Blocks) {
  IotaKernel kernel(Target::avx());
  std::vector<std::string> names;
  for (const auto& block : *kernel.fn) names.push_back(block->name());
  auto has = [&](const std::string& name) {
    for (const auto& n : names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("allocas"));
  EXPECT_TRUE(has("foreach_full_body.lr.ph"));
  EXPECT_TRUE(has("foreach_full_body"));
  EXPECT_TRUE(has("partial_inner_all_outer"));
  EXPECT_TRUE(has("partial_inner_only"));
  EXPECT_TRUE(has("foreach_reset"));
}

TEST(ForeachShape, AllocasComputesNextrasAndAlignedEnd) {
  // Figure 7: %nextras = srem i32 %n, 8 ; %aligned_end = sub i32 %n, %nextras
  IotaKernel kernel(Target::avx());
  const std::string text = ir::to_string(*kernel.fn);
  EXPECT_NE(text.find("%nextras = srem i32 %n_total, 8"), std::string::npos)
      << text;
  EXPECT_NE(text.find("%aligned_end = sub i32 %n_total, %nextras"),
            std::string::npos);
  EXPECT_NE(text.find("%new_counter = add i32 %counter, 8"),
            std::string::npos);
}

TEST(ForeachShape, SseUsesWidthFour) {
  IotaKernel kernel(Target::sse4());
  const std::string text = ir::to_string(*kernel.fn);
  EXPECT_NE(text.find("%nextras = srem i32 %n_total, 4"), std::string::npos);
  EXPECT_NE(text.find("%new_counter = add i32 %counter, 4"),
            std::string::npos);
}

TEST(ForeachShape, PartialBodyUsesMaskedIntrinsicsAndMovmsk) {
  IotaKernel kernel(Target::avx());
  const std::string text = ir::to_string(*kernel.fn);
  EXPECT_NE(text.find("@vulfi.x86.avx.maskstore.d.256"), std::string::npos)
      << text;
  EXPECT_NE(text.find("@vulfi.x86.avx.movmsk.ps.256"), std::string::npos);
  // The execution-mask register of Figure 5.
  EXPECT_NE(text.find("%floatmask.i"), std::string::npos);
}

TEST(ForeachShape, CounterPhiInFullBody) {
  IotaKernel kernel(Target::avx());
  const ir::BasicBlock* full = nullptr;
  for (const auto& block : *kernel.fn) {
    if (block->name() == "foreach_full_body") full = block.get();
  }
  ASSERT_NE(full, nullptr);
  ASSERT_FALSE(full->empty());
  EXPECT_EQ(full->front().opcode(), ir::Opcode::Phi);
  EXPECT_EQ(full->front().name(), "counter");
}

// ---------------------------------------------------------------------------
// Execution: trip-count sweep (property-style)
// ---------------------------------------------------------------------------

struct SweepParam {
  bool avx;
  int n;
};

class ForeachSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ForeachSweep, EveryElementWrittenExactlyOnce) {
  const auto [avx, n] = GetParam();
  const Target target = avx ? Target::avx() : Target::sse4();
  IotaKernel kernel(target);
  ASSERT_TRUE(ir::verify(*kernel.module).empty())
      << ir::verify(*kernel.module).front();

  interp::Arena arena;
  const std::uint64_t out =
      arena.alloc(std::max(n, 1) * 4, "out");
  // Poison so unwritten elements are detectable.
  for (int i = 0; i < n; ++i) arena.write<std::int32_t>(out + i * 4u, -999);

  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  const auto result =
      interp.run(*kernel.fn, {RtVal::ptr(out), RtVal::i32(n)});
  ASSERT_TRUE(result.ok()) << result.trap.detail;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(arena.read<std::int32_t>(out + i * 4u), i + 100) << i;
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (bool avx : {true, false}) {
    for (int n : {0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100}) {
      params.push_back({avx, n});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(TripCounts, ForeachSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return std::string(info.param.avx ? "avx" : "sse") +
                                  "_n" + std::to_string(info.param.n);
                         });

// ---------------------------------------------------------------------------
// foreach with start offset
// ---------------------------------------------------------------------------

TEST(Foreach, StartOffsetIteratesHalfOpenInterval) {
  const Target target = Target::avx();
  ir::Module module("range");
  KernelBuilder kb(module, target, "range", {Type::ptr()});
  Value* out = kb.arg(0);
  kb.foreach_loop(kb.b().i32_const(5), kb.b().i32_const(21),
                  [&](ForeachCtx& ctx) {
                    ctx.store(ctx.index(), out);
                  });
  kb.finish();

  interp::Arena arena;
  const std::uint64_t out_base = arena.alloc(32 * 4, "out");
  for (int i = 0; i < 32; ++i) arena.write<std::int32_t>(out_base + i * 4u, -1);
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*module.find_function("range"),
                         {RtVal::ptr(out_base)})
                  .ok());
  for (int i = 0; i < 32; ++i) {
    const std::int32_t expected = (i >= 5 && i < 21) ? i : -1;
    EXPECT_EQ(arena.read<std::int32_t>(out_base + i * 4u), expected) << i;
  }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

TEST(ForeachReduce, SumOfSquaresExact) {
  for (const Target& target : {Target::avx(), Target::sse4()}) {
    ir::Module module("ss");
    KernelBuilder kb(module, target, "ss", {Type::ptr(), Type::i32()});
    Value* out = kb.arg(0);
    Value* n = kb.arg(1);
    auto finals = kb.foreach_reduce(
        kb.b().i32_const(0), n, {kb.vconst_i32(0)},
        [&](ForeachCtx& ctx, const std::vector<Value*>& carried)
            -> std::vector<Value*> {
          Value* sq = ctx.b().mul(ctx.index(), ctx.index(), "sq");
          return {ctx.b().add(carried[0], sq, "acc")};
        });
    kb.b().store(kb.reduce_add(finals[0]), out);
    kb.finish();

    interp::Arena arena;
    const std::uint64_t out_base = arena.alloc(4, "out");
    interp::RuntimeEnv env;
    interp::Interpreter interp(arena, env);
    const int n_val = 23;  // not a multiple of either width
    ASSERT_TRUE(interp.run(*module.find_function("ss"),
                           {RtVal::ptr(out_base), RtVal::i32(n_val)})
                    .ok());
    int expected = 0;
    for (int i = 0; i < n_val; ++i) expected += i * i;
    EXPECT_EQ(arena.read<std::int32_t>(out_base), expected)
        << target.name();
  }
}

TEST(Reduce, MinMaxOverLanes) {
  const Target target = Target::avx();
  ir::Module module("mm");
  KernelBuilder kb(module, target, "mm",
                   {target.varying_f32(), Type::ptr()});
  Value* vec = kb.arg(0);
  Value* out = kb.arg(1);
  kb.b().store(kb.reduce_min(vec), out);
  Value* out_hi = kb.b().gep(out, kb.b().i32_const(1), 4, "hi");
  kb.b().store(kb.reduce_max(vec), out_hi);
  kb.finish();

  interp::Arena arena;
  const std::uint64_t out_base = arena.alloc(8, "out");
  RtVal v(target.varying_f32());
  const float lanes[8] = {3, -7, 12, 0.5f, -7.5f, 9, 2, 11};
  for (unsigned i = 0; i < 8; ++i) v.set_lane_f32(i, lanes[i]);
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(
      interp.run(*module.find_function("mm"), {v, RtVal::ptr(out_base)})
          .ok());
  EXPECT_FLOAT_EQ(arena.read<float>(out_base), -7.5f);
  EXPECT_FLOAT_EQ(arena.read<float>(out_base + 4), 12.0f);
}

// ---------------------------------------------------------------------------
// Gather / scatter
// ---------------------------------------------------------------------------

TEST(GatherScatter, ReverseCopyThroughIndices) {
  for (const Target& target : {Target::avx(), Target::sse4()}) {
    ir::Module module("rev");
    KernelBuilder kb(module, target, "rev",
                     {Type::ptr(), Type::ptr(), Type::i32()});
    Value* in = kb.arg(0);
    Value* out = kb.arg(1);
    Value* n = kb.arg(2);
    kb.foreach_loop(kb.b().i32_const(0), n, [&](ForeachCtx& ctx) {
      // out[n-1-i] = in[i]
      Value* n_b = kb.uniform(n, "n_bc");
      Value* rev = ctx.b().sub(
          ctx.b().sub(n_b, kb.vconst_i32(1), "n_m1"), ctx.index(), "rev");
      Value* vals = ctx.gather(Type::i32(), in, ctx.index());
      ctx.scatter(vals, out, rev);
    });
    kb.finish();
    ASSERT_TRUE(ir::verify(module).empty()) << ir::verify(module).front();

    const int n_val = 13;
    interp::Arena arena;
    const std::uint64_t in_base = arena.alloc(n_val * 4, "in");
    const std::uint64_t out_base = arena.alloc(n_val * 4, "out");
    for (int i = 0; i < n_val; ++i) {
      arena.write<std::int32_t>(in_base + i * 4u, i * 11);
    }
    interp::RuntimeEnv env;
    interp::Interpreter interp(arena, env);
    ASSERT_TRUE(interp.run(*module.find_function("rev"),
                           {RtVal::ptr(in_base), RtVal::ptr(out_base),
                            RtVal::i32(n_val)})
                    .ok());
    for (int i = 0; i < n_val; ++i) {
      EXPECT_EQ(arena.read<std::int32_t>(out_base + (n_val - 1 - i) * 4u),
                i * 11)
          << target.name() << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Uniform broadcast (Figure 9)
// ---------------------------------------------------------------------------

TEST(Uniform, BroadcastFeedsAllLanes) {
  const Target target = Target::avx();
  ir::Module module("u");
  KernelBuilder kb(module, target, "u", {Type::f32(), Type::ptr()});
  Value* scalar = kb.arg(0);
  Value* out = kb.arg(1);
  Value* bc = kb.uniform(scalar, "uval_broadcast");
  kb.b().store(bc, out);
  kb.finish();
  // The lowering uses insertelement + shufflevector (asserted in test_ir's
  // printer test); here check the executed semantics.
  interp::Arena arena;
  const std::uint64_t out_base = arena.alloc(32, "out");
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*module.find_function("u"),
                         {RtVal::f32(2.5f), RtVal::ptr(out_base)})
                  .ok());
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(arena.read<float>(out_base + i * 4), 2.5f);
  }
}

// ---------------------------------------------------------------------------
// scalar_loop
// ---------------------------------------------------------------------------

TEST(ScalarLoop, CarriedValuesAndFinals) {
  const Target target = Target::avx();
  ir::Module module("fact");
  KernelBuilder kb(module, target, "fact",
                   {Type::i32(), Type::ptr()});
  Value* n = kb.arg(0);
  Value* out = kb.arg(1);
  auto finals = kb.scalar_loop(
      kb.b().i32_const(1), kb.b().add(n, kb.b().i32_const(1), "np1"),
      {kb.b().i32_const(1)},
      [&](Value* iv, const std::vector<Value*>& carried)
          -> std::vector<Value*> {
        return {kb.b().mul(carried[0], iv, "prod")};
      },
      "fact");
  kb.b().store(finals[0], out);
  kb.finish();

  interp::Arena arena;
  const std::uint64_t out_base = arena.alloc(4, "out");
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*module.find_function("fact"),
                         {RtVal::i32(6), RtVal::ptr(out_base)})
                  .ok());
  EXPECT_EQ(arena.read<std::int32_t>(out_base), 720);
}

TEST(ScalarLoop, ZeroIterationsYieldsInit) {
  const Target target = Target::sse4();
  ir::Module module("z");
  KernelBuilder kb(module, target, "z", {Type::ptr()});
  auto finals = kb.scalar_loop(
      kb.b().i32_const(5), kb.b().i32_const(5), {kb.b().i32_const(42)},
      [&](Value*, const std::vector<Value*>& carried)
          -> std::vector<Value*> {
        return {kb.b().add(carried[0], kb.b().i32_const(1), "inc")};
      });
  kb.b().store(finals[0], kb.arg(0));
  kb.finish();

  interp::Arena arena;
  const std::uint64_t out_base = arena.alloc(4, "out");
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(
      interp.run(*module.find_function("z"), {RtVal::ptr(out_base)}).ok());
  EXPECT_EQ(arena.read<std::int32_t>(out_base), 42);
}

TEST(Foreach, ZeroAndNegativeRangesAreNoOps) {
  for (int n : {0, -5}) {
    IotaKernel kernel(Target::avx());
    interp::Arena arena;
    const std::uint64_t out = arena.alloc(16, "out");
    arena.write<std::int32_t>(out, -1);
    interp::RuntimeEnv env;
    interp::Interpreter interp(arena, env);
    const auto result =
        interp.run(*kernel.fn, {RtVal::ptr(out), RtVal::i32(n)});
    ASSERT_TRUE(result.ok()) << result.trap.detail;
    EXPECT_EQ(arena.read<std::int32_t>(out), -1);
  }
}

}  // namespace
}  // namespace vulfi::spmd
