// Correctness of the nine Table-I benchmark kernels: every (benchmark,
// target, input) combination must verify, run trap-free, and reproduce
// its scalar reference.
#include <gtest/gtest.h>

#include <cmath>

#include "interp/interpreter.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"

namespace vulfi {
namespace {

using kernels::Benchmark;

struct Combo {
  const Benchmark* bench;
  bool avx;
  unsigned input;
};

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (const Benchmark* bench : kernels::all_benchmarks()) {
    for (unsigned input = 0; input < bench->num_inputs(); ++input) {
      combos.push_back({bench, true, input});
      combos.push_back({bench, false, input});
    }
  }
  return combos;
}

class BenchmarkCorrectness : public ::testing::TestWithParam<Combo> {};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return info.param.bench->name() + (info.param.avx ? "_avx_" : "_sse_") +
         std::to_string(info.param.input);
}

TEST_P(BenchmarkCorrectness, MatchesScalarReference) {
  const Combo combo = GetParam();
  const spmd::Target target =
      combo.avx ? spmd::Target::avx() : spmd::Target::sse4();
  RunSpec spec = combo.bench->build(target, combo.input);

  const auto errors = ir::verify(*spec.module);
  ASSERT_TRUE(errors.empty()) << errors.front();

  interp::RuntimeEnv env;
  interp::Arena arena = spec.arena;
  interp::Interpreter interp(arena, env);
  const interp::ExecResult result = interp.run(*spec.entry, spec.args);
  ASSERT_TRUE(result.ok()) << trap_kind_name(result.trap.kind) << ": "
                           << result.trap.detail;
  EXPECT_GT(result.stats.total_instructions, 0u);
  EXPECT_GT(result.stats.vector_instructions, 0u);

  for (const kernels::RegionRef& ref :
       combo.bench->reference(target, combo.input)) {
    const auto& region = arena.region(ref.region);
    if (!ref.i32.empty()) {
      const auto actual =
          arena.read_array<std::int32_t>(region.base, ref.i32.size());
      EXPECT_EQ(actual, ref.i32) << ref.region;
      continue;
    }
    const auto actual = arena.read_array<float>(region.base, ref.f32.size());
    ASSERT_EQ(actual.size(), ref.f32.size());
    for (std::size_t i = 0; i < ref.f32.size(); ++i) {
      const float tolerance =
          1e-5f + 1e-4f * std::fabs(ref.f32[i]);
      EXPECT_NEAR(actual[i], ref.f32[i], tolerance)
          << combo.bench->name() << " region " << ref.region << " elem "
          << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkCorrectness,
                         ::testing::ValuesIn(all_combos()), combo_name);

TEST(BenchmarkRegistry, HasNineBenchmarksInTableOrder) {
  const auto& benches = kernels::all_benchmarks();
  ASSERT_EQ(benches.size(), 9u);
  EXPECT_EQ(benches[0]->name(), "fluidanimate");
  EXPECT_EQ(benches[1]->name(), "swaptions");
  EXPECT_EQ(benches[2]->name(), "blackscholes");
  EXPECT_EQ(benches[3]->name(), "sorting");
  EXPECT_EQ(benches[4]->name(), "stencil");
  EXPECT_EQ(benches[5]->name(), "chebyshev");
  EXPECT_EQ(benches[6]->name(), "jacobi");
  EXPECT_EQ(benches[7]->name(), "cg");
  EXPECT_EQ(benches[8]->name(), "raytracing");
}

TEST(BenchmarkRegistry, MicroBenchmarksPresent) {
  ASSERT_EQ(kernels::micro_benchmarks().size(), 3u);
  EXPECT_NE(kernels::find_benchmark("vcopy"), nullptr);
  EXPECT_NE(kernels::find_benchmark("dot"), nullptr);
  EXPECT_NE(kernels::find_benchmark("vsum"), nullptr);
  EXPECT_EQ(kernels::find_benchmark("nonexistent"), nullptr);
}

TEST(BenchmarkRegistry, ParvecBenchmarksAreCpp) {
  EXPECT_EQ(kernels::find_benchmark("fluidanimate")->language(), "C++");
  EXPECT_EQ(kernels::find_benchmark("swaptions")->language(), "C++");
  EXPECT_EQ(kernels::find_benchmark("blackscholes")->language(), "ISPC");
}

}  // namespace
}  // namespace vulfi
