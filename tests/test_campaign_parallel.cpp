// Stress tests for the parallel campaign executor: oversubscribed worker
// pools (2x hardware concurrency) must complete cleanly — run this binary
// under -DVULFI_TSAN=ON to have ThreadSanitizer check the work-stealing
// deque and the per-thread engine isolation — and the sequential-sampling
// stopping rule must behave exactly as in the serial path.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "kernels/benchmark.hpp"
#include "kernels/micro.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

namespace vulfi {
namespace {

unsigned oversubscribed_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return 2 * (hw == 0 ? 2 : hw);
}

struct EngineSet {
  std::vector<std::unique_ptr<InjectionEngine>> storage;
  std::vector<InjectionEngine*> pointers;
};

EngineSet build_engines(const kernels::Benchmark& bench) {
  EngineSet set;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    set.storage.push_back(std::make_unique<InjectionEngine>(
        bench.build(spmd::Target::sse4(), input),
        analysis::FaultSiteCategory::PureData));
    set.pointers.push_back(set.storage.back().get());
  }
  return set;
}

TEST(CampaignParallelStress, OversubscribedRunToMaxCampaigns) {
  EngineSet set = build_engines(kernels::vector_copy_benchmark());
  CampaignConfig config;
  config.experiments_per_campaign = 15;
  config.min_campaigns = 3;
  config.max_campaigns = 8;
  config.target_margin = -1.0;  // unreachable: must run all the way to max
  config.num_threads = oversubscribed_threads();
  const CampaignResult result = run_campaigns(set.pointers, config);
  EXPECT_EQ(result.campaigns, config.max_campaigns);
  EXPECT_EQ(result.experiments,
            static_cast<std::uint64_t>(config.max_campaigns) *
                config.experiments_per_campaign);
  EXPECT_EQ(result.benign + result.sdc + result.crash, result.experiments);
  EXPECT_EQ(result.campaign_sdc_rates.size(), result.campaigns);
  EXPECT_EQ(result.sdc_samples.count(), result.campaigns);
}

TEST(CampaignParallelStress, RespectsSequentialStoppingRule) {
  EngineSet set = build_engines(kernels::dot_product_benchmark());
  CampaignConfig config;
  config.experiments_per_campaign = 10;
  config.min_campaigns = 2;
  config.max_campaigns = 40;
  config.target_margin = 1.0;
  config.num_threads = oversubscribed_threads();
  const CampaignResult result = run_campaigns(set.pointers, config);
  EXPECT_GE(result.campaigns, config.min_campaigns);
  EXPECT_LE(result.campaigns, config.max_campaigns);
  // Stopping before max means the sequential-sampling criteria held at
  // the final campaign boundary — same invariant as the serial path.
  if (result.campaigns < config.max_campaigns) {
    EXPECT_LE(result.margin_of_error, config.target_margin);
    EXPECT_TRUE(result.near_normal);
  }
}

TEST(CampaignParallelStress, MoreThreadsThanExperimentsPerCampaign) {
  // Workers beyond the available work must idle out gracefully (empty
  // ranges, nothing to steal).
  EngineSet set = build_engines(kernels::vector_sum_benchmark());
  CampaignConfig config;
  config.experiments_per_campaign = 3;
  config.min_campaigns = 2;
  config.max_campaigns = 2;
  config.num_threads = 16;
  const CampaignResult result = run_campaigns(set.pointers, config);
  EXPECT_EQ(result.experiments, 6u);
  EXPECT_EQ(result.benign + result.sdc + result.crash, 6u);
  EXPECT_EQ(result.throughput.thread_busy_seconds.size(), 16u);
}

TEST(CampaignParallelStress, ManyConcurrentCampaignRunsAreIsolated) {
  // run_campaigns itself must be reentrant: several campaign runs on
  // distinct engine sets may execute concurrently (as a study sharding
  // across cells would), each spawning its own workers.
  constexpr unsigned kRuns = 3;
  std::vector<CampaignResult> results(kRuns);
  std::vector<std::thread> runners;
  for (unsigned r = 0; r < kRuns; ++r) {
    runners.emplace_back([r, &results] {
      EngineSet set = build_engines(kernels::dot_product_benchmark());
      CampaignConfig config;
      config.experiments_per_campaign = 10;
      config.min_campaigns = 2;
      config.max_campaigns = 2;
      config.num_threads = 2;
      results[r] = run_campaigns(set.pointers, config);
    });
  }
  for (std::thread& t : runners) t.join();
  for (unsigned r = 1; r < kRuns; ++r) {
    // Same config + seed: every concurrent run reports the same counters.
    EXPECT_EQ(results[r].sdc, results[0].sdc);
    EXPECT_EQ(results[r].benign, results[0].benign);
    EXPECT_EQ(results[r].crash, results[0].crash);
  }
}

}  // namespace
}  // namespace vulfi
