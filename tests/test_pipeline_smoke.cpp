// End-to-end smoke tests: micro-benchmarks through the full pipeline —
// SPMD lowering, verification, interpretation, reference validation,
// instrumentation, fault injection, and detector insertion.
#include <gtest/gtest.h>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "kernels/micro.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

namespace vulfi {
namespace {

using kernels::Benchmark;

void expect_matches_reference(const Benchmark& bench,
                              const spmd::Target& target, unsigned input) {
  RunSpec spec = bench.build(target, input);
  ASSERT_TRUE(ir::verify(*spec.module).empty())
      << ir::verify(*spec.module).front();

  interp::RuntimeEnv env;
  interp::Arena arena = spec.arena;
  interp::Interpreter interp(arena, env);
  const interp::ExecResult result = interp.run(*spec.entry, spec.args);
  ASSERT_TRUE(result.ok()) << result.trap.detail;

  for (const kernels::RegionRef& ref : bench.reference(target, input)) {
    const auto& region = arena.region(ref.region);
    if (!ref.f32.empty()) {
      const auto actual = arena.read_array<float>(region.base, ref.f32.size());
      for (std::size_t i = 0; i < ref.f32.size(); ++i) {
        EXPECT_NEAR(actual[i], ref.f32[i], 1e-5f)
            << bench.name() << " region " << ref.region << " elem " << i;
      }
    } else {
      const auto actual =
          arena.read_array<std::int32_t>(region.base, ref.i32.size());
      for (std::size_t i = 0; i < ref.i32.size(); ++i) {
        EXPECT_EQ(actual[i], ref.i32[i])
            << bench.name() << " region " << ref.region << " elem " << i;
      }
    }
  }
}

TEST(PipelineSmoke, VectorCopyMatchesReferenceAvx) {
  for (unsigned input = 0; input < 3; ++input) {
    expect_matches_reference(kernels::vector_copy_benchmark(),
                             spmd::Target::avx(), input);
  }
}

TEST(PipelineSmoke, VectorCopyMatchesReferenceSse) {
  for (unsigned input = 0; input < 3; ++input) {
    expect_matches_reference(kernels::vector_copy_benchmark(),
                             spmd::Target::sse4(), input);
  }
}

TEST(PipelineSmoke, DotProductMatchesReference) {
  for (unsigned input = 0; input < 3; ++input) {
    expect_matches_reference(kernels::dot_product_benchmark(),
                             spmd::Target::avx(), input);
    expect_matches_reference(kernels::dot_product_benchmark(),
                             spmd::Target::sse4(), input);
  }
}

TEST(PipelineSmoke, VectorSumMatchesReference) {
  for (unsigned input = 0; input < 3; ++input) {
    expect_matches_reference(kernels::vector_sum_benchmark(),
                             spmd::Target::avx(), input);
  }
}

TEST(PipelineSmoke, InstrumentedModuleStillVerifiesAndRunsClean) {
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::avx(), 0);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  const interp::ExecResult clean = engine.run_clean();
  EXPECT_TRUE(clean.ok()) << clean.trap.detail;
  EXPECT_FALSE(engine.sites().empty());
}

TEST(PipelineSmoke, ExperimentsProduceOutcomes) {
  RunSpec spec = kernels::dot_product_benchmark().build(spmd::Target::avx(), 0);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(42);
  unsigned fired = 0;
  for (int i = 0; i < 20; ++i) {
    const ExperimentResult result = engine.run_experiment(rng);
    EXPECT_GT(result.dynamic_sites, 0u);
    if (result.injection.fired) fired += 1;
  }
  EXPECT_GT(fired, 0u);
}

TEST(PipelineSmoke, PureDataInjectionIntoDotCausesSomeSdc) {
  RunSpec spec = kernels::dot_product_benchmark().build(spmd::Target::avx(), 2);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(7);
  unsigned sdc = 0;
  for (int i = 0; i < 50; ++i) {
    if (engine.run_experiment(rng).outcome == Outcome::SDC) sdc += 1;
  }
  // Flipping bits in the accumulating data path of a dot product must
  // corrupt the output much of the time.
  EXPECT_GT(sdc, 10u);
}

TEST(PipelineSmoke, DetectorInsertedModuleRunsAndStaysQuietWithoutFaults) {
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::avx(), 1);
  const unsigned inserted = detect::insert_foreach_detectors(*spec.module);
  EXPECT_EQ(inserted, 1u);
  ASSERT_TRUE(ir::verify(*spec.module).empty())
      << ir::verify(*spec.module).front();

  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::Control);
  engine.setup_runtime(
      [](interp::RuntimeEnv& env, interp::DetectionLog& log) {
        detect::attach_detector_runtime(env, log);
      });
  const interp::ExecResult clean = engine.run_clean();
  EXPECT_TRUE(clean.ok()) << clean.trap.detail;
  EXPECT_FALSE(engine.detection_log().any());
}

TEST(PipelineSmoke, ControlFaultsOnVcopyGetDetectedSometimes) {
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::avx(), 2);
  detect::insert_foreach_detectors(*spec.module);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::Control);
  engine.setup_runtime(
      [](interp::RuntimeEnv& env, interp::DetectionLog& log) {
        detect::attach_detector_runtime(env, log);
      });
  Rng rng(11);
  unsigned detected = 0;
  for (int i = 0; i < 60; ++i) {
    if (engine.run_experiment(rng).detected) detected += 1;
  }
  EXPECT_GT(detected, 0u);
}

TEST(PipelineSmoke, CampaignRunsToCompletion) {
  RunSpec spec = kernels::vector_sum_benchmark().build(spmd::Target::sse4(), 0);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::Control);
  CampaignConfig config;
  config.experiments_per_campaign = 10;
  config.min_campaigns = 3;
  config.max_campaigns = 5;
  const CampaignResult result = run_campaigns({&engine}, config);
  EXPECT_GE(result.campaigns, 3u);
  EXPECT_EQ(result.experiments,
            static_cast<std::uint64_t>(result.campaigns) * 10);
  EXPECT_EQ(result.benign + result.sdc + result.crash, result.experiments);
}

}  // namespace
}  // namespace vulfi
