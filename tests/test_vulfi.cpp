// Unit tests for the VULFI core: fault-site enumeration, the
// instrumentation pass (Figures 4/5 semantics), the injection runtime
// (fault model of §II-B), the experiment driver, and campaigns.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/micro.hpp"
#include "kernels/study.hpp"
#include "spmd/kernel_builder.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/instrument.hpp"

namespace vulfi {
namespace {

using interp::RtVal;
using ir::IRBuilder;
using ir::Type;
using ir::Value;

// ---------------------------------------------------------------------------
// Site enumeration
// ---------------------------------------------------------------------------

TEST(FaultSites, VectorRegistersYieldOneSitePerLane) {
  // Paper §II-B: "If an Lvalue is a vector register, then each of its
  // scalar elements is considered a unique fault site."
  ir::Module m("t");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* f = m.create_function("f", v8f, {v8f, v8f});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* sum = b.fadd(f->arg(0), f->arg(1), "sum");
  b.ret(sum);

  const auto sites = enumerate_fault_sites(*f);
  ASSERT_EQ(sites.size(), 8u);
  for (unsigned lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(sites[lane].lane, lane);
    EXPECT_EQ(sites[lane].inst->name(), "sum");
    EXPECT_EQ(sites[lane].element_type, Type::f32());
    EXPECT_TRUE(sites[lane].vector_instruction);
    EXPECT_FALSE(sites[lane].masked);
  }
}

TEST(FaultSites, StoreTargetsTheStoredValue) {
  ir::Module m("t");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.store(f->arg(1), f->arg(0));
  b.ret();
  const auto sites = enumerate_fault_sites(*f);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_TRUE(sites[0].store_operand);
  EXPECT_EQ(sites[0].element_type, Type::i32());
}

TEST(FaultSites, MaskedIntrinsicsMarkLanesMasked) {
  ir::Module m("t");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* maskload =
      m.declare_masked_intrinsic(ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
  ir::Function* maskstore = m.declare_masked_intrinsic(
      ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), v8f});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* loaded = b.call(maskload, {f->arg(0), f->arg(1)}, "ld");
  b.call(maskstore, {f->arg(0), f->arg(1), loaded});
  b.ret();

  const auto sites = enumerate_fault_sites(*f);
  ASSERT_EQ(sites.size(), 16u);  // 8 load lanes + 8 store-operand lanes
  for (const FaultSite& site : sites) {
    EXPECT_TRUE(site.masked);
  }
  EXPECT_FALSE(sites[0].store_operand);
  EXPECT_TRUE(sites[15].store_operand);
}

TEST(FaultSites, PointerProducersAndPhisExcluded) {
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::avx(), 0);
  for (const FaultSite& site : enumerate_fault_sites(*spec.entry)) {
    EXPECT_NE(site.inst->opcode(), ir::Opcode::Phi);
    EXPECT_NE(site.inst->opcode(), ir::Opcode::GetElementPtr);
    EXPECT_NE(site.inst->opcode(), ir::Opcode::Alloca);
    EXPECT_TRUE(site.element_type.is_integer() ||
                site.element_type.is_float());
  }
}

// ---------------------------------------------------------------------------
// Instrumentor
// ---------------------------------------------------------------------------

TEST(Instrumentor, SiteIdsMatchEnumeration) {
  RunSpec spec = kernels::dot_product_benchmark().build(spmd::Target::avx(), 0);
  const auto expected = enumerate_fault_sites(*spec.entry);
  Instrumentor instrumentor;
  const auto actual = instrumentor.run(*spec.entry);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
    EXPECT_EQ(actual[i].lane, expected[i].lane);
    EXPECT_EQ(actual[i].inst, expected[i].inst);
    EXPECT_EQ(actual[i].masked, expected[i].masked);
  }
}

TEST(Instrumentor, EmitsFigure5ChainForVectors) {
  // One masked load: expect extractelement / extractelement(mask) /
  // call @vulfi.inject.f32 / insertelement per lane, and the maskstore
  // consuming the instrumented clone.
  ir::Module m("t");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* maskload =
      m.declare_masked_intrinsic(ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
  ir::Function* f =
      m.create_function("f", v8f, {Type::ptr(), v8f});
  f->arg(1)->set_name("floatmask.i");
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* loaded = b.call(maskload, {f->arg(0), f->arg(1)}, "ld");
  b.ret(loaded);

  Instrumentor instrumentor;
  const auto sites = instrumentor.run(*f);
  ASSERT_EQ(sites.size(), 8u);
  EXPECT_TRUE(ir::verify(m).empty()) << ir::verify(m).front();

  const std::string text = ir::to_string(*f);
  // Lane 0 extract + mask extract + inject call (Figure 5 L1-L3).
  EXPECT_NE(text.find("extractelement <8 x float> %ld, i32 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("extractelement <8 x float> %floatmask.i, i32 0"),
            std::string::npos);
  EXPECT_NE(text.find("call float @vulfi.inject.f32(float %ext0, float "
                      "%extmask0"),
            std::string::npos);
  // The function now returns the instrumented clone, not the original.
  EXPECT_NE(text.find("ret <8 x float> %ins7"), std::string::npos);
}

TEST(Instrumentor, InstrumentedModuleVerifiesForAllBenchmarks) {
  for (const kernels::Benchmark* bench : kernels::all_benchmarks()) {
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    Instrumentor instrumentor;
    instrumentor.run(*spec.entry);
    const auto errors = ir::verify(*spec.module);
    EXPECT_TRUE(errors.empty())
        << bench->name() << ": "
        << (errors.empty() ? std::string() : errors.front());
  }
}

TEST(Instrumentor, IdleRuntimePreservesSemantics) {
  // With injection disabled the instrumented kernel must produce exactly
  // the uninstrumented output (the inject calls are identity functions).
  for (const kernels::Benchmark* bench : kernels::micro_benchmarks()) {
    RunSpec plain = bench->build(spmd::Target::avx(), 0);
    std::vector<std::uint8_t> expected;
    {
      interp::RuntimeEnv env;
      interp::Arena arena = plain.arena;
      interp::Interpreter interp(arena, env);
      ASSERT_TRUE(interp.run(*plain.entry, plain.args).ok());
      for (const auto& name : plain.output_regions) {
        const auto bytes = arena.region_bytes(arena.region(name));
        expected.insert(expected.end(), bytes.begin(), bytes.end());
      }
    }

    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    const auto output_regions = spec.output_regions;
    InjectionEngine engine(std::move(spec),
                           analysis::FaultSiteCategory::PureData);
    const auto result = engine.run_clean();
    ASSERT_TRUE(result.ok()) << bench->name();
    // Instrumentation inflates the dynamic instruction count.
    EXPECT_GT(result.stats.total_instructions, 0u);
  }
}

// ---------------------------------------------------------------------------
// Injection runtime
// ---------------------------------------------------------------------------

/// A minimal instrumented program: out[0] = a + b (scalar f32).
struct ScalarAddProgram {
  RunSpec spec;

  ScalarAddProgram() {
    spec.module = std::make_unique<ir::Module>("sa");
    ir::Function* f = spec.module->create_function(
        "f", Type::void_ty(), {Type::f32(), Type::f32(), Type::ptr()});
    IRBuilder b(*spec.module);
    b.set_insert_block(f->create_block("entry"));
    Value* sum = b.fadd(f->arg(0), f->arg(1), "sum");
    b.store(sum, f->arg(2));
    b.ret();
    spec.entry = f;
    const std::uint64_t out = spec.arena.alloc(4, "out");
    spec.args = {RtVal::f32(1.5f), RtVal::f32(2.25f), RtVal::ptr(out)};
    spec.output_regions = {"out"};
  }
};

TEST(FiRuntime, CountAndInjectSeeSameDynamicSites) {
  ScalarAddProgram program;
  InjectionEngine engine(std::move(program.spec),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(3);
  const ExperimentResult r1 = engine.run_experiment(rng);
  const ExperimentResult r2 = engine.run_experiment(rng);
  // sum (1 site) + store operand (1 site) = 2 dynamic sites every run.
  EXPECT_EQ(r1.dynamic_sites, 2u);
  EXPECT_EQ(r2.dynamic_sites, 2u);
  EXPECT_TRUE(r1.injection.fired);
}

TEST(FiRuntime, InjectionFlipsExactlyOneBit) {
  ScalarAddProgram program;
  InjectionEngine engine(std::move(program.spec),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const ExperimentResult r = engine.run_experiment(rng);
    ASSERT_TRUE(r.injection.fired);
    const std::uint64_t diff =
        r.injection.bits_before ^ r.injection.bits_after;
    EXPECT_EQ(__builtin_popcountll(diff), 1);
    EXPECT_EQ(diff, std::uint64_t{1} << r.injection.bit);
    EXPECT_LT(r.injection.bit, 32u);  // f32 sites flip within 32 bits
  }
}

TEST(FiRuntime, UniformSiteSelectionCoversAllSites) {
  ScalarAddProgram program;
  InjectionEngine engine(std::move(program.spec),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(23);
  std::set<std::uint64_t> indices;
  for (int i = 0; i < 100; ++i) {
    indices.insert(engine.run_experiment(rng).injection.dynamic_index);
  }
  EXPECT_EQ(indices.size(), 2u);  // both dynamic sites get picked
}

TEST(FiRuntime, SdcWhenOutputBitFlipped) {
  // A flip in the value stored to out[0] must read back as SDC unless it
  // lands on a bit the fp add result happens to tolerate (none here —
  // compare is byte-exact).
  ScalarAddProgram program;
  InjectionEngine engine(std::move(program.spec),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(29);
  unsigned sdc = 0;
  for (int i = 0; i < 40; ++i) {
    if (engine.run_experiment(rng).outcome == Outcome::SDC) sdc += 1;
  }
  EXPECT_EQ(sdc, 40u);  // every flip lands in the stored value's dataflow
}

TEST(FiRuntime, CategoryWithNoSitesIsBenignNoInjection) {
  ScalarAddProgram program;  // has no control flow and no GEPs
  InjectionEngine engine(std::move(program.spec),
                         analysis::FaultSiteCategory::Control);
  Rng rng(31);
  const ExperimentResult r = engine.run_experiment(rng);
  EXPECT_EQ(r.dynamic_sites, 0u);
  EXPECT_EQ(r.outcome, Outcome::Benign);
  EXPECT_FALSE(r.injection.fired);
  EXPECT_EQ(engine.eligible_static_sites(), 0u);
}

TEST(FiRuntime, MaskAwareGatingSkipsInactiveLanes) {
  // Build: maskstore(out, mask, data) with only lane 0 active. With mask
  // awareness, dynamic sites = active data lanes only (1); without, all 8
  // lanes count.
  auto build = [] {
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("mg");
    const Type v8f = Type::vector(ir::TypeKind::F32, 8);
    ir::Function* maskstore = spec.module->declare_masked_intrinsic(
        ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
    ir::Function* f = spec.module->create_function(
        "f", Type::void_ty(), {Type::ptr(), v8f, v8f});
    IRBuilder b(*spec.module);
    b.set_insert_block(f->create_block("entry"));
    b.call(maskstore, {f->arg(0), f->arg(1), f->arg(2)});
    b.ret();
    spec.entry = f;
    const std::uint64_t out = spec.arena.alloc(32, "out");
    RtVal mask(v8f);
    mask.raw[0] = 0xFFFFFFFF;  // only lane 0 active
    RtVal data(v8f);
    for (unsigned i = 0; i < 8; ++i) data.set_lane_f32(i, 1.0f + i);
    spec.args = {RtVal::ptr(out), mask, data};
    spec.output_regions = {"out"};
    return spec;
  };

  InjectionEngine aware(build(), analysis::FaultSiteCategory::PureData);
  Rng rng1(37);
  EXPECT_EQ(aware.run_experiment(rng1).dynamic_sites, 1u);

  EngineOptions options;
  options.mask_aware = false;
  InjectionEngine unaware(build(), analysis::FaultSiteCategory::PureData,
                          options);
  Rng rng2(37);
  EXPECT_EQ(unaware.run_experiment(rng2).dynamic_sites, 8u);
}

TEST(FiRuntime, MaskUnawareInjectionIntoDeadLaneIsBenign) {
  // Ablation: with gating off, flips into masked-off lanes never reach
  // memory — the benign rate shows why mask awareness matters.
  auto build = [] {
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("mg2");
    const Type v8f = Type::vector(ir::TypeKind::F32, 8);
    ir::Function* maskstore = spec.module->declare_masked_intrinsic(
        ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
    ir::Function* f = spec.module->create_function(
        "f", Type::void_ty(), {Type::ptr(), v8f, v8f});
    IRBuilder b(*spec.module);
    b.set_insert_block(f->create_block("entry"));
    b.call(maskstore, {f->arg(0), f->arg(1), f->arg(2)});
    b.ret();
    spec.entry = f;
    const std::uint64_t out = spec.arena.alloc(32, "out");
    RtVal mask(v8f);
    mask.raw[0] = 0xFFFFFFFF;
    RtVal data(v8f);
    spec.args = {RtVal::ptr(out), mask, data};
    spec.output_regions = {"out"};
    return spec;
  };
  EngineOptions options;
  options.mask_aware = false;
  InjectionEngine engine(build(), analysis::FaultSiteCategory::PureData,
                         options);
  Rng rng(41);
  unsigned benign = 0;
  for (int i = 0; i < 64; ++i) {
    if (engine.run_experiment(rng).outcome == Outcome::Benign) benign += 1;
  }
  // 7 of 8 lanes are dead: roughly 7/8 of injections are wasted.
  EXPECT_GT(benign, 40u);
}

// ---------------------------------------------------------------------------
// Outcome classification
// ---------------------------------------------------------------------------

TEST(Driver, AddressFaultsOnVcopyProduceCrashes) {
  RunSpec spec = kernels::vector_copy_benchmark().build(spmd::Target::avx(), 0);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::Address);
  Rng rng(43);
  unsigned crash = 0;
  for (int i = 0; i < 60; ++i) {
    const ExperimentResult r = engine.run_experiment(rng);
    if (r.outcome == Outcome::Crash) {
      crash += 1;
      EXPECT_NE(r.trap, interp::TrapKind::None);
    }
  }
  // Address flips frequently leave the mapped region (paper: "the address
  // fault site category results in the most number of program crashes").
  EXPECT_GT(crash, 10u);
}

TEST(Driver, RunawayControlFaultBecomesCrashViaBudget) {
  // A compute-only loop (no memory per iteration): a high-bit flip in the
  // iterator makes it spin without faulting, so only the instruction
  // budget can classify the hang as Crash.
  RunSpec spec;
  spec.module = std::make_unique<ir::Module>("spin");
  const spmd::Target target = spmd::Target::avx();
  spmd::KernelBuilder kb(*spec.module, target, "spin",
                         {ir::Type::i32(), ir::Type::ptr()});
  Value* n = kb.arg(0);
  auto finals = kb.scalar_loop(
      kb.b().i32_const(0), n, {kb.b().i32_const(1)},
      [&](Value*, const std::vector<Value*>& carried)
          -> std::vector<Value*> {
        Value* tripled =
            kb.b().mul(carried[0], kb.b().i32_const(3), "tripled");
        return {kb.b().add(tripled, kb.b().i32_const(1), "acc")};
      },
      "spin");
  kb.b().store(finals[0], kb.arg(1));
  kb.finish();
  spec.entry = spec.module->find_function("spin");
  const std::uint64_t out = spec.arena.alloc(4, "out");
  spec.args = {RtVal::i32(64), RtVal::ptr(out)};
  spec.output_regions = {"out"};

  EngineOptions options;
  options.budget_multiplier = 4;  // tight budget to surface hangs
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::Control, options);
  Rng rng(47);
  unsigned budget_crashes = 0;
  for (int i = 0; i < 120; ++i) {
    const ExperimentResult r = engine.run_experiment(rng);
    if (r.outcome == Outcome::Crash &&
        r.trap == interp::TrapKind::InstructionBudget) {
      budget_crashes += 1;
    }
  }
  EXPECT_GT(budget_crashes, 0u);
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

TEST(Campaign, RateGuardsAgainstZeroExperiments) {
  // A default-constructed result has run nothing; every rate must be a
  // well-defined 0.0, not a NaN from 0/0.
  const CampaignResult empty;
  EXPECT_EQ(empty.experiments, 0u);
  EXPECT_EQ(empty.rate(0), 0.0);
  EXPECT_EQ(empty.rate(123), 0.0);
  EXPECT_EQ(empty.sdc_rate(), 0.0);
  EXPECT_EQ(empty.benign_rate(), 0.0);
  EXPECT_EQ(empty.crash_rate(), 0.0);
  EXPECT_FALSE(std::isnan(empty.sdc_rate()));
}

TEST(Campaign, SdcDetectionRateGuardsAgainstZeroSdc) {
  CampaignResult result;
  result.experiments = 100;
  result.benign = 100;  // plenty of experiments, none of them SDC
  EXPECT_EQ(result.sdc, 0u);
  EXPECT_EQ(result.sdc_detection_rate(), 0.0);
  EXPECT_FALSE(std::isnan(result.sdc_detection_rate()));

  result.sdc = 8;
  result.detected_sdc = 2;
  EXPECT_DOUBLE_EQ(result.sdc_detection_rate(), 0.25);
}

TEST(Campaign, TotalsAreConsistent) {
  RunSpec spec = kernels::dot_product_benchmark().build(spmd::Target::sse4(), 0);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  CampaignConfig config;
  config.experiments_per_campaign = 20;
  config.min_campaigns = 4;
  config.max_campaigns = 6;
  const CampaignResult result = run_campaigns({&engine}, config);
  EXPECT_EQ(result.benign + result.sdc + result.crash, result.experiments);
  EXPECT_EQ(result.experiments,
            static_cast<std::uint64_t>(result.campaigns) *
                config.experiments_per_campaign);
  EXPECT_NEAR(result.sdc_rate() + result.benign_rate() + result.crash_rate(),
              1.0, 1e-12);
  EXPECT_EQ(result.sdc_samples.count(), result.campaigns);
}

TEST(Campaign, StopsAtMaxCampaigns) {
  RunSpec spec = kernels::vector_sum_benchmark().build(spmd::Target::sse4(), 0);
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::Control);
  CampaignConfig config;
  config.experiments_per_campaign = 5;
  config.min_campaigns = 2;
  config.max_campaigns = 3;
  config.target_margin = 0.000001;  // unreachable: must stop at max
  const CampaignResult result = run_campaigns({&engine}, config);
  EXPECT_EQ(result.campaigns, 3u);
}

TEST(Campaign, DeterministicForFixedSeed) {
  auto run_once = [](std::uint64_t seed) {
    RunSpec spec =
        kernels::dot_product_benchmark().build(spmd::Target::avx(), 1);
    InjectionEngine engine(std::move(spec),
                           analysis::FaultSiteCategory::PureData);
    CampaignConfig config;
    config.experiments_per_campaign = 15;
    config.min_campaigns = 2;
    config.max_campaigns = 2;
    config.seed = seed;
    return run_campaigns({&engine}, config);
  };
  const CampaignResult a = run_once(777);
  const CampaignResult b = run_once(777);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.crash, b.crash);
  const CampaignResult c = run_once(778);
  // Different seed: almost surely different counts somewhere.
  EXPECT_TRUE(a.sdc != c.sdc || a.benign != c.benign || a.crash != c.crash);
}

TEST(Campaign, MultiEngineDrawsFromAllInputs) {
  const auto& bench = kernels::dot_product_benchmark();
  std::vector<std::unique_ptr<InjectionEngine>> engines;
  std::vector<InjectionEngine*> pointers;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    engines.push_back(std::make_unique<InjectionEngine>(
        bench.build(spmd::Target::sse4(), input),
        analysis::FaultSiteCategory::PureData));
    pointers.push_back(engines.back().get());
  }
  CampaignConfig config;
  config.experiments_per_campaign = 30;
  config.min_campaigns = 2;
  config.max_campaigns = 2;
  const CampaignResult result = run_campaigns(pointers, config);
  EXPECT_EQ(result.experiments, 60u);
}

TEST(Study, MatrixCoversRequestedCells) {
  kernels::StudyConfig config;
  config.benchmarks = {"vcopy", "dot"};
  config.isas = {ir::Isa::AVX};
  config.categories = {analysis::FaultSiteCategory::PureData,
                       analysis::FaultSiteCategory::Control};
  config.campaign.experiments_per_campaign = 10;
  config.campaign.min_campaigns = 2;
  config.campaign.max_campaigns = 2;
  unsigned progress_calls = 0;
  const auto cells = kernels::run_resiliency_study(
      config, [&progress_calls](unsigned done, unsigned total) {
        progress_calls += 1;
        EXPECT_LE(done, total);
        EXPECT_EQ(total, 4u);
      });
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(progress_calls, 4u);
  EXPECT_EQ(cells[0].benchmark, "vcopy");
  EXPECT_EQ(cells[3].benchmark, "dot");
  for (const kernels::StudyCell& cell : cells) {
    EXPECT_EQ(cell.result.experiments, 20u);
  }
}

TEST(Study, DetectorsReportDetectionRates) {
  kernels::StudyConfig config;
  config.benchmarks = {"vcopy"};
  config.isas = {ir::Isa::AVX};
  config.categories = {analysis::FaultSiteCategory::Control};
  config.campaign.experiments_per_campaign = 40;
  config.campaign.min_campaigns = 2;
  config.campaign.max_campaigns = 2;
  config.with_detectors = true;
  const auto cells = kernels::run_resiliency_study(config);
  ASSERT_EQ(cells.size(), 1u);
  // Control faults on vcopy are detected at a meaningful rate (Figure 12).
  EXPECT_GT(cells[0].result.detected_sdc, 0u);
}

TEST(Driver, OutcomeNames) {
  EXPECT_STREQ(outcome_name(Outcome::SDC), "SDC");
  EXPECT_STREQ(outcome_name(Outcome::Benign), "Benign");
  EXPECT_STREQ(outcome_name(Outcome::Crash), "Crash");
}

}  // namespace
}  // namespace vulfi
