// End-to-end exit-code contract of the vulfi CLI, driven through real
// fork/exec of the built binary (VULFI_CLI_PATH is injected by CMake).
// The contract — 0 converged / 2 usage / 3 internal / 4 unconverged /
// 5 interrupted — is what CI scripts and the campaign service key on,
// so it is pinned here end to end rather than only at the
// campaign_exit_code unit level.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace {

struct RunResult {
  bool exited = false;  ///< WIFEXITED — false means signal-killed
  int code = -1;
};

/// Runs the CLI with `args`, stdout/stderr silenced. When
/// `interrupt_after_ms` is positive, sends SIGINT to the child after
/// that delay (the interactive ^C path).
RunResult run_cli(const std::vector<std::string>& args,
                  int interrupt_after_ms = 0) {
  std::vector<const char*> argv;
  argv.push_back(VULFI_CLI_PATH);
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    ::execv(VULFI_CLI_PATH, const_cast<char* const*>(argv.data()));
    _exit(127);  // exec failed
  }
  RunResult result;
  if (pid < 0) return result;
  if (interrupt_after_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(interrupt_after_ms));
    ::kill(pid, SIGINT);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return result;
  result.exited = WIFEXITED(status);
  result.code = result.exited ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "cli_contract_" + name + "_" +
         std::to_string(::getpid());
}

TEST(CliExitCodes, ConvergedCampaignExitsZero) {
  // A margin loose enough that the stop rule is satisfied right at
  // min_campaigns: deterministic by seeding, verified convergent.
  const RunResult result = run_cli({"campaign", "--benchmark", "dot",
                                    "--category", "control", "--campaigns",
                                    "3", "--experiments", "20", "--margin",
                                    "0.9"});
  ASSERT_TRUE(result.exited);
  EXPECT_EQ(result.code, 0);
}

TEST(CliExitCodes, UsageErrorsExitTwo) {
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"campaign", "--benchmark", "no-such-kernel"},
        std::vector<std::string>{"campaign", "--benchmark", "dot",
                                 "--bogus-flag", "1"},
        std::vector<std::string>{"campaign", "--benchmark", "dot",
                                 "--fsync", "sometimes"},
        std::vector<std::string>{"submit"}}) {  // submit without --socket
    const RunResult result = run_cli(args);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.code, 2) << args.front();
  }
}

TEST(CliExitCodes, CheckpointMismatchExitsThree) {
  const std::string checkpoint = temp_path("mismatch.ckpt");
  std::remove(checkpoint.c_str());
  const std::vector<std::string> base = {
      "campaign",      "--benchmark", "dot", "--category", "control",
      "--campaigns",   "2",           "--experiments", "10",
      "--checkpoint",  checkpoint};

  std::vector<std::string> first = base;
  first.insert(first.end(), {"--seed", "1"});
  const RunResult seeded = run_cli(first);
  ASSERT_TRUE(seeded.exited);
  ASSERT_NE(seeded.code, 3);  // the run itself is healthy

  // Resuming the same journal under a different seed is an internal
  // error: the header pins the configuration the statistics depend on.
  std::vector<std::string> second = base;
  second.insert(second.end(), {"--seed", "2"});
  const RunResult mismatched = run_cli(second);
  ASSERT_TRUE(mismatched.exited);
  EXPECT_EQ(mismatched.code, 3);
  std::remove(checkpoint.c_str());
}

TEST(CliExitCodes, UnconvergedCampaignExitsFour) {
  // Two campaigns can never satisfy a ±3% margin here; the run stops at
  // max_campaigns unconverged.
  const RunResult result =
      run_cli({"campaign", "--benchmark", "dot", "--category", "control",
               "--campaigns", "2", "--experiments", "10"});
  ASSERT_TRUE(result.exited);
  EXPECT_EQ(result.code, 4);
}

TEST(CliExitCodes, DiffContract) {
  // Missing --store is a usage error.
  const RunResult no_store = run_cli({"diff", "--units", "dot"});
  ASSERT_TRUE(no_store.exited);
  EXPECT_EQ(no_store.code, 2);

  // Unknown unit: usage error, store untouched beyond the header.
  const std::string store = temp_path("diff_store");
  const RunResult bad_unit = run_cli(
      {"diff", "--store", store, "--units", "no-such-kernel"});
  ASSERT_TRUE(bad_unit.exited);
  EXPECT_EQ(bad_unit.code, 2);

  // Missing --against baseline store: refusal, exit 3.
  const RunResult bad_baseline = run_cli(
      {"diff", "--store", store, "--units", "dot", "--against",
       temp_path("diff_never_created"), "--experiments", "10",
       "--campaigns", "2", "--max-campaigns", "2"});
  ASSERT_TRUE(bad_baseline.exited);
  EXPECT_EQ(bad_baseline.code, 3);

  // A healthy run, then an unchanged rerun — both exit 0.
  const std::vector<std::string> ok_args = {
      "diff", "--store", store, "--units", "dot", "--experiments", "10",
      "--campaigns", "2", "--max-campaigns", "2", "--margin", "0.9"};
  const RunResult fresh = run_cli(ok_args);
  ASSERT_TRUE(fresh.exited);
  EXPECT_EQ(fresh.code, 0);
  const RunResult rerun = run_cli(ok_args);
  ASSERT_TRUE(rerun.exited);
  EXPECT_EQ(rerun.code, 0);
  std::remove((store + "/summaries.jsonl").c_str());
}

TEST(CliExitCodes, InterruptedCampaignExitsFive) {
  const std::string checkpoint = temp_path("interrupt.ckpt");
  std::remove(checkpoint.c_str());
  // Long enough that SIGINT lands mid-run; the handler converts it to a
  // cooperative cancellation, so the child must EXIT with code 5, not
  // die on the signal.
  const RunResult result =
      run_cli({"campaign", "--benchmark", "dot", "--category", "control",
               "--campaigns", "200", "--experiments", "200", "--checkpoint",
               checkpoint},
              /*interrupt_after_ms=*/1500);
  ASSERT_TRUE(result.exited) << "child was signal-killed instead of "
                                "exiting via the cancellation path";
  EXPECT_EQ(result.code, 5);
  std::remove(checkpoint.c_str());
}

}  // namespace
