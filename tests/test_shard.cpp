// Sharded-campaign suite: shard planning, worker journals, the
// deterministic merge, and the crash-supervised end-to-end paths.
//
// The load-bearing property mirrors the checkpoint suite's: a campaign
// run as N supervised worker processes — at any N, under any
// crash/restart schedule, with torn shard tails — must merge to final
// statistics byte-identical to a single-process run. Crash and hang
// injection goes through the VULFI_CRASH_AFTER_EXPERIMENTS /
// VULFI_HANG_AFTER_EXPERIMENTS hooks (raise(SIGKILL) from inside the
// worker — a real SIGKILL, not a simulated exit), which only exist in
// test builds; the supervised tests skip when the hook is compiled out.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "kernels/benchmark.hpp"
#include "serve/engine_cache.hpp"
#include "serve/shard.hpp"
#include "support/journal.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/report.hpp"

namespace vulfi::serve {
namespace {

std::string temp_base(const std::string& name) {
  return testing::TempDir() + "vulfi_shard_" + name + "_" +
         std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

/// RAII setenv: the crash/hang hooks are read from the environment by
/// the worker (inherited on first launch, stripped on restart).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// The standard short campaign of the checkpoint suite: dot product,
/// 3 input engines, 20 experiments x [3, 6] campaigns.
CampaignRequest test_request() {
  CampaignRequest request;
  request.benchmark = "dot";
  request.category = "pure-data";
  request.isa = "avx";
  request.experiments = 20;
  request.min_campaigns = 3;
  request.max_campaigns = 6;
  request.seed = 0xfeedULL;
  return request;
}

/// The request's engine set, configured exactly as a worker builds it.
std::vector<std::unique_ptr<InjectionEngine>> engines_of(
    const CampaignRequest& request) {
  const kernels::Benchmark* bench =
      kernels::find_benchmark(request.benchmark);
  std::vector<std::unique_ptr<InjectionEngine>> engines;
  for (unsigned input = 0; input < bench->num_inputs(); ++input) {
    auto engine = std::make_unique<InjectionEngine>(
        bench->build(spmd::Target::avx(), input),
        analysis::FaultSiteCategory::PureData);
    engine->set_golden_cache_enabled(request.golden_cache);
    engine->set_static_prune(request.static_prune);
    engines.push_back(std::move(engine));
  }
  return engines;
}

/// The single-process ground truth every sharded run must reproduce.
CampaignResult run_unsharded(const CampaignRequest& request,
                             const std::string& checkpoint = "") {
  auto engines = engines_of(request);
  std::vector<InjectionEngine*> pointers;
  for (auto& engine : engines) pointers.push_back(engine.get());
  CampaignConfig config = to_campaign_config(request, 0);
  config.checkpoint_path = checkpoint;
  return run_campaigns(pointers, config);
}

/// Runs every shard worker in-process and returns the journal paths.
std::vector<std::string> run_workers(const CampaignRequest& request,
                                     unsigned shards,
                                     const std::string& base) {
  std::vector<std::string> paths;
  for (unsigned s = 0; s < shards; ++s) {
    ShardWorkerOptions options;
    options.request = request;
    options.shard_index = s;
    options.shard_total = shards;
    options.journal_path = base + ".shard" + std::to_string(s);
    EXPECT_EQ(run_shard_worker(options), 0) << "shard " << s;
    paths.push_back(options.journal_path);
  }
  return paths;
}

// --- shard planning --------------------------------------------------------

TEST(ShardPlan, PartitionsContiguouslyWithNearEqualSizes) {
  for (const unsigned maxc : {1u, 5u, 6u, 7u, 64u}) {
    for (const unsigned shards : {1u, 2u, 3u, 7u, 100u}) {
      const std::vector<ShardRange> plan = shard_plan(maxc, shards);
      ASSERT_FALSE(plan.empty());
      EXPECT_LE(plan.size(), static_cast<std::size_t>(maxc));
      std::uint64_t next = 0;
      unsigned lo = plan.front().count, hi = plan.front().count;
      for (const ShardRange& range : plan) {
        EXPECT_EQ(range.first, next);  // contiguous, in order
        EXPECT_GT(range.count, 0u);    // no empty shard
        lo = std::min(lo, range.count);
        hi = std::max(hi, range.count);
        next += range.count;
      }
      EXPECT_EQ(next, maxc);    // exact cover of [0, maxc)
      EXPECT_LE(hi - lo, 1u);   // near-equal split
    }
  }
}

TEST(ShardPlan, ZeroCampaignsYieldsNoShards) {
  EXPECT_TRUE(shard_plan(0, 4).empty());
}

// --- workers + merge -------------------------------------------------------

TEST(ShardMerge, AnyShardCountMergesBitIdenticalToUnsharded) {
  const CampaignRequest request = test_request();
  const CampaignResult baseline = run_unsharded(request);
  ASSERT_TRUE(baseline.ok());

  for (const unsigned shards : {1u, 2u, 3u}) {
    const std::string base =
        temp_base("merge" + std::to_string(shards));
    const std::vector<std::string> paths =
        run_workers(request, shards, base);
    const ShardMergeOutcome merge = merge_shards(request, paths, base);
    EXPECT_TRUE(merge.error.empty()) << merge.error;
    EXPECT_EQ(merge.exit_code, campaign_exit_code(baseline));
    EXPECT_EQ(campaign_stats_json(merge.result),
              campaign_stats_json(baseline))
        << shards << " shards";

    // The merged journal is a plain checkpoint: resuming it replays the
    // whole history and re-runs nothing.
    const CampaignResult resumed = run_unsharded(request, base);
    EXPECT_EQ(campaign_stats_json(resumed), campaign_stats_json(baseline));

    for (const std::string& path : paths) std::remove(path.c_str());
    std::remove(base.c_str());
  }
}

TEST(ShardMerge, RefusesDuplicateCampaignIndices) {
  const CampaignRequest request = test_request();
  const std::string base = temp_base("dup");
  const std::vector<std::string> paths = run_workers(request, 2, base);

  // The same shard journal twice: shard 0's campaigns appear twice.
  const ShardMergeOutcome merge =
      merge_shards(request, {paths[0], paths[0]}, "");
  EXPECT_EQ(merge.exit_code, kCampaignExitInternalError);
  EXPECT_FALSE(merge.error.empty());

  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(ShardMerge, RefusesMismatchedConfiguration) {
  const CampaignRequest request = test_request();
  const std::string base = temp_base("config");
  const std::vector<std::string> paths = run_workers(request, 2, base);

  CampaignRequest other = request;
  other.seed += 1;  // any header-pinned knob: seed, experiments, margin...
  const ShardMergeOutcome merge = merge_shards(other, paths, "");
  EXPECT_EQ(merge.exit_code, kCampaignExitInternalError);
  EXPECT_FALSE(merge.error.empty());

  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(ShardMerge, RefusesForeignBuildFingerprint) {
  const CampaignRequest request = test_request();
  const std::string base = temp_base("build");
  const std::vector<std::string> paths = run_workers(request, 2, base);

  // Rewrite shard 1's header as if another binary had produced it: patch
  // the build fingerprint and re-seal the line (the checksum still
  // verifies, so this exercises the mismatch diagnostic, not recovery).
  const std::string bytes = read_file(paths[1]);
  const std::size_t nl = bytes.find('\n');
  ASSERT_NE(nl, std::string::npos);
  const std::optional<std::string> header =
      journal_unseal(std::string_view(bytes).substr(0, nl));
  ASSERT_TRUE(header.has_value());
  const std::size_t key = header->find("\"build\":\"");
  ASSERT_NE(key, std::string::npos);
  const std::size_t start = key + std::string("\"build\":\"").size();
  const std::size_t end = header->find('"', start);
  const std::string patched = header->substr(0, start) + "someone-else" +
                              header->substr(end);
  write_file(paths[1], journal_seal(patched) + "\n" + bytes.substr(nl + 1));

  const ShardMergeOutcome merge = merge_shards(request, paths, "");
  EXPECT_EQ(merge.exit_code, kCampaignExitInternalError);
  EXPECT_NE(merge.error.find("binary"), std::string::npos) << merge.error;

  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(ShardMerge, MissingShardYieldsExplicitPartialResult) {
  const CampaignRequest request = test_request();
  const std::string base = temp_base("gap");
  const std::vector<std::string> paths = run_workers(request, 3, base);

  // Drop the middle shard: the merge must degrade to the longest
  // contiguous prefix and name the shard that owns the gap.
  const ShardMergeOutcome merge =
      merge_shards(request, {paths[0], paths[2]}, "");
  EXPECT_EQ(merge.exit_code, kCampaignExitShardPartial);
  ASSERT_EQ(merge.missing_shards.size(), 1u);
  EXPECT_EQ(merge.missing_shards[0], 1u);
  EXPECT_EQ(merge.result.campaigns, shard_plan(6, 3)[0].count);

  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(ShardMerge, TornShardTailsRecoverAndResume) {
  const CampaignRequest request = test_request();
  const CampaignResult baseline = run_unsharded(request);
  const std::string base = temp_base("torn");
  const std::vector<std::string> paths = run_workers(request, 3, base);

  // Tear the tails of 2 of the 3 shard files mid-record (a crash during
  // an append): recovery rolls back to the last sealed record and the
  // re-run worker finishes the range from there.
  for (const unsigned victim : {0u, 2u}) {
    const std::string bytes = read_file(paths[victim]);
    ASSERT_GT(bytes.size(), 10u);
    write_file(paths[victim], bytes.substr(0, bytes.size() - 10));

    ShardWorkerOptions options;
    options.request = request;
    options.shard_index = victim;
    options.shard_total = 3;
    options.journal_path = paths[victim];
    EXPECT_EQ(run_shard_worker(options), 0);
  }

  const ShardMergeOutcome merge = merge_shards(request, paths, "");
  EXPECT_TRUE(merge.error.empty()) << merge.error;
  EXPECT_EQ(campaign_stats_json(merge.result),
            campaign_stats_json(baseline));

  for (const std::string& path : paths) std::remove(path.c_str());
}

// --- supervised end-to-end -------------------------------------------------

SupervisorOptions supervisor_options(const CampaignRequest& request,
                                     unsigned shards,
                                     const std::string& base) {
  SupervisorOptions options;
  options.request = request;
  options.shards = shards;
  options.journal_base = base;
  options.worker_binary = VULFI_CLI_PATH;
  options.backoff_base_ms = 1;  // tests should not sleep through backoff
  options.heartbeat_ms = 50;
  return options;
}

void remove_journals(const std::string& base, unsigned shards) {
  std::remove(base.c_str());
  for (unsigned s = 0; s < shards; ++s) {
    std::remove((base + ".shard" + std::to_string(s)).c_str());
  }
}

TEST(ShardSupervisor, SupervisedRunMatchesUnsharded) {
  const CampaignRequest request = test_request();
  const CampaignResult baseline = run_unsharded(request);

  for (const unsigned shards : {1u, 3u}) {
    const std::string base = temp_base("sup" + std::to_string(shards));
    const SupervisorResult sup =
        run_sharded_campaign(supervisor_options(request, shards, base));
    EXPECT_TRUE(sup.error.empty()) << sup.error;
    EXPECT_EQ(sup.exit_code, campaign_exit_code(baseline));
    EXPECT_EQ(sup.restarts, 0u);
    EXPECT_TRUE(sup.failed_shards.empty());
    EXPECT_EQ(campaign_stats_json(sup.result),
              campaign_stats_json(baseline))
        << shards << " shards";
    remove_journals(base, shards);
  }
}

TEST(ShardSupervisor, SigkilledWorkersRestartAndMergeBitIdentical) {
  if (!crash_hook_compiled()) {
    GTEST_SKIP() << "crash hook compiled out (Release without "
                    "-DVULFI_CRASH_HOOK=ON)";
  }
  const CampaignRequest request = test_request();
  const CampaignResult baseline = run_unsharded(request);

  // Every worker raises SIGKILL on itself mid-range (after 25 of its 40
  // experiments); the supervisor must restart each from its shard
  // journal and still merge byte-identically.
  const ScopedEnv crash("VULFI_CRASH_AFTER_EXPERIMENTS", "25");
  const std::string base = temp_base("crash");
  const SupervisorResult sup =
      run_sharded_campaign(supervisor_options(request, 3, base));
  EXPECT_TRUE(sup.error.empty()) << sup.error;
  EXPECT_EQ(sup.exit_code, campaign_exit_code(baseline));
  EXPECT_GE(sup.restarts, 3u);  // all three workers died once
  EXPECT_TRUE(sup.failed_shards.empty());
  EXPECT_EQ(campaign_stats_json(sup.result), campaign_stats_json(baseline));
  remove_journals(base, 3);
}

TEST(ShardSupervisor, RestartBudgetExhaustionDegradesToPartial) {
  if (!crash_hook_compiled()) {
    GTEST_SKIP() << "crash hook compiled out (Release without "
                    "-DVULFI_CRASH_HOOK=ON)";
  }
  const CampaignRequest request = test_request();

  // Crash before the first campaign completes, on every attempt: the
  // budget runs out and the run must degrade to an explicit partial
  // result — exit 6, failed shards named — never hang or report success.
  const ScopedEnv crash("VULFI_CRASH_AFTER_EXPERIMENTS", "5");
  const ScopedEnv always("VULFI_CRASH_EVERY_ATTEMPT", "1");
  const std::string base = temp_base("exhaust");
  SupervisorOptions options = supervisor_options(request, 2, base);
  options.max_restarts = 1;
  const SupervisorResult sup = run_sharded_campaign(options);
  EXPECT_EQ(sup.exit_code, kCampaignExitShardPartial);
  EXPECT_FALSE(sup.failed_shards.empty());
  EXPECT_FALSE(sup.interrupted);
  remove_journals(base, 2);
}

TEST(ShardSupervisor, HungWorkerIsKilledAndRestarted) {
  if (!crash_hook_compiled()) {
    GTEST_SKIP() << "crash hook compiled out (Release without "
                    "-DVULFI_CRASH_HOOK=ON)";
  }
  const CampaignRequest request = test_request();
  const CampaignResult baseline = run_unsharded(request);

  // A hung worker keeps heartbeating but its progress counter freezes;
  // the stall detector must SIGKILL and restart it under backoff.
  const ScopedEnv hang("VULFI_HANG_AFTER_EXPERIMENTS", "25");
  const std::string base = temp_base("hang");
  SupervisorOptions options = supervisor_options(request, 2, base);
  options.stall_timeout_seconds = 0.5;
  const SupervisorResult sup = run_sharded_campaign(options);
  EXPECT_TRUE(sup.error.empty()) << sup.error;
  EXPECT_EQ(sup.exit_code, campaign_exit_code(baseline));
  EXPECT_GE(sup.restarts, 2u);
  EXPECT_EQ(campaign_stats_json(sup.result), campaign_stats_json(baseline));
  remove_journals(base, 2);
}

}  // namespace
}  // namespace vulfi::serve
