// Resilience-layer suite: crash-safe checkpointing, cooperative
// cancellation, resume determinism, self-verification, and the CLI exit
// code contract.
//
// The load-bearing property: a campaign interrupted at ANY boundary and
// resumed from its checkpoint must produce final statistics bit-identical
// to an uninterrupted run — at any thread count, with pruning on or off,
// and even after the checkpoint's tail is torn or corrupted (recovery
// rolls back to the last valid record and the lost campaigns re-execute
// from their counter-derived seeds).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "kernels/benchmark.hpp"
#include "kernels/micro.hpp"
#include "support/journal.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/report.hpp"

namespace vulfi {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "vulfi_ckpt_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

struct RunOptions {
  unsigned threads = 1;
  std::string checkpoint;
  /// Cancel cooperatively once this many campaigns completed (0 = never).
  unsigned cancel_after = 0;
  bool static_prune = true;
  unsigned self_verify = 0;
  std::uint64_t seed = 0xfeedULL;
};

/// One dot-product campaign run (3 input engines, 20 experiments x
/// [3, 6] campaigns — short enough for tests, long enough to interrupt
/// at a mid-run campaign boundary).
CampaignResult run_dot(const RunOptions& opt) {
  const kernels::Benchmark& bench = kernels::dot_product_benchmark();
  std::vector<std::unique_ptr<InjectionEngine>> engines;
  std::vector<InjectionEngine*> pointers;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    engines.push_back(std::make_unique<InjectionEngine>(
        bench.build(spmd::Target::avx(), input),
        analysis::FaultSiteCategory::PureData));
    pointers.push_back(engines.back().get());
  }

  CampaignConfig config;
  config.experiments_per_campaign = 20;
  config.min_campaigns = 3;
  config.max_campaigns = 6;
  config.seed = opt.seed;
  config.num_threads = opt.threads;
  config.use_static_prune = opt.static_prune;
  config.checkpoint_path = opt.checkpoint;
  config.self_verify_every = opt.self_verify;

  CancellationToken token;
  config.cancel = &token;
  if (opt.cancel_after > 0) {
    config.on_campaign_complete = [&](const CampaignResult& r) {
      if (r.campaigns >= opt.cancel_after) token.request_cancel();
    };
  }
  return run_campaigns(pointers, config);
}

/// Bit-exact comparison of every scheduling-independent statistic.
/// prune_memo_hits and throughput are deliberately absent: memo reuse
/// depends on which worker ran an experiment first and on where a resume
/// split the run, and throughput covers executed work only.
void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.campaigns, b.campaigns);
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.detected_sdc, b.detected_sdc);
  EXPECT_EQ(a.detected_total, b.detected_total);
  EXPECT_EQ(a.prune_adjudicated, b.prune_adjudicated);
  EXPECT_EQ(a.prune_remapped, b.prune_remapped);
  ASSERT_EQ(a.campaign_sdc_rates.size(), b.campaign_sdc_rates.size());
  for (std::size_t i = 0; i < a.campaign_sdc_rates.size(); ++i) {
    EXPECT_EQ(a.campaign_sdc_rates[i], b.campaign_sdc_rates[i])
        << "campaign " << i;
  }
  EXPECT_EQ(a.sdc_samples.mean(), b.sdc_samples.mean());
  EXPECT_EQ(a.sdc_samples.variance(), b.sdc_samples.variance());
  EXPECT_EQ(a.margin_of_error, b.margin_of_error);
  EXPECT_EQ(a.near_normal, b.near_normal);
  EXPECT_EQ(a.converged, b.converged);
  // The canonical JSON rendering must agree byte for byte — it is what
  // the CI interrupt-resume job diffs.
  EXPECT_EQ(campaign_stats_json(a), campaign_stats_json(b));
}

TEST(CampaignCheckpoint, InterruptResumeIsBitIdentical) {
  for (const unsigned jobs : {1u, 4u}) {
    for (const bool prune : {true, false}) {
      SCOPED_TRACE(testing::Message()
                   << "jobs=" << jobs << " prune=" << prune);
      RunOptions base;
      base.threads = jobs;
      base.static_prune = prune;
      const CampaignResult uninterrupted = run_dot(base);
      ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.error;
      EXPECT_FALSE(uninterrupted.interrupted);

      const std::string ckpt = temp_path(
          "resume_j" + std::to_string(jobs) + (prune ? "_p" : "_np"));
      std::remove(ckpt.c_str());

      RunOptions interrupt = base;
      interrupt.checkpoint = ckpt;
      interrupt.cancel_after = 2;
      const CampaignResult interrupted = run_dot(interrupt);
      ASSERT_TRUE(interrupted.ok()) << interrupted.error;
      EXPECT_TRUE(interrupted.interrupted);
      EXPECT_GE(interrupted.campaigns, 2u);
      EXPECT_LT(interrupted.campaigns, uninterrupted.campaigns);
      EXPECT_EQ(campaign_exit_code(interrupted), kCampaignExitInterrupted);

      RunOptions resume = base;
      resume.checkpoint = ckpt;
      const CampaignResult resumed = run_dot(resume);
      ASSERT_TRUE(resumed.ok()) << resumed.error;
      EXPECT_FALSE(resumed.interrupted);
      EXPECT_GE(resumed.campaigns_restored, 2u);
      EXPECT_EQ(resumed.experiments_restored,
                static_cast<std::uint64_t>(resumed.campaigns_restored) * 20);
      expect_identical(uninterrupted, resumed);
      EXPECT_EQ(campaign_exit_code(resumed),
                resumed.converged ? kCampaignExitConverged
                                  : kCampaignExitUnconverged);
    }
  }
}

TEST(CampaignCheckpoint, ResumeAcrossThreadCounts) {
  // Interrupt under one --jobs value, resume under another: the header
  // deliberately excludes num_threads, and the statistics must still be
  // bit-identical to a serial uninterrupted run.
  const CampaignResult uninterrupted = run_dot({});
  const std::string ckpt = temp_path("cross_jobs");
  std::remove(ckpt.c_str());

  RunOptions interrupt;
  interrupt.threads = 4;
  interrupt.checkpoint = ckpt;
  interrupt.cancel_after = 2;
  ASSERT_TRUE(run_dot(interrupt).interrupted);

  RunOptions resume;
  resume.threads = 1;
  resume.checkpoint = ckpt;
  const CampaignResult resumed = run_dot(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  expect_identical(uninterrupted, resumed);
}

TEST(CampaignCheckpoint, CorruptOrTruncatedTailRecovers) {
  const CampaignResult uninterrupted = run_dot({});
  const std::string ckpt = temp_path("tail_master");
  std::remove(ckpt.c_str());
  RunOptions interrupt;
  interrupt.checkpoint = ckpt;
  interrupt.cancel_after = 2;
  ASSERT_TRUE(run_dot(interrupt).interrupted);
  const std::string journal = read_file(ckpt);
  ASSERT_FALSE(journal.empty());

  // Mutations modelling a torn final write and bit rot at several byte
  // offsets. Each drops the tail back to the last valid record; the
  // resumed run re-executes whatever was lost and must still match the
  // uninterrupted statistics bit for bit.
  struct Mutation {
    const char* name;
    std::string bytes;
  };
  std::vector<Mutation> mutations;
  mutations.push_back({"truncate_1", journal.substr(0, journal.size() - 1)});
  mutations.push_back({"truncate_half_record",
                       journal.substr(0, journal.size() - 40)});
  mutations.push_back({"garbage_tail", journal + "{\"t\":\"campaign\",\"c\""});
  std::string flipped = journal;
  flipped[journal.size() - 10] ^= 0x08;  // inside the last record
  mutations.push_back({"bit_rot_last_record", flipped});
  std::string flipped_mid = journal;
  flipped_mid[journal.size() / 2] ^= 0x01;
  mutations.push_back({"bit_rot_mid_file", flipped_mid});

  for (const Mutation& mutation : mutations) {
    SCOPED_TRACE(mutation.name);
    const std::string path = temp_path(std::string("tail_") + mutation.name);
    write_file(path, mutation.bytes);
    RunOptions resume;
    resume.checkpoint = path;
    const CampaignResult resumed = run_dot(resume);
    ASSERT_TRUE(resumed.ok()) << resumed.error;
    expect_identical(uninterrupted, resumed);
  }
}

TEST(CampaignCheckpoint, HeaderMismatchIsInternalErrorAndPreservesFile) {
  const std::string ckpt = temp_path("header_mismatch");
  std::remove(ckpt.c_str());
  RunOptions first;
  first.checkpoint = ckpt;
  ASSERT_TRUE(run_dot(first).ok());
  const std::string before = read_file(ckpt);

  // A different seed writes a different history — resuming must refuse
  // rather than blend the two, and must not clobber the existing file.
  RunOptions other;
  other.checkpoint = ckpt;
  other.seed = 0xbadULL;
  const CampaignResult refused = run_dot(other);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.error.find("configuration"), std::string::npos)
      << refused.error;
  EXPECT_EQ(refused.campaigns, 0u);
  EXPECT_EQ(campaign_exit_code(refused), kCampaignExitInternalError);
  EXPECT_EQ(read_file(ckpt), before);
}

TEST(CampaignCheckpoint, FullyRestoredRunExecutesNothing) {
  const std::string ckpt = temp_path("full_restore");
  std::remove(ckpt.c_str());
  RunOptions first;
  first.checkpoint = ckpt;
  const CampaignResult complete = run_dot(first);
  ASSERT_TRUE(complete.ok());

  const CampaignResult restored = run_dot(first);
  ASSERT_TRUE(restored.ok()) << restored.error;
  EXPECT_EQ(restored.campaigns_restored, restored.campaigns);
  // Throughput covers executed work only: a fully-restored run did none,
  // and a partial resume must not deflate experiments/sec by counting
  // restored experiments against this run's wall clock.
  EXPECT_EQ(restored.throughput.experiments, 0u);
  expect_identical(complete, restored);
}

TEST(CampaignCheckpoint, ThroughputCountsExecutedWorkOnly) {
  const std::string ckpt = temp_path("throughput");
  std::remove(ckpt.c_str());
  RunOptions interrupt;
  interrupt.checkpoint = ckpt;
  interrupt.cancel_after = 2;
  const CampaignResult interrupted = run_dot(interrupt);
  ASSERT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.throughput.experiments, interrupted.experiments);

  RunOptions resume;
  resume.checkpoint = ckpt;
  const CampaignResult resumed = run_dot(resume);
  ASSERT_TRUE(resumed.ok());
  EXPECT_GT(resumed.experiments_restored, 0u);
  EXPECT_EQ(resumed.throughput.experiments,
            resumed.experiments - resumed.experiments_restored);
  EXPECT_GT(resumed.throughput.experiments, 0u);
}

TEST(CampaignCancellation, PreCancelledTokenRunsNothing) {
  const kernels::Benchmark& bench = kernels::dot_product_benchmark();
  for (const unsigned jobs : {1u, 4u}) {
    SCOPED_TRACE(testing::Message() << "jobs=" << jobs);
    std::vector<std::unique_ptr<InjectionEngine>> engines;
    std::vector<InjectionEngine*> pointers;
    for (unsigned input = 0; input < bench.num_inputs(); ++input) {
      engines.push_back(std::make_unique<InjectionEngine>(
          bench.build(spmd::Target::avx(), input),
          analysis::FaultSiteCategory::PureData));
      pointers.push_back(engines.back().get());
    }
    CampaignConfig config;
    config.experiments_per_campaign = 20;
    config.min_campaigns = 3;
    config.max_campaigns = 6;
    config.num_threads = jobs;
    CancellationToken token;
    token.request_cancel();
    config.cancel = &token;
    const CampaignResult result = run_campaigns(pointers, config);
    EXPECT_TRUE(result.interrupted);
    EXPECT_EQ(result.campaigns, 0u);
    EXPECT_EQ(result.experiments, 0u);
    EXPECT_EQ(campaign_exit_code(result), kCampaignExitInterrupted);
  }
}

// ---------------------------------------------------------------------------
// Harness self-verification
// ---------------------------------------------------------------------------

TEST(CampaignSelfVerify, CleanRunPassesAtCadence) {
  RunOptions opt;
  opt.self_verify = 2;
  const CampaignResult result = run_dot(opt);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.self_verify_failures, 0u);
  EXPECT_EQ(result.self_verify_passes,
            static_cast<std::uint64_t>(result.campaigns / 2));
}

TEST(CampaignSelfVerify, PassCountSurvivesResume) {
  RunOptions base;
  base.self_verify = 1;
  const CampaignResult uninterrupted = run_dot(base);
  ASSERT_TRUE(uninterrupted.ok());

  const std::string ckpt = temp_path("verify_resume");
  std::remove(ckpt.c_str());
  RunOptions interrupt = base;
  interrupt.checkpoint = ckpt;
  interrupt.cancel_after = 2;
  ASSERT_TRUE(run_dot(interrupt).interrupted);

  RunOptions resume = base;
  resume.checkpoint = ckpt;
  const CampaignResult resumed = run_dot(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  // Restored verify audit records + this run's passes must add up to an
  // uninterrupted run's tally (cadence is a function of total campaigns).
  EXPECT_EQ(resumed.self_verify_passes, uninterrupted.self_verify_passes);
  expect_identical(uninterrupted, resumed);
}

TEST(CampaignSelfVerify, DetectsPoisonedGoldenCache) {
  const kernels::Benchmark& bench = kernels::dot_product_benchmark();
  std::vector<std::unique_ptr<InjectionEngine>> engines;
  std::vector<InjectionEngine*> pointers;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    engines.push_back(std::make_unique<InjectionEngine>(
        bench.build(spmd::Target::avx(), input),
        analysis::FaultSiteCategory::PureData));
    pointers.push_back(engines.back().get());
  }

  // Poison engine 0's memoized golden output — the exact failure mode
  // self-verification exists to catch (an SDC in the harness itself).
  GoldenCache poisoned = engines[0]->golden();
  ASSERT_FALSE(poisoned.output_bytes.empty());
  poisoned.output_bytes[0] ^= 0x01;
  engines[0]->set_golden_for_test(std::move(poisoned));

  CampaignConfig config;
  config.experiments_per_campaign = 20;
  config.min_campaigns = 3;
  config.max_campaigns = 6;
  config.num_threads = 1;
  // Cadence 1 → the first verification pass runs engine 0.
  config.self_verify_every = 1;
  const CampaignResult result = run_campaigns(pointers, config);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.self_verify_failures, 1u);
  EXPECT_NE(result.error.find("self-verification"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("output"), std::string::npos) << result.error;
  EXPECT_EQ(campaign_exit_code(result), kCampaignExitInternalError);
  // The run stopped at the failing boundary instead of accumulating
  // statistics against a corrupt golden reference.
  EXPECT_EQ(result.campaigns, 1u);
}

TEST(EngineSelfVerify, CleanEngineVerifies) {
  InjectionEngine engine(
      kernels::dot_product_benchmark().build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::PureData);
  // Vacuous before any golden run exists.
  EXPECT_TRUE(engine.verify_golden().ok);
  engine.warm_golden_cache();
  const GoldenVerifyResult verdict = engine.verify_golden();
  EXPECT_TRUE(verdict.ok) << verdict.diagnostic;
}

// ---------------------------------------------------------------------------
// Exit-code contract
// ---------------------------------------------------------------------------

TEST(CampaignExitCodes, ContractMapping) {
  CampaignResult result;
  // Default-constructed: nothing ran, nothing converged.
  EXPECT_EQ(campaign_exit_code(result), kCampaignExitUnconverged);

  result.converged = true;
  EXPECT_EQ(campaign_exit_code(result), kCampaignExitConverged);

  result.interrupted = true;
  EXPECT_EQ(campaign_exit_code(result), kCampaignExitInterrupted);

  result.error = "boom";
  EXPECT_EQ(campaign_exit_code(result), kCampaignExitInternalError);

  // A failed self-verification is an internal error even if the stop
  // rule was otherwise satisfied.
  CampaignResult verify_failed;
  verify_failed.converged = true;
  verify_failed.self_verify_failures = 1;
  EXPECT_EQ(campaign_exit_code(verify_failed), kCampaignExitInternalError);
}

}  // namespace
}  // namespace vulfi
