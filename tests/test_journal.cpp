// Unit tests for the crash-safe journal (support/journal.hpp): FNV-1a
// reference vectors, seal/unseal tamper detection, corrupt- and
// truncated-tail recovery at byte granularity, and writer rollback.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "support/journal.hpp"

namespace vulfi {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "vulfi_journal_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Fnv1a, ReferenceVectors) {
  // Published FNV-1a 64-bit test vectors; the checksum must be stable
  // across platforms or checkpoints stop being portable.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
  const char bytes[] = {'f', 'o', 'o', 'b', 'a', 'r'};
  EXPECT_EQ(fnv1a64(bytes, sizeof bytes), 0x85944171f73967e8ULL);
}

TEST(JournalSeal, RoundTripsAndStaysJson) {
  const std::string payload = "{\"t\":\"x\",\"n\":42}";
  const std::string sealed = journal_seal(payload);
  // The seal splices the checksum before the closing brace, keeping the
  // line a single JSON object.
  EXPECT_EQ(sealed.front(), '{');
  EXPECT_EQ(sealed.back(), '}');
  EXPECT_NE(sealed.find("\"fnv\":\""), std::string::npos);
  const auto unsealed = journal_unseal(sealed);
  ASSERT_TRUE(unsealed.has_value());
  EXPECT_EQ(*unsealed, payload);
}

TEST(JournalSeal, DetectsTamperedBytes) {
  const std::string sealed = journal_seal("{\"t\":\"x\",\"n\":42}");
  // Flip each byte in turn: every single-byte corruption must be caught.
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string tampered = sealed;
    tampered[i] ^= 0x20;
    EXPECT_FALSE(journal_unseal(tampered).has_value())
        << "corruption at byte " << i << " went undetected";
  }
}

TEST(JournalSeal, RejectsMalformedLines) {
  EXPECT_FALSE(journal_unseal("").has_value());
  EXPECT_FALSE(journal_unseal("{}").has_value());
  EXPECT_FALSE(journal_unseal("{\"t\":\"x\"}").has_value());
  EXPECT_FALSE(journal_unseal("not json at all").has_value());
  // Valid shape but checksum for different content.
  const std::string other = journal_seal("{\"t\":\"y\"}");
  std::string spliced = other;
  spliced.replace(spliced.find("\"y\""), 3, "\"z\"");
  EXPECT_FALSE(journal_unseal(spliced).has_value());
}

TEST(DoubleHex, BitExactRoundTrip) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           1.0 / 3.0,
                           -1234.5678e-12,
                           5e-324,  // smallest denormal
                           1.7976931348623157e308};
  for (double value : values) {
    const std::string hex = double_hex(value);
    EXPECT_EQ(hex.size(), 16u);
    const auto back = double_from_hex(hex);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(std::memcmp(&value, &*back, sizeof value), 0);
  }
  EXPECT_FALSE(double_from_hex("xyz").has_value());
  EXPECT_FALSE(double_from_hex("0123").has_value());
}

TEST(JournalRecovery, MissingFileIsEmptyJournal) {
  const JournalRecovery recovered =
      recover_journal(temp_path("does_not_exist.jsonl"));
  EXPECT_FALSE(recovered.file_existed);
  EXPECT_FALSE(recovered.tail_dropped);
  EXPECT_TRUE(recovered.records.empty());
  EXPECT_EQ(recovered.valid_bytes, 0u);
}

TEST(JournalWriter, AppendsRecoverableRecords) {
  const std::string path = temp_path("writer_basic.jsonl");
  std::remove(path.c_str());
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path, 0));
    EXPECT_TRUE(writer.append("{\"n\":1}"));
    EXPECT_TRUE(writer.append("{\"n\":2}"));
    EXPECT_TRUE(writer.append("{\"n\":3}"));
  }
  const JournalRecovery recovered = recover_journal(path);
  EXPECT_TRUE(recovered.file_existed);
  EXPECT_FALSE(recovered.tail_dropped);
  ASSERT_EQ(recovered.records.size(), 3u);
  EXPECT_EQ(recovered.records[0], "{\"n\":1}");
  EXPECT_EQ(recovered.records[2], "{\"n\":3}");
  EXPECT_EQ(recovered.valid_bytes, read_file(path).size());
}

/// Builds a journal of `n` sealed records and returns its raw bytes.
std::string journal_bytes(unsigned n) {
  std::string bytes;
  for (unsigned i = 0; i < n; ++i) {
    bytes += journal_seal("{\"n\":" + std::to_string(i) + "}");
    bytes += "\n";
  }
  return bytes;
}

TEST(JournalRecovery, TruncatedTailRollsBackToLastRecord) {
  const std::string path = temp_path("truncate.jsonl");
  const std::string full = journal_bytes(4);
  // Chop the file at every byte offset: recovery must always keep the
  // longest prefix of whole valid records and report the rest dropped.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_file(path, full.substr(0, cut));
    const JournalRecovery recovered = recover_journal(path);
    ASSERT_TRUE(recovered.file_existed);
    std::size_t whole = 0, consumed = 0;
    for (std::size_t pos = 0;;) {
      const std::size_t nl = full.find('\n', pos);
      if (nl == std::string::npos || nl >= cut) break;
      whole += 1;
      consumed = nl + 1;
      pos = nl + 1;
    }
    EXPECT_EQ(recovered.records.size(), whole) << "cut at " << cut;
    EXPECT_EQ(recovered.valid_bytes, consumed) << "cut at " << cut;
    EXPECT_EQ(recovered.tail_dropped, consumed != cut) << "cut at " << cut;
    for (std::size_t i = 0; i < recovered.records.size(); ++i) {
      EXPECT_EQ(recovered.records[i], "{\"n\":" + std::to_string(i) + "}");
    }
  }
}

TEST(JournalRecovery, CorruptTailRollsBackToLastValidRecord) {
  const std::string path = temp_path("corrupt.jsonl");
  const std::string full = journal_bytes(4);
  // Corrupt one byte of the third record: recovery keeps records 0-1 and
  // drops everything from the corruption onward (a later valid record
  // must NOT resurrect — history is a prefix, not a subset).
  const std::size_t second_nl = full.find('\n', full.find('\n') + 1);
  for (const std::size_t victim :
       {second_nl + 1, second_nl + 5, full.find('\n', second_nl + 1) - 1}) {
    std::string corrupted = full;
    corrupted[victim] ^= 0x01;
    write_file(path, corrupted);
    const JournalRecovery recovered = recover_journal(path);
    ASSERT_EQ(recovered.records.size(), 2u) << "victim byte " << victim;
    EXPECT_EQ(recovered.valid_bytes, second_nl + 1);
    EXPECT_TRUE(recovered.tail_dropped);
  }
}

TEST(JournalWriter, RollbackThenAppendYieldsCleanHistory) {
  const std::string path = temp_path("rollback.jsonl");
  // Simulate a torn final write, then the writer reopening at the valid
  // prefix: the corrupt tail must be gone from disk and the next append
  // must land immediately after the last valid record.
  write_file(path, journal_bytes(3) + "{\"n\":3,\"fnv\":\"dead");
  const JournalRecovery recovered = recover_journal(path);
  ASSERT_EQ(recovered.records.size(), 3u);
  EXPECT_TRUE(recovered.tail_dropped);

  JournalWriter writer;
  ASSERT_TRUE(writer.open(path, recovered.valid_bytes));
  EXPECT_TRUE(writer.append("{\"n\":99}"));
  writer.close();

  const JournalRecovery after = recover_journal(path);
  EXPECT_FALSE(after.tail_dropped);
  ASSERT_EQ(after.records.size(), 4u);
  EXPECT_EQ(after.records[3], "{\"n\":99}");
  EXPECT_EQ(after.valid_bytes, read_file(path).size());
}

TEST(JournalWriter, OpenFailureReportsError) {
  std::string error;
  JournalWriter writer;
  EXPECT_FALSE(writer.open(temp_path("no_such_dir") + "/x/y.jsonl", 0,
                           &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(writer.is_open());
  EXPECT_FALSE(writer.append("{\"n\":0}"));
}

TEST(JournalFields, FlatFieldExtraction) {
  const std::string payload =
      "{\"t\":\"campaign\",\"c\":17,\"margin\":\"3f9eb851eb851eb8\"}";
  EXPECT_EQ(journal_u64(payload, "c").value_or(0), 17u);
  EXPECT_EQ(journal_str(payload, "t").value_or(""), "campaign");
  EXPECT_EQ(journal_str(payload, "margin").value_or(""),
            "3f9eb851eb851eb8");
  EXPECT_FALSE(journal_u64(payload, "missing").has_value());
  EXPECT_FALSE(journal_str(payload, "c").has_value());
  EXPECT_FALSE(journal_u64(payload, "t").has_value());
}

}  // namespace
}  // namespace vulfi
