// Differential suite for the template JIT backend (src/jit).
//
// Three layers, mirroring the backend's own structure:
//  * encoder unit tests — emitted bytes against hand-checked x86-64
//    encodings (REX/ModRM/SIB corner cases the lowering relies on);
//  * executable-memory smoke — a hand-assembled function round-trips
//    through the W^X publish path and actually runs;
//  * differential tests — every observable (trap kind + detail string,
//    raw return lanes, instruction/vector/call counts, golden caches,
//    experiment streams, campaign statistics) must be bit-identical
//    between jit::JitExecutor and the pre-decoded interpreter, at any
//    thread count, with pruning on or off.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "jit/backend.hpp"
#include "jit/encoder.hpp"
#include "jit/exec_memory.hpp"
#include "kernels/benchmark.hpp"
#include "kernels/micro.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

namespace vulfi::jit {
namespace {

using interp::Arena;
using interp::ExecLimits;
using interp::ExecResult;
using interp::Interpreter;
using interp::RtVal;
using interp::RuntimeEnv;
using interp::TrapKind;
using ir::FCmpPred;
using ir::ICmpPred;
using ir::IRBuilder;
using ir::Type;
using ir::Value;

// ---------------------------------------------------------------------------
// Encoder: bytes against hand-checked encodings
// ---------------------------------------------------------------------------

using Bytes = std::vector<std::uint8_t>;

TEST(JitEncoder, MovImmediate) {
  Encoder e;
  e.mov_ri32(Reg::RAX, 0x12345678u);
  EXPECT_EQ(e.finish(), Bytes({0xB8, 0x78, 0x56, 0x34, 0x12}));

  Encoder e2;
  e2.mov_ri64(Reg::R9, 0x1122334455667788ull);
  EXPECT_EQ(e2.finish(), Bytes({0x49, 0xB9, 0x88, 0x77, 0x66, 0x55, 0x44,
                                0x33, 0x22, 0x11}));

  // Small immediates shrink to the zero-extending 32-bit form.
  Encoder e3;
  e3.mov_ri64(Reg::RAX, 0x7F);
  EXPECT_EQ(e3.finish(), Bytes({0xB8, 0x7F, 0x00, 0x00, 0x00}));
}

TEST(JitEncoder, MovRegAndMemory) {
  Encoder e;
  e.mov_rr(Reg::RBX, Reg::RAX);
  EXPECT_EQ(e.finish(), Bytes({0x48, 0x89, 0xC3}));

  Encoder e2;
  e2.mov_rm(Reg::RAX, Reg::RBP, 8);
  EXPECT_EQ(e2.finish(), Bytes({0x48, 0x8B, 0x45, 0x08}));

  // RSP base forces a SIB byte.
  Encoder e3;
  e3.mov_rm(Reg::RAX, Reg::RSP, 0);
  EXPECT_EQ(e3.finish(), Bytes({0x48, 0x8B, 0x04, 0x24}));

  // RBP base cannot use the disp-less form (RIP-relative encoding).
  Encoder e4;
  e4.mov_rm(Reg::RAX, Reg::RBP, 0);
  EXPECT_EQ(e4.finish(), Bytes({0x48, 0x8B, 0x45, 0x00}));

  // ... and neither can R13, its REX twin.
  Encoder e5;
  e5.mov_rm(Reg::RAX, Reg::R13, 0);
  EXPECT_EQ(e5.finish(), Bytes({0x49, 0x8B, 0x45, 0x00}));

  Encoder e6;
  e6.mov_mr(Reg::RBX, 0, Reg::RAX);
  EXPECT_EQ(e6.finish(), Bytes({0x48, 0x89, 0x03}));
}

TEST(JitEncoder, ScaledIndexStore) {
  // mov [rbp + rcx*8 + 8], rax — the frame-slot store the insertelement
  // lowering uses for dynamic lane indices.
  Encoder e;
  e.mov_mr_index(Reg::RBP, Reg::RCX, 8, 8, Reg::RAX);
  EXPECT_EQ(e.finish(), Bytes({0x48, 0x89, 0x44, 0xCD, 0x08}));
}

TEST(JitEncoder, AluImmediateWidths) {
  Encoder e;
  e.add_ri(Reg::RAX, 1);  // imm8 form
  EXPECT_EQ(e.finish(), Bytes({0x48, 0x83, 0xC0, 0x01}));

  Encoder e2;
  e2.add_ri(Reg::RSP, 0x100);  // imm32 form
  EXPECT_EQ(e2.finish(), Bytes({0x48, 0x81, 0xC4, 0x00, 0x01, 0x00, 0x00}));
}

TEST(JitEncoder, SseAndFlags) {
  Encoder e;
  e.paddd(Xmm::XMM0, Xmm::XMM1);
  EXPECT_EQ(e.finish(), Bytes({0x66, 0x0F, 0xFE, 0xC1}));

  Encoder e2;
  e2.movdqu_xm(Xmm::XMM2, Reg::RBP, 0x10);
  EXPECT_EQ(e2.finish(), Bytes({0xF3, 0x0F, 0x6F, 0x55, 0x10}));

  Encoder e3;
  e3.movq_xr(Xmm::XMM1, Reg::RAX);
  EXPECT_EQ(e3.finish(), Bytes({0x66, 0x48, 0x0F, 0x6E, 0xC8}));

  Encoder e4;
  e4.setcc_zx(Cond::E, Reg::RAX);
  EXPECT_EQ(e4.finish(), Bytes({0x0F, 0x94, 0xC0, 0x0F, 0xB6, 0xC0}));
}

TEST(JitEncoder, StackAndCalls) {
  Encoder e;
  e.push(Reg::RBP);
  e.push(Reg::R13);
  e.call_reg(Reg::RAX);
  e.ret();
  EXPECT_EQ(e.finish(), Bytes({0x55, 0x41, 0x55, 0xFF, 0xD0, 0xC3}));
}

TEST(JitEncoder, LabelFixups) {
  // Forward jcc to the next instruction resolves to rel32 == 0.
  Encoder e;
  Encoder::Label fwd = e.new_label();
  e.jcc(Cond::AE, fwd);
  e.bind(fwd);
  EXPECT_EQ(e.finish(), Bytes({0x0F, 0x83, 0x00, 0x00, 0x00, 0x00}));

  // Backward jmp to its own start: rel32 == -5.
  Encoder e2;
  Encoder::Label back = e2.new_label();
  e2.bind(back);
  e2.jmp(back);
  EXPECT_EQ(e2.finish(), Bytes({0xE9, 0xFB, 0xFF, 0xFF, 0xFF}));
}

// ---------------------------------------------------------------------------
// Executable memory: publish and run a hand-assembled doubling function
// ---------------------------------------------------------------------------

TEST(JitExecMemory, PublishedCodeRuns) {
  if (!ExecMemory::available()) {
    GTEST_SKIP() << "host forbids executable mappings";
  }
  Encoder e;
  e.mov_rr(Reg::RAX, Reg::RDI);
  e.add_rr(Reg::RAX, Reg::RAX);
  e.ret();
  ExecMemory mem;
  const std::uint8_t* base = mem.publish(e.finish());
  ASSERT_NE(base, nullptr);
  auto fn = reinterpret_cast<std::uint64_t (*)(std::uint64_t)>(
      const_cast<std::uint8_t*>(base));
  EXPECT_EQ(fn(21), 42u);
  EXPECT_EQ(fn(0x8000000000000000ull), 0u);  // 64-bit wraparound
}

// ---------------------------------------------------------------------------
// Differential harness: one function, both backends, every observable
// ---------------------------------------------------------------------------

/// Builds f(params) { ret emit(b, f); }, runs it through the pre-decoded
/// interpreter and through JitExecutor (each on a private arena), and
/// returns both results for comparison.
class DualHarness {
 public:
  DualHarness() : module_("jit_diff"), builder_(module_) {}

  ir::Module& module() { return module_; }

  struct Pair {
    ExecResult interp;
    ExecResult jit;
    bool native = false;  // the JIT actually compiled the entry
  };

  ir::Function* build(
      Type ret_type, const std::vector<Type>& params,
      const std::function<Value*(IRBuilder&, ir::Function*)>& emit) {
    static int counter = 0;
    ir::Function* f = module_.create_function(
        "f" + std::to_string(counter++), ret_type, params);
    ir::BasicBlock* bb = f->create_block("entry");
    builder_.set_insert_block(bb);
    Value* result = emit(builder_, f);
    builder_.ret(ret_type.is_void() ? nullptr : result);
    const auto errors = ir::verify(*f);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? std::string() : errors.front());
    return f;
  }

  Pair run_fn(ir::Function* f, const std::vector<RtVal>& args,
              ExecLimits limits = {}) {
    Pair out;
    {
      Arena arena;
      RuntimeEnv env;
      Interpreter interp(arena, env, limits);
      out.interp = interp.run(*f, args);
    }
    {
      Arena arena;
      RuntimeEnv env;
      Interpreter fallback(arena, env);
      JitExecutor exec(arena, env, fallback, limits);
      out.jit = exec.run(*f, args);
      out.native = exec.function_compiled(*f);
    }
    return out;
  }

  Pair run(Type ret_type, const std::vector<Type>& params,
           const std::vector<RtVal>& args,
           const std::function<Value*(IRBuilder&, ir::Function*)>& emit,
           ExecLimits limits = {}) {
    return run_fn(build(ret_type, params, emit), args, limits);
  }

  IRBuilder& b() { return builder_; }

 private:
  ir::Module module_;
  IRBuilder builder_;
};

void expect_same(const DualHarness::Pair& p) {
  EXPECT_EQ(static_cast<int>(p.interp.trap.kind),
            static_cast<int>(p.jit.trap.kind));
  EXPECT_EQ(p.interp.trap.detail, p.jit.trap.detail);
  ASSERT_EQ(p.interp.return_value.lanes(), p.jit.return_value.lanes());
  for (unsigned lane = 0; lane < p.interp.return_value.lanes(); ++lane) {
    EXPECT_EQ(p.interp.return_value.raw[lane], p.jit.return_value.raw[lane])
        << "lane " << lane;
  }
  EXPECT_EQ(p.interp.stats.total_instructions, p.jit.stats.total_instructions);
  EXPECT_EQ(p.interp.stats.vector_instructions,
            p.jit.stats.vector_instructions);
  EXPECT_EQ(p.interp.stats.calls, p.jit.stats.calls);
}

RtVal vec_i(Type elem, unsigned lanes, std::vector<std::int64_t> vals) {
  RtVal v(elem.with_lanes(lanes));
  for (unsigned i = 0; i < lanes; ++i) v.set_lane_int(i, vals[i]);
  return v;
}

RtVal vec_f32(unsigned lanes, std::vector<float> vals) {
  RtVal v(Type::f32().with_lanes(lanes));
  for (unsigned i = 0; i < lanes; ++i) v.set_lane_f32(i, vals[i]);
  return v;
}

RtVal vec_f64(unsigned lanes, std::vector<double> vals) {
  RtVal v(Type::f64().with_lanes(lanes));
  for (unsigned i = 0; i < lanes; ++i) v.set_lane_f64(i, vals[i]);
  return v;
}

TEST(JitDiff, IntegerArithmeticAllWidths) {
  DualHarness h;
  // 4 x i32 — exercises the packed paddd/psubd pairs plus wrap.
  const Type v4i32 = Type::i32().with_lanes(4);
  auto p = h.run(
      v4i32, {v4i32, v4i32},
      {vec_i(Type::i32(), 4, {1, -7, 0x7FFFFFFF, 100}),
       vec_i(Type::i32(), 4, {2, 7, 1, -100})},
      [](IRBuilder& b, ir::Function* f) {
        Value* s = b.add(f->arg(0), f->arg(1));
        Value* d = b.mul(s, f->arg(0));
        return b.sub(d, f->arg(1));
      });
  EXPECT_TRUE(p.native || !JitExecutor::available());
  expect_same(p);

  // 8 x i8 — sub-word lanes with wrap, packed byte ops over u64 slots.
  const Type v8i8 = Type::i8().with_lanes(8);
  expect_same(h.run(v8i8, {v8i8, v8i8},
                    {vec_i(Type::i8(), 8, {200, 100, 255, 0, 1, 2, 3, 4}),
                     vec_i(Type::i8(), 8, {100, 100, 1, 0, 255, 2, 3, 4})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.add(f->arg(0), f->arg(1));
                    }));

  // 3 x i64 — odd lane count: one packed pair + one scalar remainder.
  const Type v3i64 = Type::i64().with_lanes(3);
  expect_same(
      h.run(v3i64, {v3i64, v3i64},
            {vec_i(Type::i64(), 3,
                   {std::numeric_limits<std::int64_t>::max(), -1, 7}),
             vec_i(Type::i64(), 3, {1, -1, 9})},
            [](IRBuilder& b, ir::Function* f) {
              return b.mul(b.add(f->arg(0), f->arg(1)), f->arg(1));
            }));
}

TEST(JitDiff, DivisionEdgeCases) {
  DualHarness h;
  const Type v2 = Type::i32().with_lanes(2);
  // INT_MIN / -1 wraps; INT_MIN % -1 == 0.
  expect_same(h.run(
      v2, {v2, v2},
      {vec_i(Type::i32(), 2, {std::numeric_limits<std::int32_t>::min(), -7}),
       vec_i(Type::i32(), 2, {-1, 2})},
      [](IRBuilder& b, ir::Function* f) {
        return b.add(b.sdiv(f->arg(0), f->arg(1)),
                     b.srem(f->arg(0), f->arg(1)));
      }));

  // Division by zero traps with the interpreter's exact detail string.
  for (bool is_signed : {true, false}) {
    auto p = h.run(Type::i32(), {Type::i32(), Type::i32()},
                   {RtVal::i32(1), RtVal::i32(0)},
                   [&](IRBuilder& b, ir::Function* f) {
                     return is_signed ? b.sdiv(f->arg(0), f->arg(1))
                                      : b.udiv(f->arg(0), f->arg(1));
                   });
    EXPECT_EQ(p.jit.trap.kind, TrapKind::DivByZero);
    expect_same(p);
  }
}

TEST(JitDiff, ShiftsIncludingOvershift) {
  DualHarness h;
  const Type v4 = Type::i32().with_lanes(4);
  for (auto op : {ir::Opcode::Shl, ir::Opcode::LShr, ir::Opcode::AShr}) {
    expect_same(h.run(
        v4, {v4, v4},
        {vec_i(Type::i32(), 4, {-8, 0x40000001, 5, -1}),
         vec_i(Type::i32(), 4, {1, 31, 32, 100})},  // 32 and 100 overshift
        [&](IRBuilder& b, ir::Function* f) {
          switch (op) {
            case ir::Opcode::Shl: return b.shl(f->arg(0), f->arg(1));
            case ir::Opcode::LShr: return b.lshr(f->arg(0), f->arg(1));
            default: return b.ashr(f->arg(0), f->arg(1));
          }
        }));
  }
}

TEST(JitDiff, IntegerCompares) {
  DualHarness h;
  const Type v4 = Type::i32().with_lanes(4);
  for (auto pred : {ICmpPred::EQ, ICmpPred::NE, ICmpPred::SLT, ICmpPred::SLE,
                    ICmpPred::SGT, ICmpPred::SGE, ICmpPred::ULT, ICmpPred::ULE,
                    ICmpPred::UGT, ICmpPred::UGE}) {
    expect_same(h.run(Type::i1().with_lanes(4), {v4, v4},
                      {vec_i(Type::i32(), 4, {-1, 0, 5, -128}),
                       vec_i(Type::i32(), 4, {1, 0, -5, -128})},
                      [&](IRBuilder& b, ir::Function* f) {
                        return b.icmp(pred, f->arg(0), f->arg(1));
                      }));
  }
}

TEST(JitDiff, FloatCompareOrderedUnordered) {
  DualHarness h;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const Type v4f = Type::f32().with_lanes(4);
  for (auto pred :
       {FCmpPred::OEQ, FCmpPred::ONE, FCmpPred::OLT, FCmpPred::OLE,
        FCmpPred::OGT, FCmpPred::OGE, FCmpPred::ORD, FCmpPred::UEQ,
        FCmpPred::UNE, FCmpPred::ULT, FCmpPred::ULE, FCmpPred::UGT,
        FCmpPred::UGE, FCmpPred::UNO}) {
    expect_same(h.run(Type::i1().with_lanes(4), {v4f, v4f},
                      {vec_f32(4, {1.0f, nan, -0.0f, 2.5f}),
                       vec_f32(4, {1.0f, 1.0f, 0.0f, nan})},
                      [&](IRBuilder& b, ir::Function* f) {
                        return b.fcmp(pred, f->arg(0), f->arg(1));
                      }));
  }
}

TEST(JitDiff, FloatArithmetic) {
  DualHarness h;
  // 3 x f32: quad/pair/scalar split paths plus the f32 raw invariant.
  const Type v3f = Type::f32().with_lanes(3);
  expect_same(h.run(v3f, {v3f, v3f},
                    {vec_f32(3, {1.5f, -2.25f, 1e30f}),
                     vec_f32(3, {0.5f, 4.0f, 1e30f})},
                    [](IRBuilder& b, ir::Function* f) {
                      Value* s = b.fadd(f->arg(0), f->arg(1));
                      Value* m = b.fmul(s, f->arg(0));
                      return b.fdiv(m, f->arg(1));
                    }));

  // 4 x f32: full-quad shufps pack/unpack path.
  const Type v4f = Type::f32().with_lanes(4);
  expect_same(h.run(v4f, {v4f, v4f},
                    {vec_f32(4, {1.0f, 2.0f, 3.0f, 4.0f}),
                     vec_f32(4, {0.25f, -8.0f, 0.0f, 1e-30f})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.fsub(b.fmul(f->arg(0), f->arg(1)), f->arg(0));
                    }));

  const Type v2d = Type::f64().with_lanes(2);
  expect_same(h.run(v2d, {v2d, v2d},
                    {vec_f64(2, {1e300, -0.0}), vec_f64(2, {1e-300, 0.0})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.fdiv(f->arg(0), f->arg(1));
                    }));

  // frem goes through the helper callout (fmod semantics, f32 and f64).
  expect_same(h.run(Type::f32(), {Type::f32(), Type::f32()},
                    {RtVal::f32(7.5f), RtVal::f32(2.0f)},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.frem(f->arg(0), f->arg(1));
                    }));
  expect_same(h.run(Type::f64(), {Type::f64(), Type::f64()},
                    {RtVal::f64(-9.75), RtVal::f64(2.5)},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.frem(f->arg(0), f->arg(1));
                    }));

  // fneg flips only the sign bit, NaN payloads included.
  expect_same(h.run(v4f, {v4f},
                    {vec_f32(4, {-1.0f, 0.0f,
                                 std::numeric_limits<float>::quiet_NaN(),
                                 -std::numeric_limits<float>::infinity()})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.fneg(f->arg(0));
                    }));
}

TEST(JitDiff, Casts) {
  DualHarness h;
  const Type v2i64 = Type::i64().with_lanes(2);
  const Type v2i16 = Type::i16().with_lanes(2);
  expect_same(h.run(v2i16, {v2i64}, {vec_i(Type::i64(), 2, {0x12345, -2})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.trunc(f->arg(0), Type::i16().with_lanes(2));
                    }));
  expect_same(h.run(v2i64, {v2i16}, {vec_i(Type::i16(), 2, {-5, 40000})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.sext(f->arg(0), Type::i64().with_lanes(2));
                    }));
  expect_same(h.run(v2i64, {v2i16}, {vec_i(Type::i16(), 2, {-5, 40000})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.zext(f->arg(0), Type::i64().with_lanes(2));
                    }));

  // fptosi saturates and maps NaN to 0 — the interpreter contract.
  const Type v4f = Type::f32().with_lanes(4);
  expect_same(h.run(
      Type::i32().with_lanes(4), {v4f},
      {vec_f32(4, {1e30f, -1e30f, std::numeric_limits<float>::quiet_NaN(),
                   -3.7f})},
      [](IRBuilder& b, ir::Function* f) {
        return b.fptosi(f->arg(0), Type::i32().with_lanes(4));
      }));
  expect_same(h.run(
      Type::i32().with_lanes(4), {v4f},
      {vec_f32(4, {1e30f, -1.0f, 3.9f, 4.1f})},
      [](IRBuilder& b, ir::Function* f) {
        return b.fptoui(f->arg(0), Type::i32().with_lanes(4));
      }));

  // sitofp to f32 rounds through double exactly like the interpreter.
  expect_same(h.run(v4f, {Type::i32().with_lanes(4)},
                    {vec_i(Type::i32(), 4, {16777217, -16777217, 0, 1})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.sitofp(f->arg(0), Type::f32().with_lanes(4));
                    }));
  expect_same(h.run(Type::f64().with_lanes(2), {v2i64},
                    {vec_i(Type::i64(), 2, {-1, 1ll << 53})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.uitofp(f->arg(0), Type::f64().with_lanes(2));
                    }));

  expect_same(h.run(Type::f64().with_lanes(2), {Type::f32().with_lanes(2)},
                    {vec_f32(2, {1.1f, -0.0f})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.fpext(f->arg(0), Type::f64().with_lanes(2));
                    }));
  expect_same(h.run(Type::f32().with_lanes(2), {Type::f64().with_lanes(2)},
                    {vec_f64(2, {1.0000000001, 1e300})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.fptrunc(f->arg(0), Type::f32().with_lanes(2));
                    }));

  // bitcast preserves raw bits (f32 <-> i32 keeps the low-32 invariant).
  expect_same(h.run(Type::i32().with_lanes(2), {Type::f32().with_lanes(2)},
                    {vec_f32(2, {-0.0f, 1.5f})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.bitcast(f->arg(0), Type::i32().with_lanes(2));
                    }));
}

TEST(JitDiff, VectorShuffleInsertExtractSelect) {
  DualHarness h;
  const Type v4 = Type::i32().with_lanes(4);
  expect_same(h.run(v4, {v4, v4},
                    {vec_i(Type::i32(), 4, {1, 2, 3, 4}),
                     vec_i(Type::i32(), 4, {5, 6, 7, 8})},
                    [](IRBuilder& b, ir::Function* f) {
                      // Undef lanes (-1) read as 0.
                      return b.shuffle(f->arg(0), f->arg(1), {6, 0, -1, 3});
                    }));
  expect_same(h.run(Type::i32(), {v4, Type::i32()},
                    {vec_i(Type::i32(), 4, {10, 20, 30, 40}), RtVal::i32(2)},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.extract_element(f->arg(0), f->arg(1));
                    }));
  expect_same(h.run(v4, {v4, Type::i32(), Type::i32()},
                    {vec_i(Type::i32(), 4, {10, 20, 30, 40}), RtVal::i32(99),
                     RtVal::i32(3)},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.insert_element(f->arg(0), f->arg(1), f->arg(2));
                    }));

  // Out-of-range dynamic lane traps, with the interpreter's detail string.
  auto oob = h.run(Type::i32(), {v4, Type::i32()},
                   {vec_i(Type::i32(), 4, {10, 20, 30, 40}), RtVal::i32(4)},
                   [](IRBuilder& b, ir::Function* f) {
                     return b.extract_element(f->arg(0), f->arg(1));
                   });
  EXPECT_EQ(oob.jit.trap.kind, TrapKind::BadLaneIndex);
  expect_same(oob);

  // Vector select with a per-lane condition mask.
  expect_same(h.run(v4, {Type::i1().with_lanes(4), v4, v4},
                    {vec_i(Type::i1(), 4, {1, 0, 1, 0}),
                     vec_i(Type::i32(), 4, {1, 2, 3, 4}),
                     vec_i(Type::i32(), 4, {-1, -2, -3, -4})},
                    [](IRBuilder& b, ir::Function* f) {
                      return b.select(f->arg(0), f->arg(1), f->arg(2));
                    }));
}

TEST(JitDiff, MemoryRoundTripAndBoundsTrap) {
  DualHarness h;
  // alloca + gep + store + load round trip over i32 elements.
  expect_same(h.run(
      Type::i32(), {Type::i32()}, {RtVal::i32(7)},
      [](IRBuilder& b, ir::Function* f) {
        Value* buf = b.alloca_bytes(64);
        Value* p1 = b.gep(buf, b.i32_const(3), 4);
        b.store(f->arg(0), p1);
        Value* p2 = b.gep(buf, b.i32_const(3), 4);
        return b.load(Type::i32(), p2);
      }));

  // Vector store + vector load round trip (contiguous lanes).
  const Type v4 = Type::i32().with_lanes(4);
  expect_same(h.run(v4, {v4}, {vec_i(Type::i32(), 4, {11, 22, 33, 44})},
                    [&](IRBuilder& b, ir::Function* f) {
                      Value* buf = b.alloca_bytes(64);
                      b.store(f->arg(0), buf);
                      return b.load(v4, buf);
                    }));
}

TEST(JitDiff, OutOfBoundsLoadTrapDetail) {
  DualHarness h;
  // Load far past the arena: both backends trap OutOfBounds with the same
  // formatted detail string (byte size and absolute address included).
  auto p = h.run(Type::i32(), {Type::ptr()},
                 {RtVal::ptr(0xDEAD000)},
                 [](IRBuilder& b, ir::Function* f) {
                   return b.load(Type::i32(), f->arg(0));
                 });
  EXPECT_EQ(p.jit.trap.kind, TrapKind::OutOfBounds);
  expect_same(p);

  // Address 0 (below the guard band) traps too.
  auto null_load = h.run(Type::i32(), {Type::ptr()}, {RtVal::ptr(0)},
                         [](IRBuilder& b, ir::Function* f) {
                           return b.load(Type::i32(), f->arg(0));
                         });
  EXPECT_EQ(null_load.jit.trap.kind, TrapKind::OutOfBounds);
  expect_same(null_load);
}

TEST(JitDiff, ControlFlowLoopWithPhis) {
  DualHarness h;
  // sum = 0; for (i = 0; i < n; ++i) sum += i*i; return sum.
  ir::Function* f = [&h] {
    ir::Function* fn = h.module().create_function("loop", Type::i32(),
                                                  {Type::i32()});
    ir::BasicBlock* entry = fn->create_block("entry");
    ir::BasicBlock* head = fn->create_block("head");
    ir::BasicBlock* body = fn->create_block("body");
    ir::BasicBlock* done = fn->create_block("done");
    IRBuilder& b = h.b();
    b.set_insert_block(entry);
    b.br(head);
    b.set_insert_block(head);
    ir::Instruction* i_phi = b.phi(Type::i32());
    ir::Instruction* sum_phi = b.phi(Type::i32());
    Value* cond = b.icmp(ICmpPred::SLT, i_phi, fn->arg(0));
    b.cond_br(cond, body, done);
    b.set_insert_block(body);
    Value* sq = b.mul(i_phi, i_phi);
    Value* next_sum = b.add(sum_phi, sq);
    Value* next_i = b.add(i_phi, b.i32_const(1));
    b.br(head);
    b.set_insert_block(done);
    b.ret(sum_phi);
    i_phi->phi_add_incoming(b.i32_const(0), entry);
    i_phi->phi_add_incoming(next_i, body);
    sum_phi->phi_add_incoming(b.i32_const(0), entry);
    sum_phi->phi_add_incoming(next_sum, body);
    const auto errors = ir::verify(*fn);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? std::string() : errors.front());
    return fn;
  }();

  expect_same(h.run_fn(f, {RtVal::i32(10)}));
  expect_same(h.run_fn(f, {RtVal::i32(0)}));

  // The same loop under a tight instruction budget: both backends trap
  // InstructionBudget at the same instruction count.
  ExecLimits tight;
  tight.max_instructions = 17;
  auto p = h.run_fn(f, {RtVal::i32(1000)}, tight);
  EXPECT_EQ(p.jit.trap.kind, TrapKind::InstructionBudget);
  EXPECT_EQ(p.jit.trap.detail, "dynamic instruction budget exhausted");
  expect_same(p);
}

TEST(JitDiff, UnreachableTraps) {
  DualHarness h;
  ir::Function* f =
      h.module().create_function("unreach", Type::void_ty(), {});
  ir::BasicBlock* bb = f->create_block("entry");
  h.b().set_insert_block(bb);
  h.b().unreachable();
  auto p = h.run_fn(f, {});
  EXPECT_EQ(p.jit.trap.kind, TrapKind::UnreachableExecuted);
  expect_same(p);
}

TEST(JitDiff, CallsAndDepthLimit) {
  DualHarness h;
  // callee(a, b) = a * b + 1 ; caller(x) = callee(x, x) + callee(x, 2).
  ir::Function* callee = h.module().create_function(
      "callee", Type::i32(), {Type::i32(), Type::i32()});
  {
    ir::BasicBlock* bb = callee->create_block("entry");
    h.b().set_insert_block(bb);
    Value* m = h.b().mul(callee->arg(0), callee->arg(1));
    h.b().ret(h.b().add(m, h.b().i32_const(1)));
  }
  ir::Function* caller =
      h.module().create_function("caller", Type::i32(), {Type::i32()});
  {
    ir::BasicBlock* bb = caller->create_block("entry");
    h.b().set_insert_block(bb);
    Value* a = h.b().call(callee, {caller->arg(0), caller->arg(0)});
    Value* c = h.b().call(callee, {caller->arg(0), h.b().i32_const(2)});
    h.b().ret(h.b().add(a, c));
  }
  auto p = h.run_fn(caller, {RtVal::i32(6)});
  EXPECT_EQ(p.jit.stats.calls, 2u);
  expect_same(p);

  // Unbounded recursion: both backends trap CallDepthExceeded with the
  // same instruction count.
  ir::Function* rec =
      h.module().create_function("rec", Type::i32(), {Type::i32()});
  {
    ir::BasicBlock* bb = rec->create_block("entry");
    h.b().set_insert_block(bb);
    Value* r = h.b().call(rec, {h.b().add(rec->arg(0), h.b().i32_const(1))});
    h.b().ret(r);
  }
  auto depth = h.run_fn(rec, {RtVal::i32(0)});
  EXPECT_EQ(depth.jit.trap.kind, TrapKind::CallDepthExceeded);
  expect_same(depth);
}

// ---------------------------------------------------------------------------
// Fallback behaviour
// ---------------------------------------------------------------------------

TEST(JitFallback, WideVectorsFallBackToInterpreter) {
  // 16 lanes exceeds the template JIT's 8-lane frame layout: the run must
  // silently execute on the interpreter with identical observables.
  DualHarness h;
  const Type v16 = Type::i32().with_lanes(16);
  ir::Function* f = h.build(v16, {v16, v16},
                            [](IRBuilder& b, ir::Function* fn) {
                              return b.add(fn->arg(0), fn->arg(1));
                            });
  std::vector<std::int64_t> a(16), bvals(16);
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 3 - 7;
    bvals[i] = 1000 - i;
  }
  const std::vector<RtVal> args = {vec_i(Type::i32(), 16, a),
                                   vec_i(Type::i32(), 16, bvals)};

  Arena arena;
  RuntimeEnv env;
  Interpreter fallback(arena, env);
  JitExecutor exec(arena, env, fallback);
  EXPECT_FALSE(exec.function_compiled(*f));
  const ExecResult jit_result = exec.run(*f, args);
  EXPECT_EQ(exec.native_runs(), 0u);
  EXPECT_EQ(exec.fallback_runs(), 1u);

  Arena arena2;
  RuntimeEnv env2;
  Interpreter interp(arena2, env2);
  const ExecResult ref = interp.run(*f, args);
  ASSERT_EQ(ref.return_value.lanes(), jit_result.return_value.lanes());
  for (unsigned lane = 0; lane < ref.return_value.lanes(); ++lane) {
    EXPECT_EQ(ref.return_value.raw[lane], jit_result.return_value.raw[lane]);
  }
  EXPECT_EQ(ref.stats.total_instructions, jit_result.stats.total_instructions);
}

TEST(JitFallback, CompilableFunctionRunsNatively) {
  if (!JitExecutor::available()) {
    GTEST_SKIP() << "host forbids executable mappings";
  }
  DualHarness h;
  ir::Function* f = h.build(Type::i32(), {Type::i32()},
                            [](IRBuilder& b, ir::Function* fn) {
                              return b.add(fn->arg(0), fn->arg(0));
                            });
  Arena arena;
  RuntimeEnv env;
  Interpreter fallback(arena, env);
  JitExecutor exec(arena, env, fallback);
  EXPECT_TRUE(exec.function_compiled(*f));
  (void)exec.run(*f, {RtVal::i32(21)});
  EXPECT_EQ(exec.native_runs(), 1u);
  EXPECT_EQ(exec.fallback_runs(), 0u);
}

// ---------------------------------------------------------------------------
// Kernel-level differential: golden caches and experiment streams
// ---------------------------------------------------------------------------

std::vector<const kernels::Benchmark*> registry_kernels() {
  std::vector<const kernels::Benchmark*> all = kernels::all_benchmarks();
  for (const kernels::Benchmark* micro : kernels::micro_benchmarks()) {
    all.push_back(micro);
  }
  return all;
}

std::unique_ptr<InjectionEngine> make_engine(const kernels::Benchmark& bench,
                                             interp::ExecMode backend,
                                             bool static_prune = true) {
  EngineOptions options;
  options.static_prune = static_prune;
  auto engine = std::make_unique<InjectionEngine>(
      bench.build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::PureData, options);
  engine->set_backend(backend);
  return engine;
}

void expect_golden_identical(const GoldenCache& a, const GoldenCache& b) {
  EXPECT_EQ(a.output_bytes, b.output_bytes);
  EXPECT_EQ(a.return_bits, b.return_bits);
  EXPECT_EQ(a.dynamic_sites, b.dynamic_sites);
  EXPECT_EQ(a.golden_instructions, b.golden_instructions);
  EXPECT_EQ(a.golden_detected, b.golden_detected);
  EXPECT_EQ(a.site_sequence, b.site_sequence);
  EXPECT_EQ(a.site_occurrences, b.site_occurrences);
}

class JitKernelDiff
    : public ::testing::TestWithParam<const kernels::Benchmark*> {};

TEST_P(JitKernelDiff, GoldenCacheAndExperimentStreamMatch) {
  const kernels::Benchmark& bench = *GetParam();
  auto interp_engine = make_engine(bench, interp::ExecMode::PreDecoded);
  auto jit_engine = make_engine(bench, interp::ExecMode::Jit);

  // Golden observables: output bytes, return bits, dynamic-site census.
  expect_golden_identical(interp_engine->golden(), jit_engine->golden());

  // Seeded experiment streams: same RNG seed must draw the same sites and
  // classify every outcome identically.
  Rng rng_a(0xA11CE);
  Rng rng_b(0xA11CE);
  for (int i = 0; i < 60; ++i) {
    const ExperimentResult ra = interp_engine->run_experiment(rng_a);
    const ExperimentResult rb = jit_engine->run_experiment(rng_b);
    EXPECT_EQ(static_cast<int>(ra.outcome), static_cast<int>(rb.outcome))
        << "experiment " << i;
    EXPECT_EQ(ra.detected, rb.detected) << "experiment " << i;
    EXPECT_EQ(static_cast<int>(ra.trap), static_cast<int>(rb.trap))
        << "experiment " << i;
    EXPECT_EQ(ra.dynamic_sites, rb.dynamic_sites);
    EXPECT_EQ(ra.golden_instructions, rb.golden_instructions);
    EXPECT_EQ(ra.faulty_instructions, rb.faulty_instructions)
        << "experiment " << i;
    EXPECT_EQ(ra.injection.fired, rb.injection.fired);
    EXPECT_EQ(ra.injection.site_id, rb.injection.site_id);
    EXPECT_EQ(ra.injection.lane, rb.injection.lane);
    EXPECT_EQ(ra.injection.bit, rb.injection.bit);
    EXPECT_EQ(ra.injection.dynamic_index, rb.injection.dynamic_index);
    EXPECT_EQ(ra.injection.bits_before, rb.injection.bits_before);
    EXPECT_EQ(ra.injection.bits_after, rb.injection.bits_after);
    EXPECT_EQ(ra.statically_adjudicated, rb.statically_adjudicated);
    EXPECT_EQ(ra.remapped, rb.remapped);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, JitKernelDiff, ::testing::ValuesIn(registry_kernels()),
    [](const ::testing::TestParamInfo<const kernels::Benchmark*>& info) {
      std::string name = info.param->name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(JitKernelDiff, AtLeastOneKernelCompilesNatively) {
  if (!JitExecutor::available()) {
    GTEST_SKIP() << "host forbids executable mappings";
  }
  // The backend would trivially "pass" every differential test by always
  // falling back; require that real registry kernels actually run native.
  std::uint64_t native = 0;
  for (const kernels::Benchmark* bench : registry_kernels()) {
    auto engine = make_engine(*bench, interp::ExecMode::Jit);
    (void)engine->run_clean();
    if (engine->jit_backend() != nullptr) {
      native += engine->jit_backend()->native_runs();
    }
  }
  EXPECT_GT(native, 0u);
}

// ---------------------------------------------------------------------------
// Campaign-level differential: the full matrix
// ---------------------------------------------------------------------------

CampaignResult run_campaign(const kernels::Benchmark& bench,
                            interp::ExecMode backend, bool prune,
                            unsigned jobs) {
  EngineOptions options;
  options.static_prune = prune;
  std::vector<std::unique_ptr<InjectionEngine>> engines;
  std::vector<InjectionEngine*> pointers;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    engines.push_back(std::make_unique<InjectionEngine>(
        bench.build(spmd::Target::avx(), input),
        analysis::FaultSiteCategory::PureData, options));
    pointers.push_back(engines.back().get());
  }
  CampaignConfig config;
  config.experiments_per_campaign = 20;
  config.min_campaigns = 3;
  config.max_campaigns = 4;
  config.seed = 0xBEEF;
  config.num_threads = jobs;
  config.use_static_prune = prune;
  config.backend = backend;
  return run_campaigns(pointers, config);
}

void expect_campaigns_identical(const CampaignResult& a,
                                const CampaignResult& b) {
  EXPECT_EQ(a.campaigns, b.campaigns);
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.detected_sdc, b.detected_sdc);
  EXPECT_EQ(a.detected_total, b.detected_total);
  EXPECT_EQ(a.prune_adjudicated, b.prune_adjudicated);
  EXPECT_EQ(a.prune_remapped, b.prune_remapped);
  ASSERT_EQ(a.campaign_sdc_rates.size(), b.campaign_sdc_rates.size());
  for (std::size_t i = 0; i < a.campaign_sdc_rates.size(); ++i) {
    EXPECT_EQ(a.campaign_sdc_rates[i], b.campaign_sdc_rates[i])
        << "campaign " << i;
  }
  EXPECT_EQ(a.margin_of_error, b.margin_of_error);
  EXPECT_EQ(a.near_normal, b.near_normal);
}

class JitCampaignDiff
    : public ::testing::TestWithParam<const kernels::Benchmark*> {};

TEST_P(JitCampaignDiff, BackendDoesNotChangeStatistics) {
  const kernels::Benchmark& bench = *GetParam();
  for (bool prune : {true, false}) {
    for (unsigned jobs : {1u, 4u}) {
      const CampaignResult interp_result =
          run_campaign(bench, interp::ExecMode::PreDecoded, prune, jobs);
      const CampaignResult jit_result =
          run_campaign(bench, interp::ExecMode::Jit, prune, jobs);
      SCOPED_TRACE(std::string("prune=") + (prune ? "on" : "off") +
                   " jobs=" + std::to_string(jobs));
      expect_campaigns_identical(interp_result, jit_result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, JitCampaignDiff,
    ::testing::Values(&kernels::vector_sum_benchmark(),
                      &kernels::dot_product_benchmark()),
    [](const ::testing::TestParamInfo<const kernels::Benchmark*>& info) {
      std::string name = info.param->name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vulfi::jit
