// Unit tests for the IR substrate: types, constants, use-lists, builder
// typing rules, intrinsic registry, printing, verification, and DCE.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/intrinsics.hpp"
#include "ir/module.hpp"
#include "ir/printer.hpp"
#include "ir/transforms.hpp"
#include "ir/verifier.hpp"

namespace vulfi::ir {
namespace {

// ---------------------------------------------------------------------------
// Type
// ---------------------------------------------------------------------------

TEST(Type, ScalarProperties) {
  EXPECT_TRUE(Type::i32().is_integer());
  EXPECT_TRUE(Type::i32().is_scalar());
  EXPECT_FALSE(Type::i32().is_vector());
  EXPECT_TRUE(Type::f32().is_float());
  EXPECT_TRUE(Type::ptr().is_pointer());
  EXPECT_TRUE(Type::void_ty().is_void());
  EXPECT_FALSE(Type::void_ty().is_scalar());
  EXPECT_TRUE(Type::i1().is_bool());
}

TEST(Type, Widths) {
  EXPECT_EQ(Type::i1().element_bits(), 1u);
  EXPECT_EQ(Type::i1().element_bytes(), 1u);  // storage byte
  EXPECT_EQ(Type::i8().element_bits(), 8u);
  EXPECT_EQ(Type::i16().element_bits(), 16u);
  EXPECT_EQ(Type::i32().element_bits(), 32u);
  EXPECT_EQ(Type::i64().element_bits(), 64u);
  EXPECT_EQ(Type::f32().element_bits(), 32u);
  EXPECT_EQ(Type::f64().element_bits(), 64u);
  EXPECT_EQ(Type::ptr().element_bits(), 64u);
}

TEST(Type, VectorProperties) {
  const Type v8f = Type::vector(TypeKind::F32, 8);
  EXPECT_TRUE(v8f.is_vector());
  EXPECT_EQ(v8f.lanes(), 8u);
  EXPECT_EQ(v8f.byte_size(), 32u);  // a 256-bit AVX register
  EXPECT_EQ(v8f.element(), Type::f32());
  EXPECT_EQ(Type::f32().with_lanes(4).byte_size(), 16u);  // 128-bit SSE
}

TEST(Type, Spelling) {
  EXPECT_EQ(Type::i32().to_string(), "i32");
  EXPECT_EQ(Type::f32().to_string(), "float");
  EXPECT_EQ(Type::f64().to_string(), "double");
  EXPECT_EQ(Type::vector(TypeKind::F32, 8).to_string(), "<8 x float>");
  EXPECT_EQ(Type::vector(TypeKind::I1, 4).to_string(), "<4 x i1>");
  EXPECT_EQ(Type::ptr().to_string(), "ptr");
}

// ---------------------------------------------------------------------------
// Constants
// ---------------------------------------------------------------------------

TEST(Constant, IntegerTruncationAndSignExtension) {
  Module m("t");
  Constant* c = m.const_int(Type::i8(), -1);
  EXPECT_EQ(c->raw(0), 0xFFu);
  EXPECT_EQ(c->int_value(0), -1);
  Constant* big = m.const_int(Type::i8(), 300);  // wraps to 44
  EXPECT_EQ(big->int_value(0), 44);
}

TEST(Constant, SignExtendHelper) {
  EXPECT_EQ(Constant::sign_extend(0xFF, 8), -1);
  EXPECT_EQ(Constant::sign_extend(0x7F, 8), 127);
  EXPECT_EQ(Constant::sign_extend(0x80000000ull, 32),
            -2147483648LL);
  EXPECT_EQ(Constant::sign_extend(1, 1), -1);  // i1 true is -1 signed
}

TEST(Constant, FloatRoundTrip) {
  Module m("t");
  Constant* c = m.const_f32(Type::f32(), 3.5f);
  EXPECT_EQ(c->f32_value(0), 3.5f);
  Constant* d = m.const_f64(Type::f64(), -0.125);
  EXPECT_EQ(d->f64_value(0), -0.125);
}

TEST(Constant, VectorLanesAndSplat) {
  Module m("t");
  Constant* seq = m.const_lane_sequence(8);
  EXPECT_EQ(seq->type(), Type::vector(TypeKind::I32, 8));
  for (unsigned lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(seq->int_value(lane), lane);
  }
  EXPECT_FALSE(seq->is_splat());
  Constant* splat = m.const_int(Type::vector(TypeKind::I32, 4), 7);
  EXPECT_TRUE(splat->is_splat());
  EXPECT_TRUE(m.const_zero(Type::vector(TypeKind::F32, 4))->is_zero());
  EXPECT_TRUE(m.const_undef(Type::f32())->is_undef());
}

// ---------------------------------------------------------------------------
// Use lists and RAUW
// ---------------------------------------------------------------------------

TEST(UseLists, UsersTrackedPerOccurrence) {
  Module m("t");
  Function* f = m.create_function("f", Type::i32(), {Type::i32()});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  Value* arg = f->arg(0);
  Value* doubled = b.add(arg, arg, "dbl");  // two uses of arg
  b.ret(doubled);
  EXPECT_EQ(arg->users().size(), 2u);
  EXPECT_EQ(doubled->users().size(), 1u);
}

TEST(UseLists, ReplaceAllUsesWith) {
  Module m("t");
  Function* f = m.create_function("f", Type::i32(), {Type::i32(), Type::i32()});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  Value* sum = b.add(f->arg(0), f->arg(1), "sum");
  Value* twice = b.add(sum, sum, "twice");
  b.ret(twice);

  Value* replacement = m.const_int(Type::i32(), 5);
  sum->replace_all_uses_with(replacement);
  EXPECT_TRUE(sum->users().empty());
  auto* twice_inst = dynamic_cast<Instruction*>(twice);
  EXPECT_EQ(twice_inst->operand(0), replacement);
  EXPECT_EQ(twice_inst->operand(1), replacement);
}

TEST(UseLists, ReplaceUsesWithIfFilters) {
  Module m("t");
  Function* f = m.create_function("f", Type::i32(), {Type::i32()});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  Value* v = b.add(f->arg(0), m.const_int(Type::i32(), 1), "v");
  Value* keep = b.mul(v, m.const_int(Type::i32(), 2), "keep");
  Value* redirect = b.mul(v, m.const_int(Type::i32(), 3), "redirect");
  b.ret(b.add(keep, redirect, "out"));

  auto* keep_inst = dynamic_cast<Instruction*>(keep);
  v->replace_uses_with_if(f->arg(0), [&](const Instruction& user) {
    return &user != keep_inst;
  });
  EXPECT_EQ(keep_inst->operand(0), v);
  EXPECT_EQ(dynamic_cast<Instruction*>(redirect)->operand(0), f->arg(0));
}

TEST(UseLists, VectorInstructionDefinition) {
  // Paper §II-A: a vector instruction has at least one vector operand.
  Module m("t");
  const Type v4 = Type::vector(TypeKind::F32, 4);
  Function* f = m.create_function("f", Type::f32(), {v4});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  Value* elem = b.extract_element(f->arg(0), 0u, "e");  // scalar result
  b.ret(elem);
  EXPECT_TRUE(dynamic_cast<Instruction*>(elem)->is_vector_instruction());
}

// ---------------------------------------------------------------------------
// Intrinsic registry
// ---------------------------------------------------------------------------

TEST(Intrinsics, MaskedNamesMatchX86Conventions) {
  const Type v8f = Type::vector(TypeKind::F32, 8);
  const Type v4f = Type::vector(TypeKind::F32, 4);
  const Type v8i = Type::vector(TypeKind::I32, 8);
  EXPECT_EQ(masked_intrinsic_name(IntrinsicId::MaskLoad, Isa::AVX, v8f),
            "vulfi.x86.avx.maskload.ps.256");
  EXPECT_EQ(masked_intrinsic_name(IntrinsicId::MaskStore, Isa::AVX, v8f),
            "vulfi.x86.avx.maskstore.ps.256");
  EXPECT_EQ(masked_intrinsic_name(IntrinsicId::MaskLoad, Isa::SSE4, v4f),
            "vulfi.x86.sse41.maskload.ps");
  EXPECT_EQ(masked_intrinsic_name(IntrinsicId::MaskStore, Isa::AVX, v8i),
            "vulfi.x86.avx.maskstore.d.256");
  EXPECT_EQ(movmsk_intrinsic_name(Isa::AVX, v8f),
            "vulfi.x86.avx.movmsk.ps.256");
  EXPECT_EQ(movmsk_intrinsic_name(Isa::SSE4, v4f),
            "vulfi.x86.sse.movmsk.ps");
}

TEST(Intrinsics, MaskedDeclarationsCarryMaskMetadata) {
  Module m("t");
  const Type v8f = Type::vector(TypeKind::F32, 8);
  Function* load = m.declare_masked_intrinsic(IntrinsicId::MaskLoad,
                                              Isa::AVX, v8f);
  EXPECT_TRUE(load->is_masked_intrinsic());
  EXPECT_EQ(load->intrinsic_info().mask_operand, 1);
  EXPECT_EQ(load->return_type(), v8f);

  Function* store = m.declare_masked_intrinsic(IntrinsicId::MaskStore,
                                               Isa::AVX, v8f);
  EXPECT_EQ(store->intrinsic_info().mask_operand, 1);
  EXPECT_EQ(store->intrinsic_info().data_operand, 2);
  EXPECT_TRUE(store->return_type().is_void());

  // Declarations are cached by name.
  EXPECT_EQ(m.declare_masked_intrinsic(IntrinsicId::MaskLoad, Isa::AVX, v8f),
            load);
}

TEST(Intrinsics, MaskLaneActiveUsesMsb) {
  EXPECT_TRUE(mask_lane_active(0xFFFFFFFFull, 32));
  EXPECT_TRUE(mask_lane_active(0x80000000ull, 32));
  EXPECT_FALSE(mask_lane_active(0x7FFFFFFFull, 32));
  EXPECT_FALSE(mask_lane_active(0, 32));
  EXPECT_TRUE(mask_lane_active(1, 1));  // i1 mask
  EXPECT_FALSE(mask_lane_active(0, 1));
}

TEST(Intrinsics, MathNames) {
  EXPECT_EQ(math_intrinsic_name(IntrinsicId::Sqrt,
                                Type::vector(TypeKind::F32, 8)),
            "vulfi.sqrt.v8f32");
  EXPECT_EQ(math_intrinsic_name(IntrinsicId::Pow, Type::f64()),
            "vulfi.pow.f64");
  EXPECT_TRUE(math_intrinsic_is_binary(IntrinsicId::Pow));
  EXPECT_FALSE(math_intrinsic_is_binary(IntrinsicId::Sqrt));
}

// ---------------------------------------------------------------------------
// Printer — golden patterns from the paper
// ---------------------------------------------------------------------------

TEST(Printer, BroadcastIdiomMatchesFigure9) {
  // %uval_broadcast_init = insertelement <8 x float> undef, float %uval, 0
  // %uval_broadcast = shufflevector ..., zeroinitializer
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(), {Type::f32()});
  f->arg(0)->set_name("uval");
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  b.broadcast(f->arg(0), 8, "uval_broadcast");
  b.ret();

  const std::string text = to_string(*f);
  EXPECT_NE(text.find("%uval_broadcast_init = insertelement <8 x float> "
                      "undef, float %uval, i32 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("%uval_broadcast = shufflevector <8 x float> "
                      "%uval_broadcast_init, <8 x float> undef, "
                      "<8 x i32> zeroinitializer"),
            std::string::npos)
      << text;
}

TEST(Printer, MaskedCallSpelling) {
  Module m("t");
  const Type v8f = Type::vector(TypeKind::F32, 8);
  Function* maskload =
      m.declare_masked_intrinsic(IntrinsicId::MaskLoad, Isa::AVX, v8f);
  Function* f = m.create_function("f", v8f, {Type::ptr(), v8f});
  f->arg(0)->set_name("addr");
  f->arg(1)->set_name("floatmask.i");
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  Value* loaded = b.call(maskload, {f->arg(0), f->arg(1)}, "ld");
  b.ret(loaded);
  const std::string text = to_string(*f);
  EXPECT_NE(text.find("call <8 x float> @vulfi.x86.avx.maskload.ps.256("
                      "ptr %addr, <8 x float> %floatmask.i)"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------------

TEST(Verifier, AcceptsWellFormedFunction) {
  Module m("t");
  Function* f = m.create_function("f", Type::i32(), {Type::i32()});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  b.ret(b.add(f->arg(0), m.const_int(Type::i32(), 1)));
  EXPECT_TRUE(verify(m).empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(), {});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  b.add(m.const_int(Type::i32(), 1), m.const_int(Type::i32(), 2));
  const auto errors = verify(*f);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsEmptyBlock) {
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(), {});
  f->create_block("entry");
  EXPECT_FALSE(verify(*f).empty());
}

TEST(Verifier, RejectsRetTypeMismatch) {
  Module m("t");
  Function* f = m.create_function("f", Type::i32(), {});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  b.ret();  // ret void in an i32 function
  const auto errors = verify(*f);
  ASSERT_FALSE(errors.empty());
}

TEST(Verifier, RejectsPhiIncomingMismatch) {
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(), {Type::i1()});
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* left = f->create_block("left");
  BasicBlock* join = f->create_block("join");
  IRBuilder b(m);
  b.set_insert_block(entry);
  b.cond_br(f->arg(0), left, join);
  b.set_insert_block(left);
  b.br(join);
  b.set_insert_block(join);
  Instruction* phi = b.phi(Type::i32(), "p");
  // Only one incoming entry; join has two predecessors.
  phi->phi_add_incoming(m.const_int(Type::i32(), 1), left);
  b.ret();
  const auto errors = verify(*f);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("phi"), std::string::npos);
}

TEST(Verifier, RejectsUseBeforeDefInBlock) {
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(), {});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  Value* one = m.const_int(Type::i32(), 1);
  Value* first = b.add(one, one, "first");
  Value* second = b.add(one, one, "second");
  b.ret();
  // Manually rewire: first uses second (defined later).
  dynamic_cast<Instruction*>(first)->set_operand(0, second);
  const auto errors = verify(*f);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("definition"), std::string::npos);
}

TEST(Verifier, RejectsDefinitionNotDominatingUse) {
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(), {Type::i1()});
  BasicBlock* entry = f->create_block("entry");
  BasicBlock* left = f->create_block("left");
  BasicBlock* right = f->create_block("right");
  BasicBlock* join = f->create_block("join");
  IRBuilder b(m);
  b.set_insert_block(entry);
  b.cond_br(f->arg(0), left, right);
  b.set_insert_block(left);
  Value* only_left = b.add(m.const_int(Type::i32(), 1),
                           m.const_int(Type::i32(), 2), "left_val");
  b.br(join);
  b.set_insert_block(right);
  b.br(join);
  b.set_insert_block(join);
  b.add(only_left, m.const_int(Type::i32(), 3), "bad");  // not dominated
  b.ret();
  const auto errors = verify(*f);
  ASSERT_FALSE(errors.empty());
}

// ---------------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------------

TEST(Transforms, DceRemovesDeadChainsKeepsEffects) {
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(),
                                  {Type::ptr(), Type::i32()});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  // Dead chain: a -> c (c unused, then a becomes unused).
  Value* a = b.add(f->arg(1), m.const_int(Type::i32(), 1), "a");
  b.mul(a, m.const_int(Type::i32(), 2), "c");
  // Live store.
  Value* live = b.add(f->arg(1), m.const_int(Type::i32(), 3), "live");
  b.store(live, f->arg(0));
  b.ret();

  const std::size_t before = f->num_instructions();
  const unsigned removed = eliminate_dead_code(*f);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(f->num_instructions(), before - 2);
  EXPECT_TRUE(verify(*f).empty());
}

TEST(Transforms, DceKeepsRuntimeCallsAndMaskStores) {
  Module m("t");
  const Type v8f = Type::vector(TypeKind::F32, 8);
  Function* maskstore =
      m.declare_masked_intrinsic(IntrinsicId::MaskStore, Isa::AVX, v8f);
  Function* runtime =
      m.declare_runtime("vulfi.test.effect", Type::i32(), {});
  Function* f = m.create_function("f", Type::void_ty(), {Type::ptr(), v8f});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  b.call(maskstore, {f->arg(0), f->arg(1), f->arg(1)});
  b.call(runtime, {}, "unused_result");
  b.ret();
  EXPECT_EQ(eliminate_dead_code(*f), 0u);
}

TEST(Transforms, DceRemovesUnusedMaskedLoad) {
  Module m("t");
  const Type v8f = Type::vector(TypeKind::F32, 8);
  Function* maskload =
      m.declare_masked_intrinsic(IntrinsicId::MaskLoad, Isa::AVX, v8f);
  Function* f = m.create_function("f", Type::void_ty(), {Type::ptr(), v8f});
  BasicBlock* bb = f->create_block("entry");
  IRBuilder b(m);
  b.set_insert_block(bb);
  b.call(maskload, {f->arg(0), f->arg(1)}, "dead_load");
  b.ret();
  EXPECT_EQ(eliminate_dead_code(*f), 1u);
}

// ---------------------------------------------------------------------------
// Module structure
// ---------------------------------------------------------------------------

TEST(Module, FunctionLookup) {
  Module m("t");
  Function* f = m.create_function("foo", Type::void_ty(), {});
  EXPECT_EQ(m.find_function("foo"), f);
  EXPECT_EQ(m.find_function("bar"), nullptr);
}

TEST(Module, BlockInsertionOrderHelpers) {
  Module m("t");
  Function* f = m.create_function("f", Type::void_ty(), {});
  BasicBlock* a = f->create_block("a");
  BasicBlock* c = f->create_block("c");
  BasicBlock* inserted = f->create_block_after("b", a);
  std::vector<std::string> names;
  for (const auto& block : *f) names.push_back(block->name());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(inserted->name(), "b");
  (void)c;
}

}  // namespace
}  // namespace vulfi::ir
