// Unit tests for forward slicing and fault-site classification, including
// an exact reproduction of the paper's Figure-3 example.
#include <gtest/gtest.h>

#include "analysis/classify.hpp"
#include "analysis/instr_mix.hpp"
#include "analysis/slicing.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace vulfi::analysis {
namespace {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

/// Builds the paper's Figure-3 function:
///   void foo(int a[], int n, int x) {
///     int s = x;
///     for (int i = 0; i < n; i++) { a[i] = a[i] * s; s = s + i; }
///   }
struct Foo {
  ir::Module module{"foo"};
  ir::Function* fn = nullptr;
  ir::Instruction* i_phi = nullptr;
  ir::Instruction* s_phi = nullptr;
  Value* i_next = nullptr;
  Value* s_next = nullptr;
  Value* loaded = nullptr;
  Value* scaled = nullptr;
  ir::Instruction* store = nullptr;

  Foo() {
    fn = module.create_function("foo", Type::void_ty(),
                                {Type::ptr(), Type::i32(), Type::i32()});
    IRBuilder b(module);
    ir::BasicBlock* entry = fn->create_block("entry");
    ir::BasicBlock* loop = fn->create_block("loop");
    ir::BasicBlock* exit = fn->create_block("exit");
    b.set_insert_block(entry);
    Value* enter =
        b.icmp(ir::ICmpPred::SLT, b.i32_const(0), fn->arg(1), "enter");
    b.cond_br(enter, loop, exit);
    b.set_insert_block(loop);
    i_phi = b.phi(Type::i32(), "i");
    s_phi = b.phi(Type::i32(), "s");
    Value* addr = b.gep(fn->arg(0), i_phi, 4, "a_i");
    loaded = b.load(Type::i32(), addr, "a_val");
    scaled = b.mul(loaded, s_phi, "a_scaled");
    store = b.store(scaled, addr);
    s_next = b.add(s_phi, i_phi, "s_next");
    i_next = b.add(i_phi, b.i32_const(1), "i_next");
    Value* latch = b.icmp(ir::ICmpPred::SLT, i_next, fn->arg(1), "latch");
    b.cond_br(latch, loop, exit);
    i_phi->phi_add_incoming(b.i32_const(0), entry);
    i_phi->phi_add_incoming(i_next, loop);
    s_phi->phi_add_incoming(fn->arg(2), entry);
    s_phi->phi_add_incoming(s_next, loop);
    b.set_insert_block(exit);
    b.ret();
    EXPECT_TRUE(ir::verify(module).empty());
  }
};

// ---------------------------------------------------------------------------
// Forward slicing
// ---------------------------------------------------------------------------

TEST(ForwardSlice, ContainsTransitiveUsers) {
  Foo foo;
  const auto slice = forward_slice(*foo.loaded);
  // loaded -> scaled -> store.
  EXPECT_TRUE(slice.count(dynamic_cast<const ir::Instruction*>(foo.scaled)));
  EXPECT_TRUE(slice.count(foo.store));
  // loaded does not reach the iterator increment.
  EXPECT_FALSE(slice.count(dynamic_cast<const ir::Instruction*>(foo.i_next)));
}

TEST(ForwardSlice, FollowsThroughPhis) {
  Foo foo;
  // i_next flows into i (phi), hence into the address computation.
  const auto slice = forward_slice(*foo.i_next);
  bool has_gep = false;
  for (const ir::Instruction* inst : slice) {
    if (inst->opcode() == ir::Opcode::GetElementPtr) has_gep = true;
  }
  EXPECT_TRUE(has_gep);
}

TEST(ForwardSlice, ValueWithNoUsersHasEmptySlice) {
  ir::Module m("t");
  ir::Function* f = m.create_function("f", Type::void_ty(), {Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.ret();
  EXPECT_TRUE(forward_slice(*f->arg(0)).empty());
}

TEST(ForwardSlice, DoesNotTrackThroughMemory) {
  // store x to p; load p — the load is NOT in x's slice (register-level
  // slicing, as an LLVM-level tool sees it).
  ir::Module m("t");
  ir::Function* f =
      m.create_function("f", Type::i32(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* doubled = b.add(f->arg(1), f->arg(1), "doubled");
  b.store(doubled, f->arg(0));
  Value* reloaded = b.load(Type::i32(), f->arg(0), "reloaded");
  b.ret(reloaded);
  const auto slice = forward_slice(*doubled);
  EXPECT_FALSE(
      slice.count(dynamic_cast<const ir::Instruction*>(reloaded)));
}

// ---------------------------------------------------------------------------
// Classification — the paper's Figure 3 example
// ---------------------------------------------------------------------------

TEST(Classify, Figure3IteratorIsControlAndAddress) {
  Foo foo;
  const SiteClass i_class = classify_value(*foo.i_phi);
  EXPECT_TRUE(i_class.control);
  EXPECT_TRUE(i_class.address);
  EXPECT_FALSE(i_class.pure_data());
  // Both selection heuristics accept it (overlap region of Figure 2).
  EXPECT_TRUE(i_class.matches(FaultSiteCategory::Control));
  EXPECT_TRUE(i_class.matches(FaultSiteCategory::Address));
  EXPECT_FALSE(i_class.matches(FaultSiteCategory::PureData));
}

TEST(Classify, Figure3AccumulatorIsPureData) {
  Foo foo;
  const SiteClass s_class = classify_value(*foo.s_phi);
  EXPECT_FALSE(s_class.control);
  EXPECT_FALSE(s_class.address);
  EXPECT_TRUE(s_class.pure_data());
  EXPECT_TRUE(s_class.matches(FaultSiteCategory::PureData));
}

TEST(Classify, LoadedValueFeedingOnlyStoreIsPureData) {
  Foo foo;
  EXPECT_TRUE(classify_value(*foo.loaded).pure_data());
}

TEST(Classify, PureDataIsComplementOfUnion) {
  // Enumerate every value in foo; pure-data must hold exactly when
  // neither control nor address does (Figure 2 structure).
  Foo foo;
  for (const auto& block : *foo.fn) {
    for (const auto& inst : *block) {
      if (inst->type().is_void()) continue;
      const SiteClass cls = classify_value(*inst);
      EXPECT_EQ(cls.pure_data(), !cls.control && !cls.address);
    }
  }
}

TEST(Classify, AddressRuleExtensionCountsDirectPointerOperands) {
  // A pointer argument fed straight into a load has no GEP in its slice:
  // GepOnly calls it pure data, GepOrMemOperand calls it address.
  ir::Module m("t");
  ir::Function* f = m.create_function("f", Type::i32(), {Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* as_ptr = b.inttoptr(b.sext(f->arg(0), Type::i64()), "p");
  Value* loaded = b.load(Type::i32(), as_ptr, "v");
  b.ret(loaded);

  const SiteClass strict = classify_value(*f->arg(0), AddressRule::GepOnly);
  EXPECT_TRUE(strict.pure_data());
  const SiteClass extended =
      classify_value(*f->arg(0), AddressRule::GepOrMemOperand);
  EXPECT_TRUE(extended.address);
}

// ---------------------------------------------------------------------------
// Fault-site eligibility
// ---------------------------------------------------------------------------

TEST(SiteEligibility, Rules) {
  Foo foo;
  // Loads, muls, adds: eligible.
  EXPECT_TRUE(is_fault_site_instruction(
      *dynamic_cast<const ir::Instruction*>(foo.loaded)));
  EXPECT_TRUE(is_fault_site_instruction(
      *dynamic_cast<const ir::Instruction*>(foo.scaled)));
  // Stores: eligible via the stored value.
  EXPECT_TRUE(is_fault_site_instruction(*foo.store));
  // Phis: excluded (pseudo-moves).
  EXPECT_FALSE(is_fault_site_instruction(*foo.i_phi));
  // GEPs produce pointers: excluded.
  for (const auto& block : *foo.fn) {
    for (const auto& inst : *block) {
      if (inst->opcode() == ir::Opcode::GetElementPtr) {
        EXPECT_FALSE(is_fault_site_instruction(*inst));
      }
      if (inst->is_terminator()) {
        EXPECT_FALSE(is_fault_site_instruction(*inst));
      }
    }
  }
}

TEST(SiteEligibility, RuntimeCallsExcludedIntrinsicValuesIncluded) {
  ir::Module m("t");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* maskload =
      m.declare_masked_intrinsic(ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
  ir::Function* maskstore = m.declare_masked_intrinsic(
      ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
  ir::Function* runtime =
      m.declare_runtime("vulfi.inject.f32", Type::f32(),
                        {Type::f32(), Type::f32(), Type::i64(), Type::i32()});
  ir::Function* f = m.create_function("f", Type::void_ty(),
                                      {Type::ptr(), v8f, Type::f32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* loaded = b.call(maskload, {f->arg(0), f->arg(1)}, "ld");
  ir::Instruction* store_call = dynamic_cast<ir::Instruction*>(
      b.call(maskstore, {f->arg(0), f->arg(1), loaded}));
  Value* injected = b.call(
      runtime, {f->arg(2), f->arg(2), m.const_int(Type::i64(), 0),
                m.const_int(Type::i32(), 0)},
      "inj");
  (void)injected;
  b.ret();

  EXPECT_TRUE(is_fault_site_instruction(
      *dynamic_cast<const ir::Instruction*>(loaded)));
  EXPECT_TRUE(is_fault_site_instruction(*store_call));
  // The injection runtime call itself is never a fresh fault site.
  for (const auto& block : *f) {
    for (const auto& inst : *block) {
      if (inst->opcode() == ir::Opcode::Call &&
          inst->callee() == runtime) {
        EXPECT_FALSE(is_fault_site_instruction(*inst));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Instruction mix (Figure 10 machinery)
// ---------------------------------------------------------------------------

TEST(InstructionMix, CountsOverlapInBothCategories) {
  Foo foo;
  const InstructionMix mix = instruction_mix(*foo.fn);
  // foo is fully scalar.
  EXPECT_EQ(mix.category(FaultSiteCategory::PureData).vector_instructions, 0u);
  EXPECT_GT(mix.category(FaultSiteCategory::PureData).scalar_instructions, 0u);
  // i_next is control+address: counted once in each.
  EXPECT_GT(mix.category(FaultSiteCategory::Control).total(), 0u);
  EXPECT_GT(mix.category(FaultSiteCategory::Address).total(), 0u);
}

TEST(InstructionMix, VectorFractionAndMerge) {
  MixCount count;
  EXPECT_EQ(count.vector_fraction(), 0.0);
  count.vector_instructions = 3;
  count.scalar_instructions = 1;
  EXPECT_DOUBLE_EQ(count.vector_fraction(), 0.75);

  InstructionMix a, b;
  a.category(FaultSiteCategory::Control).vector_instructions = 2;
  b.category(FaultSiteCategory::Control).vector_instructions = 5;
  b.category(FaultSiteCategory::Control).scalar_instructions = 3;
  const InstructionMix merged = merge(a, b);
  EXPECT_EQ(merged.category(FaultSiteCategory::Control).vector_instructions,
            7u);
  EXPECT_EQ(merged.category(FaultSiteCategory::Control).scalar_instructions,
            3u);
}

TEST(InstructionMix, CategoryNames) {
  EXPECT_STREQ(category_name(FaultSiteCategory::PureData), "pure-data");
  EXPECT_STREQ(category_name(FaultSiteCategory::Control), "control");
  EXPECT_STREQ(category_name(FaultSiteCategory::Address), "address");
}

}  // namespace
}  // namespace vulfi::analysis
