// Static fault-site pruner: exhaustive differential proof of exactness,
// campaign-statistics identity with pruning on/off and across thread
// counts, and the edge-exact classification regressions (store-data edges,
// AddressRule variants over masked intrinsics).
#include <gtest/gtest.h>

#include "analysis/classify.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"
#include "spmd/target.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/exhaustive.hpp"
#include "vulfi/fault_site.hpp"

namespace vulfi {
namespace {

using interp::RtVal;
using ir::IRBuilder;
using ir::Type;
using ir::Value;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// out <- splat(a) * 2 + splat(b). Every arithmetic site is rooted in a
/// provable splat with a purely elementwise slice, so the pruner collapses
/// its eight lanes into one equivalence class.
RunSpec splat_kernel() {
  RunSpec spec;
  spec.module = std::make_unique<ir::Module>("splat");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* f = spec.module->create_function(
      "f", Type::void_ty(), {Type::f32(), Type::f32(), Type::ptr()});
  IRBuilder b(*spec.module);
  b.set_insert_block(f->create_block("entry"));
  Value* splat_a = b.broadcast(f->arg(0), 8, "splat_a");
  Value* splat_b = b.broadcast(f->arg(1), 8, "splat_b");
  Value* scaled = b.fmul(splat_a, spec.module->const_fp(v8f, 2.0), "scaled");
  Value* sum = b.fadd(scaled, splat_b, "sum");
  b.store(sum, f->arg(2));
  b.ret();
  spec.entry = f;
  const std::uint64_t out = spec.arena.alloc(32, "out");
  spec.args = {RtVal::f32(1.5f), RtVal::f32(0.75f), RtVal::ptr(out)};
  spec.output_regions = {"out"};
  return spec;
}

/// out <- i8(x + 7). The add's upper 24 bits are truncated away — the
/// demanded-bits analysis proves them dead, so the pruner adjudicates
/// those flips Benign without running anything.
RunSpec trunc_kernel() {
  RunSpec spec;
  spec.module = std::make_unique<ir::Module>("trunc");
  ir::Function* f = spec.module->create_function(
      "f", Type::void_ty(), {Type::i32(), Type::ptr()});
  IRBuilder b(*spec.module);
  b.set_insert_block(f->create_block("entry"));
  Value* sum = b.add(f->arg(0), spec.module->const_int(Type::i32(), 7), "sum");
  Value* low = b.trunc(sum, Type::i8(), "low");
  b.store(low, f->arg(1));
  b.ret();
  spec.entry = f;
  const std::uint64_t out = spec.arena.alloc(1, "out");
  spec.args = {RtVal::i32(41), RtVal::ptr(out)};
  spec.output_regions = {"out"};
  return spec;
}

// ---------------------------------------------------------------------------
// Exhaustive differential: pruned statistics == ground truth
// ---------------------------------------------------------------------------

TEST(PruneDifferential, LaneClassesPreserveEveryOutcomeOnSplatKernel) {
  InjectionEngine truth_engine(splat_kernel(),
                               analysis::FaultSiteCategory::PureData);
  InjectionEngine pruned_engine(splat_kernel(),
                                analysis::FaultSiteCategory::PureData);
  ASSERT_GT(pruned_engine.prune_plan().collapsed_sites, 0u);

  const ExhaustiveTotals truth = run_exhaustive(truth_engine);
  const ExhaustiveTotals pruned = run_exhaustive_pruned(pruned_engine);

  // Ground truth executes every single pair; the pruned driver must match
  // its totals exactly while executing strictly fewer faulty runs.
  EXPECT_EQ(truth.executed_runs, truth.experiments);
  EXPECT_EQ(truth.saved_runs, 0u);
  EXPECT_TRUE(truth.same_statistics(pruned));
  EXPECT_EQ(pruned.experiments, pruned.executed_runs + pruned.saved_runs);
  EXPECT_LT(pruned.executed_runs, truth.executed_runs);
  EXPECT_GT(pruned.saved_runs, 0u);
  // The kernel corrupts only pure-data float lanes: nothing can crash.
  EXPECT_EQ(truth.crash, 0u);
  EXPECT_GT(truth.sdc, 0u);
}

TEST(PruneDifferential, DeadBitsAdjudicatedExactlyOnTruncKernel) {
  InjectionEngine truth_engine(trunc_kernel(),
                               analysis::FaultSiteCategory::PureData);
  InjectionEngine pruned_engine(trunc_kernel(),
                                analysis::FaultSiteCategory::PureData);
  ASSERT_GT(pruned_engine.prune_plan().dead_bit_count, 0u);

  const ExhaustiveTotals truth = run_exhaustive(truth_engine);
  const ExhaustiveTotals pruned = run_exhaustive_pruned(pruned_engine);

  // sum(i32) + low(i8) + store operand(i8) = 48 pairs; the 24 truncated
  // bits of sum are adjudicated without execution.
  EXPECT_EQ(truth.experiments, 48u);
  EXPECT_TRUE(truth.same_statistics(pruned));
  EXPECT_GE(pruned.saved_runs, 24u);
  EXPECT_LT(pruned.executed_runs, truth.executed_runs);
}

TEST(PruneDifferential, PrunedDispatchAgreesPairwiseWithExactRuns) {
  InjectionEngine engine(splat_kernel(),
                         analysis::FaultSiteCategory::PureData);
  const PrunePlan& plan = engine.prune_plan();
  const GoldenCache& golden = engine.golden();
  ASSERT_FALSE(golden.site_sequence.size() == 0u);

  // Find a dynamic site whose static site was collapsed onto another
  // representative, and check the remapped outcome against ground truth.
  bool checked_remap = false;
  for (std::uint64_t k = 0; k < golden.site_sequence.size(); ++k) {
    const std::uint32_t site = golden.site_sequence[k];
    if (plan.sites[site].class_rep == site) continue;
    const ExperimentResult exact = engine.run_experiment_exact(k, 3);
    const ExperimentResult pruned = engine.run_experiment_pruned_at(k, 3);
    EXPECT_TRUE(pruned.remapped);
    EXPECT_EQ(pruned.outcome, exact.outcome);
    EXPECT_EQ(pruned.detected, exact.detected);
    // The injection record reports the LOGICAL site, not the executed rep.
    EXPECT_EQ(pruned.injection.site_id, exact.injection.site_id);
    EXPECT_EQ(pruned.injection.lane, exact.injection.lane);
    checked_remap = true;
    break;
  }
  EXPECT_TRUE(checked_remap);
}

TEST(PruneDifferential, AdjudicatedBitIsBenignInGroundTruth) {
  InjectionEngine engine(trunc_kernel(),
                         analysis::FaultSiteCategory::PureData);
  const PrunePlan& plan = engine.prune_plan();
  const GoldenCache& golden = engine.golden();

  bool checked_dead = false;
  for (std::uint64_t k = 0; k < golden.site_sequence.size(); ++k) {
    const std::uint32_t site = golden.site_sequence[k];
    const std::uint64_t dead = plan.sites[site].dead_mask;
    if (dead == 0) continue;
    for (unsigned bit = 0; bit < 64; ++bit) {
      if (((dead >> bit) & 1) == 0) continue;
      const ExperimentResult pruned = engine.run_experiment_pruned_at(k, bit);
      EXPECT_TRUE(pruned.statically_adjudicated);
      EXPECT_EQ(pruned.outcome, Outcome::Benign);
      const ExperimentResult exact = engine.run_experiment_exact(k, bit);
      EXPECT_EQ(exact.outcome, Outcome::Benign);
      EXPECT_EQ(pruned.detected, exact.detected);
      checked_dead = true;
      break;
    }
    if (checked_dead) break;
  }
  EXPECT_TRUE(checked_dead);
}

// ---------------------------------------------------------------------------
// Campaign identity: pruning and thread count never change statistics
// ---------------------------------------------------------------------------

CampaignResult run_sorting_campaign(bool prune, unsigned threads) {
  const kernels::Benchmark* bench = kernels::find_benchmark("sorting");
  EXPECT_NE(bench, nullptr);
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::Control);
  CampaignConfig config;
  config.experiments_per_campaign = 10;
  config.min_campaigns = 2;
  config.max_campaigns = 2;
  config.seed = 1234;
  config.num_threads = threads;
  config.use_static_prune = prune;
  return run_campaigns({&engine}, config);
}

void expect_same_statistics(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.campaigns, b.campaigns);
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.detected_sdc, b.detected_sdc);
  EXPECT_EQ(a.detected_total, b.detected_total);
  EXPECT_EQ(a.campaign_sdc_rates, b.campaign_sdc_rates);
  EXPECT_DOUBLE_EQ(a.margin_of_error, b.margin_of_error);
}

TEST(PruneCampaign, StatisticsIdenticalWithPruningOnAndOff) {
  const CampaignResult pruned = run_sorting_campaign(true, 1);
  const CampaignResult unpruned = run_sorting_campaign(false, 1);
  expect_same_statistics(pruned, unpruned);
  // The unpruned run must not report prune activity.
  EXPECT_EQ(unpruned.prune_adjudicated, 0u);
  EXPECT_EQ(unpruned.prune_remapped, 0u);
  EXPECT_EQ(unpruned.prune_memo_hits, 0u);
  // sorting/control is a known dead-bit-rich cell; the savings are real.
  EXPECT_GT(pruned.prune_adjudicated, 0u);
}

TEST(PruneCampaign, StatisticsIdenticalAcrossThreadCounts) {
  const CampaignResult serial = run_sorting_campaign(true, 1);
  const CampaignResult parallel = run_sorting_campaign(true, 4);
  expect_same_statistics(serial, parallel);
  // Adjudication and remap counts are pure functions of the experiment
  // coordinates, so they are thread-count independent too (memo hits are
  // deliberately excluded: workers own private memos).
  EXPECT_EQ(serial.prune_adjudicated, parallel.prune_adjudicated);
  EXPECT_EQ(serial.prune_remapped, parallel.prune_remapped);
}

// ---------------------------------------------------------------------------
// Edge-exact store-data classification (regression)
// ---------------------------------------------------------------------------

TEST(EdgeClassify, StoreDataSiteStaysPureDataWhenValueAlsoFeedsGep) {
  // v = x + 1; store v -> &base[v]. The VALUE v is an address site (it
  // indexes the gep), but corrupting the store's DATA EDGE only changes
  // the bytes written — the per-value approximation used to misclassify
  // that site as address.
  ir::Module m("m");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* v = b.add(f->arg(1), m.const_int(Type::i32(), 1), "v");
  Value* addr = b.gep(f->arg(0), v, 4, "addr");
  b.store(v, addr);
  b.ret();
  ASSERT_TRUE(ir::verify(m).empty());

  // Per-value classification: v reaches a gep, so it IS an address site.
  EXPECT_TRUE(
      analysis::classify_value(*v, analysis::AddressRule::GepOnly).address);

  const auto sites = enumerate_fault_sites(*f);
  bool saw_store_site = false;
  bool saw_value_site = false;
  for (const FaultSite& site : sites) {
    if (site.store_operand) {
      EXPECT_FALSE(site.site_class.address);
      EXPECT_TRUE(site.site_class.pure_data());
      saw_store_site = true;
    } else if (site.inst->name() == "v") {
      EXPECT_TRUE(site.site_class.address);
      saw_value_site = true;
    }
  }
  EXPECT_TRUE(saw_store_site);
  EXPECT_TRUE(saw_value_site);
}

// ---------------------------------------------------------------------------
// AddressRule::GepOnly vs GepOrMemOperand over masked intrinsics
// ---------------------------------------------------------------------------

TEST(AddressRules, PointerSelectCountsOnlyUnderMemOperandRule) {
  // t = fcmp(x, 0.5); dst = select(t, a, b); maskstore(dst, mask, data).
  // t's slice holds no gep, but it reaches the maskstore's POINTER operand
  // through the select — an address site under GepOrMemOperand only.
  ir::Module m("m");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* maskstore = m.declare_masked_intrinsic(
      ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
  ir::Function* f = m.create_function(
      "f", Type::void_ty(), {Type::ptr(), Type::ptr(), Type::f32(), v8f, v8f});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* t = b.fcmp(ir::FCmpPred::OLT, f->arg(2), m.const_fp(Type::f32(), 0.5),
                    "t");
  Value* dst = b.select(t, f->arg(0), f->arg(1), "dst");
  b.call(maskstore, {dst, f->arg(3), f->arg(4)});
  b.ret();
  ASSERT_TRUE(ir::verify(m).empty());

  const auto gep_only =
      enumerate_fault_sites(*f, analysis::AddressRule::GepOnly);
  const auto mem_operand =
      enumerate_fault_sites(*f, analysis::AddressRule::GepOrMemOperand);
  ASSERT_EQ(gep_only.size(), mem_operand.size());

  bool saw_cmp = false;
  for (std::size_t i = 0; i < gep_only.size(); ++i) {
    if (gep_only[i].inst->name() == "t") {
      EXPECT_TRUE(gep_only[i].site_class.pure_data());
      EXPECT_TRUE(mem_operand[i].site_class.address);
      saw_cmp = true;
    }
    if (gep_only[i].store_operand) {
      // The maskstore's data edge is pure-data under BOTH rules: corrupted
      // stored bytes never become an address.
      EXPECT_TRUE(gep_only[i].site_class.pure_data());
      EXPECT_TRUE(mem_operand[i].site_class.pure_data());
      EXPECT_TRUE(gep_only[i].masked);
    }
  }
  EXPECT_TRUE(saw_cmp);
}

TEST(AddressRules, MaskLoadResultFeedingDataStaysPureDataUnderBothRules) {
  // loaded = maskload(p, mask); maskstore(q, mask, loaded). The loaded
  // value only ever flows into a data position.
  ir::Module m("m");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* maskload = m.declare_masked_intrinsic(
      ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
  ir::Function* maskstore = m.declare_masked_intrinsic(
      ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
  ir::Function* f = m.create_function(
      "f", Type::void_ty(), {Type::ptr(), Type::ptr(), v8f});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* loaded = b.call(maskload, {f->arg(0), f->arg(2)}, "loaded");
  b.call(maskstore, {f->arg(1), f->arg(2), loaded});
  b.ret();
  ASSERT_TRUE(ir::verify(m).empty());

  for (const analysis::AddressRule rule :
       {analysis::AddressRule::GepOnly,
        analysis::AddressRule::GepOrMemOperand}) {
    const auto sites = enumerate_fault_sites(*f, rule);
    bool saw_load_site = false;
    for (const FaultSite& site : sites) {
      if (site.inst->name() != "loaded") continue;
      EXPECT_TRUE(site.site_class.pure_data());
      EXPECT_TRUE(site.masked);
      saw_load_site = true;
    }
    EXPECT_TRUE(saw_load_site);
  }
}

TEST(AddressRules, MemoizedClassifierMatchesStandaloneOnBenchmarks) {
  for (const char* name : {"dot", "stencil", "blackscholes"}) {
    const kernels::Benchmark* bench = kernels::find_benchmark(name);
    ASSERT_NE(bench, nullptr);
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    for (const analysis::AddressRule rule :
         {analysis::AddressRule::GepOnly,
          analysis::AddressRule::GepOrMemOperand}) {
      analysis::AnalysisManager am;
      for (const auto& block : *spec.entry) {
        for (const auto& inst : *block) {
          if (inst->type().is_void()) continue;
          const analysis::SiteClass memoized =
              analysis::classify_value(*inst, rule, am);
          const analysis::SiteClass standalone =
              analysis::classify_value(*inst, rule);
          EXPECT_EQ(memoized.control, standalone.control);
          EXPECT_EQ(memoized.address, standalone.address);
        }
      }
    }
  }
}

}  // namespace
}  // namespace vulfi
