// Summary store + composition engine + incremental diff tests: record
// payload round-trips, header refusal semantics (schema/build pinning,
// the checkpoint-journal contract), config-fingerprint sensitivity,
// stratified composition math (including the single-stratum
// bit-identity guarantee), and run_diff end-to-end — a fresh store
// injects, an unchanged rerun reuses every summary with zero new
// experiments and a byte-identical report, and the composed estimate
// matches a monolithic run_campaigns under the same seeds.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "serve/diff.hpp"
#include "serve/engine_cache.hpp"
#include "support/journal.hpp"
#include "support/str.hpp"
#include "support/version.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/summary.hpp"

namespace vulfi {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "vulfi_summary_" + name;
  std::remove((dir + "/" + SummaryStore::filename()).c_str());
  ::rmdir(dir.c_str());
  return dir;
}

FunctionSummary sample_summary() {
  FunctionSummary s;
  s.unit = "dot";
  s.content_hash = 0x1122334455667788ull;
  s.config_fingerprint = 0x99aabbccddeeff00ull;
  s.experiments = 160;
  s.benign = 28;
  s.sdc = 130;
  s.crash = 2;
  s.detected_sdc = 5;
  s.detected_total = 7;
  s.campaigns = 4;
  s.weight = 14399;
  s.census = {100, 200, 300, 400};
  s.exit_code = 4;
  return s;
}

void expect_equal(const FunctionSummary& a, const FunctionSummary& b) {
  EXPECT_EQ(a.unit, b.unit);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.detected_sdc, b.detected_sdc);
  EXPECT_EQ(a.detected_total, b.detected_total);
  EXPECT_EQ(a.campaigns, b.campaigns);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.census.masked, b.census.masked);
  EXPECT_EQ(a.census.output, b.census.output);
  EXPECT_EQ(a.census.control, b.census.control);
  EXPECT_EQ(a.census.trap, b.census.trap);
  EXPECT_EQ(a.exit_code, b.exit_code);
}

TEST(SummaryRecord, PayloadRoundTrips) {
  const FunctionSummary original = sample_summary();
  const std::optional<FunctionSummary> parsed =
      parse_summary_record(summary_record_payload(original));
  ASSERT_TRUE(parsed.has_value());
  expect_equal(original, *parsed);
}

TEST(SummaryRecord, MissingFieldsAreRejected) {
  EXPECT_FALSE(parse_summary_record("{\"t\":\"summary\"}").has_value());
  EXPECT_FALSE(parse_summary_record("{}").has_value());
  // Wrong record tag.
  std::string payload = summary_record_payload(sample_summary());
  payload.replace(payload.find("summary"), 7, "smmary!");
  EXPECT_FALSE(parse_summary_record(payload).has_value());
}

TEST(SummaryFingerprint, TracksStatisticsAffectingFieldsOnly) {
  CampaignConfig config;
  config.experiments_per_campaign = 100;
  config.min_campaigns = 20;
  config.max_campaigns = 40;
  config.seed = 24029;
  const std::uint64_t base =
      summary_config_fingerprint(config, "pure-data", "avx", false);

  // Statistics-affecting knobs move the fingerprint.
  CampaignConfig seeded = config;
  seeded.seed = 24030;
  EXPECT_NE(summary_config_fingerprint(seeded, "pure-data", "avx", false),
            base);
  CampaignConfig counts = config;
  counts.experiments_per_campaign = 101;
  EXPECT_NE(summary_config_fingerprint(counts, "pure-data", "avx", false),
            base);
  EXPECT_NE(summary_config_fingerprint(config, "control", "avx", false),
            base);
  EXPECT_NE(summary_config_fingerprint(config, "pure-data", "sse", false),
            base);
  EXPECT_NE(summary_config_fingerprint(config, "pure-data", "avx", true),
            base);

  // Statistics-neutral knobs (threads, backend, fsync) do not.
  CampaignConfig threaded = config;
  threaded.num_threads = 8;
  threaded.backend = interp::ExecMode::Jit;
  threaded.journal_sync = JournalSync::Off;
  EXPECT_EQ(summary_config_fingerprint(threaded, "pure-data", "avx", false),
            base);

  // Alias spellings are one configuration.
  EXPECT_EQ(summary_config_fingerprint(config, "ctrl", "sse4", false),
            summary_config_fingerprint(config, "control", "sse", false));
  EXPECT_EQ(summary_config_fingerprint(config, "puredata", "avx", false),
            summary_config_fingerprint(config, "pure-data", "avx", false));
}

TEST(SummaryStoreTest, PersistsAcrossReopenLastWins) {
  const std::string dir = fresh_dir("persist");
  std::string error;
  {
    SummaryStore store;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    FunctionSummary first = sample_summary();
    ASSERT_TRUE(store.append(first));
    FunctionSummary updated = first;
    updated.sdc = 140;
    updated.benign = 18;
    ASSERT_TRUE(store.append(updated));
    FunctionSummary other = first;
    other.unit = "vsum";
    other.content_hash = 42;
    ASSERT_TRUE(store.append(other));
  }
  SummaryStore reopened;
  ASSERT_TRUE(reopened.open(dir, &error)) << error;
  ASSERT_EQ(reopened.records().size(), 2u);  // last-wins collapsed the dupe
  const FunctionSummary* found =
      reopened.find("dot", sample_summary().content_hash,
                    sample_summary().config_fingerprint);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->sdc, 140u);
  EXPECT_EQ(reopened.find("dot", /*content_hash=*/1, /*fingerprint=*/2),
            nullptr);
}

TEST(SummaryStoreTest, RefusesSchemaAndBuildMismatches) {
  // Hand-write stores whose sealed header disagrees with this binary.
  const auto write_header = [](const std::string& dir,
                               const std::string& payload) {
    ::mkdir(dir.c_str(), 0777);
    std::ofstream out(dir + "/" + SummaryStore::filename(),
                      std::ios::trunc);
    out << journal_seal(payload) << "\n";
  };

  const std::string schema_dir = fresh_dir("schema");
  write_header(schema_dir,
               strf("{\"t\":\"summary-header\",\"schema\":%u,\"build\":"
                    "\"%s\"}",
                    kSummarySchemaVersion + 1, build_fingerprint().c_str()));
  SummaryStore store;
  std::string error;
  EXPECT_FALSE(store.open(schema_dir, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  const std::string build_dir = fresh_dir("build");
  write_header(build_dir,
               strf("{\"t\":\"summary-header\",\"schema\":%u,\"build\":"
                    "\"some other binary\"}",
                    kSummarySchemaVersion));
  SummaryStore store2;
  EXPECT_FALSE(store2.open(build_dir, &error));
  EXPECT_NE(error.find("build"), std::string::npos) << error;

  // Read-only opens additionally require the store to exist.
  SummaryStore store3;
  EXPECT_FALSE(store3.open_read_only(fresh_dir("absent"), &error));
  EXPECT_NE(error.find("no summary store"), std::string::npos) << error;
}

TEST(Compose, SingleStratumIsBitIdenticalToTheUnitRates) {
  const FunctionSummary s = sample_summary();
  const ComposedEstimate est = compose_summaries({s}, 0.95);
  EXPECT_EQ(est.units, 1u);
  EXPECT_EQ(est.experiments, s.experiments);
  EXPECT_EQ(est.total_weight, s.weight);
  // Exact double equality, not near: the w/W share must be exactly 1.0.
  EXPECT_EQ(est.sdc_rate, s.sdc_rate());
  EXPECT_EQ(est.benign_rate, s.benign_rate());
  EXPECT_EQ(est.crash_rate, s.crash_rate());
  EXPECT_LE(est.sdc_low, est.sdc_rate);
  EXPECT_GE(est.sdc_high, est.sdc_rate);
}

TEST(Compose, WeightsStrataByGoldenOccurrence) {
  FunctionSummary heavy = sample_summary();
  heavy.weight = 300;
  heavy.experiments = 100;
  heavy.sdc = 100;  // rate 1.0
  FunctionSummary light = sample_summary();
  light.unit = "vsum";
  light.weight = 100;
  light.experiments = 100;
  light.sdc = 0;  // rate 0.0
  const ComposedEstimate est = compose_summaries({heavy, light}, 0.95);
  EXPECT_EQ(est.total_weight, 400u);
  EXPECT_DOUBLE_EQ(est.sdc_rate, 0.75);  // 300/400 * 1.0 + 100/400 * 0.0
  EXPECT_EQ(est.experiments, 200u);
}

TEST(Compose, ZeroTotalWeightFallsBackToUniform) {
  FunctionSummary a = sample_summary();
  a.weight = 0;
  a.experiments = 100;
  a.sdc = 100;
  FunctionSummary b = sample_summary();
  b.unit = "vsum";
  b.weight = 0;
  b.experiments = 100;
  b.sdc = 0;
  const ComposedEstimate est = compose_summaries({a, b}, 0.95);
  EXPECT_DOUBLE_EQ(est.sdc_rate, 0.5);
}

// --- run_diff end-to-end ---------------------------------------------------

serve::DiffOptions small_diff(const std::string& store_dir) {
  serve::DiffOptions options;
  options.units = {"vsum"};
  options.request.category = "pure-data";
  options.request.isa = "avx";
  options.request.experiments = 10;
  options.request.min_campaigns = 2;
  options.request.max_campaigns = 2;
  options.request.seed = 7;
  options.store_dir = store_dir;
  return options;
}

TEST(RunDiff, FreshInjectsRerunReusesWithZeroNewExperiments) {
  const std::string dir = fresh_dir("rundiff");
  const serve::DiffOptions options = small_diff(dir);

  const serve::DiffReport fresh = serve::run_diff(options);
  ASSERT_TRUE(fresh.ok()) << fresh.error;
  ASSERT_EQ(fresh.units.size(), 1u);
  EXPECT_FALSE(fresh.units[0].reused);
  EXPECT_EQ(fresh.new_experiments, 20u);  // 2 campaigns x 10
  EXPECT_FALSE(fresh.has_baseline);       // nothing stored before this run

  const serve::DiffReport rerun = serve::run_diff(options);
  ASSERT_TRUE(rerun.ok()) << rerun.error;
  ASSERT_EQ(rerun.units.size(), 1u);
  EXPECT_TRUE(rerun.units[0].reused);
  EXPECT_EQ(rerun.new_experiments, 0u);
  EXPECT_EQ(rerun.units[0].content_hash, fresh.units[0].content_hash);
  // The reused summary reproduces the stored statistics bit-identically.
  EXPECT_EQ(rerun.composed.sdc_rate, fresh.composed.sdc_rate);
  EXPECT_EQ(rerun.composed.experiments, fresh.composed.experiments);
  // And the rerun sees the first run as its baseline, with zero delta.
  ASSERT_TRUE(rerun.has_baseline);
  EXPECT_EQ(rerun.baseline_composed.sdc_rate, rerun.composed.sdc_rate);

  // A third run produces a byte-identical report to the second.
  const serve::DiffReport again = serve::run_diff(options);
  EXPECT_EQ(serve::diff_report_json(again), serve::diff_report_json(rerun));
}

TEST(RunDiff, ComposedRatesMatchAMonolithicCampaign) {
  const std::string dir = fresh_dir("monolithic");
  const serve::DiffOptions options = small_diff(dir);
  const serve::DiffReport report = serve::run_diff(options);
  ASSERT_TRUE(report.ok()) << report.error;

  // The same unit injected monolithically under the same seeds: the
  // single-stratum composed estimate must be bit-identical.
  serve::CampaignRequest request = options.request;
  request.benchmark = "vsum";
  serve::EngineCache cache(2);
  serve::EngineCache::Lease lease = cache.acquire(request);
  ASSERT_TRUE(lease.ok()) << lease.error;
  std::vector<InjectionEngine*> engines;
  for (const auto& engine : lease.engines) engines.push_back(engine.get());
  const CampaignResult result =
      run_campaigns(engines, serve::to_campaign_config(request, 0));
  ASSERT_TRUE(result.ok()) << result.error;

  EXPECT_EQ(report.composed.experiments, result.experiments);
  EXPECT_EQ(report.units[0].summary.sdc, result.sdc);
  EXPECT_EQ(report.units[0].summary.benign, result.benign);
  EXPECT_EQ(report.units[0].summary.crash, result.crash);
  const double n = static_cast<double>(result.experiments);
  EXPECT_EQ(report.composed.sdc_rate,
            static_cast<double>(result.sdc) / n);  // exact, not near
}

TEST(RunDiff, UnknownUnitIsAUsageError) {
  serve::DiffOptions options = small_diff(fresh_dir("unknown"));
  options.units = {"no-such-kernel"};
  const serve::DiffReport report = serve::run_diff(options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.exit_code, 2);
}

TEST(RunDiff, MissingBaselineStoreIsRefused) {
  serve::DiffOptions options = small_diff(fresh_dir("refused"));
  options.against_dir = testing::TempDir() + "vulfi_summary_never_created";
  const serve::DiffReport report = serve::run_diff(options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.exit_code, 3);
}

}  // namespace
}  // namespace vulfi
