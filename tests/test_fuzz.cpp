// Fuzzing harness tests (`ctest -L fuzz`): generator determinism across
// runs and worker counts, serialization round-trips, grammar-version
// refusal, reducer convergence, corpus replay, and mini oracle sweeps.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/kernel_gen.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/reducer.hpp"
#include "ir/printer.hpp"

namespace vulfi {
namespace {

using fuzz::GenConfig;
using fuzz::KernelSpec;
using fuzz::LoopSpec;
using fuzz::OpKind;
using fuzz::OpNode;
using fuzz::OracleKind;

// --- generator determinism -------------------------------------------------

TEST(FuzzGenerator, SameSeedIsByteIdentical) {
  for (std::uint64_t seed : {1ULL, 7ULL, 1234567ULL}) {
    const KernelSpec a = fuzz::generate_kernel(seed);
    const KernelSpec b = fuzz::generate_kernel(seed);
    EXPECT_EQ(fuzz::serialize_spec(a), fuzz::serialize_spec(b));
    EXPECT_EQ(fuzz::spec_fingerprint(a), fuzz::spec_fingerprint(b));
    // The lowered module must be byte-identical too, not just the spec.
    fuzz::BuildResult built_a = fuzz::build_runspec(a);
    fuzz::BuildResult built_b = fuzz::build_runspec(b);
    ASSERT_TRUE(built_a.ok);
    ASSERT_TRUE(built_b.ok);
    EXPECT_EQ(ir::to_string(*built_a.spec.module),
              ir::to_string(*built_b.spec.module));
  }
}

TEST(FuzzGenerator, DistinctSeedsDiffer) {
  const std::uint64_t fp1 = fuzz::spec_fingerprint(fuzz::generate_kernel(1));
  const std::uint64_t fp2 = fuzz::spec_fingerprint(fuzz::generate_kernel(2));
  EXPECT_NE(fp1, fp2);
}

TEST(FuzzGenerator, EveryGeneratedKernelBuildsAndLintsClean) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const KernelSpec spec = fuzz::generate_kernel(seed);
    fuzz::BuildResult built = fuzz::build_runspec(spec);
    ASSERT_TRUE(built.ok) << "seed " << seed;
    const auto findings = analysis::lint_module(*built.spec.module);
    EXPECT_TRUE(findings.empty())
        << "seed " << seed << ": " << findings.front().render();
  }
}

TEST(FuzzSweep, FingerprintsIdenticalAcrossJobs) {
  fuzz::FuzzConfig serial;
  serial.seed_start = 100;
  serial.seeds = 24;
  serial.oracle = OracleKind::Census;
  serial.jobs = 1;
  fuzz::FuzzConfig parallel = serial;
  parallel.jobs = 4;
  const fuzz::FuzzSummary a = fuzz::run_fuzz(serial);
  const fuzz::FuzzSummary b = fuzz::run_fuzz(parallel);
  EXPECT_TRUE(a.clean());
  EXPECT_TRUE(b.clean());
  ASSERT_EQ(a.fingerprints.size(), b.fingerprints.size());
  EXPECT_EQ(a.fingerprints, b.fingerprints);
}

// --- serialization ---------------------------------------------------------

TEST(FuzzSerialization, RoundTripsBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const KernelSpec spec = fuzz::generate_kernel(seed);
    const std::string text = fuzz::serialize_spec(spec);
    const fuzz::ParseResult parsed = fuzz::parse_spec(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(fuzz::serialize_spec(parsed.spec), text);
    EXPECT_EQ(fuzz::spec_fingerprint(parsed.spec),
              fuzz::spec_fingerprint(spec));
  }
}

TEST(FuzzSerialization, OracleLineRoundTrips) {
  const KernelSpec spec = fuzz::generate_kernel(3);
  const std::string text = fuzz::serialize_spec(spec, "prune");
  const fuzz::ParseResult parsed = fuzz::parse_spec(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.oracle, "prune");
  // The oracle line is not part of the fingerprinted identity.
  EXPECT_EQ(fuzz::spec_fingerprint(parsed.spec),
            fuzz::spec_fingerprint(spec));
}

TEST(FuzzSerialization, RefusesGrammarMismatch) {
  const std::string text =
      fuzz::serialize_spec(fuzz::generate_kernel(4));
  std::string bumped = text;
  bumped.replace(bumped.find(" v1"), 3, " v99");
  const fuzz::ParseResult parsed = fuzz::parse_spec(bumped);
  EXPECT_FALSE(parsed.ok);
  EXPECT_TRUE(parsed.grammar_mismatch);
}

TEST(FuzzSerialization, RejectsMalformedInput) {
  EXPECT_FALSE(fuzz::parse_spec("").ok);
  EXPECT_FALSE(fuzz::parse_spec("not a header\n").ok);
  EXPECT_FALSE(
      fuzz::parse_spec("vulfi.fuzz.kernel v1\nloops 1\n").ok);
  EXPECT_FALSE(fuzz::parse_spec("vulfi.fuzz.kernel v1\nloops 1\n"
                                "loop trip -1 reduce 0\nop bogus 0 0 0 0\n"
                                "end\n")
                   .ok);
}

// --- replay ----------------------------------------------------------------

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FuzzReplay, WrittenReproReplaysStandalone) {
  const KernelSpec spec = fuzz::generate_kernel(11);
  const std::string path = temp_path("vulfi_fuzz_repro_test.vulfi");
  std::string error;
  ASSERT_TRUE(
      fuzz::write_repro_file(path, spec, OracleKind::Census, &error))
      << error;
  const fuzz::ReplayResult result = fuzz::replay_repro_file(path);
  EXPECT_EQ(result.exit_code, 0) << result.message;
  std::filesystem::remove(path);
}

TEST(FuzzReplay, GrammarMismatchExitsThree) {
  const std::string path = temp_path("vulfi_fuzz_grammar_test.vulfi");
  {
    std::ofstream out(path);
    out << "vulfi.fuzz.kernel v999\nseed 1\n";
  }
  const fuzz::ReplayResult result = fuzz::replay_repro_file(path);
  EXPECT_EQ(result.exit_code, 3);
  std::filesystem::remove(path);
}

TEST(FuzzReplay, MissingFileExitsThree) {
  EXPECT_EQ(fuzz::replay_repro_file("/nonexistent/nope.vulfi").exit_code, 3);
}

// --- reducer ---------------------------------------------------------------

/// Known-bad input for reduction tests: three busy loops, one scatter
/// buried in the middle.
KernelSpec scatter_haystack() {
  KernelSpec spec;
  spec.n = 96;
  for (int li = 0; li < 3; ++li) {
    LoopSpec loop;
    loop.trip = li == 0 ? 2 : -1;
    loop.reduce = li == 2;
    for (int oi = 0; oi < 12; ++oi) {
      OpNode op;
      op.kind = (oi % 3 == 0) ? OpKind::FMul
                              : (oi % 3 == 1 ? OpKind::IAdd : OpKind::FAdd);
      op.a = static_cast<std::uint32_t>(oi);
      op.b = static_cast<std::uint32_t>(oi + 1);
      loop.ops.push_back(op);
    }
    if (li == 1) {
      OpNode scatter;
      scatter.kind = OpKind::Scatter;
      loop.ops.insert(loop.ops.begin() + 5, scatter);
    }
    spec.loops.push_back(std::move(loop));
  }
  return spec;
}

bool has_scatter(const KernelSpec& spec) {
  for (const LoopSpec& loop : spec.loops) {
    for (const OpNode& op : loop.ops) {
      if (op.kind == OpKind::Scatter) return true;
    }
  }
  return false;
}

TEST(FuzzReducer, ConvergesToMinimalScatterKernel) {
  const KernelSpec start = scatter_haystack();
  ASSERT_TRUE(has_scatter(start));
  ASSERT_EQ(fuzz::total_ops(start), 37u);

  fuzz::ReduceStats stats;
  const fuzz::KernelReducer reducer(has_scatter);
  const KernelSpec reduced = reducer.reduce(start, &stats);

  EXPECT_TRUE(has_scatter(reduced));
  // ddmin should strip everything but the scatter itself.
  EXPECT_LE(fuzz::total_ops(reduced), 2u);
  EXPECT_EQ(reduced.loops.size(), 1u);
  EXPECT_EQ(reduced.n, fuzz::kMinN);
  EXPECT_EQ(reduced.loops[0].trip, -1);
  EXPECT_GT(stats.candidates, 0u);
  // The reduced spec must still build (the reducer's structural gate).
  EXPECT_TRUE(fuzz::build_runspec(reduced).ok);
}

TEST(FuzzReducer, PassingSpecIsReturnedUnchanged) {
  const KernelSpec spec = fuzz::generate_kernel(5);
  const fuzz::KernelReducer reducer(
      [](const KernelSpec&) { return false; });
  const KernelSpec reduced = reducer.reduce(spec);
  EXPECT_EQ(fuzz::serialize_spec(reduced), fuzz::serialize_spec(spec));
}

// --- corpus ----------------------------------------------------------------

TEST(FuzzCorpus, EveryCheckedInKernelReplaysClean) {
  const std::filesystem::path dir = VULFI_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  unsigned replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".vulfi") continue;
    const fuzz::ReplayResult result =
        fuzz::replay_repro_file(entry.path().string());
    EXPECT_EQ(result.exit_code, 0)
        << entry.path().filename() << ": " << result.message;
    ++replayed;
  }
  EXPECT_GE(replayed, 4u) << "corpus unexpectedly small";
}

// --- oracle sweeps ---------------------------------------------------------

TEST(FuzzSweep, DiffOracle200Seeds) {
  fuzz::FuzzConfig config;
  config.seed_start = 1;
  config.seeds = 200;
  config.oracle = OracleKind::Diff;
  config.jobs = 4;
  const fuzz::FuzzSummary summary = fuzz::run_fuzz(config);
  EXPECT_TRUE(summary.clean())
      << summary.failures.size() << " seeds failed; first: seed "
      << summary.failures.front().seed << ": "
      << summary.failures.front().diagnostic;
}

TEST(FuzzSweep, PruneOracle60Seeds) {
  fuzz::FuzzConfig config;
  config.seed_start = 1000;
  config.seeds = 60;
  config.oracle = OracleKind::Prune;
  config.jobs = 4;
  const fuzz::FuzzSummary summary = fuzz::run_fuzz(config);
  EXPECT_TRUE(summary.clean())
      << summary.failures.size() << " seeds failed; first: seed "
      << summary.failures.front().seed << ": "
      << summary.failures.front().diagnostic;
}

TEST(FuzzSweep, CensusOracle60Seeds) {
  fuzz::FuzzConfig config;
  config.seed_start = 2000;
  config.seeds = 60;
  config.oracle = OracleKind::Census;
  config.jobs = 4;
  const fuzz::FuzzSummary summary = fuzz::run_fuzz(config);
  EXPECT_TRUE(summary.clean())
      << summary.failures.size() << " seeds failed; first: seed "
      << summary.failures.front().seed << ": "
      << summary.failures.front().diagnostic;
}

TEST(FuzzSweep, JitOracle60Seeds) {
  fuzz::FuzzConfig config;
  config.seed_start = 3000;
  config.seeds = 60;
  config.oracle = OracleKind::Jit;
  config.jobs = 4;
  const fuzz::FuzzSummary summary = fuzz::run_fuzz(config);
  EXPECT_TRUE(summary.clean())
      << summary.failures.size() << " seeds failed; first: seed "
      << summary.failures.front().seed << ": "
      << summary.failures.front().diagnostic;
}

}  // namespace
}  // namespace vulfi
