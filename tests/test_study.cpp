// Study-subsystem tests: plan enumeration/validation/fingerprinting,
// the byte-identity contract of the report (window size, completion
// order, interrupt/resume through the journal, local vs daemon
// execution), summary-store reuse with zero new experiments, the vl
// protocol field, and EngineCache behaviour under mixed study traffic.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "study/study.hpp"
#include "support/journal.hpp"
#include "vulfi/summary.hpp"

namespace vulfi::study {
namespace {

/// A 4-cell plan (dot × vl{1,8} × avx × control × det{off,on}) small
/// enough that a full sweep takes well under a second.
StudyPlanConfig tiny_config() {
  StudyPlanConfig config;
  config.benchmarks = {"dot"};
  config.widths = {1, 8};
  config.isas = {"avx"};
  config.categories = {"control"};
  config.base.experiments = 8;
  config.base.min_campaigns = 2;
  config.base.max_campaigns = 2;
  config.base.seed = 24029;
  return config;
}

StudyPlan plan_of(const StudyPlanConfig& config) {
  std::string error;
  const std::optional<StudyPlan> plan = StudyPlan::make(config, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return *plan;
}

std::string fresh_path(const std::string& name) {
  const std::string path = testing::TempDir() + "vulfi_study_" + name;
  std::remove(path.c_str());
  return path;
}

std::string fresh_store_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "vulfi_study_store_" + name;
  std::remove((dir + "/" + SummaryStore::filename()).c_str());
  ::rmdir(dir.c_str());
  return dir;
}

// --- plan -------------------------------------------------------------------

TEST(StudyPlanTest, EnumeratesCellsInReportOrderRegardlessOfSpelling) {
  StudyPlanConfig scrambled = tiny_config();
  scrambled.benchmarks = {"vsum", "dot"};
  scrambled.widths = {8, 1};
  scrambled.isas = {"sse", "avx"};
  scrambled.categories = {"ctrl", "addr"};  // aliases, reversed

  StudyPlanConfig sorted = scrambled;
  sorted.benchmarks = {"dot", "vsum"};
  sorted.widths = {1, 8};
  sorted.isas = {"avx", "sse"};
  sorted.categories = {"address", "control"};

  const StudyPlan a = plan_of(scrambled);
  const StudyPlan b = plan_of(sorted);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ASSERT_EQ(a.cells().size(), 2u * 2u * 2u * 2u * 2u);
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    EXPECT_EQ(a.cells()[i].key(), b.cells()[i].key());
    if (i > 0) {
      EXPECT_TRUE(cell_order(a.cells()[i - 1], a.cells()[i]));
    }
  }
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(StudyPlanTest, RejectsInvalidAxes) {
  std::string error;
  auto rejects = [&](StudyPlanConfig config) {
    error.clear();
    EXPECT_FALSE(StudyPlan::make(config, &error).has_value());
    EXPECT_FALSE(error.empty());
  };
  StudyPlanConfig bad_bench = tiny_config();
  bad_bench.benchmarks = {"no-such-benchmark"};
  rejects(bad_bench);
  StudyPlanConfig bad_width = tiny_config();
  bad_width.widths = {3};
  rejects(bad_width);
  StudyPlanConfig bad_isa = tiny_config();
  bad_isa.isas = {"neon"};
  rejects(bad_isa);
  StudyPlanConfig bad_category = tiny_config();
  bad_category.categories = {"bogus"};
  rejects(bad_category);
  StudyPlanConfig no_det = tiny_config();
  no_det.detectors_off = false;
  no_det.detectors_on = false;
  rejects(no_det);
  StudyPlanConfig no_exp = tiny_config();
  no_exp.base.experiments = 0;
  rejects(no_exp);
}

TEST(StudyPlanTest, CellSeedDependsOnKeyNotPlanShape) {
  const StudyPlan small = plan_of(tiny_config());
  StudyPlanConfig big_config = tiny_config();
  big_config.benchmarks = {"dot", "vsum"};
  big_config.widths = {1, 4, 8};
  const StudyPlan big = plan_of(big_config);

  for (const StudyCell& cell : small.cells()) {
    EXPECT_EQ(small.request_for(cell).seed, big.request_for(cell).seed)
        << cell.key();
  }
  // Distinct cells draw from distinct streams.
  EXPECT_NE(big.request_for(big.cells()[0]).seed,
            big.request_for(big.cells()[1]).seed);
}

TEST(StudyPlanTest, FingerprintTracksStatisticsAffectingKnobsOnly) {
  const StudyPlan base = plan_of(tiny_config());
  StudyPlanConfig seeded = tiny_config();
  seeded.base.seed = 7;
  EXPECT_NE(plan_of(seeded).fingerprint(), base.fingerprint());
  StudyPlanConfig jobs = tiny_config();
  jobs.base.jobs = 4;
  jobs.base.backend = "jit";
  EXPECT_EQ(plan_of(jobs).fingerprint(), base.fingerprint());
}

TEST(StudyCellTest, PayloadRoundTrips) {
  StudyCell cell;
  cell.benchmark = "stencil";
  cell.vl = 4;
  cell.isa = "sse";
  cell.category = "address";
  cell.detectors = true;
  CellCounts counts;
  counts.campaigns = 3;
  counts.experiments = 120;
  counts.benign = 40;
  counts.sdc = 70;
  counts.crash = 10;
  counts.detected_sdc = 12;
  counts.detected_total = 15;
  counts.exit_code = 0;
  counts.converged = true;

  const std::optional<StudyCellOutcome> back =
      parse_study_cell(study_cell_payload(cell, counts));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cell.key(), cell.key());
  EXPECT_EQ(back->counts.campaigns, counts.campaigns);
  EXPECT_EQ(back->counts.experiments, counts.experiments);
  EXPECT_EQ(back->counts.benign, counts.benign);
  EXPECT_EQ(back->counts.sdc, counts.sdc);
  EXPECT_EQ(back->counts.crash, counts.crash);
  EXPECT_EQ(back->counts.detected_sdc, counts.detected_sdc);
  EXPECT_EQ(back->counts.detected_total, counts.detected_total);
  EXPECT_EQ(back->counts.exit_code, counts.exit_code);
  EXPECT_TRUE(back->counts.converged);
  EXPECT_TRUE(back->done);
  EXPECT_FALSE(parse_study_cell("{\"t\":\"campaign\"}").has_value());
  EXPECT_FALSE(
      parse_study_cell("{\"t\":\"study-cell\",\"key\":\"x|y\"}").has_value());
}

// --- vl protocol field ------------------------------------------------------

TEST(StudyProtocolTest, VlRoundTripsAndValidates) {
  serve::CampaignRequest request;
  request.benchmark = "dot";
  request.vl = 4;
  const std::string payload = serve::serialize_request(request);
  EXPECT_NE(payload.find("\"vl\":4"), std::string::npos);
  std::string error;
  const std::optional<serve::CampaignRequest> back =
      serve::parse_request(payload, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->vl, 4u);

  // vl 0 (native) stays off the wire so pre-vl daemons still parse it.
  request.vl = 0;
  EXPECT_EQ(serve::serialize_request(request).find("\"vl\""),
            std::string::npos);

  request.vl = 3;
  EXPECT_FALSE(
      serve::parse_request(serve::serialize_request(request), &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(StudyProtocolTest, StudyRequestRoundTrips) {
  StudyRequest request;
  request.plan = tiny_config();
  request.plan.detectors_on = false;
  request.window = 7;
  std::string error;
  const std::optional<StudyRequest> back =
      parse_study_request(serialize_study_request(request), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->window, 7u);
  EXPECT_EQ(plan_of(back->plan).fingerprint(),
            plan_of(request.plan).fingerprint());

  request.plan.benchmarks = {"no-such-benchmark"};
  EXPECT_FALSE(
      parse_study_request(serialize_study_request(request), &error)
          .has_value());
}

// --- run_study byte-identity ------------------------------------------------

TEST(StudyRunTest, ReportByteIdenticalAcrossWindowSizes) {
  const StudyPlan plan = plan_of(tiny_config());
  std::string first_json, first_csv;
  for (const unsigned window : {1u, 3u, 8u}) {
    StudyOptions options;
    options.window = window;
    const StudyResult result = run_study(plan, options);
    EXPECT_TRUE(result.complete()) << result.error;
    EXPECT_EQ(result.cells_executed, plan.cells().size());
    const std::string json = study_report_json(plan, result);
    const std::string csv = study_report_csv(plan, result);
    if (first_json.empty()) {
      first_json = json;
      first_csv = csv;
    } else {
      EXPECT_EQ(json, first_json) << "window " << window;
      EXPECT_EQ(csv, first_csv) << "window " << window;
    }
  }
}

TEST(StudyRunTest, ReportIndependentOfCompletionOrder) {
  const StudyPlan plan = plan_of(tiny_config());
  StudyOptions options;
  const StudyResult result = run_study(plan, options);
  ASSERT_TRUE(result.complete()) << result.error;
  const std::string report = study_report_json(plan, result);

  // Shuffle the outcome vector — as if the cells had completed in any
  // other order — and diff the report bytes.
  StudyResult shuffled = result;
  std::reverse(shuffled.cells.begin(), shuffled.cells.end());
  EXPECT_EQ(study_report_json(plan, shuffled), report);
  EXPECT_EQ(study_report_markdown(plan, shuffled),
            study_report_markdown(plan, result));
  EXPECT_EQ(study_report_csv(plan, shuffled),
            study_report_csv(plan, result));
  std::rotate(shuffled.cells.begin(), shuffled.cells.begin() + 1,
              shuffled.cells.end());
  EXPECT_EQ(study_report_json(plan, shuffled), report);
}

TEST(StudyRunTest, JournalInterruptResumeByteIdentical) {
  const StudyPlan plan = plan_of(tiny_config());
  StudyOptions plain;
  const StudyResult uninterrupted = run_study(plan, plain);
  ASSERT_TRUE(uninterrupted.complete()) << uninterrupted.error;
  const std::string expected = study_report_json(plan, uninterrupted);

  const std::string journal = fresh_path("resume.journal");
  StudyOptions half;
  half.journal_path = journal;
  half.window = 1;  // deterministic cell count at the stop
  half.stop_after_cells = 2;
  const StudyResult partial = run_study(plan, half);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.exit_code, 5);
  EXPECT_EQ(partial.cells_completed, 2u);

  StudyOptions resume;
  resume.journal_path = journal;
  const StudyResult resumed = run_study(plan, resume);
  ASSERT_TRUE(resumed.complete()) << resumed.error;
  EXPECT_EQ(resumed.cells_from_journal, 2u);
  EXPECT_EQ(resumed.cells_executed, plan.cells().size() - 2u);
  EXPECT_EQ(resumed.exit_code, uninterrupted.exit_code);
  EXPECT_EQ(study_report_json(plan, resumed), expected);
  EXPECT_EQ(study_report_csv(plan, resumed),
            study_report_csv(plan, uninterrupted));

  // A third run replays everything: zero new experiments.
  StudyOptions replay;
  replay.journal_path = journal;
  const StudyResult replayed = run_study(plan, replay);
  ASSERT_TRUE(replayed.complete()) << replayed.error;
  EXPECT_EQ(replayed.cells_from_journal, plan.cells().size());
  EXPECT_EQ(replayed.cells_executed, 0u);
  EXPECT_EQ(replayed.new_experiments, 0u);
  EXPECT_EQ(study_report_json(plan, replayed), expected);
  std::remove(journal.c_str());
}

TEST(StudyRunTest, JournalFromDifferentPlanRefused) {
  const StudyPlan plan = plan_of(tiny_config());
  const std::string journal = fresh_path("mismatch.journal");
  StudyOptions seed_run;
  seed_run.journal_path = journal;
  seed_run.stop_after_cells = 1;
  (void)run_study(plan, seed_run);

  StudyPlanConfig other_config = tiny_config();
  other_config.base.seed = 7;  // statistics-affecting → new fingerprint
  const StudyPlan other = plan_of(other_config);
  StudyOptions resume;
  resume.journal_path = journal;
  const StudyResult refused = run_study(other, resume);
  EXPECT_EQ(refused.exit_code, 3);
  EXPECT_NE(refused.error.find("plan"), std::string::npos)
      << refused.error;
  std::remove(journal.c_str());
}

TEST(StudyRunTest, SummaryStoreReuseIssuesZeroNewExperiments) {
  const StudyPlan plan = plan_of(tiny_config());
  const std::string store = fresh_store_dir("reuse");
  StudyOptions first;
  first.summaries_dir = store;
  const StudyResult cold = run_study(plan, first);
  ASSERT_TRUE(cold.complete()) << cold.error;
  EXPECT_EQ(cold.cells_executed, plan.cells().size());
  EXPECT_GT(cold.new_experiments, 0u);

  StudyOptions second;
  second.summaries_dir = store;
  const StudyResult warm = run_study(plan, second);
  ASSERT_TRUE(warm.complete()) << warm.error;
  EXPECT_EQ(warm.cells_from_store, plan.cells().size());
  EXPECT_EQ(warm.cells_executed, 0u);
  EXPECT_EQ(warm.new_experiments, 0u);
  EXPECT_EQ(study_report_json(plan, warm), study_report_json(plan, cold));

  // A different seed fingerprints differently — no false reuse.
  StudyPlanConfig reseeded_config = tiny_config();
  reseeded_config.base.seed = 7;
  const StudyPlan reseeded = plan_of(reseeded_config);
  StudyOptions third;
  third.summaries_dir = store;
  const StudyResult fresh = run_study(reseeded, third);
  ASSERT_TRUE(fresh.complete()) << fresh.error;
  EXPECT_EQ(fresh.cells_from_store, 0u);
  std::remove((store + "/" + SummaryStore::filename()).c_str());
  ::rmdir(store.c_str());
}

// --- daemon execution -------------------------------------------------------

class StudyServeTest : public testing::Test {
 protected:
  void start() {
    static std::atomic<unsigned> counter{0};
    socket_path_ = "/tmp/vulfi_study_test_" + std::to_string(::getpid()) +
                   "_" + std::to_string(counter.fetch_add(1)) + ".sock";
    serve::ServerConfig config;
    config.socket_path = socket_path_;
    config.workers = 2;
    config.verbose = false;
    server_ = std::make_unique<serve::CampaignServer>(config);
    register_study_op(*server_);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->request_shutdown();
      server_->wait();
    }
  }

  std::string socket_path_;
  std::unique_ptr<serve::CampaignServer> server_;
};

TEST_F(StudyServeTest, DaemonFannedReportMatchesLocalBytes) {
  start();
  const StudyPlan plan = plan_of(tiny_config());
  StudyOptions local;
  const StudyResult local_result = run_study(plan, local);
  ASSERT_TRUE(local_result.complete()) << local_result.error;

  StudyOptions fanned;
  fanned.socket = socket_path_;
  fanned.window = 3;
  const StudyResult daemon_result = run_study(plan, fanned);
  ASSERT_TRUE(daemon_result.complete()) << daemon_result.error;
  EXPECT_EQ(daemon_result.cells_executed, plan.cells().size());
  for (const StudyCellOutcome& outcome : daemon_result.cells) {
    EXPECT_EQ(outcome.source, "daemon") << outcome.cell.key();
  }
  EXPECT_EQ(study_report_json(plan, daemon_result),
            study_report_json(plan, local_result));
  EXPECT_EQ(study_report_markdown(plan, daemon_result),
            study_report_markdown(plan, local_result));
}

TEST_F(StudyServeTest, StudyOpStreamsCellsAndReturnsReport) {
  start();
  const StudyPlan plan = plan_of(tiny_config());
  StudyOptions local;
  const StudyResult local_result = run_study(plan, local);
  ASSERT_TRUE(local_result.complete()) << local_result.error;

  StudyRequest request;
  request.plan = tiny_config();
  request.window = 2;
  std::vector<std::string> records;
  serve::StreamCallbacks callbacks;
  callbacks.on_record = [&records](const std::string& line) {
    records.push_back(line);
  };
  const serve::SubmitOutcome outcome =
      submit_study(socket_path_, request, callbacks);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.server_error.empty()) << outcome.server_error;
  EXPECT_EQ(outcome.exit_code, local_result.exit_code);
  EXPECT_EQ(outcome.stats_json, study_report_json(plan, local_result));

  // The streamed transcript is a set of valid sealed study-cell records
  // covering every cell exactly once.
  ASSERT_EQ(records.size(), plan.cells().size());
  std::vector<std::string> keys;
  for (const std::string& sealed : records) {
    const std::optional<std::string> payload = journal_unseal(sealed);
    ASSERT_TRUE(payload.has_value());
    const std::optional<StudyCellOutcome> cell = parse_study_cell(*payload);
    ASSERT_TRUE(cell.has_value());
    keys.push_back(cell->cell.key());
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());

  // A malformed study request is refused with an error done frame
  // (exit 3) — the transport succeeds, the study never runs.
  StudyRequest bad = request;
  bad.plan.benchmarks = {"no-such-benchmark"};
  const serve::SubmitOutcome refused =
      submit_study(socket_path_, bad, {});
  ASSERT_TRUE(refused.ok) << refused.error;
  EXPECT_FALSE(refused.server_error.empty());
  EXPECT_EQ(refused.exit_code, 3);
}

// --- EngineCache under mixed study traffic ----------------------------------

TEST(StudyEngineCacheTest, LruBoundHoldsAndWarmHitsDominate) {
  serve::EngineCache cache(4);
  // Six distinct study keys — more than the cache holds — spanning
  // benchmark, isa, and vl (vl alone must split the key).
  std::vector<serve::CampaignRequest> requests;
  for (const char* benchmark : {"dot", "vsum"}) {
    for (const unsigned vl : {0u, 1u, 4u}) {
      serve::CampaignRequest request;
      request.benchmark = benchmark;
      request.category = "control";
      request.isa = "avx";
      request.vl = vl;
      requests.push_back(request);
    }
  }
  ASSERT_EQ(requests.size(), 6u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    for (std::size_t j = i + 1; j < requests.size(); ++j) {
      EXPECT_NE(serve::EngineCache::key_of(requests[i]),
                serve::EngineCache::key_of(requests[j]));
    }
  }

  // Study-shaped traffic: each cell touched repeatedly in a burst (the
  // campaign's experiments), bursts cycling through all keys.
  for (const serve::CampaignRequest& request : requests) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      serve::EngineCache::Lease lease = cache.acquire(request);
      ASSERT_TRUE(lease.ok()) << lease.error;
      ASSERT_FALSE(lease.engines.empty());
      EXPECT_EQ(lease.cache_hit, repeat > 0);
    }
  }
  const serve::EngineCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.hits, 12u);       // warm hits dominate misses 2:1
  EXPECT_LE(stats.entries, 4u);     // LRU bound holds past eviction

  // Re-touching an evicted key is a miss, not an error.
  serve::EngineCache::Lease lease = cache.acquire(requests[0]);
  ASSERT_TRUE(lease.ok()) << lease.error;
  EXPECT_FALSE(lease.cache_hit);
}

}  // namespace
}  // namespace vulfi::study
