// Campaign-service integration tests: an in-process CampaignServer on a
// real Unix socket, exercised through the same client calls the CLI
// uses. Covers the acceptance contract of the daemon: byte-identical
// statistics versus a direct run (at any --jobs), warm-cache hits,
// racing clients, per-request cancellation (explicit and by disconnect),
// bounded-queue backpressure, protocol fuzz robustness, drain-on-
// shutdown, and checkpoint resume through the socket.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/diff.hpp"
#include "serve/engine_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "support/journal.hpp"
#include "support/socket.hpp"
#include "support/version.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/report.hpp"

namespace vulfi::serve {
namespace {

// --- FairScheduler unit tests ----------------------------------------------

/// A latch the tests use to pin the single worker on a known job while
/// they load the queue deterministically.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;
  void wait_entered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered; });
  }
  void enter_and_wait() {
    std::unique_lock<std::mutex> lock(mutex);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex);
    open = true;
    cv.notify_all();
  }
};

TEST(FairSchedulerTest, PriorityClassesThenFifoWithinClass) {
  FairScheduler scheduler({/*workers=*/1, /*max_queue=*/16});
  Gate gate;
  ASSERT_EQ(scheduler.submit(0, [&] { gate.enter_and_wait(); }),
            FairScheduler::Admit::Accepted);
  gate.wait_entered();  // worker is pinned; everything below queues

  std::mutex order_mutex;
  std::vector<int> order;
  auto job = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };
  // Submission order deliberately scrambles the priorities.
  ASSERT_EQ(scheduler.submit(2, job(20)), FairScheduler::Admit::Accepted);
  ASSERT_EQ(scheduler.submit(0, job(1)), FairScheduler::Admit::Accepted);
  ASSERT_EQ(scheduler.submit(1, job(10)), FairScheduler::Admit::Accepted);
  ASSERT_EQ(scheduler.submit(0, job(2)), FairScheduler::Admit::Accepted);
  ASSERT_EQ(scheduler.submit(2, job(21)), FairScheduler::Admit::Accepted);

  gate.release();
  scheduler.drain_and_stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 20, 21}));
  EXPECT_EQ(scheduler.stats().completed, 6u);
}

TEST(FairSchedulerTest, BoundedQueueReportsFullAndStoppingRejects) {
  FairScheduler scheduler({/*workers=*/1, /*max_queue=*/2});
  Gate gate;
  ASSERT_EQ(scheduler.submit(1, [&] { gate.enter_and_wait(); }),
            FairScheduler::Admit::Accepted);
  gate.wait_entered();  // running, not queued

  std::size_t depth = 0;
  EXPECT_EQ(scheduler.submit(1, [] {}, &depth),
            FairScheduler::Admit::Accepted);
  EXPECT_EQ(depth, 1u);
  EXPECT_EQ(scheduler.submit(1, [] {}, &depth),
            FairScheduler::Admit::Accepted);
  EXPECT_EQ(depth, 2u);
  // The bound holds regardless of priority — no class can starve memory.
  EXPECT_EQ(scheduler.submit(0, [] {}), FairScheduler::Admit::QueueFull);
  EXPECT_EQ(scheduler.stats().queued, 2u);

  gate.release();
  scheduler.drain_and_stop();
  EXPECT_EQ(scheduler.stats().completed, 3u);
  EXPECT_EQ(scheduler.submit(1, [] {}), FairScheduler::Admit::Stopping);
}

// --- live-server fixture ----------------------------------------------------

/// Starts a CampaignServer on a process-unique /tmp socket (Unix socket
/// paths are limited to ~107 bytes, so TempDir-based build paths are
/// unsafe) and shuts it down on teardown.
class ServeTest : public testing::Test {
 protected:
  void start(unsigned workers, std::size_t max_queue = 16) {
    static std::atomic<unsigned> counter{0};
    socket_path_ = "/tmp/vulfi_serve_test_" + std::to_string(::getpid()) +
                   "_" + std::to_string(counter.fetch_add(1)) + ".sock";
    ServerConfig config;
    config.socket_path = socket_path_;
    config.workers = workers;
    config.max_queue = max_queue;
    // In-process servers must not exec /proc/self/exe (this test binary)
    // for sharded submits — point them at the real CLI.
    config.shard_worker_binary = VULFI_CLI_PATH;
    server_ = std::make_unique<CampaignServer>(config);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->request_shutdown();
      server_->wait();
    }
  }

  /// A campaign small enough to finish in well under a second.
  static CampaignRequest tiny_request(std::uint64_t seed = 24029) {
    CampaignRequest request;
    request.benchmark = "dot";
    request.category = "control";
    request.experiments = 10;
    request.min_campaigns = 3;
    request.max_campaigns = 3;
    request.seed = seed;
    return request;
  }

  /// A campaign long enough that cancellation lands mid-run. min_campaigns
  /// bounds the stop rule from below, so an uncancelled run always writes
  /// exactly min_campaigns = 60 records — any smaller journal proves the
  /// cancellation took effect.
  static CampaignRequest long_request() {
    CampaignRequest request;
    request.benchmark = "dot";
    request.category = "control";
    request.experiments = 100;
    request.min_campaigns = 60;
    request.max_campaigns = 60;
    return request;
  }

  /// The daemon's own build path, run cold in-process: cache-miss engine
  /// build plus the same run_campaigns configuration mapping.
  static CampaignResult direct_run(const CampaignRequest& request) {
    EngineCache cold(1);
    EngineCache::Lease lease = cold.acquire(request);
    EXPECT_TRUE(lease.ok()) << lease.error;
    std::vector<InjectionEngine*> engines;
    engines.reserve(lease.engines.size());
    for (const auto& engine : lease.engines) engines.push_back(engine.get());
    return run_campaigns(engines, to_campaign_config(request, 0));
  }

  std::string socket_path_;
  std::unique_ptr<CampaignServer> server_;
};

// --- statistics identity ----------------------------------------------------

TEST_F(ServeTest, StatsByteIdenticalToDirectRunAtAnyJobs) {
  start(/*workers=*/2);
  const CampaignRequest request = tiny_request();
  const CampaignResult direct_result = direct_run(request);
  const std::string direct = campaign_stats_json(direct_result);

  for (unsigned jobs : {1u, 3u}) {
    CampaignRequest parallel = request;
    parallel.jobs = jobs;
    const SubmitOutcome outcome = submit_campaign(socket_path_, parallel);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_EQ(outcome.exit_code, campaign_exit_code(direct_result));
    EXPECT_FALSE(outcome.interrupted);
    EXPECT_EQ(outcome.records, 3u);
    // The whole point of the service: byte equality, not approximation.
    EXPECT_EQ(outcome.stats_json, direct) << "jobs=" << jobs;
  }
}

TEST_F(ServeTest, StreamedRecordsFormAValidJournal) {
  start(/*workers=*/1);
  std::vector<std::string> lines;
  StreamCallbacks callbacks;
  callbacks.on_record = [&](const std::string& line) {
    lines.push_back(line);
  };
  const SubmitOutcome outcome =
      submit_campaign(socket_path_, tiny_request(), callbacks);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(lines.size(), 4u);  // header + 3 campaign records

  // Every streamed line is sealed and unseals to a journal payload; the
  // first is a v2 header carrying this binary's fingerprint.
  const std::optional<std::string> header = journal_unseal(lines[0]);
  ASSERT_TRUE(header.has_value()) << lines[0];
  EXPECT_EQ(journal_str(*header, "build").value_or(""), build_fingerprint());
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::optional<std::string> payload = journal_unseal(lines[i]);
    ASSERT_TRUE(payload.has_value()) << lines[i];
    const std::optional<CampaignRecord> record =
        parse_campaign_record(*payload);
    ASSERT_TRUE(record.has_value()) << *payload;
    EXPECT_EQ(record->campaign, i - 1);
  }
}

// --- sharded submits --------------------------------------------------------

TEST_F(ServeTest, ShardedSubmitMatchesDirectRunByteForByte) {
  start(/*workers=*/1);
  CampaignRequest sharded = tiny_request();
  sharded.shards = 2;
  CampaignRequest plain = sharded;
  plain.shards = 0;

  std::vector<std::string> lines;
  StreamCallbacks callbacks;
  callbacks.on_record = [&](const std::string& line) {
    lines.push_back(line);
  };
  const SubmitOutcome outcome =
      submit_campaign(socket_path_, sharded, callbacks);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  const CampaignResult direct = direct_run(plain);
  EXPECT_EQ(outcome.exit_code, campaign_exit_code(direct));
  EXPECT_EQ(outcome.stats_json, campaign_stats_json(direct));
  // The streamed transcript is the merged journal: header + one sealed
  // record per campaign, in campaign order.
  ASSERT_EQ(lines.size(), 4u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::optional<std::string> payload = journal_unseal(lines[i]);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(parse_campaign_record(*payload)->campaign, i - 1);
  }
}

// --- busy retry -------------------------------------------------------------

TEST(SubmitRetry, RetriesBusyWithBackoffUntilAccepted) {
  // A hand-rolled daemon stand-in: two connections get a "busy" frame,
  // the third gets a full accept→done stream. The retrying client must
  // come back exactly three times and succeed.
  const std::string path = "/tmp/vulfi_retry_test_" +
                           std::to_string(::getpid()) + ".sock";
  UnixListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(path, &error)) << error;

  std::thread fake_daemon([&] {
    for (int i = 0; i < 3; ++i) {
      UnixConn conn = listener.accept_one(10000);
      if (!conn.ok()) {
        ADD_FAILURE() << "accept " << i << " failed";
        return;
      }
      conn.recv_frame(10000);  // consume the submit
      if (i < 2) {
        conn.send_frame(busy_payload(16, 16));
      } else {
        conn.send_frame(accepted_payload(7, 0));
        conn.send_frame(engines_payload(3, false));
        conn.send_frame(done_payload(7, 0, true, false, "", "{}"));
      }
    }
  });

  CampaignRequest request;
  request.benchmark = "dot";
  RetryPolicy policy;
  policy.attempts = 5;
  policy.base_ms = 1;  // keep the test fast; jitter is bounded by base
  const SubmitOutcome outcome = submit_payload_with_retry(
      path, serialize_request(request), policy);
  fake_daemon.join();
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.busy);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.exit_code, 0);
}

TEST(SubmitRetry, ExhaustedRetriesSurfaceTheAttemptCount) {
  const std::string path = "/tmp/vulfi_retry_exhaust_" +
                           std::to_string(::getpid()) + ".sock";
  UnixListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(path, &error)) << error;

  std::thread fake_daemon([&] {
    for (int i = 0; i < 2; ++i) {
      UnixConn conn = listener.accept_one(10000);
      if (!conn.ok()) return;
      conn.recv_frame(10000);
      conn.send_frame(busy_payload(16, 16));
    }
  });

  CampaignRequest request;
  request.benchmark = "dot";
  RetryPolicy policy;
  policy.attempts = 2;
  policy.base_ms = 1;
  const SubmitOutcome outcome = submit_payload_with_retry(
      path, serialize_request(request), policy);
  fake_daemon.join();
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.busy);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_NE(outcome.error.find("2 attempts"), std::string::npos)
      << outcome.error;
}

// --- warm-engine cache ------------------------------------------------------

TEST_F(ServeTest, SecondSubmitHitsTheWarmCacheWithIdenticalStats) {
  start(/*workers=*/1);
  const SubmitOutcome cold = submit_campaign(socket_path_, tiny_request());
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);

  // Different seed, same engine key: must hit, must not perturb stats.
  const SubmitOutcome warm =
      submit_campaign(socket_path_, tiny_request(/*seed=*/7));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.stats_json,
            campaign_stats_json(direct_run(tiny_request(/*seed=*/7))));

  const EngineCacheStats stats = server_->cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EngineCacheKey, BackendIsPartOfTheKey) {
  // A leased engine set carries warmed backend state, so two requests
  // that differ only in backend must never share a cache entry.
  CampaignRequest interp;
  interp.benchmark = "dot";
  CampaignRequest jit = interp;
  jit.backend = "jit";
  EXPECT_NE(EngineCache::key_of(interp), EngineCache::key_of(jit));

  CampaignRequest jit_again = jit;
  jit_again.seed = 777;  // seed is campaign state, not engine state
  EXPECT_EQ(EngineCache::key_of(jit), EngineCache::key_of(jit_again));

  EXPECT_EQ(to_campaign_config(interp, 0).backend,
            vulfi::interp::ExecMode::PreDecoded);
  EXPECT_EQ(to_campaign_config(jit, 0).backend, vulfi::interp::ExecMode::Jit);
}

// --- concurrency ------------------------------------------------------------

TEST_F(ServeTest, RacingClientsEachGetTheirOwnExactStatistics) {
  start(/*workers=*/2);
  const CampaignRequest a = tiny_request(/*seed=*/101);
  const CampaignRequest b = tiny_request(/*seed=*/202);

  SubmitOutcome outcome_a, outcome_b;
  std::thread ta([&] { outcome_a = submit_campaign(socket_path_, a); });
  std::thread tb([&] { outcome_b = submit_campaign(socket_path_, b); });
  ta.join();
  tb.join();

  ASSERT_TRUE(outcome_a.ok) << outcome_a.error;
  ASSERT_TRUE(outcome_b.ok) << outcome_b.error;
  EXPECT_EQ(outcome_a.stats_json, campaign_stats_json(direct_run(a)));
  EXPECT_EQ(outcome_b.stats_json, campaign_stats_json(direct_run(b)));
  EXPECT_NE(outcome_a.stats_json, outcome_b.stats_json);
  EXPECT_EQ(server_->campaigns_served(), 2u);
}

// --- cancellation -----------------------------------------------------------

TEST_F(ServeTest, CancelFrameInterruptsOnlyThatRequest) {
  start(/*workers=*/2);
  CampaignRequest victim = long_request();
  victim.checkpoint = testing::TempDir() + "serve_cancel_frame.ckpt";
  std::remove(victim.checkpoint.c_str());

  UnixConn conn = UnixConn::connect_to(socket_path_);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.send_frame(serialize_request(victim)));
  // Wait until the job owns engines (it is actually running), then ask
  // for cancellation the polite way.
  bool engines_seen = false;
  while (!engines_seen) {
    const std::optional<std::string> frame = conn.recv_frame(10000);
    ASSERT_TRUE(frame.has_value());
    engines_seen = frame->find("\"t\":\"engines\"") != std::string::npos;
  }
  ASSERT_TRUE(conn.send_frame("{\"op\":\"cancel\"}"));
  std::optional<std::string> done;
  for (std::optional<std::string> frame = conn.recv_frame(10000);
       frame.has_value(); frame = conn.recv_frame(10000)) {
    if (frame->find("\"t\":\"done\"") != std::string::npos) {
      done = frame;
      break;
    }
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(journal_u64(*done, "exit").value_or(0),
            static_cast<std::uint64_t>(kCampaignExitInterrupted));
  EXPECT_EQ(journal_u64(*done, "interrupted").value_or(0), 1u);
  conn.close();

  // The drained run checkpointed fewer than min_campaigns records — the
  // proof the stop was the cancel, not the stop rule.
  const JournalRecovery journal = recover_journal(victim.checkpoint);
  EXPECT_TRUE(journal.file_existed);
  EXPECT_LT(journal.records.size(), 1u + victim.min_campaigns);

  // An unrelated request on the same daemon is untouched.
  const SubmitOutcome bystander =
      submit_campaign(socket_path_, tiny_request());
  ASSERT_TRUE(bystander.ok) << bystander.error;
  EXPECT_FALSE(bystander.interrupted);
  std::remove(victim.checkpoint.c_str());
}

TEST_F(ServeTest, ClientDisconnectCancelsItsRequest) {
  start(/*workers=*/2);
  CampaignRequest victim = long_request();
  victim.checkpoint = testing::TempDir() + "serve_disconnect.ckpt";
  std::remove(victim.checkpoint.c_str());

  {
    UnixConn conn = UnixConn::connect_to(socket_path_);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.send_frame(serialize_request(victim)));
    bool engines_seen = false;
    while (!engines_seen) {
      const std::optional<std::string> frame = conn.recv_frame(10000);
      ASSERT_TRUE(frame.has_value());
      engines_seen = frame->find("\"t\":\"engines\"") != std::string::npos;
    }
    conn.close();  // vanish mid-campaign
  }

  // A second client still gets exact service while the victim drains.
  const CampaignRequest request = tiny_request(/*seed=*/55);
  const SubmitOutcome bystander = submit_campaign(socket_path_, request);
  ASSERT_TRUE(bystander.ok) << bystander.error;
  EXPECT_EQ(bystander.stats_json, campaign_stats_json(direct_run(request)));

  // Shutdown drains the cancelled job; its journal stops short of the
  // stop rule, proving the disconnect cancelled it rather than letting
  // it run to completion.
  server_->request_shutdown();
  server_->wait();
  const JournalRecovery journal = recover_journal(victim.checkpoint);
  EXPECT_TRUE(journal.file_existed);
  EXPECT_LT(journal.records.size(), 1u + victim.min_campaigns);
  std::remove(victim.checkpoint.c_str());
  server_.reset();
}

// --- checkpoint resume through the socket -----------------------------------

TEST_F(ServeTest, ResubmitWithCheckpointRestoresBitIdentically) {
  start(/*workers=*/1);
  CampaignRequest request = tiny_request();
  request.checkpoint = testing::TempDir() + "serve_resume.ckpt";
  std::remove(request.checkpoint.c_str());

  const SubmitOutcome first = submit_campaign(socket_path_, request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.records, 3u);

  // Same request, same journal: everything restores, nothing re-executes,
  // and the restored history streams again so the client transcript stays
  // complete. Statistics are byte-identical by the resume contract.
  std::uint64_t restored_records = 0;
  StreamCallbacks callbacks;
  callbacks.on_record = [&](const std::string&) { ++restored_records; };
  const SubmitOutcome second =
      submit_campaign(socket_path_, request, callbacks);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.records, 3u);
  EXPECT_EQ(restored_records, 4u);  // header + 3 restored records
  EXPECT_EQ(second.stats_json, first.stats_json);
  std::remove(request.checkpoint.c_str());
}

// --- backpressure -----------------------------------------------------------

TEST_F(ServeTest, QueueBoundAnswersBusyInsteadOfBuffering) {
  start(/*workers=*/1, /*max_queue=*/1);

  // Pin the single worker on a long campaign.
  UnixConn pin = UnixConn::connect_to(socket_path_);
  ASSERT_TRUE(pin.ok());
  ASSERT_TRUE(pin.send_frame(serialize_request(long_request())));
  bool engines_seen = false;
  while (!engines_seen) {
    const std::optional<std::string> frame = pin.recv_frame(10000);
    ASSERT_TRUE(frame.has_value());
    engines_seen = frame->find("\"t\":\"engines\"") != std::string::npos;
  }

  // Fill the one queue slot with a second submit on its own connection.
  SubmitOutcome queued_outcome;
  std::thread queued([&] {
    queued_outcome = submit_campaign(socket_path_, tiny_request());
  });
  // Wait for the daemon to report the queued request — the admission is
  // observable state, so this does not race.
  for (;;) {
    const std::optional<std::string> stats = server_stats(socket_path_);
    ASSERT_TRUE(stats.has_value());
    if (journal_u64(*stats, "queued").value_or(0) == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The next submit must bounce with "busy", scheduling nothing.
  const SubmitOutcome bounced = submit_campaign(socket_path_, tiny_request());
  EXPECT_FALSE(bounced.ok);
  EXPECT_TRUE(bounced.busy) << bounced.error;

  pin.close();  // cancels the pinned campaign, freeing the worker
  queued.join();
  ASSERT_TRUE(queued_outcome.ok) << queued_outcome.error;
  EXPECT_FALSE(queued_outcome.interrupted);
}

// --- protocol robustness ----------------------------------------------------

TEST_F(ServeTest, FuzzSeedsNeverKillTheDaemon) {
  start(/*workers=*/1);
  for (const std::string& seed : protocol_fuzz_seeds()) {
    UnixConn conn = UnixConn::connect_to(socket_path_);
    ASSERT_TRUE(conn.ok());
    conn.send_all(seed);  // may be rejected mid-write; that's fine
    // Give the server a moment to answer or drop us; ignore the result.
    conn.recv_frame(200);
    conn.close();
  }
  // The daemon survived the whole corpus and still serves correctly.
  std::string error;
  const std::optional<std::string> pong = ping_server(socket_path_, &error);
  ASSERT_TRUE(pong.has_value()) << error;
  EXPECT_NE(pong->find("\"protocol\":1"), std::string::npos);
  const SubmitOutcome outcome = submit_campaign(socket_path_, tiny_request());
  EXPECT_TRUE(outcome.ok) << outcome.error;
}

// --- diff op ----------------------------------------------------------------

TEST_F(ServeTest, DiffOpInjectsOnceThenServesFromTheStore) {
  start(/*workers=*/1);
  const std::string store =
      testing::TempDir() + "vulfi_serve_diff_" + std::to_string(::getpid());
  std::remove((store + "/summaries.jsonl").c_str());

  DiffRequest request;
  request.campaign.category = "control";
  request.campaign.experiments = 10;
  request.campaign.min_campaigns = 2;
  request.campaign.max_campaigns = 2;
  request.units = {"dot"};
  request.store = store;

  const SubmitOutcome fresh = submit_diff(socket_path_, request);
  ASSERT_TRUE(fresh.ok) << fresh.error;
  EXPECT_EQ(fresh.exit_code, 0);
  EXPECT_NE(fresh.stats_json.find("\"t\":\"diff\""), std::string::npos);
  EXPECT_NE(fresh.stats_json.find("\"new_experiments\":20"),
            std::string::npos)
      << fresh.stats_json;

  // Unchanged program, same daemon: everything reuses, zero experiments.
  const SubmitOutcome rerun = submit_diff(socket_path_, request);
  ASSERT_TRUE(rerun.ok) << rerun.error;
  EXPECT_EQ(rerun.exit_code, 0);
  EXPECT_NE(rerun.stats_json.find("\"new_experiments\":0"),
            std::string::npos)
      << rerun.stats_json;
  EXPECT_NE(rerun.stats_json.find("\"reused\":1"), std::string::npos);

  // Reports are deterministic once the baseline exists.
  const SubmitOutcome again = submit_diff(socket_path_, request);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.stats_json, rerun.stats_json);

  // Unknown units are rejected at validation, before admission — the
  // same pre-admission contract as an unknown submit benchmark.
  DiffRequest bogus = request;
  bogus.units = {"no-such-kernel"};
  const SubmitOutcome rejected = submit_diff(socket_path_, bogus);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("unknown unit"), std::string::npos)
      << rejected.error;
  std::remove((store + "/summaries.jsonl").c_str());
}

// --- shutdown ---------------------------------------------------------------

TEST_F(ServeTest, ShutdownDrainsAndReportsServedCount) {
  start(/*workers=*/1);
  const SubmitOutcome outcome = submit_campaign(socket_path_, tiny_request());
  ASSERT_TRUE(outcome.ok) << outcome.error;

  std::uint64_t completed = 0;
  std::string error;
  ASSERT_TRUE(shutdown_server(socket_path_, &completed, &error)) << error;
  EXPECT_EQ(completed, 1u);
  server_->wait();
  EXPECT_TRUE(server_->stopped());

  // The socket is released: pings now fail, and a fresh daemon could bind.
  EXPECT_FALSE(ping_server(socket_path_).has_value());
  server_.reset();
}

}  // namespace
}  // namespace vulfi::serve
