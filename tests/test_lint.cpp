// Lint driver + strengthened-verifier negative tests: every new verifier
// rule and every lint rule has a seeded-violation module that must trigger
// exactly the intended diagnostic, and clean modules must stay clean.
#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "ir/builder.hpp"
#include "ir/intrinsics.hpp"
#include "ir/module.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"
#include "spmd/target.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi::analysis {
namespace {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

bool has_diag(const std::vector<LintDiagnostic>& diags,
              const std::string& rule, const std::string& message_part) {
  for (const LintDiagnostic& d : diags) {
    if (d.rule == rule && d.message.find(message_part) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool has_error(const std::vector<std::string>& errors,
               const std::string& part) {
  for (const std::string& e : errors) {
    if (e.find(part) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Clean modules lint clean
// ---------------------------------------------------------------------------

TEST(Lint, ShippedBenchmarkModulesAreClean) {
  for (const char* name : {"dot", "stencil", "blackscholes"}) {
    const kernels::Benchmark* bench = kernels::find_benchmark(name);
    ASSERT_NE(bench, nullptr);
    for (const spmd::Target& target :
         {spmd::Target::avx(), spmd::Target::sse4()}) {
      RunSpec spec = bench->build(target, 0);
      const auto diags = lint_module(*spec.module);
      EXPECT_TRUE(diags.empty())
          << name << ": " << (diags.empty() ? "" : diags.front().render());
    }
  }
}

TEST(Lint, TrivialCleanFunctionHasNoDiagnostics) {
  ir::Module m("clean");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* sum = b.add(f->arg(1), m.const_int(Type::i32(), 1), "sum");
  b.store(sum, f->arg(0));
  b.ret();
  EXPECT_TRUE(lint_module(m).empty());
}

// ---------------------------------------------------------------------------
// Lint rules, one seeded violation each
// ---------------------------------------------------------------------------

TEST(Lint, FlagsUnreachableBlock) {
  ir::Module m("m");
  ir::Function* f = m.create_function("f", Type::void_ty(), {});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.ret();
  b.set_insert_block(f->create_block("island"));
  b.ret();

  AnalysisManager am;
  const auto diags = lint_function(*f, am);
  EXPECT_TRUE(has_diag(diags, "unreachable-block", "island"));
  EXPECT_FALSE(has_diag(diags, "verify", ""));  // still structurally valid
}

TEST(Lint, FlagsDeadValueChain) {
  ir::Module m("m");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* dead = b.mul(f->arg(1), m.const_int(Type::i32(), 3), "lonely");
  b.store(f->arg(1), f->arg(0));
  b.ret();
  (void)dead;

  AnalysisManager am;
  const auto diags = lint_function(*f, am);
  EXPECT_TRUE(has_diag(diags, "dead-value", "%lonely"));
}

TEST(Lint, FlagsConstantCondition) {
  ir::Module m("m");
  ir::Function* f = m.create_function("f", Type::i32(), {Type::i32()});
  IRBuilder b(m);
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* then_bb = f->create_block("then");
  ir::BasicBlock* else_bb = f->create_block("else");
  b.set_insert_block(entry);
  b.cond_br(m.const_int(Type::i1(), 1), then_bb, else_bb);
  b.set_insert_block(then_bb);
  b.ret(f->arg(0));
  b.set_insert_block(else_bb);
  b.ret(m.const_int(Type::i32(), 0));

  AnalysisManager am;
  const auto diags = lint_function(*f, am);
  EXPECT_TRUE(has_diag(diags, "constant-condition", "true successor"));
}

TEST(Lint, VerifierErrorsSurfaceUnderTheVerifyRule) {
  ir::Module m("m");
  ir::Function* f = m.create_function("f", Type::void_ty(), {});
  f->create_block("entry");  // empty block: structurally invalid

  AnalysisManager am;
  const auto diags = lint_function(*f, am);
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(has_diag(diags, "verify", "block"));
  // render() carries the bracketed rule tag the CLI prints.
  EXPECT_EQ(diags.front().render().rfind("[verify] ", 0), 0u);
}

// ---------------------------------------------------------------------------
// Strengthened verifier rules (negative tests per diagnostic)
// ---------------------------------------------------------------------------

TEST(Verifier, RejectsFcmpOnIntegerOperands) {
  ir::Module m("m");
  ir::Function* f =
      m.create_function("f", Type::i1(), {Type::f32(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* cmp = b.fcmp(ir::FCmpPred::OLT, f->arg(0), f->arg(0), "cmp");
  b.ret(cmp);
  // Rewire both operands to the i32 argument: operand types still agree
  // with each other, so only the new fp-operand rule can fire.
  ir::Instruction* inst = dynamic_cast<ir::Instruction*>(cmp);
  inst->set_operand(0, f->arg(1));
  inst->set_operand(1, f->arg(1));
  EXPECT_TRUE(
      has_error(ir::verify(*f), "fcmp needs floating-point operands"));
}

TEST(Verifier, RejectsShuffleMaskIndexOutOfRange) {
  ir::Module m("m");
  const Type v4f = Type::vector(ir::TypeKind::F32, 4);
  ir::Function* f = m.create_function("f", v4f, {v4f, v4f});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  // Two v4 inputs: valid lane ids are 0..7; 8 is out of range. The builder
  // does not validate masks, so this reaches the verifier.
  Value* bad = b.shuffle(f->arg(0), f->arg(1), {0, 1, 2, 8}, "bad");
  b.ret(bad);
  EXPECT_TRUE(has_error(ir::verify(*f), "shuffle mask index out of range"));
}

TEST(Verifier, RejectsSelectConditionLaneMismatch) {
  ir::Module m("m");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  const Type v4i = Type::vector(ir::TypeKind::I32, 4);
  ir::Function* f = m.create_function("f", v8f, {v8f, v8f, v4i, v4i});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* cond8 = b.fcmp(ir::FCmpPred::OLT, f->arg(0), f->arg(1), "c8");
  Value* cond4 = b.icmp(ir::ICmpPred::SLT, f->arg(2), f->arg(3), "c4");
  Value* sel = b.select(cond8, f->arg(0), f->arg(1), "sel");
  b.ret(sel);
  dynamic_cast<ir::Instruction*>(sel)->set_operand(0, cond4);
  EXPECT_TRUE(
      has_error(ir::verify(*f), "select condition lane count mismatch"));
}

TEST(Verifier, RejectsMaskedDeclWithWrongMaskElementWidth) {
  // A masked load of <8 x float> whose mask is <8 x i16>: lane counts
  // agree but element widths do not — vmaskmov reads the sign bit of a
  // SAME-WIDTH integer lane.
  ir::Module m("m");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  const Type v8i16 = Type::vector(ir::TypeKind::I16, 8);
  ir::IntrinsicInfo info;
  info.id = ir::IntrinsicId::MaskLoad;
  info.mask_operand = 1;
  m.declare_exact("bad.maskload", v8f, {Type::ptr(), v8i16},
                  ir::FunctionKind::Intrinsic, info);
  EXPECT_TRUE(has_error(
      ir::verify(m), "mask element width does not match data element width"));
  // The same mistake surfaces through the lint driver as a [verify] diag.
  EXPECT_TRUE(has_diag(lint_module(m), "verify", "mask element width"));
}

TEST(Verifier, RejectsMaskedDeclWithWrongMaskLaneCount) {
  ir::Module m("m");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  const Type v4i = Type::vector(ir::TypeKind::I32, 4);
  ir::IntrinsicInfo info;
  info.id = ir::IntrinsicId::MaskStore;
  info.mask_operand = 1;
  info.data_operand = 2;
  m.declare_exact("bad.maskstore", Type::void_ty(), {Type::ptr(), v4i, v8f},
                  ir::FunctionKind::Intrinsic, info);
  EXPECT_TRUE(has_error(
      ir::verify(m), "mask lane count does not match data lane count"));
}

TEST(Verifier, AcceptsWellFormedMaskedIntrinsics) {
  ir::Module m("m");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  m.declare_masked_intrinsic(ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
  m.declare_masked_intrinsic(ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
  EXPECT_TRUE(ir::verify(m).empty());
}

}  // namespace
}  // namespace vulfi::analysis
