// Additional infrastructure tests: bar-chart rendering, outcome reports,
// and randomized property tests over the IR toolchain — random programs
// must survive DCE, cloning, and print/parse round trips with identical
// execution results.
#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/cloner.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/transforms.hpp"
#include "ir/verifier.hpp"
#include "support/barchart.hpp"
#include "support/rng.hpp"
#include "vulfi/fi_runtime.hpp"
#include "vulfi/instrument.hpp"
#include "vulfi/report.hpp"

namespace vulfi {
namespace {

// ---------------------------------------------------------------------------
// Bar charts
// ---------------------------------------------------------------------------

TEST(BarChart, SingleSeries) {
  EXPECT_EQ(bar(0.0, 10), "[          ]");
  EXPECT_EQ(bar(1.0, 10), "[##########]");
  EXPECT_EQ(bar(0.5, 10), "[#####     ]");
  EXPECT_EQ(bar(2.0, 4), "[####]");   // clamped
  EXPECT_EQ(bar(-1.0, 4), "[    ]");  // clamped
}

TEST(BarChart, StackedApportionment) {
  // 0.5 + 0.3 + 0.2 at width 10: exactly 5 + 3 + 2.
  EXPECT_EQ(stacked_bar({{0.5, '#'}, {0.3, '.'}, {0.2, 'x'}}, 10),
            "[#####...xx]");
  // Rounding: total 1.0 must fill the bar even with awkward fractions.
  const std::string thirds =
      stacked_bar({{1.0 / 3, 'a'}, {1.0 / 3, 'b'}, {1.0 / 3, 'c'}}, 10);
  EXPECT_EQ(thirds.size(), 12u);
  EXPECT_EQ(thirds.find(' '), std::string::npos);
}

TEST(BarChart, PartialTotalsLeaveWhitespace) {
  const std::string half = stacked_bar({{0.25, '#'}, {0.25, '.'}}, 20);
  const std::size_t spaces =
      static_cast<std::size_t>(std::count(half.begin(), half.end(), ' '));
  EXPECT_EQ(spaces, 10u);
}

TEST(BarChart, ZeroWidth) { EXPECT_EQ(stacked_bar({{0.5, '#'}}, 0), "[]"); }

// ---------------------------------------------------------------------------
// OutcomeReport
// ---------------------------------------------------------------------------

TEST(OutcomeReport, AggregatesByOpcodeAndAttributes) {
  // Fabricate a small site table.
  ir::Module m("r");
  ir::Function* f = m.create_function("f", ir::Type::f32(),
                                      {ir::Type::f32(), ir::Type::f32()});
  ir::IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  ir::Value* sum = b.fadd(f->arg(0), f->arg(1), "sum");
  b.ret(sum);
  std::vector<FaultSite> sites = enumerate_fault_sites(*f);
  ASSERT_EQ(sites.size(), 1u);

  OutcomeReport report;
  ExperimentResult r1;
  r1.outcome = Outcome::SDC;
  r1.injection.fired = true;
  r1.injection.site_id = 0;
  report.record(r1, sites);
  ExperimentResult r2;
  r2.outcome = Outcome::Benign;
  r2.injection.fired = true;
  r2.injection.site_id = 0;
  r2.detected = true;
  report.record(r2, sites);
  ExperimentResult none;  // no injection fired
  report.record(none, sites);

  EXPECT_EQ(report.experiments(), 3u);
  const auto& by_opcode = report.by_opcode();
  ASSERT_TRUE(by_opcode.count("fadd"));
  EXPECT_EQ(by_opcode.at("fadd").sdc, 1u);
  EXPECT_EQ(by_opcode.at("fadd").benign, 1u);
  EXPECT_EQ(by_opcode.at("fadd").detected, 1u);
  EXPECT_EQ(report.scalar_sites().total(), 2u);
  EXPECT_EQ(report.vector_sites().total(), 0u);
  const std::string rendered = report.render_by_opcode();
  EXPECT_NE(rendered.find("fadd"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Randomized property tests over the IR toolchain
// ---------------------------------------------------------------------------

/// Generates a random straight-line integer function i32(i32, i32, i32)
/// built from wrap-safe operations, plus a loop to exercise phis.
ir::Function* random_program(ir::Module& module, Rng& rng,
                             const std::string& name) {
  ir::Function* f = module.create_function(
      name, ir::Type::i32(),
      {ir::Type::i32(), ir::Type::i32(), ir::Type::i32()});
  ir::IRBuilder b(module);
  ir::BasicBlock* entry = f->create_block("entry");
  b.set_insert_block(entry);

  std::vector<ir::Value*> pool = {f->arg(0), f->arg(1), f->arg(2),
                                  b.i32_const(1), b.i32_const(-7),
                                  b.i32_const(13)};
  const unsigned ops = 4 + static_cast<unsigned>(rng.next_below(12));
  for (unsigned i = 0; i < ops; ++i) {
    ir::Value* lhs = pool[rng.next_below(pool.size())];
    ir::Value* rhs = pool[rng.next_below(pool.size())];
    ir::Value* result = nullptr;
    switch (rng.next_below(6)) {
      case 0: result = b.add(lhs, rhs); break;
      case 1: result = b.sub(lhs, rhs); break;
      case 2: result = b.mul(lhs, rhs); break;
      case 3: result = b.xor_(lhs, rhs); break;
      case 4: result = b.and_(lhs, rhs); break;
      default: result = b.or_(lhs, rhs); break;
    }
    pool.push_back(result);
  }
  // Deliberately dead chain (DCE fodder).
  b.mul(pool.back(), b.i32_const(3), "dead");

  // A small counted loop accumulating into a phi.
  ir::BasicBlock* header = f->create_block("loop");
  ir::BasicBlock* exit = f->create_block("exit");
  ir::Value* trip = b.i32_const(
      static_cast<std::int32_t>(1 + rng.next_below(6)));
  b.br(header);
  b.set_insert_block(header);
  ir::Instruction* iv = b.phi(ir::Type::i32(), "iv");
  ir::Instruction* acc = b.phi(ir::Type::i32(), "acc");
  ir::Value* acc_next = b.add(acc, pool[rng.next_below(pool.size())]);
  ir::Value* iv_next = b.add(iv, b.i32_const(1));
  ir::Value* done = b.icmp(ir::ICmpPred::SGE, iv_next, trip);
  b.cond_br(done, exit, header);
  iv->phi_add_incoming(b.i32_const(0), entry);
  iv->phi_add_incoming(iv_next, header);
  acc->phi_add_incoming(pool[rng.next_below(pool.size())], entry);
  acc->phi_add_incoming(acc_next, header);
  b.set_insert_block(exit);
  ir::Instruction* result = b.phi(ir::Type::i32(), "result");
  result->phi_add_incoming(acc_next, header);
  b.ret(result);
  return f;
}

std::int64_t run_program(const ir::Function& f, std::int32_t a,
                         std::int32_t b_val, std::int32_t c) {
  interp::Arena arena;
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  const auto result = interp.run(
      f, {interp::RtVal::i32(a), interp::RtVal::i32(b_val),
          interp::RtVal::i32(c)});
  EXPECT_TRUE(result.ok()) << result.trap.detail;
  return result.return_value.lane_int(0);
}

class IrToolchainFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IrToolchainFuzz, RandomProgramsSurviveTheToolchain) {
  Rng rng(0xF022 + static_cast<std::uint64_t>(GetParam()));
  ir::Module module("fuzz");
  ir::Function* f = random_program(module, rng, "f");
  ASSERT_TRUE(ir::verify(module).empty()) << ir::verify(module).front();

  const std::int32_t a = static_cast<std::int32_t>(rng.next_u64());
  const std::int32_t b = static_cast<std::int32_t>(rng.next_u64());
  const std::int32_t c = static_cast<std::int32_t>(rng.next_u64());
  const std::int64_t expected = run_program(*f, a, b, c);

  // Property 1: cloning preserves behaviour.
  const auto clone = ir::clone_module(module);
  EXPECT_EQ(run_program(*clone->find_function("f"), a, b, c), expected);

  // Property 2: the printed form parses back to the same behaviour.
  const std::string printed = ir::to_string(module);
  ir::ParseResult parsed = ir::parse_module(printed);
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty()
                                   ? std::string()
                                   : parsed.errors.front());
  EXPECT_EQ(run_program(*parsed.module->find_function("f"), a, b, c),
            expected);
  EXPECT_EQ(ir::to_string(*parsed.module), printed);

  // Property 3: DCE preserves behaviour and removes the planted dead code.
  const unsigned removed = ir::eliminate_dead_code(*f);
  EXPECT_GE(removed, 1u);
  EXPECT_TRUE(ir::verify(module).empty());
  EXPECT_EQ(run_program(*f, a, b, c), expected);

  // Property 4: instrumentation with an idle runtime preserves behaviour.
  Instrumentor instrumentor;
  const auto sites = instrumentor.run(*f);
  EXPECT_FALSE(sites.empty());
  EXPECT_TRUE(ir::verify(module).empty()) << ir::verify(module).front();
  interp::Arena arena;
  interp::RuntimeEnv env;
  FaultInjectionRuntime runtime;
  runtime.set_sites(sites);
  runtime.attach(env);
  interp::Interpreter interp(arena, env);
  const auto result = interp.run(
      *f, {interp::RtVal::i32(a), interp::RtVal::i32(b),
           interp::RtVal::i32(c)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value.lane_int(0), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrToolchainFuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace vulfi
