// Determinism/regression suite for parallel campaigns: run_campaigns must
// produce bit-identical results for every thread count. The guarantee
// rests on counter-based per-experiment seeding (support/rng's
// derive_stream_seed): an experiment's stream depends only on
// (seed, campaign, experiment), never on which thread runs it or when,
// and per-campaign samples fold into the statistics in campaign order.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernels/benchmark.hpp"
#include "kernels/micro.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

namespace vulfi {
namespace {

CampaignResult run_with_threads(const kernels::Benchmark& bench,
                                unsigned num_threads,
                                std::uint64_t seed = 0xfeedULL,
                                EngineOptions engine_options = {},
                                bool use_golden_cache = true) {
  std::vector<std::unique_ptr<InjectionEngine>> engines;
  std::vector<InjectionEngine*> pointers;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    engines.push_back(std::make_unique<InjectionEngine>(
        bench.build(spmd::Target::avx(), input),
        analysis::FaultSiteCategory::PureData, engine_options));
    pointers.push_back(engines.back().get());
  }
  CampaignConfig config;
  config.experiments_per_campaign = 25;
  config.min_campaigns = 4;
  config.max_campaigns = 6;
  config.seed = seed;
  config.num_threads = num_threads;
  config.use_golden_cache = use_golden_cache;
  return run_campaigns(pointers, config);
}

/// Campaign run with the execution-path optimizations toggled: golden-run
/// memoization and/or the pre-decoded executor. (false, false) is the
/// pre-optimization baseline; (true, true) is the default fast path.
CampaignResult run_configured(const kernels::Benchmark& bench,
                              unsigned num_threads, bool golden_cache,
                              bool predecode) {
  EngineOptions options;
  options.golden_cache = golden_cache;
  options.predecode = predecode;
  return run_with_threads(bench, num_threads, 0xfeedULL, options,
                          golden_cache);
}

/// Bit-exact comparison of everything a campaign reports — counters,
/// per-campaign SDC samples, and the derived stop-rule statistics.
void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.campaigns, b.campaigns);
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.detected_sdc, b.detected_sdc);
  EXPECT_EQ(a.detected_total, b.detected_total);
  ASSERT_EQ(a.campaign_sdc_rates.size(), b.campaign_sdc_rates.size());
  for (std::size_t i = 0; i < a.campaign_sdc_rates.size(); ++i) {
    EXPECT_EQ(a.campaign_sdc_rates[i], b.campaign_sdc_rates[i])
        << "campaign " << i;
  }
  // Derived statistics: same sample sequence in the same order means the
  // same floating-point accumulation, bit for bit.
  EXPECT_EQ(a.sdc_samples.mean(), b.sdc_samples.mean());
  EXPECT_EQ(a.sdc_samples.variance(), b.sdc_samples.variance());
  EXPECT_EQ(a.margin_of_error, b.margin_of_error);
  EXPECT_EQ(a.near_normal, b.near_normal);
}

class CampaignDeterminism
    : public ::testing::TestWithParam<const kernels::Benchmark*> {};

TEST_P(CampaignDeterminism, ThreadCountDoesNotChangeResults) {
  const kernels::Benchmark& bench = *GetParam();
  const CampaignResult serial = run_with_threads(bench, 1);
  const CampaignResult two = run_with_threads(bench, 2);
  const CampaignResult eight = run_with_threads(bench, 8);
  expect_identical(serial, two);
  expect_identical(serial, eight);
}

TEST_P(CampaignDeterminism, HardwareConcurrencyMatchesSerial) {
  const kernels::Benchmark& bench = *GetParam();
  expect_identical(run_with_threads(bench, 1),
                   run_with_threads(bench, /*num_threads=*/0));
}

INSTANTIATE_TEST_SUITE_P(
    SmallKernels, CampaignDeterminism,
    ::testing::Values(&kernels::vector_copy_benchmark(),
                      &kernels::dot_product_benchmark()),
    [](const auto& info) { return info.param->name(); });

TEST(CampaignDeterminism, RepeatedParallelRunsAgree) {
  const CampaignResult a =
      run_with_threads(kernels::dot_product_benchmark(), 4);
  const CampaignResult b =
      run_with_threads(kernels::dot_product_benchmark(), 4);
  expect_identical(a, b);
}

TEST(CampaignDeterminism, DifferentSeedsDiverge) {
  const CampaignResult a =
      run_with_threads(kernels::dot_product_benchmark(), 2, 100);
  const CampaignResult b =
      run_with_threads(kernels::dot_product_benchmark(), 2, 101);
  EXPECT_TRUE(a.sdc != b.sdc || a.benign != b.benign || a.crash != b.crash);
}

TEST(EngineClone, CloneReplaysIdenticalExperiments) {
  // A cloned engine is a fully independent replica: the same experiment
  // stream must produce the same outcomes and injection records.
  InjectionEngine original(
      kernels::vector_sum_benchmark().build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::PureData);
  const std::unique_ptr<InjectionEngine> replica = original.clone();
  ASSERT_EQ(original.sites().size(), replica->sites().size());
  EXPECT_EQ(original.category(), replica->category());

  for (std::uint64_t experiment = 0; experiment < 10; ++experiment) {
    Rng rng_a(derive_stream_seed(7, 0, experiment));
    Rng rng_b(derive_stream_seed(7, 0, experiment));
    const ExperimentResult a = original.run_experiment(rng_a);
    const ExperimentResult b = replica->run_experiment(rng_b);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.dynamic_sites, b.dynamic_sites);
    EXPECT_EQ(a.injection.site_id, b.injection.site_id);
    EXPECT_EQ(a.injection.bit, b.injection.bit);
    EXPECT_EQ(a.injection.bits_before, b.injection.bits_before);
    EXPECT_EQ(a.injection.bits_after, b.injection.bits_after);
  }
}

// ---------------------------------------------------------------------------
// Execution-path differential suite: the golden-run cache and the
// pre-decoded executor are pure performance work — every campaign
// statistic must be bit-identical with them on or off, serial or
// parallel.
// ---------------------------------------------------------------------------

class ExecutionPathDifferential
    : public ::testing::TestWithParam<const kernels::Benchmark*> {};

TEST_P(ExecutionPathDifferential, GoldenCacheDoesNotChangeResults) {
  const kernels::Benchmark& bench = *GetParam();
  for (unsigned jobs : {1u, 4u}) {
    expect_identical(run_configured(bench, jobs, true, true),
                     run_configured(bench, jobs, false, true));
  }
}

TEST_P(ExecutionPathDifferential, PredecodeMatchesReferenceExecutor) {
  const kernels::Benchmark& bench = *GetParam();
  for (unsigned jobs : {1u, 4u}) {
    expect_identical(run_configured(bench, jobs, true, true),
                     run_configured(bench, jobs, true, false));
  }
}

TEST_P(ExecutionPathDifferential, FastPathMatchesPreOptimizationBaseline) {
  const kernels::Benchmark& bench = *GetParam();
  for (unsigned jobs : {1u, 4u}) {
    expect_identical(run_configured(bench, jobs, true, true),
                     run_configured(bench, jobs, false, false));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallKernels, ExecutionPathDifferential,
    ::testing::Values(&kernels::vector_copy_benchmark(),
                      &kernels::dot_product_benchmark(),
                      &kernels::vector_sum_benchmark()),
    [](const auto& info) { return info.param->name(); });

TEST(GoldenCache, BudgetDerivationMatchesUncached) {
  // The faulty-run instruction budget must come out of the cached
  // golden_instructions exactly as it does out of a fresh golden run —
  // any drift would reclassify hangs (Crash) near the cutoff.
  InjectionEngine cached(
      kernels::dot_product_benchmark().build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::PureData);
  EngineOptions raw;
  raw.golden_cache = false;
  InjectionEngine uncached(
      kernels::dot_product_benchmark().build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::PureData, raw);

  for (std::uint64_t experiment = 0; experiment < 20; ++experiment) {
    Rng rng_a(derive_stream_seed(9, 0, experiment));
    Rng rng_b(derive_stream_seed(9, 0, experiment));
    const ExperimentResult a = cached.run_experiment(rng_a);
    const ExperimentResult b = uncached.run_experiment(rng_b);
    EXPECT_EQ(a.golden_instructions, b.golden_instructions);
    EXPECT_EQ(a.faulty_instructions, b.faulty_instructions);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.injection.site_id, b.injection.site_id);
    EXPECT_EQ(a.injection.bit, b.injection.bit);
    EXPECT_EQ(cached.faulty_instruction_budget(a.golden_instructions),
              uncached.faulty_instruction_budget(b.golden_instructions));
  }
}

TEST(GoldenCache, CloneInheritsWarmCache) {
  // warm + clone must replay the exact experiments of an engine that
  // never had a cache (the parallel executor's construction order).
  InjectionEngine warmed(
      kernels::vector_sum_benchmark().build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::PureData);
  warmed.warm_golden_cache();
  const std::unique_ptr<InjectionEngine> replica = warmed.clone();

  EngineOptions raw;
  raw.golden_cache = false;
  InjectionEngine uncached(
      kernels::vector_sum_benchmark().build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::PureData, raw);

  for (std::uint64_t experiment = 0; experiment < 10; ++experiment) {
    Rng rng_a(derive_stream_seed(11, 0, experiment));
    Rng rng_b(derive_stream_seed(11, 0, experiment));
    const ExperimentResult a = replica->run_experiment(rng_a);
    const ExperimentResult b = uncached.run_experiment(rng_b);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.dynamic_sites, b.dynamic_sites);
    EXPECT_EQ(a.golden_instructions, b.golden_instructions);
    EXPECT_EQ(a.injection.site_id, b.injection.site_id);
    EXPECT_EQ(a.injection.bits_after, b.injection.bits_after);
  }
}

TEST(CampaignDeterminism, ThroughputIsPopulated) {
  const CampaignResult result =
      run_with_threads(kernels::dot_product_benchmark(), 2);
  EXPECT_EQ(result.throughput.experiments, result.experiments);
  EXPECT_EQ(result.throughput.threads, 2u);
  EXPECT_EQ(result.throughput.thread_busy_seconds.size(), 2u);
  EXPECT_GT(result.throughput.wall_seconds, 0.0);
  EXPECT_GT(result.throughput.experiments_per_second(), 0.0);
  EXPECT_GT(result.throughput.utilization(), 0.0);
  EXPECT_LE(result.throughput.utilization(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace vulfi
