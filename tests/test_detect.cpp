// Unit tests for the detector subsystem: foreach-loop pattern matching,
// detector-block insertion (Figure 7/8), the uniform-broadcast checker
// (Figure 9), and the detector runtime.
#include <gtest/gtest.h>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "detect/uniform_detector.hpp"
#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/micro.hpp"
#include "kernels/stencil.hpp"
#include "spmd/kernel_builder.hpp"
#include "vulfi/driver.hpp"

namespace vulfi::detect {
namespace {

using interp::RtVal;
using ir::Type;
using ir::Value;

// ---------------------------------------------------------------------------
// Invariant predicate (Figure 8)
// ---------------------------------------------------------------------------

TEST(ForeachInvariants, TruthTable) {
  // Invariant 1: new_counter >= 0.
  EXPECT_FALSE(foreach_invariants_hold(-8, 64, 8));
  // Invariant 2: new_counter <= aligned_end.
  EXPECT_FALSE(foreach_invariants_hold(72, 64, 8));
  // Invariant 3: new_counter % Vl == 0.
  EXPECT_FALSE(foreach_invariants_hold(63, 64, 8));
  // All hold.
  EXPECT_TRUE(foreach_invariants_hold(0, 64, 8));
  EXPECT_TRUE(foreach_invariants_hold(64, 64, 8));
  EXPECT_TRUE(foreach_invariants_hold(8, 64, 8));
  // Degenerate vector length is itself a violation.
  EXPECT_FALSE(foreach_invariants_hold(8, 64, 0));
}

// ---------------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------------

TEST(ForeachMatcher, RecognizesLoweredLoop) {
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::avx(), 0);
  const auto matches = find_foreach_loops(*spec.entry);
  ASSERT_EQ(matches.size(), 1u);
  const ForeachLoopMatch& match = matches[0];
  EXPECT_EQ(match.header->name(), "foreach_full_body");
  EXPECT_EQ(match.counter_phi->name(), "counter");
  EXPECT_EQ(match.new_counter->name(), "new_counter");
  EXPECT_EQ(match.vl, 8u);
  EXPECT_NE(match.aligned_end, nullptr);
  EXPECT_NE(match.latch_block, nullptr);
}

TEST(ForeachMatcher, VlFollowsTarget) {
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::sse4(), 0);
  const auto matches = find_foreach_loops(*spec.entry);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].vl, 4u);
}

TEST(ForeachMatcher, FindsEveryLoopInEveryBenchmark) {
  for (const kernels::Benchmark* bench : kernels::all_benchmarks()) {
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    const auto matches = find_foreach_loops(*spec.entry);
    EXPECT_GE(matches.size(), 1u) << bench->name();
  }
}

TEST(ForeachMatcher, StructuralSignatureSurvivesBlockRenaming) {
  // The matcher keys on the code-generation invariant itself
  // (aligned_end = n - n % Vl), not only on ISPC's block names: strip
  // every name and the loop is still recognized.
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::avx(), 0);
  unsigned counter = 0;
  for (auto& block : *spec.entry) {
    block->set_name("bb" + std::to_string(counter++));
  }
  const auto matches = find_foreach_loops(*spec.entry);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].vl, 8u);
  EXPECT_EQ(insert_foreach_detectors(*spec.entry), 1u);
  EXPECT_TRUE(ir::verify(*spec.module).empty())
      << ir::verify(*spec.module).front();
}

TEST(ForeachMatcher, IgnoresPlainScalarLoops) {
  // A hand-written scalar loop has no foreach_full_body naming or shape.
  ir::Module m("plain");
  ir::Function* f = m.create_function("f", Type::void_ty(), {Type::i32()});
  ir::IRBuilder b(m);
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* loop = f->create_block("my_loop");
  ir::BasicBlock* exit = f->create_block("exit");
  b.set_insert_block(entry);
  b.cond_br(b.icmp(ir::ICmpPred::SLT, b.i32_const(0), f->arg(0)), loop, exit);
  b.set_insert_block(loop);
  ir::Instruction* iv = b.phi(Type::i32(), "iv");
  Value* next = b.add(iv, b.i32_const(1), "next");
  b.cond_br(b.icmp(ir::ICmpPred::SLT, next, f->arg(0)), loop, exit);
  iv->phi_add_incoming(b.i32_const(0), entry);
  iv->phi_add_incoming(next, loop);
  b.set_insert_block(exit);
  b.ret();
  EXPECT_TRUE(find_foreach_loops(*f).empty());
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

TEST(ForeachDetector, InsertsNamedBlockOnExitEdge) {
  RunSpec spec =
      kernels::vector_copy_benchmark().build(spmd::Target::avx(), 0);
  ASSERT_EQ(insert_foreach_detectors(*spec.module), 1u);
  EXPECT_TRUE(ir::verify(*spec.module).empty())
      << ir::verify(*spec.module).front();

  const ir::BasicBlock* check = nullptr;
  for (const auto& block : *spec.entry) {
    if (block->name() == "foreach_fullbody_check_invariants") {
      check = block.get();
    }
  }
  ASSERT_NE(check, nullptr);
  // Block contains exactly the detector call and a branch (Figure 7).
  ASSERT_EQ(check->size(), 2u);
  EXPECT_EQ(check->front().opcode(), ir::Opcode::Call);
  EXPECT_EQ(check->front().callee()->name(), kForeachDetectorFn);
  EXPECT_EQ(check->back().opcode(), ir::Opcode::Br);
}

TEST(ForeachDetector, InsertedModuleStillComputesCorrectOutput) {
  const auto& bench = kernels::vector_copy_benchmark();
  RunSpec spec = bench.build(spmd::Target::avx(), 1);
  insert_foreach_detectors(*spec.module);

  interp::RuntimeEnv env;
  interp::DetectionLog log;
  attach_detector_runtime(env, log);
  interp::Arena arena = spec.arena;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*spec.entry, spec.args).ok());
  EXPECT_FALSE(log.any());  // no faults: detector stays quiet

  const auto refs = bench.reference(spmd::Target::avx(), 1);
  const auto& region = arena.region(refs[0].region);
  const auto actual =
      arena.read_array<float>(region.base, refs[0].f32.size());
  EXPECT_EQ(actual, refs[0].f32);
}

TEST(ForeachDetector, InsertionIsIdempotentPerCall) {
  RunSpec spec = kernels::stencil_benchmark().build(spmd::Target::avx(), 0);
  const auto matches = find_foreach_loops(*spec.entry);
  const unsigned inserted = insert_foreach_detectors(*spec.module);
  EXPECT_EQ(inserted, matches.size());
  EXPECT_TRUE(ir::verify(*spec.module).empty())
      << ir::verify(*spec.module).front();
}

TEST(ForeachDetector, EveryIterationPlacementCostsMore) {
  auto dynamic_count = [](CheckPlacement placement) {
    RunSpec spec =
        kernels::vector_sum_benchmark().build(spmd::Target::avx(), 0);
    insert_foreach_detectors(*spec.module, placement);
    interp::RuntimeEnv env;
    interp::DetectionLog log;
    attach_detector_runtime(env, log);
    interp::Arena arena = spec.arena;
    interp::Interpreter interp(arena, env);
    const auto result = interp.run(*spec.entry, spec.args);
    EXPECT_TRUE(result.ok());
    return result.stats.total_instructions;
  };
  EXPECT_GT(dynamic_count(CheckPlacement::EveryIteration),
            dynamic_count(CheckPlacement::LoopExit));
}

// ---------------------------------------------------------------------------
// Detector runtime
// ---------------------------------------------------------------------------

TEST(DetectorRuntime, FlagsViolationsAndStaysQuietOtherwise) {
  interp::RuntimeEnv env;
  interp::DetectionLog log;
  attach_detector_runtime(env, log);

  auto call_foreach = [&](std::int32_t nc, std::int32_t ae, std::int32_t vl) {
    env.invoke(kForeachDetectorFn,
               {RtVal::i32(nc), RtVal::i32(ae), RtVal::i32(vl)});
  };
  call_foreach(8, 64, 8);
  EXPECT_EQ(log.events, 0u);
  call_foreach(65, 64, 8);  // invariant 2 violated
  EXPECT_EQ(log.events, 1u);
  call_foreach(-8, 64, 8);  // invariant 1 violated
  call_foreach(7, 64, 8);   // invariant 3 violated
  EXPECT_EQ(log.events, 3u);
  log.reset();
  EXPECT_FALSE(log.any());
}

TEST(DetectorRuntime, LanesEqualXorCheck) {
  interp::RuntimeEnv env;
  interp::DetectionLog log;
  attach_detector_runtime(env, log);

  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  RtVal uniform_vec(v8f);
  for (unsigned i = 0; i < 8; ++i) uniform_vec.set_lane_f32(i, 3.25f);
  env.invoke(lanes_equal_fn_name(v8f), {uniform_vec});
  EXPECT_EQ(log.events, 0u);

  RtVal corrupted = uniform_vec;
  corrupted.raw[5] ^= 1u << 13;  // a single flipped mantissa bit
  env.invoke(lanes_equal_fn_name(v8f), {corrupted});
  EXPECT_EQ(log.events, 1u);
}

// ---------------------------------------------------------------------------
// Uniform broadcast detector (paper future work, implemented)
// ---------------------------------------------------------------------------

TEST(UniformDetector, FindsBroadcastPattern) {
  RunSpec spec = kernels::blackscholes_benchmark().build(spmd::Target::avx(), 0);
  const auto matches = find_broadcasts(*spec.entry);
  // blackscholes broadcasts r and v (plus foreach-internal smears).
  EXPECT_GE(matches.size(), 2u);
  for (const BroadcastMatch& match : matches) {
    EXPECT_EQ(match.shuffle->opcode(), ir::Opcode::ShuffleVector);
    EXPECT_EQ(match.insert->opcode(), ir::Opcode::InsertElement);
    EXPECT_NE(match.scalar, nullptr);
  }
}

TEST(UniformDetector, InsertsChecksThatVerify) {
  RunSpec spec = kernels::blackscholes_benchmark().build(spmd::Target::avx(), 0);
  const unsigned inserted = insert_uniform_detectors(
      *spec.module, UniformCheckPlacement::BeforeEveryUse);
  EXPECT_GT(inserted, 0u);
  EXPECT_TRUE(ir::verify(*spec.module).empty())
      << ir::verify(*spec.module).front();

  // The checked module still runs clean and quiet.
  interp::RuntimeEnv env;
  interp::DetectionLog log;
  attach_detector_runtime(env, log);
  interp::Arena arena = spec.arena;
  interp::Interpreter interp(arena, env);
  ASSERT_TRUE(interp.run(*spec.entry, spec.args).ok());
  EXPECT_FALSE(log.any());
}

TEST(UniformDetector, AfterBroadcastPlacementInsertsOnePerBroadcast) {
  RunSpec spec = kernels::blackscholes_benchmark().build(spmd::Target::avx(), 0);
  const auto broadcasts = find_broadcasts(*spec.entry);
  RunSpec spec2 = kernels::blackscholes_benchmark().build(spmd::Target::avx(), 0);
  const unsigned inserted = insert_uniform_detectors(
      *spec2.module, UniformCheckPlacement::AfterBroadcast);
  EXPECT_EQ(inserted, broadcasts.size());
}

TEST(UniformDetector, CatchesCorruptedBroadcastLane) {
  // Inject into the broadcast result directly: build a kernel that
  // broadcasts a uniform and stores it; flip one lane via VULFI targeting
  // pure-data sites; the lanes-equal check must flag some runs.
  RunSpec spec;
  spec.module = std::make_unique<ir::Module>("ub");
  const spmd::Target target = spmd::Target::avx();
  spmd::KernelBuilder kb(*spec.module, target, "ub",
                         {Type::f32(), Type::ptr()});
  Value* bc = kb.uniform(kb.arg(0), "uval_broadcast");
  kb.b().store(bc, kb.arg(1));
  kb.finish();
  spec.entry = spec.module->find_function("ub");
  insert_uniform_detectors(*spec.module,
                           UniformCheckPlacement::BeforeEveryUse);

  const std::uint64_t out = spec.arena.alloc(32, "out");
  spec.args = {RtVal::f32(1.25f), RtVal::ptr(out)};
  spec.output_regions = {"out"};

  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  engine.setup_runtime(
      [](interp::RuntimeEnv& env, interp::DetectionLog& log) {
        attach_detector_runtime(env, log);
      });
  Rng rng(53);
  unsigned detected = 0, experiments = 80;
  for (unsigned i = 0; i < experiments; ++i) {
    if (engine.run_experiment(rng).detected) detected += 1;
  }
  // Flips into the broadcast lanes break lanes-equal; flips into the
  // pre-broadcast scalar do not (all lanes change together).
  EXPECT_GT(detected, 20u);
}

}  // namespace
}  // namespace vulfi::detect
