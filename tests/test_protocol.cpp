// Wire-protocol unit tests: frame codec (including the fuzz corpus),
// request round-trips, JSON utilities, Wilson intervals, journal sync
// policies, and the build fingerprint.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/diff.hpp"
#include "serve/protocol.hpp"
#include "support/journal.hpp"
#include "support/socket.hpp"
#include "support/stats.hpp"
#include "support/version.hpp"
#include "vulfi/campaign.hpp"

namespace vulfi::serve {
namespace {

// --- frame codec -----------------------------------------------------------

TEST(FrameCodec, RoundTripsPayloads) {
  const std::vector<std::string> payloads = {
      "", "{}", "{\"op\":\"ping\"}", std::string(4096, 'x'),
      std::string("\n\n:\xff binary \x00 ok", 17)};
  for (const std::string& payload : payloads) {
    const std::string frame = frame_encode(payload);
    const FrameDecode decoded = frame_decode(frame);
    EXPECT_EQ(decoded.status, FrameDecode::Status::Ok);
    EXPECT_EQ(decoded.payload, payload);
    EXPECT_EQ(decoded.consumed, frame.size());
  }
}

TEST(FrameCodec, DecodesFirstOfConcatenatedFrames) {
  const std::string stream = frame_encode("{\"a\":1}") + frame_encode("{}");
  const FrameDecode first = frame_decode(stream);
  ASSERT_EQ(first.status, FrameDecode::Status::Ok);
  EXPECT_EQ(first.payload, "{\"a\":1}");
  const FrameDecode second =
      frame_decode(std::string_view(stream).substr(first.consumed));
  ASSERT_EQ(second.status, FrameDecode::Status::Ok);
  EXPECT_EQ(second.payload, "{}");
}

TEST(FrameCodec, ReportsNeedMoreOnValidPrefixes) {
  const std::string frame = frame_encode("{\"op\":\"ping\"}");
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const FrameDecode decoded =
        frame_decode(std::string_view(frame).substr(0, cut));
    EXPECT_EQ(decoded.status, FrameDecode::Status::NeedMore)
        << "prefix length " << cut;
  }
}

TEST(FrameCodec, RejectsMalformedHeaders) {
  // Non-hex length, uppercase hex (the codec is strict), wrong
  // separator, missing trailing newline.
  EXPECT_EQ(frame_decode("zzzzzzzz:{}\n").status,
            FrameDecode::Status::Malformed);
  EXPECT_EQ(frame_decode("0000000A:{}\n").status,
            FrameDecode::Status::Malformed);
  EXPECT_EQ(frame_decode("00000002;{}\n").status,
            FrameDecode::Status::Malformed);
  EXPECT_EQ(frame_decode("00000002:{}X").status,
            FrameDecode::Status::Malformed);
  // A non-hex byte is rejected before the full header arrives.
  EXPECT_EQ(frame_decode("00x").status, FrameDecode::Status::Malformed);
}

TEST(FrameCodec, RejectsOversizedDeclarations) {
  EXPECT_EQ(frame_decode("00200000:").status,
            FrameDecode::Status::Oversized);
  EXPECT_EQ(frame_decode("ffffffff:").status,
            FrameDecode::Status::Oversized);
  // At the cap is fine.
  const std::string big(kMaxFrameBytes, 'y');
  EXPECT_EQ(frame_decode(frame_encode(big)).status, FrameDecode::Status::Ok);
}

TEST(FrameCodec, FuzzSeedsNeverCrashTheDecoder) {
  for (const std::string& seed : protocol_fuzz_seeds()) {
    // Whole-buffer decode plus every truncation: the decoder must
    // classify each without crashing, and Ok implies self-consistency.
    for (std::size_t cut = 0; cut <= seed.size(); ++cut) {
      const FrameDecode decoded =
          frame_decode(std::string_view(seed).substr(0, cut));
      if (decoded.status == FrameDecode::Status::Ok) {
        EXPECT_LE(decoded.consumed, cut);
        EXPECT_EQ(frame_encode(decoded.payload).size(), decoded.consumed);
      }
    }
  }
}

// --- requests --------------------------------------------------------------

TEST(Requests, RoundTripBitExact) {
  CampaignRequest request;
  request.benchmark = "blackscholes";
  request.category = "address";
  request.isa = "sse";
  request.experiments = 7;
  request.min_campaigns = 3;
  request.max_campaigns = 9;
  request.seed = 0xdeadbeefcafeULL;
  request.jobs = 5;
  request.golden_cache = false;
  request.static_prune = false;
  request.detectors = true;
  request.priority = 0;
  request.confidence = 0.99;
  request.target_margin = 0.0123456789;
  request.self_verify = 4;
  request.stall_timeout = 2.5;
  request.checkpoint = "/tmp/ckpt with spaces.jsonl";
  request.fsync = "batch";
  request.backend = "jit";

  const std::optional<CampaignRequest> parsed =
      parse_request(serialize_request(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->benchmark, request.benchmark);
  EXPECT_EQ(parsed->category, request.category);
  EXPECT_EQ(parsed->isa, request.isa);
  EXPECT_EQ(parsed->experiments, request.experiments);
  EXPECT_EQ(parsed->min_campaigns, request.min_campaigns);
  EXPECT_EQ(parsed->max_campaigns, request.max_campaigns);
  EXPECT_EQ(parsed->seed, request.seed);
  EXPECT_EQ(parsed->jobs, request.jobs);
  EXPECT_EQ(parsed->golden_cache, request.golden_cache);
  EXPECT_EQ(parsed->static_prune, request.static_prune);
  EXPECT_EQ(parsed->detectors, request.detectors);
  EXPECT_EQ(parsed->priority, request.priority);
  EXPECT_EQ(parsed->self_verify, request.self_verify);
  EXPECT_EQ(parsed->checkpoint, request.checkpoint);
  EXPECT_EQ(parsed->fsync, request.fsync);
  EXPECT_EQ(parsed->backend, request.backend);
  // Doubles travel as IEEE-754 hex: bit-exact, not approximately equal.
  EXPECT_EQ(double_hex(parsed->confidence), double_hex(request.confidence));
  EXPECT_EQ(double_hex(parsed->target_margin),
            double_hex(request.target_margin));
  EXPECT_EQ(double_hex(parsed->stall_timeout),
            double_hex(request.stall_timeout));
}

TEST(Requests, DefaultsMatchTheCampaignCli) {
  const std::optional<CampaignRequest> parsed =
      parse_request("{\"op\":\"submit\",\"benchmark\":\"dot\"}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->experiments, 100u);
  EXPECT_EQ(parsed->min_campaigns, 20u);
  EXPECT_EQ(parsed->resolved_max_campaigns(), 40u);
  EXPECT_EQ(parsed->seed, 24029u);
  EXPECT_EQ(parsed->jobs, 1u);
  EXPECT_TRUE(parsed->golden_cache);
  EXPECT_TRUE(parsed->static_prune);
  EXPECT_EQ(parsed->fsync, "always");
  EXPECT_EQ(parsed->backend, "interp");
}

TEST(Requests, RejectsInvalidSubmits) {
  std::string error;
  auto rejects = [&](const std::string& payload) {
    error.clear();
    const bool rejected = !parse_request(payload, &error).has_value();
    EXPECT_FALSE(error.empty()) << payload;
    return rejected;
  };
  EXPECT_TRUE(rejects("{\"op\":\"submit\"}"));
  EXPECT_TRUE(rejects("{\"op\":\"submit\",\"benchmark\":\"\"}"));
  EXPECT_TRUE(rejects(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"category\":\"bogus\"}"));
  EXPECT_TRUE(rejects(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"isa\":\"riscv\"}"));
  EXPECT_TRUE(rejects(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"fsync\":\"sometimes\"}"));
  EXPECT_TRUE(rejects(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"backend\":\"emulator\"}"));
  EXPECT_TRUE(rejects(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"experiments\":0}"));
  EXPECT_TRUE(rejects(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"campaigns\":0}"));
  EXPECT_TRUE(rejects("{\"op\":\"submit\",\"benchmark\":\"dot\","
                      "\"campaigns\":10,\"max_campaigns\":5}"));
  EXPECT_TRUE(rejects(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"priority\":7}"));
}

TEST(Requests, ShardFieldsRoundTripAndStayOffTheWireByDefault) {
  CampaignRequest request;
  request.benchmark = "dot";
  // shards == 0 (in-process) keeps the fields off the wire entirely, so
  // pre-sharding daemons still parse every new client's submits.
  EXPECT_EQ(serialize_request(request).find("shards"), std::string::npos);

  request.shards = 4;
  request.max_restarts = 7;
  const std::optional<CampaignRequest> parsed =
      parse_request(serialize_request(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->shards, 4u);
  EXPECT_EQ(parsed->max_restarts, 7u);
}

TEST(Requests, RejectsAbsurdShardCounts) {
  std::string error;
  EXPECT_FALSE(
      parse_request(
          "{\"op\":\"submit\",\"benchmark\":\"dot\",\"shards\":65}", &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(DiffRequests, RoundTripBitExact) {
  DiffRequest request;
  request.campaign.category = "address";
  request.campaign.isa = "sse";
  request.campaign.experiments = 7;
  request.campaign.min_campaigns = 3;
  request.campaign.max_campaigns = 9;
  request.campaign.seed = 0xfeedULL;
  request.campaign.detectors = true;
  request.campaign.confidence = 0.99;
  request.units = {"dot", "vsum", "vcopy"};
  request.store = "/tmp/store dir with spaces";
  request.against = "/tmp/baseline";

  const std::optional<DiffRequest> parsed =
      parse_diff_request(serialize_diff_request(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->units, request.units);
  EXPECT_EQ(parsed->store, request.store);
  EXPECT_EQ(parsed->against, request.against);
  EXPECT_EQ(parsed->campaign.category, request.campaign.category);
  EXPECT_EQ(parsed->campaign.isa, request.campaign.isa);
  EXPECT_EQ(parsed->campaign.experiments, request.campaign.experiments);
  EXPECT_EQ(parsed->campaign.seed, request.campaign.seed);
  EXPECT_EQ(parsed->campaign.detectors, request.campaign.detectors);
  EXPECT_EQ(double_hex(parsed->campaign.confidence),
            double_hex(request.campaign.confidence));
}

TEST(DiffRequests, RejectsMissingStoreAndBadCampaignFields) {
  std::string error;
  EXPECT_FALSE(
      parse_diff_request("{\"op\":\"diff\",\"units\":\"dot\"}", &error)
          .has_value());
  EXPECT_NE(error.find("store"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(parse_diff_request("{\"op\":\"diff\",\"store\":\"/tmp/s\","
                                  "\"category\":\"bogus\"}",
                                  &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

// --- JSON utilities --------------------------------------------------------

TEST(JsonUtil, EscapesControlAndQuoteBytes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonUtil, ExtractsNestedObjects) {
  const std::string payload =
      "{\"t\":\"done\",\"stats\":{\"a\":1,\"nested\":{\"b\":\"}{\"}},"
      "\"tail\":2}";
  const std::optional<std::string> stats =
      extract_json_object(payload, "stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(*stats, "{\"a\":1,\"nested\":{\"b\":\"}{\"}}");
  EXPECT_FALSE(extract_json_object(payload, "absent").has_value());
  EXPECT_FALSE(extract_json_object("{\"stats\":3}", "stats").has_value());
}

TEST(JsonUtil, DonePayloadRoundTripsStats) {
  const std::string stats = "{\"campaigns\":4,\"samples\":[\"3fe0\"]}";
  const std::string done =
      done_payload(7, 4, false, false, "oops \"quoted\"", stats);
  EXPECT_EQ(extract_json_object(done, "stats").value_or(""), stats);
  EXPECT_EQ(journal_u64(done, "exit").value_or(99), 4u);
  EXPECT_EQ(journal_u64(done, "id").value_or(0), 7u);
}

// --- Wilson intervals ------------------------------------------------------

TEST(Wilson, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-4);
  EXPECT_NEAR(normal_quantile(0.975), -normal_quantile(0.025), 1e-9);
}

TEST(Wilson, IntervalBracketsTheRateAndStaysInUnit) {
  for (std::uint64_t k : {0ull, 1ull, 5ull, 50ull, 99ull, 100ull}) {
    const WilsonInterval ci = wilson_interval(k, 100, 0.95);
    const double p = static_cast<double>(k) / 100.0;
    EXPECT_GE(ci.low, 0.0);
    EXPECT_LE(ci.high, 1.0);
    EXPECT_LE(ci.low, p);
    EXPECT_GE(ci.high, p);
  }
  // Unlike the normal approximation, Wilson never collapses at the
  // boundaries: 0/100 still has an upper bound above zero.
  EXPECT_GT(wilson_interval(0, 100, 0.95).high, 0.0);
  EXPECT_LT(wilson_interval(100, 100, 0.95).low, 1.0);
}

TEST(Wilson, IsSymmetricUnderComplement) {
  const WilsonInterval ci = wilson_interval(8, 10, 0.95);
  const WilsonInterval co = wilson_interval(2, 10, 0.95);
  EXPECT_NEAR(ci.low, 1.0 - co.high, 1e-12);
  EXPECT_NEAR(ci.high, 1.0 - co.low, 1e-12);
}

TEST(Wilson, ZeroTrialsIsVacuous) {
  const WilsonInterval ci = wilson_interval(0, 0, 0.95);
  EXPECT_EQ(ci.low, 0.0);
  EXPECT_EQ(ci.high, 1.0);
}

// --- journal sync policy + build fingerprint -------------------------------

TEST(JournalSyncNames, RoundTrip) {
  for (const JournalSync sync :
       {JournalSync::Always, JournalSync::Batch, JournalSync::Off}) {
    const std::optional<JournalSync> parsed =
        journal_sync_from_name(journal_sync_name(sync));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, sync);
  }
  EXPECT_FALSE(journal_sync_from_name("sometimes").has_value());
  EXPECT_FALSE(journal_sync_from_name("").has_value());
}

TEST(JournalSyncPolicy, BatchAndOffStillRecoverEveryRecord) {
  for (const JournalSync sync : {JournalSync::Batch, JournalSync::Off}) {
    const std::string path =
        testing::TempDir() + "sync_policy_" +
        std::to_string(static_cast<int>(sync)) + ".jsonl";
    std::remove(path.c_str());
    {
      JournalWriter writer;
      ASSERT_TRUE(writer.open(path, 0));
      writer.set_sync_policy(sync);
      for (int i = 0; i < 37; ++i) {
        ASSERT_TRUE(writer.append("{\"i\":" + std::to_string(i) + "}"));
      }
    }
    const JournalRecovery recovered = recover_journal(path);
    EXPECT_EQ(recovered.records.size(), 37u);
    EXPECT_FALSE(recovered.tail_dropped);
    std::remove(path.c_str());
  }
}

TEST(BuildFingerprint, IsStableAndJsonSafe) {
  const std::string fingerprint = build_fingerprint();
  EXPECT_FALSE(fingerprint.empty());
  EXPECT_EQ(fingerprint, build_fingerprint());
  EXPECT_EQ(fingerprint.find('"'), std::string::npos);
  EXPECT_EQ(fingerprint.find('\n'), std::string::npos);
  EXPECT_NE(fingerprint.find(build_type()), std::string::npos);
}

TEST(BuildFingerprint, IsPinnedIntoCampaignHeaders) {
  CampaignConfig config;
  const std::string header = campaign_header_payload(config, 3);
  EXPECT_EQ(journal_str(header, "build").value_or(""), build_fingerprint());
  EXPECT_EQ(journal_u64(header, "v").value_or(0), 2u);
  // num_threads and journal_sync must NOT pin: both may change on resume.
  CampaignConfig other = config;
  other.num_threads = 16;
  other.journal_sync = JournalSync::Off;
  EXPECT_EQ(campaign_header_payload(other, 3), header);
}

TEST(CampaignRecords, RoundTrip) {
  CampaignRecord record;
  record.campaign = 12;
  record.benign = 3;
  record.sdc = 90;
  record.crash = 7;
  record.detected_sdc = 11;
  record.detected_total = 13;
  record.prune_adjudicated = 17;
  record.prune_remapped = 19;
  record.prune_memo_hits = 23;
  const std::optional<CampaignRecord> parsed =
      parse_campaign_record(campaign_record_payload(record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->campaign, record.campaign);
  EXPECT_EQ(parsed->benign, record.benign);
  EXPECT_EQ(parsed->sdc, record.sdc);
  EXPECT_EQ(parsed->crash, record.crash);
  EXPECT_EQ(parsed->detected_sdc, record.detected_sdc);
  EXPECT_EQ(parsed->detected_total, record.detected_total);
  EXPECT_EQ(parsed->prune_adjudicated, record.prune_adjudicated);
  EXPECT_EQ(parsed->prune_remapped, record.prune_remapped);
  EXPECT_EQ(parsed->prune_memo_hits, record.prune_memo_hits);
  EXPECT_FALSE(parse_campaign_record("{\"t\":\"campaign\",\"c\":1}"));
}

// --- socket EINTR hardening ------------------------------------------------

TEST(SocketEintr, TransfersSurviveASignalStorm) {
  // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART, so every
  // blocking socket call (poll, send, recv, accept) can observe EINTR.
  // The shard supervisor restarts workers while vulfid streams frames,
  // so signal-during-transfer is a production situation, not a test
  // contrivance.
  struct sigaction action {}, previous {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  const std::string path = testing::TempDir() + "vulfi_eintr_sock_" +
                           std::to_string(::getpid());
  UnixListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(path, &error)) << error;

  // Big enough to need many recv() chunks, under the frame cap.
  const std::string payload(512 * 1024, 'x');
  constexpr int kEchoes = 6;

  std::thread echo_server([&] {
    UnixConn conn = listener.accept_one(10000);
    if (!conn.ok()) {
      ADD_FAILURE() << "accept failed";
      return;
    }
    for (int i = 0; i < kEchoes; ++i) {
      std::string why;
      const std::optional<std::string> frame = conn.recv_frame(10000, &why);
      if (!frame) {
        ADD_FAILURE() << "server recv: " << why;
        return;
      }
      if (!conn.send_frame(*frame)) {
        ADD_FAILURE() << "server send failed";
        return;
      }
    }
  });

  const pthread_t client_thread = ::pthread_self();
  const pthread_t server_thread = echo_server.native_handle();
  std::atomic<bool> stop{false};
  std::thread pounder([&] {
    while (!stop.load()) {
      ::pthread_kill(client_thread, SIGUSR1);
      ::pthread_kill(server_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  UnixConn client = UnixConn::connect_to(path, &error);
  ASSERT_TRUE(client.ok()) << error;
  for (int i = 0; i < kEchoes; ++i) {
    ASSERT_TRUE(client.send_frame(payload)) << "echo " << i;
    std::string why;
    const std::optional<std::string> echo = client.recv_frame(10000, &why);
    ASSERT_TRUE(echo.has_value()) << "echo " << i << ": " << why;
    EXPECT_EQ(*echo, payload) << "echo " << i;
  }

  stop.store(true);
  pounder.join();
  echo_server.join();
  ::sigaction(SIGUSR1, &previous, nullptr);
}

}  // namespace
}  // namespace vulfi::serve
