// Round-trip and structural-equality tests for the textual IR parser and
// the module cloner: for every benchmark kernel (and detector/instrumented
// variants), to_string(parse(to_string(M))) == to_string(M) and
// to_string(clone(M)) == to_string(M); parsed and cloned modules also
// verify and execute identically.
#include <gtest/gtest.h>

#include "detect/foreach_detector.hpp"
#include "interp/interpreter.hpp"
#include "ir/cloner.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"
#include "vulfi/instrument.hpp"

namespace vulfi {
namespace {

class RoundTrip : public ::testing::TestWithParam<const kernels::Benchmark*> {
};

std::string bench_name(
    const ::testing::TestParamInfo<const kernels::Benchmark*>& info) {
  return info.param->name();
}

TEST_P(RoundTrip, ParsePreservesPrintedForm) {
  RunSpec spec = GetParam()->build(spmd::Target::avx(), 0);
  const std::string printed = ir::to_string(*spec.module);
  ir::ParseResult parsed = ir::parse_module(printed);
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty()
                                   ? std::string("no module")
                                   : parsed.errors.front());
  EXPECT_TRUE(ir::verify(*parsed.module).empty())
      << ir::verify(*parsed.module).front();
  EXPECT_EQ(ir::to_string(*parsed.module), printed);
}

TEST_P(RoundTrip, ClonePreservesPrintedForm) {
  RunSpec spec = GetParam()->build(spmd::Target::sse4(), 0);
  const std::string printed = ir::to_string(*spec.module);
  const auto clone = ir::clone_module(*spec.module);
  EXPECT_TRUE(ir::verify(*clone).empty()) << ir::verify(*clone).front();
  EXPECT_EQ(ir::to_string(*clone), printed);
}

TEST_P(RoundTrip, ParsedModuleExecutesIdentically) {
  const kernels::Benchmark* bench = GetParam();
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  ir::ParseResult parsed = ir::parse_module(ir::to_string(*spec.module));
  ASSERT_TRUE(parsed.ok());

  auto run = [&](ir::Module& module) {
    interp::RuntimeEnv env;
    interp::Arena arena = spec.arena;
    interp::Interpreter interp(arena, env);
    const auto result =
        interp.run(*module.find_function(spec.entry->name()), spec.args);
    EXPECT_TRUE(result.ok()) << result.trap.detail;
    std::vector<std::uint8_t> bytes;
    for (const auto& name : spec.output_regions) {
      const auto region_bytes = arena.region_bytes(arena.region(name));
      bytes.insert(bytes.end(), region_bytes.begin(), region_bytes.end());
    }
    return bytes;
  };
  EXPECT_EQ(run(*spec.module), run(*parsed.module));
}

TEST_P(RoundTrip, ClonedModuleExecutesIdentically) {
  const kernels::Benchmark* bench = GetParam();
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  const auto clone = ir::clone_module(*spec.module);

  auto run = [&](ir::Module& module) {
    interp::RuntimeEnv env;
    interp::Arena arena = spec.arena;
    interp::Interpreter interp(arena, env);
    const auto result =
        interp.run(*module.find_function(spec.entry->name()), spec.args);
    EXPECT_TRUE(result.ok()) << result.trap.detail;
    std::vector<std::uint8_t> bytes;
    for (const auto& name : spec.output_regions) {
      const auto region_bytes = arena.region_bytes(arena.region(name));
      bytes.insert(bytes.end(), region_bytes.begin(), region_bytes.end());
    }
    return bytes;
  };
  EXPECT_EQ(run(*spec.module), run(*clone));
}

std::vector<const kernels::Benchmark*> roundtrip_benchmarks() {
  std::vector<const kernels::Benchmark*> all = kernels::all_benchmarks();
  for (const kernels::Benchmark* micro : kernels::micro_benchmarks()) {
    all.push_back(micro);
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, RoundTrip,
                         ::testing::ValuesIn(roundtrip_benchmarks()),
                         bench_name);

TEST(RoundTripVariants, DetectorInstrumentedModulesRoundTrip) {
  RunSpec spec =
      kernels::find_benchmark("vcopy")->build(spmd::Target::avx(), 0);
  detect::insert_foreach_detectors(*spec.module);
  Instrumentor instrumentor;
  instrumentor.run(*spec.entry);

  const std::string printed = ir::to_string(*spec.module);
  ir::ParseResult parsed = ir::parse_module(printed);
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty()
                                   ? std::string("no module")
                                   : parsed.errors.front());
  EXPECT_EQ(ir::to_string(*parsed.module), printed);

  // Declarations carried their intrinsic metadata through the round trip.
  for (const auto& fn : parsed.module->functions()) {
    const ir::Function* original =
        spec.module->find_function(fn->name());
    ASSERT_NE(original, nullptr) << fn->name();
    EXPECT_EQ(fn->kind(), original->kind()) << fn->name();
    EXPECT_EQ(fn->intrinsic_info().id, original->intrinsic_info().id);
    EXPECT_EQ(fn->intrinsic_info().mask_operand,
              original->intrinsic_info().mask_operand);
  }
}

TEST(Parser, ReportsErrorsWithLineNumbers) {
  const std::string bad =
      "; module broken\n"
      "\n"
      "define void @f() {\n"
      "entry:\n"
      "  %x = add i32 %undefined_value, 1\n"
      "  ret void\n"
      "}\n";
  const ir::ParseResult result = ir::parse_module(bad);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.errors.empty());
  EXPECT_NE(result.errors.front().find("line 5"), std::string::npos)
      << result.errors.front();
  EXPECT_NE(result.errors.front().find("undefined_value"),
            std::string::npos);
}

TEST(Parser, RejectsUnknownOpcode) {
  const std::string bad =
      "define void @f() {\n"
      "entry:\n"
      "  frobnicate i32 1\n"
      "}\n";
  const ir::ParseResult result = ir::parse_module(bad);
  EXPECT_FALSE(result.ok());
}

TEST(Parser, ParsesHandWrittenFunction) {
  const std::string text =
      "; module hand\n"
      "define i32 @sum(i32 %n) {\n"
      "entry:\n"
      "  %start = icmp slt i32 0, %n\n"
      "  br i1 %start, label %loop, label %done\n"
      "loop:\n"
      "  %i = phi i32 [ 0, %entry ], [ %i1, %loop ]\n"
      "  %acc = phi i32 [ 0, %entry ], [ %acc1, %loop ]\n"
      "  %acc1 = add i32 %acc, %i\n"
      "  %i1 = add i32 %i, 1\n"
      "  %again = icmp slt i32 %i1, %n\n"
      "  br i1 %again, label %loop, label %done\n"
      "done:\n"
      "  %result = phi i32 [ 0, %entry ], [ %acc1, %loop ]\n"
      "  ret i32 %result\n"
      "}\n";
  ir::ParseResult parsed = ir::parse_module(text);
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty()
                                   ? std::string("no module")
                                   : parsed.errors.front());
  ASSERT_TRUE(ir::verify(*parsed.module).empty())
      << ir::verify(*parsed.module).front();

  interp::Arena arena;
  interp::RuntimeEnv env;
  interp::Interpreter interp(arena, env);
  const auto result = interp.run(*parsed.module->find_function("sum"),
                                 {interp::RtVal::i32(10)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value.lane_int(0), 45);  // 0+1+...+9
}

TEST(Cloner, CloneMapCorrelatesValues) {
  RunSpec spec = kernels::find_benchmark("dot")->build(spmd::Target::avx(), 0);
  ir::CloneMap map;
  const auto clone = ir::clone_module(*spec.module, &map);
  // Every original instruction maps to a clone with matching name/opcode.
  for (const auto& fn : spec.module->functions()) {
    if (!fn->is_definition()) continue;
    for (const auto& block : *fn) {
      for (const auto& inst : *block) {
        auto it = map.values.find(inst.get());
        ASSERT_NE(it, map.values.end());
        const auto* copy = dynamic_cast<const ir::Instruction*>(it->second);
        ASSERT_NE(copy, nullptr);
        EXPECT_EQ(copy->opcode(), inst->opcode());
        EXPECT_EQ(copy->name(), inst->name());
        EXPECT_NE(copy->function(), inst->function());
      }
    }
  }
}

}  // namespace
}  // namespace vulfi
