// Unit tests for the interpreter: per-opcode semantics, trap model,
// masked intrinsics, runtime dispatch, and the memory arena.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "vulfi/driver.hpp"

namespace vulfi::interp {
namespace {

using ir::IRBuilder;
using ir::Type;
using ir::TypeKind;
using ir::Value;

/// Builds a single-block function computing `emit(builder, args...)` and
/// returns its evaluation.
class ExprHarness {
 public:
  ExprHarness() : module_("expr"), builder_(module_) {}

  ir::Module& module() { return module_; }
  IRBuilder& b() { return builder_; }

  /// Creates f(params) { ret emit(args); } and runs it.
  ExecResult run(Type ret_type, const std::vector<Type>& params,
                 const std::vector<RtVal>& args,
                 const std::function<Value*(IRBuilder&, ir::Function*)>& emit,
                 ExecLimits limits = {}) {
    static int counter = 0;
    ir::Function* f = module_.create_function(
        "f" + std::to_string(counter++), ret_type, params);
    ir::BasicBlock* bb = f->create_block("entry");
    builder_.set_insert_block(bb);
    Value* result = emit(builder_, f);
    builder_.ret(ret_type.is_void() ? nullptr : result);
    const auto errors = ir::verify(*f);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? std::string() : errors.front());
    Interpreter interp(arena_, env_, limits);
    return interp.run(*f, args);
  }

  Arena& arena() { return arena_; }
  RuntimeEnv& env() { return env_; }

 private:
  ir::Module module_;
  IRBuilder builder_;
  Arena arena_;
  RuntimeEnv env_;
};

// ---------------------------------------------------------------------------
// Integer arithmetic
// ---------------------------------------------------------------------------

TEST(InterpInt, AddWrapsAtWidth) {
  ExprHarness h;
  const auto r = h.run(Type::i8(), {Type::i8(), Type::i8()},
                       {RtVal::int_scalar(Type::i8(), 200),
                        RtVal::int_scalar(Type::i8(), 100)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.add(f->arg(0), f->arg(1));
                       });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.return_value.lane_uint(0), (200u + 100u) & 0xFF);
}

TEST(InterpInt, SignedDivisionAndRemainder) {
  ExprHarness h;
  const auto r = h.run(Type::i32(), {Type::i32(), Type::i32()},
                       {RtVal::i32(-7), RtVal::i32(2)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.sdiv(f->arg(0), f->arg(1));
                       });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.return_value.lane_int(0), -3);  // C-style truncation

  ExprHarness h2;
  const auto r2 = h2.run(Type::i32(), {Type::i32(), Type::i32()},
                         {RtVal::i32(-7), RtVal::i32(2)},
                         [](IRBuilder& b, ir::Function* f) {
                           return b.srem(f->arg(0), f->arg(1));
                         });
  EXPECT_EQ(r2.return_value.lane_int(0), -1);
}

TEST(InterpInt, DivisionByZeroTraps) {
  for (bool is_signed : {true, false}) {
    ExprHarness h;
    const auto r = h.run(Type::i32(), {Type::i32(), Type::i32()},
                         {RtVal::i32(1), RtVal::i32(0)},
                         [&](IRBuilder& b, ir::Function* f) {
                           return is_signed ? b.sdiv(f->arg(0), f->arg(1))
                                            : b.udiv(f->arg(0), f->arg(1));
                         });
    EXPECT_EQ(r.trap.kind, TrapKind::DivByZero);
  }
}

TEST(InterpInt, SdivIntMinByMinusOneWrapsDeterministically) {
  ExprHarness h;
  const auto r =
      h.run(Type::i32(), {Type::i32(), Type::i32()},
            {RtVal::i32(std::numeric_limits<std::int32_t>::min()),
             RtVal::i32(-1)},
            [](IRBuilder& b, ir::Function* f) {
              return b.sdiv(f->arg(0), f->arg(1));
            });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.return_value.lane_int(0),
            std::numeric_limits<std::int32_t>::min());
}

TEST(InterpInt, ShiftSemanticsIncludingOvershift) {
  auto shift = [](ir::Opcode op, std::int32_t v, std::int32_t amt) {
    ExprHarness h;
    const auto r = h.run(
        Type::i32(), {Type::i32(), Type::i32()},
        {RtVal::i32(v), RtVal::i32(amt)},
        [&](IRBuilder& b, ir::Function* f) -> Value* {
          switch (op) {
            case ir::Opcode::Shl: return b.shl(f->arg(0), f->arg(1));
            case ir::Opcode::LShr: return b.lshr(f->arg(0), f->arg(1));
            default: return b.ashr(f->arg(0), f->arg(1));
          }
        });
    return r.return_value.lane_int(0);
  };
  EXPECT_EQ(shift(ir::Opcode::Shl, 1, 4), 16);
  EXPECT_EQ(shift(ir::Opcode::LShr, -1, 28), 15);
  EXPECT_EQ(shift(ir::Opcode::AShr, -16, 2), -4);
  // Overshift: deterministic 0 / sign fill.
  EXPECT_EQ(shift(ir::Opcode::Shl, 123, 40), 0);
  EXPECT_EQ(shift(ir::Opcode::LShr, 123, 40), 0);
  EXPECT_EQ(shift(ir::Opcode::AShr, -123, 40), -1);
  EXPECT_EQ(shift(ir::Opcode::AShr, 123, 40), 0);
}

TEST(InterpInt, BitwiseOps) {
  ExprHarness h;
  const auto r = h.run(
      Type::i32(), {Type::i32(), Type::i32()},
      {RtVal::i32(0b1100), RtVal::i32(0b1010)},
      [](IRBuilder& b, ir::Function* f) {
        Value* and_v = b.and_(f->arg(0), f->arg(1));
        Value* or_v = b.or_(f->arg(0), f->arg(1));
        Value* xor_v = b.xor_(f->arg(0), f->arg(1));
        // (and << 8) | (or << 4) | xor
        Value* packed = b.or_(
            b.shl(and_v, b.i32_const(8)),
            b.or_(b.shl(or_v, b.i32_const(4)), xor_v));
        return packed;
      });
  EXPECT_EQ(r.return_value.lane_int(0),
            (0b1000 << 8) | (0b1110 << 4) | 0b0110);
}

// ---------------------------------------------------------------------------
// Floating point
// ---------------------------------------------------------------------------

TEST(InterpFp, ArithmeticF32) {
  ExprHarness h;
  const auto r = h.run(Type::f32(), {Type::f32(), Type::f32()},
                       {RtVal::f32(3.0f), RtVal::f32(2.0f)},
                       [](IRBuilder& b, ir::Function* f) {
                         // (a+b) * (a-b) / b
                         return b.fdiv(
                             b.fmul(b.fadd(f->arg(0), f->arg(1)),
                                    b.fsub(f->arg(0), f->arg(1))),
                             f->arg(1));
                       });
  EXPECT_FLOAT_EQ(r.return_value.lane_f32(0), (5.0f * 1.0f) / 2.0f);
}

TEST(InterpFp, DivisionByZeroGivesInfNotTrap) {
  ExprHarness h;
  const auto r = h.run(Type::f32(), {Type::f32(), Type::f32()},
                       {RtVal::f32(1.0f), RtVal::f32(0.0f)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.fdiv(f->arg(0), f->arg(1));
                       });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isinf(r.return_value.lane_f32(0)));
}

TEST(InterpFp, FnegAndFrem) {
  ExprHarness h;
  const auto r = h.run(Type::f64(), {Type::f64(), Type::f64()},
                       {RtVal::f64(7.5), RtVal::f64(2.0)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.fneg(b.frem(f->arg(0), f->arg(1)));
                       });
  EXPECT_DOUBLE_EQ(r.return_value.lane_f64(0), -1.5);
}

TEST(InterpFp, FcmpOrderedVsUnorderedWithNaN) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  auto cmp = [&](ir::FCmpPred pred, float a, float b_val) {
    ExprHarness h;
    const auto r = h.run(Type::i1(), {Type::f32(), Type::f32()},
                         {RtVal::f32(a), RtVal::f32(b_val)},
                         [&](IRBuilder& b, ir::Function* f) {
                           return b.fcmp(pred, f->arg(0), f->arg(1));
                         });
    return r.return_value.lane_bool(0);
  };
  EXPECT_TRUE(cmp(ir::FCmpPred::OLT, 1.0f, 2.0f));
  EXPECT_FALSE(cmp(ir::FCmpPred::OLT, nan, 2.0f));
  EXPECT_TRUE(cmp(ir::FCmpPred::ULT, nan, 2.0f));
  EXPECT_TRUE(cmp(ir::FCmpPred::UNE, nan, nan));
  EXPECT_FALSE(cmp(ir::FCmpPred::OEQ, nan, nan));
  EXPECT_TRUE(cmp(ir::FCmpPred::UNO, nan, 1.0f));
  EXPECT_TRUE(cmp(ir::FCmpPred::ORD, 1.0f, 1.0f));
}

// ---------------------------------------------------------------------------
// Casts
// ---------------------------------------------------------------------------

TEST(InterpCast, IntWidening) {
  ExprHarness h;
  const auto r = h.run(Type::i64(), {Type::i8()},
                       {RtVal::int_scalar(Type::i8(), -5)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.sext(f->arg(0), Type::i64());
                       });
  EXPECT_EQ(r.return_value.lane_int(0), -5);

  ExprHarness h2;
  const auto r2 = h2.run(Type::i64(), {Type::i8()},
                         {RtVal::int_scalar(Type::i8(), -5)},
                         [](IRBuilder& b, ir::Function* f) {
                           return b.zext(f->arg(0), Type::i64());
                         });
  EXPECT_EQ(r2.return_value.lane_int(0), 251);
}

TEST(InterpCast, FpIntConversionsSaturate) {
  auto fptosi = [](float v) {
    ExprHarness h;
    const auto r = h.run(Type::i32(), {Type::f32()}, {RtVal::f32(v)},
                         [](IRBuilder& b, ir::Function* f) {
                           return b.fptosi(f->arg(0), Type::i32());
                         });
    return r.return_value.lane_int(0);
  };
  EXPECT_EQ(fptosi(42.9f), 42);
  EXPECT_EQ(fptosi(-42.9f), -42);
  EXPECT_EQ(fptosi(1e30f), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(fptosi(-1e30f), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(fptosi(std::numeric_limits<float>::quiet_NaN()), 0);
}

TEST(InterpCast, RoundTripsAndBitcast) {
  ExprHarness h;
  const auto r = h.run(Type::i32(), {Type::f32()}, {RtVal::f32(1.0f)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.bitcast(f->arg(0), Type::i32());
                       });
  EXPECT_EQ(r.return_value.lane_uint(0), 0x3F800000u);

  ExprHarness h2;
  const auto r2 = h2.run(Type::f64(), {Type::i32()}, {RtVal::i32(7)},
                         [](IRBuilder& b, ir::Function* f) {
                           return b.fpext(b.sitofp(f->arg(0), Type::f32()),
                                          Type::f64());
                         });
  EXPECT_DOUBLE_EQ(r2.return_value.lane_f64(0), 7.0);
}

// ---------------------------------------------------------------------------
// Vector operations
// ---------------------------------------------------------------------------

RtVal make_vec_i32(const std::vector<std::int32_t>& lanes) {
  RtVal v(Type::vector(TypeKind::I32, static_cast<unsigned>(lanes.size())));
  for (unsigned i = 0; i < lanes.size(); ++i) v.set_lane_int(i, lanes[i]);
  return v;
}

TEST(InterpVector, LaneWiseArithmetic) {
  ExprHarness h;
  const Type v4 = Type::vector(TypeKind::I32, 4);
  const auto r = h.run(v4, {v4, v4},
                       {make_vec_i32({1, 2, 3, 4}), make_vec_i32({10, 20, 30, 40})},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.add(f->arg(0), f->arg(1));
                       });
  for (unsigned lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(r.return_value.lane_int(lane), 11 * (lane + 1));
  }
}

TEST(InterpVector, ExtractInsert) {
  ExprHarness h;
  const Type v4 = Type::vector(TypeKind::I32, 4);
  const auto r = h.run(
      Type::i32(), {v4}, {make_vec_i32({5, 6, 7, 8})},
      [](IRBuilder& b, ir::Function* f) {
        Value* with9 = b.insert_element(f->arg(0), b.i32_const(9), 2u);
        return b.add(b.extract_element(with9, 2u),
                     b.extract_element(with9, 0u));
      });
  EXPECT_EQ(r.return_value.lane_int(0), 14);
}

TEST(InterpVector, ExtractOutOfRangeTraps) {
  ExprHarness h;
  const Type v4 = Type::vector(TypeKind::I32, 4);
  const auto r = h.run(Type::i32(), {v4, Type::i32()},
                       {make_vec_i32({1, 2, 3, 4}), RtVal::i32(9)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.extract_element(f->arg(0), f->arg(1));
                       });
  EXPECT_EQ(r.trap.kind, TrapKind::BadLaneIndex);
}

TEST(InterpVector, ShuffleSelectsAcrossBothInputsAndUndef) {
  ExprHarness h;
  const Type v4 = Type::vector(TypeKind::I32, 4);
  const auto r = h.run(
      v4, {v4, v4},
      {make_vec_i32({1, 2, 3, 4}), make_vec_i32({5, 6, 7, 8})},
      [](IRBuilder& b, ir::Function* f) {
        return b.shuffle(f->arg(0), f->arg(1), {3, 4, -1, 0});
      });
  EXPECT_EQ(r.return_value.lane_int(0), 4);
  EXPECT_EQ(r.return_value.lane_int(1), 5);
  EXPECT_EQ(r.return_value.lane_int(2), 0);  // undef lane reads 0
  EXPECT_EQ(r.return_value.lane_int(3), 1);
}

TEST(InterpVector, VectorSelect) {
  ExprHarness h;
  const Type v4 = Type::vector(TypeKind::I32, 4);
  const auto r = h.run(
      v4, {v4, v4},
      {make_vec_i32({1, 200, 3, 400}), make_vec_i32({100, 2, 300, 4})},
      [](IRBuilder& b, ir::Function* f) {
        Value* less = b.icmp(ir::ICmpPred::SLT, f->arg(0), f->arg(1));
        return b.select(less, f->arg(0), f->arg(1));  // lane-wise min
      });
  EXPECT_EQ(r.return_value.lane_int(0), 1);
  EXPECT_EQ(r.return_value.lane_int(1), 2);
  EXPECT_EQ(r.return_value.lane_int(2), 3);
  EXPECT_EQ(r.return_value.lane_int(3), 4);
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

TEST(InterpMemory, ScalarAndVectorLoadStore) {
  ExprHarness h;
  const std::uint64_t base = h.arena().alloc(64, "buf");
  for (unsigned i = 0; i < 8; ++i) {
    h.arena().write<float>(base + i * 4, static_cast<float>(i) + 0.5f);
  }
  const Type v8f = Type::vector(TypeKind::F32, 8);
  const auto r = h.run(Type::f32(), {Type::ptr()}, {RtVal::ptr(base)},
                       [&](IRBuilder& b, ir::Function* f) {
                         Value* vec = b.load(v8f, f->arg(0));
                         return b.extract_element(vec, 7u);
                       });
  EXPECT_FLOAT_EQ(r.return_value.lane_f32(0), 7.5f);
}

TEST(InterpMemory, OutOfBoundsLoadTraps) {
  ExprHarness h;
  const auto r = h.run(Type::i32(), {Type::ptr()},
                       {RtVal::ptr(h.arena().capacity() + 100)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.load(Type::i32(), f->arg(0));
                       });
  EXPECT_EQ(r.trap.kind, TrapKind::OutOfBounds);
}

TEST(InterpMemory, NullPageTraps) {
  ExprHarness h;
  const auto r = h.run(Type::i32(), {Type::ptr()}, {RtVal::ptr(0)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.load(Type::i32(), f->arg(0));
                       });
  EXPECT_EQ(r.trap.kind, TrapKind::OutOfBounds);
}

TEST(InterpMemory, GepComputesByteAddresses) {
  ExprHarness h;
  const std::uint64_t base = h.arena().alloc(64, "buf");
  h.arena().write<std::int32_t>(base + 5 * 4, 777);
  const auto r = h.run(Type::i32(), {Type::ptr(), Type::i32()},
                       {RtVal::ptr(base), RtVal::i32(5)},
                       [](IRBuilder& b, ir::Function* f) {
                         Value* addr = b.gep(f->arg(0), f->arg(1), 4);
                         return b.load(Type::i32(), addr);
                       });
  EXPECT_EQ(r.return_value.lane_int(0), 777);
}

TEST(InterpMemory, GepNegativeIndexWorks) {
  ExprHarness h;
  const std::uint64_t base = h.arena().alloc(64, "buf");
  h.arena().write<std::int32_t>(base, 111);
  const auto r = h.run(Type::i32(), {Type::ptr(), Type::i32()},
                       {RtVal::ptr(base + 16), RtVal::i32(-4)},
                       [](IRBuilder& b, ir::Function* f) {
                         Value* addr = b.gep(f->arg(0), f->arg(1), 4);
                         return b.load(Type::i32(), addr);
                       });
  EXPECT_EQ(r.return_value.lane_int(0), 111);
}

TEST(InterpMemory, AllocaIsWritableAndStackRestores) {
  ExprHarness h;
  const std::uint64_t before = h.arena().allocated();
  const auto r = h.run(Type::i32(), {}, {},
                       [](IRBuilder& b, ir::Function*) {
                         Value* slot = b.alloca_bytes(16, "slot");
                         b.store(b.i32_const(31337), slot);
                         return b.load(Type::i32(), slot);
                       });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.return_value.lane_int(0), 31337);
  EXPECT_EQ(h.arena().allocated(), before);  // watermark restored
}

// ---------------------------------------------------------------------------
// Masked intrinsics
// ---------------------------------------------------------------------------

RtVal make_float_mask(const std::vector<bool>& active) {
  RtVal mask(Type::vector(TypeKind::F32,
                          static_cast<unsigned>(active.size())));
  for (unsigned i = 0; i < active.size(); ++i) {
    mask.raw[i] = active[i] ? 0xFFFFFFFFull : 0;
  }
  return mask;
}

TEST(InterpMasked, MaskLoadZeroesInactiveLanes) {
  ExprHarness h;
  const std::uint64_t base = h.arena().alloc(32, "buf");
  for (unsigned i = 0; i < 8; ++i) {
    h.arena().write<float>(base + i * 4, static_cast<float>(i + 1));
  }
  const Type v8f = Type::vector(TypeKind::F32, 8);
  const auto r = h.run(
      v8f, {Type::ptr(), v8f},
      {RtVal::ptr(base),
       make_float_mask({true, false, true, false, true, false, true, false})},
      [&](IRBuilder& b, ir::Function* f) {
        ir::Function* maskload = h.module().declare_masked_intrinsic(
            ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
        return b.call(maskload, {f->arg(0), f->arg(1)});
      });
  ASSERT_TRUE(r.ok());
  for (unsigned lane = 0; lane < 8; ++lane) {
    const float expected = lane % 2 == 0 ? static_cast<float>(lane + 1) : 0.0f;
    EXPECT_FLOAT_EQ(r.return_value.lane_f32(lane), expected) << lane;
  }
}

TEST(InterpMasked, MaskLoadSuppressesFaultsOnInactiveLanes) {
  // Array of exactly 3 floats at the end of the allocation; lanes 3..7
  // masked off. x86 vmaskmov must not fault.
  ExprHarness h;
  const std::uint64_t base =
      h.arena().alloc(12, "tail", /*align=*/4);
  // Nothing allocated beyond: lanes 3+ would be out of bounds.
  const Type v8f = Type::vector(TypeKind::F32, 8);
  const auto r = h.run(
      v8f, {Type::ptr(), v8f},
      {RtVal::ptr(base),
       make_float_mask({true, true, true, false, false, false, false, false})},
      [&](IRBuilder& b, ir::Function* f) {
        ir::Function* maskload = h.module().declare_masked_intrinsic(
            ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
        return b.call(maskload, {f->arg(0), f->arg(1)});
      });
  EXPECT_TRUE(r.ok()) << r.trap.detail;
}

TEST(InterpMasked, MaskLoadFaultsOnActiveOutOfBoundsLane) {
  ExprHarness h;
  // 8-byte region at the top of allocated memory: lanes 2..7 are out of
  // bounds, and this time they are ACTIVE, so the access must trap.
  const std::uint64_t base = h.arena().alloc(8, "tail", /*align=*/4);
  const Type v8f = Type::vector(TypeKind::F32, 8);
  const auto r = h.run(
      v8f, {Type::ptr(), v8f},
      {RtVal::ptr(base),
       make_float_mask({true, true, true, true, true, true, true, true})},
      [&](IRBuilder& b, ir::Function* f) {
        ir::Function* maskload = h.module().declare_masked_intrinsic(
            ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
        return b.call(maskload, {f->arg(0), f->arg(1)});
      });
  EXPECT_EQ(r.trap.kind, TrapKind::OutOfBounds);
}

TEST(InterpMasked, MaskStoreWritesOnlyActiveLanes) {
  ExprHarness h;
  const std::uint64_t base = h.arena().alloc(32, "buf");
  for (unsigned i = 0; i < 8; ++i) {
    h.arena().write<float>(base + i * 4, -1.0f);
  }
  const Type v8f = Type::vector(TypeKind::F32, 8);
  RtVal data(v8f);
  for (unsigned i = 0; i < 8; ++i) data.set_lane_f32(i, static_cast<float>(i));
  const auto r = h.run(
      Type::void_ty(), {Type::ptr(), v8f, v8f},
      {RtVal::ptr(base),
       make_float_mask({false, true, false, true, false, true, false, true}),
       data},
      [&](IRBuilder& b, ir::Function* f) -> Value* {
        ir::Function* maskstore = h.module().declare_masked_intrinsic(
            ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
        b.call(maskstore, {f->arg(0), f->arg(1), f->arg(2)});
        return nullptr;
      });
  ASSERT_TRUE(r.ok());
  for (unsigned i = 0; i < 8; ++i) {
    const float expected = i % 2 == 1 ? static_cast<float>(i) : -1.0f;
    EXPECT_FLOAT_EQ(h.arena().read<float>(base + i * 4), expected) << i;
  }
}

TEST(InterpMasked, MovmskPacksSignBits) {
  ExprHarness h;
  const Type v8f = Type::vector(TypeKind::F32, 8);
  const auto r = h.run(
      Type::i32(), {v8f},
      {make_float_mask({true, false, false, true, false, false, false, true})},
      [&](IRBuilder& b, ir::Function* f) {
        ir::Function* movmsk =
            h.module().declare_movmsk(ir::Isa::AVX, v8f);
        return b.call(movmsk, {f->arg(0)});
      });
  EXPECT_EQ(r.return_value.lane_int(0), 0b10001001);
}

// ---------------------------------------------------------------------------
// Math intrinsics
// ---------------------------------------------------------------------------

TEST(InterpMath, ScalarAndVectorIntrinsics) {
  ExprHarness h;
  const auto r = h.run(Type::f32(), {Type::f32()}, {RtVal::f32(2.0f)},
                       [&](IRBuilder& b, ir::Function* f) {
                         ir::Function* sqrt_fn =
                             h.module().declare_math_intrinsic(
                                 ir::IntrinsicId::Sqrt, Type::f32());
                         ir::Function* pow_fn =
                             h.module().declare_math_intrinsic(
                                 ir::IntrinsicId::Pow, Type::f32());
                         Value* root = b.call(sqrt_fn, {f->arg(0)});
                         return b.call(pow_fn, {root, f->arg(0)});
                       });
  EXPECT_NEAR(r.return_value.lane_f32(0), 2.0f, 1e-6f);
}

TEST(InterpMath, VectorFminFmax) {
  ExprHarness h;
  const Type v4f = Type::vector(TypeKind::F32, 4);
  RtVal a(v4f), b_val(v4f);
  for (unsigned i = 0; i < 4; ++i) {
    a.set_lane_f32(i, static_cast<float>(i));
    b_val.set_lane_f32(i, 2.0f - static_cast<float>(i));
  }
  const auto r = h.run(v4f, {v4f, v4f}, {a, b_val},
                       [&](IRBuilder& b, ir::Function* f) {
                         ir::Function* fmax_fn =
                             h.module().declare_math_intrinsic(
                                 ir::IntrinsicId::Fmax, v4f);
                         return b.call(fmax_fn, {f->arg(0), f->arg(1)});
                       });
  EXPECT_FLOAT_EQ(r.return_value.lane_f32(0), 2.0f);
  EXPECT_FLOAT_EQ(r.return_value.lane_f32(3), 3.0f);
}

// ---------------------------------------------------------------------------
// Control flow, calls, limits
// ---------------------------------------------------------------------------

TEST(InterpControl, LoopWithPhiComputesSum) {
  // sum(1..n) via a phi loop.
  ir::Module m("loop");
  ir::Function* f = m.create_function("sum", Type::i32(), {Type::i32()});
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* header = f->create_block("header");
  ir::BasicBlock* exit = f->create_block("exit");
  IRBuilder b(m);
  b.set_insert_block(entry);
  b.br(header);
  b.set_insert_block(header);
  ir::Instruction* i_phi = b.phi(Type::i32(), "i");
  ir::Instruction* acc_phi = b.phi(Type::i32(), "acc");
  Value* acc_next = b.add(acc_phi, i_phi, "acc_next");
  Value* i_next = b.add(i_phi, b.i32_const(1), "i_next");
  Value* done = b.icmp(ir::ICmpPred::SGT, i_next, f->arg(0), "done");
  b.cond_br(done, exit, header);
  i_phi->phi_add_incoming(b.i32_const(1), entry);
  i_phi->phi_add_incoming(i_next, header);
  acc_phi->phi_add_incoming(b.i32_const(0), entry);
  acc_phi->phi_add_incoming(acc_next, header);
  b.set_insert_block(exit);
  ir::Instruction* result = b.phi(Type::i32(), "result");
  result->phi_add_incoming(acc_next, header);
  b.ret(result);
  ASSERT_TRUE(ir::verify(m).empty()) << ir::verify(m).front();

  Arena arena;
  RuntimeEnv env;
  Interpreter interp(arena, env);
  const auto r = interp.run(*f, {RtVal::i32(10)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.return_value.lane_int(0), 55);
}

TEST(InterpControl, UserFunctionCall) {
  ir::Module m("call");
  ir::Function* sq = m.create_function("square", Type::i32(), {Type::i32()});
  {
    IRBuilder b(m);
    b.set_insert_block(sq->create_block("entry"));
    b.ret(b.mul(sq->arg(0), sq->arg(0)));
  }
  ir::Function* f = m.create_function("f", Type::i32(), {Type::i32()});
  {
    IRBuilder b(m);
    b.set_insert_block(f->create_block("entry"));
    b.ret(b.call(sq, {b.add(f->arg(0), m.const_int(Type::i32(), 1))}));
  }
  Arena arena;
  RuntimeEnv env;
  Interpreter interp(arena, env);
  const auto r = interp.run(*f, {RtVal::i32(6)});
  EXPECT_EQ(r.return_value.lane_int(0), 49);
}

TEST(InterpControl, InstructionBudgetTrapsInfiniteLoop) {
  ir::Module m("inf");
  IRBuilder b(m);
  // Entry branching into a self-looping block: diverges forever.
  ir::Function* g = m.create_function("spin", Type::void_ty(), {});
  ir::BasicBlock* g_entry = g->create_block("entry");
  ir::BasicBlock* g_loop = g->create_block("loop");
  b.set_insert_block(g_entry);
  b.br(g_loop);
  b.set_insert_block(g_loop);
  b.br(g_loop);

  Arena arena;
  RuntimeEnv env;
  ExecLimits limits;
  limits.max_instructions = 10'000;
  Interpreter interp(arena, env, limits);
  const auto r = interp.run(*g, {});
  EXPECT_EQ(r.trap.kind, TrapKind::InstructionBudget);
  EXPECT_GE(r.stats.total_instructions, 10'000u);
}

TEST(InterpControl, CallDepthTrapsRunawayRecursion) {
  ir::Module m("rec");
  ir::Function* f = m.create_function("rec", Type::i32(), {Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.ret(b.call(f, {f->arg(0)}));  // infinite recursion
  Arena arena;
  RuntimeEnv env;
  Interpreter interp(arena, env);
  const auto r = interp.run(*f, {RtVal::i32(1)});
  EXPECT_EQ(r.trap.kind, TrapKind::CallDepthExceeded);
}

TEST(InterpControl, UnreachableTraps) {
  ir::Module m("u");
  ir::Function* f = m.create_function("f", Type::void_ty(), {});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.unreachable();
  Arena arena;
  RuntimeEnv env;
  Interpreter interp(arena, env);
  EXPECT_EQ(interp.run(*f, {}).trap.kind, TrapKind::UnreachableExecuted);
}

TEST(InterpControl, RuntimeDispatchByName) {
  ir::Module m("rt");
  ir::Function* twice =
      m.declare_runtime("test.twice", Type::i32(), {Type::i32()});
  ir::Function* f = m.create_function("f", Type::i32(), {Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.ret(b.call(twice, {f->arg(0)}));

  Arena arena;
  RuntimeEnv env;
  int invocations = 0;
  env.register_handler("test.twice",
                       [&invocations](const std::vector<RtVal>& args) {
                         invocations += 1;
                         return RtVal::i32(
                             static_cast<std::int32_t>(args[0].lane_int(0) * 2));
                       });
  Interpreter interp(arena, env);
  const auto r = interp.run(*f, {RtVal::i32(21)});
  EXPECT_EQ(r.return_value.lane_int(0), 42);
  EXPECT_EQ(invocations, 1);
}

// ---------------------------------------------------------------------------
// Pre-decoded vs reference executor
// ---------------------------------------------------------------------------

/// Loop with phis, a call, vector arithmetic, and memory traffic — enough
/// surface to exercise the decode cache's constant pool, phi-move
/// pre-resolution, and branch-target indexing against the reference
/// hash-lookup executor.
ir::Function* build_mode_differential_kernel(ir::Module& module,
                                             IRBuilder& b) {
  const Type i32 = Type::i32();
  const Type vf32 = Type::vector(TypeKind::F32, 4);

  ir::Function* helper =
      module.create_function("helper", i32, {i32});
  {
    ir::BasicBlock* bb = helper->create_block("entry");
    b.set_insert_block(bb);
    b.ret(b.mul(helper->arg(0), b.i32_const(3)));
  }

  ir::Function* f = module.create_function("mode_diff", i32, {i32});
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* loop = f->create_block("loop");
  ir::BasicBlock* exit = f->create_block("exit");

  ir::Constant* vec_init =
      module.const_f32_lanes(vf32, {1.5f, 2.5f, 3.5f, 4.5f});
  b.set_insert_block(entry);
  b.br(loop);

  b.set_insert_block(loop);
  ir::Instruction* i = b.phi(i32, "i");
  ir::Instruction* acc = b.phi(i32, "acc");
  ir::Instruction* vec = b.phi(vf32, "vec");
  Value* stepped = b.fadd(vec, vec_init, "stepped");
  Value* scaled = b.call(helper, {i}, "scaled");
  Value* next_acc = b.add(acc, scaled, "next_acc");
  Value* next_i = b.add(i, b.i32_const(1), "next_i");
  Value* done = b.icmp(ir::ICmpPred::SGE, next_i, f->arg(0), "done");
  b.cond_br(done, exit, loop);
  i->phi_add_incoming(b.i32_const(0), entry);
  i->phi_add_incoming(next_i, loop);
  acc->phi_add_incoming(b.i32_const(0), entry);
  acc->phi_add_incoming(next_acc, loop);
  vec->phi_add_incoming(vec_init, entry);
  vec->phi_add_incoming(stepped, loop);

  b.set_insert_block(exit);
  ir::Instruction* acc_out = b.phi(i32, "acc_out");
  acc_out->phi_add_incoming(next_acc, loop);
  Value* lane = b.fptosi(b.extract_element(stepped, 2u), i32);
  b.ret(b.add(acc_out, lane));

  const auto errors = ir::verify(*f);
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? std::string() : errors.front());
  return f;
}

TEST(InterpModes, DecodedMatchesReferenceExecutor) {
  ir::Module module("modes");
  IRBuilder b(module);
  ir::Function* f = build_mode_differential_kernel(module, b);

  Arena arena_decoded, arena_reference;
  RuntimeEnv env;
  Interpreter decoded(arena_decoded, env, ExecLimits{},
                      ExecMode::PreDecoded);
  Interpreter reference(arena_reference, env, ExecLimits{},
                        ExecMode::Reference);

  for (std::int32_t n : {1, 2, 7, 100}) {
    const ExecResult a = decoded.run(*f, {RtVal::i32(n)});
    const ExecResult r = reference.run(*f, {RtVal::i32(n)});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(a.return_value.lanes(), r.return_value.lanes());
    for (unsigned lane = 0; lane < a.return_value.lanes(); ++lane) {
      EXPECT_EQ(a.return_value.raw[lane], r.return_value.raw[lane]);
    }
    // The executors must agree on the instruction census bit for bit —
    // the injection driver derives budgets and site counts from it.
    EXPECT_EQ(a.stats.total_instructions, r.stats.total_instructions);
    EXPECT_EQ(a.stats.vector_instructions, r.stats.vector_instructions);
    EXPECT_EQ(a.stats.calls, r.stats.calls);
  }
}

TEST(InterpModes, DecodedMatchesReferenceOnBudgetTrap) {
  ir::Module module("modes_trap");
  IRBuilder b(module);
  ir::Function* f = build_mode_differential_kernel(module, b);

  ExecLimits limits;
  limits.max_instructions = 50;  // traps mid-loop
  Arena arena_decoded, arena_reference;
  RuntimeEnv env;
  Interpreter decoded(arena_decoded, env, limits, ExecMode::PreDecoded);
  Interpreter reference(arena_reference, env, limits, ExecMode::Reference);

  const ExecResult a = decoded.run(*f, {RtVal::i32(1000)});
  const ExecResult r = reference.run(*f, {RtVal::i32(1000)});
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(a.trap.kind, TrapKind::InstructionBudget);
  EXPECT_EQ(r.trap.kind, TrapKind::InstructionBudget);
  // Both executors must stop at the same instruction: the budget check
  // sequence (phis uncounted-but-free, non-phis checked) is part of the
  // Crash/hang classification contract.
  EXPECT_EQ(a.stats.total_instructions, r.stats.total_instructions);
  EXPECT_EQ(a.stats.vector_instructions, r.stats.vector_instructions);
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(Arena, ResetFromRestoresPristineState) {
  Arena pristine(1 << 16);
  const std::uint64_t a = pristine.alloc(16, "a");
  pristine.write<std::int32_t>(a, 41);

  Arena scratch = pristine;
  scratch.write<std::int32_t>(a, 99);         // dirty a pristine byte
  const std::uint64_t s = scratch.alloc_stack(256);
  scratch.write<std::int32_t>(s, 7);          // dirty above pristine top

  scratch.reset_from(pristine);
  EXPECT_EQ(scratch.allocated(), pristine.allocated());
  EXPECT_EQ(scratch.read<std::int32_t>(a), 41);
  // The formerly dirtied stack byte must read as zero again, exactly like
  // a fresh copy of the pristine arena.
  const std::uint64_t s2 = scratch.alloc_stack(256);
  EXPECT_EQ(s2, s);
  EXPECT_EQ(scratch.read<std::int32_t>(s2), 0);
}

TEST(Arena, RegionsAndBounds) {
  Arena arena(1 << 16);
  const std::uint64_t a = arena.alloc(100, "a");
  const std::uint64_t b = arena.alloc(50, "b");
  EXPECT_GE(a, Arena::kGuardBytes);
  EXPECT_GT(b, a);
  EXPECT_TRUE(arena.valid(a, 100));
  EXPECT_FALSE(arena.valid(0, 1));                    // guard page
  EXPECT_FALSE(arena.valid(arena.allocated(), 8));    // past top
  EXPECT_EQ(arena.region("a").bytes, 100u);
  EXPECT_EQ(arena.region("b").base, b);
}

TEST(Arena, CopyGivesIndependentMemory) {
  Arena arena(1 << 16);
  const std::uint64_t a = arena.alloc(16, "a");
  arena.write<std::int32_t>(a, 1);
  Arena copy = arena;
  copy.write<std::int32_t>(a, 2);
  EXPECT_EQ(arena.read<std::int32_t>(a), 1);
  EXPECT_EQ(copy.read<std::int32_t>(a), 2);
}

TEST(Arena, RegionBytesSnapshot) {
  Arena arena(1 << 16);
  const std::uint64_t a = arena.alloc(8, "a");
  arena.write<std::int32_t>(a, 0x01020304);
  const auto bytes = arena.region_bytes(arena.region("a"));
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 0x04);  // little endian
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Arena, WatermarkDiscipline) {
  Arena arena(1 << 16);
  arena.alloc(64, "static");
  const std::uint64_t mark = arena.frame_watermark();
  arena.alloc_stack(128);
  EXPECT_GT(arena.frame_watermark(), mark);
  arena.restore_watermark(mark);
  EXPECT_EQ(arena.frame_watermark(), mark);
}

// ---------------------------------------------------------------------------
// Trap taxonomy — one focused test per TrapKind
// ---------------------------------------------------------------------------
// The paper's outcome model collapses every trap into a user-visible
// "Crash" (§IV-B): whatever ends a faulty run abnormally — a wild load,
// a poisoned divisor, a hang caught by the budget — is a crash to the
// user. Each test below provokes exactly one TrapKind through ordinary
// IR execution and then checks the classification layer maps it to
// Outcome::Crash, so adding a trap kind without wiring its
// classification shows up as a failing sweep entry.

/// Asserts `r` trapped with `kind` and classifies as a paper "Crash".
void expect_crash(const ExecResult& r, TrapKind kind) {
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.trap.kind, kind);
  // output_differs is irrelevant once trapped: both values must crash.
  EXPECT_EQ(vulfi::classify_outcome(!r.ok(), false),
            vulfi::Outcome::Crash);
  EXPECT_EQ(vulfi::classify_outcome(!r.ok(), true),
            vulfi::Outcome::Crash);
}

TEST(TrapTaxonomy, OutOfBoundsIsCrash) {
  ExprHarness h;
  const auto r = h.run(Type::i32(), {Type::ptr()},
                       {RtVal::ptr(h.arena().capacity() + 4)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.load(Type::i32(), f->arg(0));
                       });
  expect_crash(r, TrapKind::OutOfBounds);
}

TEST(TrapTaxonomy, DivByZeroIsCrash) {
  ExprHarness h;
  const auto r = h.run(Type::i32(), {Type::i32(), Type::i32()},
                       {RtVal::i32(7), RtVal::i32(0)},
                       [](IRBuilder& b, ir::Function* f) {
                         return b.udiv(f->arg(0), f->arg(1));
                       });
  expect_crash(r, TrapKind::DivByZero);
}

TEST(TrapTaxonomy, InstructionBudgetIsCrash) {
  ir::Module m("taxonomy_budget");
  IRBuilder b(m);
  ir::Function* f = m.create_function("spin", Type::void_ty(), {});
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* loop = f->create_block("loop");
  b.set_insert_block(entry);
  b.br(loop);
  b.set_insert_block(loop);
  b.br(loop);
  Arena arena;
  RuntimeEnv env;
  ExecLimits limits;
  limits.max_instructions = 1'000;
  Interpreter interp(arena, env, limits);
  expect_crash(interp.run(*f, {}), TrapKind::InstructionBudget);
}

TEST(TrapTaxonomy, CallDepthExceededIsCrash) {
  ir::Module m("taxonomy_depth");
  ir::Function* f = m.create_function("rec", Type::i32(), {Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.ret(b.call(f, {f->arg(0)}));
  Arena arena;
  RuntimeEnv env;
  Interpreter interp(arena, env);
  expect_crash(interp.run(*f, {RtVal::i32(0)}),
               TrapKind::CallDepthExceeded);
}

TEST(TrapTaxonomy, BadLaneIndexIsCrash) {
  ExprHarness h;
  const Type v4 = Type::vector(TypeKind::I32, 4);
  RtVal vec(v4);
  const auto r = h.run(Type::i32(), {v4, Type::i32()},
                       {vec, RtVal::i32(4)},  // one past the last lane
                       [](IRBuilder& b, ir::Function* f) {
                         return b.extract_element(f->arg(0), f->arg(1));
                       });
  expect_crash(r, TrapKind::BadLaneIndex);
}

TEST(TrapTaxonomy, UnreachableExecutedIsCrash) {
  ir::Module m("taxonomy_unreachable");
  ir::Function* f = m.create_function("f", Type::void_ty(), {});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  b.unreachable();
  Arena arena;
  RuntimeEnv env;
  Interpreter interp(arena, env);
  expect_crash(interp.run(*f, {}), TrapKind::UnreachableExecuted);
}

TEST(TrapTaxonomy, StackOverflowIsCrash) {
  // alloca larger than the whole arena: eval_alloca must refuse with a
  // StackOverflow trap (a value, not a host abort) before touching
  // Arena::alloc_stack, whose exhaustion path is a host assertion.
  ExprHarness h;
  const std::uint64_t oversized = h.arena().capacity() + 1024;
  const auto r = h.run(Type::void_ty(), {}, {},
                       [&](IRBuilder& b, ir::Function*) -> Value* {
                         b.alloca_bytes(oversized, "huge");
                         return nullptr;
                       });
  expect_crash(r, TrapKind::StackOverflow);
}

}  // namespace
}  // namespace vulfi::interp
