// Semantic-preservation properties across every benchmark and target:
// instrumentation with an idle runtime, detector insertion, DCE, cloning,
// and print/parse round trips must not change any kernel's output bytes.
// These are the invariants the whole methodology rests on — a golden run
// of the instrumented binary must be the program's real output.
#include <gtest/gtest.h>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "detect/uniform_detector.hpp"
#include "interp/interpreter.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"
#include "vulfi/driver.hpp"

namespace vulfi {
namespace {

using kernels::Benchmark;

std::vector<std::uint8_t> run_and_snapshot(const RunSpec& spec,
                                           interp::RuntimeEnv& env) {
  interp::Arena arena = spec.arena;
  interp::Interpreter interp(arena, env);
  const auto result = interp.run(*spec.entry, spec.args);
  EXPECT_TRUE(result.ok()) << result.trap.detail;
  std::vector<std::uint8_t> bytes;
  for (const auto& name : spec.output_regions) {
    const auto region = arena.region_bytes(arena.region(name));
    bytes.insert(bytes.end(), region.begin(), region.end());
  }
  return bytes;
}

std::vector<std::uint8_t> plain_output(const Benchmark& bench,
                                       const spmd::Target& target) {
  RunSpec spec = bench.build(target, 0);
  interp::RuntimeEnv env;
  return run_and_snapshot(spec, env);
}

struct Combo {
  const Benchmark* bench;
  bool avx;
};

class Preservation : public ::testing::TestWithParam<Combo> {};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return info.param.bench->name() + (info.param.avx ? "_avx" : "_sse");
}

TEST_P(Preservation, InstrumentationWithIdleRuntimeKeepsOutput) {
  const auto [bench, avx] = GetParam();
  const spmd::Target target = avx ? spmd::Target::avx() : spmd::Target::sse4();
  const auto expected = plain_output(*bench, target);

  RunSpec spec = bench->build(target, 0);
  const auto output_regions = spec.output_regions;
  const auto args = spec.args;
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  // run_clean executes the instrumented module with injection disabled.
  interp::Arena arena = engine.spec().arena;
  interp::RuntimeEnv env;
  FaultInjectionRuntime runtime;
  runtime.set_sites(engine.sites());
  runtime.attach(env);
  interp::Interpreter interp(arena, env);
  const auto result = interp.run(*engine.spec().entry, args);
  ASSERT_TRUE(result.ok()) << result.trap.detail;
  std::vector<std::uint8_t> actual;
  for (const auto& name : output_regions) {
    const auto region = arena.region_bytes(arena.region(name));
    actual.insert(actual.end(), region.begin(), region.end());
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(Preservation, DetectorInsertionKeepsOutput) {
  const auto [bench, avx] = GetParam();
  const spmd::Target target = avx ? spmd::Target::avx() : spmd::Target::sse4();
  const auto expected = plain_output(*bench, target);

  RunSpec spec = bench->build(target, 0);
  detect::insert_foreach_detectors(*spec.module);
  detect::insert_uniform_detectors(*spec.module);
  ASSERT_TRUE(ir::verify(*spec.module).empty())
      << ir::verify(*spec.module).front();

  interp::RuntimeEnv env;
  interp::DetectionLog log;
  detect::attach_detector_runtime(env, log);
  EXPECT_EQ(run_and_snapshot(spec, env), expected);
  // Fault-free runs never trip a detector (no false positives).
  EXPECT_FALSE(log.any());
}

std::vector<Combo> combos() {
  std::vector<Combo> out;
  for (const Benchmark* bench : kernels::all_benchmarks()) {
    out.push_back({bench, true});
    out.push_back({bench, false});
  }
  for (const Benchmark* bench : kernels::micro_benchmarks()) {
    out.push_back({bench, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, Preservation,
                         ::testing::ValuesIn(combos()), combo_name);

}  // namespace
}  // namespace vulfi
