// Unit tests for the static-analysis pass framework: AnalysisManager
// caching, dominator tree, liveness, known-bits / demanded-bits /
// lane-uniformity, and the memoized slice engine (differentially tested
// against the stand-alone forward_slice walker).
#include <gtest/gtest.h>

#include "analysis/dominators.hpp"
#include "analysis/propagation.hpp"
#include "analysis/known_bits.hpp"
#include "analysis/liveness.hpp"
#include "analysis/slicing.hpp"
#include "ir/builder.hpp"
#include "ir/cloner.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/intrinsics.hpp"
#include "ir/module.hpp"
#include "ir/verifier.hpp"
#include "kernels/benchmark.hpp"
#include "spmd/target.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi::analysis {
namespace {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

const ir::Instruction* as_inst(const Value* value) {
  return dynamic_cast<const ir::Instruction*>(value);
}

/// Diamond CFG: entry -> (left | right) -> join, plus one orphan block.
struct Diamond {
  ir::Module module{"d"};
  ir::Function* fn = nullptr;
  ir::BasicBlock* entry = nullptr;
  ir::BasicBlock* left = nullptr;
  ir::BasicBlock* right = nullptr;
  ir::BasicBlock* join = nullptr;
  ir::BasicBlock* orphan = nullptr;

  Diamond() {
    fn = module.create_function("d", Type::void_ty(), {Type::i1()});
    IRBuilder b(module);
    entry = fn->create_block("entry");
    left = fn->create_block("left");
    right = fn->create_block("right");
    join = fn->create_block("join");
    orphan = fn->create_block("orphan");
    b.set_insert_block(entry);
    b.cond_br(fn->arg(0), left, right);
    b.set_insert_block(left);
    b.br(join);
    b.set_insert_block(right);
    b.br(join);
    b.set_insert_block(join);
    b.ret();
    b.set_insert_block(orphan);
    b.ret();
  }
};

// ---------------------------------------------------------------------------
// AnalysisManager
// ---------------------------------------------------------------------------

TEST(AnalysisManager, CachesResultsPerFunctionAndAnalysis) {
  Diamond d;
  AnalysisManager am;
  EXPECT_EQ(am.cached_entries(), 0u);
  const ir::DominatorTree& first = am.get<DominatorTreeAnalysis>(*d.fn);
  const ir::DominatorTree& second = am.get<DominatorTreeAnalysis>(*d.fn);
  EXPECT_EQ(&first, &second);  // same cached object, not a recompute
  EXPECT_EQ(am.cached_entries(), 1u);
  am.get<LivenessAnalysis>(*d.fn);
  EXPECT_EQ(am.cached_entries(), 2u);
}

TEST(AnalysisManager, InvalidateDropsAFunctionsResults) {
  Diamond d;
  AnalysisManager am;
  const ir::DominatorTree& first = am.get<DominatorTreeAnalysis>(*d.fn);
  am.invalidate(*d.fn);
  EXPECT_EQ(am.cached_entries(), 0u);
  const ir::DominatorTree& second = am.get<DominatorTreeAnalysis>(*d.fn);
  // A fresh result was computed (cannot compare addresses — the allocator
  // may reuse them — but the cache was observably empty in between).
  EXPECT_EQ(&second.function(), d.fn);
  (void)first;
}

TEST(AnalysisManager, DependentAnalysesShareTheManager) {
  Diamond d;
  AnalysisManager am;
  // KnownBits pulls DominatorTreeAnalysis through the manager; both end up
  // cached from a single get().
  am.get<KnownBitsAnalysis>(*d.fn);
  EXPECT_GE(am.cached_entries(), 2u);
}

// ---------------------------------------------------------------------------
// Dominator tree
// ---------------------------------------------------------------------------

TEST(Dominators, DiamondIdomsAndQueries) {
  Diamond d;
  ir::DominatorTree dom(*d.fn);
  EXPECT_EQ(dom.idom(d.entry), nullptr);
  EXPECT_EQ(dom.idom(d.left), d.entry);
  EXPECT_EQ(dom.idom(d.right), d.entry);
  EXPECT_EQ(dom.idom(d.join), d.entry);  // neither branch dominates join
  EXPECT_TRUE(dom.dominates(d.entry, d.join));
  EXPECT_FALSE(dom.dominates(d.left, d.join));
  EXPECT_FALSE(dom.dominates(d.left, d.right));
  EXPECT_TRUE(dom.dominates(d.left, d.left));
}

TEST(Dominators, UnreachableBlocksAreReported) {
  Diamond d;
  ir::DominatorTree dom(*d.fn);
  EXPECT_FALSE(dom.reachable(d.orphan));
  ASSERT_EQ(dom.unreachable_blocks().size(), 1u);
  EXPECT_EQ(dom.unreachable_blocks()[0], d.orphan);
  EXPECT_EQ(dom.rpo().size(), 4u);
  EXPECT_EQ(dom.rpo().front(), d.entry);
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

TEST(Liveness, DeadChainDetectedLiveStoreKept) {
  ir::Module m("l");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* dead_a = b.add(f->arg(1), m.const_int(Type::i32(), 1), "dead_a");
  Value* dead_b = b.mul(dead_a, m.const_int(Type::i32(), 2), "dead_b");
  Value* live = b.add(f->arg(1), m.const_int(Type::i32(), 3), "live");
  b.store(live, f->arg(0));
  b.ret();

  AnalysisManager am;
  const LivenessResult& liveness = am.get<LivenessAnalysis>(*f);
  EXPECT_TRUE(liveness.is_dead(as_inst(dead_a)));
  EXPECT_TRUE(liveness.is_dead(as_inst(dead_b)));
  EXPECT_FALSE(liveness.is_dead(as_inst(live)));
  EXPECT_EQ(liveness.dead_values().size(), 2u);
}

TEST(Liveness, LoopCarriedValueIsLiveAcrossTheLoop) {
  // entry -> loop (i = phi(0, i+1); store i) -> loop | exit
  ir::Module m("l2");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* loop = f->create_block("loop");
  ir::BasicBlock* exit = f->create_block("exit");
  b.set_insert_block(entry);
  b.br(loop);
  b.set_insert_block(loop);
  ir::Instruction* i_phi = b.phi(Type::i32(), "i");
  b.store(i_phi, f->arg(0));
  Value* i_next = b.add(i_phi, m.const_int(Type::i32(), 1), "i_next");
  Value* latch = b.icmp(ir::ICmpPred::SLT, i_next, f->arg(1), "latch");
  b.cond_br(latch, loop, exit);
  i_phi->phi_add_incoming(m.const_int(Type::i32(), 0), entry);
  i_phi->phi_add_incoming(i_next, loop);
  b.set_insert_block(exit);
  b.ret();
  ASSERT_TRUE(ir::verify(m).empty());

  AnalysisManager am;
  const LivenessResult& liveness = am.get<LivenessAnalysis>(*f);
  // i_next feeds the backedge phi: live out of loop, and (as a phi-edge
  // use) NOT live into the loop header itself.
  EXPECT_TRUE(liveness.live_out(loop, i_next));
  EXPECT_FALSE(liveness.live_in(loop, i_next));
  // The loop bound argument is live into the loop.
  EXPECT_TRUE(liveness.live_in(loop, f->arg(1)));
  EXPECT_FALSE(liveness.is_dead(i_phi));
}

// ---------------------------------------------------------------------------
// Known bits (forward)
// ---------------------------------------------------------------------------

TEST(KnownBits, AndWithConstantMaskPinsZeros) {
  ir::Module m("kb");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* masked = b.and_(f->arg(1), m.const_int(Type::i32(), 0xFF), "masked");
  Value* tagged = b.or_(masked, m.const_int(Type::i32(), 0x100), "tagged");
  b.store(tagged, f->arg(0));
  b.ret();

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  const LaneBits mk = kb.known(masked, 0);
  EXPECT_EQ(mk.zeros, 0xFFFFFF00u);  // everything above bit 7 proven zero
  EXPECT_EQ(mk.ones, 0u);
  const LaneBits tk = kb.known(tagged, 0);
  EXPECT_EQ(tk.ones, 0x100u);             // the or'd tag bit is proven one
  EXPECT_EQ(tk.zeros, 0xFFFFFE00u);       // bits above the tag still zero
}

TEST(KnownBits, ConstantsResolveExactlyPerLane) {
  ir::Module m("kb2");
  const Type v4i = Type::vector(ir::TypeKind::I32, 4);
  ir::Function* f = m.create_function("f", v4i, {v4i});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  ir::Constant* lanes = m.const_int_lanes(v4i, {0, 1, 2, 3});
  Value* sum = b.add(f->arg(0), lanes, "sum");
  b.ret(sum);

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  for (unsigned lane = 0; lane < 4; ++lane) {
    const LaneBits k = kb.known(lanes, lane);
    EXPECT_EQ(k.ones, lane);
    EXPECT_EQ(k.zeros, 0xFFFFFFFFu & ~static_cast<std::uint64_t>(lane));
  }
}

// ---------------------------------------------------------------------------
// Demanded bits (backward) — the dead-bit source for the pruner
// ---------------------------------------------------------------------------

TEST(DemandedBits, TruncationKillsHighBits) {
  ir::Module m("db");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* sum = b.add(f->arg(1), m.const_int(Type::i32(), 7), "sum");
  Value* low = b.trunc(sum, Type::i8(), "low");
  b.store(low, f->arg(0));
  b.ret();

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  // Only the low 8 bits of `sum` can reach the store.
  EXPECT_EQ(kb.demanded(sum, 0), 0xFFu);
  EXPECT_EQ(kb.dead_bits(sum, 0), 0xFFFFFF00u);
  // The stored value itself is fully demanded within i8.
  EXPECT_EQ(kb.demanded(low, 0), 0xFFu);
  EXPECT_EQ(kb.dead_bits(low, 0), 0u);
}

TEST(DemandedBits, StoredAndReturnedValuesAreFullyDemanded) {
  ir::Module m("db2");
  ir::Function* f = m.create_function("f", Type::i32(), {Type::ptr(),
                                                         Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* sum = b.add(f->arg(1), m.const_int(Type::i32(), 1), "sum");
  b.store(sum, f->arg(0));
  b.ret(sum);
  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  EXPECT_EQ(kb.dead_bits(sum, 0), 0u);
}

TEST(DemandedBits, MaskedIntrinsicMaskDemandsOnlyLaneMsb) {
  // The execution mask of an AVX masked load is read via each lane's sign
  // bit only — every other mask bit is provably dead (the pruner's single
  // biggest win on control sites).
  ir::Module m("db3");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* maskload =
      m.declare_masked_intrinsic(ir::IntrinsicId::MaskLoad, ir::Isa::AVX, v8f);
  ir::Function* maskstore = m.declare_masked_intrinsic(
      ir::IntrinsicId::MaskStore, ir::Isa::AVX, v8f);
  ir::Function* f = m.create_function("f", Type::void_ty(), {Type::ptr(), v8f});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* loaded = b.call(maskload, {f->arg(0), f->arg(1)}, "ld");
  b.call(maskstore, {f->arg(0), f->arg(1), loaded});
  b.ret();
  ASSERT_TRUE(ir::verify(m).empty());

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  for (unsigned lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(kb.demanded(f->arg(1), lane), std::uint64_t{1} << 31);
    EXPECT_EQ(kb.dead_bits(f->arg(1), lane), 0x7FFFFFFFu);
    // The loaded data flows into the store: fully demanded.
    EXPECT_EQ(kb.dead_bits(loaded, lane), 0u);
  }
}

// ---------------------------------------------------------------------------
// Per-lane known bits through shuffle / extract / insert
// ---------------------------------------------------------------------------

TEST(KnownBitsLanes, InsertExtractRouteLaneFacts) {
  ir::Module m("lane");
  const Type v4i = Type::vector(ir::TypeKind::I32, 4);
  ir::Function* f = m.create_function("f", Type::i32(), {v4i, Type::i32()});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* masked = b.and_(f->arg(1), m.const_int(Type::i32(), 0xF), "masked");
  Value* inserted = b.insert_element(f->arg(0), masked, 2u, "ins");
  Value* from_ins = b.extract_element(inserted, 2u, "hit");
  Value* from_vec = b.extract_element(inserted, 1u, "miss");
  Value* sum = b.add(from_ins, from_vec, "sum");
  b.ret(sum);

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  // Lane 2 of the inserted vector carries the masked element's facts.
  EXPECT_EQ(kb.known(inserted, 2).zeros, 0xFFFFFFF0u);
  EXPECT_EQ(kb.known(inserted, 1).known(), 0u);  // arg lane: nothing known
  // Extraction routes the per-lane fact to the scalar.
  EXPECT_EQ(kb.known(from_ins, 0).zeros, 0xFFFFFFF0u);
  EXPECT_EQ(kb.known(from_vec, 0).known(), 0u);
}

TEST(KnownBitsLanes, ShuffleRoutesPerLaneKnowledge) {
  ir::Module m("lane2");
  const Type v4i = Type::vector(ir::TypeKind::I32, 4);
  ir::Function* f = m.create_function("f", v4i, {v4i});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  ir::Constant* lanes = m.const_int_lanes(v4i, {10, 11, 12, 13});
  // reversed = <arg3, arg2, const 11, const 10>
  Value* reversed = b.shuffle(f->arg(0), lanes, {3, 2, 5, 4}, "rev");
  b.ret(reversed);

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  EXPECT_EQ(kb.known(reversed, 0).known(), 0u);  // from the argument
  EXPECT_EQ(kb.known(reversed, 1).known(), 0u);
  EXPECT_EQ(kb.known(reversed, 2).ones, 11u);    // constant lane 1
  EXPECT_EQ(kb.known(reversed, 3).ones, 10u);    // constant lane 0
}

// ---------------------------------------------------------------------------
// Lane uniformity
// ---------------------------------------------------------------------------

TEST(LaneUniformity, BroadcastsAndElementwiseOverSplatsAreUniform) {
  ir::Module m("u");
  const Type v8f = Type::vector(ir::TypeKind::F32, 8);
  ir::Function* f = m.create_function("f", v8f, {Type::f32(), v8f});
  IRBuilder b(m);
  b.set_insert_block(f->create_block("entry"));
  Value* splat = b.broadcast(f->arg(0), 8, "splat");
  Value* scaled = b.fmul(splat, m.const_fp(v8f, 2.0), "scaled");
  Value* mixed = b.fadd(scaled, f->arg(1), "mixed");
  b.ret(mixed);

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  EXPECT_TRUE(kb.lane_uniform(f->arg(0)));   // scalar: trivially uniform
  EXPECT_TRUE(kb.lane_uniform(splat));
  EXPECT_TRUE(kb.lane_uniform(scaled));      // elementwise over splats
  EXPECT_FALSE(kb.lane_uniform(f->arg(1)));  // vector argument: unknown
  EXPECT_FALSE(kb.lane_uniform(mixed));      // tainted by the vector arg
}

TEST(LaneUniformity, LoopCarriedSplatStaysUniform) {
  // acc = phi(splat(x), acc * splat(x)) — optimistic iteration must keep
  // the loop-carried accumulator uniform.
  ir::Module m("u2");
  const Type v4f = Type::vector(ir::TypeKind::F32, 4);
  ir::Function* f = m.create_function("f", v4f, {Type::f32(), Type::i32()});
  IRBuilder b(m);
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* loop = f->create_block("loop");
  ir::BasicBlock* exit = f->create_block("exit");
  b.set_insert_block(entry);
  Value* splat = b.broadcast(f->arg(0), 4, "splat");
  b.br(loop);
  b.set_insert_block(loop);
  ir::Instruction* acc = b.phi(v4f, "acc");
  ir::Instruction* i_phi = b.phi(Type::i32(), "i");
  Value* next = b.fmul(acc, splat, "next");
  Value* i_next = b.add(i_phi, m.const_int(Type::i32(), 1), "i_next");
  Value* latch = b.icmp(ir::ICmpPred::SLT, i_next, f->arg(1), "latch");
  b.cond_br(latch, loop, exit);
  acc->phi_add_incoming(splat, entry);
  acc->phi_add_incoming(next, loop);
  i_phi->phi_add_incoming(m.const_int(Type::i32(), 0), entry);
  i_phi->phi_add_incoming(i_next, loop);
  b.set_insert_block(exit);
  b.ret(acc);
  ASSERT_TRUE(ir::verify(m).empty());

  AnalysisManager am;
  const KnownBitsResult& kb = am.get<KnownBitsAnalysis>(*f);
  EXPECT_TRUE(kb.lane_uniform(acc));
  EXPECT_TRUE(kb.lane_uniform(next));
}

// ---------------------------------------------------------------------------
// Slice engine vs the stand-alone walker (differential)
// ---------------------------------------------------------------------------

void expect_slices_match(const ir::Function& fn) {
  AnalysisManager am;
  const SliceResult& slices = am.get<SliceAnalysis>(fn);
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      if (inst->type().is_void()) continue;
      EXPECT_EQ(slices.slice(inst.get()), forward_slice(*inst))
          << "slice mismatch for %" << inst->name();
    }
  }
  for (unsigned i = 0; i < fn.num_args(); ++i) {
    EXPECT_EQ(slices.slice(fn.arg(i)), forward_slice(*fn.arg(i)));
  }
}

TEST(SliceEngine, MatchesForwardSliceOnShippedKernels) {
  for (const char* name : {"dot", "stencil", "blackscholes", "sorting"}) {
    const kernels::Benchmark* bench = kernels::find_benchmark(name);
    ASSERT_NE(bench, nullptr);
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    expect_slices_match(*spec.entry);
  }
}

TEST(SliceEngine, MatchesForwardSliceThroughLoops) {
  // Loop-carried SCC: phi <-> add cycle must reach everything either one
  // reaches.
  ir::Module m("s");
  ir::Function* f =
      m.create_function("f", Type::void_ty(), {Type::ptr(), Type::i32()});
  IRBuilder b(m);
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* loop = f->create_block("loop");
  ir::BasicBlock* exit = f->create_block("exit");
  b.set_insert_block(entry);
  b.br(loop);
  b.set_insert_block(loop);
  ir::Instruction* i_phi = b.phi(Type::i32(), "i");
  Value* addr = b.gep(f->arg(0), i_phi, 4, "addr");
  b.store(i_phi, addr);
  Value* i_next = b.add(i_phi, m.const_int(Type::i32(), 1), "i_next");
  Value* latch = b.icmp(ir::ICmpPred::SLT, i_next, f->arg(1), "latch");
  b.cond_br(latch, loop, exit);
  i_phi->phi_add_incoming(m.const_int(Type::i32(), 0), entry);
  i_phi->phi_add_incoming(i_next, loop);
  b.set_insert_block(exit);
  b.ret();
  ASSERT_TRUE(ir::verify(m).empty());
  expect_slices_match(*f);

  AnalysisManager am;
  const SliceResult& slices = am.get<SliceAnalysis>(*f);
  const SiteClass cls = slices.classify(i_phi, AddressRule::GepOnly);
  EXPECT_TRUE(cls.control);  // reaches the latch compare through the cycle
  EXPECT_TRUE(cls.address);  // feeds the gep
}


// ---------------------------------------------------------------------------
// Error-propagation summaries (the compositional layer's static half)
// ---------------------------------------------------------------------------

TEST(Propagation, DirectEdgeFlagsSeedTheObservables) {
  ir::Module m("prop");
  ir::Function* f = m.create_function(
      "f", Type::i32(), {Type::ptr(), Type::i32(), Type::i1()});
  IRBuilder b(m);
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* then = f->create_block("then");
  ir::BasicBlock* done = f->create_block("done");
  b.set_insert_block(entry);
  ir::Instruction* st = b.store(f->arg(1), f->arg(0));
  Value* quot = b.udiv(f->arg(1), f->arg(1), "quot");
  b.cond_br(f->arg(2), then, done);
  b.set_insert_block(then);
  b.br(done);
  b.set_insert_block(done);
  b.ret(quot);
  ASSERT_TRUE(ir::verify(m).empty());

  // Store: data operand reaches output, pointer operand is a trap.
  EXPECT_TRUE(direct_edge_flags(*st, 0).output);
  EXPECT_FALSE(direct_edge_flags(*st, 0).trap);
  EXPECT_TRUE(direct_edge_flags(*st, 1).trap);
  // Division: the divisor (operand 1) can fault, the dividend cannot —
  // and neither edge exposes an observable directly (that comes
  // transitively from the div's own users).
  const ir::Instruction* div = as_inst(quot);
  EXPECT_FALSE(direct_edge_flags(*div, 0).trap);
  EXPECT_FALSE(direct_edge_flags(*div, 0).output);
  EXPECT_TRUE(direct_edge_flags(*div, 1).trap);
  // Branch condition reaches control; return value reaches output.
  const ir::Instruction* branch = entry->terminator();
  EXPECT_TRUE(direct_edge_flags(*branch, 0).control);
  const ir::Instruction* ret = done->terminator();
  EXPECT_TRUE(direct_edge_flags(*ret, 0).output);
}

TEST(Propagation, ClassifiesBitsWithTrapOverControlOverOutput) {
  ir::Module m("prop2");
  ir::Function* f = m.create_function(
      "f", Type::void_ty(), {Type::ptr(), Type::i32(), Type::i32()});
  IRBuilder b(m);
  ir::BasicBlock* entry = f->create_block("entry");
  ir::BasicBlock* hot = f->create_block("hot");
  ir::BasicBlock* cold = f->create_block("cold");
  b.set_insert_block(entry);
  // `addr_idx` feeds a gep (trap) AND a compare (control): trap wins.
  Value* addr_idx = b.and_(f->arg(1), m.const_int(Type::i32(), 0xFF), "idx");
  Value* addr = b.gep(f->arg(0), addr_idx, 4, "addr");
  Value* cmp = b.icmp(ir::ICmpPred::SLT, addr_idx,
                      m.const_int(Type::i32(), 16), "cmp");
  b.cond_br(cmp, hot, cold);
  b.set_insert_block(hot);
  b.store(f->arg(2), addr);
  b.br(cold);
  b.set_insert_block(cold);
  b.ret();
  ASSERT_TRUE(ir::verify(m).empty());

  AnalysisManager am;
  const PropagationResult& prop = am.get<PropagationAnalysis>(*f);
  // Any live bit of addr_idx: trap-reaching (beats control).
  EXPECT_EQ(prop.classify_bit(addr_idx, 0, 0),
            PropagationClass::TrapReaching);
  // Bits of the and's INPUT above the 0xFF mask never survive it:
  // provably benign even though the value itself reaches a trap.
  EXPECT_EQ(prop.classify_bit(f->arg(1), 0, 12),
            PropagationClass::ProvablyMasked);
  EXPECT_EQ(prop.classify_bit(f->arg(1), 0, 3),
            PropagationClass::TrapReaching);
  // The compare result only steers control.
  EXPECT_EQ(prop.classify_bit(cmp, 0, 0), PropagationClass::ControlReaching);
  // The stored data only reaches output.
  EXPECT_EQ(prop.classify_bit(f->arg(2), 0, 5),
            PropagationClass::OutputReaching);
  // Store-operand edge semantics: every bit below the width is demanded.
  const ir::Instruction* st = &hot->front();
  EXPECT_EQ(prop.classify_edge_bit(st, 0, 0, 31),
            PropagationClass::OutputReaching);
}

// ---------------------------------------------------------------------------
// Canonical content hash — the summary-store key
// ---------------------------------------------------------------------------

TEST(ContentHash, StableUnderPrintParseRoundTripAndClone) {
  for (const kernels::Benchmark* bench : kernels::all_benchmarks()) {
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    const std::uint64_t direct = module_content_hash(*spec.module);

    ir::ParseResult parsed = ir::parse_module(ir::to_string(*spec.module));
    ASSERT_TRUE(parsed.ok()) << bench->name();
    EXPECT_EQ(module_content_hash(*parsed.module), direct) << bench->name();

    const auto clone = ir::clone_module(*spec.module);
    EXPECT_EQ(module_content_hash(*clone), direct) << bench->name();
  }
}

TEST(ContentHash, IgnoresValueAndBlockNames) {
  RunSpec spec =
      kernels::find_benchmark("dot")->build(spmd::Target::avx(), 0);
  const std::uint64_t before = module_content_hash(*spec.module);
  int counter = 0;
  for (const auto& fn : spec.module->functions()) {
    for (const auto& block : *fn) {
      block->set_name("bb" + std::to_string(counter++));
      for (const auto& inst : *block) {
        if (!inst->type().is_void()) {
          inst->set_name("v" + std::to_string(counter++));
        }
      }
    }
  }
  EXPECT_EQ(module_content_hash(*spec.module), before);
}

TEST(ContentHash, ChangesOnSemanticEdits) {
  auto build = [](std::uint64_t constant, bool use_sub) {
    auto m = std::make_unique<ir::Module>("h");
    ir::Function* f =
        m->create_function("f", Type::i32(), {Type::i32()});
    IRBuilder b(*m);
    b.set_insert_block(f->create_block("entry"));
    Value* c = m->const_int(Type::i32(), constant);
    Value* r = use_sub ? b.sub(f->arg(0), c, "r") : b.add(f->arg(0), c, "r");
    b.ret(r);
    return m;
  };
  const std::uint64_t base = module_content_hash(*build(7, false));
  EXPECT_EQ(module_content_hash(*build(7, false)), base);  // deterministic
  EXPECT_NE(module_content_hash(*build(8, false)), base);  // constant bits
  EXPECT_NE(module_content_hash(*build(7, true)), base);   // opcode
}

TEST(ContentHash, DistinguishesFunctionsAcrossKernels) {
  RunSpec a = kernels::find_benchmark("dot")->build(spmd::Target::avx(), 0);
  RunSpec b = kernels::find_benchmark("vsum")->build(spmd::Target::avx(), 0);
  EXPECT_NE(module_content_hash(*a.module), module_content_hash(*b.module));
  // And the same kernel on a different ISA is a different program.
  RunSpec c = kernels::find_benchmark("dot")->build(spmd::Target::sse4(), 0);
  EXPECT_NE(module_content_hash(*a.module), module_content_hash(*c.module));
}

}  // namespace
}  // namespace vulfi::analysis
