// The SPMD language front end, end to end: compile ISPC-like kernel
// source text, synthesize detectors from its code-generation invariants,
// and run a fault-injection study on the compiled kernel — the full
// workflow the paper envisions for "languages such as ISPC and OpenCL,
// and their associated compilers".
#include <cstdio>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "detect/uniform_detector.hpp"
#include "ir/printer.hpp"
#include "spmd/lang/compiler.hpp"
#include "vulfi/driver.hpp"

using namespace vulfi;

namespace {

constexpr const char* kSource = R"ispc(
// Polynomial evaluation with a clamp — exercises uniform broadcasts,
// loop-carried values, ternaries, and the masked foreach remainder.
kernel polyclamp(uniform float x[], uniform float out[],
                 uniform int n, uniform int degree, uniform float hi) {
  foreach (i = 0 ... n) {
    float acc = 1.0;
    float power = x[i];
    for (uniform int k = 0; k < degree; k++) {
      acc = acc + power;
      power = power * x[i];
    }
    out[i] = acc > hi ? hi : acc;
  }
}

// Energy reduction: uniform '+=' accumulates across lanes.
kernel energy(uniform float v[], uniform float out[], uniform int n) {
  uniform float total = 0.0;
  foreach (i = 0 ... n) {
    total += v[i] * v[i];
  }
  out[0] = total;
}
)ispc";

}  // namespace

int main() {
  const spmd::Target target = spmd::Target::avx();
  spmd::lang::CompileResult compiled =
      spmd::lang::compile_program(kSource, target, "frontend_demo");
  if (!compiled.ok()) {
    for (const std::string& err : compiled.errors) {
      std::fprintf(stderr, "%s\n", err.c_str());
    }
    return 1;
  }
  std::printf("compiled %zu kernels; polyclamp IR:\n\n%s\n",
              compiled.module->functions().size(),
              ir::to_string(*compiled.module->find_function("polyclamp"))
                  .c_str());

  // Detector synthesis works on compiled code exactly as on built code:
  // the compiler emits the same Figure-7 / Figure-9 patterns.
  const unsigned loops = detect::insert_foreach_detectors(*compiled.module);
  const unsigned uniforms =
      detect::insert_uniform_detectors(*compiled.module);
  std::printf("inserted %u foreach-invariant and %u lanes-equal "
              "detectors\n\n",
              loops, uniforms);

  // Fault-injection study on the compiled polyclamp kernel.
  RunSpec spec;
  spec.module = std::move(compiled.module);
  spec.entry = spec.module->find_function("polyclamp");
  const int n = 45;
  const std::uint64_t x = spec.arena.alloc(n * 4, "x");
  const std::uint64_t out = spec.arena.alloc(n * 4, "out");
  for (int i = 0; i < n; ++i) {
    spec.arena.write<float>(x + i * 4u, 0.01f * static_cast<float>(i));
    spec.arena.write<float>(out + i * 4u, 0.0f);
  }
  spec.args = {interp::RtVal::ptr(x), interp::RtVal::ptr(out),
               interp::RtVal::i32(n), interp::RtVal::i32(5),
               interp::RtVal::f32(2.5f)};
  spec.output_regions = {"out"};

  for (analysis::FaultSiteCategory category :
       {analysis::FaultSiteCategory::PureData,
        analysis::FaultSiteCategory::Control,
        analysis::FaultSiteCategory::Address}) {
    RunSpec fresh;
    {
      spmd::lang::CompileResult rebuilt =
          spmd::lang::compile_program(kSource, target, "frontend_demo");
      detect::insert_foreach_detectors(*rebuilt.module);
      fresh.module = std::move(rebuilt.module);
      fresh.entry = fresh.module->find_function("polyclamp");
      fresh.arena = spec.arena;
      fresh.args = spec.args;
      fresh.output_regions = spec.output_regions;
    }
    InjectionEngine engine(std::move(fresh), category);
    engine.setup_runtime([](interp::RuntimeEnv& env,
                            interp::DetectionLog& log) {
      detect::attach_detector_runtime(env, log);
    });
    Rng rng(7);
    unsigned sdc = 0, benign = 0, crash = 0, detected_sdc = 0;
    const unsigned experiments = 150;
    for (unsigned i = 0; i < experiments; ++i) {
      const ExperimentResult r = engine.run_experiment(rng);
      switch (r.outcome) {
        case Outcome::SDC:
          sdc += 1;
          if (r.detected) detected_sdc += 1;
          break;
        case Outcome::Benign: benign += 1; break;
        case Outcome::Crash: crash += 1; break;
      }
    }
    std::printf("%-9s : SDC %5.1f%%  Benign %5.1f%%  Crash %5.1f%%  "
                "SDC detection %5.1f%%\n",
                analysis::category_name(category),
                100.0 * sdc / experiments, 100.0 * benign / experiments,
                100.0 * crash / experiments,
                sdc ? 100.0 * detected_sdc / sdc : 0.0);
  }
  return 0;
}
