// Quickstart: build a small SPMD kernel, instrument it with VULFI, and run
// one fault-injection experiment.
//
//   $ ./quickstart
//
// Walks the library's core loop end to end:
//   1. construct an ISPC-style `foreach` kernel (a saxpy) for the AVX
//      target — the lowering produces the paper's Figure-7 CFG;
//   2. enumerate and classify its fault sites (pure-data / control /
//      address, per the forward-slice rules of Figure 2);
//   3. instrument every site with calls into the injection runtime
//      (the extract → inject → insert chains of Figure 5);
//   4. run a golden + faulty execution pair and classify the outcome.
#include <cstdio>

#include "ir/printer.hpp"
#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/rng.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

using namespace vulfi;

int main() {
  // --- 1. build a saxpy kernel: y[i] = a*x[i] + y[i] ---------------------
  const spmd::Target target = spmd::Target::avx();
  RunSpec spec;
  spec.module = std::make_unique<ir::Module>("quickstart");
  spmd::KernelBuilder kb(
      *spec.module, target, "saxpy",
      {ir::Type::ptr(), ir::Type::ptr(), ir::Type::i32(), ir::Type::f32()});
  ir::Value* x = kb.arg(0);
  ir::Value* y = kb.arg(1);
  ir::Value* n = kb.arg(2);
  ir::Value* a = kb.uniform(kb.arg(3), "a_broadcast");  // Figure-9 idiom
  kb.foreach_loop(kb.b().i32_const(0), n, [&](spmd::ForeachCtx& ctx) {
    ir::Value* xv = ctx.load(ir::Type::f32(), x);
    ir::Value* yv = ctx.load(ir::Type::f32(), y);
    ctx.store(ctx.b().fadd(ctx.b().fmul(a, xv, "ax"), yv, "axpy"), y);
  });
  kb.finish();
  spec.entry = spec.module->find_function("saxpy");

  std::printf("=== lowered kernel (before instrumentation) ===\n%s\n",
              ir::to_string(*spec.entry).c_str());

  // --- 2. host setup: inputs in the arena --------------------------------
  const unsigned count = 37;  // not a multiple of 8: exercises the mask path
  const std::uint64_t x_base =
      kernels::alloc_f32(spec.arena, "x", kernels::random_f32(count, 1));
  const std::uint64_t y_base =
      kernels::alloc_f32(spec.arena, "y", kernels::random_f32(count, 2));
  spec.args = {interp::RtVal::ptr(x_base), interp::RtVal::ptr(y_base),
               interp::RtVal::i32(count), interp::RtVal::f32(1.5f)};
  spec.output_regions = {"y"};

  // --- 3. instrument + inspect the fault-site population -----------------
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::PureData);
  unsigned pure_data = 0, control = 0, address = 0;
  for (const FaultSite& site : engine.sites()) {
    if (site.site_class.pure_data()) pure_data += 1;
    if (site.site_class.control) control += 1;
    if (site.site_class.address) address += 1;
  }
  std::printf("static fault sites: %zu  (pure-data %u, control %u, "
              "address %u; control/address overlap is expected)\n\n",
              engine.sites().size(), pure_data, control, address);

  // --- 4. golden + faulty execution pairs --------------------------------
  Rng rng(2024);
  for (int i = 0; i < 5; ++i) {
    const ExperimentResult r = engine.run_experiment(rng);
    std::printf("experiment %d: outcome=%-6s  dynamic sites=%llu  "
                "injected site=%u lane=%u bit=%u\n",
                i, outcome_name(r.outcome),
                static_cast<unsigned long long>(r.dynamic_sites),
                r.injection.site_id, r.injection.lane, r.injection.bit);
  }
  return 0;
}
