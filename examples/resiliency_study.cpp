// A complete miniature resiliency study of one benchmark through the
// study subsystem (src/study/) — the vector-width extension of the
// paper's Figure-11 methodology.
//
//   $ ./resiliency_study [benchmark-name]
//
// Enumerates a StudyPlan over vector length (1 = scalar serial
// baseline, 4, and the ISA-native 8) × both ISAs × every fault-site
// category, runs it through run_study() against an in-process engine
// cache, and prints the comparative report: per-cell SDC rates with
// Wilson 95% intervals, SDC deltas across vector widths, and the
// serial-vs-vector scaling table. The same plan can be fanned through a
// running daemon (`vulfi study --socket`) with byte-identical output.
#include <cstdio>
#include <string>

#include "study/study.hpp"

using namespace vulfi;

int main(int argc, char** argv) {
  study::StudyPlanConfig config;
  config.benchmarks = {argc > 1 ? argv[1] : "blackscholes"};
  config.widths = {1, 4, 8};
  config.isas = {"avx", "sse"};
  config.categories = {"pure-data", "control", "address"};
  config.detectors_on = false;  // detector efficacy: see `vulfi study`
  config.base.experiments = 50;
  config.base.min_campaigns = 4;
  config.base.max_campaigns = 8;
  config.base.seed = 24029;

  std::string error;
  const std::optional<study::StudyPlan> plan =
      study::StudyPlan::make(config, &error);
  if (!plan) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  study::StudyOptions options;
  options.window = 4;
  options.on_cell = [&plan](const study::StudyCellOutcome& outcome) {
    if (!outcome.done) return;
    std::fprintf(stderr, "  finished %s (%llu experiments)\n",
                 outcome.cell.key().c_str(),
                 static_cast<unsigned long long>(outcome.counts.experiments));
  };

  const study::StudyResult result = study::run_study(*plan, options);
  if (!result.error.empty()) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
  }
  std::fputs(study::study_report_markdown(*plan, result).c_str(), stdout);
  return result.exit_code;
}
