// A complete miniature resiliency study of one benchmark — the per-cell
// methodology behind the paper's Figure 11, on blackscholes.
//
//   $ ./resiliency_study [benchmark-name]
//
// Runs statistically controlled fault-injection campaigns per fault-site
// category under both the AVX and SSE4 targets, drawing a random program
// input per experiment, and reports SDC / Benign / Crash rates with the
// 95%-confidence margin of error (paper §IV-D).
#include <cstdio>
#include <memory>

#include "kernels/benchmark.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "vulfi/campaign.hpp"

using namespace vulfi;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "blackscholes";
  const kernels::Benchmark* bench = kernels::find_benchmark(name);
  if (!bench) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 2;
  }

  TextTable table({"Target", "Category", "SDC", "Benign", "Crash",
                   "MoE(95%)", "Campaigns"});
  for (const spmd::Target& target :
       {spmd::Target::avx(), spmd::Target::sse4()}) {
    for (analysis::FaultSiteCategory category :
         {analysis::FaultSiteCategory::PureData,
          analysis::FaultSiteCategory::Control,
          analysis::FaultSiteCategory::Address}) {
      // One engine per predefined input; each experiment picks one at
      // random (paper §IV-B execution strategy).
      std::vector<std::unique_ptr<InjectionEngine>> engines;
      std::vector<InjectionEngine*> pointers;
      for (unsigned input = 0; input < bench->num_inputs(); ++input) {
        engines.push_back(std::make_unique<InjectionEngine>(
            bench->build(target, input), category));
        pointers.push_back(engines.back().get());
      }

      CampaignConfig config;
      config.experiments_per_campaign = 50;
      config.min_campaigns = 4;
      config.max_campaigns = 8;
      const CampaignResult result = run_campaigns(pointers, config);
      table.add_row({target.name(), analysis::category_name(category),
                     pct(result.sdc_rate()), pct(result.benign_rate()),
                     pct(result.crash_rate()),
                     strf("±%.2f%%", result.margin_of_error * 100.0),
                     std::to_string(result.campaigns)});
    }
  }
  std::printf("Resiliency study: %s\n\n%s", bench->name().c_str(),
              table.render().c_str());
  return 0;
}
