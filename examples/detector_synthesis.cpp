// Detector synthesis from code-generation invariants (paper §III).
//
//   $ ./detector_synthesis
//
// Demonstrates both detector families on the paper's vcopy_ispc kernel:
//   * foreach loop invariants (Figure 8) — the pass pattern-matches the
//     lowered foreach shape and inserts a
//     foreach_fullbody_check_invariants block on the loop exit edge
//     (Figure 7);
//   * uniform-broadcast lanes-equal checks (Figure 9) — listed as future
//     work in the paper, implemented here.
// Then measures the detectors' dynamic-instruction overhead and their
// detection rate under control-site fault injection.
#include <cstdio>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "detect/uniform_detector.hpp"
#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "kernels/micro.hpp"
#include "vulfi/driver.hpp"

using namespace vulfi;

namespace {

std::uint64_t clean_instruction_count(const RunSpec& spec) {
  interp::RuntimeEnv env;
  interp::DetectionLog log;
  detect::attach_detector_runtime(env, log);
  interp::Arena arena = spec.arena;
  interp::Interpreter interp(arena, env);
  return interp.run(*spec.entry, spec.args).stats.total_instructions;
}

}  // namespace

int main() {
  const kernels::Benchmark& bench = kernels::vector_copy_benchmark();
  const spmd::Target target = spmd::Target::avx();

  // --- pattern-match and insert the detectors -----------------------------
  RunSpec spec = bench.build(target, 0);
  const auto loops = detect::find_foreach_loops(*spec.entry);
  std::printf("recognized %zu foreach loop(s):\n", loops.size());
  for (const auto& loop : loops) {
    std::printf("  header=%%%s counter=%%%s new_counter=%%%s Vl=%u\n",
                loop.header->name().c_str(),
                loop.counter_phi->name().c_str(),
                loop.new_counter->name().c_str(), loop.vl);
  }

  const unsigned foreach_checks =
      detect::insert_foreach_detectors(*spec.module);
  const unsigned uniform_checks =
      detect::insert_uniform_detectors(*spec.module);
  std::printf("inserted %u foreach-invariant check(s), %u lanes-equal "
              "check(s)\n\n",
              foreach_checks, uniform_checks);

  // Show the inserted detector block.
  for (const auto& block : *spec.entry) {
    if (block->name().find("check_invariants") != std::string::npos) {
      std::printf("=== inserted detector block ===\n%s\n",
                  ir::to_string(*block).c_str());
    }
  }

  // --- overhead (dynamic instructions, detector vs none) ------------------
  RunSpec plain = bench.build(target, 0);
  const double base = static_cast<double>(clean_instruction_count(plain));
  const double with_checks =
      static_cast<double>(clean_instruction_count(spec));
  std::printf("dynamic-instruction overhead: %.2f%%\n\n",
              (with_checks - base) / base * 100.0);

  // --- detection under control-site injection -----------------------------
  InjectionEngine engine(std::move(spec),
                         analysis::FaultSiteCategory::Control);
  engine.setup_runtime([](interp::RuntimeEnv& env,
                          interp::DetectionLog& log) {
    detect::attach_detector_runtime(env, log);
  });
  Rng rng(99);
  unsigned sdc = 0, detected_sdc = 0, crash = 0;
  const unsigned experiments = 300;
  for (unsigned i = 0; i < experiments; ++i) {
    const ExperimentResult r = engine.run_experiment(rng);
    if (r.outcome == Outcome::SDC) {
      sdc += 1;
      if (r.detected) detected_sdc += 1;
    } else if (r.outcome == Outcome::Crash) {
      crash += 1;
    }
  }
  std::printf("control-site injection over %u experiments:\n", experiments);
  std::printf("  SDC %.1f%%  Crash %.1f%%  SDC detection rate %.1f%%\n",
              100.0 * sdc / experiments, 100.0 * crash / experiments,
              sdc ? 100.0 * detected_sdc / sdc : 0.0);
  return 0;
}
