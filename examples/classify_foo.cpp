// Reproduces the paper's Figure-3 classification example.
//
// The paper illustrates fault-site categories with this C++ function:
//
//   void foo(int a[], int n, int x) {
//     int s = x;
//     for (int i = 0; i < n; i++) {
//       a[i] = a[i] * s;
//       s = s + i;
//     }
//   }
//
// "...the variable i is an example of both a control site and an address
//  site whereas the variable s is an example of pure-data site."
//
// This example builds foo() in the IR, runs the forward-slice classifier
// on the values corresponding to i and s, and prints the result.
#include <cstdio>

#include "analysis/classify.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

using namespace vulfi;
using ir::Type;
using ir::Value;

int main() {
  ir::Module module("figure3");
  ir::Function* foo = module.create_function(
      "foo", Type::void_ty(), {Type::ptr(), Type::i32(), Type::i32()});
  Value* a = foo->arg(0);
  Value* n = foo->arg(1);
  Value* x = foo->arg(2);
  a->set_name("a");
  n->set_name("n");
  x->set_name("x");

  ir::IRBuilder b(module);
  ir::BasicBlock* entry = foo->create_block("entry");
  ir::BasicBlock* header = foo->create_block("loop");
  ir::BasicBlock* exit = foo->create_block("exit");

  b.set_insert_block(entry);
  Value* enter = b.icmp(ir::ICmpPred::SLT, b.i32_const(0), n, "enter");
  b.cond_br(enter, header, exit);

  b.set_insert_block(header);
  ir::Instruction* i_phi = b.phi(Type::i32(), "i");
  ir::Instruction* s_phi = b.phi(Type::i32(), "s");
  Value* elem = b.gep(a, i_phi, 4, "a_i");
  Value* loaded = b.load(Type::i32(), elem, "a_val");
  Value* scaled = b.mul(loaded, s_phi, "a_scaled");
  b.store(scaled, elem);
  Value* s_next = b.add(s_phi, i_phi, "s_next");
  Value* i_next = b.add(i_phi, b.i32_const(1), "i_next");
  Value* latch = b.icmp(ir::ICmpPred::SLT, i_next, n, "latch");
  b.cond_br(latch, header, exit);
  i_phi->phi_add_incoming(b.i32_const(0), entry);
  i_phi->phi_add_incoming(i_next, header);
  s_phi->phi_add_incoming(x, entry);
  s_phi->phi_add_incoming(s_next, header);

  b.set_insert_block(exit);
  b.ret();
  ir::verify_or_die(module);

  std::printf("%s\n", ir::to_string(*foo).c_str());

  auto describe = [](const char* label, const analysis::SiteClass& cls) {
    std::printf("  %-8s -> control=%s address=%s pure-data=%s\n", label,
                cls.control ? "yes" : "no", cls.address ? "yes" : "no",
                cls.pure_data() ? "yes" : "no");
  };

  std::printf("forward-slice classification (paper Figure 3):\n");
  // The loop iterator: paper says control AND address — a bit flip can end
  // the loop early / run past n, or index out of bounds.
  describe("i", analysis::classify_value(*i_phi));
  describe("i_next", analysis::classify_value(*i_next));
  // The accumulator s: "will never affect the loop control neither will
  // it cause an invalid memory reference" — pure data.
  describe("s", analysis::classify_value(*s_phi));
  describe("s_next", analysis::classify_value(*s_next));
  return 0;
}
