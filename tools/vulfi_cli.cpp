// vulfi — command-line driver for the fault-injection framework.
//
// Subcommands:
//   vulfi list
//       Show the benchmark registry (Table I inventory).
//   vulfi show-ir --benchmark NAME [--target avx|sse] [--detectors]
//                 [--instrumented]
//       Print a kernel's IR, optionally after detector insertion and/or
//       VULFI instrumentation.
//   vulfi sites --benchmark NAME [--target avx|sse]
//       Static fault-site census by category (Figure 2/10 view).
//   vulfi inject --benchmark NAME --category pure-data|control|address
//                [--experiments N] [--seed S] [--target avx|sse]
//                [--detectors] [--report] [--backend interp|jit]
//       Run N golden/faulty experiment pairs; print outcome rates and,
//       with --report, the per-opcode outcome breakdown.
//   vulfi campaign --benchmark NAME --category C [--campaigns K]
//                  [--max-campaigns K] [--experiments N] [--seed S]
//                  [--target avx|sse] [--jobs N] [--no-golden-cache]
//                  [--no-static-prune] [--checkpoint PATH]
//                  [--self-verify K] [--stall-timeout SEC]
//                  [--stats-json PATH] [--backend interp|jit]
//       Statistically controlled campaign (paper §IV-D) with margin of
//       error, normality, and throughput reporting. --jobs N runs the
//       experiments on N worker threads (0 = hardware concurrency) with
//       bit-identical statistics for every N. --no-golden-cache re-runs
//       the golden pass per experiment (A/B escape hatch; statistics are
//       bit-identical with and without the cache). --no-static-prune
//       disables dead-bit adjudication and lane-class memoization —
//       another exact A/B escape hatch.
//
//       Long-campaign resilience: --checkpoint PATH journals every
//       completed campaign to an append-only checksummed file; rerunning
//       with the same configuration resumes from the last completed
//       campaign with bit-identical final statistics. SIGINT/SIGTERM
//       cancel cooperatively (in-flight experiment drains, completed
//       campaigns are checkpointed, second SIGINT kills immediately).
//       --self-verify K re-executes a golden run every K campaigns and
//       cross-checks the memoized golden cache. --stall-timeout SEC logs
//       per-worker progress diagnostics when no campaign completes in
//       SEC seconds. --stats-json PATH writes the scheduling-independent
//       statistics as deterministic JSON (bit-identical across --jobs
//       values and across interrupt/resume).
//
//       Exit codes: 0 stop rule satisfied (converged); 2 usage error;
//       3 internal error (checkpoint mismatch/corruption, failed
//       self-verification); 4 max campaigns reached without
//       convergence; 5 interrupted by SIGINT/SIGTERM; 6 partial result
//       (sharded run whose failed shards truncated the campaign).
//
//       Sharded execution: --shards N partitions the campaign index
//       space into N contiguous ranges and runs each in a supervised
//       worker process journaling its own checksummed shard
//       (<checkpoint>.shard<i>); crashed or stalled workers restart
//       under exponential backoff (--max-restarts per shard) and resume
//       from their shard journal, and the supervisor merges the shards
//       into a single resumable journal whose statistics are
//       byte-identical to a --shards 1 (or unsharded) run.
//   vulfi merge-shards --inputs a.shard0,a.shard1,... [--out PATH]
//                      [campaign options]
//       Deterministically merge shard journals (run automatically by the
//       supervisor; exposed for crash forensics and manual recovery).
//   vulfi lint [--benchmark NAME | --file K.ispc | --all] [--target avx|sse]
//       Run the IR lint driver (verifier + unreachable-block, dead-value,
//       and constant-condition checks) over shipped kernel modules.
//       Nonzero exit if any diagnostic fires.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include <fstream>
#include <sstream>

#include "analysis/lint.hpp"
#include "detect/detector_runtime.hpp"
#include "fuzz/fuzz.hpp"
#include "detect/foreach_detector.hpp"
#include "detect/uniform_detector.hpp"
#include "ir/printer.hpp"
#include "kernels/benchmark.hpp"
#include "kernels/study.hpp"
#include "analysis/propagation.hpp"
#include "serve/client.hpp"
#include "serve/diff.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "study/study.hpp"
#include "support/hash.hpp"
#include "vulfi/summary.hpp"
#include "support/barchart.hpp"
#include "support/cancel.hpp"
#include "support/journal.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/version.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/instrument.hpp"
#include "spmd/lang/compiler.hpp"
#include "vulfi/report.hpp"

namespace {

using namespace vulfi;

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool flag(const std::string& key) const {
    auto it = flags.find(key);
    return it != flags.end() && it->second;
  }
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: vulfi <command> [options]\n"
      "  list\n"
      "  show-ir  --benchmark NAME [--target avx|sse] [--detectors] "
      "[--instrumented]\n"
      "  sites    --benchmark NAME [--target avx|sse]\n"
      "  inject   --benchmark NAME --category pure-data|control|address\n"
      "           [--experiments N] [--seed S] [--target avx|sse] "
      "[--detectors] [--report] [--backend interp|jit]\n"
      "  campaign --benchmark NAME --category C [--campaigns K] "
      "[--max-campaigns K] [--experiments N] [--seed S] [--target avx|sse] "
      "[--jobs N] [--no-golden-cache] [--no-static-prune] "
      "[--checkpoint PATH] [--self-verify K] [--stall-timeout SEC] "
      "[--stats-json PATH] [--backend interp|jit] [--summary-store DIR] "
      "[--shards N] [--max-restarts K]\n"
      "           --summary-store DIR appends the finished campaign as a\n"
      "           per-unit summary record consumable by `vulfi diff`.\n"
      "           --backend jit executes runs through the template JIT\n"
      "           (native x86-64; statistics bit-identical to interp).\n"
      "           --shards N runs the campaign as N supervised worker\n"
      "           processes with per-shard journals, crash/stall restart\n"
      "           under exponential backoff (--max-restarts per shard),\n"
      "           and a deterministic merge — statistics byte-identical\n"
      "           to an unsharded run for every N and every crash\n"
      "           schedule. --stall-timeout doubles as the supervisor's\n"
      "           hung-worker kill threshold.\n"
      "           Exit codes: 0 converged, 3 internal error, 4 max "
      "campaigns without convergence, 5 interrupted (SIGINT/SIGTERM; "
      "completed campaigns land in --checkpoint, rerun to resume), 6 "
      "partial result (failed shards truncated the campaign).\n"
      "  merge-shards --inputs A.shard0,A.shard1,... [--out PATH]\n"
      "           [campaign options]  Merge shard journals written by a\n"
      "           sharded campaign into one resumable journal; refuses\n"
      "           mismatched configurations/builds and duplicate campaign\n"
      "           indices (exit 3), reports gaps as a partial result\n"
      "           (exit 6).\n"
      "  diff     --store DIR [--against DIR] [--units a,b,c]\n"
      "           [campaign options] [--socket PATH] [--stats-json PATH]\n"
      "           Incremental resilience-regression analysis: per-unit\n"
      "           campaign summaries keyed by canonical IR content hash\n"
      "           live in DIR/summaries.jsonl; unchanged units reuse\n"
      "           stored summaries with ZERO new experiments, changed\n"
      "           units are re-injected, and the composed whole-program\n"
      "           estimate is reported with deltas against --against (or\n"
      "           the store's own previous records). --socket routes the\n"
      "           request through a running vulfid and its warm engine\n"
      "           cache. Exit codes: 0 ok, 2 usage/unknown unit, 3 store\n"
      "           refusal (schema/build mismatch) or internal error, 5\n"
      "           interrupted.\n"
      "  lint     [--benchmark NAME | --file K.ispc | --all] "
      "[--target avx|sse]\n"
      "           Lint kernel IR (verify + dataflow checks); nonzero exit "
      "on any diagnostic.\n"
      "  version  Print compiler, build type, feature toggles, the fuzzer\n"
      "           grammar version, and the build fingerprint pinned into\n"
      "           checkpoint journals.\n"
      "  fuzz     [--seeds N] [--seed S] [--oracle diff|prune|census|jit]\n"
      "           [--jobs N] [--repro-dir DIR] [--no-reduce]\n"
      "           Differential fuzzing over generated SPMD kernels; every\n"
      "           failure is ddmin-reduced and dumped as a .vulfi repro.\n"
      "           Exit codes: 0 clean, 1 discrepancies found, 2 usage.\n"
      "  fuzz     --replay FILE.vulfi\n"
      "           Re-run one repro/corpus file standalone. Exit codes:\n"
      "           0 oracle passes, 1 oracle fails, 3 unreadable or fuzzer\n"
      "           grammar mismatch (the journal-fingerprint convention).\n"
      "  serve    --socket PATH [--serve-jobs N] [--queue N]\n"
      "           [--max-request-jobs N] [--cache-entries N] [--quiet]\n"
      "           Run the persistent campaign daemon (vulfid): framed\n"
      "           JSONL over a Unix socket, warm-engine cache, fair\n"
      "           scheduling with backpressure. SIGINT/SIGTERM drains.\n"
      "  submit   --socket PATH --benchmark NAME [campaign options]\n"
      "           [--priority 0..3] [--journal PATH] [--retry N]\n"
      "           [--retry-base-ms M] [--shards N] [--max-restarts K]\n"
      "           Submit one campaign to a daemon and stream its\n"
      "           progress; exit codes match `vulfi campaign`. --journal\n"
      "           appends the streamed records to a resumable checkpoint\n"
      "           journal. --retry N retries a busy daemon up to N\n"
      "           attempts with exponential backoff + jitter (base\n"
      "           --retry-base-ms, default 200). --shards N asks the\n"
      "           daemon to run the campaign as N supervised worker\n"
      "           processes.\n"
      "  ping     --socket PATH   Probe a daemon (protocol + build).\n"
      "  shutdown --socket PATH   Drain a daemon and stop it.\n"
      "  compile  --file K.ispc [--target avx|sse] [--detectors] "
      "[--instrumented]\n"
      "           Compile an ISPC-like kernel file and print its IR.\n"
      "  study    [--benchmarks a,b,c] [--widths 1,4,8,16] [--isas avx,sse]\n"
      "           [--categories pure-data,control,address] "
      "[--det on|off|both]\n"
      "           [--window N] [--journal PATH] [--summary-store DIR]\n"
      "           [--socket PATH] [--retry N] [--retry-base-ms M]\n"
      "           [--report-json PATH] [--report-md PATH] "
      "[--report-csv PATH]\n"
      "           [--stop-after-cells N] [--plan] [campaign options]\n"
      "           Vector-width resilience study: the cross-product of\n"
      "           benchmark x vector length (1 = scalar baseline) x ISA x\n"
      "           category x detector mode, fanned --window cells at a\n"
      "           time through a vulfid (--socket) or a local in-process\n"
      "           engine cache. --journal makes the sweep resumable\n"
      "           (interrupt at any cell boundary, rerun, report bytes\n"
      "           identical to an uninterrupted run); --summary-store\n"
      "           reuses stored per-unit summaries for unchanged cells\n"
      "           with ZERO new experiments. --plan prints the enumerated\n"
      "           plan JSON and exits. The markdown report (per-cell\n"
      "           Wilson CIs, SDC-across-widths deltas, detector\n"
      "           efficacy, serial-vs-vector scaling) lands on stdout;\n"
      "           --report-json/--report-md/--report-csv write the\n"
      "           deterministic renderings. Exit codes: 0 all cells\n"
      "           converged, 2 usage, 3 internal error, 4 complete but\n"
      "           unconverged cells, 5 interrupted (rerun with the same\n"
      "           --journal to resume).\n"
      "  --jobs N runs campaigns on N worker threads (0 = hardware\n"
      "  concurrency); campaign statistics are bit-identical for every "
      "N.\n"
      "  --no-golden-cache re-runs the golden pass for every experiment\n"
      "  (the pre-memoization behaviour); statistics are bit-identical\n"
      "  with and without the cache.\n");
  std::exit(code);
}

CliArgs parse(int argc, char** argv) {
  if (argc < 2) usage(2);
  CliArgs args;
  args.command = argv[1];
  const char* value_options[] = {"--benchmark", "--category", "--target",
                                 "--experiments", "--campaigns",
                                 "--max-campaigns", "--seed", "--input",
                                 "--file", "--jobs", "--checkpoint",
                                 "--self-verify", "--stall-timeout",
                                 "--stats-json", "--fsync", "--margin",
                                 "--confidence", "--socket", "--priority",
                                 "--journal", "--serve-jobs", "--queue",
                                 "--max-request-jobs", "--cache-entries",
                                 "--seeds", "--oracle", "--repro-dir",
                                 "--replay", "--backend", "--store",
                                 "--against", "--units", "--summary-store",
                                 "--shards", "--max-restarts",
                                 "--retry", "--retry-base-ms",
                                 "--inputs", "--out",
                                 // study axes and outputs
                                 "--benchmarks", "--widths", "--isas",
                                 "--categories", "--det", "--window",
                                 "--stop-after-cells", "--report-json",
                                 "--report-md", "--report-csv",
                                 // hidden `shard-worker` plumbing
                                 "--request-json", "--shard",
                                 "--shard-journal", "--status-fd",
                                 "--heartbeat-ms"};
  const char* flag_options[] = {"--detectors", "--instrumented", "--report",
                                "--no-golden-cache", "--no-static-prune",
                                "--all", "--quiet", "--no-reduce", "--plan"};
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    for (const char* opt : value_options) {
      if (arg == opt) {
        if (i + 1 >= argc) usage(2);
        args.options[arg.substr(2)] = argv[++i];
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* opt : flag_options) {
      if (arg == opt) {
        args.flags[arg.substr(2)] = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(2);
    }
  }
  return args;
}

spmd::Target target_of(const CliArgs& args) {
  const std::string name = args.get("target", "avx");
  if (name == "avx") return spmd::Target::avx();
  if (name == "sse" || name == "sse4") return spmd::Target::sse4();
  std::fprintf(stderr, "unknown target '%s' (use avx or sse)\n",
               name.c_str());
  std::exit(2);
}

interp::ExecMode backend_of(const CliArgs& args) {
  const std::string name = args.get("backend", "interp");
  if (name == "interp" || name == "interpreter") {
    return interp::ExecMode::PreDecoded;
  }
  if (name == "jit") return interp::ExecMode::Jit;
  std::fprintf(stderr, "unknown backend '%s' (use interp or jit)\n",
               name.c_str());
  std::exit(2);
}

const kernels::Benchmark& benchmark_of(const CliArgs& args) {
  const std::string name = args.get("benchmark");
  if (name.empty()) {
    std::fprintf(stderr, "--benchmark is required\n");
    usage(2);
  }
  const kernels::Benchmark* bench = kernels::find_benchmark(name);
  if (!bench) {
    std::fprintf(stderr, "unknown benchmark '%s' (try: vulfi list)\n",
                 name.c_str());
    std::exit(2);
  }
  return *bench;
}

analysis::FaultSiteCategory category_of(const CliArgs& args) {
  const std::string name = args.get("category");
  if (name == "pure-data" || name == "puredata") {
    return analysis::FaultSiteCategory::PureData;
  }
  if (name == "control" || name == "ctrl") {
    return analysis::FaultSiteCategory::Control;
  }
  if (name == "address" || name == "addr") {
    return analysis::FaultSiteCategory::Address;
  }
  std::fprintf(stderr,
               "--category must be pure-data, control, or address\n");
  std::exit(2);
}

int cmd_list() {
  TextTable table({"Suite", "Benchmark", "Language", "Inputs", "Test Input"});
  auto add = [&](const kernels::Benchmark* bench) {
    table.add_row({bench->suite(), bench->name(), bench->language(),
                   std::to_string(bench->num_inputs()),
                   bench->input_desc()});
  };
  for (const auto* bench : kernels::all_benchmarks()) add(bench);
  for (const auto* bench : kernels::micro_benchmarks()) add(bench);
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_show_ir(const CliArgs& args) {
  const auto& bench = benchmark_of(args);
  RunSpec spec = bench.build(target_of(args),
                             std::stoul(args.get("input", "0")));
  if (args.flag("detectors")) {
    detect::insert_foreach_detectors(*spec.module);
    detect::insert_uniform_detectors(*spec.module);
  }
  if (args.flag("instrumented")) {
    Instrumentor instrumentor;
    instrumentor.run(*spec.entry);
  }
  std::fputs(ir::to_string(*spec.module).c_str(), stdout);
  return 0;
}

int cmd_sites(const CliArgs& args) {
  const auto& bench = benchmark_of(args);
  RunSpec spec = bench.build(target_of(args),
                             std::stoul(args.get("input", "0")));
  const auto sites = enumerate_fault_sites(*spec.entry);

  std::uint64_t pure = 0, control = 0, address = 0, vector_sites = 0,
                masked = 0, store_op = 0;
  for (const FaultSite& site : sites) {
    if (site.site_class.pure_data()) pure += 1;
    if (site.site_class.control) control += 1;
    if (site.site_class.address) address += 1;
    if (site.vector_instruction) vector_sites += 1;
    if (site.masked) masked += 1;
    if (site.store_operand) store_op += 1;
  }
  std::printf("%s (%s): %zu static fault sites\n", bench.name().c_str(),
              target_of(args).name(), sites.size());
  std::printf("  pure-data: %llu  control: %llu  address: %llu "
              "(control/address overlap allowed)\n",
              static_cast<unsigned long long>(pure),
              static_cast<unsigned long long>(control),
              static_cast<unsigned long long>(address));
  std::printf("  on vector instructions: %llu (%s)  masked lanes: %llu  "
              "store-operand sites: %llu\n",
              static_cast<unsigned long long>(vector_sites),
              pct(static_cast<double>(vector_sites) / sites.size()).c_str(),
              static_cast<unsigned long long>(masked),
              static_cast<unsigned long long>(store_op));
  return 0;
}

int cmd_inject(const CliArgs& args) {
  const auto& bench = benchmark_of(args);
  const analysis::FaultSiteCategory category = category_of(args);
  const unsigned experiments =
      std::stoul(args.get("experiments", "100"));

  RunSpec spec = bench.build(target_of(args),
                             std::stoul(args.get("input", "0")));
  if (args.flag("detectors")) {
    detect::insert_foreach_detectors(*spec.module);
  }
  EngineOptions engine_options;
  engine_options.static_prune = !args.flag("no-static-prune");
  InjectionEngine engine(std::move(spec), category, engine_options);
  engine.set_backend(backend_of(args));
  if (args.flag("detectors")) {
    engine.setup_runtime([](interp::RuntimeEnv& env,
                            interp::DetectionLog& log) {
      detect::attach_detector_runtime(env, log);
    });
  }

  Rng rng(std::stoull(args.get("seed", "24029")));
  OutcomeCounts totals;
  OutcomeReport report;
  for (unsigned i = 0; i < experiments; ++i) {
    const ExperimentResult result = engine.run_experiment(rng);
    totals.record(result);
    report.record(result, engine.sites());
  }

  std::printf("%s / %s / %s — %u experiments\n", bench.name().c_str(),
              analysis::category_name(category), target_of(args).name(),
              experiments);
  const double n = static_cast<double>(totals.total());
  std::printf("  SDC %s   Benign %s   Crash %s", pct(totals.sdc / n).c_str(),
              pct(totals.benign / n).c_str(), pct(totals.crash / n).c_str());
  if (args.flag("detectors")) {
    std::printf("   detected (all outcomes) %s",
                pct(totals.detected / n).c_str());
  }
  std::printf("\n");
  if (args.flag("report")) {
    std::printf("\nPer-opcode outcome breakdown:\n%s",
                report.render_by_opcode().c_str());
  }
  return 0;
}

serve::CampaignRequest campaign_request_of(const CliArgs& args);

std::vector<std::string> csv_of(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t begin = 0; begin <= text.size();) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) out.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "vulfi: cannot write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

/// `vulfi study`: the vector-width × parallelism resilience study.
/// Enumerates the plan, fans cells through a daemon or a local engine
/// cache, journals completed cells for resume, and renders the report.
int cmd_study(const CliArgs& args) {
  study::StudyPlanConfig config;
  config.base = campaign_request_of(args);
  config.base.benchmark.clear();

  config.benchmarks = csv_of(args.get("benchmarks"));
  if (config.benchmarks.empty() && !args.get("benchmark").empty()) {
    config.benchmarks.push_back(args.get("benchmark"));
  }
  if (config.benchmarks.empty()) {
    for (const auto* bench : kernels::all_benchmarks()) {
      config.benchmarks.push_back(bench->name());
    }
  }
  if (args.options.count("widths") != 0) {
    config.widths.clear();
    for (const std::string& width : csv_of(args.get("widths"))) {
      if (width == "scalar") {
        config.widths.push_back(1);
      } else {
        config.widths.push_back(
            static_cast<unsigned>(std::stoul(width)));
      }
    }
  }
  if (args.options.count("isas") != 0) {
    config.isas = csv_of(args.get("isas"));
  }
  if (args.options.count("categories") != 0) {
    config.categories = csv_of(args.get("categories"));
  } else if (args.options.count("category") != 0) {
    config.categories = {args.get("category")};
  }
  const std::string det =
      args.get("det", args.flag("detectors") ? "on" : "both");
  if (det == "on") {
    config.detectors_off = false;
  } else if (det == "off") {
    config.detectors_on = false;
  } else if (det != "both") {
    std::fprintf(stderr, "--det must be on, off, or both\n");
    return 2;
  }

  std::string error;
  const std::optional<study::StudyPlan> plan =
      study::StudyPlan::make(config, &error);
  if (!plan) {
    std::fprintf(stderr, "vulfi: %s\n", error.c_str());
    return 2;
  }
  if (args.flag("plan")) {
    std::printf("%s\n", plan->to_json().c_str());
    return 0;
  }

  study::StudyOptions options;
  options.socket = args.get("socket");
  options.window =
      static_cast<unsigned>(std::stoul(args.get("window", "4")));
  options.retry.attempts =
      static_cast<unsigned>(std::stoul(args.get("retry", "1")));
  options.retry.base_ms =
      static_cast<unsigned>(std::stoul(args.get("retry-base-ms", "200")));
  options.retry.jitter_seed = config.base.seed;
  options.journal_path = args.get("journal");
  const std::optional<JournalSync> sync =
      journal_sync_from_name(args.get("fsync", "always"));
  if (!sync) {
    std::fprintf(stderr, "--fsync must be always, batch, or off\n");
    return 2;
  }
  options.journal_sync = *sync;
  options.summaries_dir = args.get("summary-store");
  options.stop_after_cells =
      static_cast<unsigned>(std::stoul(args.get("stop-after-cells", "0")));
  CancellationToken cancel;
  const ScopedSignalCancellation signal_guard(cancel);
  options.cancel = &cancel;
  options.log = [](const std::string& message) {
    std::fprintf(stderr, "vulfi: %s\n", message.c_str());
  };
  const unsigned total = static_cast<unsigned>(plan->cells().size());
  unsigned done = 0;
  options.on_cell = [&done, total](const study::StudyCellOutcome& outcome) {
    if (!outcome.done) return;
    done += 1;
    std::fprintf(stderr, "\r  %u/%u cells (%s %s)", done, total,
                 outcome.cell.key().c_str(), outcome.source.c_str());
    if (done == total) std::fprintf(stderr, "\n");
  };

  const study::StudyResult result = study::run_study(*plan, options);
  if (done != 0 && done != total) std::fprintf(stderr, "\n");
  if (!result.error.empty()) {
    std::fprintf(stderr, "vulfi: %s\n", result.error.c_str());
  }

  std::fputs(study::study_report_markdown(*plan, result).c_str(), stdout);
  std::printf(
      "cells: %u/%u done (%u journal, %u store, %u executed), "
      "%llu new experiments\n",
      result.cells_completed, result.cells_total, result.cells_from_journal,
      result.cells_from_store, result.cells_executed,
      static_cast<unsigned long long>(result.new_experiments));
  if (result.interrupted && !options.journal_path.empty()) {
    std::printf("interrupted — rerun with --journal %s to resume\n",
                options.journal_path.c_str());
  }

  const std::string json_path = args.get("report-json");
  if (!json_path.empty() &&
      !write_text_file(json_path, study::study_report_json(*plan, result))) {
    return kCampaignExitInternalError;
  }
  const std::string md_path = args.get("report-md");
  if (!md_path.empty() &&
      !write_text_file(md_path,
                       study::study_report_markdown(*plan, result))) {
    return kCampaignExitInternalError;
  }
  const std::string csv_path = args.get("report-csv");
  if (!csv_path.empty() &&
      !write_text_file(csv_path, study::study_report_csv(*plan, result))) {
    return kCampaignExitInternalError;
  }
  return result.exit_code;
}

int cmd_compile(const CliArgs& args) {
  const std::string path = args.get("file");
  if (path.empty()) {
    std::fprintf(stderr, "--file is required\n");
    return 2;
  }
  std::ifstream stream(path);
  if (!stream) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();

  spmd::lang::CompileResult result =
      spmd::lang::compile_program(buffer.str(), target_of(args), path);
  if (!result.ok()) {
    for (const std::string& err : result.errors) {
      std::fprintf(stderr, "%s\n", err.c_str());
    }
    return 1;
  }
  if (args.flag("detectors")) {
    detect::insert_foreach_detectors(*result.module);
    detect::insert_uniform_detectors(*result.module);
  }
  if (args.flag("instrumented")) {
    Instrumentor instrumentor;
    for (const auto& fn : result.module->functions()) {
      if (fn->is_definition()) instrumentor.run(*fn);
    }
  }
  std::fputs(ir::to_string(*result.module).c_str(), stdout);
  return 0;
}

serve::CampaignRequest campaign_request_of(const CliArgs& args);

/// `vulfi campaign --shards N`: the supervised multi-process path.
/// Statistics (and --stats-json bytes) are identical to the in-process
/// path for every shard count and every crash/restart schedule.
int cmd_campaign_sharded(const CliArgs& args) {
  const auto& bench = benchmark_of(args);
  const analysis::FaultSiteCategory category = category_of(args);
  const spmd::Target target = target_of(args);

  serve::CampaignRequest request = campaign_request_of(args);
  serve::SupervisorOptions options;
  options.request = request;
  options.request.shards = 0;  // each worker runs its range in-process
  options.shards = request.shards;
  options.max_restarts = request.max_restarts;
  options.journal_base = request.checkpoint;
  options.on_log = [](const std::string& message) {
    std::fprintf(stderr, "vulfi: %s\n", message.c_str());
  };
  CancellationToken cancel;
  const ScopedSignalCancellation signal_guard(cancel);
  options.cancel = &cancel;

  const serve::SupervisorResult sup = serve::run_sharded_campaign(options);
  if (!sup.error.empty()) {
    std::fprintf(stderr, "vulfi: %s\n", sup.error.c_str());
  }
  const CampaignResult& result = sup.result;

  std::printf("%s / %s / %s — %u shard worker%s, %u restart%s\n",
              bench.name().c_str(), analysis::category_name(category),
              target.name(), request.shards, request.shards == 1 ? "" : "s",
              sup.restarts, sup.restarts == 1 ? "" : "s");
  std::printf("  campaigns: %u x %u experiments (%llu total)\n",
              result.campaigns, request.experiments,
              static_cast<unsigned long long>(result.experiments));
  if (result.experiments > 0) {
    std::printf("  %s\n", render_rates_with_ci(result).c_str());
    std::printf("  mean campaign SDC rate %.4f, margin of error (95%%) "
                "±%.2f%%, near-normal: %s\n",
                result.sdc_samples.mean(), result.margin_of_error * 100.0,
                result.near_normal ? "yes" : "no");
  }
  if (!sup.failed_shards.empty()) {
    std::string list;
    for (unsigned s : sup.failed_shards) {
      list += strf("%s%u", list.empty() ? "" : ",", s);
    }
    std::printf("  failed shards (restart budget exhausted): %s\n",
                list.c_str());
  }
  if (!sup.merged_path.empty()) {
    std::printf("  merged journal: %s\n", sup.merged_path.c_str());
  }

  const std::string stats_path = args.get("stats-json");
  if (!stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::trunc);
    out << campaign_stats_json(result) << "\n";
    if (!out) {
      std::fprintf(stderr, "vulfi: cannot write stats to '%s'\n",
                   stats_path.c_str());
      return kCampaignExitInternalError;
    }
  }
  return sup.exit_code;
}

/// Hidden subcommand: one shard worker process, exec'd by the
/// supervisor. The request arrives as its serialized submit payload so
/// doubles round-trip bit-exactly.
int cmd_shard_worker(const CliArgs& args) {
  const std::string request_json = args.get("request-json");
  if (request_json.empty()) {
    std::fprintf(stderr, "shard-worker: --request-json is required\n");
    return 2;
  }
  std::string error;
  const std::optional<serve::CampaignRequest> request =
      serve::parse_request(request_json, &error);
  if (!request) {
    std::fprintf(stderr, "shard-worker: %s\n", error.c_str());
    return 2;
  }
  serve::ShardWorkerOptions options;
  options.request = *request;
  options.request.shards = 0;
  options.shard_index =
      static_cast<unsigned>(std::stoul(args.get("shard", "0")));
  options.shard_total =
      static_cast<unsigned>(std::stoul(args.get("shards", "1")));
  options.journal_path = args.get("shard-journal");
  options.status_fd = std::stoi(args.get("status-fd", "-1"));
  options.heartbeat_ms =
      static_cast<unsigned>(std::stoul(args.get("heartbeat-ms", "250")));
  return serve::run_shard_worker(options);
}

/// `vulfi merge-shards`: the supervisor's merge step as a standalone
/// command, for crash forensics and manual recovery.
int cmd_merge_shards(const CliArgs& args) {
  serve::CampaignRequest request = campaign_request_of(args);
  request.shards = 0;
  if (request.benchmark.empty()) {
    std::fprintf(stderr, "--benchmark is required\n");
    return 2;
  }
  std::vector<std::string> paths;
  const std::string inputs = args.get("inputs");
  for (std::size_t begin = 0; begin <= inputs.size();) {
    std::size_t end = inputs.find(',', begin);
    if (end == std::string::npos) end = inputs.size();
    if (end > begin) paths.push_back(inputs.substr(begin, end - begin));
    begin = end + 1;
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "merge-shards: --inputs A.shard0,A.shard1,... is required\n");
    return 2;
  }

  const serve::ShardMergeOutcome merge =
      serve::merge_shards(request, paths, args.get("out"));
  if (!merge.error.empty()) {
    std::fprintf(stderr, "vulfi: %s\n", merge.error.c_str());
  }
  std::printf("merged %zu shard journal%s: %zu campaign record%s\n",
              paths.size(), paths.size() == 1 ? "" : "s",
              merge.records.size(), merge.records.size() == 1 ? "" : "s");
  if (merge.result.experiments > 0) {
    std::printf("  %s\n", render_rates_with_ci(merge.result).c_str());
  }
  if (!merge.missing_shards.empty()) {
    std::string list;
    for (unsigned s : merge.missing_shards) {
      list += strf("%s%u", list.empty() ? "" : ",", s);
    }
    std::printf("  missing shards: %s\n", list.c_str());
  }
  const std::string out_path = args.get("out");
  if (!out_path.empty() && merge.exit_code != kCampaignExitInternalError) {
    std::printf("  merged journal: %s\n", out_path.c_str());
  }
  const std::string stats_path = args.get("stats-json");
  if (!stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::trunc);
    out << campaign_stats_json(merge.result) << "\n";
    if (!out) {
      std::fprintf(stderr, "vulfi: cannot write stats to '%s'\n",
                   stats_path.c_str());
      return kCampaignExitInternalError;
    }
  }
  return merge.exit_code;
}

int cmd_campaign(const CliArgs& args) {
  if (std::stoul(args.get("shards", "0")) > 0) {
    return cmd_campaign_sharded(args);
  }
  const auto& bench = benchmark_of(args);
  const analysis::FaultSiteCategory category = category_of(args);
  const spmd::Target target = target_of(args);

  std::vector<std::unique_ptr<InjectionEngine>> engines;
  std::vector<InjectionEngine*> pointers;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    engines.push_back(std::make_unique<InjectionEngine>(
        bench.build(target, input), category));
    pointers.push_back(engines.back().get());
  }

  CampaignConfig config;
  config.experiments_per_campaign =
      std::stoul(args.get("experiments", "100"));
  config.min_campaigns = std::stoul(args.get("campaigns", "20"));
  config.max_campaigns = std::stoul(args.get(
      "max-campaigns", std::to_string(config.min_campaigns * 2)));
  config.seed = std::stoull(args.get("seed", "24029"));
  config.num_threads =
      static_cast<unsigned>(std::stoul(args.get("jobs", "1")));
  config.use_golden_cache = !args.flag("no-golden-cache");
  config.use_static_prune = !args.flag("no-static-prune");
  config.confidence = std::stod(args.get("confidence", "0.95"));
  config.target_margin = std::stod(args.get("margin", "0.03"));
  config.checkpoint_path = args.get("checkpoint");
  const std::optional<JournalSync> sync =
      journal_sync_from_name(args.get("fsync", "always"));
  if (!sync) {
    std::fprintf(stderr, "--fsync must be always, batch, or off\n");
    return 2;
  }
  config.journal_sync = *sync;
  config.self_verify_every =
      static_cast<unsigned>(std::stoul(args.get("self-verify", "0")));
  config.stall_timeout_seconds = std::stod(args.get("stall-timeout", "0"));
  config.backend = backend_of(args);

  // Cooperative cancellation: first SIGINT/SIGTERM drains the in-flight
  // experiment and checkpoints completed campaigns; a second SIGINT
  // falls back to the default (immediate) disposition.
  CancellationToken cancel;
  const ScopedSignalCancellation signal_guard(cancel);
  config.cancel = &cancel;

  const CampaignResult result = run_campaigns(pointers, config);
  if (!result.ok()) {
    std::fprintf(stderr, "vulfi: %s\n", result.error.c_str());
  }

  std::printf("%s / %s / %s\n", bench.name().c_str(),
              analysis::category_name(category), target.name());
  std::printf("  campaigns: %u x %u experiments (%llu total)\n",
              result.campaigns, config.experiments_per_campaign,
              static_cast<unsigned long long>(result.experiments));
  std::printf("  %s\n", render_rates_with_ci(result).c_str());
  std::printf("  mean campaign SDC rate %.4f, margin of error (95%%) "
              "±%.2f%%, near-normal: %s\n",
              result.sdc_samples.mean(), result.margin_of_error * 100.0,
              result.near_normal ? "yes" : "no");
  std::printf("  throughput: %s\n",
              render_throughput(result.throughput).c_str());
  if (config.use_static_prune) {
    std::printf("  static prune: %s\n",
                render_prune_savings(result).c_str());
  }
  const std::string resilience = render_resilience(result);
  if (!resilience.empty()) {
    std::printf("  resilience: %s\n", resilience.c_str());
  }

  // --summary-store: record this campaign as a per-unit summary keyed by
  // (canonical content hash, config fingerprint) for `vulfi diff` reuse.
  // Interrupted or failed runs are deliberately not recorded.
  const std::string store_dir = args.get("summary-store");
  if (!store_dir.empty() && result.ok() && !result.interrupted) {
    std::string store_error;
    SummaryStore store;
    if (!store.open(store_dir, &store_error)) {
      std::fprintf(stderr, "vulfi: %s\n", store_error.c_str());
      return kCampaignExitInternalError;
    }
    FunctionSummary summary;
    summary.unit = bench.name();
    Fnv1a unit_hash;
    for (unsigned input = 0; input < bench.num_inputs(); ++input) {
      RunSpec spec = bench.build(target, input);
      unit_hash.u64(analysis::module_content_hash(*spec.module));
      const PropagationCensus part = propagation_census(*spec.module);
      summary.census.masked += part.masked;
      summary.census.output += part.output;
      summary.census.control += part.control;
      summary.census.trap += part.trap;
    }
    summary.content_hash = unit_hash.value();
    summary.config_fingerprint = summary_config_fingerprint(
        config, args.get("category"), args.get("target", "avx"),
        args.flag("detectors"));
    summary.experiments = result.experiments;
    summary.benign = result.benign;
    summary.sdc = result.sdc;
    summary.crash = result.crash;
    summary.detected_sdc = result.detected_sdc;
    summary.detected_total = result.detected_total;
    summary.campaigns = result.campaigns;
    summary.exit_code = campaign_exit_code(result);
    for (const auto& engine : engines) {
      summary.weight += engine->golden().dynamic_sites;
    }
    if (!store.append(summary)) {
      std::fprintf(stderr,
                   "vulfi: summary store append failed (disk full?)\n");
      return kCampaignExitInternalError;
    }
    std::printf("  summary: stored in %s (unit %s, hash %s)\n",
                store.path().c_str(), summary.unit.c_str(),
                hash_hex(summary.content_hash).c_str());
  }

  const std::string stats_path = args.get("stats-json");
  if (!stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::trunc);
    out << campaign_stats_json(result) << "\n";
    if (!out) {
      std::fprintf(stderr, "vulfi: cannot write stats to '%s'\n",
                   stats_path.c_str());
      return kCampaignExitInternalError;
    }
  }
  return campaign_exit_code(result);
}

int lint_one(const std::string& label, ir::Module& module, int& failures) {
  const std::vector<analysis::LintDiagnostic> diags =
      analysis::lint_module(module);
  for (const analysis::LintDiagnostic& diag : diags) {
    std::printf("%s: %s\n", label.c_str(), diag.render().c_str());
  }
  if (diags.empty()) {
    std::printf("%s: clean\n", label.c_str());
  } else {
    failures += 1;
  }
  return static_cast<int>(diags.size());
}

int cmd_lint(const CliArgs& args) {
  int failures = 0;

  if (!args.get("file").empty()) {
    const std::string path = args.get("file");
    std::ifstream stream(path);
    if (!stream) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    spmd::lang::CompileResult result =
        spmd::lang::compile_program(buffer.str(), target_of(args), path);
    if (!result.ok()) {
      for (const std::string& err : result.errors) {
        std::fprintf(stderr, "%s\n", err.c_str());
      }
      return 1;
    }
    lint_one(path, *result.module, failures);
    return failures == 0 ? 0 : 1;
  }

  if (args.flag("all")) {
    // Every registered benchmark on every ISA: the CI lint-examples gate.
    const spmd::Target targets[] = {spmd::Target::avx(),
                                    spmd::Target::sse4()};
    std::vector<const kernels::Benchmark*> benches =
        kernels::all_benchmarks();
    for (const auto* bench : kernels::micro_benchmarks()) {
      benches.push_back(bench);
    }
    for (const spmd::Target& target : targets) {
      for (const kernels::Benchmark* bench : benches) {
        RunSpec spec = bench->build(target, 0);
        lint_one(strf("%s/%s", bench->name().c_str(), target.name()),
                 *spec.module, failures);
      }
    }
    return failures == 0 ? 0 : 1;
  }

  const auto& bench = benchmark_of(args);
  RunSpec spec = bench.build(target_of(args),
                             std::stoul(args.get("input", "0")));
  lint_one(bench.name(), *spec.module, failures);
  return failures == 0 ? 0 : 1;
}

int cmd_version() {
  std::printf("vulfi — resiliency evaluation of vector programs\n");
  std::printf("  compiler:    %s\n", compiler_version());
  std::printf("  build type:  %s\n", build_type());
  std::printf("  features:    %s\n", feature_toggles().c_str());
  std::printf("  fingerprint: %s\n", build_fingerprint().c_str());
  std::printf("  protocol:    %u\n", serve::kProtocolVersion);
  std::printf("  fuzz grammar: v%u\n", fuzz::kGrammarVersion);
  std::printf("  summary store: v%u\n", kSummarySchemaVersion);
  // Probed at runtime (hardened hosts can forbid executable mappings), so
  // deliberately NOT part of the build fingerprint: a checkpoint written
  // with the JIT resumes fine on a host without it.
  std::printf("  jit backend: %s\n",
              jit::JitExecutor::available() ? "available (x86-64)"
                                            : "unavailable (interp fallback)");
  return 0;
}

int cmd_fuzz(const CliArgs& args) {
  const std::string replay = args.get("replay");
  if (!replay.empty()) {
    const fuzz::ReplayResult result = fuzz::replay_repro_file(replay);
    std::printf("%s\n", result.message.c_str());
    return result.exit_code;
  }

  fuzz::FuzzConfig config;
  config.seeds = static_cast<unsigned>(std::stoul(args.get("seeds", "100")));
  config.seed_start = std::stoull(args.get("seed", "1"));
  const std::string oracle = args.get("oracle", "diff");
  if (!fuzz::oracle_from_name(oracle, &config.oracle)) {
    std::fprintf(stderr,
                 "unknown oracle '%s' (use diff, prune, census, jit)\n",
                 oracle.c_str());
    return 2;
  }
  unsigned jobs = static_cast<unsigned>(std::stoul(args.get("jobs", "1")));
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  config.jobs = std::max(1u, jobs);
  config.repro_dir = args.get("repro-dir", "fuzz-repros");
  config.reduce = !args.flag("no-reduce");

  const fuzz::FuzzSummary summary = fuzz::run_fuzz(config);
  std::printf("fuzz: %u seeds [%llu, %llu), oracle %s, jobs %u\n",
              summary.seeds_run,
              static_cast<unsigned long long>(config.seed_start),
              static_cast<unsigned long long>(config.seed_start +
                                              config.seeds),
              fuzz::oracle_name(config.oracle), config.jobs);
  for (const fuzz::FuzzFailure& failure : summary.failures) {
    std::printf("  seed %llu FAILED: %s\n",
                static_cast<unsigned long long>(failure.seed),
                failure.diagnostic.c_str());
    std::printf("    reduced %zu -> %zu ops%s%s\n", failure.original_ops,
                failure.reduced_ops,
                failure.repro_path.empty() ? "" : ", repro: ",
                failure.repro_path.c_str());
  }
  if (summary.clean()) {
    std::printf("  all seeds clean\n");
    return 0;
  }
  std::printf("  %zu of %u seeds failed\n", summary.failures.size(),
              summary.seeds_run);
  return 1;
}

std::string socket_of(const CliArgs& args) {
  const std::string path = args.get("socket");
  if (path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    std::exit(2);
  }
  return path;
}

int cmd_serve(const CliArgs& args) {
  serve::ServerConfig config;
  config.socket_path = socket_of(args);
  config.workers =
      static_cast<unsigned>(std::stoul(args.get("serve-jobs", "1")));
  config.max_queue = std::stoul(args.get("queue", "16"));
  config.max_jobs_per_request =
      static_cast<unsigned>(std::stoul(args.get("max-request-jobs", "4")));
  config.cache_entries = std::stoul(args.get("cache-entries", "8"));
  config.verbose = !args.flag("quiet");

  serve::CampaignServer server(std::move(config));
  study::register_study_op(server);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "vulfi: %s\n", error.c_str());
    return 3;
  }
  // Run until a client sends shutdown or a signal arrives; either way
  // admitted campaigns drain before exit.
  CancellationToken cancel;
  const ScopedSignalCancellation signal_guard(cancel);
  while (!cancel.cancelled() && !server.stopped()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.request_shutdown();
  server.wait();
  return 0;
}

// Shared between `submit` and `diff`: the campaign knobs as wire fields.
serve::CampaignRequest campaign_request_of(const CliArgs& args) {
  serve::CampaignRequest request;
  request.benchmark = args.get("benchmark");
  request.category = args.get("category", "pure-data");
  request.isa = args.get("target", "avx");
  request.experiments = std::stoul(args.get("experiments", "100"));
  request.min_campaigns = std::stoul(args.get("campaigns", "20"));
  request.max_campaigns = std::stoul(args.get("max-campaigns", "0"));
  request.seed = std::stoull(args.get("seed", "24029"));
  request.jobs = static_cast<unsigned>(std::stoul(args.get("jobs", "1")));
  request.golden_cache = !args.flag("no-golden-cache");
  request.static_prune = !args.flag("no-static-prune");
  request.detectors = args.flag("detectors");
  (void)backend_of(args);  // validate the name before shipping it
  request.backend = args.get("backend", "interp");
  request.priority =
      static_cast<unsigned>(std::stoul(args.get("priority", "1")));
  request.shards = static_cast<unsigned>(std::stoul(args.get("shards", "0")));
  request.max_restarts =
      static_cast<unsigned>(std::stoul(args.get("max-restarts", "3")));
  request.confidence = std::stod(args.get("confidence", "0.95"));
  request.target_margin = std::stod(args.get("margin", "0.03"));
  request.self_verify =
      static_cast<unsigned>(std::stoul(args.get("self-verify", "0")));
  request.stall_timeout = std::stod(args.get("stall-timeout", "0"));
  request.checkpoint = args.get("checkpoint");
  request.fsync = args.get("fsync", "always");
  return request;
}

int cmd_submit(const CliArgs& args) {
  const std::string socket_path = socket_of(args);
  serve::CampaignRequest request = campaign_request_of(args);
  if (request.benchmark.empty()) {
    std::fprintf(stderr, "--benchmark is required\n");
    return 2;
  }

  // --journal appends every streamed record; the file is a valid
  // checkpoint journal, so a dropped connection is recoverable by
  // resubmitting with it as the server-side --checkpoint.
  std::ofstream journal_out;
  serve::StreamCallbacks callbacks;
  const std::string journal_path = args.get("journal");
  if (!journal_path.empty()) {
    journal_out.open(journal_path, std::ios::trunc);
    if (!journal_out) {
      std::fprintf(stderr, "vulfi: cannot write journal to '%s'\n",
                   journal_path.c_str());
      return 2;
    }
    callbacks.on_record = [&journal_out](const std::string& line) {
      journal_out << line << "\n";
      journal_out.flush();
    };
  }
  callbacks.on_log = [](const std::string& message) {
    std::fprintf(stderr, "vulfi: %s\n", message.c_str());
  };

  // --retry N: a busy daemon is retried under exponential backoff +
  // jitter. Only "busy" retries — nothing was scheduled, so a resubmit
  // cannot duplicate work.
  serve::RetryPolicy policy;
  policy.attempts =
      static_cast<unsigned>(std::stoul(args.get("retry", "1")));
  policy.base_ms =
      static_cast<unsigned>(std::stoul(args.get("retry-base-ms", "200")));
  policy.jitter_seed = request.seed;

  const serve::SubmitOutcome outcome = serve::submit_campaign_with_retry(
      socket_path, request, policy, callbacks);
  if (!outcome.ok) {
    std::fprintf(stderr, "vulfi: %s\n", outcome.error.c_str());
    return 3;
  }
  if (!outcome.server_error.empty()) {
    std::fprintf(stderr, "vulfi: %s\n", outcome.server_error.c_str());
  }

  std::printf("%s / %s / %s via %s\n", request.benchmark.c_str(),
              request.category.c_str(), request.isa.c_str(),
              socket_path.c_str());
  std::printf("  daemon request %llu: %zu engines (cache %s), "
              "%llu campaign records streamed\n",
              static_cast<unsigned long long>(outcome.id), outcome.engines,
              outcome.cache_hit ? "hit" : "miss",
              static_cast<unsigned long long>(outcome.records));
  const std::uint64_t campaigns =
      journal_u64(outcome.stats_json, "campaigns").value_or(0);
  const std::uint64_t experiments =
      journal_u64(outcome.stats_json, "experiments").value_or(0);
  std::printf("  campaigns: %llu x %u experiments (%llu total)\n",
              static_cast<unsigned long long>(campaigns),
              request.experiments,
              static_cast<unsigned long long>(experiments));
  if (experiments > 0) {
    const double n = static_cast<double>(experiments);
    const double sdc = static_cast<double>(
        journal_u64(outcome.stats_json, "sdc").value_or(0));
    const double benign = static_cast<double>(
        journal_u64(outcome.stats_json, "benign").value_or(0));
    const double crash = static_cast<double>(
        journal_u64(outcome.stats_json, "crash").value_or(0));
    std::printf("  SDC %s   Benign %s   Crash %s\n", pct(sdc / n).c_str(),
                pct(benign / n).c_str(), pct(crash / n).c_str());
  }

  const std::string stats_path = args.get("stats-json");
  if (!stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::trunc);
    out << outcome.stats_json << "\n";
    if (!out) {
      std::fprintf(stderr, "vulfi: cannot write stats to '%s'\n",
                   stats_path.c_str());
      return kCampaignExitInternalError;
    }
  }
  return outcome.exit_code;
}

int cmd_diff(const CliArgs& args) {
  serve::DiffRequest request;
  request.campaign = campaign_request_of(args);
  request.store = args.get("store");
  if (request.store.empty()) {
    std::fprintf(stderr, "vulfi diff: --store DIR is required\n");
    return 2;
  }
  request.against = args.get("against");
  const std::string units = args.get("units");
  for (std::size_t begin = 0; begin <= units.size();) {
    std::size_t end = units.find(',', begin);
    if (end == std::string::npos) end = units.size();
    if (end > begin) request.units.push_back(units.substr(begin, end - begin));
    begin = end + 1;
  }

  const std::string socket_path = args.get("socket");
  if (!socket_path.empty()) {
    // Remote: a vulfid serves the diff against its warm engine cache.
    serve::StreamCallbacks callbacks;
    callbacks.on_log = [](const std::string& message) {
      std::fprintf(stderr, "vulfi: %s\n", message.c_str());
    };
    const serve::SubmitOutcome outcome =
        serve::submit_diff(socket_path, request, callbacks);
    if (!outcome.ok) {
      std::fprintf(stderr, "vulfi: %s\n", outcome.error.c_str());
      return 3;
    }
    if (!outcome.server_error.empty()) {
      std::fprintf(stderr, "vulfi: %s\n", outcome.server_error.c_str());
    }
    std::printf("%s\n", outcome.stats_json.c_str());
    const std::string stats_path = args.get("stats-json");
    if (!stats_path.empty()) {
      std::ofstream out(stats_path, std::ios::trunc);
      out << outcome.stats_json << "\n";
      if (!out) {
        std::fprintf(stderr, "vulfi: cannot write stats to '%s'\n",
                     stats_path.c_str());
        return kCampaignExitInternalError;
      }
    }
    return outcome.exit_code;
  }

  serve::DiffOptions options;
  options.units = request.units;
  options.request = request.campaign;
  options.store_dir = request.store;
  options.against_dir = request.against;
  options.log = [](const std::string& message) {
    std::fprintf(stderr, "vulfi: %s\n", message.c_str());
  };
  CancellationToken cancel;
  const ScopedSignalCancellation signal_guard(cancel);
  options.cancel = &cancel;

  const serve::DiffReport report = serve::run_diff(options);
  if (!report.ok()) {
    std::fprintf(stderr, "vulfi: %s\n", report.error.c_str());
  }
  std::fputs(serve::render_diff_report(report).c_str(), stdout);

  const std::string stats_path = args.get("stats-json");
  if (!stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::trunc);
    out << serve::diff_report_json(report) << "\n";
    if (!out) {
      std::fprintf(stderr, "vulfi: cannot write stats to '%s'\n",
                   stats_path.c_str());
      return kCampaignExitInternalError;
    }
  }
  return report.exit_code;
}

int cmd_ping(const CliArgs& args) {
  std::string error;
  const std::optional<std::string> pong =
      serve::ping_server(socket_of(args), &error);
  if (!pong) {
    std::fprintf(stderr, "vulfi: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", pong->c_str());
  return 0;
}

int cmd_shutdown(const CliArgs& args) {
  std::string error;
  std::uint64_t completed = 0;
  if (!serve::shutdown_server(socket_of(args), &completed, &error)) {
    std::fprintf(stderr, "vulfi: %s\n", error.c_str());
    return 1;
  }
  std::printf("daemon drained and stopped (%llu campaign%s served)\n",
              static_cast<unsigned long long>(completed),
              completed == 1 ? "" : "s");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse(argc, argv);
  if (args.command == "list") return cmd_list();
  if (args.command == "show-ir") return cmd_show_ir(args);
  if (args.command == "sites") return cmd_sites(args);
  if (args.command == "inject") return cmd_inject(args);
  if (args.command == "campaign") return cmd_campaign(args);
  if (args.command == "shard-worker") return cmd_shard_worker(args);
  if (args.command == "merge-shards") return cmd_merge_shards(args);
  if (args.command == "compile") return cmd_compile(args);
  if (args.command == "study") return cmd_study(args);
  if (args.command == "lint") return cmd_lint(args);
  if (args.command == "version") return cmd_version();
  if (args.command == "fuzz") return cmd_fuzz(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "submit") return cmd_submit(args);
  if (args.command == "diff") return cmd_diff(args);
  if (args.command == "ping") return cmd_ping(args);
  if (args.command == "shutdown") return cmd_shutdown(args);
  if (args.command == "--help" || args.command == "-h") usage(0);
  std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
  usage(2);
}
