// Warm-path benchmark of the campaign service (BENCH_PR5.json).
//
// Measures what the daemon exists to amortize: N sequential requests
// served through a live vulfid socket (one cold engine build, then
// warm-cache clones) versus the same N requests each paying the full
// cold start the one-shot CLI pays — kernel compile, detector-free
// instrumentation, golden-run memoization, site census, and prune
// analysis, per invocation. Campaigns are deliberately small so the
// cold-start share dominates, which is exactly the short-request regime
// a service targets; the daemon side additionally pays the socket
// protocol, so its win is measured end to end, not flattered.
//
// The run doubles as a correctness check: every warm response's
// statistics JSON must be byte-identical to the cold in-process run of
// the same request. Exits non-zero when the warm-path speedup falls
// under 2x (the acceptance floor) or any statistics mismatch.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/engine_cache.hpp"
#include "serve/server.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/report.hpp"

namespace {

using namespace vulfi;
using namespace vulfi::serve;
using Clock = std::chrono::steady_clock;

constexpr unsigned kRequests = 8;

CampaignRequest request_for(unsigned index) {
  CampaignRequest request;
  // blackscholes carries a realistic cold start (largest paper kernel);
  // one 5-experiment campaign keeps the campaign body short — the
  // short-request regime where cold start dominates.
  request.benchmark = "blackscholes";
  request.category = "pure-data";
  request.experiments = 5;
  request.min_campaigns = 1;
  request.max_campaigns = 1;
  request.seed = 1000 + index;  // distinct requests, same engine key
  return request;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One full cold-start service of `request`: build everything from
/// scratch (cache of capacity 1, guaranteed miss), run the campaign.
std::string run_cold(const CampaignRequest& request) {
  EngineCache cold_cache(1);
  EngineCache::Lease lease = cold_cache.acquire(request);
  if (!lease.ok()) {
    std::fprintf(stderr, "cold build failed: %s\n", lease.error.c_str());
    std::exit(1);
  }
  std::vector<InjectionEngine*> engines;
  engines.reserve(lease.engines.size());
  for (const auto& engine : lease.engines) engines.push_back(engine.get());
  return campaign_stats_json(
      run_campaigns(engines, to_campaign_config(request, 0)));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_PR5.json";

  // Cold side: every request pays the full build, like N CLI runs.
  std::vector<std::string> cold_stats;
  const auto cold_start = Clock::now();
  for (unsigned i = 0; i < kRequests; ++i) {
    cold_stats.push_back(run_cold(request_for(i)));
  }
  const double cold_seconds = seconds_since(cold_start);

  // Warm side: the same requests through a live daemon socket.
  ServerConfig config;
  config.socket_path =
      "/tmp/vulfi_serve_bench_" + std::to_string(::getpid()) + ".sock";
  CampaignServer server(config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "daemon start failed: %s\n", error.c_str());
    return 1;
  }
  bool identical = true;
  const auto warm_start = Clock::now();
  for (unsigned i = 0; i < kRequests; ++i) {
    const SubmitOutcome outcome =
        submit_campaign(config.socket_path, request_for(i));
    if (!outcome.ok) {
      std::fprintf(stderr, "submit %u failed: %s\n", i,
                   outcome.error.c_str());
      return 1;
    }
    identical = identical && outcome.stats_json == cold_stats[i];
  }
  const double warm_seconds = seconds_since(warm_start);
  const EngineCacheStats cache = server.cache().stats();
  server.request_shutdown();
  server.wait();

  const double speedup = warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serve_warm_path\",\n"
               "  \"kernel\": \"blackscholes\",\n"
               "  \"requests\": %u,\n"
               "  \"cold_seconds\": %.3f,\n"
               "  \"warm_seconds\": %.3f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"cache_hits\": %llu,\n"
               "  \"cache_misses\": %llu,\n"
               "  \"stats_byte_identical\": %s\n"
               "}\n",
               kRequests, cold_seconds, warm_seconds, speedup,
               static_cast<unsigned long long>(cache.hits),
               static_cast<unsigned long long>(cache.misses),
               identical ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr,
               "serve-bench: %u requests cold %.3fs, warm (via socket) "
               "%.3fs -> %.2fx; cache %llu hits / %llu misses -> %s\n",
               kRequests, cold_seconds, warm_seconds, speedup,
               static_cast<unsigned long long>(cache.hits),
               static_cast<unsigned long long>(cache.misses),
               json_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "serve-bench: FAIL — warm statistics diverged from cold\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "serve-bench: FAIL — warm-path speedup %.2fx under the "
                 "2x floor\n",
                 speedup);
    return 1;
  }
  return 0;
}
