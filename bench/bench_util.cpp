#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vulfi::bench {

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      options.full = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--benchmark" && i + 1 < argc) {
      options.benchmark = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.jobs =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--no-golden-cache") {
      options.golden_cache = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--full] [--csv] [--benchmark NAME] [--seed N] "
          "[--jobs N] [--no-golden-cache]\n"
          "  --full             paper-scale experiment counts\n"
          "  --csv              CSV output\n"
          "  --benchmark        restrict to one benchmark\n"
          "  --seed             base RNG seed\n"
          "  --jobs             campaign worker threads (0 = hardware "
          "concurrency)\n"
          "  --no-golden-cache  re-run the golden pass per experiment\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

}  // namespace vulfi::bench
