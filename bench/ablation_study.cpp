// Ablation study for the design choices called out in DESIGN.md §4:
//   1. mask-aware lane gating (the paper's key vector-awareness feature)
//      vs. treating masked-off lanes as live targets;
//   2. detector placement: loop-exit (paper §III-A) vs every iteration;
//   3. address classification rule: GEP-only forward-slice test (paper)
//      vs additionally counting direct pointer-operand uses;
//   4. Lvalue vs store-operand site population split (§II-B fault model).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "kernels/benchmark.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "vulfi/campaign.hpp"

namespace {

using namespace vulfi;

// ---------------------------------------------------------------------------
// 1. Mask-aware lane gating
// ---------------------------------------------------------------------------

void ablate_mask_awareness(const bench::Options& options) {
  std::printf("--- Ablation 1: mask-aware lane gating "
              "(paper §II: 'crucial in deciding whether or not to target a "
              "particular vector lane') ---\n");
  TextTable table({"Benchmark", "Gating", "Dynamic sites", "SDC", "Benign",
                   "Crash"});
  for (const char* name : {"vcopy", "dot"}) {
    const kernels::Benchmark* bench = kernels::find_benchmark(name);
    for (bool aware : {true, false}) {
      EngineOptions engine_options;
      engine_options.mask_aware = aware;
      // Input 1 (n = 1023) leaves a 7-lane masked remainder; a
      // width-multiple input would make gating unobservable.
      InjectionEngine engine(bench->build(spmd::Target::avx(), 1),
                             analysis::FaultSiteCategory::PureData,
                             engine_options);
      Rng rng(options.seed);
      const unsigned experiments = options.full ? 800 : 200;
      std::uint64_t sdc = 0, benign = 0, crash = 0, sites = 0;
      for (unsigned i = 0; i < experiments; ++i) {
        const ExperimentResult r = engine.run_experiment(rng);
        sites = r.dynamic_sites;
        switch (r.outcome) {
          case Outcome::SDC: sdc += 1; break;
          case Outcome::Benign: benign += 1; break;
          case Outcome::Crash: crash += 1; break;
        }
      }
      table.add_row({name, aware ? "mask-aware" : "lane-blind",
                     std::to_string(sites),
                     pct(static_cast<double>(sdc) / experiments),
                     pct(static_cast<double>(benign) / experiments),
                     pct(static_cast<double>(crash) / experiments)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(lane-blind counts masked-off lanes as live registers; the "
              "extra sites are dead, inflating Benign)\n\n");
}

// ---------------------------------------------------------------------------
// 2. Detector placement
// ---------------------------------------------------------------------------

void ablate_detector_placement(const bench::Options& options) {
  std::printf("--- Ablation 2: detector placement (paper: 'to minimize "
              "overheads, we check them only upon exit') ---\n");
  TextTable table({"Micro-benchmark", "Placement", "Overhead", "SDC",
                   "SDC Detection"});
  for (const kernels::Benchmark* bench : kernels::micro_benchmarks()) {
    for (detect::CheckPlacement placement :
         {detect::CheckPlacement::LoopExit,
          detect::CheckPlacement::EveryIteration}) {
      // Overhead: dynamic instructions with/without the detector.
      auto dynamic_count = [&](bool with_detector) {
        RunSpec spec = bench->build(spmd::Target::avx(), 0);
        if (with_detector) {
          detect::insert_foreach_detectors(*spec.module, placement);
        }
        interp::RuntimeEnv env;
        interp::DetectionLog log;
        detect::attach_detector_runtime(env, log);
        interp::Arena arena = spec.arena;
        interp::Interpreter interp(arena, env);
        return static_cast<double>(
            interp.run(*spec.entry, spec.args).stats.total_instructions);
      };
      const double overhead =
          (dynamic_count(true) - dynamic_count(false)) /
          dynamic_count(false);

      RunSpec spec = bench->build(spmd::Target::avx(), 0);
      detect::insert_foreach_detectors(*spec.module, placement);
      InjectionEngine engine(std::move(spec),
                             analysis::FaultSiteCategory::Control);
      engine.setup_runtime([](interp::RuntimeEnv& env,
                              interp::DetectionLog& log) {
        detect::attach_detector_runtime(env, log);
      });
      Rng rng(options.seed + 1);
      const unsigned experiments = options.full ? 600 : 200;
      std::uint64_t sdc = 0, detected = 0;
      for (unsigned i = 0; i < experiments; ++i) {
        const ExperimentResult r = engine.run_experiment(rng);
        if (r.outcome == Outcome::SDC) {
          sdc += 1;
          if (r.detected) detected += 1;
        }
      }
      table.add_row(
          {bench->name(),
           placement == detect::CheckPlacement::LoopExit ? "loop-exit"
                                                         : "every-iteration",
           pct(overhead), pct(static_cast<double>(sdc) / experiments),
           pct(sdc ? static_cast<double>(detected) / sdc : 0.0)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(equal detection at ~30x the overhead supports the paper's "
              "exit-only placement: the invariants hold mid-loop for the "
              "faults that matter, so per-iteration checks add cost, not "
              "coverage)\n\n");
}

// ---------------------------------------------------------------------------
// 3. Address classification rule
// ---------------------------------------------------------------------------

void ablate_address_rule(const bench::Options&) {
  std::printf("--- Ablation 3: address-site rule (paper: slice must "
              "contain a getelementptr) ---\n");
  TextTable table({"Benchmark", "Rule", "Address sites", "Pure-data sites"});
  for (const char* name : {"sorting", "stencil", "blackscholes"}) {
    const kernels::Benchmark* bench = kernels::find_benchmark(name);
    for (analysis::AddressRule rule :
         {analysis::AddressRule::GepOnly,
          analysis::AddressRule::GepOrMemOperand}) {
      RunSpec spec = bench->build(spmd::Target::avx(), 0);
      const auto sites = enumerate_fault_sites(*spec.entry, rule);
      std::uint64_t address = 0, pure = 0;
      for (const FaultSite& site : sites) {
        if (site.site_class.address) address += 1;
        if (site.site_class.pure_data()) pure += 1;
      }
      table.add_row({name,
                     rule == analysis::AddressRule::GepOnly
                         ? "gep-only"
                         : "gep-or-mem-operand",
                     std::to_string(address), std::to_string(pure)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(identical counts are themselves a finding: every pointer in "
              "these kernels flows through a getelementptr, so the stricter "
              "paper rule loses nothing here)\n\n");
}

// ---------------------------------------------------------------------------
// 4. Site population split
// ---------------------------------------------------------------------------

void ablate_site_population(const bench::Options&) {
  std::printf("--- Ablation 4: site population (Lvalue vs store-operand "
              "sites; masked lanes) ---\n");
  TextTable table({"Benchmark", "Total static", "Lvalue", "Store-operand",
                   "Masked", "Vector-instr share"});
  for (const kernels::Benchmark* bench : kernels::all_benchmarks()) {
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    const auto sites = enumerate_fault_sites(*spec.entry);
    std::uint64_t store_op = 0, masked = 0, vector_sites = 0;
    for (const FaultSite& site : sites) {
      if (site.store_operand) store_op += 1;
      if (site.masked) masked += 1;
      if (site.vector_instruction) vector_sites += 1;
    }
    table.add_row(
        {bench->name(), std::to_string(sites.size()),
         std::to_string(sites.size() - store_op), std::to_string(store_op),
         std::to_string(masked),
         pct(sites.empty() ? 0.0
                           : static_cast<double>(vector_sites) /
                                 static_cast<double>(sites.size()))});
  }
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  std::printf("VULFI design-choice ablations (DESIGN.md §4)\n\n");
  ablate_mask_awareness(options);
  ablate_detector_placement(options);
  ablate_address_rule(options);
  ablate_site_population(options);
  return 0;
}
