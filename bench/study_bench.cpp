// Study fleet-driver benchmark (BENCH_PR10.json).
//
// Measures what `vulfi study` exists to amortize: kSweeps repetitions of
// a fixed small plan run the way a script of one-shot CLI invocations
// would (serial, window 1, a fresh cold engine cache per sweep, no
// reuse) versus the fleet driver's path — cells fanned through a live
// vulfid socket with a bounded window, and repeated sweeps answered from
// the summary store with ZERO new experiments. The window also buys
// wall-clock on multicore hosts, but the floor below is enforced on the
// reuse win because it is deterministic on any core count.
//
// The run doubles as a correctness check: every sweep's report JSON —
// serial local, daemon-fanned cold, and store-warm — must be
// byte-identical. Exits non-zero when the fleet speedup falls under the
// 2x acceptance floor, any warm sweep injects a new experiment, or any
// report byte differs.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "serve/server.hpp"
#include "study/study.hpp"
#include "vulfi/summary.hpp"

namespace {

using namespace vulfi;
using Clock = std::chrono::steady_clock;

constexpr unsigned kSweeps = 3;

/// The fixed plan: the heaviest paper kernel across the scalar baseline
/// and the native AVX width — two cold engine builds per cold sweep.
study::StudyPlan plan_of() {
  study::StudyPlanConfig config;
  config.benchmarks = {"blackscholes"};
  config.widths = {1, 8};
  config.isas = {"avx"};
  config.categories = {"pure-data"};
  config.detectors_on = false;
  config.base.experiments = 10;
  config.base.min_campaigns = 2;
  config.base.max_campaigns = 2;
  config.base.seed = 24029;
  std::string error;
  const std::optional<study::StudyPlan> plan =
      study::StudyPlan::make(config, &error);
  if (!plan) {
    std::fprintf(stderr, "plan failed: %s\n", error.c_str());
    std::exit(1);
  }
  return *plan;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_PR10.json";
  const study::StudyPlan plan = plan_of();

  // Serial baseline: every sweep pays everything again — window 1, a
  // cold private cache (run_study builds one when none is supplied),
  // no journal, no summary store.
  std::vector<std::string> serial_reports;
  const auto serial_start = Clock::now();
  for (unsigned sweep = 0; sweep < kSweeps; ++sweep) {
    study::StudyOptions options;
    options.window = 1;
    const study::StudyResult result = study::run_study(plan, options);
    if (!result.complete()) {
      std::fprintf(stderr, "serial sweep %u failed: %s\n", sweep,
                   result.error.c_str());
      return 1;
    }
    serial_reports.push_back(study::study_report_json(plan, result));
  }
  const double serial_seconds = seconds_since(serial_start);

  // Fleet side: the same sweeps fanned through a live daemon, with the
  // summary store answering every repeated (unit, config) cell.
  const std::string store_dir =
      "/tmp/vulfi_study_bench_" + std::to_string(::getpid());
  std::remove((store_dir + "/" + SummaryStore::filename()).c_str());
  ::rmdir(store_dir.c_str());
  serve::ServerConfig config;
  config.socket_path = store_dir + ".sock";
  config.workers = 2;
  config.verbose = false;
  serve::CampaignServer server(config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "daemon start failed: %s\n", error.c_str());
    return 1;
  }

  bool identical = true;
  std::uint64_t warm_experiments = 0;
  const auto fleet_start = Clock::now();
  for (unsigned sweep = 0; sweep < kSweeps; ++sweep) {
    study::StudyOptions options;
    options.socket = config.socket_path;
    options.window = 4;
    options.summaries_dir = store_dir;
    const study::StudyResult result = study::run_study(plan, options);
    if (!result.complete()) {
      std::fprintf(stderr, "fleet sweep %u failed: %s\n", sweep,
                   result.error.c_str());
      return 1;
    }
    if (sweep > 0) warm_experiments += result.new_experiments;
    identical = identical &&
                study::study_report_json(plan, result) == serial_reports[sweep];
  }
  const double fleet_seconds = seconds_since(fleet_start);
  server.request_shutdown();
  server.wait();
  std::remove((store_dir + "/" + SummaryStore::filename()).c_str());
  ::rmdir(store_dir.c_str());
  std::remove(config.socket_path.c_str());

  const double speedup =
      fleet_seconds > 0.0 ? serial_seconds / fleet_seconds : 0.0;
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"study_fleet_driver\",\n"
               "  \"kernel\": \"blackscholes\",\n"
               "  \"cells\": %zu,\n"
               "  \"sweeps\": %u,\n"
               "  \"serial_seconds\": %.3f,\n"
               "  \"fleet_seconds\": %.3f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"warm_sweep_new_experiments\": %llu,\n"
               "  \"reports_byte_identical\": %s\n"
               "}\n",
               plan.cells().size(), kSweeps, serial_seconds, fleet_seconds,
               speedup, static_cast<unsigned long long>(warm_experiments),
               identical ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr,
               "study-bench: %u sweeps x %zu cells serial %.3fs, fleet "
               "(daemon + store) %.3fs -> %.2fx; warm sweeps injected "
               "%llu experiments -> %s\n",
               kSweeps, plan.cells().size(), serial_seconds, fleet_seconds,
               speedup, static_cast<unsigned long long>(warm_experiments),
               json_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "study-bench: FAIL — fleet report diverged from serial\n");
    return 1;
  }
  if (warm_experiments != 0) {
    std::fprintf(stderr,
                 "study-bench: FAIL — warm sweeps injected %llu new "
                 "experiments (want 0)\n",
                 static_cast<unsigned long long>(warm_experiments));
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "study-bench: FAIL — fleet speedup %.2fx under the 2x "
                 "floor\n",
                 speedup);
    return 1;
  }
  return 0;
}
