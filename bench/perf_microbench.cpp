// google-benchmark microbenchmarks for the framework itself: interpreter
// throughput, instrumentation pass cost, instrumented-run slowdown,
// detector insertion, site enumeration/classification, and the campaign
// statistics kernels. Supplementary to the paper tables — these quantify
// the tooling, not the paper's results.
#include <benchmark/benchmark.h>

#include "analysis/instr_mix.hpp"
#include "detect/foreach_detector.hpp"
#include "interp/interpreter.hpp"
#include "kernels/benchmark.hpp"
#include "support/stats.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/instrument.hpp"

namespace {

using namespace vulfi;

void BM_InterpreterCleanRun(benchmark::State& state,
                            const std::string& name) {
  const kernels::Benchmark* bench = kernels::find_benchmark(name);
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  interp::RuntimeEnv env;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    interp::Arena arena = spec.arena;
    interp::Interpreter interp(arena, env);
    const auto result = interp.run(*spec.entry, spec.args);
    benchmark::DoNotOptimize(result.stats.total_instructions);
    instructions += result.stats.total_instructions;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_InterpreterCleanRun, blackscholes,
                  std::string("blackscholes"));
BENCHMARK_CAPTURE(BM_InterpreterCleanRun, stencil, std::string("stencil"));
BENCHMARK_CAPTURE(BM_InterpreterCleanRun, cg, std::string("cg"));

void BM_KernelBuild(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("stencil");
  for (auto _ : state) {
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    benchmark::DoNotOptimize(spec.entry);
  }
}
BENCHMARK(BM_KernelBuild);

void BM_InstrumentorPass(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("raytracing");
  for (auto _ : state) {
    state.PauseTiming();
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    state.ResumeTiming();
    Instrumentor instrumentor;
    const auto sites = instrumentor.run(*spec.entry);
    benchmark::DoNotOptimize(sites.size());
  }
}
BENCHMARK(BM_InstrumentorPass);

void BM_SiteEnumerationAndClassification(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("raytracing");
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  for (auto _ : state) {
    const auto sites = enumerate_fault_sites(*spec.entry);
    benchmark::DoNotOptimize(sites.size());
  }
}
BENCHMARK(BM_SiteEnumerationAndClassification);

void BM_InstructionMixCensus(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("sorting");
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  for (auto _ : state) {
    const auto mix = analysis::instruction_mix(*spec.entry);
    benchmark::DoNotOptimize(
        mix.category(analysis::FaultSiteCategory::Control).total());
  }
}
BENCHMARK(BM_InstructionMixCensus);

void BM_InstrumentedRunSlowdown(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("stencil");
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::PureData);
  for (auto _ : state) {
    const auto result = engine.run_clean();
    benchmark::DoNotOptimize(result.stats.total_instructions);
  }
}
BENCHMARK(BM_InstrumentedRunSlowdown);

void BM_FullExperiment(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("dot");
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(1234);
  for (auto _ : state) {
    const auto result = engine.run_experiment(rng);
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_FullExperiment);

void BM_DetectorInsertion(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("jacobi");
  for (auto _ : state) {
    state.PauseTiming();
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    state.ResumeTiming();
    const unsigned inserted =
        detect::insert_foreach_detectors(*spec.module);
    benchmark::DoNotOptimize(inserted);
  }
}
BENCHMARK(BM_DetectorInsertion);

void BM_StudentTCritical(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(students_t_critical(0.95, 19));
  }
}
BENCHMARK(BM_StudentTCritical);

void BM_OnlineStatsMoments(benchmark::State& state) {
  Rng rng(99);
  std::vector<double> samples(1000);
  for (double& sample : samples) sample = rng.next_double();
  for (auto _ : state) {
    OnlineStats stats;
    for (double sample : samples) stats.add(sample);
    benchmark::DoNotOptimize(stats.excess_kurtosis());
  }
}
BENCHMARK(BM_OnlineStatsMoments);

}  // namespace

BENCHMARK_MAIN();
