// google-benchmark microbenchmarks for the framework itself: interpreter
// throughput, instrumentation pass cost, instrumented-run slowdown,
// detector insertion, site enumeration/classification, and the campaign
// statistics kernels. Supplementary to the paper tables — these quantify
// the tooling, not the paper's results.
//
// The BM_ExperimentAB cases A/B the two execution-path optimizations
// (pre-decoded interpreter, golden-run memoization) against the baseline
// that predates them. `--perf-json=PATH` additionally runs a standalone
// before/after experiments-per-second measurement and writes it to PATH
// as machine-readable JSON (consumed by CI). `--prune-json=PATH` does the
// same for the static fault-site pruner A/B (BM_CampaignPruneAB):
// experiments/sec and skipped-run counts with pruning off vs on.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/instr_mix.hpp"
#include "detect/foreach_detector.hpp"
#include "interp/interpreter.hpp"
#include "kernels/benchmark.hpp"
#include "support/journal.hpp"
#include "support/stats.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/instrument.hpp"

namespace {

using namespace vulfi;

void BM_InterpreterCleanRun(benchmark::State& state,
                            const std::string& name) {
  const kernels::Benchmark* bench = kernels::find_benchmark(name);
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  interp::RuntimeEnv env;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    interp::Arena arena = spec.arena;
    interp::Interpreter interp(arena, env);
    const auto result = interp.run(*spec.entry, spec.args);
    benchmark::DoNotOptimize(result.stats.total_instructions);
    instructions += result.stats.total_instructions;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_InterpreterCleanRun, blackscholes,
                  std::string("blackscholes"));
BENCHMARK_CAPTURE(BM_InterpreterCleanRun, stencil, std::string("stencil"));
BENCHMARK_CAPTURE(BM_InterpreterCleanRun, cg, std::string("cg"));

// Warm variant: one persistent interpreter + in-place arena reset, the way
// the injection driver executes — the per-function decode cache amortizes
// across iterations instead of being rebuilt each run.
void BM_InterpreterCleanRunWarm(benchmark::State& state,
                                const std::string& name) {
  const kernels::Benchmark* bench = kernels::find_benchmark(name);
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  interp::RuntimeEnv env;
  interp::Arena scratch = spec.arena;
  interp::Interpreter interp(scratch, env);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    scratch.reset_from(spec.arena);
    const auto result = interp.run(*spec.entry, spec.args);
    benchmark::DoNotOptimize(result.stats.total_instructions);
    instructions += result.stats.total_instructions;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_InterpreterCleanRunWarm, blackscholes,
                  std::string("blackscholes"));
BENCHMARK_CAPTURE(BM_InterpreterCleanRunWarm, stencil,
                  std::string("stencil"));
BENCHMARK_CAPTURE(BM_InterpreterCleanRunWarm, cg, std::string("cg"));

void BM_KernelBuild(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("stencil");
  for (auto _ : state) {
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    benchmark::DoNotOptimize(spec.entry);
  }
}
BENCHMARK(BM_KernelBuild);

void BM_InstrumentorPass(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("raytracing");
  for (auto _ : state) {
    state.PauseTiming();
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    state.ResumeTiming();
    Instrumentor instrumentor;
    const auto sites = instrumentor.run(*spec.entry);
    benchmark::DoNotOptimize(sites.size());
  }
}
BENCHMARK(BM_InstrumentorPass);

void BM_SiteEnumerationAndClassification(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("raytracing");
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  for (auto _ : state) {
    const auto sites = enumerate_fault_sites(*spec.entry);
    benchmark::DoNotOptimize(sites.size());
  }
}
BENCHMARK(BM_SiteEnumerationAndClassification);

void BM_InstructionMixCensus(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("sorting");
  RunSpec spec = bench->build(spmd::Target::avx(), 0);
  for (auto _ : state) {
    const auto mix = analysis::instruction_mix(*spec.entry);
    benchmark::DoNotOptimize(
        mix.category(analysis::FaultSiteCategory::Control).total());
  }
}
BENCHMARK(BM_InstructionMixCensus);

void BM_InstrumentedRunSlowdown(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("stencil");
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::PureData);
  for (auto _ : state) {
    const auto result = engine.run_clean();
    benchmark::DoNotOptimize(result.stats.total_instructions);
  }
}
BENCHMARK(BM_InstrumentedRunSlowdown);

void BM_FullExperiment(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("dot");
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::PureData);
  Rng rng(1234);
  for (auto _ : state) {
    const auto result = engine.run_experiment(rng);
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_FullExperiment);

// A/B over the two execution-path optimizations. pr1_baseline disables
// both (reference hash-lookup executor, golden run re-executed per
// experiment); pr2_fastpath is the default configuration. The two
// single-toggle cases attribute the speedup.
void BM_ExperimentAB(benchmark::State& state, bool golden_cache,
                     bool predecode) {
  const kernels::Benchmark* bench = kernels::find_benchmark("dot");
  EngineOptions options;
  options.golden_cache = golden_cache;
  options.predecode = predecode;
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::PureData, options);
  Rng rng(1234);
  std::uint64_t experiments = 0;
  for (auto _ : state) {
    const auto result = engine.run_experiment(rng);
    benchmark::DoNotOptimize(result.outcome);
    experiments += 1;
  }
  state.counters["exp/s"] = benchmark::Counter(
      static_cast<double>(experiments), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_ExperimentAB, pr1_baseline, false, false);
BENCHMARK_CAPTURE(BM_ExperimentAB, golden_cache_only, true, false);
BENCHMARK_CAPTURE(BM_ExperimentAB, predecode_only, false, true);
BENCHMARK_CAPTURE(BM_ExperimentAB, pr2_fastpath, true, true);

// A/B over the static fault-site pruner (control-category sites, where
// dead execution-mask bits make adjudication fire). Statistics are
// bit-identical either way; only the faulty-run count changes.
void BM_CampaignPruneAB(benchmark::State& state, const std::string& kernel,
                        bool prune) {
  const kernels::Benchmark* bench = kernels::find_benchmark(kernel);
  EngineOptions options;
  options.static_prune = prune;
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::Control, options);
  Rng rng(1234);
  std::uint64_t experiments = 0;
  std::uint64_t skipped = 0;
  for (auto _ : state) {
    const auto result = engine.run_experiment(rng);
    benchmark::DoNotOptimize(result.outcome);
    experiments += 1;
    if (result.statically_adjudicated || result.memo_hit) skipped += 1;
  }
  state.counters["exp/s"] = benchmark::Counter(
      static_cast<double>(experiments), benchmark::Counter::kIsRate);
  state.counters["skipped_runs"] =
      benchmark::Counter(static_cast<double>(skipped));
}
BENCHMARK_CAPTURE(BM_CampaignPruneAB, dot_no_prune, std::string("dot"),
                  false);
BENCHMARK_CAPTURE(BM_CampaignPruneAB, dot_prune, std::string("dot"), true);
BENCHMARK_CAPTURE(BM_CampaignPruneAB, stencil_no_prune,
                  std::string("stencil"), false);
BENCHMARK_CAPTURE(BM_CampaignPruneAB, stencil_prune, std::string("stencil"),
                  true);
BENCHMARK_CAPTURE(BM_CampaignPruneAB, blackscholes_no_prune,
                  std::string("blackscholes"), false);
BENCHMARK_CAPTURE(BM_CampaignPruneAB, blackscholes_prune,
                  std::string("blackscholes"), true);

void BM_DetectorInsertion(benchmark::State& state) {
  const kernels::Benchmark* bench = kernels::find_benchmark("jacobi");
  for (auto _ : state) {
    state.PauseTiming();
    RunSpec spec = bench->build(spmd::Target::avx(), 0);
    state.ResumeTiming();
    const unsigned inserted =
        detect::insert_foreach_detectors(*spec.module);
    benchmark::DoNotOptimize(inserted);
  }
}
BENCHMARK(BM_DetectorInsertion);

void BM_StudentTCritical(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(students_t_critical(0.95, 19));
  }
}
BENCHMARK(BM_StudentTCritical);

void BM_OnlineStatsMoments(benchmark::State& state) {
  Rng rng(99);
  std::vector<double> samples(1000);
  for (double& sample : samples) sample = rng.next_double();
  for (auto _ : state) {
    OnlineStats stats;
    for (double sample : samples) stats.add(sample);
    benchmark::DoNotOptimize(stats.excess_kurtosis());
  }
}
BENCHMARK(BM_OnlineStatsMoments);

// Checkpoint journal cost: the campaign layer pays one sealed append per
// campaign boundary (seal + format + write; fsync dominates on real
// disks and is measured separately by turning sync off here, per the
// JournalWriter::set_sync contract).
void BM_JournalSealUnseal(benchmark::State& state) {
  const std::string payload =
      "{\"t\":\"campaign\",\"c\":39,\"benign\":21,\"sdc\":71,\"crash\":8,"
      "\"dsdc\":0,\"dtot\":0,\"padj\":5,\"premap\":2,\"pmemo\":11}";
  for (auto _ : state) {
    const std::string sealed = journal_seal(payload);
    auto back = journal_unseal(sealed);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_JournalSealUnseal);

void BM_JournalAppend(benchmark::State& state) {
  const std::string path = "bench_journal_append.jsonl";
  JournalWriter writer;
  writer.open(path, 0);
  writer.set_sync(false);
  const std::string payload =
      "{\"t\":\"campaign\",\"c\":39,\"benign\":21,\"sdc\":71,\"crash\":8,"
      "\"dsdc\":0,\"dtot\":0,\"padj\":5,\"premap\":2,\"pmemo\":11}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.append(payload));
  }
  writer.close();
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend);

// Durability-policy A/B for --fsync=always|batch|off: the per-record
// fsync of the Always default dominates checkpoint overhead on fast
// campaigns; Batch amortizes it over kBatchSyncEvery records; Off is the
// flush-only floor BM_JournalAppend measures.
void BM_JournalAppendSync(benchmark::State& state, JournalSync sync) {
  const std::string path = "bench_journal_sync.jsonl";
  JournalWriter writer;
  writer.open(path, 0);
  writer.set_sync_policy(sync);
  const std::string payload =
      "{\"t\":\"campaign\",\"c\":39,\"benign\":21,\"sdc\":71,\"crash\":8,"
      "\"dsdc\":0,\"dtot\":0,\"padj\":5,\"premap\":2,\"pmemo\":11}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.append(payload));
  }
  writer.close();
  std::remove(path.c_str());
}
BENCHMARK_CAPTURE(BM_JournalAppendSync, always, JournalSync::Always);
BENCHMARK_CAPTURE(BM_JournalAppendSync, batch, JournalSync::Batch);
BENCHMARK_CAPTURE(BM_JournalAppendSync, off, JournalSync::Off);

void BM_JournalRecover(benchmark::State& state) {
  // Recovery scans and re-verifies every record: cost of resuming a
  // max-length (40-campaign) checkpoint.
  const std::string path = "bench_journal_recover.jsonl";
  {
    JournalWriter writer;
    writer.open(path, 0);
    writer.set_sync(false);
    for (unsigned c = 0; c < 40; ++c) {
      writer.append("{\"t\":\"campaign\",\"c\":" + std::to_string(c) +
                    ",\"benign\":21,\"sdc\":71,\"crash\":8,\"dsdc\":0,"
                    "\"dtot\":0,\"padj\":5,\"premap\":2,\"pmemo\":11}");
    }
  }
  for (auto _ : state) {
    const JournalRecovery recovered = recover_journal(path);
    benchmark::DoNotOptimize(recovered.records.size());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalRecover);

// ---------------------------------------------------------------------------
// --perf-json: standalone before/after experiments-per-second measurement
// ---------------------------------------------------------------------------

/// Experiments/sec of one engine configuration on one kernel, measured
/// with a fixed experiment count after a short warmup. Single-threaded;
/// the campaign layer scales both configurations identically.
double measure_experiments_per_second(const std::string& kernel,
                                      EngineOptions options) {
  const kernels::Benchmark* bench = kernels::find_benchmark(kernel);
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::PureData, options);
  Rng rng(1234);
  for (unsigned i = 0; i < 20; ++i) engine.run_experiment(rng);

  using Clock = std::chrono::steady_clock;
  const unsigned kExperiments = 300;
  const auto start = Clock::now();
  for (unsigned i = 0; i < kExperiments; ++i) {
    const auto result = engine.run_experiment(rng);
    benchmark::DoNotOptimize(result.outcome);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(kExperiments) / seconds;
}

/// Experiments/sec and prune-savings counters of one kernel's
/// control-category engine with static pruning toggled.
struct PruneMeasurement {
  double experiments_per_second = 0.0;
  std::uint64_t adjudicated = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t remapped = 0;
  std::uint64_t static_sites = 0;
  std::uint64_t dead_bits = 0;
  std::uint64_t total_bits = 0;
};

PruneMeasurement measure_prune(const std::string& kernel, bool prune) {
  const kernels::Benchmark* bench = kernels::find_benchmark(kernel);
  EngineOptions options;
  options.static_prune = prune;
  InjectionEngine engine(bench->build(spmd::Target::avx(), 0),
                         analysis::FaultSiteCategory::Control, options);
  Rng rng(1234);
  for (unsigned i = 0; i < 20; ++i) engine.run_experiment(rng);

  PruneMeasurement m;
  m.static_sites = engine.eligible_static_sites();
  m.dead_bits = engine.prune_plan().dead_bit_count;
  m.total_bits = engine.prune_plan().total_bit_count;
  using Clock = std::chrono::steady_clock;
  const unsigned kExperiments = 300;
  const auto start = Clock::now();
  for (unsigned i = 0; i < kExperiments; ++i) {
    const auto result = engine.run_experiment(rng);
    benchmark::DoNotOptimize(result.outcome);
    if (result.statically_adjudicated) m.adjudicated += 1;
    if (result.memo_hit) m.memo_hits += 1;
    if (result.remapped) m.remapped += 1;
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  m.experiments_per_second = static_cast<double>(kExperiments) / seconds;
  return m;
}

int write_prune_json(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const char* kernels[] = {"dot", "stencil", "blackscholes"};
  std::fprintf(out,
               "{\n  \"bench\": \"campaign_prune_ab\",\n"
               "  \"category\": \"control\",\n"
               "  \"unit\": \"experiments_per_second\",\n"
               "  \"kernels\": [\n");
  unsigned count = 0;
  for (const char* kernel : kernels) {
    const PruneMeasurement off = measure_prune(kernel, false);
    const PruneMeasurement on = measure_prune(kernel, true);
    count += 1;
    std::fprintf(
        out,
        "    {\"kernel\": \"%s\", \"static_sites\": %llu, "
        "\"dead_bits\": %llu, \"total_bits\": %llu,\n"
        "     \"no_prune\": %.1f, \"prune\": %.1f, \"speedup\": %.2f,\n"
        "     \"adjudicated\": %llu, \"memo_hits\": %llu, "
        "\"remapped\": %llu}%s\n",
        kernel, static_cast<unsigned long long>(on.static_sites),
        static_cast<unsigned long long>(on.dead_bits),
        static_cast<unsigned long long>(on.total_bits),
        off.experiments_per_second, on.experiments_per_second,
        on.experiments_per_second / off.experiments_per_second,
        static_cast<unsigned long long>(on.adjudicated),
        static_cast<unsigned long long>(on.memo_hits),
        static_cast<unsigned long long>(on.remapped),
        count < sizeof(kernels) / sizeof(kernels[0]) ? "," : "");
    std::fprintf(stderr,
                 "prune-json: %-14s %9.1f -> %9.1f exp/s (%llu adjudicated, "
                 "%llu memoized of 300)\n",
                 kernel, off.experiments_per_second, on.experiments_per_second,
                 static_cast<unsigned long long>(on.adjudicated),
                 static_cast<unsigned long long>(on.memo_hits));
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "prune-json: wrote %s\n", path.c_str());
  return 0;
}

int write_perf_json(const std::string& path) {
  EngineOptions baseline;  // the configuration predating this work
  baseline.golden_cache = false;
  baseline.predecode = false;
  const EngineOptions fastpath;  // current defaults

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const char* kernels[] = {"dot", "stencil", "blackscholes"};
  std::fprintf(out,
               "{\n  \"bench\": \"experiment_throughput\",\n"
               "  \"unit\": \"experiments_per_second\",\n"
               "  \"kernels\": [\n");
  double log_speedup_sum = 0.0;
  unsigned count = 0;
  for (const char* kernel : kernels) {
    const double before = measure_experiments_per_second(kernel, baseline);
    const double after = measure_experiments_per_second(kernel, fastpath);
    const double speedup = after / before;
    log_speedup_sum += std::log(speedup);
    count += 1;
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"baseline\": %.1f, "
                 "\"fastpath\": %.1f, \"speedup\": %.2f}%s\n",
                 kernel, before, after, speedup,
                 count < sizeof(kernels) / sizeof(kernels[0]) ? "," : "");
    std::fprintf(stderr, "perf-json: %-14s %10.1f -> %10.1f exp/s (%.2fx)\n",
                 kernel, before, after, speedup);
  }
  const double geomean = std::exp(log_speedup_sum / count);
  std::fprintf(out, "  ],\n  \"speedup_geomean\": %.2f\n}\n", geomean);
  std::fclose(out);
  std::fprintf(stderr, "perf-json: geomean speedup %.2fx -> %s\n", geomean,
               path.c_str());
  return 0;
}

}  // namespace

// Custom main: peel off our --perf-json=PATH flag before google-benchmark
// sees the argument list (it rejects unknown flags), then run the regular
// registered benchmarks and, if requested, the JSON A/B measurement.
int main(int argc, char** argv) {
  std::string json_path;
  std::string prune_json_path;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--perf-json=";
    const std::string prune_prefix = "--prune-json=";
    if (arg.rfind(prefix, 0) == 0) {
      json_path = arg.substr(prefix.size());
      continue;
    }
    if (arg.rfind(prune_prefix, 0) == 0) {
      prune_json_path = arg.substr(prune_prefix.size());
      continue;
    }
    bench_args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) {
    const int status = write_perf_json(json_path);
    if (status != 0) return status;
  }
  if (!prune_json_path.empty()) return write_prune_json(prune_json_path);
  return 0;
}
