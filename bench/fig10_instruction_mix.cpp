// Reproduces Figure 10: the composition of vector and scalar instructions
// among fault-site-carrying instructions, per benchmark, per fault-site
// category (pure-data / control / address), per target ISA. The paper's
// headline: vector instructions average 67% of pure-data sites and 43% of
// control sites across the nine benchmarks.
#include <cstdio>

#include "analysis/instr_mix.hpp"
#include "bench_util.hpp"
#include "kernels/benchmark.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

using namespace vulfi;

constexpr analysis::FaultSiteCategory kCategories[] = {
    analysis::FaultSiteCategory::PureData,
    analysis::FaultSiteCategory::Control,
    analysis::FaultSiteCategory::Address,
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);

  std::printf("Figure 10: Composition of vector and scalar instructions\n");
  std::printf("(static census over fault-site instructions of each "
              "vectorized kernel)\n\n");

  TextTable table({"Benchmark", "Category", "Target", "Vector", "Scalar",
                   "Vector %"});

  // Running average of the vector share per category (paper: 67% pure
  // data, 43% control).
  double share_sum[3] = {0, 0, 0};
  unsigned share_count[3] = {0, 0, 0};

  for (const kernels::Benchmark* bench : kernels::all_benchmarks()) {
    if (!options.benchmark.empty() && bench->name() != options.benchmark) {
      continue;
    }
    for (const spmd::Target& target :
         {spmd::Target::avx(), spmd::Target::sse4()}) {
      RunSpec spec = bench->build(target, 0);
      const analysis::InstructionMix mix =
          analysis::instruction_mix(*spec.entry);
      for (std::size_t c = 0; c < 3; ++c) {
        const analysis::MixCount& count = mix.category(kCategories[c]);
        table.add_row(
            {bench->name(), analysis::category_name(kCategories[c]),
             target.name(), std::to_string(count.vector_instructions),
             std::to_string(count.scalar_instructions),
             pct(count.vector_fraction())});
        if (count.total() > 0) {
          share_sum[c] += count.vector_fraction();
          share_count[c] += 1;
        }
      }
    }
  }
  std::fputs(options.csv ? table.to_csv().c_str() : table.render().c_str(),
             stdout);

  std::printf("\nAverage vector share across benchmarks "
              "(paper: pure-data 67%%, control 43%%):\n");
  for (std::size_t c = 0; c < 3; ++c) {
    std::printf("  %-9s : %s\n", analysis::category_name(kCategories[c]),
                share_count[c]
                    ? pct(share_sum[c] / share_count[c]).c_str()
                    : "n/a");
  }
  return 0;
}
