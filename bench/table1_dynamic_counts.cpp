// Reproduces Table I: the benchmark list with language, test input, and
// the average dynamic instruction count per target ISA (averaged over the
// predefined input set, matching "Average Dynamic Instruction Count").
// Absolute counts differ from the paper (scaled inputs on an IR
// interpreter vs native x86); the per-benchmark ordering and the AVX/SSE
// relationship are the reproduced shape.
#include <cstdio>

#include "bench_util.hpp"
#include "interp/interpreter.hpp"
#include "kernels/benchmark.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

using namespace vulfi;

double average_dynamic_count(const kernels::Benchmark& bench,
                             const spmd::Target& target) {
  std::uint64_t total = 0;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    RunSpec spec = bench.build(target, input);
    interp::RuntimeEnv env;
    interp::Arena arena = spec.arena;
    interp::Interpreter interp(arena, env);
    const interp::ExecResult result = interp.run(*spec.entry, spec.args);
    if (!result.ok()) {
      std::fprintf(stderr, "%s input %u trapped: %s\n",
                   bench.name().c_str(), input, result.trap.detail.c_str());
      std::exit(1);
    }
    total += result.stats.total_instructions;
  }
  return static_cast<double>(total) / bench.num_inputs();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);

  std::printf("Table I: Benchmarks used in the fault injection study\n");
  std::printf("(average dynamic IR instruction count over the predefined "
              "input set)\n\n");

  TextTable table({"Suite", "Benchmark", "Language", "Test Input", "Target",
                   "Avg Dynamic Instr Count"});
  for (const kernels::Benchmark* bench : kernels::all_benchmarks()) {
    if (!options.benchmark.empty() && bench->name() != options.benchmark) {
      continue;
    }
    for (const spmd::Target& target :
         {spmd::Target::avx(), spmd::Target::sse4()}) {
      const double avg = average_dynamic_count(*bench, target);
      table.add_row({bench->suite(), bench->name(), bench->language(),
                     bench->input_desc(), target.name(),
                     with_commas(static_cast<unsigned long long>(avg))});
    }
  }
  std::fputs(options.csv ? table.to_csv().c_str() : table.render().c_str(),
             stdout);
  return 0;
}
