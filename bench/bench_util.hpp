// Shared helpers for the table/figure reproduction binaries: a minimal
// flag parser and the experiment-scale presets.
//
// Every binary accepts:
//   --full            paper-scale experiment counts (slow: the substrate
//                     is an interpreter, not a Core i7-4770)
//   --benchmark NAME  restrict to one benchmark
//   --seed N          base RNG seed
//   --jobs N          campaign worker threads (0 = hardware concurrency);
//                     statistics are bit-identical for every N
//   --csv             emit CSV instead of aligned text
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vulfi::bench {

struct Options {
  bool full = false;
  bool csv = false;
  std::string benchmark;  // empty = all
  std::uint64_t seed = 0x5eed;
  /// Campaign worker threads (CampaignConfig::num_threads): 0 = hardware
  /// concurrency, 1 = serial.
  unsigned jobs = 1;
  /// CampaignConfig::use_golden_cache; --no-golden-cache clears it
  /// (statistics are bit-identical either way).
  bool golden_cache = true;

  /// Campaigns per (benchmark, ISA, category) cell. Paper: 20 campaigns
  /// of 100 experiments (§IV-D).
  unsigned campaigns() const { return full ? 20 : 5; }
  unsigned experiments_per_campaign() const { return full ? 100 : 40; }
  /// Micro-benchmark detector study experiment count. Paper: 2000 per
  /// (micro, category) cell (§IV-E).
  unsigned micro_experiments() const { return full ? 2000 : 400; }
};

Options parse_options(int argc, char** argv);

}  // namespace vulfi::bench
