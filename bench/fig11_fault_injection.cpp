// Reproduces Figure 11: SDC / Benign / Crash rates per benchmark, per
// fault-site category, per target ISA, from statistically controlled
// fault-injection campaigns (paper §IV-D: campaigns of 100 experiments,
// repeated to a near-normal sample with 95%-confidence margin <= 3%;
// 9 x 2 x 3 x 2000 = 108,000 experiments at paper scale).
//
// Default scale is reduced (the substrate is an interpreter); pass --full
// for paper-scale campaigns. The reproduced *shape*: stencil and
// blackscholes highest SDC; swaptions and CG lowest; the address category
// crashes most; chebyshev's address-category SDC rate is its highest.
#include <cstdio>

#include "bench_util.hpp"
#include "support/barchart.hpp"
#include "kernels/benchmark.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/report.hpp"

namespace {

using namespace vulfi;

constexpr analysis::FaultSiteCategory kCategories[] = {
    analysis::FaultSiteCategory::PureData,
    analysis::FaultSiteCategory::Control,
    analysis::FaultSiteCategory::Address,
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);

  std::printf("Figure 11: Fault injection outcomes "
              "(%u campaigns x %u experiments per cell%s, --jobs %u)\n\n",
              options.campaigns(), options.experiments_per_campaign(),
              options.full ? ", paper scale" : "; use --full for paper scale",
              options.jobs);

  TextTable table({"Benchmark", "Category", "Target", "SDC", "Benign",
                   "Crash", "MoE(95%)", "Experiments",
                   "SDC(#) Benign(.) Crash(x)"});

  std::uint64_t total_experiments = 0;
  double total_wall_seconds = 0.0;

  for (const kernels::Benchmark* bench : kernels::all_benchmarks()) {
    if (!options.benchmark.empty() && bench->name() != options.benchmark) {
      continue;
    }
    for (const spmd::Target& target :
         {spmd::Target::avx(), spmd::Target::sse4()}) {
      for (analysis::FaultSiteCategory category : kCategories) {
        // One engine per predefined input; experiments draw uniformly.
        std::vector<std::unique_ptr<InjectionEngine>> engines;
        std::vector<InjectionEngine*> engine_ptrs;
        for (unsigned input = 0; input < bench->num_inputs(); ++input) {
          engines.push_back(std::make_unique<InjectionEngine>(
              bench->build(target, input), category));
          engine_ptrs.push_back(engines.back().get());
        }
        CampaignConfig config;
        config.experiments_per_campaign =
            options.experiments_per_campaign();
        config.min_campaigns = options.campaigns();
        config.max_campaigns = options.campaigns() * 2;
        config.seed = options.seed ^
                      (std::hash<std::string>{}(bench->name()) +
                       static_cast<std::uint64_t>(category) * 131 +
                       (target.isa == ir::Isa::AVX ? 0 : 7));
        config.num_threads = options.jobs;
        config.use_golden_cache = options.golden_cache;
        const CampaignResult result = run_campaigns(engine_ptrs, config);
        total_experiments += result.throughput.experiments;
        total_wall_seconds += result.throughput.wall_seconds;
        table.add_row({bench->name(), analysis::category_name(category),
                       target.name(), pct(result.sdc_rate()),
                       pct(result.benign_rate()), pct(result.crash_rate()),
                       strf("±%.2f%%", result.margin_of_error * 100.0),
                       std::to_string(result.experiments),
                       stacked_bar({{result.sdc_rate(), '#'},
                                    {result.benign_rate(), '.'},
                                    {result.crash_rate(), 'x'}},
                                   30)});
        std::fprintf(stderr, "  done: %s/%s/%s (%s)\n",
                     bench->name().c_str(),
                     analysis::category_name(category), target.name(),
                     render_throughput(result.throughput).c_str());
      }
    }
  }
  std::fputs(options.csv ? table.to_csv().c_str() : table.render().c_str(),
             stdout);
  if (total_wall_seconds > 0.0) {
    std::printf("\ntotal: %llu experiments in %.2fs (%.1f/sec)\n",
                static_cast<unsigned long long>(total_experiments),
                total_wall_seconds,
                static_cast<double>(total_experiments) / total_wall_seconds);
  }
  return 0;
}
