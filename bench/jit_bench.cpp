// JIT backend A/B benchmark (BENCH_PR7.json).
//
// Measures the template JIT against the PR2 fast path (pre-decoded
// interpreter + golden-run memoization + static prune) on the paper's
// control-category kernels: identical engines, identical seeds, the only
// variable is CampaignConfig::backend. Reports clean-run latency (pure
// execution, runtime idle) and end-to-end campaign throughput, and
// verifies the acceptance contract along the way: statistics must be
// byte-identical between backends and the campaign speedup must clear
// the floor on at least two control kernels.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "jit/backend.hpp"
#include "kernels/benchmark.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/report.hpp"

namespace {

using namespace vulfi;
using Clock = std::chrono::steady_clock;

constexpr double kSpeedupFloor = 5.0;
constexpr unsigned kFloorKernels = 2;

struct KernelResult {
  std::string kernel;
  bool native = false;
  double interp_clean_us = 0.0;
  double jit_clean_us = 0.0;
  double interp_eps = 0.0;  // campaign experiments/sec
  double jit_eps = 0.0;
  double campaign_speedup = 0.0;
  bool stats_identical = false;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::unique_ptr<InjectionEngine> make_engine(const kernels::Benchmark& bench,
                                             interp::ExecMode backend) {
  auto engine = std::make_unique<InjectionEngine>(
      bench.build(spmd::Target::avx(), 0),
      analysis::FaultSiteCategory::Control);
  engine->set_backend(backend);
  return engine;
}

/// Mean clean-run latency in microseconds: the pure execution cost with
/// the injection runtime idle, after a warm-up run that pays decode (or
/// compile) once, the way a campaign amortizes it.
double clean_run_us(InjectionEngine& engine, unsigned repeats) {
  engine.run_clean();  // decode/compile warm-up, outside the timed region
  const auto start = Clock::now();
  for (unsigned i = 0; i < repeats; ++i) engine.run_clean();
  return seconds_since(start) * 1e6 / repeats;
}

struct CampaignSide {
  double eps = 0.0;
  std::string stats;
};

CampaignSide run_side(const kernels::Benchmark& bench,
                      interp::ExecMode backend, bool full) {
  CampaignConfig config;
  config.experiments_per_campaign = full ? 200 : 100;
  config.min_campaigns = full ? 20 : 10;
  config.max_campaigns = config.min_campaigns;
  config.seed = 0x5eed;
  config.backend = backend;
  std::unique_ptr<InjectionEngine> engine = make_engine(bench, backend);
  std::vector<InjectionEngine*> engines = {engine.get()};
  const auto start = Clock::now();
  const CampaignResult result = run_campaigns(engines, config);
  const double seconds = seconds_since(start);
  CampaignSide side;
  const double experiments =
      static_cast<double>(config.experiments_per_campaign) *
      config.min_campaigns;
  side.eps = seconds > 0.0 ? experiments / seconds : 0.0;
  side.stats = campaign_stats_json(result);
  return side;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::string json_path = "BENCH_PR7.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else {
      json_path = arg;
    }
  }

  if (!jit::JitExecutor::available()) {
    // No executable memory (hardened mmap): nothing to measure, and the
    // fallback path is already covered by ctest. Report and succeed.
    std::fprintf(stderr, "jit-bench: executable memory unavailable, "
                         "skipping (interp fallback verified by tests)\n");
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(out, "{\"bench\": \"jit_campaign_ab\", "
                        "\"jit_available\": false, \"kernels\": []}\n");
      std::fclose(out);
    }
    return 0;
  }

  const std::vector<const char*> names = {"dot", "stencil", "blackscholes",
                                          "jacobi"};
  std::vector<KernelResult> results;
  for (const char* name : names) {
    const kernels::Benchmark* bench = kernels::find_benchmark(name);
    KernelResult r;
    r.kernel = name;

    {  // Clean-run latency: interpreter vs compiled code, runtime idle.
      const unsigned repeats = full ? 400 : 100;
      auto interp_engine = make_engine(*bench, interp::ExecMode::PreDecoded);
      r.interp_clean_us = clean_run_us(*interp_engine, repeats);
      auto jit_engine = make_engine(*bench, interp::ExecMode::Jit);
      r.jit_clean_us = clean_run_us(*jit_engine, repeats);
      r.native = jit_engine->jit_backend() != nullptr &&
                 jit_engine->jit_backend()->native_runs() > 0;
    }

    const CampaignSide interp_side =
        run_side(*bench, interp::ExecMode::PreDecoded, full);
    const CampaignSide jit_side = run_side(*bench, interp::ExecMode::Jit, full);
    r.interp_eps = interp_side.eps;
    r.jit_eps = jit_side.eps;
    r.campaign_speedup =
        interp_side.eps > 0.0 ? jit_side.eps / interp_side.eps : 0.0;
    r.stats_identical = interp_side.stats == jit_side.stats;

    std::fprintf(stderr,
                 "jit-bench: %-12s %s  clean %8.1fus -> %8.1fus (%.2fx)  "
                 "campaign %8.1f -> %8.1f exp/s (%.2fx)  stats %s\n",
                 r.kernel.c_str(), r.native ? "native  " : "fallback",
                 r.interp_clean_us, r.jit_clean_us,
                 r.jit_clean_us > 0.0 ? r.interp_clean_us / r.jit_clean_us
                                      : 0.0,
                 r.interp_eps, r.jit_eps, r.campaign_speedup,
                 r.stats_identical ? "identical" : "DIVERGED");
    results.push_back(r);
  }

  unsigned over_floor = 0;
  bool all_identical = true;
  for (const KernelResult& r : results) {
    if (r.campaign_speedup >= kSpeedupFloor) over_floor += 1;
    all_identical = all_identical && r.stats_identical;
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"jit_campaign_ab\",\n"
               "  \"jit_available\": true,\n"
               "  \"category\": \"control\",\n"
               "  \"unit\": \"experiments_per_second\",\n"
               "  \"kernels\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(
        out,
        "    {\"kernel\": \"%s\", \"native\": %s,\n"
        "     \"clean_interp_us\": %.1f, \"clean_jit_us\": %.1f,\n"
        "     \"interp\": %.1f, \"jit\": %.1f, \"speedup\": %.2f,\n"
        "     \"stats_identical\": %s}%s\n",
        r.kernel.c_str(), r.native ? "true" : "false", r.interp_clean_us,
        r.jit_clean_us, r.interp_eps, r.jit_eps, r.campaign_speedup,
        r.stats_identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "jit-bench: wrote %s\n", json_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr, "jit-bench: FAIL — statistics diverged between "
                         "backends\n");
    return 1;
  }
  if (over_floor < kFloorKernels) {
    std::fprintf(stderr,
                 "jit-bench: FAIL — only %u kernels cleared the %.1fx "
                 "campaign speedup floor (need %u)\n",
                 over_floor, kSpeedupFloor, kFloorKernels);
    return 1;
  }
  return 0;
}
