// Reproduces Figure 12: the foreach-invariant detector study on the three
// micro-benchmarks (vector copy, dot product, vector sum). For each
// (micro, category) cell: average detector overhead, SDC rate, and SDC
// detection rate over 2000 fault-injection experiments at paper scale
// (§IV-E; default scale reduced, --full for 2000).
//
// Reproduced shape: 0% detection for pure-data faults (the loop iterator
// can never be a pure-data site — paper's hypothesis via Figure 2),
// highest SDC and detection under the control category (paper: ~96-100%
// SDC, ~49-58% detection), lower SDC under address (crashes dominate),
// and single-digit-percent average overhead.
//
// Overhead here is the dynamic-instruction overhead of the detector block
// (deterministic analogue of the paper's wall-clock overhead on short
// loop bodies).
#include <cstdio>

#include "bench_util.hpp"
#include "support/barchart.hpp"
#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "kernels/benchmark.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

namespace {

using namespace vulfi;

constexpr analysis::FaultSiteCategory kCategories[] = {
    analysis::FaultSiteCategory::PureData,
    analysis::FaultSiteCategory::Control,
    analysis::FaultSiteCategory::Address,
};

/// Dynamic-instruction overhead of the inserted detector blocks,
/// averaged across the predefined inputs (uninstrumented runs).
double detector_overhead(const kernels::Benchmark& bench,
                         const spmd::Target& target) {
  double ratio_sum = 0.0;
  for (unsigned input = 0; input < bench.num_inputs(); ++input) {
    RunSpec plain = bench.build(target, input);
    RunSpec with_det = bench.build(target, input);
    detect::insert_foreach_detectors(*with_det.module);

    auto run = [](RunSpec& spec) {
      interp::RuntimeEnv env;
      interp::DetectionLog log;
      detect::attach_detector_runtime(env, log);
      interp::Arena arena = spec.arena;
      interp::Interpreter interp(arena, env);
      return interp.run(*spec.entry, spec.args).stats.total_instructions;
    };
    const double base = static_cast<double>(run(plain));
    const double detected = static_cast<double>(run(with_det));
    ratio_sum += (detected - base) / base;
  }
  return ratio_sum / bench.num_inputs();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const spmd::Target target = spmd::Target::avx();

  std::printf("Figure 12: SDC detection with foreach-invariant detectors "
              "(%u experiments per cell%s, --jobs %u)\n\n",
              options.micro_experiments(),
              options.full ? ", paper scale" : "; use --full for paper scale",
              options.jobs);

  TextTable table({"Micro-benchmark", "Category", "Avg Overhead", "SDC",
                   "Crash", "SDC Detection Rate", "SDC(#) Detected(D)"});

  for (const kernels::Benchmark* bench : kernels::micro_benchmarks()) {
    if (!options.benchmark.empty() && bench->name() != options.benchmark) {
      continue;
    }
    const double overhead = detector_overhead(*bench, target);
    for (analysis::FaultSiteCategory category : kCategories) {
      std::vector<std::unique_ptr<InjectionEngine>> engines;
      std::vector<InjectionEngine*> engine_ptrs;
      for (unsigned input = 0; input < bench->num_inputs(); ++input) {
        RunSpec spec = bench->build(target, input);
        detect::insert_foreach_detectors(*spec.module);
        engines.push_back(
            std::make_unique<InjectionEngine>(std::move(spec), category));
        engines.back()->setup_runtime(
            [](interp::RuntimeEnv& env, interp::DetectionLog& log) {
              detect::attach_detector_runtime(env, log);
            });
        engine_ptrs.push_back(engines.back().get());
      }

      // One campaign holding the cell's full experiment budget; the
      // campaign executor distributes it across --jobs workers.
      CampaignConfig config;
      config.experiments_per_campaign = options.micro_experiments();
      config.min_campaigns = 1;
      config.max_campaigns = 1;
      config.seed = options.seed ^
                    (std::hash<std::string>{}(bench->name()) +
                     static_cast<std::uint64_t>(category) * 193);
      config.num_threads = options.jobs;
      config.use_golden_cache = options.golden_cache;
      const CampaignResult result = run_campaigns(engine_ptrs, config);

      const double sdc_rate = result.sdc_rate();
      const double crash_rate = result.crash_rate();
      const double detection = result.sdc_detection_rate();
      table.add_row({bench->name(), analysis::category_name(category),
                     pct(overhead), pct(sdc_rate), pct(crash_rate),
                     pct(detection),
                     stacked_bar({{sdc_rate * detection, 'D'},
                                  {sdc_rate * (1.0 - detection), '#'}},
                                 30)});
      std::fprintf(stderr, "  done: %s/%s\n", bench->name().c_str(),
                   analysis::category_name(category));
    }
  }
  std::fputs(options.csv ? table.to_csv().c_str() : table.render().c_str(),
             stdout);
  return 0;
}
