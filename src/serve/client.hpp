// Client side of the campaign service: `vulfi submit/ping/shutdown` and
// the serve-mode tests are thin wrappers over these calls.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serve/protocol.hpp"
#include "support/cancel.hpp"

namespace vulfi::serve {

/// Streaming hooks for a submit. `on_record` receives each sealed
/// journal line exactly as a checkpoint file would store it (header
/// first, then campaign records) — append them to a file and you hold a
/// resumable checkpoint. `on_log` receives watchdog diagnostics.
/// When `cancel` is set, the stream loop polls it between frames and, on
/// the first cancelled() observation, sends {"op":"cancel"} on the same
/// connection — the server drains cooperatively and the stream still
/// ends with a "done" frame (exit 5, interrupted).
struct StreamCallbacks {
  std::function<void(const std::string&)> on_record;
  std::function<void(const std::string&)> on_log;
  const CancellationToken* cancel = nullptr;
};

struct SubmitOutcome {
  /// A "done" frame arrived; exit_code/stats_json are meaningful.
  bool ok = false;
  /// Transport or server-side failure description when !ok (connection
  /// refused, busy daemon, malformed request, dropped mid-stream, ...).
  std::string error;
  /// True specifically when the daemon answered "busy" (backpressure) —
  /// the caller may retry later; nothing was scheduled.
  bool busy = false;

  std::uint64_t id = 0;
  std::size_t engines = 0;
  bool cache_hit = false;
  std::uint64_t records = 0;  ///< campaign records streamed

  int exit_code = 3;  // kCampaignExitInternalError until done says else
  bool converged = false;
  bool interrupted = false;
  std::string server_error;  ///< "error" field of the done frame
  std::string stats_json;    ///< deterministic campaign_stats_json
  /// Submission attempts made (>= 1); > 1 only under a retrying submit
  /// that saw "busy" responses.
  unsigned attempts = 1;
};

/// Backoff policy for retrying a "busy" daemon response. Waits
/// min(cap, base * 2^(attempt-1)) + jitter[0, base) between attempts,
/// gives up once the total wait would exceed `max_total_ms`, and never
/// retries anything but "busy" — errors and dropped streams are not
/// idempotent-safe to resubmit blindly.
struct RetryPolicy {
  unsigned attempts = 1;       ///< total tries (1 = no retry)
  unsigned base_ms = 200;      ///< backoff base (and jitter bound)
  unsigned cap_ms = 10000;     ///< per-wait ceiling
  unsigned max_total_ms = 60000;  ///< cumulative wait budget
  std::uint64_t jitter_seed = 0;  ///< deterministic jitter stream
};

/// Submits one campaign and blocks until its "done" frame (or failure).
/// `frame_timeout_ms` bounds the silence between consecutive frames, not
/// the whole campaign — the server streams a record per completed
/// campaign, so a healthy run is never silent for long.
SubmitOutcome submit_campaign(const std::string& socket_path,
                              const CampaignRequest& request,
                              const StreamCallbacks& callbacks = {},
                              int frame_timeout_ms = 600000);

/// Sends an already-serialized request payload and streams frames until
/// "done". Backs submit_campaign and submit_diff (serve/diff.hpp) — the
/// response grammar is shared across ops.
SubmitOutcome submit_payload(const std::string& socket_path,
                             const std::string& payload,
                             const StreamCallbacks& callbacks = {},
                             int frame_timeout_ms = 600000);

/// submit_payload with retry-on-busy (exponential backoff + jitter per
/// `policy`). The outcome's `attempts` reports how many submissions ran;
/// on final busy failure the error names the attempt count and total
/// wait. CLI surface: `vulfi submit --retry N --retry-base-ms M`.
SubmitOutcome submit_payload_with_retry(const std::string& socket_path,
                                        const std::string& payload,
                                        const RetryPolicy& policy,
                                        const StreamCallbacks& callbacks = {},
                                        int frame_timeout_ms = 600000);

/// submit_campaign with retry-on-busy; see submit_payload_with_retry.
SubmitOutcome submit_campaign_with_retry(
    const std::string& socket_path, const CampaignRequest& request,
    const RetryPolicy& policy, const StreamCallbacks& callbacks = {},
    int frame_timeout_ms = 600000);

/// Pings the daemon. On success returns the daemon's pong payload
/// (protocol version + build fingerprint); nullopt with `error` set
/// otherwise.
std::optional<std::string> ping_server(const std::string& socket_path,
                                       std::string* error = nullptr,
                                       int timeout_ms = 5000);

/// Fetches the daemon's scheduler/cache statistics payload.
std::optional<std::string> server_stats(const std::string& socket_path,
                                        std::string* error = nullptr,
                                        int timeout_ms = 5000);

/// Asks the daemon to drain and exit; blocks until its "bye" frame.
/// `completed` (when non-null) receives the daemon's served count.
bool shutdown_server(const std::string& socket_path,
                     std::uint64_t* completed = nullptr,
                     std::string* error = nullptr,
                     int timeout_ms = 600000);

}  // namespace vulfi::serve
