#include "serve/diff.hpp"

#include <utility>

#include "analysis/propagation.hpp"
#include "kernels/benchmark.hpp"
#include "serve/client.hpp"
#include "spmd/target.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"
#include "vulfi/campaign.hpp"

namespace vulfi::serve {

namespace {

spmd::Target target_of(const std::string& isa) {
  return isa == "avx" ? spmd::Target::avx() : spmd::Target::sse4();
}

void log_line(const DiffOptions& options, const std::string& message) {
  if (options.log) options.log(message);
}

/// Default unit set: the three §IV-E micro-benchmarks.
std::vector<std::string> default_units() {
  std::vector<std::string> names;
  for (const kernels::Benchmark* bench : kernels::micro_benchmarks()) {
    names.push_back(bench->name());
  }
  return names;
}

/// Latest summary for (unit, config) — any content hash — in append
/// order. This is the regression baseline: "what did this unit score the
/// last time it was summarized, whatever its code was then".
const FunctionSummary* latest_for_unit(
    const std::vector<FunctionSummary>& records, const std::string& unit,
    std::uint64_t config_fingerprint) {
  const FunctionSummary* found = nullptr;
  for (const FunctionSummary& record : records) {
    if (record.unit == unit &&
        record.config_fingerprint == config_fingerprint) {
      found = &record;
    }
  }
  return found;
}

std::string census_json(const PropagationCensus& census) {
  return strf(
      "{\"masked\":%llu,\"output\":%llu,\"control\":%llu,\"trap\":%llu}",
      static_cast<unsigned long long>(census.masked),
      static_cast<unsigned long long>(census.output),
      static_cast<unsigned long long>(census.control),
      static_cast<unsigned long long>(census.trap));
}

std::string composed_json(const ComposedEstimate& composed) {
  return strf(
      "{\"units\":%llu,\"weight\":%llu,\"experiments\":%llu,"
      "\"sdc\":\"%s\",\"benign\":\"%s\",\"crash\":\"%s\","
      "\"sdc_ci\":[\"%s\",\"%s\"],\"census\":%s}",
      static_cast<unsigned long long>(composed.units),
      static_cast<unsigned long long>(composed.total_weight),
      static_cast<unsigned long long>(composed.experiments),
      double_hex(composed.sdc_rate).c_str(),
      double_hex(composed.benign_rate).c_str(),
      double_hex(composed.crash_rate).c_str(),
      double_hex(composed.sdc_low).c_str(),
      double_hex(composed.sdc_high).c_str(),
      census_json(composed.census).c_str());
}

}  // namespace

DiffReport run_diff(const DiffOptions& options) {
  DiffReport report;
  auto fail = [&report](int exit_code, std::string message) {
    report.error = std::move(message);
    report.exit_code = exit_code;
    return report;
  };

  if (options.store_dir.empty()) {
    return fail(2, "diff: --store DIR is required");
  }

  SummaryStore store;
  std::string store_error;
  if (!store.open(options.store_dir, &store_error)) {
    return fail(3, store_error);  // schema/build refusal contract
  }

  // The regression baseline: a separate store when --against names one,
  // otherwise this store's own pre-run records.
  std::vector<FunctionSummary> baseline_records;
  if (!options.against_dir.empty()) {
    SummaryStore baseline_store;
    if (!baseline_store.open_read_only(options.against_dir, &store_error)) {
      return fail(3, store_error);
    }
    baseline_records = baseline_store.records();
  } else {
    baseline_records = store.records();
  }

  const std::vector<std::string> units =
      options.units.empty() ? default_units() : options.units;

  CampaignConfig config = to_campaign_config(options.request, options.max_jobs);
  // The summary store is the persistence layer here; a per-unit campaign
  // checkpoint would collide across units.
  config.checkpoint_path.clear();
  config.cancel = options.cancel;
  if (options.log) {
    config.stall_log = options.log;
  }
  const std::uint64_t fingerprint = summary_config_fingerprint(
      config, options.request.category, options.request.isa,
      options.request.detectors);

  EngineCache local_cache(/*max_entries=*/units.size() + 1);
  EngineCache* cache = options.cache != nullptr ? options.cache : &local_cache;
  const spmd::Target target = target_of(options.request.isa);

  for (const std::string& unit : units) {
    const kernels::Benchmark* bench = kernels::find_benchmark(unit);
    if (bench == nullptr) {
      return fail(2, strf("diff: unknown unit '%s' (try: vulfi list)",
                          unit.c_str()));
    }

    // Canonical unit identity: the content hashes of the pristine kernel
    // modules for every predefined input, folded in input order. Stable
    // under renaming and rebuilds; changed by any semantic kernel edit.
    Fnv1a unit_hash;
    std::vector<RunSpec> specs;
    specs.reserve(bench->num_inputs());
    for (unsigned input = 0; input < bench->num_inputs(); ++input) {
      specs.push_back(bench->build(target, input));
      unit_hash.u64(analysis::module_content_hash(*specs.back().module));
    }

    DiffUnitOutcome outcome;
    outcome.unit = unit;
    outcome.content_hash = unit_hash.value();

    if (const FunctionSummary* baseline = latest_for_unit(
            baseline_records, unit, fingerprint)) {
      outcome.has_baseline = true;
      outcome.baseline = *baseline;
    }

    if (const FunctionSummary* stored =
            store.find(unit, outcome.content_hash, fingerprint)) {
      // Unchanged content under the same configuration: the stored
      // summary IS this unit's campaign outcome — zero new experiments.
      outcome.reused = true;
      outcome.summary = *stored;
      log_line(options, strf("unit %s: unchanged (hash %s), reusing stored "
                             "summary (%llu experiments on record)",
                             unit.c_str(),
                             hash_hex(outcome.content_hash).c_str(),
                             static_cast<unsigned long long>(
                                 stored->experiments)));
      report.units.push_back(std::move(outcome));
      continue;
    }

    log_line(options, strf("unit %s: %s (hash %s), injecting", unit.c_str(),
                           outcome.has_baseline ? "changed" : "new",
                           hash_hex(outcome.content_hash).c_str()));

    CampaignRequest unit_request = options.request;
    unit_request.benchmark = unit;
    unit_request.checkpoint.clear();
    EngineCache::Lease lease = cache->acquire(unit_request);
    if (!lease.ok()) {
      return fail(3, strf("diff: unit %s: %s", unit.c_str(),
                          lease.error.c_str()));
    }

    std::vector<InjectionEngine*> engines;
    engines.reserve(lease.engines.size());
    for (const auto& engine : lease.engines) engines.push_back(engine.get());

    const CampaignResult result = run_campaigns(engines, config);
    if (!result.ok()) {
      return fail(3, strf("diff: unit %s: %s", unit.c_str(),
                          result.error.c_str()));
    }
    if (result.interrupted) {
      report.interrupted = true;
      report.error = strf("diff: interrupted during unit %s — completed "
                          "units were stored, this one was not",
                          unit.c_str());
      report.exit_code = kCampaignExitInterrupted;
      return report;
    }

    FunctionSummary summary;
    summary.unit = unit;
    summary.content_hash = outcome.content_hash;
    summary.config_fingerprint = fingerprint;
    summary.experiments = result.experiments;
    summary.benign = result.benign;
    summary.sdc = result.sdc;
    summary.crash = result.crash;
    summary.detected_sdc = result.detected_sdc;
    summary.detected_total = result.detected_total;
    summary.campaigns = result.campaigns;
    summary.exit_code = campaign_exit_code(result);
    // Composition weight: the unit's share of whole-program dynamic
    // fault sites, summed over its predefined inputs' golden runs.
    for (InjectionEngine* engine : engines) {
      summary.weight += engine->golden().dynamic_sites;
    }
    // Static propagation census over the same pristine modules the
    // content hash covers.
    for (const RunSpec& spec : specs) {
      const PropagationCensus part = propagation_census(*spec.module);
      summary.census.masked += part.masked;
      summary.census.output += part.output;
      summary.census.control += part.control;
      summary.census.trap += part.trap;
    }

    if (!store.append(summary)) {
      return fail(3, strf("diff: unit %s: summary store append failed "
                          "(disk full?)", unit.c_str()));
    }

    outcome.new_experiments =
        result.experiments - result.experiments_restored;
    report.new_experiments += outcome.new_experiments;
    outcome.summary = std::move(summary);
    report.units.push_back(std::move(outcome));
  }

  // Whole-program composition, and the same over the baseline records
  // for the per-category regression deltas.
  std::vector<FunctionSummary> parts;
  std::vector<FunctionSummary> baseline_parts;
  for (const DiffUnitOutcome& outcome : report.units) {
    parts.push_back(outcome.summary);
    if (outcome.has_baseline) baseline_parts.push_back(outcome.baseline);
  }
  report.composed = compose_summaries(parts, options.request.confidence);
  if (!baseline_parts.empty()) {
    report.has_baseline = true;
    report.baseline_composed =
        compose_summaries(baseline_parts, options.request.confidence);
  }
  return report;
}

std::string diff_report_json(const DiffReport& report) {
  std::string json = strf(
      "{\"t\":\"diff\",\"schema\":%u,\"new_experiments\":%llu,"
      "\"interrupted\":%u,\"units\":[",
      kSummarySchemaVersion,
      static_cast<unsigned long long>(report.new_experiments),
      report.interrupted ? 1u : 0u);
  for (std::size_t i = 0; i < report.units.size(); ++i) {
    const DiffUnitOutcome& outcome = report.units[i];
    const FunctionSummary& s = outcome.summary;
    if (i > 0) json += ",";
    json += strf(
        "{\"unit\":\"%s\",\"hash\":\"%s\",\"reused\":%u,"
        "\"new_experiments\":%llu,\"exp\":%llu,\"benign\":%llu,"
        "\"sdc\":%llu,\"crash\":%llu,\"campaigns\":%llu,\"weight\":%llu,"
        "\"exit\":%d,\"sdc_rate\":\"%s\",\"census\":%s",
        json_escape(outcome.unit).c_str(),
        hash_hex(outcome.content_hash).c_str(), outcome.reused ? 1u : 0u,
        static_cast<unsigned long long>(outcome.new_experiments),
        static_cast<unsigned long long>(s.experiments),
        static_cast<unsigned long long>(s.benign),
        static_cast<unsigned long long>(s.sdc),
        static_cast<unsigned long long>(s.crash),
        static_cast<unsigned long long>(s.campaigns),
        static_cast<unsigned long long>(s.weight), s.exit_code,
        double_hex(s.sdc_rate()).c_str(), census_json(s.census).c_str());
    if (outcome.has_baseline) {
      const FunctionSummary& b = outcome.baseline;
      json += strf(
          ",\"baseline\":{\"hash\":\"%s\",\"exp\":%llu,\"benign\":%llu,"
          "\"sdc\":%llu,\"crash\":%llu,\"sdc_rate\":\"%s\"},"
          "\"delta\":{\"sdc\":\"%s\",\"benign\":\"%s\",\"crash\":\"%s\"}",
          hash_hex(b.content_hash).c_str(),
          static_cast<unsigned long long>(b.experiments),
          static_cast<unsigned long long>(b.benign),
          static_cast<unsigned long long>(b.sdc),
          static_cast<unsigned long long>(b.crash),
          double_hex(b.sdc_rate()).c_str(),
          double_hex(s.sdc_rate() - b.sdc_rate()).c_str(),
          double_hex(s.benign_rate() - b.benign_rate()).c_str(),
          double_hex(s.crash_rate() - b.crash_rate()).c_str());
    }
    json += "}";
  }
  json += "],\"composed\":" + composed_json(report.composed);
  if (report.has_baseline) {
    json += ",\"baseline\":" + composed_json(report.baseline_composed);
    json += strf(
        ",\"delta\":{\"sdc\":\"%s\",\"benign\":\"%s\",\"crash\":\"%s\"}",
        double_hex(report.composed.sdc_rate -
                   report.baseline_composed.sdc_rate)
            .c_str(),
        double_hex(report.composed.benign_rate -
                   report.baseline_composed.benign_rate)
            .c_str(),
        double_hex(report.composed.crash_rate -
                   report.baseline_composed.crash_rate)
            .c_str());
  }
  json += "}";
  return json;
}

std::string render_diff_report(const DiffReport& report) {
  std::string out;
  out += strf("incremental resilience diff: %zu unit%s, %llu new "
              "experiment%s\n",
              report.units.size(), report.units.size() == 1 ? "" : "s",
              static_cast<unsigned long long>(report.new_experiments),
              report.new_experiments == 1 ? "" : "s");
  for (const DiffUnitOutcome& outcome : report.units) {
    const FunctionSummary& s = outcome.summary;
    out += strf("  %-16s %-9s exp %-7llu SDC %.4f  Benign %.4f  "
                "Crash %.4f",
                outcome.unit.c_str(),
                outcome.reused ? "reused" : "injected",
                static_cast<unsigned long long>(s.experiments), s.sdc_rate(),
                s.benign_rate(), s.crash_rate());
    if (outcome.has_baseline) {
      out += strf("  dSDC %+.4f", s.sdc_rate() - outcome.baseline.sdc_rate());
    }
    out += "\n";
  }
  const ComposedEstimate& c = report.composed;
  out += strf("program (weighted by %llu golden dynamic sites):\n",
              static_cast<unsigned long long>(c.total_weight));
  out += strf("  SDC %.4f [%.4f, %.4f]  Benign %.4f  Crash %.4f\n",
              c.sdc_rate, c.sdc_low, c.sdc_high, c.benign_rate, c.crash_rate);
  if (report.has_baseline) {
    const ComposedEstimate& b = report.baseline_composed;
    out += strf("  vs baseline: SDC %+.4f  Benign %+.4f  Crash %+.4f\n",
                c.sdc_rate - b.sdc_rate, c.benign_rate - b.benign_rate,
                c.crash_rate - b.crash_rate);
  }
  out += strf("propagation census (site bits): masked %llu  output %llu  "
              "control %llu  trap %llu\n",
              static_cast<unsigned long long>(c.census.masked),
              static_cast<unsigned long long>(c.census.output),
              static_cast<unsigned long long>(c.census.control),
              static_cast<unsigned long long>(c.census.trap));
  return out;
}

// --- wire protocol ---------------------------------------------------------

std::string serialize_diff_request(const DiffRequest& request) {
  std::string payload =
      "{\"op\":\"diff\"," + campaign_fields_json(request.campaign);
  payload += strf(",\"units\":\"%s\",\"store\":\"%s\"",
                  json_escape(join(request.units, ",")).c_str(),
                  json_escape(request.store).c_str());
  if (!request.against.empty()) {
    payload += strf(",\"against\":\"%s\"",
                    json_escape(request.against).c_str());
  }
  payload += "}";
  return payload;
}

std::optional<DiffRequest> parse_diff_request(const std::string& payload,
                                              std::string* error) {
  DiffRequest request;
  if (!parse_campaign_fields(payload, &request.campaign, error, "diff")) {
    return std::nullopt;
  }
  const std::string units = journal_str(payload, "units").value_or("");
  std::string current;
  for (const char c : units) {
    if (c == ',') {
      if (!current.empty()) request.units.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) request.units.push_back(std::move(current));
  request.store = journal_str(payload, "store").value_or("");
  if (request.store.empty()) {
    if (error != nullptr) *error = "diff: missing store";
    return std::nullopt;
  }
  request.against = journal_str(payload, "against").value_or("");
  return request;
}

SubmitOutcome submit_diff(const std::string& socket_path,
                          const DiffRequest& request,
                          const StreamCallbacks& callbacks,
                          int frame_timeout_ms) {
  return submit_payload(socket_path, serialize_diff_request(request),
                        callbacks, frame_timeout_ms);
}

}  // namespace vulfi::serve
