#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/journal.hpp"
#include "support/rng.hpp"
#include "support/socket.hpp"
#include "support/str.hpp"

namespace vulfi::serve {

namespace {

/// Connects and performs one request → one response exchange.
std::optional<std::string> roundtrip(const std::string& socket_path,
                                     const std::string& request,
                                     const std::string& expect_t,
                                     std::string* error, int timeout_ms) {
  std::string connect_error;
  UnixConn conn = UnixConn::connect_to(socket_path, &connect_error);
  if (!conn.ok()) {
    if (error != nullptr) *error = connect_error;
    return std::nullopt;
  }
  if (!conn.send_frame(request)) {
    if (error != nullptr) *error = "send failed";
    return std::nullopt;
  }
  std::string why;
  const std::optional<std::string> reply = conn.recv_frame(timeout_ms, &why);
  if (!reply) {
    if (error != nullptr) *error = "no reply (" + why + ")";
    return std::nullopt;
  }
  const std::string t = journal_str(*reply, "t").value_or("");
  if (t != expect_t) {
    if (error != nullptr) {
      *error = strf("unexpected reply '%s' (wanted '%s')", t.c_str(),
                    expect_t.c_str());
    }
    return std::nullopt;
  }
  return reply;
}

}  // namespace

SubmitOutcome submit_payload(const std::string& socket_path,
                             const std::string& payload,
                             const StreamCallbacks& callbacks,
                             int frame_timeout_ms) {
  SubmitOutcome outcome;
  std::string connect_error;
  UnixConn conn = UnixConn::connect_to(socket_path, &connect_error);
  if (!conn.ok()) {
    outcome.error = connect_error;
    return outcome;
  }
  if (!conn.send_frame(payload)) {
    outcome.error = "send failed";
    return outcome;
  }

  // With a cancel token the receive runs in short slices so the token is
  // observed promptly; the first cancelled() observation sends a single
  // {"op":"cancel"} on this connection (the server's connection watcher
  // flips the request's token) and then keeps draining — the server still
  // closes the stream with a "done" frame carrying the interrupted exit.
  bool cancel_sent = false;
  for (;;) {
    std::string why;
    std::optional<std::string> frame;
    if (callbacks.cancel == nullptr) {
      frame = conn.recv_frame(frame_timeout_ms, &why);
    } else {
      constexpr int kSliceMs = 100;
      for (int waited = 0; waited < frame_timeout_ms; waited += kSliceMs) {
        if (callbacks.cancel->cancelled() && !cancel_sent) {
          cancel_sent = true;
          conn.send_frame("{\"op\":\"cancel\"}");
        }
        frame = conn.recv_frame(kSliceMs, &why);
        if (frame || why != "timeout") break;
      }
    }
    if (!frame) {
      outcome.error = why == "closed"
                          ? "connection dropped mid-campaign (resubmit "
                            "with the saved journal as checkpoint to "
                            "resume)"
                          : "stream failed (" + why + ")";
      return outcome;
    }
    const std::string t = journal_str(*frame, "t").value_or("");
    if (t == "accepted") {
      outcome.id = journal_u64(*frame, "id").value_or(0);
    } else if (t == "busy") {
      outcome.busy = true;
      outcome.error = strf(
          "daemon busy: %llu request%s queued (limit %llu) — retry later",
          static_cast<unsigned long long>(
              journal_u64(*frame, "queued").value_or(0)),
          journal_u64(*frame, "queued").value_or(0) == 1 ? "" : "s",
          static_cast<unsigned long long>(
              journal_u64(*frame, "limit").value_or(0)));
      return outcome;
    } else if (t == "error") {
      outcome.error = journal_str(*frame, "message").value_or("error");
      return outcome;
    } else if (t == "engines") {
      outcome.engines =
          static_cast<std::size_t>(journal_u64(*frame, "engines").value_or(0));
      outcome.cache_hit =
          journal_str(*frame, "cache").value_or("") == "hit";
    } else if (t == "header") {
      if (callbacks.on_record) callbacks.on_record(*frame);
    } else if (t == "campaign" || t == "study-cell") {
      outcome.records += 1;
      if (callbacks.on_record) callbacks.on_record(*frame);
    } else if (t == "log") {
      if (callbacks.on_log) {
        callbacks.on_log(journal_str(*frame, "message").value_or(""));
      }
    } else if (t == "done") {
      outcome.ok = true;
      outcome.exit_code = static_cast<int>(
          journal_u64(*frame, "exit").value_or(3));
      outcome.converged = journal_u64(*frame, "converged").value_or(0) != 0;
      outcome.interrupted =
          journal_u64(*frame, "interrupted").value_or(0) != 0;
      outcome.server_error = journal_str(*frame, "error").value_or("");
      outcome.stats_json =
          extract_json_object(*frame, "stats").value_or("{}");
      return outcome;
    }
    // Unknown "t": skip — forward compatibility with newer daemons.
  }
}

SubmitOutcome submit_campaign(const std::string& socket_path,
                              const CampaignRequest& request,
                              const StreamCallbacks& callbacks,
                              int frame_timeout_ms) {
  return submit_payload(socket_path, serialize_request(request), callbacks,
                        frame_timeout_ms);
}

SubmitOutcome submit_payload_with_retry(const std::string& socket_path,
                                        const std::string& payload,
                                        const RetryPolicy& policy,
                                        const StreamCallbacks& callbacks,
                                        int frame_timeout_ms) {
  const unsigned attempts = std::max(1u, policy.attempts);
  const std::uint64_t base_ms = std::max(1u, policy.base_ms);
  std::uint64_t waited_ms = 0;
  SubmitOutcome outcome;
  for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
    outcome =
        submit_payload(socket_path, payload, callbacks, frame_timeout_ms);
    outcome.attempts = attempt;
    // Only "busy" is retried: the daemon scheduled nothing, so a
    // resubmit cannot duplicate work. Every other failure mode may have
    // started a campaign and must surface to the caller.
    if (!outcome.busy || attempt == attempts) break;
    std::uint64_t delay =
        std::min<std::uint64_t>(base_ms << std::min(attempt - 1, 16u),
                                policy.cap_ms);
    Rng rng(derive_stream_seed(policy.jitter_seed, 0xbacc0ffULL, attempt));
    delay += rng.next_below(base_ms);
    if (waited_ms + delay > policy.max_total_ms) break;
    waited_ms += delay;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  if (outcome.busy && outcome.attempts > 1) {
    outcome.error = strf(
        "daemon busy after %u attempts over %llu ms of backoff: %s",
        outcome.attempts, static_cast<unsigned long long>(waited_ms),
        outcome.error.c_str());
  }
  return outcome;
}

SubmitOutcome submit_campaign_with_retry(const std::string& socket_path,
                                         const CampaignRequest& request,
                                         const RetryPolicy& policy,
                                         const StreamCallbacks& callbacks,
                                         int frame_timeout_ms) {
  return submit_payload_with_retry(socket_path, serialize_request(request),
                                   policy, callbacks, frame_timeout_ms);
}

std::optional<std::string> ping_server(const std::string& socket_path,
                                       std::string* error, int timeout_ms) {
  return roundtrip(socket_path, "{\"op\":\"ping\"}", "pong", error,
                   timeout_ms);
}

std::optional<std::string> server_stats(const std::string& socket_path,
                                        std::string* error, int timeout_ms) {
  return roundtrip(socket_path, "{\"op\":\"stats\"}", "stats", error,
                   timeout_ms);
}

bool shutdown_server(const std::string& socket_path, std::uint64_t* completed,
                     std::string* error, int timeout_ms) {
  const std::optional<std::string> bye = roundtrip(
      socket_path, "{\"op\":\"shutdown\"}", "bye", error, timeout_ms);
  if (!bye) return false;
  if (completed != nullptr) {
    *completed = journal_u64(*bye, "completed").value_or(0);
  }
  return true;
}

}  // namespace vulfi::serve
