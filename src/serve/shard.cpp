#include "serve/shard.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "kernels/benchmark.hpp"
#include "serve/engine_cache.hpp"
#include "spmd/target.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

extern char** environ;

namespace vulfi::serve {

namespace {

using Clock = std::chrono::steady_clock;

analysis::FaultSiteCategory category_of(const std::string& name) {
  if (name == "control" || name == "ctrl") {
    return analysis::FaultSiteCategory::Control;
  }
  if (name == "address" || name == "addr") {
    return analysis::FaultSiteCategory::Address;
  }
  return analysis::FaultSiteCategory::PureData;
}

spmd::Target target_of(const std::string& isa) {
  return isa == "avx" ? spmd::Target::avx() : spmd::Target::sse4();
}

/// Builds the per-input engine set exactly the way EngineCache does —
/// shard workers are fresh processes and cannot share the daemon's cache,
/// but the engines must be configured identically for the statistics to
/// merge byte-for-byte.
std::vector<std::unique_ptr<InjectionEngine>> build_engines(
    const CampaignRequest& request) {
  std::vector<std::unique_ptr<InjectionEngine>> engines;
  const kernels::Benchmark* bench = kernels::find_benchmark(request.benchmark);
  if (bench == nullptr) return engines;
  const spmd::Target target = target_of(request.isa);
  const analysis::FaultSiteCategory category = category_of(request.category);
  for (unsigned input = 0; input < bench->num_inputs(); ++input) {
    RunSpec spec = bench->build(target, input);
    if (request.detectors) detect::insert_foreach_detectors(*spec.module);
    auto engine = std::make_unique<InjectionEngine>(std::move(spec), category);
    if (request.detectors) {
      engine->setup_runtime(
          [](interp::RuntimeEnv& env, interp::DetectionLog& log) {
            detect::attach_detector_runtime(env, log);
          });
    }
    engine->set_golden_cache_enabled(request.golden_cache);
    engine->set_static_prune(request.static_prune);
    engines.push_back(std::move(engine));
  }
  return engines;
}

/// Writes one sealed journal line to a pipe, atomically (lines stay
/// under PIPE_BUF) and EINTR-safely. Serialized by a mutex because the
/// heartbeat thread and the campaign coordinator both write.
class StatusPipe {
 public:
  explicit StatusPipe(int fd) : fd_(fd) {}

  /// False once the reader is gone (EPIPE) — the worker uses that as a
  /// supervisor-death signal.
  bool write_payload(const std::string& payload) {
    if (fd_ < 0 || dead_.load(std::memory_order_relaxed)) return false;
    const std::string line = journal_seal(payload) + "\n";
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
      if (n >= 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      dead_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  bool dead() const { return dead_.load(std::memory_order_relaxed); }

 private:
  int fd_;
  std::mutex mutex_;
  std::atomic<bool> dead_{false};
};

std::uint64_t env_u64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return std::strtoull(value, nullptr, 10);
}

/// Splits a read buffer into complete lines, leaving any torn tail in
/// place, and hands each verified payload to `sink`. Lines that fail
/// their checksum (torn pipe write from a crashing worker) are dropped —
/// the shard journal on disk, not the pipe, is the source of truth.
template <typename Sink>
void drain_lines(std::string& buffer, Sink&& sink) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) break;
    const std::optional<std::string> payload =
        journal_unseal(std::string_view(buffer).substr(start, nl - start));
    if (payload) sink(*payload);
    start = nl + 1;
  }
  buffer.erase(0, start);
}

/// Strips the "build" field value from a header payload so config
/// mismatch and cross-binary mismatch get distinct diagnostics (mirrors
/// checkpoint resume).
std::string strip_build(const std::string& header) {
  const std::size_t key = header.find("\"build\":\"");
  if (key == std::string::npos) return header;
  const std::size_t start = key + std::strlen("\"build\":\"");
  const std::size_t end = header.find('"', start);
  if (end == std::string::npos) return header;
  return header.substr(0, start) + header.substr(end);
}

}  // namespace

std::vector<ShardRange> shard_plan(unsigned max_campaigns, unsigned shards) {
  std::vector<ShardRange> plan;
  if (max_campaigns == 0) return plan;
  if (shards == 0) shards = 1;
  if (shards > max_campaigns) shards = max_campaigns;
  const unsigned quota = max_campaigns / shards;
  const unsigned remainder = max_campaigns % shards;
  std::uint64_t next = 0;
  for (unsigned i = 0; i < shards; ++i) {
    ShardRange range;
    range.first = next;
    range.count = quota + (i < remainder ? 1u : 0u);
    next += range.count;
    plan.push_back(range);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

int run_shard_worker(const ShardWorkerOptions& options) {
  const CampaignRequest& request = options.request;
  if (request.benchmark.empty() || options.journal_path.empty() ||
      options.shard_total == 0) {
    std::fprintf(stderr, "vulfi: shard-worker: missing required options\n");
    return 2;
  }
  const std::string name_error = validate_request_names(request);
  if (!name_error.empty()) {
    std::fprintf(stderr, "vulfi: %s\n", name_error.c_str());
    return 2;
  }
  const std::vector<ShardRange> plan =
      shard_plan(request.resolved_max_campaigns(), options.shard_total);
  if (options.shard_index >= plan.size()) {
    std::fprintf(stderr, "vulfi: shard-worker: shard %u of %u has no range\n",
                 options.shard_index, options.shard_total);
    return 2;
  }
  const ShardRange range = plan[options.shard_index];

  // The supervisor may die while we write the status pipe; that must not
  // kill the worker mid-campaign (the journal keeps the work durable).
  std::signal(SIGPIPE, SIG_IGN);

  std::vector<std::unique_ptr<InjectionEngine>> engines =
      build_engines(request);
  std::vector<InjectionEngine*> engine_ptrs;
  for (auto& engine : engines) engine_ptrs.push_back(engine.get());

  CampaignConfig config = to_campaign_config(request, 0);
  config.checkpoint_path = options.journal_path;
  config.shard_first = range.first;
  config.shard_count = range.count;
  config.shard_index = options.shard_index;
  config.shard_total = options.shard_total;
  config.crash_after_experiments = env_u64("VULFI_CRASH_AFTER_EXPERIMENTS");
  config.hang_after_experiments = env_u64("VULFI_HANG_AFTER_EXPERIMENTS");

  std::atomic<std::uint64_t> progress{0};
  config.progress = &progress;

  CancellationToken cancel;
  ScopedSignalCancellation signals(cancel);
  config.cancel = &cancel;

  StatusPipe pipe(options.status_fd);
  config.on_campaign_record = [&](const CampaignRecord& record) {
    pipe.write_payload(campaign_record_payload(record));
  };

  // Heartbeat thread: the supervisor's stall detector keys on the exec
  // counter advancing, so a wedged worker (frozen counter, live thread)
  // is distinguishable from a slow one.
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat([&] {
    const auto interval =
        std::chrono::milliseconds(std::max(1u, options.heartbeat_ms));
    std::unique_lock<std::mutex> lock(hb_mutex);
    while (!hb_cv.wait_for(lock, interval, [&] { return hb_stop; })) {
      pipe.write_payload(
          strf("{\"t\":\"hb\",\"shard\":%u,\"exec\":%llu}",
               options.shard_index,
               static_cast<unsigned long long>(
                   progress.load(std::memory_order_relaxed))));
    }
  });

  const CampaignResult result = run_campaigns(engine_ptrs, config);

  {
    const std::lock_guard<std::mutex> lock(hb_mutex);
    hb_stop = true;
  }
  hb_cv.notify_all();
  heartbeat.join();

  if (!result.ok()) {
    std::fprintf(stderr, "vulfi: shard %u: %s\n", options.shard_index,
                 result.error.c_str());
    return kCampaignExitInternalError;
  }
  if (result.interrupted) return kCampaignExitInterrupted;
  if (result.campaigns < range.count) {
    std::fprintf(stderr, "vulfi: shard %u stopped at %u/%u campaigns\n",
                 options.shard_index, result.campaigns, range.count);
    return kCampaignExitInternalError;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Deterministic merge
// ---------------------------------------------------------------------------

ShardMergeOutcome merge_shards(const CampaignRequest& request,
                               const std::vector<std::string>& shard_paths,
                               const std::string& merged_path) {
  ShardMergeOutcome out;
  const std::string name_error = validate_request_names(request);
  if (!name_error.empty()) {
    out.error = name_error;
    return out;
  }
  const kernels::Benchmark* bench = kernels::find_benchmark(request.benchmark);
  const CampaignConfig config = to_campaign_config(request, 0);
  out.header = campaign_header_payload(config, bench->num_inputs());
  const std::uint64_t maxc = config.max_campaigns;

  // Collect records by absolute campaign index, refusing duplicates and
  // malformed shard journals outright — a merge must never guess.
  std::vector<std::string> payload_at(maxc);
  std::vector<int> owner_of(maxc, -1);
  std::vector<ShardRange> declared(shard_paths.size());
  std::vector<unsigned> declared_index(shard_paths.size(), 0);
  std::vector<bool> have_journal(shard_paths.size(), false);
  unsigned declared_total = 0;

  for (std::size_t s = 0; s < shard_paths.size(); ++s) {
    const JournalRecovery recovered = recover_journal(shard_paths[s]);
    if (!recovered.file_existed || recovered.records.empty()) continue;
    have_journal[s] = true;
    const std::string& stored = recovered.records.front();
    if (stored != out.header) {
      if (strip_build(stored) == strip_build(out.header)) {
        out.error = strf(
            "shard journal '%s' was written by a different vulfi binary "
            "(stored build \"%s\", this binary \"%s\") — merge with the "
            "binary that wrote the shards",
            shard_paths[s].c_str(),
            journal_str(stored, "build")
                .value_or("<no fingerprint>")
                .c_str(),
            journal_str(out.header, "build").value_or("?").c_str());
        return out;
      }
      out.error = strf(
          "shard journal '%s' was written by a different campaign "
          "configuration (stored %s, expected %s)",
          shard_paths[s].c_str(), stored.c_str(), out.header.c_str());
      return out;
    }
    if (recovered.records.size() < 2 ||
        journal_str(recovered.records[1], "t").value_or("") != "shard") {
      out.error = strf("shard journal '%s' is missing its shard record",
                       shard_paths[s].c_str());
      return out;
    }
    const std::string& shard_rec = recovered.records[1];
    const std::uint64_t first = journal_u64(shard_rec, "first").value_or(0);
    const std::uint64_t count = journal_u64(shard_rec, "count").value_or(0);
    if (first + count > maxc || count == 0) {
      out.error = strf(
          "shard journal '%s' declares campaigns [%llu, %llu) outside "
          "[0, %llu)",
          shard_paths[s].c_str(), static_cast<unsigned long long>(first),
          static_cast<unsigned long long>(first + count),
          static_cast<unsigned long long>(maxc));
      return out;
    }
    declared[s].first = first;
    declared[s].count = static_cast<unsigned>(count);
    declared_index[s] = static_cast<unsigned>(
        journal_u64(shard_rec, "index").value_or(s));
    declared_total = std::max(
        declared_total,
        static_cast<unsigned>(journal_u64(shard_rec, "shards").value_or(0)));

    std::uint64_t expected = first;
    for (std::size_t i = 2; i < recovered.records.size(); ++i) {
      const std::string& record = recovered.records[i];
      const std::string type = journal_str(record, "t").value_or("");
      if (type == "verify") continue;  // per-process artifact, not history
      if (type != "campaign") {
        out.error = strf("shard journal '%s': unrecognized record type '%s'",
                         shard_paths[s].c_str(), type.c_str());
        return out;
      }
      const std::optional<CampaignRecord> parsed =
          parse_campaign_record(record);
      if (!parsed || parsed->campaign != expected ||
          parsed->campaign >= first + count) {
        out.error = strf(
            "shard journal '%s': campaign record %llu is malformed or out "
            "of order",
            shard_paths[s].c_str(), static_cast<unsigned long long>(i));
        return out;
      }
      if (owner_of[parsed->campaign] != -1) {
        out.error = strf(
            "campaign %llu appears in both shard %d and shard %llu — "
            "refusing to merge overlapping histories",
            static_cast<unsigned long long>(parsed->campaign),
            owner_of[parsed->campaign], static_cast<unsigned long long>(s));
        return out;
      }
      owner_of[parsed->campaign] = static_cast<int>(s);
      payload_at[parsed->campaign] = record;
      expected += 1;
    }
  }

  // Replay the ordered union through the exact single-process stop rule:
  // the merge stops at the same campaign index an unsharded run stops at,
  // so the merged statistics are byte-identical by construction.
  CampaignReplayer replayer(config);
  bool gap = false;
  std::uint64_t index = 0;
  while (replayer.wants_more() && index < maxc) {
    if (owner_of[index] == -1) {
      gap = true;
      break;
    }
    const std::optional<CampaignRecord> record =
        parse_campaign_record(payload_at[index]);
    if (!record || !replayer.absorb(*record)) {
      out.error = strf("merge: campaign record %llu failed to replay",
                       static_cast<unsigned long long>(index));
      return out;
    }
    out.records.push_back(payload_at[index]);
    index += 1;
  }
  out.result = replayer.finalize();

  if (gap) {
    out.exit_code = kCampaignExitShardPartial;
    // Name the shard whose records the stop rule still needed: the
    // declared owner when its journal exists, otherwise the owner under
    // the sharding plan the journals agree on (the journal never
    // materialized — e.g. it was lost, or its path was not supplied).
    int missing = -1;
    for (std::size_t s = 0; s < declared.size(); ++s) {
      if (have_journal[s] && index >= declared[s].first &&
          index < declared[s].first + declared[s].count) {
        missing = static_cast<int>(declared_index[s]);
      }
    }
    if (missing == -1) {
      const unsigned total = declared_total != 0
                                 ? declared_total
                                 : static_cast<unsigned>(std::max<std::size_t>(
                                       1, shard_paths.size()));
      const std::vector<ShardRange> plan =
          shard_plan(static_cast<unsigned>(maxc), total);
      for (std::size_t s = 0; s < plan.size(); ++s) {
        if (index >= plan[s].first && index < plan[s].first + plan[s].count) {
          missing = static_cast<int>(s);
        }
      }
    }
    if (missing != -1) out.missing_shards.push_back(static_cast<unsigned>(missing));
    out.error = strf(
        "merge is partial: campaign %llu is missing (shard %d) and the "
        "stop rule was not yet satisfied — statistics cover campaigns "
        "[0, %llu)",
        static_cast<unsigned long long>(index), missing,
        static_cast<unsigned long long>(index));
  } else {
    out.exit_code = out.result.converged ? kCampaignExitConverged
                                         : kCampaignExitUnconverged;
  }

  if (!merged_path.empty()) {
    JournalWriter writer;
    std::string error;
    if (!writer.open(merged_path, 0, &error)) {
      out.exit_code = kCampaignExitInternalError;
      out.error = error;
      return out;
    }
    writer.set_sync_policy(JournalSync::Off);
    bool wrote = writer.append(out.header);
    for (const std::string& record : out.records) {
      wrote = wrote && writer.append(record);
    }
    if (!wrote || !writer.sync_now()) {
      out.exit_code = kCampaignExitInternalError;
      out.error = strf("merged journal '%s': write failed",
                       merged_path.c_str());
      return out;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

namespace {

struct WorkerSlot {
  pid_t pid = -1;
  int read_fd = -1;
  std::string buffer;
  unsigned launches = 0;  ///< launches so far (first launch == 1)
  bool running = false;
  bool done = false;    ///< range complete, or stopped on request
  bool failed = false;  ///< restart budget exhausted
  bool stop_requested = false;
  bool kill_sent = false;
  std::uint64_t last_exec = 0;
  Clock::time_point last_progress{};
  Clock::time_point restart_at{};
  bool pending_restart = false;
};

/// argv/envp for execve, with stable storage.
struct ExecImage {
  std::vector<std::string> strings;
  std::vector<char*> pointers;

  void finalize() {
    pointers.clear();
    for (std::string& s : strings) pointers.push_back(s.data());
    pointers.push_back(nullptr);
  }
};

/// Copies the environment, dropping the crash/hang injection variables —
/// a restarted worker must not re-crash at the same experiment count or
/// the recovery tests would never terminate. VULFI_CRASH_EVERY_ATTEMPT
/// keeps them (the restart-budget-exhaustion tests want exactly that).
ExecImage restart_environment() {
  ExecImage image;
  const bool keep = std::getenv("VULFI_CRASH_EVERY_ATTEMPT") != nullptr;
  for (char** env = environ; *env != nullptr; ++env) {
    const std::string entry(*env);
    if (!keep && (entry.rfind("VULFI_CRASH_AFTER_EXPERIMENTS=", 0) == 0 ||
                  entry.rfind("VULFI_HANG_AFTER_EXPERIMENTS=", 0) == 0)) {
      continue;
    }
    image.strings.push_back(entry);
  }
  image.finalize();
  return image;
}

void read_ready(WorkerSlot& worker, bool until_eof,
                const std::function<void(const std::string&)>& sink) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(worker.read_fd, chunk, sizeof(chunk));
    if (n > 0) {
      worker.buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && !until_eof) {
      break;
    }
    break;  // EOF, would-block at EOF drain, or error: stop reading
  }
  drain_lines(worker.buffer, sink);
}

}  // namespace

SupervisorResult run_sharded_campaign(const SupervisorOptions& options) {
  SupervisorResult out;
  const CampaignRequest& request = options.request;
  const std::string name_error = validate_request_names(request);
  if (!name_error.empty()) {
    out.error = name_error;
    return out;
  }
  const unsigned maxc = request.resolved_max_campaigns();
  const std::vector<ShardRange> plan = shard_plan(maxc, options.shards);
  const unsigned shards = static_cast<unsigned>(plan.size());
  if (shards == 0) {
    out.error = "sharded campaign needs at least one campaign";
    return out;
  }

  // Journal layout: shards at <base>.shard<i>, the merged journal at
  // <base>. Without --checkpoint the journals live in a private temp dir
  // (removed after a fully successful run — crash-recovery state only).
  std::string base = options.journal_base;
  std::string tmpdir;
  if (base.empty()) {
    char tmpl[] = "/tmp/vulfi-shards-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      out.error = strf("mkdtemp: %s", std::strerror(errno));
      return out;
    }
    tmpdir = tmpl;
    base = tmpdir + "/journal";
  }
  std::vector<std::string> shard_paths;
  for (unsigned s = 0; s < shards; ++s) {
    shard_paths.push_back(strf("%s.shard%u", base.c_str(), s));
  }

  const std::string binary =
      options.worker_binary.empty() ? "/proc/self/exe" : options.worker_binary;
  const std::string request_json = serialize_request(request);
  ExecImage restart_env = restart_environment();

  const double stall_timeout = options.stall_timeout_seconds > 0.0
                                   ? options.stall_timeout_seconds
                                   : request.stall_timeout;

  std::vector<WorkerSlot> workers(shards);
  bool spawn_failed = false;

  auto launch = [&](unsigned s) -> bool {
    WorkerSlot& worker = workers[s];
    int fds[2];
    if (::pipe(fds) != 0) return false;
    // Parent keeps a CLOEXEC nonblocking read end; the child inherits
    // only the write end (its number travels in argv).
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);

    worker.launches += 1;
    ExecImage argv;
    argv.strings = {binary,
                    "shard-worker",
                    "--request-json",
                    request_json,
                    "--shard",
                    strf("%u", s),
                    "--shards",
                    strf("%u", shards),
                    "--shard-journal",
                    shard_paths[s],
                    "--status-fd",
                    strf("%d", fds[1]),
                    "--heartbeat-ms",
                    strf("%u", options.heartbeat_ms)};
    argv.finalize();
    // First launch inherits the environment (crash hooks included, for
    // the injection tests); restarts get the stripped copy.
    char** envp = worker.launches == 1 ? environ : restart_env.pointers.data();

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: only async-signal-safe calls before execve (the parent
      // may be multithreaded — vulfid submits shard jobs from worker
      // threads).
      ::execve(binary.c_str(), argv.pointers.data(), envp);
      _exit(127);
    }
    ::close(fds[1]);
    worker.pid = pid;
    worker.read_fd = fds[0];
    worker.running = true;
    worker.pending_restart = false;
    worker.stop_requested = false;
    worker.kill_sent = false;
    worker.last_exec = 0;
    worker.last_progress = Clock::now();
    return true;
  };

  auto backoff_deadline = [&](unsigned shard, unsigned attempt) {
    const unsigned shift = std::min(attempt > 0 ? attempt - 1 : 0u, 16u);
    const std::uint64_t base_ms = std::max(1u, options.backoff_base_ms);
    std::uint64_t delay = base_ms << shift;
    delay = std::min<std::uint64_t>(delay, options.backoff_cap_ms);
    // Deterministic jitter: a private counter-seeded stream per
    // (seed, shard, attempt), decorrelated from the experiment streams.
    Rng rng(derive_stream_seed(request.seed ^ 0x5a4db0ffULL, shard, attempt));
    delay += rng.next_below(base_ms);
    return Clock::now() + std::chrono::milliseconds(delay);
  };

  // Live merge state: the replayer advances over the ordered union of
  // records as they stream in, powering (a) early stop the moment the
  // stop rule is satisfied and (b) ordered record streaming to the
  // caller. Correctness never depends on the pipe: the final merge reads
  // the journals from disk.
  const CampaignConfig replay_config = to_campaign_config(request, 0);
  CampaignReplayer replayer(replay_config);
  std::map<std::uint64_t, std::string> pending;
  std::uint64_t streamed = 0;
  bool stop_all_sent = false;

  auto emit_sealed = [&](const std::string& payload) {
    if (options.on_sealed_record) options.on_sealed_record(journal_seal(payload));
  };
  auto log = [&](const std::string& message) {
    if (options.on_log) options.on_log(message);
  };

  {
    const kernels::Benchmark* bench =
        kernels::find_benchmark(request.benchmark);
    emit_sealed(campaign_header_payload(replay_config, bench->num_inputs()));
  }

  auto on_payload = [&](unsigned s, const std::string& payload) {
    const std::string type = journal_str(payload, "t").value_or("");
    WorkerSlot& worker = workers[s];
    if (type == "hb") {
      const std::uint64_t exec = journal_u64(payload, "exec").value_or(0);
      if (exec != worker.last_exec) {
        worker.last_exec = exec;
        worker.last_progress = Clock::now();
      }
      return;
    }
    if (type == "campaign") {
      const std::optional<CampaignRecord> record =
          parse_campaign_record(payload);
      if (record && record->campaign >= streamed) {
        pending[record->campaign] = payload;
      }
      worker.last_progress = Clock::now();
    }
  };

  auto signal_all = [&](int sig) {
    for (WorkerSlot& worker : workers) {
      if (worker.running) ::kill(worker.pid, sig);
      if (worker.pending_restart) {
        // Never start it: the campaign is stopping.
        worker.pending_restart = false;
        worker.done = true;
      }
    }
  };

  for (unsigned s = 0; s < shards; ++s) {
    if (!launch(s)) {
      spawn_failed = true;
      workers[s].failed = true;
      out.failed_shards.push_back(s);
      log(strf("shard %u: spawn failed: %s", s, std::strerror(errno)));
    }
  }

  auto all_settled = [&] {
    for (const WorkerSlot& worker : workers) {
      if (!worker.done && !worker.failed) return false;
    }
    return true;
  };

  while (!all_settled()) {
    // Cancellation: SIGTERM everything once; workers drain and exit 5.
    if (options.cancel != nullptr && options.cancel->cancelled() &&
        !out.interrupted) {
      out.interrupted = true;
      stop_all_sent = true;
      log("interrupted: stopping all shard workers");
      signal_all(SIGTERM);
    }

    std::vector<struct pollfd> fds;
    std::vector<unsigned> fd_owner;
    for (unsigned s = 0; s < shards; ++s) {
      if (workers[s].running) {
        fds.push_back({workers[s].read_fd, POLLIN, 0});
        fd_owner.push_back(s);
      }
    }
    ::poll(fds.empty() ? nullptr : fds.data(),
           static_cast<nfds_t>(fds.size()), 100);
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents != 0) {
        const unsigned s = fd_owner[i];
        read_ready(workers[s], false,
                   [&](const std::string& p) { on_payload(s, p); });
      }
    }

    // Advance the ordered merged prefix and stream it.
    while (replayer.wants_more()) {
      const auto it = pending.find(streamed);
      if (it == pending.end()) break;
      const std::optional<CampaignRecord> record =
          parse_campaign_record(it->second);
      if (record && replayer.absorb(*record)) emit_sealed(it->second);
      pending.erase(it);
      streamed += 1;
    }

    // Early stop: the prefix satisfied the stop rule — every further
    // campaign is work a single-process run would not have done.
    if (!stop_all_sent && !replayer.wants_more()) {
      stop_all_sent = true;
      log(strf("stop rule satisfied at campaign %llu: stopping workers",
               static_cast<unsigned long long>(streamed)));
      signal_all(SIGTERM);
    }

    const Clock::time_point now = Clock::now();
    for (unsigned s = 0; s < shards; ++s) {
      WorkerSlot& worker = workers[s];

      // Stall detection (satellite of the in-process StallMonitor): a
      // worker whose experiment counter is frozen past the timeout is
      // killed like a crash and restarted under the same backoff.
      if (worker.running && !worker.kill_sent && stall_timeout > 0.0 &&
          std::chrono::duration<double>(now - worker.last_progress).count() >
              stall_timeout) {
        log(strf("shard %u: no progress for %.1fs — killing pid %d", s,
                 stall_timeout, static_cast<int>(worker.pid)));
        worker.kill_sent = true;
        ::kill(worker.pid, SIGKILL);
      }

      if (worker.running) {
        int status = 0;
        const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
        if (reaped == worker.pid) {
          // Drain everything the worker wrote before it died.
          read_ready(worker, true,
                     [&](const std::string& p) { on_payload(s, p); });
          ::close(worker.read_fd);
          worker.read_fd = -1;
          worker.running = false;

          const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
          const bool stopped = WIFEXITED(status) &&
                               WEXITSTATUS(status) == kCampaignExitInterrupted &&
                               (worker.stop_requested || stop_all_sent);
          if (clean || stopped) {
            worker.done = true;
          } else if (stop_all_sent || out.interrupted) {
            // The campaign is over; a crash while stopping is moot.
            worker.done = true;
          } else {
            const std::string why =
                WIFSIGNALED(status)
                    ? strf("killed by signal %d", WTERMSIG(status))
                    : strf("exit code %d",
                           WIFEXITED(status) ? WEXITSTATUS(status) : -1);
            if (worker.launches > options.max_restarts) {
              worker.failed = true;
              out.failed_shards.push_back(s);
              log(strf("shard %u: %s after %u launches — restart budget "
                       "exhausted, shard failed",
                       s, why.c_str(), worker.launches));
            } else {
              worker.pending_restart = true;
              worker.restart_at = backoff_deadline(s, worker.launches);
              log(strf("shard %u: %s — restart %u/%u pending", s,
                       why.c_str(), worker.launches, options.max_restarts));
            }
          }
        }
      }

      if (worker.pending_restart && now >= worker.restart_at &&
          !stop_all_sent && !out.interrupted) {
        if (launch(s)) {
          out.restarts += 1;
          log(strf("shard %u: restarted (launch %u, pid %d)", s,
                   worker.launches, static_cast<int>(worker.pid)));
        } else {
          worker.failed = true;
          worker.pending_restart = false;
          out.failed_shards.push_back(s);
          log(strf("shard %u: relaunch failed: %s", s, std::strerror(errno)));
        }
      }
    }
  }
  (void)spawn_failed;

  // The journals on disk are the source of truth; merge them and stream
  // any records the live prefix had not reached.
  const ShardMergeOutcome merge = merge_shards(request, shard_paths, base);
  if (merge.exit_code == kCampaignExitInternalError) {
    out.exit_code = kCampaignExitInternalError;
    out.error = merge.error;
    return out;
  }
  out.result = merge.result;
  out.merged_path = base;
  for (std::size_t i = streamed; i < merge.records.size(); ++i) {
    emit_sealed(merge.records[i]);
  }

  if (out.interrupted) {
    out.exit_code = kCampaignExitInterrupted;
    out.result.interrupted = true;
    out.result.converged = false;
  } else if (merge.exit_code == kCampaignExitShardPartial) {
    out.exit_code = kCampaignExitShardPartial;
    out.error = merge.error;
    for (unsigned s : merge.missing_shards) {
      if (std::find(out.failed_shards.begin(), out.failed_shards.end(), s) ==
          out.failed_shards.end()) {
        out.failed_shards.push_back(s);
      }
    }
  } else {
    out.exit_code = merge.exit_code;
  }
  std::sort(out.failed_shards.begin(), out.failed_shards.end());

  // A fully successful ad-hoc run leaves nothing behind; a failed,
  // partial, or interrupted one keeps its temp journals for resumption
  // and post-mortem.
  if (!tmpdir.empty() && (out.exit_code == kCampaignExitConverged ||
                          out.exit_code == kCampaignExitUnconverged)) {
    for (const std::string& path : shard_paths) ::unlink(path.c_str());
    ::unlink(base.c_str());
    ::rmdir(tmpdir.c_str());
    out.merged_path.clear();
  }
  return out;
}

}  // namespace vulfi::serve
