#include "serve/server.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "kernels/benchmark.hpp"
#include "serve/diff.hpp"
#include "serve/protocol.hpp"
#include "serve/shard.hpp"
#include "support/cancel.hpp"
#include "support/journal.hpp"
#include "support/str.hpp"
#include "vulfi/report.hpp"

namespace vulfi::serve {

/// Per-submit shared state. The connection thread reads (watching for
/// cancel frames and disconnects) while the scheduler job writes; both
/// directions of the socket are independent, and writes are serialized
/// by send_mutex. The shared_ptr keeps the connection alive until both
/// the job and the connection thread are finished with it.
struct CampaignServer::Session {
  explicit Session(UnixConn c) : conn(std::move(c)) {}

  UnixConn conn;
  std::mutex send_mutex;
  CancellationToken cancel;
  std::mutex state_mutex;
  std::condition_variable state_cv;
  bool ready = false;  ///< "accepted" sent; the job may start streaming
  bool done = false;   ///< the job sent its final frame

  bool send(const std::string& payload) {
    const std::lock_guard<std::mutex> lock(send_mutex);
    // A failed send means the client is gone; the job keeps running to
    // completion regardless (the watcher flips `cancel` for us).
    return conn.send_frame(payload);
  }
  void mark_ready() {
    {
      const std::lock_guard<std::mutex> lock(state_mutex);
      ready = true;
    }
    state_cv.notify_all();
  }
  void wait_ready() {
    std::unique_lock<std::mutex> lock(state_mutex);
    state_cv.wait(lock, [this] { return ready; });
  }
  void mark_done() {
    {
      const std::lock_guard<std::mutex> lock(state_mutex);
      done = true;
    }
    state_cv.notify_all();
  }
  bool done_now() {
    const std::lock_guard<std::mutex> lock(state_mutex);
    return done;
  }
  void wait_done() {
    std::unique_lock<std::mutex> lock(state_mutex);
    state_cv.wait(lock, [this] { return done; });
  }
};

CampaignServer::CampaignServer(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_entries) {}

CampaignServer::~CampaignServer() {
  if (scheduler_ == nullptr) return;  // start() never ran
  request_shutdown();
  wait();
}

bool CampaignServer::start(std::string* error) {
  if (!listener_.listen_on(config_.socket_path, error)) return false;
  FairScheduler::Config sched;
  sched.workers = config_.workers;
  sched.max_queue = config_.max_queue;
  scheduler_ = std::make_unique<FairScheduler>(sched);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (config_.verbose) {
    std::fprintf(stderr, "vulfid: serving on %s (%u worker%s, queue %zu)\n",
                 config_.socket_path.c_str(), config_.workers,
                 config_.workers == 1 ? "" : "s", config_.max_queue);
  }
  return true;
}

void CampaignServer::request_shutdown() { drain(); }

void CampaignServer::drain() {
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    if (drain_started_) {
      // Someone else is draining; wait for them so every caller of
      // drain() observes the same post-condition.
      drain_cv_.wait(lock, [this] { return drained_.load(); });
      return;
    }
    drain_started_ = true;
  }
  stopping_.store(true);
  if (scheduler_ != nullptr) scheduler_->drain_and_stop();
  drained_.store(true);
  drain_cv_.notify_all();
  if (config_.verbose) {
    std::fprintf(stderr, "vulfid: drained (%llu campaign%s served)\n",
                 static_cast<unsigned long long>(completed_.load()),
                 completed_.load() == 1 ? "" : "s");
  }
}

void CampaignServer::wait() {
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return drained_.load(); });
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  listener_.close();
}

void CampaignServer::accept_loop() {
  while (!stopping_.load()) {
    UnixConn conn = listener_.accept_one(200);
    if (!conn.ok()) continue;
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_threads_.emplace_back(
        [this, c = std::move(conn)]() mutable {
          handle_connection(std::move(c));
        });
  }
}

void CampaignServer::handle_connection(UnixConn conn) {
  for (;;) {
    std::string why;
    const std::optional<std::string> frame = conn.recv_frame(500, &why);
    if (!frame) {
      if (why == "timeout") {
        if (stopping_.load()) return;
        continue;
      }
      if (why == "malformed" || why == "oversized") {
        // A poisoned length-prefixed stream cannot be resynchronized:
        // answer once (best effort) and drop the connection. The daemon
        // itself is unharmed — this is the fuzz suite's core assertion.
        conn.send_frame(error_payload("protocol error: " + why + " frame"));
      }
      return;  // closed or error
    }
    const std::string op = journal_str(*frame, "op").value_or("");
    if (op == "ping") {
      conn.send_frame(pong_payload());
      continue;
    }
    if (op == "stats") {
      conn.send_frame(stats_payload());
      continue;
    }
    if (op == "shutdown") {
      drain();
      conn.send_frame(bye_payload(completed_.load()));
      return;
    }
    if (op == "submit") {
      handle_submit(std::move(conn), *frame);
      return;  // one campaign per connection; the stream ends with done
    }
    if (op == "diff") {
      handle_diff(std::move(conn), *frame);
      return;  // like submit: the stream ends with done
    }
    const auto extension = extension_ops_.find(op);
    if (extension != extension_ops_.end()) {
      handle_extension(std::move(conn), op, *frame, extension->second);
      return;  // like submit: the stream ends with done
    }
    conn.send_frame(error_payload(strf("unknown op '%s'", op.c_str())));
  }
}

void CampaignServer::handle_submit(UnixConn conn,
                                   const std::string& payload) {
  std::string parse_error;
  const std::optional<CampaignRequest> request =
      parse_request(payload, &parse_error);
  if (!request) {
    conn.send_frame(error_payload(parse_error));
    return;
  }
  const std::string name_error = validate_request_names(*request);
  if (!name_error.empty()) {
    conn.send_frame(error_payload(name_error));
    return;
  }
  if (stopping_.load()) {
    conn.send_frame(error_payload("server is shutting down"));
    return;
  }

  const std::uint64_t id = next_id_.fetch_add(1);
  auto session = std::make_shared<Session>(std::move(conn));
  std::size_t depth = 0;
  const FairScheduler::Admit admit = scheduler_->submit(
      request->priority,
      [this, session, req = *request, id] { run_job(session, req, id); },
      &depth);
  if (admit == FairScheduler::Admit::QueueFull) {
    session->send(busy_payload(scheduler_->stats().queued,
                               config_.max_queue));
    return;
  }
  if (admit == FairScheduler::Admit::Stopping) {
    session->send(error_payload("server is shutting down"));
    return;
  }
  if (config_.verbose) {
    std::fprintf(stderr,
                 "vulfid: accepted request %llu: %s/%s/%s (queue depth "
                 "%zu)\n",
                 static_cast<unsigned long long>(id),
                 request->benchmark.c_str(), request->category.c_str(),
                 request->isa.c_str(), depth);
  }
  // The job blocks on ready, so "accepted" is always the first frame.
  session->send(accepted_payload(id, depth));
  session->mark_ready();

  // Watch the connection while the campaign runs (possibly still
  // queued): a "cancel" frame or a disconnect flips this request's
  // token — and only this request's. The job always runs to its drain
  // point, so the session outlives every in-flight experiment.
  for (;;) {
    if (session->done_now()) break;
    std::string why;
    const std::optional<std::string> frame =
        session->conn.recv_frame(200, &why);
    if (frame) {
      if (journal_str(*frame, "op").value_or("") == "cancel") {
        session->cancel.request_cancel();
      }
      continue;
    }
    if (why == "timeout") continue;
    session->cancel.request_cancel();  // closed / malformed / error
    break;
  }
  session->wait_done();
}

void CampaignServer::run_job(const std::shared_ptr<Session>& session,
                             const CampaignRequest& request,
                             std::uint64_t id) {
  session->wait_ready();
  if (session->cancel.cancelled()) {
    // The client vanished while we were queued: nothing ran, nothing to
    // report; the send is best-effort to a likely-dead socket.
    session->send(done_payload(id, kCampaignExitInterrupted, false, true,
                               "cancelled before start", "{}"));
    session->mark_done();
    completed_.fetch_add(1);
    return;
  }

  if (request.shards > 0) {
    run_shard_job(session, request, id);
    return;
  }

  EngineCache::Lease lease = cache_.acquire(request);
  if (!lease.ok()) {
    session->send(error_payload(lease.error));
    session->send(done_payload(id, kCampaignExitInternalError, false, false,
                               lease.error, "{}"));
    session->mark_done();
    completed_.fetch_add(1);
    return;
  }
  session->send(engines_payload(lease.engines.size(), lease.cache_hit));

  CampaignConfig config =
      to_campaign_config(request, config_.max_jobs_per_request);
  config.cancel = &session->cancel;
  // Raw pointer is safe: run_campaigns is synchronous and the session
  // shared_ptr is held by this frame for its whole duration.
  Session* raw = session.get();
  config.stall_log = [raw](const std::string& message) {
    raw->send(log_payload(message));
  };
  config.on_campaign_record = [raw](const CampaignRecord& record) {
    raw->send(journal_seal(campaign_record_payload(record)));
  };

  std::vector<InjectionEngine*> pointers;
  pointers.reserve(lease.engines.size());
  for (const auto& engine : lease.engines) pointers.push_back(engine.get());

  // The sealed header first, then one sealed record per campaign
  // (restored history included): the client's transcript IS a journal.
  session->send(journal_seal(campaign_header_payload(config,
                                                     pointers.size())));
  const CampaignResult result = run_campaigns(pointers, config);
  session->send(done_payload(id, campaign_exit_code(result),
                             result.converged, result.interrupted,
                             result.error, campaign_stats_json(result)));
  completed_.fetch_add(1);
  if (config_.verbose) {
    std::fprintf(stderr,
                 "vulfid: finished request %llu: %u campaigns, exit %d\n",
                 static_cast<unsigned long long>(id), result.campaigns,
                 campaign_exit_code(result));
  }
  session->mark_done();
}

void CampaignServer::run_shard_job(const std::shared_ptr<Session>& session,
                                   const CampaignRequest& request,
                                   std::uint64_t id) {
  // Sharded jobs bypass the engine cache: each worker process builds its
  // own engines (identically configured — see build_engines in shard.cpp),
  // so the daemon's memory stays bounded and a worker crash cannot
  // corrupt shared engine state. The response grammar is unchanged:
  // engines → sealed header → sealed records (in campaign order) → done.
  const kernels::Benchmark* bench = kernels::find_benchmark(request.benchmark);
  session->send(engines_payload(bench->num_inputs(), false));

  SupervisorOptions options;
  options.request = request;
  options.request.shards = 0;  // workers are shards, never re-sharded
  options.shards = request.shards;
  options.max_restarts = request.max_restarts;
  options.journal_base = request.checkpoint;
  options.worker_binary = config_.shard_worker_binary;
  options.cancel = &session->cancel;
  Session* raw = session.get();
  options.on_sealed_record = [raw](const std::string& line) {
    raw->send(line);
  };
  options.on_log = [raw](const std::string& message) {
    raw->send(log_payload(message));
  };

  const SupervisorResult result = run_sharded_campaign(options);
  session->send(done_payload(id, result.exit_code, result.result.converged,
                             result.interrupted, result.error,
                             campaign_stats_json(result.result)));
  completed_.fetch_add(1);
  if (config_.verbose) {
    std::fprintf(stderr,
                 "vulfid: finished sharded request %llu: %u campaigns over "
                 "%u shards (%u restart%s), exit %d\n",
                 static_cast<unsigned long long>(id), result.result.campaigns,
                 request.shards, result.restarts,
                 result.restarts == 1 ? "" : "s", result.exit_code);
  }
  session->mark_done();
}

void CampaignServer::handle_diff(UnixConn conn, const std::string& payload) {
  std::string parse_error;
  const std::optional<DiffRequest> request =
      parse_diff_request(payload, &parse_error);
  if (!request) {
    conn.send_frame(error_payload(parse_error));
    return;
  }
  for (const std::string& unit : request->units) {
    if (kernels::find_benchmark(unit) == nullptr) {
      conn.send_frame(error_payload(
          strf("unknown unit '%s' (try: vulfi list)", unit.c_str())));
      return;
    }
  }
  if (stopping_.load()) {
    conn.send_frame(error_payload("server is shutting down"));
    return;
  }

  const std::uint64_t id = next_id_.fetch_add(1);
  auto session = std::make_shared<Session>(std::move(conn));
  std::size_t depth = 0;
  const FairScheduler::Admit admit = scheduler_->submit(
      request->campaign.priority,
      [this, session, req = *request, id] { run_diff_job(session, req, id); },
      &depth);
  if (admit == FairScheduler::Admit::QueueFull) {
    session->send(busy_payload(scheduler_->stats().queued,
                               config_.max_queue));
    return;
  }
  if (admit == FairScheduler::Admit::Stopping) {
    session->send(error_payload("server is shutting down"));
    return;
  }
  if (config_.verbose) {
    std::fprintf(stderr,
                 "vulfid: accepted diff %llu: %zu unit(s), store %s "
                 "(queue depth %zu)\n",
                 static_cast<unsigned long long>(id), request->units.size(),
                 request->store.c_str(), depth);
  }
  session->send(accepted_payload(id, depth));
  session->mark_ready();

  // Same connection watch as a submit: "cancel" or a disconnect flips
  // this request's token only.
  for (;;) {
    if (session->done_now()) break;
    std::string why;
    const std::optional<std::string> frame =
        session->conn.recv_frame(200, &why);
    if (frame) {
      if (journal_str(*frame, "op").value_or("") == "cancel") {
        session->cancel.request_cancel();
      }
      continue;
    }
    if (why == "timeout") continue;
    session->cancel.request_cancel();
    break;
  }
  session->wait_done();
}

void CampaignServer::run_diff_job(const std::shared_ptr<Session>& session,
                                  const DiffRequest& request,
                                  std::uint64_t id) {
  session->wait_ready();
  if (session->cancel.cancelled()) {
    session->send(done_payload(id, kCampaignExitInterrupted, false, true,
                               "cancelled before start", "{}"));
    session->mark_done();
    completed_.fetch_add(1);
    return;
  }

  DiffOptions options;
  options.units = request.units;
  options.request = request.campaign;
  options.store_dir = request.store;
  options.against_dir = request.against;
  options.cache = &cache_;  // the whole point: diff against warm engines
  options.max_jobs = config_.max_jobs_per_request;
  options.cancel = &session->cancel;
  Session* raw = session.get();
  options.log = [raw](const std::string& message) {
    raw->send(log_payload(message));
  };

  const DiffReport report = run_diff(options);
  session->send(done_payload(id, report.exit_code, report.ok(),
                             report.interrupted, report.error,
                             diff_report_json(report)));
  completed_.fetch_add(1);
  if (config_.verbose) {
    std::fprintf(stderr,
                 "vulfid: finished diff %llu: %zu unit(s), %llu new "
                 "experiments, exit %d\n",
                 static_cast<unsigned long long>(id), report.units.size(),
                 static_cast<unsigned long long>(report.new_experiments),
                 report.exit_code);
  }
  session->mark_done();
}

void CampaignServer::register_op(const std::string& name, ExtensionOp op) {
  // Pre-start only (enforced by convention): the accept loop reads this
  // map without a lock.
  extension_ops_[name] = std::move(op);
}

void CampaignServer::handle_extension(UnixConn conn, const std::string& name,
                                      const std::string& payload,
                                      const ExtensionOp& op) {
  const unsigned priority =
      static_cast<unsigned>(journal_u64(payload, "priority").value_or(1));
  if (priority > 3) {
    conn.send_frame(error_payload(
        strf("%s: priority must be 0..3", name.c_str())));
    return;
  }
  if (stopping_.load()) {
    conn.send_frame(error_payload("server is shutting down"));
    return;
  }

  const std::uint64_t id = next_id_.fetch_add(1);
  auto session = std::make_shared<Session>(std::move(conn));
  std::size_t depth = 0;
  const FairScheduler::Admit admit = scheduler_->submit(
      priority,
      [this, session, payload, &op, id] {
        // `op` outlives the job: registration is pre-start and the map is
        // never mutated afterwards.
        run_extension_job(session, payload, op, id);
      },
      &depth);
  if (admit == FairScheduler::Admit::QueueFull) {
    session->send(busy_payload(scheduler_->stats().queued,
                               config_.max_queue));
    return;
  }
  if (admit == FairScheduler::Admit::Stopping) {
    session->send(error_payload("server is shutting down"));
    return;
  }
  if (config_.verbose) {
    std::fprintf(stderr, "vulfid: accepted %s %llu (queue depth %zu)\n",
                 name.c_str(), static_cast<unsigned long long>(id), depth);
  }
  session->send(accepted_payload(id, depth));
  session->mark_ready();

  // Same connection watch as a submit: "cancel" or a disconnect flips
  // this request's token only.
  for (;;) {
    if (session->done_now()) break;
    std::string why;
    const std::optional<std::string> frame =
        session->conn.recv_frame(200, &why);
    if (frame) {
      if (journal_str(*frame, "op").value_or("") == "cancel") {
        session->cancel.request_cancel();
      }
      continue;
    }
    if (why == "timeout") continue;
    session->cancel.request_cancel();
    break;
  }
  session->wait_done();
}

void CampaignServer::run_extension_job(
    const std::shared_ptr<Session>& session, const std::string& payload,
    const ExtensionOp& op, std::uint64_t id) {
  session->wait_ready();
  if (session->cancel.cancelled()) {
    session->send(done_payload(id, kCampaignExitInterrupted, false, true,
                               "cancelled before start", "{}"));
    session->mark_done();
    completed_.fetch_add(1);
    return;
  }

  Session* raw = session.get();
  ExtensionHooks hooks;
  hooks.send_raw = [raw](const std::string& frame) {
    return raw->send(frame);
  };
  hooks.log = [raw](const std::string& message) {
    raw->send(log_payload(message));
  };
  hooks.cancel = &session->cancel;

  const ExtensionResult result = op(payload, hooks);
  session->send(done_payload(id, result.exit_code, result.converged,
                             result.interrupted, result.error,
                             result.result_json));
  completed_.fetch_add(1);
  session->mark_done();
}

std::string CampaignServer::stats_payload() const {
  const FairScheduler::Stats sched = scheduler_->stats();
  const EngineCacheStats cache = cache_.stats();
  return strf(
      "{\"t\":\"stats\",\"active\":%u,\"queued\":%llu,\"completed\":%llu,"
      "\"cache_entries\":%llu,\"cache_hits\":%llu,\"cache_misses\":%llu}",
      sched.active, static_cast<unsigned long long>(sched.queued),
      static_cast<unsigned long long>(completed_.load()),
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses));
}

}  // namespace vulfi::serve
