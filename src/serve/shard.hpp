// Fault-tolerant sharded campaigns: supervised multi-process workers.
//
// A campaign's experiment index space is counter-seeded — experiment
// (c, e) derives its RNG stream purely from (seed, c, e) — so the
// campaign index range [0, max_campaigns) can be partitioned into N
// contiguous shards whose union replays to statistics byte-identical to
// a single-process run. Each shard runs in its own worker *process*
// (fork + execve of this binary's hidden `shard-worker` subcommand),
// streaming a sealed, checksummed journal shard; a supervisor monitors
// workers via exit codes and heartbeat records on a status pipe,
// restarts crashed or stalled workers with exponential backoff + jitter
// (resuming each from its own shard journal without re-running
// siblings), and degrades to an explicit partial result — never a hang —
// when a shard exhausts its restart budget. A deterministic merge step
// recombines the shard journals into one resumable journal and applies
// the sequential stop rule over the ordered union, stopping at exactly
// the campaign index a single-process run stops at.
//
// Process tree and status-pipe format are documented in DESIGN.md §15.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "support/cancel.hpp"
#include "vulfi/campaign.hpp"

namespace vulfi::serve {

/// One shard's contiguous range of absolute campaign indices.
struct ShardRange {
  std::uint64_t first = 0;
  unsigned count = 0;
};

/// Partitions [0, max_campaigns) into `shards` contiguous ranges of
/// near-equal size (earlier shards take the remainder). Deterministic:
/// supervisor and workers recompute the same plan independently.
/// `shards` is clamped to [1, max_campaigns].
std::vector<ShardRange> shard_plan(unsigned max_campaigns, unsigned shards);

// --- shard worker ----------------------------------------------------------

/// One shard worker's execution parameters. The worker is a fresh
/// process (exec'd by the supervisor) so the request travels as its
/// serialized submit payload — doubles round-trip bit-exactly as hex.
struct ShardWorkerOptions {
  CampaignRequest request;
  unsigned shard_index = 0;
  unsigned shard_total = 1;
  /// Shard journal path (always set: it is the crash-recovery state).
  std::string journal_path;
  /// Write end of the supervisor's status pipe; -1 = no status stream.
  int status_fd = -1;
  /// Heartbeat cadence on the status pipe.
  unsigned heartbeat_ms = 250;
};

/// Runs one shard to completion in this process: builds the engines,
/// executes campaigns [plan[index].first, +count) with absolute indices,
/// journals to options.journal_path (resuming any prior history), and
/// streams sealed heartbeat + campaign records to status_fd. Installs
/// SIGINT/SIGTERM cooperative cancellation. Returns the process exit
/// code: 0 = range complete, 5 = interrupted, 3 = internal error,
/// 2 = bad options. The crash/hang hooks are read from
/// VULFI_CRASH_AFTER_EXPERIMENTS / VULFI_HANG_AFTER_EXPERIMENTS (test
/// builds only; see crash_hook_compiled()).
int run_shard_worker(const ShardWorkerOptions& options);

// --- deterministic merge ---------------------------------------------------

/// Outcome of merging shard journals into one campaign history.
struct ShardMergeOutcome {
  /// kCampaignExitConverged / Unconverged: complete merge (the stop rule
  /// decided, or max_campaigns records merged). kCampaignExitShardPartial:
  /// a gap in the record sequence before the stop rule was satisfied —
  /// the result covers the longest contiguous prefix, and
  /// `missing_shards` names the shards whose records are missing.
  /// kCampaignExitInternalError: refused (mismatched headers, duplicate
  /// campaign indices, malformed shard journals); `error` says why.
  int exit_code = kCampaignExitInternalError;
  std::string error;
  /// Replayed statistics of the merged prefix (converged flag included) —
  /// byte-identical to a single-process run's result over the same
  /// campaigns.
  CampaignResult result;
  /// The merged journal's header payload (unsealed).
  std::string header;
  /// Merged campaign record payloads (unsealed), in campaign order,
  /// exactly the records the merged journal holds.
  std::vector<std::string> records;
  /// Shard indices whose missing records truncated the merge (partial
  /// outcomes only).
  std::vector<unsigned> missing_shards;
};

/// Deterministically merges shard journals into `merged_path` (empty =
/// don't write, just replay). Validates that every shard journal was
/// written by this binary and this exact campaign configuration
/// (byte-compared headers, like checkpoint resume), that shard ranges
/// are disjoint and within [0, max_campaigns), and that no campaign
/// index appears twice. Replays records in campaign order through the
/// exact stop rule of a single-process run and writes the merged journal
/// as a plain (shard-record-free) checkpoint — `vulfi campaign
/// --checkpoint merged` resumes it directly.
ShardMergeOutcome merge_shards(const CampaignRequest& request,
                               const std::vector<std::string>& shard_paths,
                               const std::string& merged_path);

// --- supervisor ------------------------------------------------------------

struct SupervisorOptions {
  CampaignRequest request;
  /// Worker process count (>= 1; clamped to the campaign count).
  unsigned shards = 1;
  /// Restart budget per shard. Exhaustion marks the shard failed and the
  /// campaign degrades to a partial result (exit 6) when the stop rule
  /// needed the missing campaigns.
  unsigned max_restarts = 3;
  /// Exponential backoff between restarts of one shard:
  /// min(cap, base * 2^(attempt-1)) + jitter in [0, base), jitter drawn
  /// from a counter-seeded stream (deterministic per seed/shard/attempt).
  unsigned backoff_base_ms = 100;
  unsigned backoff_cap_ms = 5000;
  /// Worker heartbeat cadence on the status pipe.
  unsigned heartbeat_ms = 250;
  /// Per-worker stall detection: a worker whose experiment progress
  /// counter is frozen for this long is SIGKILLed and restarted under
  /// the same backoff policy (a hung worker still heartbeats — the
  /// *progress value* is what must advance). 0 = use the request's
  /// --stall-timeout; both 0 = disabled.
  double stall_timeout_seconds = 0.0;
  /// Journal base path: shards live at <base>.shard<i>, the merged
  /// journal at <base>. Empty = a private temp dir, removed after a
  /// fully successful run.
  std::string journal_base;
  /// Worker executable; empty = /proc/self/exe.
  std::string worker_binary;
  /// Cooperative cancellation: SIGTERMs every worker, waits for their
  /// drained exits, merges what completed, reports interrupted.
  const CancellationToken* cancel = nullptr;
  /// Ordered sealed journal lines (header first, then campaign records
  /// in campaign order) as the merged prefix advances — the same stream
  /// a single-process service submit produces, so a client transcript
  /// stays a valid resumable journal.
  std::function<void(const std::string&)> on_sealed_record;
  /// Human-readable supervision events (worker exits, restarts, stalls).
  std::function<void(const std::string&)> on_log;
};

struct SupervisorResult {
  /// Campaign exit-code contract, extended: 0 converged / 4 complete but
  /// unconverged / 5 interrupted / 6 partial (restart budget exhausted
  /// or journal gap) / 3 internal error.
  int exit_code = kCampaignExitInternalError;
  std::string error;
  /// Merged statistics (from merge_shards; empty on refusal).
  CampaignResult result;
  /// Path of the merged resumable journal ("" when merging failed before
  /// the journal was written).
  std::string merged_path;
  /// Shards that exhausted their restart budget.
  std::vector<unsigned> failed_shards;
  /// Total worker restarts across the run (crashes + stalls).
  unsigned restarts = 0;
  bool interrupted = false;
};

/// Runs a campaign as `shards` supervised worker processes and merges
/// their journals. Blocks until the campaign completes, degrades to a
/// partial result, or is cancelled — never hangs on a crashed, killed,
/// or wedged worker.
SupervisorResult run_sharded_campaign(const SupervisorOptions& options);

}  // namespace vulfi::serve
