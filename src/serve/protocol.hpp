// Wire protocol of the campaign service (vulfid).
//
// Transport: length-prefixed JSONL frames over a Unix-domain socket
// (support/socket.hpp). Every message is one JSON object; the "op" field
// names client requests (submit, ping, stats, shutdown, cancel) and the
// "t" field tags server responses.
//
// The response stream of a submit is deliberately journal-shaped: after
// an "accepted" and an "engines" message, the server streams the sealed
// checkpoint-journal records of the run — one header record, then one
// record per completed campaign, restored history included — followed by
// a "done" message carrying the exit code and the deterministic
// statistics JSON. A client that appends the sealed records to a file
// therefore owns a valid checkpoint journal: if the connection drops
// mid-campaign it can resubmit with that file as --checkpoint and the
// service resumes bit-identically (counter-based seeding).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vulfi::serve {

/// Bumped when a frame written by this build would not parse under the
/// previous one. Reported by "pong" so clients can refuse to talk.
constexpr unsigned kProtocolVersion = 1;

/// One campaign submission: the `vulfi campaign` CLI surface as data.
/// Doubles travel as 16-hex-digit IEEE-754 bit patterns (double_hex), so
/// a request round-trips bit-exactly — a prerequisite for the service's
/// statistics matching a direct CLI run byte for byte.
struct CampaignRequest {
  std::string benchmark;
  std::string category = "pure-data";  ///< pure-data | control | address
  std::string isa = "avx";             ///< avx | sse
  /// Vector length override: 0 = the ISA's native width (avx 8, sse 4);
  /// 1 = the scalar serial baseline; otherwise one of {2, 4, 8, 16}.
  /// Only emitted on the wire when non-zero, so pre-vl clients and
  /// servers interoperate unchanged.
  unsigned vl = 0;
  unsigned experiments = 100;
  unsigned min_campaigns = 20;
  unsigned max_campaigns = 0;  ///< 0 = 2 * min_campaigns (CLI default)
  std::uint64_t seed = 24029;
  unsigned jobs = 1;
  bool golden_cache = true;
  bool static_prune = true;
  bool detectors = false;
  /// Execution backend: "interp" (pre-decoded interpreter) or "jit" (the
  /// template JIT). Statistics are bit-identical either way; the cache
  /// keys on it so leased engine sets stay backend-homogeneous.
  std::string backend = "interp";
  /// Scheduling class, 0 (most urgent) .. 3; FIFO within a class.
  unsigned priority = 1;
  /// Sharded execution: 0 = in-process (default); N >= 1 = run the
  /// campaign as N supervised worker processes with crash recovery and a
  /// bit-identical merge (serve/shard.hpp). `--shards 1` exercises the
  /// full worker/merge machinery with a single worker.
  unsigned shards = 0;
  /// Per-shard restart budget before the campaign degrades to a partial
  /// result (sharded runs only).
  unsigned max_restarts = 3;
  double confidence = 0.95;
  double target_margin = 0.03;
  unsigned self_verify = 0;
  double stall_timeout = 0.0;
  /// Server-side checkpoint journal path ("" = none). The socket is
  /// local by construction, so client and server share a filesystem.
  std::string checkpoint;
  std::string fsync = "always";  ///< always | batch | off

  unsigned resolved_max_campaigns() const {
    return max_campaigns != 0 ? max_campaigns : min_campaigns * 2;
  }
};

/// {"op":"submit",...} payload for `request`.
std::string serialize_request(const CampaignRequest& request);

/// The campaign-knob fields of a submit payload (benchmark included),
/// without the enclosing braces or "op". Shared by submit and diff so
/// the two ops cannot drift apart.
std::string campaign_fields_json(const CampaignRequest& request);

/// Parses the campaign-knob fields of `payload` into `request` with the
/// same validation parse_request applies (benchmark may be empty here —
/// diff requests carry units instead). `ctx` prefixes error messages.
bool parse_campaign_fields(const std::string& payload,
                           CampaignRequest* request, std::string* error,
                           const char* ctx);

/// Parses a submit payload. Rejects missing/empty benchmark, unknown
/// category/isa/fsync names, zero experiment or campaign counts, and
/// out-of-range priorities; `error` (when non-null) says why. Does NOT
/// consult the benchmark registry — the server validates names against
/// it separately so the protocol layer stays registry-free.
std::optional<CampaignRequest> parse_request(const std::string& payload,
                                             std::string* error = nullptr);

// --- response payload builders --------------------------------------------

std::string accepted_payload(std::uint64_t id, std::size_t queue_depth);
std::string busy_payload(std::size_t queued, std::size_t limit);
std::string error_payload(const std::string& message);
std::string engines_payload(std::size_t engines, bool cache_hit);
std::string log_payload(const std::string& message);
/// `stats_json` is spliced in raw (it is already deterministic JSON from
/// campaign_stats_json); `error` is escaped.
std::string done_payload(std::uint64_t id, int exit_code, bool converged,
                         bool interrupted, const std::string& error,
                         const std::string& stats_json);
std::string pong_payload();
std::string bye_payload(std::uint64_t completed);

// --- small JSON utilities --------------------------------------------------

/// Escapes `"` `\` and control bytes for embedding in a JSON string.
std::string json_escape(std::string_view text);

/// Extracts the raw `{...}` object value of `"key"` from a flat JSON
/// payload (string-aware brace scanning; no general parser). nullopt when
/// the key is absent or its value is not an object.
std::optional<std::string> extract_json_object(const std::string& payload,
                                               const char* key);

/// Seed corpus for the frame/request fuzz tests: raw byte strings —
/// well-formed frames, truncations, hostile length prefixes, non-JSON
/// payloads, oversized declarations — all of which the server must
/// survive without crashing.
std::vector<std::string> protocol_fuzz_seeds();

}  // namespace vulfi::serve
