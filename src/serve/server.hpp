// vulfid — the persistent campaign daemon.
//
// `vulfi serve --socket PATH` turns the one-shot CLI into a service: a
// Unix-domain listener accepts framed JSONL requests (serve/protocol.hpp),
// a fair scheduler (serve/scheduler.hpp) multiplexes campaigns across a
// bounded worker pool, and a warm-engine cache (serve/engine_cache.hpp)
// amortizes kernel compilation, instrumentation, golden runs, and prune
// analysis across requests. Statistics are bit-identical to a direct CLI
// run — the daemon calls the same run_campaigns with the same
// counter-seeded configuration; only the cold-start work is shared.
//
// Per-connection lifecycle of a submit: validate, admit (or answer
// "busy"), stream the sealed journal records as campaigns complete, and
// finish with a "done" frame. The connection thread keeps reading while
// the campaign runs: a "cancel" frame or a client disconnect flips that
// request's private CancellationToken — workers drain the in-flight
// experiment, completed campaigns stay checkpointed, and no other
// request is disturbed. `vulfi shutdown` (or SIGINT/SIGTERM on the
// daemon) stops admission, drains every admitted campaign, then exits.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine_cache.hpp"
#include "serve/scheduler.hpp"
#include "support/cancel.hpp"
#include "support/socket.hpp"

namespace vulfi::serve {

/// Hooks handed to a registered extension op while its job runs on a
/// scheduler worker. `send_raw` streams an already-serialized frame
/// payload to the client (sealed journal records, progress frames);
/// `log` sends a "log" frame; `cancel` is this request's private token,
/// flipped by a client "cancel" frame or a disconnect.
struct ExtensionHooks {
  std::function<bool(const std::string&)> send_raw;
  std::function<void(const std::string&)> log;
  const CancellationToken* cancel = nullptr;
};

/// Final frame of an extension op, mapped onto the shared "done" frame
/// (`result_json` is spliced raw where a submit puts its stats).
struct ExtensionResult {
  int exit_code = 3;
  bool converged = false;
  bool interrupted = false;
  std::string error;
  std::string result_json;  ///< already-deterministic JSON; "{}" if empty
};

using ExtensionOp = std::function<ExtensionResult(
    const std::string& payload, const ExtensionHooks& hooks)>;

struct ServerConfig {
  std::string socket_path;
  /// Concurrent campaigns (scheduler workers).
  unsigned workers = 1;
  /// Admission bound; beyond it submits get a "busy" frame.
  std::size_t max_queue = 16;
  /// Per-request thread quota: no single campaign may claim more worker
  /// threads than this, regardless of its --jobs. 0 = uncapped.
  unsigned max_jobs_per_request = 4;
  /// Warm prototype engine sets kept resident (LRU).
  std::size_t cache_entries = 8;
  /// Worker binary exec'd for sharded submits; "" = /proc/self/exe,
  /// which is right for the real daemon (vulfid IS the vulfi binary) but
  /// not for in-process test servers.
  std::string shard_worker_binary;
  /// Log accepts/finishes to stderr.
  bool verbose = false;
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerConfig config);
  ~CampaignServer();
  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Binds the socket and starts the accept loop. False (with `error`
  /// set) when the path is unusable or a live daemon already owns it.
  bool start(std::string* error = nullptr);

  /// Begins the drain: stop accepting, finish every admitted campaign,
  /// release the socket. Idempotent; returns once drained.
  void request_shutdown();

  /// True once request_shutdown (or a client "shutdown") completed.
  bool stopped() const { return drained_.load(); }

  /// Blocks until the server has fully stopped and joins every thread.
  void wait();

  std::uint64_t campaigns_served() const { return completed_.load(); }
  const EngineCache& cache() const { return cache_; }
  EngineCache& cache() { return cache_; }
  unsigned max_jobs_per_request() const {
    return config_.max_jobs_per_request;
  }

  /// Registers `op` as a first-class request op with the same admission,
  /// priority ("priority" field of the payload, default 1), cancellation
  /// watch, and response grammar as submit/diff. Must be called before
  /// start(). This is how src/study serves {"op":"study"} without the
  /// serve layer depending on the study subsystem.
  void register_op(const std::string& name, ExtensionOp op);

 private:
  struct Session;

  void accept_loop();
  void handle_connection(UnixConn conn);
  void handle_submit(UnixConn conn, const std::string& payload);
  void handle_diff(UnixConn conn, const std::string& payload);
  void handle_extension(UnixConn conn, const std::string& name,
                        const std::string& payload, const ExtensionOp& op);
  void run_extension_job(const std::shared_ptr<Session>& session,
                         const std::string& payload, const ExtensionOp& op,
                         std::uint64_t id);
  void run_job(const std::shared_ptr<Session>& session,
               const CampaignRequest& request, std::uint64_t id);
  void run_shard_job(const std::shared_ptr<Session>& session,
                     const CampaignRequest& request, std::uint64_t id);
  void run_diff_job(const std::shared_ptr<Session>& session,
                    const struct DiffRequest& request, std::uint64_t id);
  std::string stats_payload() const;
  void drain();

  ServerConfig config_;
  UnixListener listener_;
  EngineCache cache_;
  std::map<std::string, ExtensionOp> extension_ops_;
  std::unique_ptr<FairScheduler> scheduler_;
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drained_{false};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool drain_started_ = false;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace vulfi::serve
