// Warm-engine cache: the reason a persistent daemon beats cold CLI runs.
//
// Building the engines for a campaign is the expensive, campaign-
// independent prefix of every request: compile the SPMD kernel module,
// insert detectors, instrument every instruction, run and memoize the
// golden execution, take the fault-site census, and compute the
// PrunePlan. All of that depends only on (benchmark, ISA, category,
// detectors, golden-cache and static-prune toggles) — never on seeds,
// campaign counts, or thread counts — so the daemon keeps one warmed
// prototype engine set per such key and serves each request a private
// InjectionEngine::clone() of it. Clones share the immutable GoldenCache
// by shared_ptr and re-instrument from the pristine spec, so concurrent
// requests never share mutable state, and statistics are bit-identical
// to a cold build by the clone() contract.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

namespace vulfi::serve {

/// "" when `request` names a known benchmark/category/isa; otherwise a
/// usage-error message. Lets the server reject bad submits before they
/// consume a queue slot.
std::string validate_request_names(const CampaignRequest& request);

/// Maps a request onto the campaign layer's configuration. `max_jobs`
/// caps the per-request worker count (the scheduler's fairness quota);
/// 0 = no cap. Cancellation, logging, and streaming hooks are left for
/// the caller to fill in.
CampaignConfig to_campaign_config(const CampaignRequest& request,
                                  unsigned max_jobs);

struct EngineCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

class EngineCache {
 private:
  struct Entry;

 public:
  /// `max_entries` bounds resident prototype sets (LRU eviction); each
  /// holds one engine per benchmark input plus its golden memo.
  explicit EngineCache(std::size_t max_entries = 8);

  /// A request's private engine set. `cache_hit` reports whether the
  /// prototypes already existed; `error` is non-empty when the benchmark
  /// is unknown or the build failed (the entry is not retained).
  ///
  /// Engine sets recycle: destroying a Lease returns its engines to the
  /// entry's idle pool, and the next same-key acquire reuses them
  /// instead of paying a fresh clone (re-instrumentation is most of the
  /// warm path). Reuse is statistics-exact for the same reason
  /// run_campaigns may reuse one engine across every campaign of a run:
  /// experiments are pure functions of their counter-derived seeds, and
  /// the only state that accumulates (the prune memo) is an exact
  /// memoization whose hit count is already documented as indicative.
  /// Clones are built only when concurrent same-key requests outnumber
  /// the idle sets.
  struct Lease {
    std::vector<std::unique_ptr<InjectionEngine>> engines;
    bool cache_hit = false;
    std::string error;
    bool ok() const { return error.empty(); }

    Lease();
    ~Lease();  // returns the engines to the entry's idle pool
    Lease(Lease&&) noexcept;
    Lease& operator=(Lease&&) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

   private:
    friend class EngineCache;
    std::shared_ptr<Entry> entry_;
  };
  Lease acquire(const CampaignRequest& request);

  /// The cache key: every engine-shaping request field, nothing else.
  static std::string key_of(const CampaignRequest& request);

  EngineCacheStats stats() const;

 private:
  std::size_t max_entries_;
  mutable std::mutex mutex_;  ///< guards the map + counters, not builds
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
};

}  // namespace vulfi::serve
