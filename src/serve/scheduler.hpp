// Fair scheduler for the campaign service.
//
// Requests land in priority classes (0 most urgent .. 3); within a class
// the queue is strictly FIFO, so two clients racing submits at the same
// priority are served in arrival order. A fixed pool of worker threads
// drains the queue — `workers` bounds how many campaigns run
// concurrently, while per-request thread quotas (engine_cache.hpp's
// to_campaign_config cap) bound how wide each one runs. Admission is
// bounded: when `max_queue` requests are already waiting, submit()
// reports QueueFull and the server answers with a "busy" frame instead
// of buffering unboundedly (backpressure, not memory growth).
//
// Shutdown drains: drain_and_stop() rejects new work but runs everything
// already admitted to completion before joining the workers — exactly
// the `vulfi shutdown` contract.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace vulfi::serve {

class FairScheduler {
 public:
  using Job = std::function<void()>;

  struct Config {
    unsigned workers = 1;       ///< concurrent campaigns
    std::size_t max_queue = 16; ///< admitted-but-not-running bound
  };

  enum class Admit { Accepted, QueueFull, Stopping };

  explicit FairScheduler(Config config);
  ~FairScheduler();
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Enqueues `job` in its priority class. On Accepted, `queue_depth`
  /// (when non-null) receives the number of admitted jobs ahead of or
  /// including this one — the client-visible queue position bound.
  Admit submit(unsigned priority, Job job,
               std::size_t* queue_depth = nullptr);

  /// Stops admission, runs every queued job, joins the workers.
  /// Idempotent; safe to call from a worker-adjacent thread (never from
  /// inside a job).
  void drain_and_stop();

  struct Stats {
    std::size_t queued = 0;
    unsigned active = 0;
    std::uint64_t completed = 0;
  };
  Stats stats() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// (priority, admission sequence) -> job: map order IS schedule order.
  std::map<std::pair<unsigned, std::uint64_t>, Job> queue_;
  std::uint64_t next_sequence_ = 0;
  unsigned active_ = 0;
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  bool joined_ = false;
  std::size_t max_queue_;
  std::vector<std::thread> workers_;
};

}  // namespace vulfi::serve
