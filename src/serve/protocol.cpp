#include "serve/protocol.hpp"

#include "support/journal.hpp"
#include "support/socket.hpp"
#include "support/str.hpp"
#include "support/version.hpp"

namespace vulfi::serve {

namespace {

bool known_category(const std::string& name) {
  return name == "pure-data" || name == "puredata" || name == "control" ||
         name == "ctrl" || name == "address" || name == "addr";
}

bool known_isa(const std::string& name) {
  return name == "avx" || name == "sse" || name == "sse4";
}

bool known_backend(const std::string& name) {
  return name == "interp" || name == "jit";
}

bool known_vl(unsigned vl) {
  return vl == 0 || vl == 1 || vl == 2 || vl == 4 || vl == 8 || vl == 16;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::string campaign_fields_json(const CampaignRequest& request) {
  std::string payload = strf(
      "\"benchmark\":\"%s\",\"category\":\"%s\","
      "\"isa\":\"%s\",\"experiments\":%u,\"campaigns\":%u,"
      "\"max_campaigns\":%u,\"seed\":%llu,\"jobs\":%u,\"gcache\":%u,"
      "\"sprune\":%u,\"detectors\":%u,\"priority\":%u,\"conf\":\"%s\","
      "\"margin\":\"%s\",\"self_verify\":%u,\"stall\":\"%s\",\"fsync\":\"%s\"",
      json_escape(request.benchmark).c_str(),
      json_escape(request.category).c_str(), json_escape(request.isa).c_str(),
      request.experiments, request.min_campaigns, request.max_campaigns,
      static_cast<unsigned long long>(request.seed), request.jobs,
      request.golden_cache ? 1u : 0u, request.static_prune ? 1u : 0u,
      request.detectors ? 1u : 0u, request.priority,
      double_hex(request.confidence).c_str(),
      double_hex(request.target_margin).c_str(), request.self_verify,
      double_hex(request.stall_timeout).c_str(),
      json_escape(request.fsync).c_str());
  payload +=
      strf(",\"backend\":\"%s\"", json_escape(request.backend).c_str());
  if (request.vl != 0) payload += strf(",\"vl\":%u", request.vl);
  if (request.shards != 0) {
    payload += strf(",\"shards\":%u,\"max_restarts\":%u", request.shards,
                    request.max_restarts);
  }
  if (!request.checkpoint.empty()) {
    payload += strf(",\"checkpoint\":\"%s\"",
                    json_escape(request.checkpoint).c_str());
  }
  return payload;
}

std::string serialize_request(const CampaignRequest& request) {
  return "{\"op\":\"submit\"," + campaign_fields_json(request) + "}";
}

bool parse_campaign_fields(const std::string& payload,
                           CampaignRequest* request, std::string* error,
                           const char* ctx) {
  auto u64 = [&](const char* key, std::uint64_t fallback) {
    return journal_u64(payload, key).value_or(fallback);
  };
  auto dbl = [&](const char* key, double fallback) {
    const std::optional<std::string> hex = journal_str(payload, key);
    if (!hex) return fallback;
    return double_from_hex(*hex).value_or(fallback);
  };

  request->benchmark = journal_str(payload, "benchmark").value_or("");
  request->category = journal_str(payload, "category").value_or("pure-data");
  request->isa = journal_str(payload, "isa").value_or("avx");
  request->fsync = journal_str(payload, "fsync").value_or("always");
  request->checkpoint = journal_str(payload, "checkpoint").value_or("");
  if (!known_category(request->category)) {
    return fail(error, strf("%s: category must be pure-data, control, or "
                            "address", ctx));
  }
  if (!known_isa(request->isa)) {
    return fail(error, strf("%s: isa must be avx or sse", ctx));
  }
  if (!journal_sync_from_name(request->fsync)) {
    return fail(error, strf("%s: fsync must be always, batch, or off", ctx));
  }
  request->backend = journal_str(payload, "backend").value_or("interp");
  if (!known_backend(request->backend)) {
    return fail(error, strf("%s: backend must be interp or jit", ctx));
  }

  request->experiments = static_cast<unsigned>(u64("experiments", 100));
  request->min_campaigns = static_cast<unsigned>(u64("campaigns", 20));
  request->max_campaigns = static_cast<unsigned>(u64("max_campaigns", 0));
  request->seed = u64("seed", 24029);
  request->jobs = static_cast<unsigned>(u64("jobs", 1));
  request->golden_cache = u64("gcache", 1) != 0;
  request->static_prune = u64("sprune", 1) != 0;
  request->detectors = u64("detectors", 0) != 0;
  request->priority = static_cast<unsigned>(u64("priority", 1));
  request->self_verify = static_cast<unsigned>(u64("self_verify", 0));
  request->confidence = dbl("conf", 0.95);
  request->target_margin = dbl("margin", 0.03);
  request->stall_timeout = dbl("stall", 0.0);

  if (request->experiments == 0 || request->min_campaigns == 0) {
    return fail(error,
                strf("%s: experiments and campaigns must be positive", ctx));
  }
  if (request->max_campaigns != 0 &&
      request->max_campaigns < request->min_campaigns) {
    return fail(error, strf("%s: max_campaigns below campaigns", ctx));
  }
  if (request->priority > 3) {
    return fail(error, strf("%s: priority must be 0..3", ctx));
  }
  request->vl = static_cast<unsigned>(u64("vl", 0));
  if (!known_vl(request->vl)) {
    return fail(error, strf("%s: vl must be one of 1, 2, 4, 8, 16", ctx));
  }
  request->shards = static_cast<unsigned>(u64("shards", 0));
  request->max_restarts = static_cast<unsigned>(u64("max_restarts", 3));
  if (request->shards > 64) {
    return fail(error, strf("%s: shards must be 0..64", ctx));
  }
  if (!(request->confidence > 0.0 && request->confidence < 1.0) ||
      !(request->target_margin > 0.0)) {
    return fail(error,
                strf("%s: confidence must be in (0,1), margin positive", ctx));
  }
  return true;
}

std::optional<CampaignRequest> parse_request(const std::string& payload,
                                             std::string* error) {
  CampaignRequest request;
  const std::optional<std::string> benchmark =
      journal_str(payload, "benchmark");
  if (!benchmark || benchmark->empty()) {
    fail(error, "submit: missing benchmark");
    return std::nullopt;
  }
  if (!parse_campaign_fields(payload, &request, error, "submit")) {
    return std::nullopt;
  }
  return request;
}

std::string accepted_payload(std::uint64_t id, std::size_t queue_depth) {
  return strf("{\"t\":\"accepted\",\"id\":%llu,\"queued\":%llu}",
              static_cast<unsigned long long>(id),
              static_cast<unsigned long long>(queue_depth));
}

std::string busy_payload(std::size_t queued, std::size_t limit) {
  return strf("{\"t\":\"busy\",\"queued\":%llu,\"limit\":%llu}",
              static_cast<unsigned long long>(queued),
              static_cast<unsigned long long>(limit));
}

std::string error_payload(const std::string& message) {
  return strf("{\"t\":\"error\",\"message\":\"%s\"}",
              json_escape(message).c_str());
}

std::string engines_payload(std::size_t engines, bool cache_hit) {
  return strf("{\"t\":\"engines\",\"engines\":%llu,\"cache\":\"%s\"}",
              static_cast<unsigned long long>(engines),
              cache_hit ? "hit" : "miss");
}

std::string log_payload(const std::string& message) {
  return strf("{\"t\":\"log\",\"message\":\"%s\"}",
              json_escape(message).c_str());
}

std::string done_payload(std::uint64_t id, int exit_code, bool converged,
                         bool interrupted, const std::string& error,
                         const std::string& stats_json) {
  return strf(
      "{\"t\":\"done\",\"id\":%llu,\"exit\":%d,\"converged\":%u,"
      "\"interrupted\":%u,\"error\":\"%s\",\"stats\":%s}",
      static_cast<unsigned long long>(id), exit_code, converged ? 1u : 0u,
      interrupted ? 1u : 0u, json_escape(error).c_str(),
      stats_json.empty() ? "{}" : stats_json.c_str());
}

std::string pong_payload() {
  return strf("{\"t\":\"pong\",\"protocol\":%u,\"build\":\"%s\"}",
              kProtocolVersion, build_fingerprint().c_str());
}

std::string bye_payload(std::uint64_t completed) {
  return strf("{\"t\":\"bye\",\"completed\":%llu}",
              static_cast<unsigned long long>(completed));
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::optional<std::string> extract_json_object(const std::string& payload,
                                               const char* key) {
  const std::string needle = strf("\"%s\":", key);
  const std::size_t at = payload.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= payload.size() || payload[i] != '{') return std::nullopt;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t j = i; j < payload.size(); ++j) {
    const char c = payload[j];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      depth += 1;
    } else if (c == '}') {
      depth -= 1;
      if (depth == 0) return payload.substr(i, j + 1 - i);
    }
  }
  return std::nullopt;
}

std::vector<std::string> protocol_fuzz_seeds() {
  std::vector<std::string> seeds;
  // Well-formed frames the server must answer, not crash on.
  seeds.push_back(frame_encode("{\"op\":\"ping\"}"));
  seeds.push_back(frame_encode("{\"op\":\"stats\"}"));
  seeds.push_back(frame_encode(serialize_request(CampaignRequest{})));
  // Valid frames with invalid requests: JSON-ish garbage, wrong types,
  // missing fields, unknown ops, empty payload.
  seeds.push_back(frame_encode(""));
  seeds.push_back(frame_encode("{}"));
  seeds.push_back(frame_encode("not json at all"));
  seeds.push_back(frame_encode("{\"op\":\"submit\"}"));
  seeds.push_back(frame_encode("{\"op\":\"submit\",\"benchmark\":\"\"}"));
  seeds.push_back(frame_encode(
      "{\"op\":\"submit\",\"benchmark\":\"no-such-kernel\"}"));
  seeds.push_back(frame_encode(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"category\":\"bogus\"}"));
  seeds.push_back(frame_encode(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"experiments\":0}"));
  seeds.push_back(frame_encode(
      "{\"op\":\"submit\",\"benchmark\":\"dot\",\"priority\":99}"));
  seeds.push_back(frame_encode("{\"op\":\"warp-core-breach\"}"));
  seeds.push_back(frame_encode(std::string(1000, '{')));
  // Framing attacks: bad hex, wrong separator, missing newline, length
  // lies (short and long), oversized declarations, truncated bodies,
  // binary noise.
  seeds.push_back("zzzzzzzz:{}\n");
  seeds.push_back("00000002;{}\n");
  seeds.push_back("00000002:{}X");
  seeds.push_back("00000010:{}\n");
  seeds.push_back("00000001:{}\n");
  seeds.push_back("fffffff0:{}\n");
  seeds.push_back("00200000:\n");  // 2 MiB declared: over the 1 MiB cap
  seeds.push_back("0000");         // truncated header
  seeds.push_back("00000004:{\"a");  // truncated body
  seeds.push_back(std::string("\x00\x01\x02\x03\xff\xfe:\n\n", 9));
  seeds.push_back(std::string(64, '\n'));
  return seeds;
}

}  // namespace vulfi::serve
