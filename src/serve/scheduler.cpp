#include "serve/scheduler.hpp"

namespace vulfi::serve {

FairScheduler::FairScheduler(Config config)
    : max_queue_(config.max_queue == 0 ? 1 : config.max_queue) {
  const unsigned workers = config.workers == 0 ? 1 : config.workers;
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

FairScheduler::~FairScheduler() { drain_and_stop(); }

FairScheduler::Admit FairScheduler::submit(unsigned priority, Job job,
                                           std::size_t* queue_depth) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Admit::Stopping;
    if (queue_.size() >= max_queue_) return Admit::QueueFull;
    queue_.emplace(std::make_pair(priority, next_sequence_++),
                   std::move(job));
    if (queue_depth != nullptr) *queue_depth = queue_.size();
  }
  cv_.notify_one();
  return Admit::Accepted;
}

void FairScheduler::drain_and_stop() {
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (joined_) return;
    joined_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  // Workers exit only once the queue is empty, so joining them IS the
  // drain barrier.
  for (std::thread& worker : workers) worker.join();
}

void FairScheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    auto it = queue_.begin();    // lowest (priority, sequence): fair pick
    Job job = std::move(it->second);
    queue_.erase(it);
    active_ += 1;
    lock.unlock();
    job();
    lock.lock();
    active_ -= 1;
    completed_ += 1;
  }
}

FairScheduler::Stats FairScheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.queued = queue_.size();
  stats.active = active_;
  stats.completed = completed_;
  return stats;
}

}  // namespace vulfi::serve
