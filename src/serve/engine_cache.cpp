#include "serve/engine_cache.hpp"

#include <utility>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "kernels/benchmark.hpp"
#include "spmd/target.hpp"
#include "support/str.hpp"

namespace vulfi::serve {

namespace {

analysis::FaultSiteCategory category_of(const std::string& name) {
  if (name == "control" || name == "ctrl") {
    return analysis::FaultSiteCategory::Control;
  }
  if (name == "address" || name == "addr") {
    return analysis::FaultSiteCategory::Address;
  }
  return analysis::FaultSiteCategory::PureData;
}

spmd::Target target_of(const std::string& isa, unsigned vl) {
  spmd::Target target =
      isa == "avx" ? spmd::Target::avx() : spmd::Target::sse4();
  // vl == 0 keeps the ISA's native width; vl == 1 is the scalar serial
  // baseline of the width study (KernelBuilder lowers it mask-free).
  if (vl != 0) target.vector_width = vl;
  return target;
}

}  // namespace

std::string validate_request_names(const CampaignRequest& request) {
  if (kernels::find_benchmark(request.benchmark) == nullptr) {
    return strf("unknown benchmark '%s' (try: vulfi list)",
                request.benchmark.c_str());
  }
  return "";
}

CampaignConfig to_campaign_config(const CampaignRequest& request,
                                  unsigned max_jobs) {
  CampaignConfig config;
  config.experiments_per_campaign = request.experiments;
  config.min_campaigns = request.min_campaigns;
  config.max_campaigns = request.resolved_max_campaigns();
  config.confidence = request.confidence;
  config.target_margin = request.target_margin;
  config.seed = request.seed;
  config.num_threads = request.jobs;
  if (max_jobs != 0) {
    // The fairness quota: one request may not monopolize the host. 0
    // (hardware concurrency) is clamped too — the cap is the point.
    if (config.num_threads == 0 || config.num_threads > max_jobs) {
      config.num_threads = max_jobs;
    }
  }
  config.use_golden_cache = request.golden_cache;
  config.use_static_prune = request.static_prune;
  config.checkpoint_path = request.checkpoint;
  config.journal_sync =
      journal_sync_from_name(request.fsync).value_or(JournalSync::Always);
  config.self_verify_every = request.self_verify;
  config.stall_timeout_seconds = request.stall_timeout;
  config.backend = request.backend == "jit" ? interp::ExecMode::Jit
                                            : interp::ExecMode::PreDecoded;
  return config;
}

struct EngineCache::Entry {
  /// Idle ready-to-run engine sets returned by finished leases, beyond
  /// which returned sets are simply destroyed (memory bound).
  static constexpr std::size_t kMaxIdleSets = 4;

  std::mutex build_mutex;  ///< serializes build + clone + pool per key
  bool built = false;
  std::string error;
  std::vector<std::unique_ptr<InjectionEngine>> prototypes;
  std::vector<std::vector<std::unique_ptr<InjectionEngine>>> idle_sets;
  std::uint64_t last_used = 0;
};

EngineCache::Lease::Lease() = default;
EngineCache::Lease::Lease(Lease&&) noexcept = default;
EngineCache::Lease& EngineCache::Lease::operator=(Lease&&) noexcept = default;

EngineCache::Lease::~Lease() {
  if (entry_ == nullptr || engines.empty()) return;
  const std::lock_guard<std::mutex> lock(entry_->build_mutex);
  if (entry_->idle_sets.size() < Entry::kMaxIdleSets) {
    entry_->idle_sets.push_back(std::move(engines));
  }
}

EngineCache::EngineCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::string EngineCache::key_of(const CampaignRequest& request) {
  // The backend is part of the key even though statistics are
  // backend-independent: a leased engine set carries warmed backend state
  // (compiled code, decode caches), so sets stay backend-homogeneous.
  std::string key = strf(
      "%s|%s|%s|det%u|gc%u|sp%u|be-%s", request.benchmark.c_str(),
      request.isa == "avx" ? "avx" : "sse", request.category.c_str(),
      request.detectors ? 1u : 0u, request.golden_cache ? 1u : 0u,
      request.static_prune ? 1u : 0u, request.backend.c_str());
  // Appended only for explicit overrides so pre-vl keys stay stable.
  if (request.vl != 0) key += strf("|vl%u", request.vl);
  return key;
}

EngineCache::Lease EngineCache::acquire(const CampaignRequest& request) {
  Lease lease;
  const std::string key = key_of(request);

  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tick_ += 1;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_ += 1;
      lease.cache_hit = true;
      entry = it->second;
    } else {
      misses_ += 1;
      entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
      // LRU eviction; the shared_ptr keeps an evicted set alive for any
      // request still cloning from it.
      while (entries_.size() > max_entries_) {
        auto victim = entries_.end();
        for (auto e = entries_.begin(); e != entries_.end(); ++e) {
          if (e->second == entry) continue;
          if (victim == entries_.end() ||
              e->second->last_used < victim->second->last_used) {
            victim = e;
          }
        }
        if (victim == entries_.end()) break;
        entries_.erase(victim);
      }
    }
    entry->last_used = tick_;
  }

  // Build (first acquirer) and clone under the per-entry mutex: requests
  // for different kernels warm concurrently, requests for the same one
  // share a single build.
  const std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (!entry->built) {
    entry->built = true;
    const kernels::Benchmark* bench =
        kernels::find_benchmark(request.benchmark);
    if (bench == nullptr) {
      entry->error = strf("unknown benchmark '%s'", request.benchmark.c_str());
    } else {
      const spmd::Target target = target_of(request.isa, request.vl);
      const analysis::FaultSiteCategory category =
          category_of(request.category);
      for (unsigned input = 0; input < bench->num_inputs(); ++input) {
        RunSpec spec = bench->build(target, input);
        if (request.detectors) {
          detect::insert_foreach_detectors(*spec.module);
        }
        auto engine = std::make_unique<InjectionEngine>(std::move(spec),
                                                        category);
        if (request.detectors) {
          engine->setup_runtime(
              [](interp::RuntimeEnv& env, interp::DetectionLog& log) {
                detect::attach_detector_runtime(env, log);
              });
        }
        // Warm now so every future clone inherits the golden memo and
        // the request pays only campaign time (run_campaigns re-applies
        // the same toggles; both operations are idempotent).
        engine->set_golden_cache_enabled(request.golden_cache);
        engine->set_static_prune(request.static_prune);
        engine->warm_golden_cache();
        entry->prototypes.push_back(std::move(engine));
      }
    }
  }
  if (!entry->error.empty()) {
    lease.error = entry->error;
    lease.cache_hit = false;
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) entries_.erase(it);
    return lease;
  }
  // Prefer a recycled idle set (no clone cost); fall back to cloning
  // when every set is leased out to a concurrent request.
  if (!entry->idle_sets.empty()) {
    lease.engines = std::move(entry->idle_sets.back());
    entry->idle_sets.pop_back();
  } else {
    for (const auto& prototype : entry->prototypes) {
      lease.engines.push_back(prototype->clone());
    }
  }
  lease.entry_ = std::move(entry);
  return lease;
}

EngineCacheStats EngineCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  EngineCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace vulfi::serve
