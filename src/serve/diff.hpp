// Incremental resilience-regression analysis (`vulfi diff`).
//
// Composes per-unit campaign summaries (vulfi/summary.hpp) into a
// whole-program resilience estimate and re-runs injection only where the
// program changed: each unit's canonical IR content hash
// (analysis/propagation.hpp) keys its stored summary, so a unit whose
// hash is unchanged under the same campaign configuration reuses the
// stored counts with ZERO new experiments, while a changed unit pays one
// fresh campaign run. The result is a regression report: per-unit and
// composed SDC/Benign/Crash rates, their deltas against a baseline
// store, and the static propagation census.
//
// The engine builds go through the warm EngineCache — the CLI uses a
// private cache, the vulfid daemon serves `diff` requests against its
// long-lived one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/engine_cache.hpp"
#include "serve/protocol.hpp"
#include "support/cancel.hpp"
#include "vulfi/summary.hpp"

namespace vulfi::serve {

struct DiffOptions {
  /// Program units (registry benchmark names); empty selects the three
  /// §IV-E micro-benchmarks.
  std::vector<std::string> units;
  /// Campaign knobs (seeds, counts, category, ISA, toggles). The
  /// `benchmark` field is ignored — units come from `units`.
  CampaignRequest request;
  /// Summary-store directory (required): summaries are read from and
  /// appended to DIR/summaries.jsonl.
  std::string store_dir;
  /// Optional second store directory to diff against. Empty: deltas are
  /// taken against the store's own pre-run records, so re-running after
  /// a change reports that change's regression.
  std::string against_dir;
  /// Warm engine cache to lease builds from; nullptr uses a private one.
  EngineCache* cache = nullptr;
  /// Per-unit progress lines ("unit X: reused" / "unit X: injecting").
  std::function<void(const std::string&)> log;
  /// Fairness cap on per-run worker threads (0 = no cap).
  unsigned max_jobs = 0;
  /// Cooperative cancellation; a cancelled run reports interrupted and
  /// stores nothing for the unit it was executing.
  const CancellationToken* cancel = nullptr;
};

/// One unit's contribution to the report.
struct DiffUnitOutcome {
  std::string unit;
  std::uint64_t content_hash = 0;
  /// The summary came from the store (hash + config matched): zero new
  /// experiments for this unit.
  bool reused = false;
  std::uint64_t new_experiments = 0;
  FunctionSummary summary;
  /// Latest baseline summary for this unit under the same configuration
  /// (any content hash), when one exists.
  bool has_baseline = false;
  FunctionSummary baseline;
};

struct DiffReport {
  std::vector<DiffUnitOutcome> units;
  ComposedEstimate composed;
  /// Composed over the units that have a baseline summary.
  bool has_baseline = false;
  ComposedEstimate baseline_composed;
  std::uint64_t new_experiments = 0;
  bool interrupted = false;
  std::string error;
  /// 0 success; 2 usage (unknown unit, missing store); 3 store refusal
  /// (schema/build mismatch, I/O, internal campaign error); 5
  /// interrupted — the campaign CLI's exit-code contract.
  int exit_code = 0;

  bool ok() const { return error.empty(); }
};

/// Runs the incremental analysis synchronously.
DiffReport run_diff(const DiffOptions& options);

/// Deterministic JSON rendering (doubles as 16-hex-digit bit patterns):
/// two runs over an unchanged program produce byte-identical reports.
std::string diff_report_json(const DiffReport& report);

/// Human-readable regression report.
std::string render_diff_report(const DiffReport& report);

// --- wire protocol ---------------------------------------------------------

/// {"op":"diff",...}: the diff CLI surface as data. Campaign knobs use
/// the same keys as a submit; units travel comma-joined (registry names
/// contain no commas).
struct DiffRequest {
  CampaignRequest campaign;  ///< benchmark field unused
  std::vector<std::string> units;
  std::string store;
  std::string against;
};

std::string serialize_diff_request(const DiffRequest& request);
std::optional<DiffRequest> parse_diff_request(const std::string& payload,
                                              std::string* error = nullptr);

/// Submits a diff to a running vulfid and blocks until its "done" frame;
/// the report JSON comes back in SubmitOutcome::stats_json.
SubmitOutcome submit_diff(const std::string& socket_path,
                          const DiffRequest& request,
                          const StreamCallbacks& callbacks = {},
                          int frame_timeout_ms = 600000);

}  // namespace vulfi::serve
