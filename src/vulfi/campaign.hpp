// Statistical fault-injection campaigns (paper §IV-D).
//
// A campaign comprises `experiments_per_campaign` (100) independent
// experiments; its SDC rate is one random sample. Campaigns repeat until
// (1) the sample distribution is normal or near normal (Jarque–Bera) and
// (2) the margin of error at the target confidence level falls within the
// target (±3% at 95% in the paper, reached after 20 campaigns for every
// paper benchmark), subject to [min_campaigns, max_campaigns].
//
// Each experiment draws a random program input from the predefined input
// set (one InjectionEngine per input), matching the paper's strategy.
//
// Execution is deterministic regardless of thread count: experiment
// (c, e) derives its private RNG stream as
// derive_stream_seed(config.seed, c, e), so the engine draw, the fault
// site, and the bit position depend only on the experiment's coordinates —
// never on scheduling. Parallel runs partition experiments across worker
// threads (each owning cloned engines) with work stealing, merge
// per-thread partial counters at campaign boundaries, and evaluate the
// sequential-sampling stopping rule only between campaigns — exactly where
// the serial path evaluates it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "support/cancel.hpp"
#include "support/journal.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "vulfi/driver.hpp"

namespace vulfi {

struct CampaignResult;

struct CampaignConfig {
  unsigned experiments_per_campaign = 100;
  unsigned min_campaigns = 20;
  unsigned max_campaigns = 40;
  double confidence = 0.95;
  double target_margin = 0.03;
  std::uint64_t seed = 0x5eed;
  /// Worker threads: 0 = hardware concurrency, 1 = legacy serial path,
  /// N > 1 = exactly N workers. Results are bit-identical for every
  /// setting (counter-based per-experiment seeding).
  unsigned num_threads = 1;
  /// Memoize each engine's golden run across its experiments (and across
  /// cloned workers). Off (CLI: --no-golden-cache) re-runs the golden
  /// pass per experiment — the original behaviour — for A/B validation;
  /// every statistic is bit-identical either way because the golden run
  /// consumes no randomness.
  bool use_golden_cache = true;
  /// Static fault-site pruning (prune.hpp): provably-dead bits are
  /// adjudicated Benign without executing, and lane-symmetric sites share
  /// one memoized representative execution. Exact — every statistic is
  /// bit-identical with pruning on or off (CLI: --no-static-prune).
  bool use_static_prune = true;
  /// Execution backend for every run (golden and faulty): the pre-decoded
  /// interpreter (default) or the template JIT (CLI: --backend=jit).
  /// Absent from the checkpoint header on purpose, like num_threads:
  /// observables are bit-identical across backends, so a checkpointed run
  /// may resume under either.
  interp::ExecMode backend = interp::ExecMode::PreDecoded;

  // --- sharded (multi-process) campaigns ---------------------------------

  /// Shard-worker mode: when shard_count > 0 the run executes exactly
  /// campaigns [shard_first, shard_first + shard_count) with absolute
  /// campaign indices and NO sequential stop rule — the supervisor's
  /// merge step (serve/shard.hpp) applies the stop rule over the ordered
  /// union of all shards, so a merged campaign history is byte-identical
  /// to a single-process run. Every campaign is a pure function of
  /// (seed, campaign index); partitioning the index space changes
  /// nothing about any individual campaign's outcome.
  std::uint64_t shard_first = 0;
  unsigned shard_count = 0;
  /// Provenance for the shard journal's shard record (journal line 2):
  /// which shard of how many this worker is. Only meaningful when
  /// shard_count > 0; validated byte-for-byte on shard resume.
  unsigned shard_index = 0;
  unsigned shard_total = 0;

  /// Optional experiment counter, incremented once per executed
  /// experiment (relaxed). Shard workers export it as the progress
  /// figure in their heartbeat records so the supervisor can tell a
  /// hung worker (progress frozen) from a slow one.
  std::atomic<std::uint64_t>* progress = nullptr;

  /// Test-only fault injection into the harness itself (compiled in for
  /// non-Release builds or -DVULFI_CRASH_HOOK=ON; see
  /// crash_hook_compiled). When nonzero, the process raises SIGKILL on
  /// itself (crash_after_experiments) or stops making progress forever
  /// (hang_after_experiments) once that many experiments have executed
  /// this run. Wired from the VULFI_CRASH_AFTER_EXPERIMENTS /
  /// VULFI_HANG_AFTER_EXPERIMENTS env by the shard worker; used to prove
  /// crash/stall recovery is bit-exact.
  std::uint64_t crash_after_experiments = 0;
  std::uint64_t hang_after_experiments = 0;

  // --- campaign resilience layer -----------------------------------------

  /// Append-only checksummed JSONL checkpoint (support/journal.hpp),
  /// written at every campaign boundary; empty disables checkpointing.
  /// If the file already holds a compatible history, completed campaigns
  /// are restored and the run continues from the next one — seeding is
  /// counter-based, so a resumed run is bit-identical to an
  /// uninterrupted one (at any thread count). A corrupt or truncated
  /// tail is rolled back to the last valid record. The stored header
  /// must match seed, experiments_per_campaign, min/max campaigns,
  /// confidence, target margin, engine count, the exactness toggles,
  /// and the writing binary's build fingerprint (support/version.hpp —
  /// resuming across mismatched binaries is refused with a diagnostic
  /// naming both builds); num_threads may differ freely.
  std::string checkpoint_path;

  /// Checkpoint durability policy (CLI: --fsync=always|batch|off).
  /// Always is the crash-safe default; Batch amortizes the per-record
  /// fsync that dominates checkpoint overhead on fast campaigns; Off
  /// leaves durability to the OS writeback. Recovery semantics are
  /// identical for all three — the policy only bounds how many trailing
  /// records a host crash can cost.
  JournalSync journal_sync = JournalSync::Always;

  /// Cooperative cancellation (CLI: SIGINT/SIGTERM). Workers drain the
  /// experiment they are executing, completed campaigns are absorbed and
  /// checkpointed, and the result comes back with interrupted = true.
  const CancellationToken* cancel = nullptr;

  /// Harness self-verification cadence: every K completed campaigns,
  /// re-execute one engine's golden run from scratch (round-robin over
  /// engines) and compare against its GoldenCache. A mismatch is a hard
  /// diagnostic — the run stops with CampaignResult::error set. 0 = off.
  unsigned self_verify_every = 0;

  /// Stall watchdog: if no campaign completes within this wall-clock
  /// window, log a diagnostic (per-worker experiment coordinates and
  /// progress counts) via stall_log. 0 = off.
  double stall_timeout_seconds = 0.0;

  /// Sink for watchdog diagnostics; defaults to stderr when empty.
  std::function<void(const std::string&)> stall_log;

  /// Called on the coordinating thread after each campaign folds into
  /// the running result (and after the matching checkpoint record is
  /// durable). Tests use it to cancel at a deterministic boundary.
  std::function<void(const CampaignResult&)> on_campaign_complete;

  /// Called on the coordinating thread with every campaign record this
  /// run contributes to the history: restored records replay through it
  /// during checkpoint recovery, then each newly executed campaign fires
  /// it with exactly the payload the journal stores. The campaign
  /// service streams these (sealed) as its wire-protocol progress
  /// records, so a client transcript is itself a valid journal.
  std::function<void(const struct CampaignRecord&)> on_campaign_record;
};

/// Wall-clock and per-thread utilization figures for one run_campaigns
/// call; rendered by report.cpp's render_throughput.
struct ThroughputStats {
  double wall_seconds = 0.0;
  unsigned threads = 1;
  /// Seconds each worker spent executing experiments (size == threads).
  std::vector<double> thread_busy_seconds;
  std::uint64_t experiments = 0;

  double experiments_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(experiments) / wall_seconds
               : 0.0;
  }
  /// Mean fraction of the wall time each worker was busy, in [0, 1].
  double utilization() const {
    if (wall_seconds <= 0.0 || thread_busy_seconds.empty()) return 0.0;
    double busy = 0.0;
    for (double seconds : thread_busy_seconds) busy += seconds;
    return busy /
           (wall_seconds * static_cast<double>(thread_busy_seconds.size()));
  }
};

struct CampaignResult {
  // Per-campaign SDC-rate samples.
  OnlineStats sdc_samples;
  /// The same samples in campaign order (index = campaign number); lets
  /// callers and tests compare runs sample-by-sample.
  std::vector<double> campaign_sdc_rates;
  unsigned campaigns = 0;
  double margin_of_error = 0.0;
  bool near_normal = false;

  // Experiment totals across all campaigns.
  std::uint64_t experiments = 0;
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  /// Faulty runs flagged by a detector, split by outcome (Figure 12
  /// reports detected SDCs).
  std::uint64_t detected_sdc = 0;
  std::uint64_t detected_total = 0;
  /// Static-prune savings. Adjudicated and remapped counts are pure
  /// functions of the experiment coordinates (thread-count independent);
  /// memo hits depend on which worker executed which experiment first, so
  /// they are reported as an indicative figure only.
  std::uint64_t prune_adjudicated = 0;
  std::uint64_t prune_remapped = 0;
  std::uint64_t prune_memo_hits = 0;

  // --- resilience-layer state --------------------------------------------

  /// Campaigns (and their experiments) reloaded from the checkpoint
  /// rather than executed this run. Included in the statistics above;
  /// excluded from throughput (see ThroughputStats::experiments).
  unsigned campaigns_restored = 0;
  std::uint64_t experiments_restored = 0;
  /// The sequential-sampling stop rule was satisfied (margin within
  /// target and near-normal samples) — as opposed to hitting
  /// max_campaigns or being interrupted.
  bool converged = false;
  /// Cooperative cancellation stopped the run before the stop rule did.
  /// Completed campaigns were checkpointed (when a checkpoint_path was
  /// configured); resuming continues from the next campaign.
  bool interrupted = false;
  /// Harness self-verification tallies (restored passes included).
  std::uint64_t self_verify_passes = 0;
  std::uint64_t self_verify_failures = 0;
  /// Echo of CampaignConfig::checkpoint_path for reporting.
  std::string checkpoint_path;
  /// Non-empty on internal error: checkpoint header mismatch, journal
  /// write failure, or a failed self-verification. The statistics cover
  /// only the campaigns absorbed before the error.
  std::string error;

  bool ok() const { return error.empty(); }

  ThroughputStats throughput;

  double rate(std::uint64_t count) const {
    return experiments == 0
               ? 0.0
               : static_cast<double>(count) / static_cast<double>(experiments);
  }
  double sdc_rate() const { return rate(sdc); }
  double benign_rate() const { return rate(benign); }
  double crash_rate() const { return rate(crash); }
  /// Fraction of SDC experiments the detectors flagged.
  double sdc_detection_rate() const {
    return sdc == 0 ? 0.0
                    : static_cast<double>(detected_sdc) /
                          static_cast<double>(sdc);
  }
};

/// Runs campaigns over `engines` (one per predefined program input; each
/// experiment picks one uniformly at random). With config.num_threads != 1
/// the experiments execute on a work-stealing thread pool; per-experiment
/// counter-based seeding keeps every statistic bit-identical to the serial
/// path.
CampaignResult run_campaigns(std::vector<InjectionEngine*> engines,
                             const CampaignConfig& config = {});

/// CLI exit-code contract for `vulfi campaign` (documented in README,
/// asserted by tests and the CI interrupt-resume job). 1 and 2 are left
/// to generic failure and usage errors.
enum CampaignExitCode : int {
  /// Stop rule satisfied: margin within target, near-normal samples.
  kCampaignExitConverged = 0,
  /// Internal error: checkpoint mismatch/corruption beyond recovery,
  /// journal write failure, or a failed golden self-verification.
  kCampaignExitInternalError = 3,
  /// max_campaigns reached without satisfying the stop rule.
  kCampaignExitUnconverged = 4,
  /// Cooperatively interrupted (SIGINT/SIGTERM); completed campaigns
  /// were checkpointed when a checkpoint path was configured.
  kCampaignExitInterrupted = 5,
  /// Sharded run degraded to a partial result: a shard exhausted its
  /// restart budget (or its journal has a gap) before the stop rule was
  /// satisfied. The statistics cover the longest contiguous campaign
  /// prefix — never a silent truncation, never a hang.
  kCampaignExitShardPartial = 6,
};

int campaign_exit_code(const CampaignResult& result);

/// True when this binary honors CampaignConfig::crash_after_experiments /
/// hang_after_experiments (non-Release builds, or any build configured
/// with -DVULFI_CRASH_HOOK=ON). Crash-injection tests skip when false.
bool crash_hook_compiled();

// --- checkpoint-journal record format (shared with the campaign service) ---
// One header record pins everything the statistics depend on (including
// the writing binary's build fingerprint); one record per completed
// campaign holds its integer outcome counters. The campaign service
// (serve/) streams these exact payloads — sealed with journal_seal — as
// its per-campaign progress records, so a client transcript concatenated
// to a file IS a valid checkpoint journal.

/// One completed campaign's integer outcome counters.
struct CampaignRecord {
  std::uint64_t campaign = 0;
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t detected_sdc = 0;
  std::uint64_t detected_total = 0;
  std::uint64_t prune_adjudicated = 0;
  std::uint64_t prune_remapped = 0;
  std::uint64_t prune_memo_hits = 0;
};

/// The journal header payload for a campaign configuration (unsealed).
/// Deliberately independent of num_threads and journal_sync: results are
/// scheduling- and durability-independent, so those may change on resume.
std::string campaign_header_payload(const CampaignConfig& config,
                                    std::size_t num_engines);

/// One campaign record payload (unsealed).
std::string campaign_record_payload(const CampaignRecord& record);

/// Parses a campaign record payload; nullopt when any field is missing.
std::optional<CampaignRecord> parse_campaign_record(
    const std::string& payload);

/// The shard provenance record a shard worker journals right after the
/// header (unsealed): which shard of how many, and its campaign range.
/// Byte-compared on shard resume like the header, and consumed by
/// merge_shards to validate that shard ranges are disjoint.
std::string shard_record_payload(const CampaignConfig& config);

/// Replays campaign records through the exact absorb + stop-rule
/// sequence of a single-process run. Feed records strictly in campaign
/// index order (0, 1, 2, ...); wants_more() reports whether a
/// single-process run would have executed the next campaign, so the
/// consumer stops at exactly the index a single-process run stops at —
/// the core of the bit-identical shard merge, and of the supervisor's
/// early-stop detection. finalize() computes the converged flag with
/// run_campaigns' formula.
class CampaignReplayer {
 public:
  explicit CampaignReplayer(const CampaignConfig& config);

  /// True while a single-process run would still execute campaign
  /// result().campaigns (unconditional below min_campaigns, then the
  /// sequential stop rule up to max_campaigns).
  bool wants_more() const;

  /// Absorbs the record for campaign result().campaigns. False (without
  /// absorbing) when the record's index is not the next expected one.
  bool absorb(const CampaignRecord& record);

  const CampaignResult& result() const { return result_; }

  /// Finalizes and returns the result (converged flag included).
  CampaignResult finalize();

 private:
  CampaignConfig config_;
  CampaignResult result_;
};

}  // namespace vulfi
