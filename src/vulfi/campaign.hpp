// Statistical fault-injection campaigns (paper §IV-D).
//
// A campaign comprises `experiments_per_campaign` (100) independent
// experiments; its SDC rate is one random sample. Campaigns repeat until
// (1) the sample distribution is normal or near normal (Jarque–Bera) and
// (2) the margin of error at the target confidence level falls within the
// target (±3% at 95% in the paper, reached after 20 campaigns for every
// paper benchmark), subject to [min_campaigns, max_campaigns].
//
// Each experiment draws a random program input from the predefined input
// set (one InjectionEngine per input), matching the paper's strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "vulfi/driver.hpp"

namespace vulfi {

struct CampaignConfig {
  unsigned experiments_per_campaign = 100;
  unsigned min_campaigns = 20;
  unsigned max_campaigns = 40;
  double confidence = 0.95;
  double target_margin = 0.03;
  std::uint64_t seed = 0x5eed;
};

struct CampaignResult {
  // Per-campaign SDC-rate samples.
  OnlineStats sdc_samples;
  unsigned campaigns = 0;
  double margin_of_error = 0.0;
  bool near_normal = false;

  // Experiment totals across all campaigns.
  std::uint64_t experiments = 0;
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  /// Faulty runs flagged by a detector, split by outcome (Figure 12
  /// reports detected SDCs).
  std::uint64_t detected_sdc = 0;
  std::uint64_t detected_total = 0;

  double rate(std::uint64_t count) const {
    return experiments == 0
               ? 0.0
               : static_cast<double>(count) / static_cast<double>(experiments);
  }
  double sdc_rate() const { return rate(sdc); }
  double benign_rate() const { return rate(benign); }
  double crash_rate() const { return rate(crash); }
  /// Fraction of SDC experiments the detectors flagged.
  double sdc_detection_rate() const {
    return sdc == 0 ? 0.0
                    : static_cast<double>(detected_sdc) /
                          static_cast<double>(sdc);
  }
};

/// Runs campaigns over `engines` (one per predefined program input; each
/// experiment picks one uniformly at random).
CampaignResult run_campaigns(std::vector<InjectionEngine*> engines,
                             const CampaignConfig& config = {});

}  // namespace vulfi
