#include "vulfi/summary.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "analysis/propagation.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"
#include "support/version.hpp"
#include "vulfi/fault_site.hpp"

namespace vulfi {

namespace {

// The CLI and wire protocol accept aliases ("ctrl", "addr", "sse4");
// the fingerprint must not distinguish spellings of one configuration.
std::string_view canonical_category(std::string_view name) {
  if (name == "puredata") return "pure-data";
  if (name == "ctrl") return "control";
  if (name == "addr") return "address";
  return name;
}

std::string_view canonical_isa(std::string_view name) {
  if (name == "sse4") return "sse";
  return name;
}

}  // namespace

std::uint64_t summary_config_fingerprint(const CampaignConfig& config,
                                         std::string_view category,
                                         std::string_view isa,
                                         bool detectors) {
  Fnv1a h;
  h.u32(config.experiments_per_campaign);
  h.u32(config.min_campaigns);
  h.u32(config.max_campaigns);
  h.u64(config.seed);
  // Bit patterns, not decimal renderings: two configs are the same
  // configuration iff the doubles compare bit-equal.
  double conf = config.confidence;
  double margin = config.target_margin;
  std::uint64_t bits = 0;
  static_assert(sizeof(conf) == sizeof(bits), "IEEE-754 double expected");
  std::memcpy(&bits, &conf, sizeof(bits));
  h.u64(bits);
  std::memcpy(&bits, &margin, sizeof(bits));
  h.u64(bits);
  h.u8(config.use_golden_cache ? 1 : 0);
  h.u8(config.use_static_prune ? 1 : 0);
  h.u8(detectors ? 1 : 0);
  h.str(canonical_category(category));
  h.str(canonical_isa(isa));
  return h.value();
}

PropagationCensus propagation_census(const ir::Function& fn,
                                     analysis::AnalysisManager& am) {
  PropagationCensus census;
  const analysis::PropagationResult& prop =
      am.get<analysis::PropagationAnalysis>(fn);
  for (const FaultSite& site : enumerate_fault_sites(
           fn, analysis::AddressRule::GepOnly, am)) {
    // site_target_of only inspects; the const_cast is confined here.
    const SiteTarget target =
        site_target_of(const_cast<ir::Instruction&>(*site.inst));
    const unsigned bits = site.element_type.element_bits();
    for (unsigned bit = 0; bit < bits; ++bit) {
      const analysis::PropagationClass cls =
          site.store_operand
              ? prop.classify_edge_bit(site.inst, target.store_operand_index,
                                       site.lane, bit)
              : prop.classify_bit(target.value, site.lane, bit);
      switch (cls) {
        case analysis::PropagationClass::ProvablyMasked: ++census.masked; break;
        case analysis::PropagationClass::OutputReaching: ++census.output; break;
        case analysis::PropagationClass::ControlReaching:
          ++census.control;
          break;
        case analysis::PropagationClass::TrapReaching: ++census.trap; break;
      }
    }
  }
  return census;
}

PropagationCensus propagation_census(const ir::Module& module) {
  PropagationCensus census;
  analysis::AnalysisManager am;
  for (const auto& fn : module.functions()) {
    if (!fn->is_definition() || fn->num_blocks() == 0) continue;
    const PropagationCensus part = propagation_census(*fn, am);
    census.masked += part.masked;
    census.output += part.output;
    census.control += part.control;
    census.trap += part.trap;
  }
  return census;
}

std::string summary_record_payload(const FunctionSummary& summary) {
  return strf(
      "{\"t\":\"summary\",\"unit\":\"%s\",\"hash\":\"%s\",\"cfg\":\"%s\","
      "\"exp\":%llu,\"benign\":%llu,\"sdc\":%llu,\"crash\":%llu,"
      "\"dsdc\":%llu,\"dtot\":%llu,\"camps\":%llu,\"weight\":%llu,"
      "\"pmask\":%llu,\"pout\":%llu,\"pctl\":%llu,\"ptrap\":%llu,"
      "\"exit\":%d}",
      summary.unit.c_str(), hash_hex(summary.content_hash).c_str(),
      hash_hex(summary.config_fingerprint).c_str(),
      static_cast<unsigned long long>(summary.experiments),
      static_cast<unsigned long long>(summary.benign),
      static_cast<unsigned long long>(summary.sdc),
      static_cast<unsigned long long>(summary.crash),
      static_cast<unsigned long long>(summary.detected_sdc),
      static_cast<unsigned long long>(summary.detected_total),
      static_cast<unsigned long long>(summary.campaigns),
      static_cast<unsigned long long>(summary.weight),
      static_cast<unsigned long long>(summary.census.masked),
      static_cast<unsigned long long>(summary.census.output),
      static_cast<unsigned long long>(summary.census.control),
      static_cast<unsigned long long>(summary.census.trap),
      summary.exit_code);
}

std::optional<FunctionSummary> parse_summary_record(
    const std::string& payload) {
  const auto tag = journal_str(payload, "t");
  if (!tag || *tag != "summary") return std::nullopt;
  FunctionSummary out;
  const auto unit = journal_str(payload, "unit");
  const auto hash = journal_str(payload, "hash");
  const auto cfg = journal_str(payload, "cfg");
  if (!unit || !hash || !cfg) return std::nullopt;
  out.unit = *unit;
  if (!hash_from_hex(*hash, &out.content_hash)) return std::nullopt;
  if (!hash_from_hex(*cfg, &out.config_fingerprint)) return std::nullopt;
  const auto exp = journal_u64(payload, "exp");
  const auto benign = journal_u64(payload, "benign");
  const auto sdc = journal_u64(payload, "sdc");
  const auto crash = journal_u64(payload, "crash");
  const auto dsdc = journal_u64(payload, "dsdc");
  const auto dtot = journal_u64(payload, "dtot");
  const auto camps = journal_u64(payload, "camps");
  const auto weight = journal_u64(payload, "weight");
  const auto pmask = journal_u64(payload, "pmask");
  const auto pout = journal_u64(payload, "pout");
  const auto pctl = journal_u64(payload, "pctl");
  const auto ptrap = journal_u64(payload, "ptrap");
  const auto exit_code = journal_u64(payload, "exit");
  if (!exp || !benign || !sdc || !crash || !dsdc || !dtot || !camps ||
      !weight || !pmask || !pout || !pctl || !ptrap || !exit_code) {
    return std::nullopt;
  }
  out.experiments = *exp;
  out.benign = *benign;
  out.sdc = *sdc;
  out.crash = *crash;
  out.detected_sdc = *dsdc;
  out.detected_total = *dtot;
  out.campaigns = *camps;
  out.weight = *weight;
  out.census.masked = *pmask;
  out.census.output = *pout;
  out.census.control = *pctl;
  out.census.trap = *ptrap;
  out.exit_code = static_cast<int>(*exit_code);
  return out;
}

std::string summary_store_header_payload() {
  return strf("{\"t\":\"summary-header\",\"schema\":%u,\"build\":\"%s\"}",
              kSummarySchemaVersion, build_fingerprint().c_str());
}

const char* SummaryStore::filename() { return "summaries.jsonl"; }

bool SummaryStore::open(const std::string& dir, std::string* error) {
  return open_impl(dir, error, /*writable=*/true);
}

bool SummaryStore::open_read_only(const std::string& dir,
                                  std::string* error) {
  return open_impl(dir, error, /*writable=*/false);
}

bool SummaryStore::open_impl(const std::string& dir, std::string* error,
                             bool writable) {
  // A writable open creates the store directory on first use (one level;
  // EEXIST is the common case and fine).
  if (writable) ::mkdir(dir.c_str(), 0777);
  const std::string path = dir + "/" + filename();
  const JournalRecovery recovered = recover_journal(path);
  if (!writable && !recovered.file_existed) {
    if (error != nullptr) {
      *error = strf("no summary store at '%s'", path.c_str());
    }
    return false;
  }

  std::uint64_t keep_bytes = recovered.valid_bytes;
  bool need_header = true;
  if (!recovered.records.empty()) {
    const std::string& header = recovered.records.front();
    const auto tag = journal_str(header, "t");
    const auto schema = journal_u64(header, "schema");
    const auto build = journal_str(header, "build");
    if (!tag || *tag != "summary-header" || !schema || !build) {
      if (error != nullptr) {
        *error = strf("summary store '%s' has no valid header record",
                      path.c_str());
      }
      return false;
    }
    if (*schema != kSummarySchemaVersion) {
      if (error != nullptr) {
        *error = strf(
            "summary store '%s' uses record schema v%llu, this binary "
            "writes v%u — refusing to mix grammars (start a fresh store)",
            path.c_str(), static_cast<unsigned long long>(*schema),
            kSummarySchemaVersion);
      }
      return false;
    }
    if (*build != build_fingerprint()) {
      if (error != nullptr) {
        *error = strf(
            "summary store '%s' was written by a different vulfi binary "
            "(stored build \"%s\", this binary \"%s\") — summaries are "
            "only composable within one build",
            path.c_str(), build->c_str(), build_fingerprint().c_str());
      }
      return false;
    }
    need_header = false;
    for (std::size_t i = 1; i < recovered.records.size(); ++i) {
      const auto summary = parse_summary_record(recovered.records[i]);
      if (!summary) {
        if (error != nullptr) {
          *error = strf("summary store '%s' record %zu is malformed",
                        path.c_str(), i);
        }
        return false;
      }
      if (FunctionSummary* existing = find_mutable(*summary)) {
        *existing = *summary;  // append-only journal: last record wins
      } else {
        records_.push_back(*summary);
      }
    }
  } else {
    keep_bytes = 0;  // drop any torn pre-header tail wholesale
  }

  if (!writable) return true;
  if (!writer_.open(path, keep_bytes, error)) return false;
  if (need_header && !writer_.append(summary_store_header_payload())) {
    if (error != nullptr) {
      *error = strf("summary store '%s': header write failed", path.c_str());
    }
    return false;
  }
  return true;
}

FunctionSummary* SummaryStore::find_mutable(const FunctionSummary& like) {
  for (FunctionSummary& record : records_) {
    if (record.unit == like.unit && record.content_hash == like.content_hash &&
        record.config_fingerprint == like.config_fingerprint) {
      return &record;
    }
  }
  return nullptr;
}

const FunctionSummary* SummaryStore::find(
    const std::string& unit, std::uint64_t content_hash,
    std::uint64_t config_fingerprint) const {
  for (const FunctionSummary& record : records_) {
    if (record.unit == unit && record.content_hash == content_hash &&
        record.config_fingerprint == config_fingerprint) {
      return &record;
    }
  }
  return nullptr;
}

bool SummaryStore::append(const FunctionSummary& summary) {
  if (!writer_.append(summary_record_payload(summary))) return false;
  if (FunctionSummary* existing = find_mutable(summary)) {
    *existing = summary;
  } else {
    records_.push_back(summary);
  }
  return true;
}

ComposedEstimate compose_summaries(const std::vector<FunctionSummary>& parts,
                                   double confidence) {
  ComposedEstimate out;
  out.units = parts.size();
  if (parts.empty()) return out;

  std::uint64_t total_weight = 0;
  for (const FunctionSummary& part : parts) total_weight += part.weight;
  out.total_weight = total_weight;

  // Stratified estimator: each unit is a stratum whose share of the
  // whole program is its share of golden dynamic fault sites. When no
  // unit recorded a weight (e.g. empty golden runs) fall back to uniform
  // shares so the estimate stays defined.
  const double denom = total_weight > 0
                           ? static_cast<double>(total_weight)
                           : static_cast<double>(parts.size());
  double variance = 0.0;
  for (const FunctionSummary& part : parts) {
    const double numer =
        total_weight > 0 ? static_cast<double>(part.weight) : 1.0;
    const double share = numer / denom;
    const double p_sdc = part.sdc_rate();
    out.sdc_rate += share * p_sdc;
    out.benign_rate += share * part.benign_rate();
    out.crash_rate += share * part.crash_rate();
    if (part.experiments > 0) {
      variance += share * share * p_sdc * (1.0 - p_sdc) /
                  static_cast<double>(part.experiments);
    }
    out.experiments += part.experiments;
    out.census.masked += part.census.masked;
    out.census.output += part.census.output;
    out.census.control += part.census.control;
    out.census.trap += part.census.trap;
  }

  const double z = normal_quantile(0.5 * (1.0 + confidence));
  const double half = z * std::sqrt(variance);
  out.sdc_low = std::max(0.0, out.sdc_rate - half);
  out.sdc_high = std::min(1.0, out.sdc_rate + half);
  return out;
}

}  // namespace vulfi
