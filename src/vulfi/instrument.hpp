// The VULFI instrumentor (paper §II-D, Figures 4 and 5).
//
// For every fault-site instruction the pass:
//  1. iterates over each scalar element of (a clone of) the target
//     register;
//  2. extracts the uninstrumented element (extractelement), extracts its
//     execution-mask element when the owner is a masked intrinsic, calls
//     the runtime injection API (`vulfi.inject.<type>`), and inserts the
//     result back (insertelement);
//  3. replaces the original register with the instrumented clone,
//     redirecting all users of the original — excluding the freshly
//     created chain itself.
// Scalar registers take the degenerate one-element path (a single call,
// no extract/insert). Store sites instrument the to-be-stored operand
// just before the store and redirect only the store's operand.
#pragma once

#include <vector>

#include "analysis/classify.hpp"
#include "ir/function.hpp"
#include "vulfi/fault_site.hpp"

namespace vulfi {

class Instrumentor {
 public:
  explicit Instrumentor(
      analysis::AddressRule rule = analysis::AddressRule::GepOnly)
      : rule_(rule) {}

  /// Instruments every fault site of `fn` in place and returns the static
  /// site table (ids match the site_id constants baked into the inserted
  /// calls, and match enumerate_fault_sites on the pre-pass IR).
  std::vector<FaultSite> run(ir::Function& fn);

 private:
  analysis::AddressRule rule_;
};

}  // namespace vulfi
