// Experiment driver (paper §IV-B execution strategy).
//
// One fault-injection experiment classifies the effect of a single bit
// flip against the fault-free ("golden") execution of the same program:
//  1. golden run — no fault injected; the output is recorded and the
//     dynamic fault sites of the selected category are counted;
//  2. faulty run — one dynamic site is chosen uniformly at random, a
//     single random bit is flipped there, and the outcome is classified:
//       SDC    — output differs from the golden output,
//       Benign — outputs identical,
//       Crash  — trap or runaway execution.
// When detector passes were applied to the module, detector events raised
// during the faulty run are reported alongside the outcome.
//
// Golden-run memoization: the golden observables are a pure function of
// (module, input) — the golden run consumes no randomness and the engine
// owns exactly one (module, input) pair — so by default the engine
// executes the golden run once (lazily, on the first experiment), caches
// its observables in a GoldenCache, and reuses them for every subsequent
// experiment. Experiments drop from two full executions to one. clone()
// shares the immutable cache with replicas, so parallel campaign workers
// inherit it instead of re-running the golden pass. EngineOptions::
// golden_cache (CLI: --no-golden-cache) restores the original
// two-executions-per-experiment behaviour for A/B validation; results are
// bit-identical either way.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/classify.hpp"
#include "interp/interpreter.hpp"
#include "support/rng.hpp"
#include "vulfi/fi_runtime.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi {

enum class Outcome : std::uint8_t { Benign, SDC, Crash };

const char* outcome_name(Outcome outcome);

struct ExperimentResult {
  Outcome outcome = Outcome::Benign;
  /// A detector flagged the faulty run.
  bool detected = false;
  /// Trap that ended the faulty run (None unless outcome == Crash).
  interp::TrapKind trap = interp::TrapKind::None;
  InjectionRecord injection;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t golden_instructions = 0;
  std::uint64_t faulty_instructions = 0;
};

struct EngineOptions {
  analysis::AddressRule address_rule = analysis::AddressRule::GepOnly;
  /// Faulty-run instruction budget = multiplier × golden instruction
  /// count; exceeding it classifies the run as Crash (hang).
  std::uint64_t budget_multiplier = 64;
  /// Injecting into masked-off lanes is the paper's design error VULFI
  /// avoids; turning gating off is an ablation switch.
  bool mask_aware = true;
  /// Memoize the golden run across experiments (see file comment).
  bool golden_cache = true;
  /// Interpreter executor: pre-decoded fast path (default) or the
  /// reference hash-lookup path (differential-testing oracle).
  bool predecode = true;
};

/// Memoized golden-run observables: everything run_experiment needs from
/// the fault-free execution. Immutable once computed; shared by clones.
struct GoldenCache {
  std::vector<std::uint8_t> output_bytes;
  std::vector<std::uint64_t> return_bits;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t golden_instructions = 0;
};

/// Owns one instrumented program and runs experiments against it.
class InjectionEngine {
 public:
  /// Extra runtime registration (detector runtimes). Receives the engine's
  /// environment and detection log so the same setup can be re-applied to
  /// clones, each wiring up its own private log.
  using RuntimeSetup =
      std::function<void(interp::RuntimeEnv&, interp::DetectionLog&)>;

  InjectionEngine(RunSpec spec, analysis::FaultSiteCategory category,
                  EngineOptions options = {});

  /// Registers `setup` now and records it so clone() can replay it.
  void setup_runtime(const RuntimeSetup& setup);

  /// Fully independent replica: clones the pristine (pre-instrumentation)
  /// module, re-instruments it, and replays the recorded runtime setups
  /// against the replica's own environment and detection log. Clones share
  /// no mutable state with the original, so each worker thread of a
  /// parallel campaign can own one. An already-computed golden cache is
  /// shared (it is immutable and identical by construction — the replica
  /// is re-instrumented deterministically from the same pristine spec).
  std::unique_ptr<InjectionEngine> clone() const;

  /// One full experiment: cached-or-fresh golden observables + one
  /// faulty run.
  ExperimentResult run_experiment(Rng& rng);

  /// One un-injected run (runtime idle). Used for overhead measurements
  /// and sanity checks; returns the interpreter result.
  interp::ExecResult run_clean();

  /// Toggles golden-run memoization (campaigns plumb
  /// CampaignConfig::use_golden_cache through this). Disabling drops any
  /// cached run so a later re-enable recomputes from scratch.
  void set_golden_cache_enabled(bool enabled);
  bool golden_cache_enabled() const { return options_.golden_cache; }

  /// Computes the golden cache now (no-op when disabled or already
  /// computed). Campaigns warm engines on the coordinating thread before
  /// cloning so every worker inherits the cache — and so detector
  /// runtimes observe the golden pass exactly once per engine.
  void warm_golden_cache();

  /// The faulty-run instruction budget derived from a golden instruction
  /// count. Single definition shared by the cached and uncached paths so
  /// the Crash/hang classification cannot drift between them.
  std::uint64_t faulty_instruction_budget(
      std::uint64_t golden_instructions) const {
    return golden_instructions * options_.budget_multiplier + 10'000;
  }

  const std::vector<FaultSite>& sites() const { return runtime_.sites(); }
  analysis::FaultSiteCategory category() const { return runtime_.category(); }
  interp::DetectionLog& detection_log() { return detection_log_; }
  const RunSpec& spec() const { return spec_; }

  /// Static sites matching this engine's category.
  std::uint64_t eligible_static_sites() const;

 private:
  struct RunOutput {
    interp::ExecResult exec;
    std::vector<std::uint8_t> output_bytes;  // concatenated output regions
    std::vector<std::uint64_t> return_bits;
  };

  RunOutput execute(interp::ExecLimits limits);
  GoldenCache compute_golden();
  const GoldenCache& ensure_golden();

  RunSpec spec_;
  /// Un-instrumented copy of the incoming spec, kept so clone() can
  /// re-instrument from scratch (instrumentation is deterministic, so the
  /// replica's site table matches this engine's exactly).
  RunSpec pristine_;
  EngineOptions options_;
  FaultInjectionRuntime runtime_;
  interp::RuntimeEnv env_;
  interp::DetectionLog detection_log_;
  std::vector<RuntimeSetup> setups_;
  /// Scratch execution arena, reset from spec_.arena before every run —
  /// avoids reallocating a multi-megabyte arena per execution.
  interp::Arena scratch_;
  /// Persistent interpreter: keeps the per-function decode caches warm
  /// across the engine's millions of executions.
  interp::Interpreter interp_;
  std::shared_ptr<const GoldenCache> golden_;
};

}  // namespace vulfi
