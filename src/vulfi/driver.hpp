// Experiment driver (paper §IV-B execution strategy).
//
// One fault-injection experiment executes the program twice:
//  1. golden run — no fault injected; the output is recorded and the
//     dynamic fault sites of the selected category are counted;
//  2. faulty run — one dynamic site is chosen uniformly at random, a
//     single random bit is flipped there, and the outcome is classified:
//       SDC    — output differs from the golden output,
//       Benign — outputs identical,
//       Crash  — trap or runaway execution.
// When detector passes were applied to the module, detector events raised
// during the faulty run are reported alongside the outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/classify.hpp"
#include "interp/interpreter.hpp"
#include "support/rng.hpp"
#include "vulfi/fi_runtime.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi {

enum class Outcome : std::uint8_t { Benign, SDC, Crash };

const char* outcome_name(Outcome outcome);

struct ExperimentResult {
  Outcome outcome = Outcome::Benign;
  /// A detector flagged the faulty run.
  bool detected = false;
  /// Trap that ended the faulty run (None unless outcome == Crash).
  interp::TrapKind trap = interp::TrapKind::None;
  InjectionRecord injection;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t golden_instructions = 0;
  std::uint64_t faulty_instructions = 0;
};

struct EngineOptions {
  analysis::AddressRule address_rule = analysis::AddressRule::GepOnly;
  /// Faulty-run instruction budget = multiplier × golden instruction
  /// count; exceeding it classifies the run as Crash (hang).
  std::uint64_t budget_multiplier = 64;
  /// Injecting into masked-off lanes is the paper's design error VULFI
  /// avoids; turning gating off is an ablation switch.
  bool mask_aware = true;
};

/// Owns one instrumented program and runs experiments against it.
class InjectionEngine {
 public:
  /// Extra runtime registration (detector runtimes). Receives the engine's
  /// environment and detection log so the same setup can be re-applied to
  /// clones, each wiring up its own private log.
  using RuntimeSetup =
      std::function<void(interp::RuntimeEnv&, interp::DetectionLog&)>;

  InjectionEngine(RunSpec spec, analysis::FaultSiteCategory category,
                  EngineOptions options = {});

  /// Registers `setup` now and records it so clone() can replay it.
  void setup_runtime(const RuntimeSetup& setup);

  /// Fully independent replica: clones the pristine (pre-instrumentation)
  /// module, re-instruments it, and replays the recorded runtime setups
  /// against the replica's own environment and detection log. Clones share
  /// no mutable state with the original, so each worker thread of a
  /// parallel campaign can own one.
  std::unique_ptr<InjectionEngine> clone() const;

  /// One full golden + faulty experiment.
  ExperimentResult run_experiment(Rng& rng);

  /// One un-injected run (runtime idle). Used for overhead measurements
  /// and sanity checks; returns the interpreter result.
  interp::ExecResult run_clean();

  const std::vector<FaultSite>& sites() const { return runtime_.sites(); }
  analysis::FaultSiteCategory category() const { return runtime_.category(); }
  interp::DetectionLog& detection_log() { return detection_log_; }
  const RunSpec& spec() const { return spec_; }

  /// Static sites matching this engine's category.
  std::uint64_t eligible_static_sites() const;

 private:
  struct RunOutput {
    interp::ExecResult exec;
    std::vector<std::uint8_t> output_bytes;  // concatenated output regions
    std::vector<std::uint64_t> return_bits;
  };

  RunOutput execute(interp::ExecLimits limits);

  RunSpec spec_;
  /// Un-instrumented copy of the incoming spec, kept so clone() can
  /// re-instrument from scratch (instrumentation is deterministic, so the
  /// replica's site table matches this engine's exactly).
  RunSpec pristine_;
  EngineOptions options_;
  FaultInjectionRuntime runtime_;
  interp::RuntimeEnv env_;
  interp::DetectionLog detection_log_;
  std::vector<RuntimeSetup> setups_;
};

}  // namespace vulfi
