// Experiment driver (paper §IV-B execution strategy).
//
// One fault-injection experiment classifies the effect of a single bit
// flip against the fault-free ("golden") execution of the same program:
//  1. golden run — no fault injected; the output is recorded and the
//     dynamic fault sites of the selected category are counted;
//  2. faulty run — one dynamic site is chosen uniformly at random, a
//     single random bit is flipped there, and the outcome is classified:
//       SDC    — output differs from the golden output,
//       Benign — outputs identical,
//       Crash  — trap or runaway execution.
// When detector passes were applied to the module, detector events raised
// during the faulty run are reported alongside the outcome.
//
// Golden-run memoization: the golden observables are a pure function of
// (module, input) — the golden run consumes no randomness and the engine
// owns exactly one (module, input) pair — so by default the engine
// executes the golden run once (lazily, on the first experiment), caches
// its observables in a GoldenCache, and reuses them for every subsequent
// experiment. Experiments drop from two full executions to one. clone()
// shares the immutable cache with replicas, so parallel campaign workers
// inherit it instead of re-running the golden pass. EngineOptions::
// golden_cache (CLI: --no-golden-cache) restores the original
// two-executions-per-experiment behaviour for A/B validation; results are
// bit-identical either way.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/classify.hpp"
#include "interp/interpreter.hpp"
#include "jit/backend.hpp"
#include "support/rng.hpp"
#include "vulfi/fi_runtime.hpp"
#include "vulfi/prune.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi {

enum class Outcome : std::uint8_t { Benign, SDC, Crash };

const char* outcome_name(Outcome outcome);

/// Paper §IV-B classification of a faulty run's observables: any trap —
/// whatever its TrapKind — is a user-visible "Crash"; a clean run whose
/// output differs from the golden run is an SDC; otherwise Benign.
inline Outcome classify_outcome(bool trapped, bool output_differs) {
  if (trapped) return Outcome::Crash;
  return output_differs ? Outcome::SDC : Outcome::Benign;
}

struct ExperimentResult {
  Outcome outcome = Outcome::Benign;
  /// A detector flagged the faulty run.
  bool detected = false;
  /// Trap that ended the faulty run (None unless outcome == Crash).
  interp::TrapKind trap = interp::TrapKind::None;
  InjectionRecord injection;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t golden_instructions = 0;
  std::uint64_t faulty_instructions = 0;
  /// The static pruner proved the flipped bit dead and adjudicated the
  /// experiment Benign without executing a faulty run.
  bool statically_adjudicated = false;
  /// The experiment was remapped onto its lane-symmetry class
  /// representative (the injection record reports the logical site).
  bool remapped = false;
  /// The (dynamic site, bit) pair had already been executed this engine;
  /// the memoized outcome was reused. Scheduling-dependent under parallel
  /// campaigns (each cloned worker owns a private memo), unlike the
  /// outcome itself, which is identical either way.
  bool memo_hit = false;
};

struct EngineOptions {
  analysis::AddressRule address_rule = analysis::AddressRule::GepOnly;
  /// Faulty-run instruction budget = multiplier × golden instruction
  /// count; exceeding it classifies the run as Crash (hang).
  std::uint64_t budget_multiplier = 64;
  /// Injecting into masked-off lanes is the paper's design error VULFI
  /// avoids; turning gating off is an ablation switch.
  bool mask_aware = true;
  /// Memoize the golden run across experiments (see file comment).
  bool golden_cache = true;
  /// Interpreter executor: pre-decoded fast path (default) or the
  /// reference hash-lookup path (differential-testing oracle).
  bool predecode = true;
  /// Execute runs through the template JIT backend (jit::JitExecutor).
  /// Observables are bit-identical to the interpreter; functions the JIT
  /// declines (or hosts without executable memory) silently fall back to
  /// the pre-decoded interpreter. CLI: --backend=jit.
  bool jit = false;
  /// Static fault-site pruning (prune.hpp): adjudicate provably-dead bits
  /// without executing, and remap lane-symmetric sites onto one memoized
  /// representative. Both reductions are exact — statistics are
  /// bit-identical with pruning on or off (CLI: --no-static-prune).
  bool static_prune = true;
};

/// Memoized golden-run observables: everything run_experiment needs from
/// the fault-free execution. Immutable once computed; shared by clones.
struct GoldenCache {
  std::vector<std::uint8_t> output_bytes;
  std::vector<std::uint64_t> return_bits;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t golden_instructions = 0;
  /// Detectors that fired during the fault-free run; a statically
  /// adjudicated Benign experiment reports this as its detected flag
  /// (a dead-bit faulty run behaves observably like the golden run).
  bool golden_detected = false;
  /// Golden dynamic-site census, recorded only under static pruning:
  /// site_sequence[k] is the static site id of dynamic site k, and
  /// site_occurrences[s] lists the dynamic indices of site s in ascending
  /// order. The pruner remaps the j-th occurrence of a site onto the j-th
  /// occurrence of its class representative.
  std::vector<std::uint32_t> site_sequence;
  std::vector<std::vector<std::uint32_t>> site_occurrences;
};

/// Verdict of one harness self-verification pass (verify_golden).
struct GoldenVerifyResult {
  bool ok = true;
  /// Human-readable mismatch description; empty when ok.
  std::string diagnostic;
};

/// Owns one instrumented program and runs experiments against it.
class InjectionEngine {
 public:
  /// Extra runtime registration (detector runtimes). Receives the engine's
  /// environment and detection log so the same setup can be re-applied to
  /// clones, each wiring up its own private log.
  using RuntimeSetup =
      std::function<void(interp::RuntimeEnv&, interp::DetectionLog&)>;

  InjectionEngine(RunSpec spec, analysis::FaultSiteCategory category,
                  EngineOptions options = {});

  /// Registers `setup` now and records it so clone() can replay it.
  void setup_runtime(const RuntimeSetup& setup);

  /// Fully independent replica: clones the pristine (pre-instrumentation)
  /// module, re-instruments it, and replays the recorded runtime setups
  /// against the replica's own environment and detection log. Clones share
  /// no mutable state with the original, so each worker thread of a
  /// parallel campaign can own one. An already-computed golden cache is
  /// shared (it is immutable and identical by construction — the replica
  /// is re-instrumented deterministically from the same pristine spec).
  std::unique_ptr<InjectionEngine> clone() const;

  /// One full experiment: cached-or-fresh golden observables + one
  /// faulty run. With static pruning enabled the faulty run may be
  /// adjudicated, remapped, or served from the memo — the drawn
  /// (site, bit) pair and the reported statistics are bit-identical to
  /// the unpruned path either way.
  ExperimentResult run_experiment(Rng& rng);

  /// One experiment with an explicit (dynamic site, bit) pair and NO
  /// pruning: always executes the faulty run. Ground truth for the
  /// exhaustive differential harness (exhaustive.hpp).
  ExperimentResult run_experiment_exact(std::uint64_t target_index,
                                        unsigned bit);

  /// The pruned dispatch for an explicit (dynamic site, bit) pair:
  /// dead-bit adjudication, lane-class remap, memoized execution. This is
  /// the exact code path run_experiment takes after drawing its pair.
  /// Requires static pruning to be enabled.
  ExperimentResult run_experiment_pruned_at(std::uint64_t target_index,
                                            unsigned bit);

  /// One un-injected run (runtime idle). Used for overhead measurements
  /// and sanity checks; returns the interpreter result.
  interp::ExecResult run_clean();

  /// Selects the execution backend for subsequent runs. ExecMode::Jit
  /// routes through jit::JitExecutor (with per-function interpreter
  /// fallback); the other modes run the interpreter flavor the engine was
  /// constructed with. Campaigns plumb CampaignConfig::backend through
  /// this; results are bit-identical across backends by design.
  void set_backend(interp::ExecMode mode);
  interp::ExecMode backend() const {
    return options_.jit ? interp::ExecMode::Jit : interp_.mode();
  }

  /// The JIT executor, if any runs have used (or will use) it; nullptr
  /// while the backend is interpreter-only. Tests and benchmarks read
  /// native/fallback run counters from here.
  jit::JitExecutor* jit_backend() { return jit_.get(); }

  /// Toggles golden-run memoization (campaigns plumb
  /// CampaignConfig::use_golden_cache through this). Disabling drops any
  /// cached run so a later re-enable recomputes from scratch.
  void set_golden_cache_enabled(bool enabled);
  bool golden_cache_enabled() const { return options_.golden_cache; }

  /// Computes the golden cache now (no-op when disabled or already
  /// computed). Campaigns warm engines on the coordinating thread before
  /// cloning so every worker inherits the cache — and so detector
  /// runtimes observe the golden pass exactly once per engine.
  void warm_golden_cache();

  /// Toggles static pruning (campaigns plumb
  /// CampaignConfig::use_static_prune through this). Enabling after a
  /// golden run was cached without its census drops the cache so the next
  /// experiment recomputes it with the census.
  void set_static_prune(bool enabled);
  bool static_prune_enabled() const { return options_.static_prune; }

  /// The engine's prune plan (computed from the pristine IR).
  const PrunePlan& prune_plan() const { return prune_; }

  /// Golden observables, computing them on first use. The exhaustive
  /// harness reads dynamic_sites and the census from here.
  const GoldenCache& golden() { return ensure_golden(); }

  /// Harness self-verification: re-executes the golden run from scratch
  /// and compares every observable against the memoized cache — output
  /// bytes, return bits, dynamic-site count and census, instruction
  /// count, detector events. The golden run is deterministic, so any
  /// mismatch means the cache (or the host underneath it) was corrupted
  /// after it was computed: the injector checking itself for SDCs.
  /// Vacuously ok when no cache has been computed. Consumes no
  /// randomness and may run between campaigns without perturbing the
  /// experiment streams.
  GoldenVerifyResult verify_golden();

  /// Test-only: replaces the golden cache wholesale. Lets the
  /// self-verification tests plant a deliberately poisoned entry.
  void set_golden_for_test(GoldenCache cache);

  /// The faulty-run instruction budget derived from a golden instruction
  /// count. Single definition shared by the cached and uncached paths so
  /// the Crash/hang classification cannot drift between them.
  std::uint64_t faulty_instruction_budget(
      std::uint64_t golden_instructions) const {
    return golden_instructions * options_.budget_multiplier + 10'000;
  }

  const std::vector<FaultSite>& sites() const { return runtime_.sites(); }
  analysis::FaultSiteCategory category() const { return runtime_.category(); }
  interp::DetectionLog& detection_log() { return detection_log_; }
  const RunSpec& spec() const { return spec_; }

  /// Static sites matching this engine's category.
  std::uint64_t eligible_static_sites() const;

 private:
  struct RunOutput {
    interp::ExecResult exec;
    std::vector<std::uint8_t> output_bytes;  // concatenated output regions
    std::vector<std::uint64_t> return_bits;
  };

  RunOutput execute(interp::ExecLimits limits);
  GoldenCache compute_golden();
  const GoldenCache& ensure_golden();
  /// Executes the armed faulty run and classifies it into `result`.
  void run_faulty(ExperimentResult& result, const GoldenCache& golden);
  ExperimentResult pruned_dispatch(const GoldenCache& golden,
                                   std::uint64_t target_index, unsigned bit);

  RunSpec spec_;
  /// Un-instrumented copy of the incoming spec, kept so clone() can
  /// re-instrument from scratch (instrumentation is deterministic, so the
  /// replica's site table matches this engine's exactly).
  RunSpec pristine_;
  EngineOptions options_;
  FaultInjectionRuntime runtime_;
  interp::RuntimeEnv env_;
  interp::DetectionLog detection_log_;
  std::vector<RuntimeSetup> setups_;
  /// Scratch execution arena, reset from spec_.arena before every run —
  /// avoids reallocating a multi-megabyte arena per execution.
  interp::Arena scratch_;
  /// Persistent interpreter: keeps the per-function decode caches warm
  /// across the engine's millions of executions.
  interp::Interpreter interp_;
  /// JIT executor, constructed lazily on the first jit-backend run. Uses
  /// interp_ as its per-function fallback substrate.
  std::unique_ptr<jit::JitExecutor> jit_;
  std::shared_ptr<const GoldenCache> golden_;
  /// Static prune plan over the pristine IR (always computed — enabling
  /// pruning mid-run via set_static_prune needs no reanalysis).
  PrunePlan prune_;
  /// Memoized pruned-path outcomes, keyed by executed_target * 64 + bit.
  /// Private per engine (clones start empty); reuse is a pure speedup —
  /// the interpreter is deterministic, so a memo hit returns exactly what
  /// a fresh execution would.
  std::unordered_map<std::uint64_t, ExperimentResult> memo_;
};

}  // namespace vulfi
