// Experiment driver (paper §IV-B execution strategy).
//
// One fault-injection experiment executes the program twice:
//  1. golden run — no fault injected; the output is recorded and the
//     dynamic fault sites of the selected category are counted;
//  2. faulty run — one dynamic site is chosen uniformly at random, a
//     single random bit is flipped there, and the outcome is classified:
//       SDC    — output differs from the golden output,
//       Benign — outputs identical,
//       Crash  — trap or runaway execution.
// When detector passes were applied to the module, detector events raised
// during the faulty run are reported alongside the outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/classify.hpp"
#include "interp/interpreter.hpp"
#include "support/rng.hpp"
#include "vulfi/fi_runtime.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi {

enum class Outcome : std::uint8_t { Benign, SDC, Crash };

const char* outcome_name(Outcome outcome);

struct ExperimentResult {
  Outcome outcome = Outcome::Benign;
  /// A detector flagged the faulty run.
  bool detected = false;
  /// Trap that ended the faulty run (None unless outcome == Crash).
  interp::TrapKind trap = interp::TrapKind::None;
  InjectionRecord injection;
  std::uint64_t dynamic_sites = 0;
  std::uint64_t golden_instructions = 0;
  std::uint64_t faulty_instructions = 0;
};

struct EngineOptions {
  analysis::AddressRule address_rule = analysis::AddressRule::GepOnly;
  /// Faulty-run instruction budget = multiplier × golden instruction
  /// count; exceeding it classifies the run as Crash (hang).
  std::uint64_t budget_multiplier = 64;
  /// Injecting into masked-off lanes is the paper's design error VULFI
  /// avoids; turning gating off is an ablation switch.
  bool mask_aware = true;
};

/// Owns one instrumented program and runs experiments against it.
class InjectionEngine {
 public:
  InjectionEngine(RunSpec spec, analysis::FaultSiteCategory category,
                  EngineOptions options = {});

  /// Additional runtime registration hook (detector runtimes). Runs
  /// immediately; the handlers may capture detection_log().
  void setup_runtime(
      const std::function<void(interp::RuntimeEnv&)>& setup);

  /// One full golden + faulty experiment.
  ExperimentResult run_experiment(Rng& rng);

  /// One un-injected run (runtime idle). Used for overhead measurements
  /// and sanity checks; returns the interpreter result.
  interp::ExecResult run_clean();

  const std::vector<FaultSite>& sites() const { return runtime_.sites(); }
  analysis::FaultSiteCategory category() const { return runtime_.category(); }
  interp::DetectionLog& detection_log() { return detection_log_; }
  const RunSpec& spec() const { return spec_; }

  /// Static sites matching this engine's category.
  std::uint64_t eligible_static_sites() const;

 private:
  struct RunOutput {
    interp::ExecResult exec;
    std::vector<std::uint8_t> output_bytes;  // concatenated output regions
    std::vector<std::uint64_t> return_bits;
  };

  RunOutput execute(interp::ExecLimits limits);

  RunSpec spec_;
  EngineOptions options_;
  FaultInjectionRuntime runtime_;
  interp::RuntimeEnv env_;
  interp::DetectionLog detection_log_;
};

}  // namespace vulfi
