// Per-site outcome reporting.
//
// Aggregates experiment outcomes by static site attributes (opcode,
// category membership, masked-ness, vector-ness) so a study can answer
// "which instructions are the SDC sources" — the per-benchmark analysis
// behind the paper's discussion of Figure 11 (e.g. why chebyshev's
// address faults corrupt output instead of crashing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"

namespace vulfi {

struct OutcomeCounts {
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t detected = 0;

  std::uint64_t total() const { return benign + sdc + crash; }
  void record(const ExperimentResult& result) {
    switch (result.outcome) {
      case Outcome::Benign: benign += 1; break;
      case Outcome::SDC: sdc += 1; break;
      case Outcome::Crash: crash += 1; break;
    }
    if (result.detected) detected += 1;
  }
};

/// Collects experiment results keyed by the injected site's attributes.
class OutcomeReport {
 public:
  /// Records `result`; `sites` must be the engine's site table so the
  /// injected site can be resolved. No-op if no injection fired.
  void record(const ExperimentResult& result,
              const std::vector<FaultSite>& sites);

  /// Aggregation keyed by the site instruction's opcode name (plus the
  /// instruction's SSA name for per-site drill-down tables).
  const std::map<std::string, OutcomeCounts>& by_opcode() const {
    return by_opcode_;
  }
  const std::map<std::string, OutcomeCounts>& by_site_name() const {
    return by_site_name_;
  }
  OutcomeCounts vector_sites() const { return vector_sites_; }
  OutcomeCounts scalar_sites() const { return scalar_sites_; }
  OutcomeCounts masked_sites() const { return masked_sites_; }

  /// Aligned text rendering of the opcode table, rate columns included.
  std::string render_by_opcode() const;

  std::uint64_t experiments() const { return experiments_; }

 private:
  std::map<std::string, OutcomeCounts> by_opcode_;
  std::map<std::string, OutcomeCounts> by_site_name_;
  OutcomeCounts vector_sites_;
  OutcomeCounts scalar_sites_;
  OutcomeCounts masked_sites_;
  std::uint64_t experiments_ = 0;
};

/// One-line outcome-rate summary with Wilson 95% confidence intervals:
/// "SDC 12.00% [9.71%, 14.74%]   Benign ...   Crash ...". The intervals
/// are pure functions of the integer outcome counters (support/stats
/// wilson_interval), so the line is deterministic across thread counts,
/// resume positions, and the serve/CLI paths.
std::string render_rates_with_ci(const CampaignResult& result,
                                 double confidence = 0.95);

/// One-line throughput summary of a run_campaigns call: wall time,
/// experiments/sec, worker count, and mean per-thread utilization
/// (per-worker busy fractions appended when more than one worker ran).
std::string render_throughput(const ThroughputStats& throughput);

/// One-line static-prune summary: how many experiments were adjudicated
/// without execution, served from the memo, or remapped onto a
/// lane-symmetry representative.
std::string render_prune_savings(const CampaignResult& result);

/// One-line resilience summary of a run_campaigns call: checkpoint
/// restore/interrupt status and self-verification tallies. Empty when the
/// run used none of the resilience features (nothing to report).
std::string render_resilience(const CampaignResult& result);

/// Deterministic JSON rendering of a campaign's statistics. Doubles are
/// encoded as 16-hex-digit IEEE-754 bit patterns (support/journal.hpp's
/// double_hex), so two renderings are string-equal iff the statistics are
/// bit-identical. Includes every scheduling-independent figure — outcome
/// counters, per-campaign SDC samples, stop-rule state — and deliberately
/// excludes throughput and prune memo hits, the two figures that
/// legitimately vary with thread count and resume position. The
/// interrupt-resume CI job diffs this output against a clean run's.
std::string campaign_stats_json(const CampaignResult& result);

}  // namespace vulfi
