#include "vulfi/report.hpp"

#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace vulfi {

void OutcomeReport::record(const ExperimentResult& result,
                           const std::vector<FaultSite>& sites) {
  experiments_ += 1;
  if (!result.injection.fired) return;
  VULFI_ASSERT(result.injection.site_id < sites.size(),
               "report: unknown site id");
  const FaultSite& site = sites[result.injection.site_id];

  by_opcode_[ir::opcode_name(site.inst->opcode())].record(result);
  by_site_name_["%" + site.inst->name()].record(result);
  if (site.vector_instruction) {
    vector_sites_.record(result);
  } else {
    scalar_sites_.record(result);
  }
  if (site.masked) masked_sites_.record(result);
}

std::string OutcomeReport::render_by_opcode() const {
  TextTable table({"Opcode", "Experiments", "SDC", "Benign", "Crash",
                   "Detected"});
  for (const auto& [opcode, counts] : by_opcode_) {
    const double total = static_cast<double>(counts.total());
    table.add_row({opcode, std::to_string(counts.total()),
                   pct(counts.sdc / total), pct(counts.benign / total),
                   pct(counts.crash / total),
                   pct(counts.detected / total)});
  }
  return table.render();
}

}  // namespace vulfi
