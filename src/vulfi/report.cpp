#include "vulfi/report.hpp"

#include "support/error.hpp"
#include "support/journal.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace vulfi {

void OutcomeReport::record(const ExperimentResult& result,
                           const std::vector<FaultSite>& sites) {
  experiments_ += 1;
  if (!result.injection.fired) return;
  VULFI_ASSERT(result.injection.site_id < sites.size(),
               "report: unknown site id");
  const FaultSite& site = sites[result.injection.site_id];

  by_opcode_[ir::opcode_name(site.inst->opcode())].record(result);
  by_site_name_["%" + site.inst->name()].record(result);
  if (site.vector_instruction) {
    vector_sites_.record(result);
  } else {
    scalar_sites_.record(result);
  }
  if (site.masked) masked_sites_.record(result);
}

std::string render_rates_with_ci(const CampaignResult& result,
                                 double confidence) {
  auto one = [&](const char* label, std::uint64_t count) {
    const WilsonInterval ci =
        wilson_interval(count, result.experiments, confidence);
    return strf("%s %s [%s, %s]", label, pct(result.rate(count)).c_str(),
                pct(ci.low).c_str(), pct(ci.high).c_str());
  };
  return one("SDC", result.sdc) + "   " + one("Benign", result.benign) +
         "   " + one("Crash", result.crash);
}

std::string render_throughput(const ThroughputStats& throughput) {
  std::string line = strf(
      "%llu experiments in %.2fs — %.1f experiments/sec, %u thread%s, "
      "utilization %s",
      static_cast<unsigned long long>(throughput.experiments),
      throughput.wall_seconds, throughput.experiments_per_second(),
      throughput.threads, throughput.threads == 1 ? "" : "s",
      pct(throughput.utilization()).c_str());
  if (throughput.thread_busy_seconds.size() > 1) {
    line += " [per-thread:";
    for (double busy : throughput.thread_busy_seconds) {
      line += strf(" %s", pct(throughput.wall_seconds > 0.0
                                  ? busy / throughput.wall_seconds
                                  : 0.0)
                              .c_str());
    }
    line += "]";
  }
  return line;
}

std::string render_prune_savings(const CampaignResult& result) {
  const std::uint64_t skipped =
      result.prune_adjudicated + result.prune_memo_hits;
  const double n = result.experiments == 0
                       ? 1.0
                       : static_cast<double>(result.experiments);
  return strf(
      "%llu/%llu faulty runs skipped (%s) — %llu dead-bit adjudicated, "
      "%llu memoized; %llu experiments lane-remapped",
      static_cast<unsigned long long>(skipped),
      static_cast<unsigned long long>(result.experiments),
      pct(static_cast<double>(skipped) / n).c_str(),
      static_cast<unsigned long long>(result.prune_adjudicated),
      static_cast<unsigned long long>(result.prune_memo_hits),
      static_cast<unsigned long long>(result.prune_remapped));
}

std::string render_resilience(const CampaignResult& result) {
  const bool used_checkpoint = !result.checkpoint_path.empty();
  const bool used_verify =
      result.self_verify_passes + result.self_verify_failures > 0;
  if (!used_checkpoint && !used_verify && !result.interrupted) return "";

  std::string line;
  if (used_checkpoint) {
    line += strf("checkpoint %s", result.checkpoint_path.c_str());
    if (result.campaigns_restored > 0) {
      line += strf(" (restored %u campaign%s, %llu experiments)",
                   result.campaigns_restored,
                   result.campaigns_restored == 1 ? "" : "s",
                   static_cast<unsigned long long>(
                       result.experiments_restored));
    }
  }
  if (used_verify) {
    if (!line.empty()) line += "; ";
    line += strf("self-verify %llu pass%s",
                 static_cast<unsigned long long>(result.self_verify_passes),
                 result.self_verify_passes == 1 ? "" : "es");
    if (result.self_verify_failures > 0) {
      line += strf(", %llu FAILURE%s",
                   static_cast<unsigned long long>(
                       result.self_verify_failures),
                   result.self_verify_failures == 1 ? "" : "S");
    }
  }
  if (result.interrupted) {
    if (!line.empty()) line += "; ";
    line += used_checkpoint ? "interrupted — resume with the same "
                              "configuration to continue"
                            : "interrupted";
  }
  return line;
}

std::string campaign_stats_json(const CampaignResult& result) {
  auto u64 = [](std::uint64_t value) {
    return strf("%llu", static_cast<unsigned long long>(value));
  };
  std::string json = "{";
  json += strf("\"campaigns\":%u,", result.campaigns);
  json += "\"experiments\":" + u64(result.experiments) + ",";
  json += "\"benign\":" + u64(result.benign) + ",";
  json += "\"sdc\":" + u64(result.sdc) + ",";
  json += "\"crash\":" + u64(result.crash) + ",";
  // Wilson 95% CIs for the three outcome rates: pure functions of the
  // integer counters above, hex-encoded like every other double so the
  // rendering stays byte-comparable.
  auto ci = [&](const char* key, std::uint64_t count) {
    const WilsonInterval interval =
        wilson_interval(count, result.experiments, 0.95);
    return strf("\"%s\":[\"%s\",\"%s\"],", key,
                double_hex(interval.low).c_str(),
                double_hex(interval.high).c_str());
  };
  json += ci("sdc_ci95", result.sdc);
  json += ci("benign_ci95", result.benign);
  json += ci("crash_ci95", result.crash);
  json += "\"detected_sdc\":" + u64(result.detected_sdc) + ",";
  json += "\"detected_total\":" + u64(result.detected_total) + ",";
  json += "\"prune_adjudicated\":" + u64(result.prune_adjudicated) + ",";
  json += "\"prune_remapped\":" + u64(result.prune_remapped) + ",";
  json += strf("\"mean\":\"%s\",", double_hex(result.sdc_samples.mean()).c_str());
  json += strf("\"margin\":\"%s\",", double_hex(result.margin_of_error).c_str());
  json += strf("\"near_normal\":%s,", result.near_normal ? "true" : "false");
  json += strf("\"converged\":%s,", result.converged ? "true" : "false");
  json += "\"samples\":[";
  for (std::size_t i = 0; i < result.campaign_sdc_rates.size(); ++i) {
    if (i > 0) json += ",";
    json += strf("\"%s\"", double_hex(result.campaign_sdc_rates[i]).c_str());
  }
  json += "]}";
  return json;
}

std::string OutcomeReport::render_by_opcode() const {
  TextTable table({"Opcode", "Experiments", "SDC", "Benign", "Crash",
                   "Detected"});
  for (const auto& [opcode, counts] : by_opcode_) {
    const double total = static_cast<double>(counts.total());
    table.add_row({opcode, std::to_string(counts.total()),
                   pct(counts.sdc / total), pct(counts.benign / total),
                   pct(counts.crash / total),
                   pct(counts.detected / total)});
  }
  return table.render();
}

}  // namespace vulfi
