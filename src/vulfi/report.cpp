#include "vulfi/report.hpp"

#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace vulfi {

void OutcomeReport::record(const ExperimentResult& result,
                           const std::vector<FaultSite>& sites) {
  experiments_ += 1;
  if (!result.injection.fired) return;
  VULFI_ASSERT(result.injection.site_id < sites.size(),
               "report: unknown site id");
  const FaultSite& site = sites[result.injection.site_id];

  by_opcode_[ir::opcode_name(site.inst->opcode())].record(result);
  by_site_name_["%" + site.inst->name()].record(result);
  if (site.vector_instruction) {
    vector_sites_.record(result);
  } else {
    scalar_sites_.record(result);
  }
  if (site.masked) masked_sites_.record(result);
}

std::string render_throughput(const ThroughputStats& throughput) {
  std::string line = strf(
      "%llu experiments in %.2fs — %.1f experiments/sec, %u thread%s, "
      "utilization %s",
      static_cast<unsigned long long>(throughput.experiments),
      throughput.wall_seconds, throughput.experiments_per_second(),
      throughput.threads, throughput.threads == 1 ? "" : "s",
      pct(throughput.utilization()).c_str());
  if (throughput.thread_busy_seconds.size() > 1) {
    line += " [per-thread:";
    for (double busy : throughput.thread_busy_seconds) {
      line += strf(" %s", pct(throughput.wall_seconds > 0.0
                                  ? busy / throughput.wall_seconds
                                  : 0.0)
                              .c_str());
    }
    line += "]";
  }
  return line;
}

std::string render_prune_savings(const CampaignResult& result) {
  const std::uint64_t skipped =
      result.prune_adjudicated + result.prune_memo_hits;
  const double n = result.experiments == 0
                       ? 1.0
                       : static_cast<double>(result.experiments);
  return strf(
      "%llu/%llu faulty runs skipped (%s) — %llu dead-bit adjudicated, "
      "%llu memoized; %llu experiments lane-remapped",
      static_cast<unsigned long long>(skipped),
      static_cast<unsigned long long>(result.experiments),
      pct(static_cast<double>(skipped) / n).c_str(),
      static_cast<unsigned long long>(result.prune_adjudicated),
      static_cast<unsigned long long>(result.prune_memo_hits),
      static_cast<unsigned long long>(result.prune_remapped));
}

std::string OutcomeReport::render_by_opcode() const {
  TextTable table({"Opcode", "Experiments", "SDC", "Benign", "Crash",
                   "Detected"});
  for (const auto& [opcode, counts] : by_opcode_) {
    const double total = static_cast<double>(counts.total());
    table.add_row({opcode, std::to_string(counts.total()),
                   pct(counts.sdc / total), pct(counts.benign / total),
                   pct(counts.crash / total),
                   pct(counts.detected / total)});
  }
  return table.render();
}

}  // namespace vulfi
