#include "vulfi/instrument.hpp"

#include <unordered_set>

#include "ir/builder.hpp"
#include "ir/module.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "vulfi/fi_runtime.hpp"

namespace vulfi {

namespace {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

/// The all-active mask constant passed for unmasked sites: every bit set,
/// so the MSB check in the runtime always reads "active".
ir::Constant* all_active_const(ir::Module& module, Type element) {
  return module.const_raw(
      element, {ir::all_active_mask_lane(element.element_bits())});
}

/// Emits the extract → inject-call → insert chain of paper Figure 5 at the
/// current insertion point. Returns the fully instrumented clone and
/// records every created instruction in `created`.
Value* emit_vector_chain(IRBuilder& b, ir::Module& module, Value* original,
                         Value* mask_vec, unsigned first_site_id,
                         std::unordered_set<const ir::Instruction*>& created) {
  const Type vec_type = original->type();
  const Type element = vec_type.element();
  ir::Function* inject = declare_inject_fn(module, element);
  ir::Constant* inactive_default = all_active_const(module, element);

  auto track = [&](Value* value) {
    created.insert(static_cast<const ir::Instruction*>(value));
    return value;
  };

  Value* cur = original;
  for (unsigned lane = 0; lane < vec_type.lanes(); ++lane) {
    Value* ext = track(b.extract_element(cur, lane, strf("ext%u", lane)));
    Value* extmask =
        mask_vec
            ? track(b.extract_element(mask_vec, lane, strf("extmask%u", lane)))
            : static_cast<Value*>(inactive_default);
    Value* inj = track(b.call(
        inject,
        {ext, extmask, module.const_int(Type::i64(), first_site_id + lane),
         module.const_int(Type::i32(), lane)},
        strf("inj%u", lane)));
    cur = track(b.insert_element(cur, inj, lane, strf("ins%u", lane)));
  }
  return cur;
}

/// Scalar site: a single inject call.
Value* emit_scalar_call(IRBuilder& b, ir::Module& module, Value* original,
                        Value* mask_scalar, unsigned site_id,
                        std::unordered_set<const ir::Instruction*>& created) {
  const Type element = original->type();
  ir::Function* inject = declare_inject_fn(module, element);
  Value* mask = mask_scalar ? mask_scalar
                            : static_cast<Value*>(
                                  all_active_const(module, element));
  Value* inj = b.call(inject,
                      {original, mask,
                       module.const_int(Type::i64(), site_id),
                       module.const_int(Type::i32(), 0)},
                      "inj");
  created.insert(static_cast<const ir::Instruction*>(inj));
  return inj;
}

}  // namespace

std::vector<FaultSite> Instrumentor::run(ir::Function& fn) {
  VULFI_ASSERT(fn.is_definition(), "can only instrument definitions");
  ir::Module& module = *fn.parent();

  // The site table is computed on the pre-pass IR so ids and classes are
  // oblivious to instrumentation artifacts.
  std::vector<FaultSite> sites = enumerate_fault_sites(fn, rule_);

  // Snapshot the original instructions before the pass mutates blocks.
  std::vector<ir::Instruction*> originals;
  for (auto& block : fn) {
    for (auto& inst : *block) {
      if (analysis::is_fault_site_instruction(*inst)) {
        originals.push_back(inst.get());
      }
    }
  }

  IRBuilder b(module);
  unsigned next_site = 0;
  for (ir::Instruction* inst : originals) {
    const SiteTarget target = site_target_of(*inst);
    const Type type = target.value->type();
    const unsigned first_site_id = next_site;
    next_site += type.lanes();
    std::unordered_set<const ir::Instruction*> created;

    if (target.store_operand) {
      // Figure-5 rule for stores: the to-be-stored value is considered
      // for injection immediately before the store; only the store's
      // operand is redirected.
      b.set_insert_before(inst);
      Value* replacement;
      if (type.is_vector()) {
        replacement = emit_vector_chain(b, module, target.value, target.mask,
                                        first_site_id, created);
      } else {
        replacement = emit_scalar_call(b, module, target.value, nullptr,
                                       first_site_id, created);
      }
      // Redirect exactly the data slot: scanning for a matching operand
      // would hit the mask first when a maskstore's mask and data are the
      // same register.
      inst->set_operand(target.store_operand_index, replacement);
      continue;
    }

    // Lvalue site: instrument after the definition and redirect all other
    // users of the original register to the instrumented clone.
    b.set_insert_after(inst);
    Value* replacement;
    if (type.is_vector()) {
      replacement = emit_vector_chain(b, module, inst, target.mask,
                                      first_site_id, created);
    } else {
      replacement =
          emit_scalar_call(b, module, inst, nullptr, first_site_id, created);
    }
    inst->replace_uses_with_if(
        replacement, [&created](const ir::Instruction& user) {
          return created.count(&user) == 0;
        });
  }

  VULFI_ASSERT(next_site == sites.size(),
               "instrumented site count diverged from enumeration");
  return sites;
}

}  // namespace vulfi
