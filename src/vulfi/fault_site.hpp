// Fault sites (paper §II-B).
//
// A *static* fault site is the Lvalue of a target instruction — with every
// scalar element of a vector register treated as a unique site — or the
// to-be-stored value of a (masked) store, which has no Lvalue. A *dynamic*
// fault site is one runtime instance of a static site; the runtime
// (fi_runtime.hpp) counts and selects those.
#pragma once

#include <vector>

#include "analysis/classify.hpp"
#include "ir/function.hpp"
#include "ir/instruction.hpp"

namespace vulfi {

struct FaultSite {
  /// Dense id; equals the site_id constant baked into the instrumented
  /// call for this (instruction, lane).
  unsigned id = 0;
  /// The target instruction (site owner). For store sites this is the
  /// store / maskstore itself.
  const ir::Instruction* inst = nullptr;
  /// Scalar element within the (possibly vector) register; 0 for scalars.
  unsigned lane = 0;
  /// Element type of the targeted scalar register.
  ir::Type element_type;
  /// Forward-slice classification of the site's value.
  analysis::SiteClass site_class;
  /// Lane is gated by an execution mask (masked vector intrinsic).
  bool masked = false;
  /// Site targets a store's value operand rather than an Lvalue.
  bool store_operand = false;
  /// The owning instruction is a vector instruction (paper §II-A).
  bool vector_instruction = false;
};

/// Enumerates the static fault sites of `fn` in instruction order without
/// modifying the IR. The instrumentor produces the same list (same ids)
/// while instrumenting. Classification is edge-exact: a store-operand site
/// corrupts only the value flowing into the store's data slot, so it is
/// classified by that single def-use edge rather than by every use of the
/// stored value.
std::vector<FaultSite> enumerate_fault_sites(
    const ir::Function& fn, analysis::AddressRule rule,
    analysis::AnalysisManager& am);

/// Convenience overload with a private (uncached) AnalysisManager.
std::vector<FaultSite> enumerate_fault_sites(
    const ir::Function& fn,
    analysis::AddressRule rule = analysis::AddressRule::GepOnly);

/// Which value/mask a fault-site instruction targets. Shared between
/// enumeration and instrumentation so their site ids always agree.
struct SiteTarget {
  ir::Value* value = nullptr;  // the targeted register value
  ir::Value* mask = nullptr;   // execution mask vector, if any
  bool store_operand = false;
  /// For store sites: the operand slot of `value` in the store (0 for
  /// Store, data_operand for MaskStore). The instrumentor must redirect
  /// exactly this slot — scanning for a matching operand would hit the
  /// mask first when a maskstore's mask and data are the same value.
  unsigned store_operand_index = 0;
};

SiteTarget site_target_of(ir::Instruction& inst);

}  // namespace vulfi
