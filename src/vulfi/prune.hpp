// Static fault-site pruning (dead bits + lane-symmetry classes).
//
// Two sound reductions of the fault-injection experiment space, both
// proven by the static analyses in src/analysis/ and both exact — the
// pruned campaign reproduces the unpruned campaign's statistics
// experiment for experiment:
//
//  * Dead bits. A single-bit flip at a bit position the demanded-bits
//    analysis proves unobservable (truncated away, masked off, ignored by
//    an execution-mask consumer, overwritten before any use) is Benign by
//    construction: it cannot change stored bytes, return bits, control
//    flow, traps, or detector calls. Such experiments are adjudicated
//    statically without running the program.
//
//  * Lane-symmetric sites. When a vector site's register is a provable
//    splat and its entire forward slice is elementwise over lane-uniform
//    operands (no shuffles, no lane extraction, no masked ops, no control
//    or address consumers), flipping bit b in lane i is outcome-equivalent
//    to flipping bit b in lane 0 of the same dynamic instance. All lanes
//    of the instruction collapse into one equivalence class; the engine
//    runs the representative and reuses (memoizes) the outcome for every
//    member, with exact per-experiment weight accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "ir/function.hpp"
#include "vulfi/fault_site.hpp"

namespace vulfi {

struct SitePruneInfo {
  /// Bit positions (within the element width) where a flip is provably
  /// Benign. A set bit at position b means "bit b is dead".
  std::uint64_t dead_mask = 0;
  /// Representative site id of this site's lane-symmetry class (== the
  /// site's own id when the site is its own representative / unclassed).
  unsigned class_rep = 0;
  /// Number of sites sharing the class (1 = no collapse).
  unsigned class_size = 1;
};

struct PrunePlan {
  std::vector<SitePruneInfo> sites;  // indexed by site id

  /// Aggregates for reporting.
  std::uint64_t dead_bit_count = 0;    // total dead bits over all sites
  std::uint64_t total_bit_count = 0;   // total element bits over all sites
  unsigned collapsed_sites = 0;        // sites represented by another site

  bool has_work() const { return dead_bit_count > 0 || collapsed_sites > 0; }
};

/// Builds the prune plan for `fn`'s site table. Must be called on the
/// PRISTINE (pre-instrumentation) function: the analyses must see the
/// original dataflow, not the inject-call chains. `sites` is the pristine
/// enumeration (ids match the instrumented table by construction).
PrunePlan build_prune_plan(const ir::Function& fn,
                           const std::vector<FaultSite>& sites,
                           analysis::AnalysisManager& am);

}  // namespace vulfi
