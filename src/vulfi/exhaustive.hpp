// Exhaustive fault-injection enumeration (differential oracle for the
// static pruner).
//
// Instead of sampling, both drivers below run EVERY experiment in the
// space {(k, b) : k < dynamic sites, b < element bits of k's site}:
//
//  * run_exhaustive          — ground truth: every pair executes a real
//    faulty run through run_experiment_exact, no pruning logic at all.
//  * run_exhaustive_pruned   — every pair goes through the engine's
//    pruned dispatch (dead-bit adjudication, lane-class remap, memo).
//
// The pruner's exactness claim is that the two produce identical outcome
// totals while the pruned driver executes strictly fewer faulty runs;
// test_prune.cpp asserts exactly that on fully enumerable kernels.
#pragma once

#include <cstdint>

#include "vulfi/driver.hpp"

namespace vulfi {

struct ExhaustiveTotals {
  std::uint64_t experiments = 0;
  std::uint64_t sdc = 0;
  std::uint64_t benign = 0;
  std::uint64_t crash = 0;
  std::uint64_t detected = 0;
  /// Faulty runs actually executed / avoided (adjudicated or memo-served).
  std::uint64_t executed_runs = 0;
  std::uint64_t saved_runs = 0;

  /// Outcome-statistics equality; the execution counters are deliberately
  /// excluded (saving runs is the point).
  bool same_statistics(const ExhaustiveTotals& other) const {
    return experiments == other.experiments && sdc == other.sdc &&
           benign == other.benign && crash == other.crash &&
           detected == other.detected;
  }
};

/// Both require an engine with static pruning enabled (the enumeration
/// itself needs the golden census to know each dynamic site's width).
ExhaustiveTotals run_exhaustive(InjectionEngine& engine);
ExhaustiveTotals run_exhaustive_pruned(InjectionEngine& engine);

}  // namespace vulfi
