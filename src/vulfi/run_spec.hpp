// A program-under-test bundle: a module, its entry kernel, a pre-populated
// arena (inputs written), entry arguments, and the names of the arena
// regions whose bytes constitute the program's observable output. The
// kernels library produces these; the injection engine consumes them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interp/arena.hpp"
#include "interp/rtval.hpp"
#include "ir/module.hpp"

namespace vulfi {

struct RunSpec {
  std::unique_ptr<ir::Module> module;
  ir::Function* entry = nullptr;
  /// Pristine initial memory; the engine copies it for every execution.
  interp::Arena arena{1u << 20};
  std::vector<interp::RtVal> args;
  /// Output regions compared between golden and faulty runs.
  std::vector<std::string> output_regions;

  /// How outputs are compared. -1 (default): byte-exact. >= 0: output
  /// regions are interpreted as f32 arrays and compared as if printed
  /// with that many decimal places — matching studies that diff a
  /// program's *printed* output (a benchmark writing "%.3f" rounds away
  /// low-mantissa perturbations; the paper's SCL programs report
  /// residuals/solutions in fixed decimal text).
  int f32_compare_decimals = -1;
};

/// Deep copy: clones the module (fresh constants/use-lists via ir/cloner),
/// remaps `entry` into the clone, and copies arena, args, and comparison
/// settings. The copy shares no mutable state with `spec` — the building
/// block for per-thread engine replication in parallel campaigns.
RunSpec clone_spec(const RunSpec& spec);

}  // namespace vulfi
