// VULFI fault-injection runtime.
//
// The instrumentor rewrites each fault site into a call to one of the
// `vulfi.inject.<type>` runtime functions (the @injectFaultFloatTy of
// paper Figure 5). This class implements those functions as interpreter
// runtime handlers and carries the paper's fault model (§II-B):
//
//   * exactly one fault per execution;
//   * the dynamic fault site is chosen uniformly (1/N over N dynamic
//     sites of the selected category);
//   * the fault is a single bit flip at a random bit position of the
//     register's real element width;
//   * lanes whose execution-mask element is inactive are never targeted.
//
// Usage per experiment: begin_count() + golden run -> dynamic_count();
// arm(k) + faulty run -> record().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "interp/runtime.hpp"
#include "ir/module.hpp"
#include "support/rng.hpp"
#include "vulfi/fault_site.hpp"

namespace vulfi {

/// Name of the injection runtime function for a scalar element type,
/// e.g. "vulfi.inject.f32". Signature:
///   T vulfi.inject.T(T value, T mask_element, i64 site_id, i32 lane)
std::string inject_fn_name(ir::Type element);

/// Declares the injection runtime function for `element` in `module`.
ir::Function* declare_inject_fn(ir::Module& module, ir::Type element);

/// What actually happened during an armed run.
struct InjectionRecord {
  bool fired = false;
  unsigned site_id = 0;
  unsigned lane = 0;
  unsigned bit = 0;
  std::uint64_t dynamic_index = 0;
  std::uint64_t bits_before = 0;
  std::uint64_t bits_after = 0;
};

class FaultInjectionRuntime {
 public:
  enum class Mode { Idle, Count, Inject };

  /// Registers the injection handlers (all element types) with `env`.
  /// The runtime must outlive the environment.
  void attach(interp::RuntimeEnv& env);

  /// Installs the static site table produced by the Instrumentor.
  void set_sites(std::vector<FaultSite> sites);
  const std::vector<FaultSite>& sites() const { return sites_; }

  /// Selects which fault-site category participates (paper §II-C); calls
  /// on sites of other categories pass values through uncounted.
  void select_category(analysis::FaultSiteCategory category);
  analysis::FaultSiteCategory category() const { return category_; }

  /// Count mode: dynamic sites of the selected category are tallied and
  /// values pass through unchanged (the first, golden execution).
  void begin_count();
  std::uint64_t dynamic_count() const { return counter_; }

  /// Census sink: when non-null, Count mode appends the static site id of
  /// every counted dynamic site (in dynamic order) to `*sink`. The static
  /// pruner uses the sequence to remap experiments between lane-symmetric
  /// sites. Cleared by disable().
  void set_census(std::vector<std::uint32_t>* sink) { census_ = sink; }

  /// Inject mode: the `target_index`-th dynamic site (0-based, in the
  /// same order Count mode tallied) receives a single bit flip at a
  /// position drawn from `rng` at injection time.
  void arm(std::uint64_t target_index, Rng rng);

  /// Inject mode with a preset bit position instead of an RNG draw — the
  /// static pruner replays a drawn (site, bit) pair at a remapped dynamic
  /// index, and exhaustive harnesses enumerate every pair directly.
  void arm_exact(std::uint64_t target_index, unsigned bit);

  /// Idle mode: calls pass through with no counting (overhead baselines).
  void disable();

  /// Ablation switch: when false, masked-off lanes are counted and
  /// targeted like live registers (the design error VULFI's mask
  /// awareness avoids). Default true.
  void set_mask_aware(bool aware) { mask_aware_ = aware; }

  Mode mode() const { return mode_; }
  const InjectionRecord& record() const { return record_; }

 private:
  interp::RtVal handle(const std::vector<interp::RtVal>& args);

  /// handle() on raw lane words — the interp::RawRuntimeHandler fast path
  /// compiled code calls at every fault site. Must stay observably
  /// equivalent to handle(); the JIT differential suite and the `jit`
  /// fuzz oracle enforce the equivalence empirically.
  std::uint64_t handle_raw(std::uint64_t value, std::uint64_t mask,
                           std::uint64_t site_id, std::uint64_t lane);

  std::vector<FaultSite> sites_;
  analysis::FaultSiteCategory category_ =
      analysis::FaultSiteCategory::PureData;
  Mode mode_ = Mode::Idle;
  bool mask_aware_ = true;
  std::uint64_t counter_ = 0;
  std::uint64_t target_index_ = 0;
  bool exact_bit_ = false;
  unsigned preset_bit_ = 0;
  Rng rng_;
  InjectionRecord record_;
  std::vector<std::uint32_t>* census_ = nullptr;
};

}  // namespace vulfi
