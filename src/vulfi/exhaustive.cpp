#include "vulfi/exhaustive.hpp"

#include "support/error.hpp"

namespace vulfi {

namespace {

void tally(ExhaustiveTotals& totals, const ExperimentResult& result) {
  totals.experiments += 1;
  switch (result.outcome) {
    case Outcome::Benign: totals.benign += 1; break;
    case Outcome::SDC: totals.sdc += 1; break;
    case Outcome::Crash: totals.crash += 1; break;
  }
  if (result.detected) totals.detected += 1;
  if (result.statically_adjudicated || result.memo_hit) {
    totals.saved_runs += 1;
  } else {
    totals.executed_runs += 1;
  }
}

template <typename RunPair>
ExhaustiveTotals enumerate(InjectionEngine& engine, RunPair run_pair) {
  VULFI_ASSERT(engine.static_prune_enabled(),
               "exhaustive enumeration needs the golden census");
  // Copy the census up front: run_experiment_exact with the golden cache
  // disabled would recompute goldens, and the reference must stay stable.
  const GoldenCache& golden = engine.golden();
  const std::vector<std::uint32_t> sequence = golden.site_sequence;
  ExhaustiveTotals totals;
  for (std::uint64_t k = 0; k < sequence.size(); ++k) {
    const unsigned elem_bits =
        engine.sites()[sequence[k]].element_type.element_bits();
    for (unsigned bit = 0; bit < elem_bits; ++bit) {
      tally(totals, run_pair(k, bit));
    }
  }
  return totals;
}

}  // namespace

ExhaustiveTotals run_exhaustive(InjectionEngine& engine) {
  return enumerate(engine, [&engine](std::uint64_t k, unsigned bit) {
    return engine.run_experiment_exact(k, bit);
  });
}

ExhaustiveTotals run_exhaustive_pruned(InjectionEngine& engine) {
  return enumerate(engine, [&engine](std::uint64_t k, unsigned bit) {
    return engine.run_experiment_pruned_at(k, bit);
  });
}

}  // namespace vulfi
