// Persistent per-unit campaign summaries + compositional estimates.
//
// The compositional layer (FastFlip-style, arXiv:2403.13989) caches the
// statistical outcome of a fault-injection campaign per program unit,
// keyed by the unit's canonical IR content hash
// (analysis/propagation.hpp) and a fingerprint of every configuration
// field the statistics depend on. `vulfi diff` then recombines stored
// summaries into whole-program estimates: a unit whose content hash is
// unchanged reuses its summary with zero new experiments; only changed
// units re-inject.
//
// The store is a checksummed JSONL journal (support/journal.hpp) at
// DIR/summaries.jsonl: one header record pinning the record grammar
// (schema version) and the writing binary's build fingerprint, then one
// record per summarized (unit, content hash, config) triple — append-only,
// last record wins. A schema or build mismatch is refused (the CLI maps
// that to exit 3, the same contract as checkpoint-header mismatches)
// because summaries from a different grammar or binary cannot be safely
// recombined with fresh runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "ir/function.hpp"
#include "ir/module.hpp"
#include "support/journal.hpp"
#include "support/stats.hpp"
#include "vulfi/campaign.hpp"

namespace vulfi {

/// Bumped when a summary record written by this build would not parse —
/// or would mean something different — under the previous grammar.
/// Reported by `vulfi version`; pinned in every store header.
constexpr unsigned kSummarySchemaVersion = 1;

/// Fingerprint of every campaign-configuration field the statistics
/// depend on: experiment/campaign counts, seed, confidence and margin
/// bit patterns, the exactness toggles, detectors, and the injection
/// category and ISA the engines were built for. Deliberately excludes
/// num_threads, backend, and durability policy — those are proven
/// statistics-neutral, so summaries stay reusable across them.
std::uint64_t summary_config_fingerprint(const CampaignConfig& config,
                                         std::string_view category,
                                         std::string_view isa,
                                         bool detectors);

/// Static propagation census over a unit's fault sites: how many
/// (site, element-bit) pairs fall in each propagation class.
struct PropagationCensus {
  std::uint64_t masked = 0;
  std::uint64_t output = 0;
  std::uint64_t control = 0;
  std::uint64_t trap = 0;

  std::uint64_t total() const { return masked + output + control + trap; }
};

PropagationCensus propagation_census(const ir::Function& fn,
                                     analysis::AnalysisManager& am);
/// Sums the census over every definition in the module.
PropagationCensus propagation_census(const ir::Module& module);

/// One stored summary: the campaign outcome of one program unit under
/// one configuration. Wilson intervals are recomputed from the counts at
/// read time (they are pure functions of the counts, so storing them
/// would only add a staleness hazard).
struct FunctionSummary {
  std::string unit;                     ///< registry benchmark name
  std::uint64_t content_hash = 0;       ///< module_content_hash of the unit
  std::uint64_t config_fingerprint = 0; ///< summary_config_fingerprint

  std::uint64_t experiments = 0;
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t detected_sdc = 0;
  std::uint64_t detected_total = 0;
  std::uint64_t campaigns = 0;
  /// Composition weight: golden dynamic fault-site occurrences summed
  /// over the unit's predefined inputs.
  std::uint64_t weight = 0;
  /// Static propagation census at summary time.
  PropagationCensus census;
  /// Campaign exit code when the summary was taken (0 converged,
  /// 4 unconverged).
  int exit_code = 0;

  double rate(std::uint64_t count) const {
    return experiments == 0
               ? 0.0
               : static_cast<double>(count) / static_cast<double>(experiments);
  }
  double sdc_rate() const { return rate(sdc); }
  double benign_rate() const { return rate(benign); }
  double crash_rate() const { return rate(crash); }
  WilsonInterval sdc_wilson(double confidence) const {
    return wilson_interval(sdc, experiments, confidence);
  }
};

/// {"t":"summary",...} payload (unsealed) for one record.
std::string summary_record_payload(const FunctionSummary& summary);
/// Parses a summary payload; nullopt when any field is missing.
std::optional<FunctionSummary> parse_summary_record(
    const std::string& payload);
/// {"t":"summary-header","schema":...,"build":"..."} payload (unsealed).
std::string summary_store_header_payload();

/// Append-only summary store over one directory. Opening recovers the
/// journal (dropping any torn tail), verifies the header, and indexes
/// the records last-wins by (unit, content hash, config fingerprint).
class SummaryStore {
 public:
  static const char* filename();  // "summaries.jsonl"

  /// Opens (creating if needed) `dir`/summaries.jsonl. Returns false —
  /// with `error` naming the cause — on I/O failure or on a header whose
  /// schema version or build fingerprint differs from this binary's
  /// (callers map that refusal to exit 3).
  bool open(const std::string& dir, std::string* error);

  /// Read-only open for baseline stores: same verification, no writer,
  /// and the store file must already exist. append() is refused.
  bool open_read_only(const std::string& dir, std::string* error);

  bool is_open() const { return writer_.is_open(); }
  const std::string& path() const { return writer_.path(); }

  /// Latest stored summary for the triple, or nullptr.
  const FunctionSummary* find(const std::string& unit,
                              std::uint64_t content_hash,
                              std::uint64_t config_fingerprint) const;

  /// Appends one sealed record and upserts the in-memory index.
  bool append(const FunctionSummary& summary);

  /// Every indexed summary (last-wins), in first-seen unit order.
  const std::vector<FunctionSummary>& records() const { return records_; }

 private:
  bool open_impl(const std::string& dir, std::string* error, bool writable);
  FunctionSummary* find_mutable(const FunctionSummary& like);

  JournalWriter writer_;
  std::vector<FunctionSummary> records_;
};

// --- composition ----------------------------------------------------------

/// Whole-program estimate recombined from per-unit summaries, weighted
/// by golden dynamic fault-site occurrence counts (stratified sampling:
/// each unit is a stratum, its weight the fraction of the whole
/// program's dynamic fault sites it contributes).
///
///   p̂   = Σ (w_u / W) p̂_u
///   Var = Σ (w_u / W)² p̂_u (1 − p̂_u) / n_u
///
/// With a single stratum the weights cancel exactly (w/W == 1), so the
/// composed rates are bit-identical to the unit's own campaign rates.
struct ComposedEstimate {
  std::size_t units = 0;
  std::uint64_t total_weight = 0;
  std::uint64_t experiments = 0;  ///< summed over strata
  double sdc_rate = 0.0;
  double benign_rate = 0.0;
  double crash_rate = 0.0;
  /// Normal-approximation CI of the stratified SDC estimate, clamped to
  /// [0, 1].
  double sdc_low = 0.0;
  double sdc_high = 0.0;
  PropagationCensus census;  ///< summed over strata
};

/// Composes summaries at `confidence`. Units with zero weight contribute
/// their experiment counts but no probability mass; when every weight is
/// zero the units are weighted uniformly so the estimate stays defined.
ComposedEstimate compose_summaries(const std::vector<FunctionSummary>& parts,
                                   double confidence);

}  // namespace vulfi
