#include "vulfi/driver.hpp"

#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "vulfi/instrument.hpp"

namespace vulfi {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::Benign: return "Benign";
    case Outcome::SDC: return "SDC";
    case Outcome::Crash: return "Crash";
  }
  return "?";
}

InjectionEngine::InjectionEngine(RunSpec spec,
                                 analysis::FaultSiteCategory category,
                                 EngineOptions options)
    : spec_(std::move(spec)), options_(options) {
  VULFI_ASSERT(spec_.module != nullptr && spec_.entry != nullptr,
               "engine needs a module and an entry function");
  // Snapshot the spec before instrumenting so clone() can rebuild an
  // identical engine from scratch.
  pristine_ = clone_spec(spec_);
  Instrumentor instrumentor(options_.address_rule);
  runtime_.set_sites(instrumentor.run(*spec_.entry));
  runtime_.select_category(category);
  runtime_.set_mask_aware(options_.mask_aware);
  runtime_.attach(env_);
  ir::verify_or_die(*spec_.module);
}

void InjectionEngine::setup_runtime(const RuntimeSetup& setup) {
  setup(env_, detection_log_);
  setups_.push_back(setup);
}

std::unique_ptr<InjectionEngine> InjectionEngine::clone() const {
  auto replica = std::make_unique<InjectionEngine>(
      clone_spec(pristine_), runtime_.category(), options_);
  for (const RuntimeSetup& setup : setups_) replica->setup_runtime(setup);
  return replica;
}

std::uint64_t InjectionEngine::eligible_static_sites() const {
  std::uint64_t count = 0;
  for (const FaultSite& site : runtime_.sites()) {
    if (site.site_class.matches(runtime_.category())) count += 1;
  }
  return count;
}

InjectionEngine::RunOutput InjectionEngine::execute(
    interp::ExecLimits limits) {
  // Every execution starts from the pristine arena.
  interp::Arena arena = spec_.arena;
  detection_log_.reset();
  interp::Interpreter interp(arena, env_, limits);
  RunOutput out;
  out.exec = interp.run(*spec_.entry, spec_.args);
  for (const std::string& region_name : spec_.output_regions) {
    const auto& region = arena.region(region_name);
    if (spec_.f32_compare_decimals < 0) {
      const auto bytes = arena.region_bytes(region);
      out.output_bytes.insert(out.output_bytes.end(), bytes.begin(),
                              bytes.end());
      continue;
    }
    // Printed-output comparison: render each float the way the original
    // program would print it; the comparison then matches diffing stdout.
    const auto values =
        arena.read_array<float>(region.base, region.bytes / sizeof(float));
    for (float value : values) {
      const std::string text =
          strf("%.*f\n", spec_.f32_compare_decimals, value);
      out.output_bytes.insert(out.output_bytes.end(), text.begin(),
                              text.end());
    }
  }
  if (!spec_.entry->return_type().is_void()) {
    for (unsigned lane = 0; lane < out.exec.return_value.lanes(); ++lane) {
      out.return_bits.push_back(out.exec.return_value.raw[lane]);
    }
  }
  return out;
}

interp::ExecResult InjectionEngine::run_clean() {
  runtime_.disable();
  return execute(interp::ExecLimits{}).exec;
}

ExperimentResult InjectionEngine::run_experiment(Rng& rng) {
  ExperimentResult result;

  // --- golden run: record output, count dynamic sites -------------------
  runtime_.begin_count();
  RunOutput golden = execute(interp::ExecLimits{});
  VULFI_ASSERT(golden.exec.ok(),
               "golden (fault-free) execution trapped — kernel bug");
  result.dynamic_sites = runtime_.dynamic_count();
  result.golden_instructions = golden.exec.stats.total_instructions;

  if (result.dynamic_sites == 0) {
    // No dynamic site of this category: nothing to inject. Counted as
    // Benign (output is unchanged by construction).
    runtime_.disable();
    result.outcome = Outcome::Benign;
    return result;
  }

  // --- faulty run: inject exactly one bit flip ---------------------------
  const std::uint64_t target = rng.next_below(result.dynamic_sites);
  runtime_.arm(target, rng.split());

  interp::ExecLimits faulty_limits;
  faulty_limits.max_instructions =
      result.golden_instructions * options_.budget_multiplier + 10'000;
  RunOutput faulty = execute(faulty_limits);

  runtime_.disable();
  result.injection = runtime_.record();
  result.detected = detection_log_.any();
  result.faulty_instructions = faulty.exec.stats.total_instructions;

  if (!faulty.exec.ok()) {
    result.outcome = Outcome::Crash;
    result.trap = faulty.exec.trap.kind;
    return result;
  }
  const bool differs = faulty.output_bytes != golden.output_bytes ||
                       faulty.return_bits != golden.return_bits;
  result.outcome = differs ? Outcome::SDC : Outcome::Benign;
  return result;
}

}  // namespace vulfi
