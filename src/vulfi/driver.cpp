#include "vulfi/driver.hpp"

#include <algorithm>

#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "vulfi/instrument.hpp"

namespace vulfi {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::Benign: return "Benign";
    case Outcome::SDC: return "SDC";
    case Outcome::Crash: return "Crash";
  }
  return "?";
}

InjectionEngine::InjectionEngine(RunSpec spec,
                                 analysis::FaultSiteCategory category,
                                 EngineOptions options)
    : spec_(std::move(spec)),
      options_(options),
      scratch_(spec_.arena),
      interp_(scratch_, env_, interp::ExecLimits{},
              options.predecode ? interp::ExecMode::PreDecoded
                                : interp::ExecMode::Reference) {
  VULFI_ASSERT(spec_.module != nullptr && spec_.entry != nullptr,
               "engine needs a module and an entry function");
  // Snapshot the spec before instrumenting so clone() can rebuild an
  // identical engine from scratch.
  pristine_ = clone_spec(spec_);
  // The prune plan must see the original dataflow, so it is computed on
  // the pristine copy before any instrumentation. Site ids match the
  // instrumented table: enumeration and instrumentation walk the same
  // instructions in the same order.
  {
    analysis::AnalysisManager am;
    prune_ = build_prune_plan(
        *pristine_.entry,
        enumerate_fault_sites(*pristine_.entry, options_.address_rule, am),
        am);
  }
  Instrumentor instrumentor(options_.address_rule);
  runtime_.set_sites(instrumentor.run(*spec_.entry));
  runtime_.select_category(category);
  runtime_.set_mask_aware(options_.mask_aware);
  runtime_.attach(env_);
  ir::verify_or_die(*spec_.module);
}

void InjectionEngine::set_backend(interp::ExecMode mode) {
  options_.jit = (mode == interp::ExecMode::Jit);
}

void InjectionEngine::setup_runtime(const RuntimeSetup& setup) {
  setup(env_, detection_log_);
  setups_.push_back(setup);
}

std::unique_ptr<InjectionEngine> InjectionEngine::clone() const {
  auto replica = std::make_unique<InjectionEngine>(
      clone_spec(pristine_), runtime_.category(), options_);
  for (const RuntimeSetup& setup : setups_) replica->setup_runtime(setup);
  // The golden observables are a pure function of (pristine spec,
  // deterministic instrumentation), so the replica's cache is identical by
  // construction — share it instead of re-running the golden pass.
  replica->golden_ = golden_;
  return replica;
}

std::uint64_t InjectionEngine::eligible_static_sites() const {
  std::uint64_t count = 0;
  for (const FaultSite& site : runtime_.sites()) {
    if (site.site_class.matches(runtime_.category())) count += 1;
  }
  return count;
}

InjectionEngine::RunOutput InjectionEngine::execute(
    interp::ExecLimits limits) {
  // Every execution starts from the pristine arena; resetting the scratch
  // arena in place avoids reallocating megabytes per run.
  scratch_.reset_from(spec_.arena);
  detection_log_.reset();
  RunOutput out;
  if (options_.jit) {
    if (jit_ == nullptr) {
      jit_ = std::make_unique<jit::JitExecutor>(scratch_, env_, interp_);
    }
    jit_->set_limits(limits);
    out.exec = jit_->run(*spec_.entry, spec_.args);
  } else {
    interp_.set_limits(limits);
    out.exec = interp_.run(*spec_.entry, spec_.args);
  }
  for (const std::string& region_name : spec_.output_regions) {
    const auto& region = scratch_.region(region_name);
    if (spec_.f32_compare_decimals < 0) {
      const auto bytes = scratch_.region_bytes(region);
      out.output_bytes.insert(out.output_bytes.end(), bytes.begin(),
                              bytes.end());
      continue;
    }
    // Printed-output comparison: render each float the way the original
    // program would print it; the comparison then matches diffing stdout.
    const auto values =
        scratch_.read_array<float>(region.base, region.bytes / sizeof(float));
    for (float value : values) {
      const std::string text =
          strf("%.*f\n", spec_.f32_compare_decimals, value);
      out.output_bytes.insert(out.output_bytes.end(), text.begin(),
                              text.end());
    }
  }
  if (!spec_.entry->return_type().is_void()) {
    for (unsigned lane = 0; lane < out.exec.return_value.lanes(); ++lane) {
      out.return_bits.push_back(out.exec.return_value.raw[lane]);
    }
  }
  return out;
}

interp::ExecResult InjectionEngine::run_clean() {
  runtime_.disable();
  return execute(interp::ExecLimits{}).exec;
}

GoldenCache InjectionEngine::compute_golden() {
  GoldenCache cache;
  runtime_.begin_count();
  if (options_.static_prune) runtime_.set_census(&cache.site_sequence);
  RunOutput golden = execute(interp::ExecLimits{});
  VULFI_ASSERT(golden.exec.ok(),
               "golden (fault-free) execution trapped — kernel bug");
  runtime_.set_census(nullptr);
  cache.output_bytes = std::move(golden.output_bytes);
  cache.return_bits = std::move(golden.return_bits);
  cache.dynamic_sites = runtime_.dynamic_count();
  cache.golden_instructions = golden.exec.stats.total_instructions;
  cache.golden_detected = detection_log_.any();
  if (options_.static_prune) {
    cache.site_occurrences.resize(runtime_.sites().size());
    for (std::uint32_t k = 0; k < cache.site_sequence.size(); ++k) {
      cache.site_occurrences[cache.site_sequence[k]].push_back(k);
    }
  }
  return cache;
}

const GoldenCache& InjectionEngine::ensure_golden() {
  if (!golden_) {
    golden_ = std::make_shared<const GoldenCache>(compute_golden());
  }
  return *golden_;
}

void InjectionEngine::set_golden_cache_enabled(bool enabled) {
  options_.golden_cache = enabled;
  if (!enabled) golden_.reset();
}

void InjectionEngine::warm_golden_cache() {
  if (options_.golden_cache) ensure_golden();
}

GoldenVerifyResult InjectionEngine::verify_golden() {
  GoldenVerifyResult out;
  if (!golden_) return out;
  // Hold a reference across the recompute: clones share the cache via
  // shared_ptr, and nothing may mutate it.
  const std::shared_ptr<const GoldenCache> cached = golden_;
  const GoldenCache fresh = compute_golden();
  runtime_.disable();

  auto mismatch = [&](const char* what) {
    out.ok = false;
    if (!out.diagnostic.empty()) out.diagnostic += ", ";
    out.diagnostic += what;
  };
  if (fresh.output_bytes != cached->output_bytes) mismatch("output bytes");
  if (fresh.return_bits != cached->return_bits) mismatch("return bits");
  if (fresh.dynamic_sites != cached->dynamic_sites) {
    mismatch("dynamic-site count");
  }
  if (fresh.golden_instructions != cached->golden_instructions) {
    mismatch("instruction count");
  }
  if (fresh.golden_detected != cached->golden_detected) {
    mismatch("detector events");
  }
  // The census is only recorded under static pruning; compare it when
  // both executions recorded one (toggling pruning between experiments
  // legitimately leaves one side without a census).
  if (options_.static_prune && !cached->site_sequence.empty() &&
      fresh.site_sequence != cached->site_sequence) {
    mismatch("dynamic-site census");
  }
  if (!out.ok) {
    out.diagnostic = strf(
        "golden self-verification mismatch on '%s' (%s): cached run no "
        "longer reproducible — suspect cache or host memory corruption",
        spec_.entry->name().c_str(), out.diagnostic.c_str());
  }
  return out;
}

void InjectionEngine::set_golden_for_test(GoldenCache cache) {
  golden_ = std::make_shared<const GoldenCache>(std::move(cache));
}

void InjectionEngine::set_static_prune(bool enabled) {
  if (enabled == options_.static_prune) return;
  options_.static_prune = enabled;
  // A cache computed without the census cannot serve the pruned path;
  // drop it so the next experiment recomputes with census recording on.
  if (enabled && golden_ && golden_->site_sequence.empty()) golden_.reset();
}

void InjectionEngine::run_faulty(ExperimentResult& result,
                                 const GoldenCache& golden) {
  interp::ExecLimits faulty_limits;
  faulty_limits.max_instructions =
      faulty_instruction_budget(golden.golden_instructions);
  RunOutput faulty = execute(faulty_limits);

  runtime_.disable();
  result.injection = runtime_.record();
  result.detected = detection_log_.any();
  result.faulty_instructions = faulty.exec.stats.total_instructions;

  const bool differs = faulty.output_bytes != golden.output_bytes ||
                       faulty.return_bits != golden.return_bits;
  result.outcome = classify_outcome(!faulty.exec.ok(), differs);
  if (!faulty.exec.ok()) result.trap = faulty.exec.trap.kind;
}

ExperimentResult InjectionEngine::run_experiment(Rng& rng) {
  ExperimentResult result;

  // --- golden observables: output + dynamic-site census ------------------
  // The golden run consumes no randomness (the RNG is first touched below,
  // after the census), so reusing a memoized golden leaves the experiment's
  // random stream — and therefore every injection — bit-identical to the
  // uncached path.
  GoldenCache fresh;
  const GoldenCache* golden;
  if (options_.golden_cache) {
    golden = &ensure_golden();
  } else {
    fresh = compute_golden();
    golden = &fresh;
  }
  result.dynamic_sites = golden->dynamic_sites;
  result.golden_instructions = golden->golden_instructions;

  if (result.dynamic_sites == 0) {
    // No dynamic site of this category: nothing to inject. Counted as
    // Benign (output is unchanged by construction).
    runtime_.disable();
    result.outcome = Outcome::Benign;
    return result;
  }

  // --- faulty run: inject exactly one bit flip ---------------------------
  const std::uint64_t target = rng.next_below(result.dynamic_sites);
  Rng bit_rng = rng.split();

  if (options_.static_prune &&
      golden->site_sequence.size() == golden->dynamic_sites) {
    // Draw the bit here with the first value of the split stream — exactly
    // the draw the armed runtime would make at the fired site — then hand
    // the pair to the pruned dispatch. The (site, bit) sequence is
    // bit-identical to the unpruned path.
    const std::uint32_t site = golden->site_sequence[target];
    const unsigned elem_bits =
        runtime_.sites()[site].element_type.element_bits();
    const auto bit = static_cast<unsigned>(bit_rng.next_below(elem_bits));
    return pruned_dispatch(*golden, target, bit);
  }

  runtime_.arm(target, bit_rng);
  run_faulty(result, *golden);
  return result;
}

ExperimentResult InjectionEngine::run_experiment_exact(
    std::uint64_t target_index, unsigned bit) {
  ExperimentResult result;
  const GoldenCache& golden = ensure_golden();
  result.dynamic_sites = golden.dynamic_sites;
  result.golden_instructions = golden.golden_instructions;
  runtime_.arm_exact(target_index, bit);
  run_faulty(result, golden);
  return result;
}

ExperimentResult InjectionEngine::run_experiment_pruned_at(
    std::uint64_t target_index, unsigned bit) {
  return pruned_dispatch(ensure_golden(), target_index, bit);
}

ExperimentResult InjectionEngine::pruned_dispatch(const GoldenCache& golden,
                                                  std::uint64_t target_index,
                                                  unsigned bit) {
  VULFI_ASSERT(golden.site_sequence.size() == golden.dynamic_sites,
               "pruned dispatch needs the golden census");

  ExperimentResult result;
  result.dynamic_sites = golden.dynamic_sites;
  result.golden_instructions = golden.golden_instructions;

  const std::uint32_t site = golden.site_sequence[target_index];
  const FaultSite& fault_site = runtime_.sites()[site];
  const SitePruneInfo& info = prune_.sites[site];

  // --- dead bit: statically adjudicated Benign ---------------------------
  // A flip at a non-demanded position cannot change stored bytes, return
  // bits, control flow, traps, or any call argument (detectors included),
  // so the faulty run is observably the golden run.
  if ((info.dead_mask >> bit) & 1) {
    result.outcome = Outcome::Benign;
    result.detected = golden.golden_detected;
    result.statically_adjudicated = true;
    // Identical control flow means identical instruction count.
    result.faulty_instructions = golden.golden_instructions;
    result.injection.fired = true;
    result.injection.site_id = site;
    result.injection.lane = fault_site.lane;
    result.injection.bit = bit;
    result.injection.dynamic_index = target_index;
    return result;
  }

  // --- live bit: remap onto the lane-symmetry class representative -------
  // The j-th dynamic occurrence of a collapsed site is outcome-equivalent
  // to the j-th occurrence of its representative (same dynamic instance,
  // lane-symmetric dataflow). Occurrence lists of unmasked same-instruction
  // lanes always align; the size check is pure defence.
  std::uint64_t exec_target = target_index;
  if (info.class_rep != site) {
    const auto& mine = golden.site_occurrences[site];
    const auto& reps = golden.site_occurrences[info.class_rep];
    if (mine.size() == reps.size()) {
      const auto it = std::lower_bound(
          mine.begin(), mine.end(), static_cast<std::uint32_t>(target_index));
      VULFI_ASSERT(it != mine.end() && *it == target_index,
                   "dynamic target missing from its site's occurrence list");
      exec_target = reps[static_cast<std::size_t>(it - mine.begin())];
      result.remapped = exec_target != target_index;
    }
  }

  // --- memoized execution ------------------------------------------------
  const std::uint64_t key = exec_target * 64 + bit;
  const auto found = memo_.find(key);
  if (found != memo_.end()) {
    ExperimentResult memoized = found->second;
    memoized.injection.site_id = site;
    memoized.injection.lane = fault_site.lane;
    memoized.injection.dynamic_index = target_index;
    memoized.remapped = result.remapped;
    memoized.memo_hit = true;
    return memoized;
  }

  runtime_.arm_exact(exec_target, bit);
  run_faulty(result, golden);
  memo_.emplace(key, result);
  // Report the logical site the experiment drew, not the executed
  // representative (their before/after bits agree — the root is a splat).
  result.injection.site_id = site;
  result.injection.lane = fault_site.lane;
  result.injection.dynamic_index = target_index;
  return result;
}

}  // namespace vulfi
