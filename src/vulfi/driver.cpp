#include "vulfi/driver.hpp"

#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "vulfi/instrument.hpp"

namespace vulfi {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::Benign: return "Benign";
    case Outcome::SDC: return "SDC";
    case Outcome::Crash: return "Crash";
  }
  return "?";
}

InjectionEngine::InjectionEngine(RunSpec spec,
                                 analysis::FaultSiteCategory category,
                                 EngineOptions options)
    : spec_(std::move(spec)),
      options_(options),
      scratch_(spec_.arena),
      interp_(scratch_, env_, interp::ExecLimits{},
              options.predecode ? interp::ExecMode::PreDecoded
                                : interp::ExecMode::Reference) {
  VULFI_ASSERT(spec_.module != nullptr && spec_.entry != nullptr,
               "engine needs a module and an entry function");
  // Snapshot the spec before instrumenting so clone() can rebuild an
  // identical engine from scratch.
  pristine_ = clone_spec(spec_);
  Instrumentor instrumentor(options_.address_rule);
  runtime_.set_sites(instrumentor.run(*spec_.entry));
  runtime_.select_category(category);
  runtime_.set_mask_aware(options_.mask_aware);
  runtime_.attach(env_);
  ir::verify_or_die(*spec_.module);
}

void InjectionEngine::setup_runtime(const RuntimeSetup& setup) {
  setup(env_, detection_log_);
  setups_.push_back(setup);
}

std::unique_ptr<InjectionEngine> InjectionEngine::clone() const {
  auto replica = std::make_unique<InjectionEngine>(
      clone_spec(pristine_), runtime_.category(), options_);
  for (const RuntimeSetup& setup : setups_) replica->setup_runtime(setup);
  // The golden observables are a pure function of (pristine spec,
  // deterministic instrumentation), so the replica's cache is identical by
  // construction — share it instead of re-running the golden pass.
  replica->golden_ = golden_;
  return replica;
}

std::uint64_t InjectionEngine::eligible_static_sites() const {
  std::uint64_t count = 0;
  for (const FaultSite& site : runtime_.sites()) {
    if (site.site_class.matches(runtime_.category())) count += 1;
  }
  return count;
}

InjectionEngine::RunOutput InjectionEngine::execute(
    interp::ExecLimits limits) {
  // Every execution starts from the pristine arena; resetting the scratch
  // arena in place avoids reallocating megabytes per run.
  scratch_.reset_from(spec_.arena);
  detection_log_.reset();
  interp_.set_limits(limits);
  RunOutput out;
  out.exec = interp_.run(*spec_.entry, spec_.args);
  for (const std::string& region_name : spec_.output_regions) {
    const auto& region = scratch_.region(region_name);
    if (spec_.f32_compare_decimals < 0) {
      const auto bytes = scratch_.region_bytes(region);
      out.output_bytes.insert(out.output_bytes.end(), bytes.begin(),
                              bytes.end());
      continue;
    }
    // Printed-output comparison: render each float the way the original
    // program would print it; the comparison then matches diffing stdout.
    const auto values =
        scratch_.read_array<float>(region.base, region.bytes / sizeof(float));
    for (float value : values) {
      const std::string text =
          strf("%.*f\n", spec_.f32_compare_decimals, value);
      out.output_bytes.insert(out.output_bytes.end(), text.begin(),
                              text.end());
    }
  }
  if (!spec_.entry->return_type().is_void()) {
    for (unsigned lane = 0; lane < out.exec.return_value.lanes(); ++lane) {
      out.return_bits.push_back(out.exec.return_value.raw[lane]);
    }
  }
  return out;
}

interp::ExecResult InjectionEngine::run_clean() {
  runtime_.disable();
  return execute(interp::ExecLimits{}).exec;
}

GoldenCache InjectionEngine::compute_golden() {
  runtime_.begin_count();
  RunOutput golden = execute(interp::ExecLimits{});
  VULFI_ASSERT(golden.exec.ok(),
               "golden (fault-free) execution trapped — kernel bug");
  GoldenCache cache;
  cache.output_bytes = std::move(golden.output_bytes);
  cache.return_bits = std::move(golden.return_bits);
  cache.dynamic_sites = runtime_.dynamic_count();
  cache.golden_instructions = golden.exec.stats.total_instructions;
  return cache;
}

const GoldenCache& InjectionEngine::ensure_golden() {
  if (!golden_) {
    golden_ = std::make_shared<const GoldenCache>(compute_golden());
  }
  return *golden_;
}

void InjectionEngine::set_golden_cache_enabled(bool enabled) {
  options_.golden_cache = enabled;
  if (!enabled) golden_.reset();
}

void InjectionEngine::warm_golden_cache() {
  if (options_.golden_cache) ensure_golden();
}

ExperimentResult InjectionEngine::run_experiment(Rng& rng) {
  ExperimentResult result;

  // --- golden observables: output + dynamic-site census ------------------
  // The golden run consumes no randomness (the RNG is first touched below,
  // after the census), so reusing a memoized golden leaves the experiment's
  // random stream — and therefore every injection — bit-identical to the
  // uncached path.
  GoldenCache fresh;
  const GoldenCache* golden;
  if (options_.golden_cache) {
    golden = &ensure_golden();
  } else {
    fresh = compute_golden();
    golden = &fresh;
  }
  result.dynamic_sites = golden->dynamic_sites;
  result.golden_instructions = golden->golden_instructions;

  if (result.dynamic_sites == 0) {
    // No dynamic site of this category: nothing to inject. Counted as
    // Benign (output is unchanged by construction).
    runtime_.disable();
    result.outcome = Outcome::Benign;
    return result;
  }

  // --- faulty run: inject exactly one bit flip ---------------------------
  const std::uint64_t target = rng.next_below(result.dynamic_sites);
  runtime_.arm(target, rng.split());

  interp::ExecLimits faulty_limits;
  faulty_limits.max_instructions =
      faulty_instruction_budget(golden->golden_instructions);
  RunOutput faulty = execute(faulty_limits);

  runtime_.disable();
  result.injection = runtime_.record();
  result.detected = detection_log_.any();
  result.faulty_instructions = faulty.exec.stats.total_instructions;

  if (!faulty.exec.ok()) {
    result.outcome = Outcome::Crash;
    result.trap = faulty.exec.trap.kind;
    return result;
  }
  const bool differs = faulty.output_bytes != golden->output_bytes ||
                       faulty.return_bits != golden->return_bits;
  result.outcome = differs ? Outcome::SDC : Outcome::Benign;
  return result;
}

}  // namespace vulfi
