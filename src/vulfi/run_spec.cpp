#include "vulfi/run_spec.hpp"

#include "ir/cloner.hpp"
#include "support/error.hpp"

namespace vulfi {

RunSpec clone_spec(const RunSpec& spec) {
  VULFI_ASSERT(spec.module != nullptr && spec.entry != nullptr,
               "clone_spec: spec needs a module and an entry function");
  RunSpec out;
  ir::CloneMap map;
  out.module = ir::clone_module(*spec.module, &map);
  auto entry = map.functions.find(spec.entry);
  VULFI_ASSERT(entry != map.functions.end(),
               "clone_spec: entry function not part of the module");
  out.entry = entry->second;
  out.arena = spec.arena;
  out.args = spec.args;
  out.output_regions = spec.output_regions;
  out.f32_compare_decimals = spec.f32_compare_decimals;
  return out;
}

}  // namespace vulfi
