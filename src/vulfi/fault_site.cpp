#include "vulfi/fault_site.hpp"

#include "analysis/slicing.hpp"

namespace vulfi {

SiteTarget site_target_of(ir::Instruction& inst) {
  SiteTarget target;
  switch (inst.opcode()) {
    case ir::Opcode::Store:
      target.value = inst.operand(0);
      target.store_operand = true;
      target.store_operand_index = 0;
      return target;
    case ir::Opcode::Call: {
      const ir::IntrinsicInfo& info = inst.callee()->intrinsic_info();
      if (info.id == ir::IntrinsicId::MaskStore) {
        target.value = inst.operand(static_cast<unsigned>(info.data_operand));
        target.mask = inst.operand(static_cast<unsigned>(info.mask_operand));
        target.store_operand = true;
        target.store_operand_index = static_cast<unsigned>(info.data_operand);
        return target;
      }
      target.value = &inst;
      if (info.id == ir::IntrinsicId::MaskLoad) {
        target.mask = inst.operand(static_cast<unsigned>(info.mask_operand));
      }
      return target;
    }
    default:
      target.value = &inst;
      return target;
  }
}

std::vector<FaultSite> enumerate_fault_sites(const ir::Function& fn,
                                             analysis::AddressRule rule,
                                             analysis::AnalysisManager& am) {
  std::vector<FaultSite> sites;
  const analysis::SliceResult& slices = am.get<analysis::SliceAnalysis>(fn);
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      if (!analysis::is_fault_site_instruction(*inst)) continue;
      // site_target_of only reads; the const_cast never leads to mutation
      // on this path.
      const SiteTarget target =
          site_target_of(const_cast<ir::Instruction&>(*inst));
      // A store-operand fault corrupts one def-use edge (the data slot of
      // the store); an Lvalue fault corrupts the value itself, hence every
      // use.
      const analysis::SiteClass cls =
          target.store_operand
              ? slices.classify_edge(inst.get(), target.store_operand_index,
                                     rule)
              : slices.classify(target.value, rule);
      const ir::Type type = target.value->type();
      for (unsigned lane = 0; lane < type.lanes(); ++lane) {
        FaultSite site;
        site.id = static_cast<unsigned>(sites.size());
        site.inst = inst.get();
        site.lane = lane;
        site.element_type = type.element();
        site.site_class = cls;
        site.masked = target.mask != nullptr;
        site.store_operand = target.store_operand;
        site.vector_instruction = inst->is_vector_instruction();
        sites.push_back(site);
      }
    }
  }
  return sites;
}

std::vector<FaultSite> enumerate_fault_sites(const ir::Function& fn,
                                             analysis::AddressRule rule) {
  analysis::AnalysisManager am;
  return enumerate_fault_sites(fn, rule, am);
}

}  // namespace vulfi
