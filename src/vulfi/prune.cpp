#include "vulfi/prune.hpp"

#include <unordered_set>

#include "analysis/known_bits.hpp"
#include "analysis/slicing.hpp"
#include "ir/intrinsics.hpp"

namespace vulfi {

namespace {

/// Opcodes through which a single-lane corruption provably stays in its
/// lane: elementwise compute, lane-parallel selects/phis and casts. Lane
/// shufflers, memory, address, control, and mask consumers are excluded.
bool elementwise_allowed(const ir::Instruction& inst) {
  switch (inst.opcode()) {
    case ir::Opcode::Add: case ir::Opcode::Sub: case ir::Opcode::Mul:
    case ir::Opcode::SDiv: case ir::Opcode::UDiv: case ir::Opcode::SRem:
    case ir::Opcode::URem: case ir::Opcode::Shl: case ir::Opcode::LShr:
    case ir::Opcode::AShr: case ir::Opcode::And: case ir::Opcode::Or:
    case ir::Opcode::Xor: case ir::Opcode::FAdd: case ir::Opcode::FSub:
    case ir::Opcode::FMul: case ir::Opcode::FDiv: case ir::Opcode::FRem:
    case ir::Opcode::FNeg: case ir::Opcode::ICmp: case ir::Opcode::FCmp:
    case ir::Opcode::Trunc: case ir::Opcode::ZExt: case ir::Opcode::SExt:
    case ir::Opcode::FPTrunc: case ir::Opcode::FPExt:
    case ir::Opcode::FPToSI: case ir::Opcode::FPToUI:
    case ir::Opcode::SIToFP: case ir::Opcode::UIToFP:
    case ir::Opcode::Select: case ir::Opcode::Phi:
      return true;
    case ir::Opcode::Bitcast:
      // Lane-preserving bitcasts only.
      return inst.num_operands() == 1 &&
             inst.operand(0)->type().lanes() == inst.type().lanes();
    case ir::Opcode::Call: {
      const ir::Function* callee = inst.callee();
      // Elementwise math intrinsics keep lanes independent; everything
      // else (masked memory ops, movmsk, detectors, user calls) does not.
      return callee != nullptr &&
             ir::is_math_intrinsic(callee->intrinsic_info().id);
    }
    case ir::Opcode::Ret:
      // Return bits are compared lane for lane against the golden run.
      return true;
    case ir::Opcode::Store:
      // Allowed when reached through the data operand; the pointer-operand
      // case is rejected by the operand checks in lane_symmetric below.
      return true;
    default:
      return false;
  }
}

/// Checks the lane-symmetry conditions for a vector site whose corrupted
/// register is `root` and whose affected instruction set is `affected`.
bool lane_symmetric(const ir::Value& root,
                    const std::unordered_set<const ir::Instruction*>& affected,
                    const analysis::KnownBitsResult& kb) {
  const unsigned lanes = root.type().lanes();
  if (!kb.lane_uniform(&root)) return false;
  for (const ir::Instruction* m : affected) {
    if (!elementwise_allowed(*m)) return false;
    if (!m->type().is_void() && m->type().lanes() != lanes) return false;
    const bool corrupted_like_store = m->opcode() == ir::Opcode::Store;
    for (unsigned i = 0; i < m->num_operands(); ++i) {
      const ir::Value* operand = m->operand(i);
      const bool corrupted =
          operand == &root ||
          affected.count(dynamic_cast<const ir::Instruction*>(operand)) > 0;
      if (corrupted) {
        // Corrupted data must never reach a pointer operand (the store's
        // address would no longer be lane-independent).
        if (corrupted_like_store && i == 1) return false;
        continue;
      }
      if (!kb.lane_uniform(operand)) return false;
    }
  }
  return true;
}

}  // namespace

PrunePlan build_prune_plan(const ir::Function& fn,
                           const std::vector<FaultSite>& sites,
                           analysis::AnalysisManager& am) {
  PrunePlan plan;
  plan.sites.resize(sites.size());
  if (!fn.is_definition() || fn.num_blocks() == 0) {
    for (std::size_t id = 0; id < sites.size(); ++id) {
      plan.sites[id].class_rep = static_cast<unsigned>(id);
      plan.total_bit_count += sites[id].element_type.element_bits();
    }
    return plan;
  }

  const analysis::KnownBitsResult& kb = am.get<analysis::KnownBitsAnalysis>(fn);
  const analysis::SliceResult& slices = am.get<analysis::SliceAnalysis>(fn);

  // The pristine enumeration walks the same instructions in the same
  // order; reconstruct each site's target from its instruction.
  for (std::size_t id = 0; id < sites.size(); ++id) {
    const FaultSite& site = sites[id];
    SitePruneInfo& info = plan.sites[id];
    info.class_rep = static_cast<unsigned>(id);
    const unsigned elem_bits = site.element_type.element_bits();
    plan.total_bit_count += elem_bits;

    auto& inst = const_cast<ir::Instruction&>(*site.inst);
    const SiteTarget target = site_target_of(inst);

    // --- dead bits -----------------------------------------------------
    // Demanded bits union over every use of the register; for store sites
    // the store demands the full stored value, so dead_mask collapses to 0
    // there automatically.
    info.dead_mask = kb.dead_bits(target.value, site.lane);
    std::uint64_t dead = info.dead_mask;
    while (dead) {
      plan.dead_bit_count += dead & 1;
      dead >>= 1;
    }

    // --- lane-symmetry class -------------------------------------------
    const unsigned lanes = target.value->type().lanes();
    if (lanes < 2 || site.masked) continue;
    if (site.lane == 0) continue;  // lane 0 is its own representative
    // All lanes of one instruction occupy consecutive ids; the lane-0 site
    // is this site's candidate representative.
    const auto rep_id = static_cast<unsigned>(id - site.lane);
    if (rep_id >= sites.size() || sites[rep_id].inst != site.inst) continue;

    std::unordered_set<const ir::Instruction*> affected;
    if (target.store_operand) {
      affected.insert(site.inst);  // the corrupted edge ends at the store
    } else {
      affected = slices.slice(target.value);
    }
    if (!lane_symmetric(*target.value, affected, kb)) continue;

    info.class_rep = rep_id;
    plan.sites[rep_id].class_size += 1;
    plan.collapsed_sites += 1;
  }
  return plan;
}

}  // namespace vulfi
