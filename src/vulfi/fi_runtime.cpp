#include "vulfi/fi_runtime.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi {

namespace {

const char* element_suffix(ir::Type element) {
  switch (element.kind()) {
    case ir::TypeKind::I1: return "i1";
    case ir::TypeKind::I8: return "i8";
    case ir::TypeKind::I16: return "i16";
    case ir::TypeKind::I32: return "i32";
    case ir::TypeKind::I64: return "i64";
    case ir::TypeKind::F32: return "f32";
    case ir::TypeKind::F64: return "f64";
    default:
      VULFI_UNREACHABLE("no injection runtime for this element type");
  }
}

constexpr ir::TypeKind kInjectableKinds[] = {
    ir::TypeKind::I1,  ir::TypeKind::I8,  ir::TypeKind::I16,
    ir::TypeKind::I32, ir::TypeKind::I64, ir::TypeKind::F32,
    ir::TypeKind::F64,
};

}  // namespace

std::string inject_fn_name(ir::Type element) {
  VULFI_ASSERT(element.is_scalar(), "injection functions take scalars");
  return strf("vulfi.inject.%s", element_suffix(element));
}

ir::Function* declare_inject_fn(ir::Module& module, ir::Type element) {
  return module.declare_runtime(
      inject_fn_name(element), element,
      {element, element, ir::Type::i64(), ir::Type::i32()});
}

void FaultInjectionRuntime::attach(interp::RuntimeEnv& env) {
  for (ir::TypeKind kind : kInjectableKinds) {
    const ir::Type element = ir::Type::scalar(kind);
    env.register_handler(
        inject_fn_name(element),
        [this](const std::vector<interp::RtVal>& args) {
          return handle(args);
        });
    // Raw fast path for compiled backends: same semantics on raw lane
    // words, no RtVal marshalling. The JIT bakes self/fn into code, and
    // this runtime outlives the environment (class contract above).
    interp::RawRuntimeHandler raw;
    raw.self = this;
    raw.fn = [](void* self, std::uint64_t value, std::uint64_t mask,
                std::uint64_t site_id, std::uint64_t lane) {
      return static_cast<FaultInjectionRuntime*>(self)->handle_raw(
          value, mask, site_id, lane);
    };
    env.register_raw_handler(inject_fn_name(element), raw);
  }
}

void FaultInjectionRuntime::set_sites(std::vector<FaultSite> sites) {
  sites_ = std::move(sites);
}

void FaultInjectionRuntime::select_category(
    analysis::FaultSiteCategory category) {
  category_ = category;
}

void FaultInjectionRuntime::begin_count() {
  mode_ = Mode::Count;
  counter_ = 0;
  record_ = InjectionRecord{};
}

void FaultInjectionRuntime::arm(std::uint64_t target_index, Rng rng) {
  mode_ = Mode::Inject;
  counter_ = 0;
  target_index_ = target_index;
  exact_bit_ = false;
  rng_ = rng;
  record_ = InjectionRecord{};
}

void FaultInjectionRuntime::arm_exact(std::uint64_t target_index,
                                      unsigned bit) {
  mode_ = Mode::Inject;
  counter_ = 0;
  target_index_ = target_index;
  exact_bit_ = true;
  preset_bit_ = bit;
  record_ = InjectionRecord{};
}

void FaultInjectionRuntime::disable() {
  mode_ = Mode::Idle;
  census_ = nullptr;
}

interp::RtVal FaultInjectionRuntime::handle(
    const std::vector<interp::RtVal>& args) {
  VULFI_ASSERT(args.size() == 4, "inject call takes (value, mask, site, lane)");
  interp::RtVal value = args[0];
  if (mode_ == Mode::Idle) return value;

  const auto site_id = static_cast<std::uint64_t>(args[2].lane_int(0));
  VULFI_ASSERT(site_id < sites_.size(), "inject call with unknown site id");
  const FaultSite& site = sites_[static_cast<std::size_t>(site_id)];

  // Category filter: only sites matching the selected heuristic
  // participate in this campaign.
  if (!site.site_class.matches(category_)) return value;

  // Mask gating: a masked-off vector lane is not a live register and is
  // never targeted (paper §II: "crucial in deciding whether or not to
  // target a particular vector lane").
  const unsigned elem_bits = value.type.element_bits();
  if (mask_aware_ && site.masked &&
      !ir::mask_lane_active(args[1].raw[0], elem_bits)) {
    return value;
  }

  if (mode_ == Mode::Count) {
    if (census_ != nullptr) {
      census_->push_back(static_cast<std::uint32_t>(site_id));
    }
    counter_ += 1;
    return value;
  }

  // Inject mode.
  if (counter_ == target_index_ && !record_.fired) {
    const unsigned bit =
        exact_bit_ ? preset_bit_
                   : static_cast<unsigned>(rng_.next_below(elem_bits));
    const std::uint64_t before = value.raw[0];
    value.set_lane_raw(0, before ^ (std::uint64_t{1} << bit));
    record_.fired = true;
    record_.site_id = static_cast<unsigned>(site_id);
    record_.lane = static_cast<unsigned>(args[3].lane_int(0));
    record_.bit = bit;
    record_.dynamic_index = counter_;
    record_.bits_before = before;
    record_.bits_after = value.raw[0];
  }
  counter_ += 1;
  return value;
}

std::uint64_t FaultInjectionRuntime::handle_raw(std::uint64_t value,
                                                std::uint64_t mask,
                                                std::uint64_t site_id,
                                                std::uint64_t lane) {
  if (mode_ == Mode::Idle) return value;

  VULFI_ASSERT(site_id < sites_.size(), "inject call with unknown site id");
  const FaultSite& site = sites_[static_cast<std::size_t>(site_id)];
  if (!site.site_class.matches(category_)) return value;

  // The instrumentor emits the call with the site's element type, so the
  // table's width is the value's width (handle() reads it off args[0]).
  const unsigned elem_bits = site.element_type.element_bits();
  if (mask_aware_ && site.masked && !ir::mask_lane_active(mask, elem_bits)) {
    return value;
  }

  if (mode_ == Mode::Count) {
    if (census_ != nullptr) {
      census_->push_back(static_cast<std::uint32_t>(site_id));
    }
    counter_ += 1;
    return value;
  }

  if (counter_ == target_index_ && !record_.fired) {
    const unsigned bit =
        exact_bit_ ? preset_bit_
                   : static_cast<unsigned>(rng_.next_below(elem_bits));
    record_.fired = true;
    record_.site_id = static_cast<unsigned>(site_id);
    // The lane operand is an i32 constant; lane_int's sign extension is
    // the identity for real lane indices.
    record_.lane = static_cast<unsigned>(
        static_cast<std::int32_t>(static_cast<std::uint32_t>(lane)));
    record_.bit = bit;
    record_.dynamic_index = counter_;
    record_.bits_before = value;
    // bit < elem_bits, so the flip stays within the element width and
    // set_lane_raw's truncation would be the identity.
    value ^= std::uint64_t{1} << bit;
    record_.bits_after = value;
  }
  counter_ += 1;
  return value;
}

}  // namespace vulfi
