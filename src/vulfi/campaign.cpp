#include "vulfi/campaign.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "support/error.hpp"

namespace vulfi {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Integer outcome counters for one campaign. Addition is commutative, so
/// partials from different workers merge into the same totals regardless
/// of scheduling.
struct CampaignTotals {
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t detected_sdc = 0;
  std::uint64_t detected_total = 0;
  std::uint64_t prune_adjudicated = 0;
  std::uint64_t prune_remapped = 0;
  std::uint64_t prune_memo_hits = 0;

  void operator+=(const CampaignTotals& other) {
    benign += other.benign;
    sdc += other.sdc;
    crash += other.crash;
    detected_sdc += other.detected_sdc;
    detected_total += other.detected_total;
    prune_adjudicated += other.prune_adjudicated;
    prune_remapped += other.prune_remapped;
    prune_memo_hits += other.prune_memo_hits;
  }
};

/// Runs experiment (campaign, experiment) of the campaign plan on the
/// given engine set. The experiment's entire random stream — including
/// the input-set draw — comes from its counter-derived seed, so the
/// outcome is a pure function of (config.seed, campaign, experiment).
void run_experiment_at(const std::vector<InjectionEngine*>& engines,
                       const CampaignConfig& config, std::uint64_t campaign,
                       std::uint64_t experiment, CampaignTotals& totals) {
  Rng rng(derive_stream_seed(config.seed, campaign, experiment));
  InjectionEngine* engine = engines[rng.next_below(engines.size())];
  const ExperimentResult result = engine->run_experiment(rng);
  switch (result.outcome) {
    case Outcome::Benign: totals.benign += 1; break;
    case Outcome::SDC:
      totals.sdc += 1;
      if (result.detected) totals.detected_sdc += 1;
      break;
    case Outcome::Crash: totals.crash += 1; break;
  }
  if (result.detected) totals.detected_total += 1;
  if (result.statically_adjudicated) totals.prune_adjudicated += 1;
  if (result.remapped) totals.prune_remapped += 1;
  if (result.memo_hit) totals.prune_memo_hits += 1;
}

/// Folds one finished campaign into the running result, in campaign
/// order; the floating-point accumulation sequence is therefore identical
/// for every thread count.
void absorb_campaign(CampaignResult& result, const CampaignTotals& totals,
                     const CampaignConfig& config) {
  result.benign += totals.benign;
  result.sdc += totals.sdc;
  result.crash += totals.crash;
  result.detected_sdc += totals.detected_sdc;
  result.detected_total += totals.detected_total;
  result.prune_adjudicated += totals.prune_adjudicated;
  result.prune_remapped += totals.prune_remapped;
  result.prune_memo_hits += totals.prune_memo_hits;
  result.experiments += config.experiments_per_campaign;
  const double sample =
      static_cast<double>(totals.sdc) /
      static_cast<double>(config.experiments_per_campaign);
  result.sdc_samples.add(sample);
  result.campaign_sdc_rates.push_back(sample);
  result.campaigns += 1;
}

void refresh_stop_rule(CampaignResult& result, const CampaignConfig& config) {
  result.margin_of_error =
      margin_of_error(result.sdc_samples, config.confidence);
  result.near_normal = vulfi::near_normal(result.sdc_samples);
}

bool should_continue(const CampaignResult& result,
                     const CampaignConfig& config) {
  return (result.margin_of_error > config.target_margin ||
          !result.near_normal) &&
         result.campaigns < config.max_campaigns;
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// ---------------------------------------------------------------------------
// Work-stealing executor
// ---------------------------------------------------------------------------

/// One worker's slice of the flat experiment index space, packed as
/// (hi << 32) | lo over the half-open interval [lo, hi). The owner pops
/// from the front, thieves take from the back; both via CAS. Padded to a
/// cache line to keep CAS traffic off neighbours.
struct alignas(64) WorkRange {
  std::atomic<std::uint64_t> packed{0};

  void reset(std::uint32_t lo, std::uint32_t hi) {
    packed.store((static_cast<std::uint64_t>(hi) << 32) | lo,
                 std::memory_order_relaxed);
  }

  bool pop_front(std::uint32_t& item) {
    std::uint64_t p = packed.load(std::memory_order_relaxed);
    for (;;) {
      const auto lo = static_cast<std::uint32_t>(p);
      const auto hi = static_cast<std::uint32_t>(p >> 32);
      if (lo >= hi) return false;
      const std::uint64_t next =
          (static_cast<std::uint64_t>(hi) << 32) | (lo + 1);
      if (packed.compare_exchange_weak(p, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        item = lo;
        return true;
      }
    }
  }

  bool steal_back(std::uint32_t& item) {
    std::uint64_t p = packed.load(std::memory_order_relaxed);
    for (;;) {
      const auto lo = static_cast<std::uint32_t>(p);
      const auto hi = static_cast<std::uint32_t>(p >> 32);
      if (lo >= hi) return false;
      const std::uint64_t next =
          (static_cast<std::uint64_t>(hi - 1) << 32) | lo;
      if (packed.compare_exchange_weak(p, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        item = hi - 1;
        return true;
      }
    }
  }
};

/// Executes blocks of whole campaigns across `threads` workers. Worker 0
/// runs on the caller's engines; every other worker owns a cloned engine
/// set, so no mutable interpreter or fi_runtime state is ever shared.
class ParallelCampaignExecutor {
 public:
  ParallelCampaignExecutor(const std::vector<InjectionEngine*>& engines,
                           unsigned threads)
      : threads_(threads), busy_seconds_(threads, 0.0) {
    worker_engines_.push_back(engines);
    clones_.resize(threads_);
    for (unsigned w = 1; w < threads_; ++w) {
      std::vector<InjectionEngine*> set;
      for (InjectionEngine* engine : engines) {
        clones_[w].push_back(engine->clone());
        set.push_back(clones_[w].back().get());
      }
      worker_engines_.push_back(std::move(set));
    }
  }

  /// Runs campaigns [first, first + count), all experiments flattened
  /// into one stealable index space; returns per-campaign totals in
  /// campaign order.
  std::vector<CampaignTotals> run_block(std::uint64_t first, unsigned count,
                                        const CampaignConfig& config) {
    const unsigned epc = config.experiments_per_campaign;
    const std::uint64_t total =
        static_cast<std::uint64_t>(count) * epc;
    VULFI_ASSERT(total <= 0xffffffffULL,
                 "campaign block too large for 32-bit work indices");

    std::vector<WorkRange> ranges(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
      ranges[w].reset(static_cast<std::uint32_t>(w * total / threads_),
                      static_cast<std::uint32_t>((w + 1) * total / threads_));
    }

    std::vector<CampaignTotals> block(count);
    std::mutex merge_mutex;

    auto worker = [&](unsigned w) {
      const auto start = Clock::now();
      std::vector<CampaignTotals> partials(count);
      std::uint32_t item = 0;
      for (;;) {
        bool have_work = ranges[w].pop_front(item);
        for (unsigned i = 1; !have_work && i < threads_; ++i) {
          have_work = ranges[(w + i) % threads_].steal_back(item);
        }
        if (!have_work) break;
        run_experiment_at(worker_engines_[w], config, first + item / epc,
                          item % epc, partials[item / epc]);
      }
      const double busy = seconds_since(start);
      const std::lock_guard<std::mutex> lock(merge_mutex);
      for (unsigned c = 0; c < count; ++c) block[c] += partials[c];
      busy_seconds_[w] += busy;
    };

    std::vector<std::thread> pool;
    pool.reserve(threads_ - 1);
    for (unsigned w = 1; w < threads_; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : pool) t.join();
    return block;
  }

  const std::vector<double>& busy_seconds() const { return busy_seconds_; }

 private:
  unsigned threads_;
  std::vector<std::vector<InjectionEngine*>> worker_engines_;
  std::vector<std::vector<std::unique_ptr<InjectionEngine>>> clones_;
  std::vector<double> busy_seconds_;
};

CampaignResult run_campaigns_serial(
    const std::vector<InjectionEngine*>& engines,
    const CampaignConfig& config) {
  CampaignResult result;
  const auto start = Clock::now();

  auto run_one_campaign = [&]() {
    CampaignTotals totals;
    for (unsigned e = 0; e < config.experiments_per_campaign; ++e) {
      run_experiment_at(engines, config, result.campaigns, e, totals);
    }
    absorb_campaign(result, totals, config);
  };

  while (result.campaigns < config.min_campaigns) run_one_campaign();
  refresh_stop_rule(result, config);
  while (should_continue(result, config)) {
    run_one_campaign();
    refresh_stop_rule(result, config);
  }

  result.throughput.wall_seconds = seconds_since(start);
  result.throughput.threads = 1;
  result.throughput.thread_busy_seconds = {result.throughput.wall_seconds};
  result.throughput.experiments = result.experiments;
  return result;
}

CampaignResult run_campaigns_parallel(
    const std::vector<InjectionEngine*>& engines,
    const CampaignConfig& config, unsigned threads) {
  CampaignResult result;
  const auto start = Clock::now();
  ParallelCampaignExecutor executor(engines, threads);

  auto run_block = [&](unsigned count) {
    const std::vector<CampaignTotals> block =
        executor.run_block(result.campaigns, count, config);
    // Campaign boundary: merged partials fold into the result in
    // campaign order, under no lock — the workers have all joined.
    for (const CampaignTotals& totals : block) {
      absorb_campaign(result, totals, config);
    }
  };

  // The first min_campaigns are unconditional, so they parallelize as one
  // block; afterwards the sequential-sampling stop rule must see every
  // campaign, so blocks shrink to one campaign each (its experiments
  // still fan out across all workers).
  if (config.min_campaigns > 0) run_block(config.min_campaigns);
  refresh_stop_rule(result, config);
  while (should_continue(result, config)) {
    run_block(1);
    refresh_stop_rule(result, config);
  }

  result.throughput.wall_seconds = seconds_since(start);
  result.throughput.threads = threads;
  result.throughput.thread_busy_seconds = executor.busy_seconds();
  result.throughput.experiments = result.experiments;
  return result;
}

}  // namespace

CampaignResult run_campaigns(std::vector<InjectionEngine*> engines,
                             const CampaignConfig& config) {
  VULFI_ASSERT(!engines.empty(), "campaign needs at least one engine");
  VULFI_ASSERT(config.experiments_per_campaign > 0,
               "campaign needs experiments");
  // Warm every engine's golden cache on this thread before any cloning:
  // ParallelCampaignExecutor clones engines in its constructor, so a warm
  // cache here is inherited by every worker — each engine's golden pass
  // (and any detector events it raises) happens exactly once per campaign
  // run, not once per worker.
  for (InjectionEngine* engine : engines) {
    engine->set_golden_cache_enabled(config.use_golden_cache);
    engine->set_static_prune(config.use_static_prune);
    engine->warm_golden_cache();
  }
  const unsigned threads = resolve_threads(config.num_threads);
  if (threads <= 1) return run_campaigns_serial(engines, config);
  return run_campaigns_parallel(engines, config, threads);
}

}  // namespace vulfi
