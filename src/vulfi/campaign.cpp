#include "vulfi/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "support/error.hpp"
#include "support/journal.hpp"
#include "support/str.hpp"
#include "support/version.hpp"

namespace vulfi {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

bool cancel_requested(const CampaignConfig& config) {
  return config.cancel != nullptr && config.cancel->cancelled();
}

/// Integer outcome counters for one campaign. Addition is commutative, so
/// partials from different workers merge into the same totals regardless
/// of scheduling.
struct CampaignTotals {
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t detected_sdc = 0;
  std::uint64_t detected_total = 0;
  std::uint64_t prune_adjudicated = 0;
  std::uint64_t prune_remapped = 0;
  std::uint64_t prune_memo_hits = 0;

  void operator+=(const CampaignTotals& other) {
    benign += other.benign;
    sdc += other.sdc;
    crash += other.crash;
    detected_sdc += other.detected_sdc;
    detected_total += other.detected_total;
    prune_adjudicated += other.prune_adjudicated;
    prune_remapped += other.prune_remapped;
    prune_memo_hits += other.prune_memo_hits;
  }
};

// ---------------------------------------------------------------------------
// Checkpoint journal records
// ---------------------------------------------------------------------------
// The checkpoint is an append-only checksummed JSONL journal
// (support/journal.hpp): one header record describing everything the
// statistics depend on, then one record per completed campaign holding its
// integer outcome counters, interleaved with self-verification audit
// records. The per-campaign SDC sample is NOT stored: it is recomputed on
// replay as sdc / experiments_per_campaign — exactly the division
// absorb_campaign performs — so restored statistics are bit-identical to
// an uninterrupted run by construction. The payload builders are exported
// (campaign.hpp) because the campaign service streams the same records as
// its wire-protocol progress messages.

CampaignRecord to_record(std::uint64_t campaign,
                         const CampaignTotals& totals) {
  CampaignRecord record;
  record.campaign = campaign;
  record.benign = totals.benign;
  record.sdc = totals.sdc;
  record.crash = totals.crash;
  record.detected_sdc = totals.detected_sdc;
  record.detected_total = totals.detected_total;
  record.prune_adjudicated = totals.prune_adjudicated;
  record.prune_remapped = totals.prune_remapped;
  record.prune_memo_hits = totals.prune_memo_hits;
  return record;
}

/// The header with its "build" field removed — for telling "same
/// configuration, different binary" apart from a genuine config mismatch.
std::string strip_build_field(const std::string& header) {
  const std::size_t at = header.find(",\"build\":\"");
  if (at == std::string::npos) return header;
  const std::size_t end = header.find('"', at + 10);
  if (end == std::string::npos) return header;
  std::string stripped = header;
  stripped.erase(at, end + 1 - at);
  return stripped;
}

std::string verify_payload(std::uint64_t campaign, std::size_t engine,
                           bool ok) {
  return strf("{\"t\":\"verify\",\"c\":%llu,\"engine\":%llu,\"ok\":%u}",
              static_cast<unsigned long long>(campaign),
              static_cast<unsigned long long>(engine), ok ? 1u : 0u);
}

// ---------------------------------------------------------------------------
// Progress monitoring (stall watchdog)
// ---------------------------------------------------------------------------

/// Lock-free progress ledger shared between the workers (writers, relaxed
/// stores on the hot path) and the watchdog thread (reader). All values
/// are advisory diagnostics — no worker ever blocks on the monitor.
struct StallMonitor {
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  explicit StallMonitor(unsigned threads)
      : coords(threads), executed(threads), active_since_ns(threads) {
    for (auto& coord : coords) coord.store(kIdle, std::memory_order_relaxed);
    last_progress_ns.store(now_ns(), std::memory_order_relaxed);
  }

  void note_experiment(unsigned worker, std::uint64_t campaign,
                       std::uint64_t experiment) {
    coords[worker].store((campaign << 32) | experiment,
                         std::memory_order_relaxed);
    executed[worker].fetch_add(1, std::memory_order_relaxed);
  }

  void note_worker_active(unsigned worker) {
    active_since_ns[worker].store(now_ns(), std::memory_order_relaxed);
  }

  void note_campaign(std::uint64_t done) {
    campaigns_done.store(done, std::memory_order_relaxed);
    last_progress_ns.store(now_ns(), std::memory_order_relaxed);
  }

  /// Last experiment coordinates per worker, packed (campaign << 32) |
  /// experiment; kIdle before the worker ran anything.
  std::vector<std::atomic<std::uint64_t>> coords;
  /// Experiments executed per worker this run.
  std::vector<std::atomic<std::uint64_t>> executed;
  /// When each worker started its current work block (steady ns).
  std::vector<std::atomic<std::int64_t>> active_since_ns;
  std::atomic<std::uint64_t> campaigns_done{0};
  std::atomic<std::int64_t> last_progress_ns{0};
};

/// Background thread that logs a diagnostic when no campaign completes
/// within the configured wall-clock window: which experiment each worker
/// last touched and how long it has been busy — enough to tell a wedged
/// worker from a legitimately long campaign.
class StallWatchdog {
 public:
  StallWatchdog(const CampaignConfig& config, const StallMonitor& monitor)
      : timeout_(config.stall_timeout_seconds),
        log_(config.stall_log),
        monitor_(monitor) {
    if (timeout_ <= 0.0) return;
    thread_ = std::thread([this] { loop(); });
  }

  ~StallWatchdog() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    const auto poll = std::chrono::duration<double>(
        std::clamp(timeout_ / 4.0, 0.001, 1.0));
    std::unique_lock<std::mutex> lock(mutex_);
    std::int64_t reported_at = 0;
    for (;;) {
      if (cv_.wait_for(lock, poll, [this] { return stop_; })) return;
      const std::int64_t last =
          monitor_.last_progress_ns.load(std::memory_order_relaxed);
      const std::int64_t now = now_ns();
      // Log at most once per stall window, re-arming on progress.
      if ((now - std::max(last, reported_at)) * 1e-9 < timeout_) continue;
      reported_at = now;
      emit((now - last) * 1e-9);
    }
  }

  void emit(double stalled_seconds) const {
    std::string msg = strf(
        "vulfi watchdog: no campaign completed in %.1fs (stall window "
        "%.1fs, %llu campaigns done)",
        stalled_seconds, timeout_,
        static_cast<unsigned long long>(
            monitor_.campaigns_done.load(std::memory_order_relaxed)));
    const std::int64_t now = now_ns();
    for (std::size_t w = 0; w < monitor_.coords.size(); ++w) {
      const std::uint64_t coord =
          monitor_.coords[w].load(std::memory_order_relaxed);
      const std::uint64_t done =
          monitor_.executed[w].load(std::memory_order_relaxed);
      const std::int64_t since =
          monitor_.active_since_ns[w].load(std::memory_order_relaxed);
      msg += strf("; worker %llu: ", static_cast<unsigned long long>(w));
      if (coord == StallMonitor::kIdle) {
        msg += "idle";
      } else {
        msg += strf("campaign %llu experiment %llu",
                    static_cast<unsigned long long>(coord >> 32),
                    static_cast<unsigned long long>(
                        coord & 0xffffffffULL));
      }
      msg += strf(", %llu experiments, busy %.1fs",
                  static_cast<unsigned long long>(done),
                  since > 0 ? (now - since) * 1e-9 : 0.0);
    }
    if (log_) {
      log_(msg);
    } else {
      std::fprintf(stderr, "%s\n", msg.c_str());
    }
  }

  double timeout_ = 0.0;
  std::function<void(const std::string&)> log_;
  const StallMonitor& monitor_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs experiment (campaign, experiment) of the campaign plan on the
/// given engine set. The experiment's entire random stream — including
/// the input-set draw — comes from its counter-derived seed, so the
/// outcome is a pure function of (config.seed, campaign, experiment).
void run_experiment_at(const std::vector<InjectionEngine*>& engines,
                       const CampaignConfig& config, std::uint64_t campaign,
                       std::uint64_t experiment, CampaignTotals& totals) {
  Rng rng(derive_stream_seed(config.seed, campaign, experiment));
  InjectionEngine* engine = engines[rng.next_below(engines.size())];
  const ExperimentResult result = engine->run_experiment(rng);
  switch (result.outcome) {
    case Outcome::Benign: totals.benign += 1; break;
    case Outcome::SDC:
      totals.sdc += 1;
      if (result.detected) totals.detected_sdc += 1;
      break;
    case Outcome::Crash: totals.crash += 1; break;
  }
  if (result.detected) totals.detected_total += 1;
  if (result.statically_adjudicated) totals.prune_adjudicated += 1;
  if (result.remapped) totals.prune_remapped += 1;
  if (result.memo_hit) totals.prune_memo_hits += 1;

  if (config.progress != nullptr) {
    const std::uint64_t done =
        config.progress->fetch_add(1, std::memory_order_relaxed) + 1;
    (void)done;
#ifdef VULFI_ENABLE_CRASH_HOOK
    // Harness fault injection (test builds only): die like a SIGKILLed
    // worker, or wedge without crashing — the two failure modes the
    // shard supervisor must recover from.
    if (config.crash_after_experiments != 0 &&
        done >= config.crash_after_experiments) {
      std::raise(SIGKILL);
    }
    if (config.hang_after_experiments != 0 &&
        done >= config.hang_after_experiments) {
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
#endif
  }
}

/// Folds one finished campaign into the running result, in campaign
/// order; the floating-point accumulation sequence is therefore identical
/// for every thread count — and for a checkpoint replay, which feeds the
/// same totals through this same function.
void absorb_campaign(CampaignResult& result, const CampaignTotals& totals,
                     const CampaignConfig& config) {
  result.benign += totals.benign;
  result.sdc += totals.sdc;
  result.crash += totals.crash;
  result.detected_sdc += totals.detected_sdc;
  result.detected_total += totals.detected_total;
  result.prune_adjudicated += totals.prune_adjudicated;
  result.prune_remapped += totals.prune_remapped;
  result.prune_memo_hits += totals.prune_memo_hits;
  result.experiments += config.experiments_per_campaign;
  const double sample =
      static_cast<double>(totals.sdc) /
      static_cast<double>(config.experiments_per_campaign);
  result.sdc_samples.add(sample);
  result.campaign_sdc_rates.push_back(sample);
  result.campaigns += 1;
}

void refresh_stop_rule(CampaignResult& result, const CampaignConfig& config) {
  result.margin_of_error =
      margin_of_error(result.sdc_samples, config.confidence);
  result.near_normal = vulfi::near_normal(result.sdc_samples);
}

bool should_continue(const CampaignResult& result,
                     const CampaignConfig& config) {
  return (result.margin_of_error > config.target_margin ||
          !result.near_normal) &&
         result.campaigns < config.max_campaigns;
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// ---------------------------------------------------------------------------
// Campaign coordinator: checkpoint restore/append + self-verification
// ---------------------------------------------------------------------------

/// Owns the durable side of a campaign run. All methods execute on the
/// coordinating thread between campaign boundaries — never concurrently
/// with workers.
class CampaignCoordinator {
 public:
  CampaignCoordinator(const std::vector<InjectionEngine*>& engines,
                      const CampaignConfig& config, CampaignResult& result,
                      StallMonitor& monitor)
      : engines_(engines),
        config_(config),
        result_(result),
        monitor_(monitor) {}

  /// Recovers the checkpoint (if configured): validates the header,
  /// replays completed campaigns into the result, rolls back any corrupt
  /// tail, and opens the journal for appending. Returns false with
  /// result_.error set when the run must not proceed.
  bool init_checkpoint() {
    if (config_.checkpoint_path.empty()) return true;
    result_.checkpoint_path = config_.checkpoint_path;

    const JournalRecovery recovered =
        recover_journal(config_.checkpoint_path);
    const std::string expected_header =
        campaign_header_payload(config_, engines_.size());
    bool need_header = true;

    if (!recovered.records.empty()) {
      if (recovered.records.front() != expected_header) {
        // Same configuration but a different binary is the one mismatch
        // with its own diagnostic: the statistics would be bit-identical
        // only if both builds compute identically, which sanitizers and
        // compiler changes do not guarantee — refuse, naming both builds.
        const std::string& stored = recovered.records.front();
        if (strip_build_field(stored) == strip_build_field(expected_header)) {
          result_.error = strf(
              "checkpoint '%s' was written by a different vulfi binary "
              "(stored build \"%s\", this binary \"%s\") — resume with "
              "the binary that wrote it, or start a fresh checkpoint",
              config_.checkpoint_path.c_str(),
              journal_str(stored, "build")
                  .value_or("<no fingerprint: pre-v2 journal>")
                  .c_str(),
              build_fingerprint().c_str());
          return false;
        }
        result_.error = strf(
            "checkpoint '%s' was written by a different campaign "
            "configuration — refusing to mix histories (stored %s, "
            "expected %s)",
            config_.checkpoint_path.c_str(), stored.c_str(),
            expected_header.c_str());
        return false;
      }
      need_header = false;
      for (std::size_t i = 1; i < recovered.records.size(); ++i) {
        const std::string& record = recovered.records[i];
        const std::string type = journal_str(record, "t").value_or("");
        if (type == "shard") {
          // A shard journal carries its provenance as record 2; it is
          // byte-compared like the header so a shard journal can never
          // resume as a different shard (which would silently shift
          // every campaign index).
          if (config_.shard_count == 0 || i != 1 ||
              record != shard_record_payload(config_)) {
            result_.error = strf(
                "checkpoint '%s': shard record mismatch (stored %s)",
                config_.checkpoint_path.c_str(), record.c_str());
            return false;
          }
          need_shard_ = false;
        } else if (type == "campaign") {
          const std::optional<CampaignRecord> parsed =
              parse_campaign_record(record);
          if (!parsed || parsed->campaign !=
                             config_.shard_first + result_.campaigns) {
            result_.error = strf(
                "checkpoint '%s': campaign record %llu is malformed or "
                "out of order",
                config_.checkpoint_path.c_str(),
                static_cast<unsigned long long>(i));
            return false;
          }
          CampaignTotals totals;
          totals.benign = parsed->benign;
          totals.sdc = parsed->sdc;
          totals.crash = parsed->crash;
          totals.detected_sdc = parsed->detected_sdc;
          totals.detected_total = parsed->detected_total;
          totals.prune_adjudicated = parsed->prune_adjudicated;
          totals.prune_remapped = parsed->prune_remapped;
          totals.prune_memo_hits = parsed->prune_memo_hits;
          absorb_campaign(result_, totals, config_);
          if (config_.on_campaign_record) config_.on_campaign_record(*parsed);
        } else if (type == "verify") {
          if (journal_u64(record, "ok").value_or(0) == 1) {
            result_.self_verify_passes += 1;
          }
        } else {
          result_.error =
              strf("checkpoint '%s': unrecognized record type '%s'",
                   config_.checkpoint_path.c_str(), type.c_str());
          return false;
        }
      }
      if (result_.campaigns > 0) refresh_stop_rule(result_, config_);
      if (config_.shard_count > 0 && need_shard_ &&
          recovered.records.size() > 1) {
        result_.error = strf(
            "checkpoint '%s': shard journal is missing its shard record",
            config_.checkpoint_path.c_str());
        return false;
      }
    }

    result_.campaigns_restored = result_.campaigns;
    result_.experiments_restored = result_.experiments;
    monitor_.note_campaign(result_.campaigns);

    std::string error;
    if (!writer_.open(config_.checkpoint_path, recovered.valid_bytes,
                      &error)) {
      result_.error = error;
      return false;
    }
    writer_.set_sync_policy(config_.journal_sync);
    if (need_header && !writer_.append(expected_header)) {
      result_.error = strf("checkpoint '%s': header write failed",
                           config_.checkpoint_path.c_str());
      return false;
    }
    if (config_.shard_count > 0 && need_shard_ &&
        !writer_.append(shard_record_payload(config_))) {
      result_.error = strf("checkpoint '%s': shard record write failed",
                           config_.checkpoint_path.c_str());
      return false;
    }
    return true;
  }

  /// Folds one completed campaign into the result, refreshes the stop
  /// rule, makes the checkpoint record durable, and runs the
  /// self-verification pass when its cadence comes due. Returns false
  /// when the run must stop (journal failure or failed verification).
  bool campaign_finished(const CampaignTotals& totals) {
    absorb_campaign(result_, totals, config_);
    refresh_stop_rule(result_, config_);
    const CampaignRecord record =
        to_record(config_.shard_first + result_.campaigns - 1, totals);
    if (writer_.is_open() &&
        !writer_.append(campaign_record_payload(record))) {
      result_.error =
          strf("checkpoint '%s': record write failed at campaign %u",
               config_.checkpoint_path.c_str(), result_.campaigns - 1);
      return false;
    }
    if (config_.on_campaign_record) config_.on_campaign_record(record);
    monitor_.note_campaign(result_.campaigns);
    const bool verified = self_verify_if_due();
    if (config_.on_campaign_complete) config_.on_campaign_complete(result_);
    return verified;
  }

 private:
  /// Every self_verify_every campaigns, re-execute one engine's golden
  /// run from scratch (round-robin over engines) and compare it against
  /// the memoized GoldenCache — the injector checking itself for SDCs.
  bool self_verify_if_due() {
    const unsigned cadence = config_.self_verify_every;
    if (cadence == 0 || result_.campaigns % cadence != 0) return true;
    const std::size_t index = static_cast<std::size_t>(
        (result_.campaigns / cadence - 1) % engines_.size());
    const GoldenVerifyResult verdict = engines_[index]->verify_golden();
    if (verdict.ok) {
      result_.self_verify_passes += 1;
    } else {
      result_.self_verify_failures += 1;
    }
    if (writer_.is_open()) {
      writer_.append(verify_payload(result_.campaigns, index, verdict.ok));
    }
    if (!verdict.ok) {
      result_.error = verdict.diagnostic;
      std::fprintf(stderr, "vulfi: %s\n", verdict.diagnostic.c_str());
      return false;
    }
    return true;
  }

  const std::vector<InjectionEngine*>& engines_;
  const CampaignConfig& config_;
  CampaignResult& result_;
  StallMonitor& monitor_;
  JournalWriter writer_;
  bool need_shard_ = true;
};

// ---------------------------------------------------------------------------
// Work-stealing executor
// ---------------------------------------------------------------------------

/// One worker's slice of the flat experiment index space, packed as
/// (hi << 32) | lo over the half-open interval [lo, hi). The owner pops
/// from the front, thieves take from the back; both via CAS. Padded to a
/// cache line to keep CAS traffic off neighbours.
struct alignas(64) WorkRange {
  std::atomic<std::uint64_t> packed{0};

  void reset(std::uint32_t lo, std::uint32_t hi) {
    packed.store((static_cast<std::uint64_t>(hi) << 32) | lo,
                 std::memory_order_relaxed);
  }

  bool pop_front(std::uint32_t& item) {
    std::uint64_t p = packed.load(std::memory_order_relaxed);
    for (;;) {
      const auto lo = static_cast<std::uint32_t>(p);
      const auto hi = static_cast<std::uint32_t>(p >> 32);
      if (lo >= hi) return false;
      const std::uint64_t next =
          (static_cast<std::uint64_t>(hi) << 32) | (lo + 1);
      if (packed.compare_exchange_weak(p, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        item = lo;
        return true;
      }
    }
  }

  bool steal_back(std::uint32_t& item) {
    std::uint64_t p = packed.load(std::memory_order_relaxed);
    for (;;) {
      const auto lo = static_cast<std::uint32_t>(p);
      const auto hi = static_cast<std::uint32_t>(p >> 32);
      if (lo >= hi) return false;
      const std::uint64_t next =
          (static_cast<std::uint64_t>(hi - 1) << 32) | lo;
      if (packed.compare_exchange_weak(p, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        item = hi - 1;
        return true;
      }
    }
  }
};

/// One run_block call's outcome: per-campaign totals plus how many of
/// each campaign's experiments actually executed — under cooperative
/// cancellation a block may stop part-way, and only campaigns whose
/// counts reached experiments_per_campaign may be absorbed.
struct BlockOutcome {
  std::vector<CampaignTotals> totals;
  std::vector<std::uint32_t> executed;
  bool cancelled = false;
};

/// Executes blocks of whole campaigns across `threads` workers. Worker 0
/// runs on the caller's engines; every other worker owns a cloned engine
/// set, so no mutable interpreter or fi_runtime state is ever shared.
class ParallelCampaignExecutor {
 public:
  ParallelCampaignExecutor(const std::vector<InjectionEngine*>& engines,
                           unsigned threads, StallMonitor& monitor)
      : threads_(threads), busy_seconds_(threads, 0.0), monitor_(monitor) {
    worker_engines_.push_back(engines);
    clones_.resize(threads_);
    for (unsigned w = 1; w < threads_; ++w) {
      std::vector<InjectionEngine*> set;
      for (InjectionEngine* engine : engines) {
        clones_[w].push_back(engine->clone());
        set.push_back(clones_[w].back().get());
      }
      worker_engines_.push_back(std::move(set));
    }
  }

  /// Runs campaigns [first, first + count), all experiments flattened
  /// into one stealable index space; returns per-campaign totals in
  /// campaign order. When the cancellation token fires, each worker
  /// finishes (drains) the experiment it is executing, stops taking new
  /// work, and the outcome reports per-campaign completion counts.
  BlockOutcome run_block(std::uint64_t first, unsigned count,
                         const CampaignConfig& config) {
    const unsigned epc = config.experiments_per_campaign;
    const std::uint64_t total =
        static_cast<std::uint64_t>(count) * epc;
    VULFI_ASSERT(total <= 0xffffffffULL,
                 "campaign block too large for 32-bit work indices");

    std::vector<WorkRange> ranges(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
      ranges[w].reset(static_cast<std::uint32_t>(w * total / threads_),
                      static_cast<std::uint32_t>((w + 1) * total / threads_));
    }

    BlockOutcome out;
    out.totals.resize(count);
    out.executed.assign(count, 0);
    std::atomic<bool> cancelled{false};
    std::mutex merge_mutex;

    auto worker = [&](unsigned w) {
      monitor_.note_worker_active(w);
      const auto start = Clock::now();
      std::vector<CampaignTotals> partials(count);
      std::vector<std::uint32_t> executed(count, 0);
      std::uint32_t item = 0;
      for (;;) {
        if (cancel_requested(config)) {
          cancelled.store(true, std::memory_order_relaxed);
          break;
        }
        bool have_work = ranges[w].pop_front(item);
        for (unsigned i = 1; !have_work && i < threads_; ++i) {
          have_work = ranges[(w + i) % threads_].steal_back(item);
        }
        if (!have_work) break;
        const std::uint32_t c = item / epc;
        run_experiment_at(worker_engines_[w], config, first + c, item % epc,
                          partials[c]);
        executed[c] += 1;
        monitor_.note_experiment(w, first + c, item % epc);
      }
      const double busy = seconds_since(start);
      const std::lock_guard<std::mutex> lock(merge_mutex);
      for (unsigned c = 0; c < count; ++c) {
        out.totals[c] += partials[c];
        out.executed[c] += executed[c];
      }
      busy_seconds_[w] += busy;
    };

    std::vector<std::thread> pool;
    pool.reserve(threads_ - 1);
    for (unsigned w = 1; w < threads_; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : pool) t.join();
    out.cancelled = cancelled.load(std::memory_order_relaxed);
    return out;
  }

  const std::vector<double>& busy_seconds() const { return busy_seconds_; }

 private:
  unsigned threads_;
  std::vector<std::vector<InjectionEngine*>> worker_engines_;
  std::vector<std::vector<std::unique_ptr<InjectionEngine>>> clones_;
  std::vector<double> busy_seconds_;
  StallMonitor& monitor_;
};

// ---------------------------------------------------------------------------
// Serial and parallel drivers
// ---------------------------------------------------------------------------

std::vector<double> run_campaigns_serial(
    const std::vector<InjectionEngine*>& engines,
    const CampaignConfig& config, CampaignResult& result,
    CampaignCoordinator& coordinator, StallMonitor& monitor) {
  const auto start = Clock::now();
  monitor.note_worker_active(0);

  // Runs campaigns result.campaigns .. — cancellation between experiments
  // drains the current one and abandons the partial campaign (its seeds
  // are counter-based, so the resumed run redoes it bit-identically).
  auto run_one_campaign = [&]() -> bool {
    CampaignTotals totals;
    for (unsigned e = 0; e < config.experiments_per_campaign; ++e) {
      if (cancel_requested(config)) {
        result.interrupted = true;
        return false;
      }
      const std::uint64_t campaign = config.shard_first + result.campaigns;
      run_experiment_at(engines, config, campaign, e, totals);
      monitor.note_experiment(0, campaign, e);
    }
    return coordinator.campaign_finished(totals);
  };

  // A shard worker runs a fixed contiguous range of campaign indices;
  // the stop rule is evaluated by the supervisor/merge over the ordered
  // union of all shards, never inside one shard (which only sees a
  // biased subsequence of samples).
  const bool sharded = config.shard_count > 0;
  const unsigned fixed = sharded ? config.shard_count : config.min_campaigns;
  while (result.campaigns < fixed) {
    if (!run_one_campaign()) return {seconds_since(start)};
  }
  while (!sharded && should_continue(result, config)) {
    if (cancel_requested(config)) {
      result.interrupted = true;
      break;
    }
    if (!run_one_campaign()) break;
  }
  return {seconds_since(start)};
}

std::vector<double> run_campaigns_parallel(
    const std::vector<InjectionEngine*>& engines,
    const CampaignConfig& config, CampaignResult& result,
    CampaignCoordinator& coordinator, StallMonitor& monitor,
    unsigned threads) {
  ParallelCampaignExecutor executor(engines, threads, monitor);

  // Runs `count` campaigns and absorbs the completed prefix in campaign
  // order at the block boundary — the workers have all joined, so no lock
  // is held. Under cancellation, campaigns whose experiments did not all
  // execute are discarded (the resumed run redoes them bit-identically).
  auto run_block = [&](unsigned count) -> bool {
    const BlockOutcome block = executor.run_block(
        config.shard_first + result.campaigns, count, config);
    for (unsigned c = 0; c < count; ++c) {
      if (block.executed[c] != config.experiments_per_campaign) break;
      if (!coordinator.campaign_finished(block.totals[c])) return false;
    }
    if (block.cancelled) {
      result.interrupted = true;
      return false;
    }
    return true;
  };

  // The first min_campaigns are unconditional, so they parallelize as one
  // block; afterwards the sequential-sampling stop rule must see every
  // campaign, so blocks shrink to one campaign each (its experiments
  // still fan out across all workers). A resumed run only executes the
  // campaigns the checkpoint is missing.
  bool running = true;
  // Shard mode: one fixed block, no stop rule (see the serial driver).
  const bool sharded = config.shard_count > 0;
  const unsigned fixed = sharded ? config.shard_count : config.min_campaigns;
  if (result.campaigns < fixed) {
    running = run_block(fixed - result.campaigns);
  }
  while (!sharded && running && should_continue(result, config)) {
    if (cancel_requested(config)) {
      result.interrupted = true;
      break;
    }
    running = run_block(1);
  }
  return executor.busy_seconds();
}

}  // namespace

CampaignResult run_campaigns(std::vector<InjectionEngine*> engines,
                             const CampaignConfig& config) {
  VULFI_ASSERT(!engines.empty(), "campaign needs at least one engine");
  VULFI_ASSERT(config.experiments_per_campaign > 0,
               "campaign needs experiments");
  // Warm every engine's golden cache on this thread before any cloning:
  // ParallelCampaignExecutor clones engines in its constructor, so a warm
  // cache here is inherited by every worker — each engine's golden pass
  // (and any detector events it raises) happens exactly once per campaign
  // run, not once per worker.
  for (InjectionEngine* engine : engines) {
    engine->set_backend(config.backend);
    engine->set_golden_cache_enabled(config.use_golden_cache);
    engine->set_static_prune(config.use_static_prune);
    engine->warm_golden_cache();
  }

  CampaignResult result;
  const unsigned threads = resolve_threads(config.num_threads);
  const auto start = Clock::now();
  StallMonitor monitor(threads);
  CampaignCoordinator coordinator(engines, config, result, monitor);

  std::vector<double> busy(threads, 0.0);
  if (coordinator.init_checkpoint()) {
    // The watchdog observes the run from restore onward; it joins before
    // the result is finalized.
    const StallWatchdog watchdog(config, monitor);
    busy = threads <= 1
               ? run_campaigns_serial(engines, config, result, coordinator,
                                      monitor)
               : run_campaigns_parallel(engines, config, result, coordinator,
                                        monitor, threads);
  }

  result.converged = result.ok() && !result.interrupted &&
                     result.campaigns >= config.min_campaigns &&
                     result.campaigns > 0 &&
                     result.margin_of_error <= config.target_margin &&
                     result.near_normal;
  // A shard worker never converges on its own: convergence is a property
  // of the ordered union of shards, decided by the merge step.
  if (config.shard_count > 0) result.converged = false;

  // Throughput covers this run's executed work only: restored campaigns
  // cost no wall time here and must not inflate experiments/sec (nor
  // deflate it by stretching a resumed run's denominator).
  result.throughput.wall_seconds = seconds_since(start);
  result.throughput.threads = threads;
  result.throughput.thread_busy_seconds = std::move(busy);
  result.throughput.experiments =
      result.experiments - result.experiments_restored;
  return result;
}

namespace {
// Journal format version. v2 added the build fingerprint to the header.
constexpr unsigned kJournalVersion = 2;
}  // namespace

std::string campaign_header_payload(const CampaignConfig& config,
                                    std::size_t num_engines) {
  // num_threads and journal_sync are deliberately absent: results are
  // thread-count and durability-policy independent, so resuming under a
  // different --jobs or --fsync is supported.
  return strf(
      "{\"t\":\"header\",\"v\":%u,\"build\":\"%s\",\"seed\":%llu,"
      "\"epc\":%u,\"minc\":%u,\"maxc\":%u,\"conf\":\"%s\",\"margin\":\"%s\","
      "\"gcache\":%u,\"sprune\":%u,\"engines\":%llu}",
      kJournalVersion, build_fingerprint().c_str(),
      static_cast<unsigned long long>(config.seed),
      config.experiments_per_campaign, config.min_campaigns,
      config.max_campaigns, double_hex(config.confidence).c_str(),
      double_hex(config.target_margin).c_str(),
      config.use_golden_cache ? 1u : 0u, config.use_static_prune ? 1u : 0u,
      static_cast<unsigned long long>(num_engines));
}

std::string campaign_record_payload(const CampaignRecord& record) {
  return strf(
      "{\"t\":\"campaign\",\"c\":%llu,\"benign\":%llu,\"sdc\":%llu,"
      "\"crash\":%llu,\"dsdc\":%llu,\"dtot\":%llu,\"padj\":%llu,"
      "\"premap\":%llu,\"pmemo\":%llu}",
      static_cast<unsigned long long>(record.campaign),
      static_cast<unsigned long long>(record.benign),
      static_cast<unsigned long long>(record.sdc),
      static_cast<unsigned long long>(record.crash),
      static_cast<unsigned long long>(record.detected_sdc),
      static_cast<unsigned long long>(record.detected_total),
      static_cast<unsigned long long>(record.prune_adjudicated),
      static_cast<unsigned long long>(record.prune_remapped),
      static_cast<unsigned long long>(record.prune_memo_hits));
}

std::optional<CampaignRecord> parse_campaign_record(
    const std::string& payload) {
  CampaignRecord record;
  auto get = [&](const char* key, std::uint64_t& out) {
    const auto value = journal_u64(payload, key);
    if (!value) return false;
    out = *value;
    return true;
  };
  if (!(get("c", record.campaign) && get("benign", record.benign) &&
        get("sdc", record.sdc) && get("crash", record.crash) &&
        get("dsdc", record.detected_sdc) &&
        get("dtot", record.detected_total) &&
        get("padj", record.prune_adjudicated) &&
        get("premap", record.prune_remapped) &&
        get("pmemo", record.prune_memo_hits))) {
    return std::nullopt;
  }
  return record;
}

int campaign_exit_code(const CampaignResult& result) {
  if (!result.ok() || result.self_verify_failures > 0) {
    return kCampaignExitInternalError;
  }
  if (result.interrupted) return kCampaignExitInterrupted;
  if (result.converged) return kCampaignExitConverged;
  return kCampaignExitUnconverged;
}

std::string shard_record_payload(const CampaignConfig& config) {
  return strf(
      "{\"t\":\"shard\",\"index\":%u,\"shards\":%u,\"first\":%llu,"
      "\"count\":%u}",
      config.shard_index, config.shard_total,
      static_cast<unsigned long long>(config.shard_first),
      config.shard_count);
}

bool crash_hook_compiled() {
#ifdef VULFI_ENABLE_CRASH_HOOK
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// CampaignReplayer — the stop rule as a pure function of an ordered record
// stream. Shares absorb_campaign/refresh_stop_rule/should_continue with the
// live drivers, so replaying records 0..k-1 yields statistics bit-identical
// to having run campaigns 0..k-1 in process.
// ---------------------------------------------------------------------------

CampaignReplayer::CampaignReplayer(const CampaignConfig& config)
    : config_(config) {}

bool CampaignReplayer::wants_more() const {
  return result_.campaigns < config_.min_campaigns ||
         should_continue(result_, config_);
}

bool CampaignReplayer::absorb(const CampaignRecord& record) {
  if (record.campaign != result_.campaigns) return false;
  CampaignTotals totals;
  totals.benign = record.benign;
  totals.sdc = record.sdc;
  totals.crash = record.crash;
  totals.detected_sdc = record.detected_sdc;
  totals.detected_total = record.detected_total;
  totals.prune_adjudicated = record.prune_adjudicated;
  totals.prune_remapped = record.prune_remapped;
  totals.prune_memo_hits = record.prune_memo_hits;
  absorb_campaign(result_, totals, config_);
  refresh_stop_rule(result_, config_);
  return true;
}

CampaignResult CampaignReplayer::finalize() {
  CampaignResult result = result_;
  result.converged = result.ok() && !result.interrupted &&
                     result.campaigns >= config_.min_campaigns &&
                     result.campaigns > 0 &&
                     result.margin_of_error <= config_.target_margin &&
                     result.near_normal;
  return result;
}

}  // namespace vulfi
