#include "vulfi/campaign.hpp"

#include "support/error.hpp"

namespace vulfi {

CampaignResult run_campaigns(std::vector<InjectionEngine*> engines,
                             const CampaignConfig& config) {
  VULFI_ASSERT(!engines.empty(), "campaign needs at least one engine");
  VULFI_ASSERT(config.experiments_per_campaign > 0,
               "campaign needs experiments");
  Rng rng(config.seed);
  CampaignResult result;

  auto run_one_campaign = [&]() {
    std::uint64_t campaign_sdc = 0;
    for (unsigned i = 0; i < config.experiments_per_campaign; ++i) {
      InjectionEngine* engine =
          engines[rng.next_below(engines.size())];
      const ExperimentResult experiment = engine->run_experiment(rng);
      result.experiments += 1;
      switch (experiment.outcome) {
        case Outcome::Benign: result.benign += 1; break;
        case Outcome::SDC:
          result.sdc += 1;
          campaign_sdc += 1;
          if (experiment.detected) result.detected_sdc += 1;
          break;
        case Outcome::Crash: result.crash += 1; break;
      }
      if (experiment.detected) result.detected_total += 1;
    }
    result.sdc_samples.add(static_cast<double>(campaign_sdc) /
                           static_cast<double>(config.experiments_per_campaign));
    result.campaigns += 1;
  };

  while (result.campaigns < config.min_campaigns) run_one_campaign();
  result.margin_of_error =
      margin_of_error(result.sdc_samples, config.confidence);
  result.near_normal = vulfi::near_normal(result.sdc_samples);

  while ((result.margin_of_error > config.target_margin ||
          !result.near_normal) &&
         result.campaigns < config.max_campaigns) {
    run_one_campaign();
    result.margin_of_error =
        margin_of_error(result.sdc_samples, config.confidence);
    result.near_normal = vulfi::near_normal(result.sdc_samples);
  }
  return result;
}

}  // namespace vulfi
