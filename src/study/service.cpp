// {"op":"study"} — the study as a daemon workload. The op runs the
// whole plan inside the daemon against its warm engine cache, streaming
// one sealed study-cell record per finished cell; the done frame's stats
// slice is the study report JSON. A client transcript of those records
// is itself a valid (resumable) study journal.
#include <cstdlib>

#include "study/study.hpp"
#include "support/str.hpp"

namespace vulfi::study {

namespace {

std::string join_csv(const std::vector<std::string>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += values[i];
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    std::string part;
    if (comma == std::string::npos) {
      part = text.substr(start);
    } else {
      part = text.substr(start, comma - start);
    }
    if (!part.empty()) out.push_back(std::move(part));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

std::string serialize_study_request(const StudyRequest& request) {
  // The shared campaign knobs ride in the same fields a submit uses
  // (campaign_fields_json), so the two grammars cannot drift; the axes
  // use plural names that no campaign field collides with. The base
  // benchmark field is cleared — axes carry the benchmarks.
  serve::CampaignRequest base = request.plan.base;
  base.benchmark.clear();
  base.checkpoint.clear();
  base.shards = 0;
  base.vl = 0;
  std::string payload =
      "{\"op\":\"study\"," + serve::campaign_fields_json(base);
  payload += strf(",\"benchmarks\":\"%s\"",
                  serve::json_escape(join_csv(request.plan.benchmarks))
                      .c_str());
  std::string widths;
  for (std::size_t i = 0; i < request.plan.widths.size(); ++i) {
    if (i > 0) widths += ",";
    widths += strf("%u", request.plan.widths[i]);
  }
  payload += strf(",\"widths\":\"%s\"", widths.c_str());
  payload += strf(",\"study_isas\":\"%s\"",
                  join_csv(request.plan.isas).c_str());
  payload += strf(",\"study_categories\":\"%s\"",
                  serve::json_escape(join_csv(request.plan.categories))
                      .c_str());
  payload += strf(",\"det_off\":%u,\"det_on\":%u",
                  request.plan.detectors_off ? 1u : 0u,
                  request.plan.detectors_on ? 1u : 0u);
  payload += strf(",\"window\":%u", request.window);
  payload += "}";
  return payload;
}

std::optional<StudyRequest> parse_study_request(const std::string& payload,
                                                std::string* error) {
  StudyRequest request;
  if (!serve::parse_campaign_fields(payload, &request.plan.base, error,
                                    "study")) {
    return std::nullopt;
  }
  request.plan.base.benchmark.clear();
  request.plan.base.checkpoint.clear();
  request.plan.base.shards = 0;
  request.plan.base.vl = 0;

  request.plan.benchmarks =
      split_csv(journal_str(payload, "benchmarks").value_or(""));
  request.plan.widths.clear();
  for (const std::string& width :
       split_csv(journal_str(payload, "widths").value_or("1,4,8,16"))) {
    request.plan.widths.push_back(
        static_cast<unsigned>(std::strtoul(width.c_str(), nullptr, 10)));
  }
  request.plan.isas =
      split_csv(journal_str(payload, "study_isas").value_or("avx,sse"));
  request.plan.categories = split_csv(
      journal_str(payload, "study_categories")
          .value_or("pure-data,control,address"));
  request.plan.detectors_off = journal_u64(payload, "det_off").value_or(1) != 0;
  request.plan.detectors_on = journal_u64(payload, "det_on").value_or(1) != 0;
  request.window =
      static_cast<unsigned>(journal_u64(payload, "window").value_or(4));

  // Full validation (registry names included) happens in StudyPlan::make;
  // run it here so a bad request is refused before admission.
  std::string make_error;
  if (!StudyPlan::make(request.plan, &make_error)) {
    if (error != nullptr) *error = make_error;
    return std::nullopt;
  }
  return request;
}

serve::SubmitOutcome submit_study(const std::string& socket_path,
                                  const StudyRequest& request,
                                  const serve::StreamCallbacks& callbacks,
                                  int frame_timeout_ms) {
  return serve::submit_payload(socket_path,
                               serialize_study_request(request), callbacks,
                               frame_timeout_ms);
}

void register_study_op(serve::CampaignServer& server) {
  serve::CampaignServer* raw = &server;
  server.register_op(
      "study",
      [raw](const std::string& payload,
            const serve::ExtensionHooks& hooks) -> serve::ExtensionResult {
        serve::ExtensionResult out;
        std::string error;
        const std::optional<StudyRequest> request =
            parse_study_request(payload, &error);
        if (!request) {
          out.error = error;
          out.result_json = "{}";
          return out;
        }
        const std::optional<StudyPlan> plan =
            StudyPlan::make(request->plan, &error);
        if (!plan) {
          out.error = error;
          out.result_json = "{}";
          return out;
        }

        StudyOptions options;
        options.window = request->window;
        options.cache = &raw->cache();
        options.max_jobs = raw->max_jobs_per_request();
        options.cancel = hooks.cancel;
        options.log = hooks.log;
        options.on_cell = [&hooks](const StudyCellOutcome& outcome) {
          if (!outcome.done) return;
          hooks.send_raw(journal_seal(
              study_cell_payload(outcome.cell, outcome.counts)));
        };
        const StudyResult result = run_study(*plan, options);
        out.exit_code = result.exit_code;
        out.converged = result.exit_code == 0;
        out.interrupted = result.interrupted;
        out.error = result.error;
        out.result_json = result.complete()
                              ? study_report_json(*plan, result)
                              : "{}";
        return out;
      });
}

}  // namespace vulfi::study
