// Deterministic comparative report of one study. Every figure is a pure
// function of the per-cell integer counters, so the bytes are identical
// across local/daemon execution, window sizes, and interrupt/resume —
// the invariant CI's study-smoke job cmp's for.
#include <algorithm>
#include <vector>

#include "study/study.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"

namespace vulfi::study {

namespace {

/// Done cells in cell_order — the single ordering every section walks,
/// regardless of the order the driver (or a shuffled test) resolved
/// them in.
std::vector<const StudyCellOutcome*> ordered_cells(
    const StudyResult& result) {
  std::vector<const StudyCellOutcome*> cells;
  cells.reserve(result.cells.size());
  for (const StudyCellOutcome& outcome : result.cells) {
    if (outcome.done) cells.push_back(&outcome);
  }
  std::sort(cells.begin(), cells.end(),
            [](const StudyCellOutcome* a, const StudyCellOutcome* b) {
              return cell_order(a->cell, b->cell);
            });
  return cells;
}

const StudyCellOutcome* find_cell(
    const std::vector<const StudyCellOutcome*>& cells,
    const std::string& benchmark, unsigned vl, const std::string& isa,
    const std::string& category, bool detectors) {
  for (const StudyCellOutcome* outcome : cells) {
    if (outcome->cell.benchmark == benchmark && outcome->cell.vl == vl &&
        outcome->cell.isa == isa && outcome->cell.category == category &&
        outcome->cell.detectors == detectors) {
      return outcome;
    }
  }
  return nullptr;
}

std::string cell_json(const StudyCellOutcome& outcome, double confidence) {
  const StudyCell& cell = outcome.cell;
  const CellCounts& counts = outcome.counts;
  const WilsonInterval sdc_ci =
      wilson_interval(counts.sdc, counts.experiments, confidence);
  return strf(
      "{\"benchmark\":\"%s\",\"vl\":%u,\"isa\":\"%s\",\"category\":\"%s\","
      "\"detectors\":%u,\"exit\":%d,\"converged\":%u,\"campaigns\":%llu,"
      "\"experiments\":%llu,\"benign\":%llu,\"sdc\":%llu,\"crash\":%llu,"
      "\"detected_sdc\":%llu,\"detected_total\":%llu,"
      "\"sdc_rate\":\"%s\",\"benign_rate\":\"%s\",\"crash_rate\":\"%s\","
      "\"sdc_ci\":[\"%s\",\"%s\"]}",
      cell.benchmark.c_str(), cell.vl, cell.isa.c_str(),
      cell.category.c_str(), cell.detectors ? 1u : 0u, counts.exit_code,
      counts.converged ? 1u : 0u,
      static_cast<unsigned long long>(counts.campaigns),
      static_cast<unsigned long long>(counts.experiments),
      static_cast<unsigned long long>(counts.benign),
      static_cast<unsigned long long>(counts.sdc),
      static_cast<unsigned long long>(counts.crash),
      static_cast<unsigned long long>(counts.detected_sdc),
      static_cast<unsigned long long>(counts.detected_total),
      double_hex(counts.rate(counts.sdc)).c_str(),
      double_hex(counts.rate(counts.benign)).c_str(),
      double_hex(counts.rate(counts.crash)).c_str(),
      double_hex(sdc_ci.low).c_str(), double_hex(sdc_ci.high).c_str());
}

/// Per-(benchmark, isa, category, detector) SDC across the width axis,
/// with deltas against the narrowest width present (the scalar baseline
/// when the plan includes vl 1).
std::string width_deltas_json(
    const StudyPlan& plan,
    const std::vector<const StudyCellOutcome*>& cells) {
  const StudyPlanConfig& config = plan.config();
  std::string json = "[";
  bool first_row = true;
  for (const std::string& benchmark : config.benchmarks) {
    for (const std::string& isa : config.isas) {
      for (const std::string& category : config.categories) {
        for (const unsigned det : {0u, 1u}) {
          const StudyCellOutcome* baseline = nullptr;
          std::vector<const StudyCellOutcome*> row;
          for (const unsigned vl : config.widths) {
            const StudyCellOutcome* outcome = find_cell(
                cells, benchmark, vl, isa, category, det != 0);
            if (outcome == nullptr) continue;
            if (baseline == nullptr) baseline = outcome;
            row.push_back(outcome);
          }
          if (baseline == nullptr || row.size() < 2) continue;
          if (!first_row) json += ",";
          first_row = false;
          json += strf(
              "{\"benchmark\":\"%s\",\"isa\":\"%s\",\"category\":\"%s\","
              "\"detectors\":%u,\"baseline_vl\":%u,"
              "\"baseline_sdc_rate\":\"%s\",\"widths\":[",
              benchmark.c_str(), isa.c_str(), category.c_str(), det,
              baseline->cell.vl,
              double_hex(baseline->counts.rate(baseline->counts.sdc))
                  .c_str());
          const double base_rate =
              baseline->counts.rate(baseline->counts.sdc);
          for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0) json += ",";
            const double rate = row[i]->counts.rate(row[i]->counts.sdc);
            json += strf(
                "{\"vl\":%u,\"sdc_rate\":\"%s\",\"delta\":\"%s\"}",
                row[i]->cell.vl, double_hex(rate).c_str(),
                double_hex(rate - base_rate).c_str());
          }
          json += "]}";
        }
      }
    }
  }
  json += "]";
  return json;
}

/// Detector efficacy per (benchmark, vl, isa, category) pair that has
/// both detector modes: SDC with and without detectors, the delta, and
/// the detector coverage of SDC experiments in the detectors-on cell.
std::string detector_efficacy_json(
    const StudyPlan& plan,
    const std::vector<const StudyCellOutcome*>& cells) {
  const StudyPlanConfig& config = plan.config();
  std::string json = "[";
  bool first_row = true;
  for (const std::string& benchmark : config.benchmarks) {
    for (const unsigned vl : config.widths) {
      for (const std::string& isa : config.isas) {
        for (const std::string& category : config.categories) {
          const StudyCellOutcome* off =
              find_cell(cells, benchmark, vl, isa, category, false);
          const StudyCellOutcome* on =
              find_cell(cells, benchmark, vl, isa, category, true);
          if (off == nullptr || on == nullptr) continue;
          const double rate_off = off->counts.rate(off->counts.sdc);
          const double rate_on = on->counts.rate(on->counts.sdc);
          const double coverage =
              on->counts.sdc == 0
                  ? 0.0
                  : static_cast<double>(on->counts.detected_sdc) /
                        static_cast<double>(on->counts.sdc);
          if (!first_row) json += ",";
          first_row = false;
          json += strf(
              "{\"benchmark\":\"%s\",\"vl\":%u,\"isa\":\"%s\","
              "\"category\":\"%s\",\"sdc_rate_off\":\"%s\","
              "\"sdc_rate_on\":\"%s\",\"delta\":\"%s\","
              "\"sdc_coverage\":\"%s\"}",
              benchmark.c_str(), vl, isa.c_str(), category.c_str(),
              double_hex(rate_off).c_str(), double_hex(rate_on).c_str(),
              double_hex(rate_on - rate_off).c_str(),
              double_hex(coverage).c_str());
        }
      }
    }
  }
  json += "]";
  return json;
}

/// Serial-vs-vector scaling per (benchmark, isa, detector): counts
/// summed over the category axis, one column per width.
std::string scaling_json(const StudyPlan& plan,
                         const std::vector<const StudyCellOutcome*>& cells) {
  const StudyPlanConfig& config = plan.config();
  std::string json = "[";
  bool first_row = true;
  for (const std::string& benchmark : config.benchmarks) {
    for (const std::string& isa : config.isas) {
      for (const unsigned det : {0u, 1u}) {
        std::string columns = "[";
        bool first_col = true;
        for (const unsigned vl : config.widths) {
          CellCounts sum;
          sum.experiments = 0;
          bool any = false;
          for (const std::string& category : config.categories) {
            const StudyCellOutcome* outcome = find_cell(
                cells, benchmark, vl, isa, category, det != 0);
            if (outcome == nullptr) continue;
            any = true;
            sum.experiments += outcome->counts.experiments;
            sum.benign += outcome->counts.benign;
            sum.sdc += outcome->counts.sdc;
            sum.crash += outcome->counts.crash;
          }
          if (!any) continue;
          if (!first_col) columns += ",";
          first_col = false;
          columns += strf(
              "{\"vl\":%u,\"experiments\":%llu,\"sdc_rate\":\"%s\","
              "\"benign_rate\":\"%s\",\"crash_rate\":\"%s\"}",
              vl, static_cast<unsigned long long>(sum.experiments),
              double_hex(sum.rate(sum.sdc)).c_str(),
              double_hex(sum.rate(sum.benign)).c_str(),
              double_hex(sum.rate(sum.crash)).c_str());
        }
        columns += "]";
        if (columns == "[]") continue;
        if (!first_row) json += ",";
        first_row = false;
        json += strf("{\"benchmark\":\"%s\",\"isa\":\"%s\","
                     "\"detectors\":%u,\"widths\":%s}",
                     benchmark.c_str(), isa.c_str(), det, columns.c_str());
      }
    }
  }
  json += "]";
  return json;
}

}  // namespace

std::string study_report_json(const StudyPlan& plan,
                              const StudyResult& result) {
  const std::vector<const StudyCellOutcome*> cells = ordered_cells(result);
  const double confidence = plan.config().base.confidence;
  std::string json = strf(
      "{\"t\":\"study\",\"schema\":%u,\"plan\":\"%016llx\","
      "\"cells_total\":%u,\"cells_done\":%llu,\"confidence\":\"%s\","
      "\"cells\":[",
      kStudySchemaVersion,
      static_cast<unsigned long long>(plan.fingerprint()),
      result.cells_total, static_cast<unsigned long long>(cells.size()),
      double_hex(confidence).c_str());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) json += ",";
    json += cell_json(*cells[i], confidence);
  }
  json += "],\"width_deltas\":" + width_deltas_json(plan, cells);
  json += ",\"detector_efficacy\":" + detector_efficacy_json(plan, cells);
  json += ",\"scaling\":" + scaling_json(plan, cells);
  json += "}";
  return json;
}

std::string study_report_markdown(const StudyPlan& plan,
                                  const StudyResult& result) {
  const std::vector<const StudyCellOutcome*> cells = ordered_cells(result);
  const double confidence = plan.config().base.confidence;
  std::string out = strf(
      "# Vector-width resilience study\n\n"
      "Plan `%016llx` — %llu/%u cells, %u experiments/campaign, "
      "confidence %.2f.\n\n",
      static_cast<unsigned long long>(plan.fingerprint()),
      static_cast<unsigned long long>(cells.size()), result.cells_total,
      plan.config().base.experiments, confidence);

  out += "## Cells\n\n";
  out += "| benchmark | vl | isa | category | det | exp | SDC | CI low | "
         "CI high | Benign | Crash |\n";
  out += "|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const StudyCellOutcome* outcome : cells) {
    const StudyCell& cell = outcome->cell;
    const CellCounts& counts = outcome->counts;
    const WilsonInterval ci =
        wilson_interval(counts.sdc, counts.experiments, confidence);
    out += strf("| %s | %u | %s | %s | %s | %llu | %.4f | %.4f | %.4f | "
                "%.4f | %.4f |\n",
                cell.benchmark.c_str(), cell.vl, cell.isa.c_str(),
                cell.category.c_str(), cell.detectors ? "on" : "off",
                static_cast<unsigned long long>(counts.experiments),
                counts.rate(counts.sdc), ci.low, ci.high,
                counts.rate(counts.benign), counts.rate(counts.crash));
  }

  out += "\n## SDC across vector widths (delta vs narrowest width)\n\n";
  const StudyPlanConfig& config = plan.config();
  out += "| benchmark | isa | category | det |";
  for (const unsigned vl : config.widths) out += strf(" vl%u |", vl);
  out += "\n|---|---|---|---|";
  for (std::size_t i = 0; i < config.widths.size(); ++i) out += "---|";
  out += "\n";
  for (const std::string& benchmark : config.benchmarks) {
    for (const std::string& isa : config.isas) {
      for (const std::string& category : config.categories) {
        for (const unsigned det : {0u, 1u}) {
          const StudyCellOutcome* baseline = nullptr;
          std::string row;
          unsigned present = 0;
          for (const unsigned vl : config.widths) {
            const StudyCellOutcome* outcome = find_cell(
                cells, benchmark, vl, isa, category, det != 0);
            if (outcome == nullptr) {
              row += " — |";
              continue;
            }
            present += 1;
            const double rate = outcome->counts.rate(outcome->counts.sdc);
            if (baseline == nullptr) {
              baseline = outcome;
              row += strf(" %.4f |", rate);
            } else {
              row += strf(
                  " %.4f (%+.4f) |",
                  rate, rate - baseline->counts.rate(baseline->counts.sdc));
            }
          }
          if (present < 2) continue;
          out += strf("| %s | %s | %s | %s |%s\n", benchmark.c_str(),
                      isa.c_str(), category.c_str(),
                      det != 0 ? "on" : "off", row.c_str());
        }
      }
    }
  }

  out += "\n## Detector efficacy (SDC on vs off, coverage of SDCs)\n\n";
  out += "| benchmark | vl | isa | category | SDC off | SDC on | delta | "
         "coverage |\n";
  out += "|---|---|---|---|---|---|---|---|\n";
  for (const std::string& benchmark : config.benchmarks) {
    for (const unsigned vl : config.widths) {
      for (const std::string& isa : config.isas) {
        for (const std::string& category : config.categories) {
          const StudyCellOutcome* off =
              find_cell(cells, benchmark, vl, isa, category, false);
          const StudyCellOutcome* on =
              find_cell(cells, benchmark, vl, isa, category, true);
          if (off == nullptr || on == nullptr) continue;
          const double rate_off = off->counts.rate(off->counts.sdc);
          const double rate_on = on->counts.rate(on->counts.sdc);
          const double coverage =
              on->counts.sdc == 0
                  ? 0.0
                  : static_cast<double>(on->counts.detected_sdc) /
                        static_cast<double>(on->counts.sdc);
          out += strf("| %s | %u | %s | %s | %.4f | %.4f | %+.4f | %.4f "
                      "|\n",
                      benchmark.c_str(), vl, isa.c_str(), category.c_str(),
                      rate_off, rate_on, rate_on - rate_off, coverage);
        }
      }
    }
  }

  out += "\n## Serial vs vector scaling (summed over categories)\n\n";
  out += "| benchmark | isa | det |";
  for (const unsigned vl : config.widths) out += strf(" vl%u SDC |", vl);
  out += "\n|---|---|---|";
  for (std::size_t i = 0; i < config.widths.size(); ++i) out += "---|";
  out += "\n";
  for (const std::string& benchmark : config.benchmarks) {
    for (const std::string& isa : config.isas) {
      for (const unsigned det : {0u, 1u}) {
        std::string row;
        unsigned present = 0;
        for (const unsigned vl : config.widths) {
          CellCounts sum;
          bool any = false;
          for (const std::string& category : config.categories) {
            const StudyCellOutcome* outcome = find_cell(
                cells, benchmark, vl, isa, category, det != 0);
            if (outcome == nullptr) continue;
            any = true;
            sum.experiments += outcome->counts.experiments;
            sum.sdc += outcome->counts.sdc;
          }
          if (!any) {
            row += " — |";
            continue;
          }
          present += 1;
          row += strf(" %.4f |", sum.rate(sum.sdc));
        }
        if (present == 0) continue;
        out += strf("| %s | %s | %s |%s\n", benchmark.c_str(), isa.c_str(),
                    det != 0 ? "on" : "off", row.c_str());
      }
    }
  }
  return out;
}

std::string study_report_csv(const StudyPlan& plan,
                             const StudyResult& result) {
  const std::vector<const StudyCellOutcome*> cells = ordered_cells(result);
  const double confidence = plan.config().base.confidence;
  std::string out =
      "benchmark,vl,isa,category,detectors,exit,converged,campaigns,"
      "experiments,benign,sdc,crash,detected_sdc,detected_total,"
      "sdc_rate,sdc_ci_low,sdc_ci_high,benign_rate,crash_rate\n";
  for (const StudyCellOutcome* outcome : cells) {
    const StudyCell& cell = outcome->cell;
    const CellCounts& counts = outcome->counts;
    const WilsonInterval ci =
        wilson_interval(counts.sdc, counts.experiments, confidence);
    out += strf(
        "%s,%u,%s,%s,%u,%d,%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%.6f,%.6f,%.6f,%.6f,%.6f\n",
        cell.benchmark.c_str(), cell.vl, cell.isa.c_str(),
        cell.category.c_str(), cell.detectors ? 1u : 0u, counts.exit_code,
        counts.converged ? 1u : 0u,
        static_cast<unsigned long long>(counts.campaigns),
        static_cast<unsigned long long>(counts.experiments),
        static_cast<unsigned long long>(counts.benign),
        static_cast<unsigned long long>(counts.sdc),
        static_cast<unsigned long long>(counts.crash),
        static_cast<unsigned long long>(counts.detected_sdc),
        static_cast<unsigned long long>(counts.detected_total),
        counts.rate(counts.sdc), ci.low, ci.high,
        counts.rate(counts.benign), counts.rate(counts.crash));
  }
  return out;
}

}  // namespace vulfi::study
