// StudyDriver: fans plan cells through vulfid submits (or a local
// engine cache), with a resumable checksummed journal and summary-store
// reuse. See study.hpp for the invariants.
#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "analysis/propagation.hpp"
#include "kernels/benchmark.hpp"
#include "spmd/target.hpp"
#include "study/study.hpp"
#include "support/str.hpp"
#include "support/version.hpp"
#include "vulfi/campaign.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/summary.hpp"

namespace vulfi::study {

namespace {

spmd::Target target_for(const StudyCell& cell) {
  spmd::Target target = cell.isa == "avx" ? spmd::Target::avx()
                                          : spmd::Target::sse4();
  target.vector_width = cell.vl;
  return target;
}

/// ISA string the summary-store fingerprint sees. Native-width cells use
/// the plain ISA name, so their summaries are interchangeable with the
/// ones `vulfi diff`/`submit` write; overridden widths get an augmented
/// name (canonical_isa passes unknown strings through verbatim).
std::string isa_for_store(const StudyCell& cell) {
  if (cell.vl == native_width(cell.isa)) return cell.isa;
  return strf("%s+vl%u", cell.isa.c_str(), cell.vl);
}

void log_line(const StudyOptions& options, const std::string& message) {
  if (options.log) options.log(message);
}

CellCounts counts_of_result(const CampaignResult& result) {
  CellCounts counts;
  counts.campaigns = result.campaigns;
  counts.experiments = result.experiments;
  counts.benign = result.benign;
  counts.sdc = result.sdc;
  counts.crash = result.crash;
  counts.detected_sdc = result.detected_sdc;
  counts.detected_total = result.detected_total;
  counts.exit_code = campaign_exit_code(result);
  counts.converged = result.converged;
  return counts;
}

CellCounts counts_of_summary(const FunctionSummary& summary) {
  CellCounts counts;
  counts.campaigns = summary.campaigns;
  counts.experiments = summary.experiments;
  counts.benign = summary.benign;
  counts.sdc = summary.sdc;
  counts.crash = summary.crash;
  counts.detected_sdc = summary.detected_sdc;
  counts.detected_total = summary.detected_total;
  counts.exit_code = summary.exit_code;
  counts.converged = summary.exit_code == kCampaignExitConverged;
  return counts;
}

CellCounts counts_of_stats(const serve::SubmitOutcome& outcome) {
  CellCounts counts;
  const std::string& stats = outcome.stats_json;
  counts.campaigns = journal_u64(stats, "campaigns").value_or(0);
  counts.experiments = journal_u64(stats, "experiments").value_or(0);
  counts.benign = journal_u64(stats, "benign").value_or(0);
  counts.sdc = journal_u64(stats, "sdc").value_or(0);
  counts.crash = journal_u64(stats, "crash").value_or(0);
  counts.detected_sdc = journal_u64(stats, "detected_sdc").value_or(0);
  counts.detected_total = journal_u64(stats, "detected_total").value_or(0);
  counts.exit_code = outcome.exit_code;
  counts.converged = outcome.converged;
  return counts;
}

/// Shared mutable state of one run_study call. Workers hold the mutex
/// only around journal/store appends and result bookkeeping; the cell
/// executions themselves run fully concurrent.
struct DriverState {
  const StudyPlan& plan;
  const StudyOptions& options;
  StudyResult result;

  serve::EngineCache* cache = nullptr;
  SummaryStore store;
  bool store_open = false;
  JournalWriter journal;
  bool journal_open = false;

  std::vector<std::size_t> pending;  ///< plan indices left to execute
  std::atomic<std::size_t> cursor{0};
  std::atomic<unsigned> completed_this_run{0};
  std::atomic<bool> abort{false};  ///< internal error: stop dispatching
  std::atomic<bool> saw_interrupted{false};
  std::mutex mutex;  ///< journal + store + result fields

  explicit DriverState(const StudyPlan& p, const StudyOptions& o)
      : plan(p), options(o) {}

  bool cancelled() const {
    if (options.cancel != nullptr && options.cancel->cancelled()) return true;
    if (options.stop_after_cells != 0 &&
        completed_this_run.load() >= options.stop_after_cells) {
      return true;
    }
    return false;
  }

  void fail_cell(std::size_t index, const std::string& message) {
    const std::lock_guard<std::mutex> lock(mutex);
    result.cells[index].error = message;
    if (result.error.empty()) result.error = message;
    abort.store(true);
  }

  /// Records a finished cell: journal append, summary-store append (for
  /// freshly executed cells), counters, streaming hook.
  void finish_cell(std::size_t index, const CellCounts& counts,
                   const std::string& source,
                   const FunctionSummary* summary) {
    const std::lock_guard<std::mutex> lock(mutex);
    StudyCellOutcome& outcome = result.cells[index];
    outcome.counts = counts;
    outcome.source = source;
    outcome.done = true;
    result.cells_completed += 1;
    if (source == "store") {
      result.cells_from_store += 1;
    } else {
      result.cells_executed += 1;
      result.new_experiments += counts.experiments;
    }
    if (journal_open &&
        !journal.append(study_cell_payload(outcome.cell, counts))) {
      outcome.error = "study journal append failed";
      if (result.error.empty()) result.error = outcome.error;
      abort.store(true);
    }
    if (summary != nullptr && store_open && !store.append(*summary)) {
      const std::string message =
          strf("study: cell %s: summary store append failed (%s)",
               outcome.cell.key().c_str(), store.path().c_str());
      if (result.error.empty()) result.error = message;
      abort.store(true);
    }
    completed_this_run.fetch_add(1);
    if (options.on_cell) options.on_cell(outcome);
  }
};

/// Pristine-module identity + census of one cell, shared by the store
/// lookup and the post-run store append. The modules are built without
/// detectors — detector insertion is configuration, not content, and is
/// covered by the fingerprint instead (mirrors serve/diff.cpp).
struct CellUnitInfo {
  std::uint64_t content_hash = 0;
  std::uint64_t config_fingerprint = 0;
  PropagationCensus census;
};

CellUnitInfo cell_unit_info(const StudyCell& cell,
                            const serve::CampaignRequest& request,
                            unsigned max_jobs) {
  CellUnitInfo info;
  const kernels::Benchmark* bench = kernels::find_benchmark(cell.benchmark);
  const spmd::Target target = target_for(cell);
  Fnv1a unit_hash;
  for (unsigned input = 0; input < bench->num_inputs(); ++input) {
    const RunSpec spec = bench->build(target, input);
    unit_hash.u64(analysis::module_content_hash(*spec.module));
    const PropagationCensus part = propagation_census(*spec.module);
    info.census.masked += part.masked;
    info.census.output += part.output;
    info.census.control += part.control;
    info.census.trap += part.trap;
  }
  info.content_hash = unit_hash.value();
  const CampaignConfig config = serve::to_campaign_config(request, max_jobs);
  info.config_fingerprint = summary_config_fingerprint(
      config, cell.category, isa_for_store(cell), cell.detectors);
  return info;
}

void execute_cell(DriverState& state, std::size_t index) {
  const StudyCell& cell = state.plan.cells()[index];
  const StudyOptions& options = state.options;
  const serve::CampaignRequest request = state.plan.request_for(cell);

  // 1. Summary-store reuse: an unchanged (unit, config) cell is answered
  // from its stored record with zero new experiments.
  CellUnitInfo info;
  if (state.store_open) {
    info = cell_unit_info(cell, request, options.max_jobs);
    // Copy under the lock: a concurrent append may grow (and relocate)
    // the store's record vector.
    std::optional<FunctionSummary> stored;
    {
      const std::lock_guard<std::mutex> lock(state.mutex);
      const FunctionSummary* found = state.store.find(
          cell.benchmark, info.content_hash, info.config_fingerprint);
      if (found != nullptr) stored = *found;
    }
    if (stored) {
      log_line(options, strf("study: cell %s: reusing stored summary "
                             "(%llu experiments on record)",
                             cell.key().c_str(),
                             static_cast<unsigned long long>(
                                 stored->experiments)));
      state.finish_cell(index, counts_of_summary(*stored), "store", nullptr);
      return;
    }
  }

  // 2. Execute: daemon submit or local lease + run. Both paths run the
  // same run_campaigns with the same counter-seeded configuration, so
  // the counts are bit-identical by construction.
  CellCounts counts;
  std::uint64_t weight = 0;
  std::string source;
  if (!options.socket.empty()) {
    source = "daemon";
    serve::StreamCallbacks callbacks;
    callbacks.cancel = options.cancel;
    callbacks.on_log = [&](const std::string& message) {
      log_line(options, strf("study: cell %s: %s", cell.key().c_str(),
                             message.c_str()));
    };
    const serve::SubmitOutcome outcome = serve::submit_campaign_with_retry(
        options.socket, request, options.retry, callbacks);
    if (!outcome.ok) {
      state.fail_cell(index, strf("study: cell %s: %s", cell.key().c_str(),
                                  outcome.error.c_str()));
      return;
    }
    if (outcome.exit_code == kCampaignExitInternalError) {
      state.fail_cell(index,
                      strf("study: cell %s: %s", cell.key().c_str(),
                           outcome.server_error.empty()
                               ? "internal error"
                               : outcome.server_error.c_str()));
      return;
    }
    if (outcome.interrupted) {
      state.saw_interrupted.store(true);
      return;  // incomplete counts: never journaled, redone on resume
    }
    counts = counts_of_stats(outcome);
  } else {
    source = "local";
    serve::EngineCache::Lease lease = state.cache->acquire(request);
    if (!lease.error.empty()) {
      state.fail_cell(index, strf("study: cell %s: %s", cell.key().c_str(),
                                  lease.error.c_str()));
      return;
    }
    CampaignConfig config =
        serve::to_campaign_config(request, options.max_jobs);
    config.cancel = options.cancel;
    config.stall_log = [&](const std::string& message) {
      log_line(options, strf("study: cell %s: %s", cell.key().c_str(),
                             message.c_str()));
    };
    std::vector<InjectionEngine*> engines;
    engines.reserve(lease.engines.size());
    for (const auto& engine : lease.engines) engines.push_back(engine.get());
    const CampaignResult result = run_campaigns(engines, config);
    if (!result.ok()) {
      state.fail_cell(index, strf("study: cell %s: %s", cell.key().c_str(),
                                  result.error.c_str()));
      return;
    }
    if (result.interrupted) {
      state.saw_interrupted.store(true);
      return;
    }
    counts = counts_of_result(result);
    for (InjectionEngine* engine : engines) {
      weight += engine->golden().dynamic_sites;
    }
  }

  // 3. Populate the summary store so the next study (or `vulfi diff`)
  // reuses this cell. Daemon-fanned cells record weight 0 — the golden
  // dynamic-site total lives server-side — which the reuse path never
  // reads (it consumes counts only); composition treats zero weights as
  // contributing no probability mass.
  if (state.store_open) {
    FunctionSummary summary;
    summary.unit = cell.benchmark;
    summary.content_hash = info.content_hash;
    summary.config_fingerprint = info.config_fingerprint;
    summary.experiments = counts.experiments;
    summary.benign = counts.benign;
    summary.sdc = counts.sdc;
    summary.crash = counts.crash;
    summary.detected_sdc = counts.detected_sdc;
    summary.detected_total = counts.detected_total;
    summary.campaigns = counts.campaigns;
    summary.weight = weight;
    summary.census = info.census;
    summary.exit_code = counts.exit_code;
    state.finish_cell(index, counts, source, &summary);
    return;
  }
  state.finish_cell(index, counts, source, nullptr);
}

void worker_loop(DriverState& state) {
  for (;;) {
    if (state.abort.load() || state.cancelled()) return;
    const std::size_t slot = state.cursor.fetch_add(1);
    if (slot >= state.pending.size()) return;
    execute_cell(state, state.pending[slot]);
  }
}

}  // namespace

StudyResult run_study(const StudyPlan& plan, const StudyOptions& options) {
  DriverState state(plan, options);
  StudyResult& result = state.result;
  result.plan_fingerprint = plan.fingerprint();
  result.cells_total = static_cast<unsigned>(plan.cells().size());
  result.cells.resize(plan.cells().size());
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    result.cells[i].cell = plan.cells()[i];
  }

  auto fail = [&](const std::string& message) {
    result.error = message;
    result.exit_code = kCampaignExitInternalError;
    return result;
  };

  // Local fallback cache: one entry per distinct cell key is the upper
  // bound a private study can use; callers sharing a daemon-grade cache
  // pass their own.
  serve::EngineCache private_cache(plan.cells().size() == 0
                                       ? 1
                                       : plan.cells().size());
  state.cache = options.cache != nullptr ? options.cache : &private_cache;

  if (!options.summaries_dir.empty()) {
    std::string error;
    if (!state.store.open(options.summaries_dir, &error)) {
      return fail("study: " + error);
    }
    state.store_open = true;
  }

  // Journal recovery: verify the header against this plan and this
  // build, then replay every completed cell with zero repeated work.
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    index_of[plan.cells()[i].key()] = i;
  }
  if (!options.journal_path.empty()) {
    const JournalRecovery recovery = recover_journal(options.journal_path);
    if (!recovery.records.empty()) {
      const std::string& header = recovery.records.front();
      if (journal_str(header, "t").value_or("") != "study-header") {
        return fail(strf("study: %s is not a study journal",
                         options.journal_path.c_str()));
      }
      const unsigned schema = static_cast<unsigned>(
          journal_u64(header, "schema").value_or(0));
      const std::string plan_hex =
          journal_str(header, "plan").value_or("");
      const std::string build = journal_str(header, "build").value_or("");
      if (schema != kStudySchemaVersion) {
        return fail(strf("study: journal schema %u != %u", schema,
                         kStudySchemaVersion));
      }
      if (plan_hex != strf("%016llx", static_cast<unsigned long long>(
                                          plan.fingerprint()))) {
        return fail(strf(
            "study: journal %s pins a different plan (%s, this plan is "
            "%016llx) — delete it or pick another --journal path",
            options.journal_path.c_str(), plan_hex.c_str(),
            static_cast<unsigned long long>(plan.fingerprint())));
      }
      if (build != build_fingerprint()) {
        return fail(strf(
            "study: journal %s was written by build %s (this is %s)",
            options.journal_path.c_str(), build.c_str(),
            build_fingerprint().c_str()));
      }
      for (std::size_t r = 1; r < recovery.records.size(); ++r) {
        const std::optional<StudyCellOutcome> replayed =
            parse_study_cell(recovery.records[r]);
        if (!replayed) continue;  // unknown record kinds skip forward
        const auto found = index_of.find(replayed->cell.key());
        if (found == index_of.end() || result.cells[found->second].done) {
          continue;
        }
        result.cells[found->second] = *replayed;
        result.cells_completed += 1;
        result.cells_from_journal += 1;
        if (options.on_cell) options.on_cell(result.cells[found->second]);
      }
      if (result.cells_from_journal > 0) {
        log_line(options,
                 strf("study: resumed %u/%u cells from %s",
                      result.cells_from_journal, result.cells_total,
                      options.journal_path.c_str()));
      }
    }
    std::string error;
    if (!state.journal.open(options.journal_path, recovery.valid_bytes,
                            &error)) {
      return fail("study: " + error);
    }
    state.journal.set_sync_policy(options.journal_sync);
    if (recovery.records.empty() &&
        !state.journal.append(study_header_payload(plan))) {
      return fail(strf("study: cannot write journal header to %s",
                       options.journal_path.c_str()));
    }
    state.journal_open = true;
  }

  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    if (!result.cells[i].done) state.pending.push_back(i);
  }

  const unsigned window = std::max(
      1u, std::min(options.window == 0 ? 1u : options.window,
                   static_cast<unsigned>(
                       state.pending.empty() ? 1 : state.pending.size())));
  std::vector<std::thread> workers;
  workers.reserve(window);
  for (unsigned w = 0; w < window; ++w) {
    workers.emplace_back([&state] { worker_loop(state); });
  }
  for (std::thread& worker : workers) worker.join();
  if (state.journal_open) state.journal.sync_now();

  if (!result.error.empty()) {
    result.exit_code = kCampaignExitInternalError;
    return result;
  }
  if (state.cancelled() || state.saw_interrupted.load() ||
      !result.complete()) {
    result.interrupted = true;
    result.exit_code = kCampaignExitInterrupted;
    return result;
  }
  bool all_converged = true;
  for (const StudyCellOutcome& outcome : result.cells) {
    if (!outcome.counts.converged) all_converged = false;
  }
  result.exit_code =
      all_converged ? kCampaignExitConverged : kCampaignExitUnconverged;
  return result;
}

}  // namespace vulfi::study
