#include <algorithm>
#include <cstdlib>

#include "kernels/benchmark.hpp"
#include "study/study.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/version.hpp"

namespace vulfi::study {

namespace {

std::string canonical_category(const std::string& name) {
  if (name == "control" || name == "ctrl") return "control";
  if (name == "address" || name == "addr") return "address";
  return "pure-data";
}

bool known_category(const std::string& name) {
  return name == "pure-data" || name == "puredata" || name == "control" ||
         name == "ctrl" || name == "address" || name == "addr";
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::string StudyCell::key() const {
  return strf("%s|vl%u|%s|%s|det%u", benchmark.c_str(), vl, isa.c_str(),
              category.c_str(), detectors ? 1u : 0u);
}

bool cell_order(const StudyCell& a, const StudyCell& b) {
  if (a.benchmark != b.benchmark) return a.benchmark < b.benchmark;
  if (a.vl != b.vl) return a.vl < b.vl;
  if (a.isa != b.isa) return a.isa < b.isa;
  if (a.category != b.category) return a.category < b.category;
  return a.detectors < b.detectors;
}

unsigned native_width(const std::string& isa) {
  return isa == "avx" ? 8u : 4u;
}

std::optional<StudyPlan> StudyPlan::make(const StudyPlanConfig& config,
                                         std::string* error) {
  auto invalid = [&](const std::string& message) {
    fail(error, "study: " + message);
    return std::nullopt;
  };

  StudyPlan plan;
  plan.config_ = config;
  StudyPlanConfig& c = plan.config_;

  if (c.benchmarks.empty()) return invalid("no benchmarks selected");
  for (const std::string& name : c.benchmarks) {
    if (kernels::find_benchmark(name) == nullptr) {
      return invalid(strf("unknown benchmark '%s' (try: vulfi list)",
                          name.c_str()));
    }
  }
  if (c.widths.empty()) return invalid("no vector widths selected");
  for (const unsigned vl : c.widths) {
    if (vl != 1 && vl != 2 && vl != 4 && vl != 8 && vl != 16) {
      return invalid(strf("vector width %u not in {1, 2, 4, 8, 16}", vl));
    }
  }
  if (c.isas.empty()) return invalid("no ISAs selected");
  for (const std::string& isa : c.isas) {
    if (isa != "avx" && isa != "sse") {
      return invalid(strf("unknown isa '%s' (avx or sse)", isa.c_str()));
    }
  }
  if (c.categories.empty()) return invalid("no categories selected");
  for (std::string& category : c.categories) {
    if (!known_category(category)) {
      return invalid(strf("unknown category '%s'", category.c_str()));
    }
    category = canonical_category(category);
  }
  if (!c.detectors_off && !c.detectors_on) {
    return invalid("at least one detector mode required");
  }
  if (c.base.experiments == 0 || c.base.min_campaigns == 0) {
    return invalid("experiments and campaigns must be positive");
  }

  // Sorted, deduplicated axes: the enumeration below then emits cells
  // directly in report order (cell_order), and the same axes always
  // produce the same plan fingerprint regardless of CLI spelling order.
  auto dedup = [](auto& values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  };
  dedup(c.benchmarks);
  dedup(c.widths);
  dedup(c.isas);
  dedup(c.categories);

  for (const std::string& benchmark : c.benchmarks) {
    for (const unsigned vl : c.widths) {
      for (const std::string& isa : c.isas) {
        for (const std::string& category : c.categories) {
          for (const unsigned det : {0u, 1u}) {
            if (det == 0 && !c.detectors_off) continue;
            if (det == 1 && !c.detectors_on) continue;
            StudyCell cell;
            cell.benchmark = benchmark;
            cell.vl = vl;
            cell.isa = isa;
            cell.category = category;
            cell.detectors = det != 0;
            plan.cells_.push_back(std::move(cell));
          }
        }
      }
    }
  }

  // Fingerprint: schema + every cell key + every statistics-affecting
  // shared knob. Excludes jobs/backend/fsync/priority/transport — those
  // are proven statistics-neutral, so a journal stays resumable across
  // them (same contract as summary_config_fingerprint).
  Fnv1a fp;
  fp.u32(kStudySchemaVersion);
  fp.u64(plan.cells_.size());
  for (const StudyCell& cell : plan.cells_) fp.str(cell.key());
  const serve::CampaignRequest& base = c.base;
  fp.u32(base.experiments)
      .u32(base.min_campaigns)
      .u32(base.resolved_max_campaigns())
      .u64(base.seed);
  fp.str(double_hex(base.confidence));
  fp.str(double_hex(base.target_margin));
  fp.u8(base.golden_cache ? 1 : 0);
  fp.u8(base.static_prune ? 1 : 0);
  fp.u32(base.self_verify);
  plan.fingerprint_ = fp.value();
  return plan;
}

std::uint64_t StudyPlan::cell_seed(std::uint64_t base_seed,
                                   const StudyCell& cell) {
  // Every cell owns an independent seed stream: identical counts for a
  // cell whether it runs alone, inside this plan, or inside a larger
  // plan containing it (the key, not the plan, derives the stream).
  return derive_stream_seed(base_seed, fnv1a64(cell.key()), 0x57d1ULL);
}

serve::CampaignRequest StudyPlan::request_for(const StudyCell& cell) const {
  serve::CampaignRequest request = config_.base;
  request.benchmark = cell.benchmark;
  request.category = cell.category;
  request.isa = cell.isa;
  request.detectors = cell.detectors;
  request.vl = cell.vl;  // always explicit, native width included
  request.seed = cell_seed(config_.base.seed, cell);
  // Cells are the unit of resumability in a study; per-cell checkpoints
  // and sharding would only fragment the journal story.
  request.checkpoint.clear();
  request.shards = 0;
  return request;
}

std::string StudyPlan::to_json() const {
  std::string json = strf(
      "{\"t\":\"study-plan\",\"schema\":%u,\"plan\":\"%016llx\","
      "\"cells\":%llu,\"experiments\":%u,\"campaigns\":%u,"
      "\"max_campaigns\":%u,\"seed\":%llu,\"conf\":\"%s\",\"margin\":\"%s\","
      "\"cell_keys\":[",
      kStudySchemaVersion, static_cast<unsigned long long>(fingerprint_),
      static_cast<unsigned long long>(cells_.size()),
      config_.base.experiments, config_.base.min_campaigns,
      config_.base.resolved_max_campaigns(),
      static_cast<unsigned long long>(config_.base.seed),
      double_hex(config_.base.confidence).c_str(),
      double_hex(config_.base.target_margin).c_str());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (i > 0) json += ',';
    json += '"';
    json += cells_[i].key();
    json += '"';
  }
  json += "]}";
  return json;
}

std::string study_header_payload(const StudyPlan& plan) {
  return strf(
      "{\"t\":\"study-header\",\"schema\":%u,\"plan\":\"%016llx\","
      "\"build\":\"%s\",\"cells\":%llu}",
      kStudySchemaVersion,
      static_cast<unsigned long long>(plan.fingerprint()),
      build_fingerprint().c_str(),
      static_cast<unsigned long long>(plan.cells().size()));
}

std::string study_cell_payload(const StudyCell& cell,
                               const CellCounts& counts) {
  return strf(
      "{\"t\":\"study-cell\",\"key\":\"%s\",\"exit\":%d,\"converged\":%u,"
      "\"campaigns\":%llu,\"experiments\":%llu,\"benign\":%llu,"
      "\"sdc\":%llu,\"crash\":%llu,\"detected_sdc\":%llu,"
      "\"detected_total\":%llu}",
      cell.key().c_str(), counts.exit_code, counts.converged ? 1u : 0u,
      static_cast<unsigned long long>(counts.campaigns),
      static_cast<unsigned long long>(counts.experiments),
      static_cast<unsigned long long>(counts.benign),
      static_cast<unsigned long long>(counts.sdc),
      static_cast<unsigned long long>(counts.crash),
      static_cast<unsigned long long>(counts.detected_sdc),
      static_cast<unsigned long long>(counts.detected_total));
}

std::optional<StudyCellOutcome> parse_study_cell(const std::string& payload) {
  if (journal_str(payload, "t").value_or("") != "study-cell") {
    return std::nullopt;
  }
  const std::optional<std::string> key = journal_str(payload, "key");
  if (!key) return std::nullopt;
  // key = "bench|vlN|isa|category|detD"
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t bar = key->find('|', start);
    if (bar == std::string::npos) {
      parts.push_back(key->substr(start));
      break;
    }
    parts.push_back(key->substr(start, bar - start));
    start = bar + 1;
  }
  if (parts.size() != 5) return std::nullopt;
  if (parts[1].size() < 3 || parts[1].compare(0, 2, "vl") != 0) {
    return std::nullopt;
  }
  if (parts[4].size() != 4 || parts[4].compare(0, 3, "det") != 0) {
    return std::nullopt;
  }

  StudyCellOutcome outcome;
  outcome.cell.benchmark = parts[0];
  outcome.cell.vl =
      static_cast<unsigned>(std::strtoul(parts[1].c_str() + 2, nullptr, 10));
  outcome.cell.isa = parts[2];
  outcome.cell.category = parts[3];
  outcome.cell.detectors = parts[4][3] == '1';

  const std::optional<std::uint64_t> exit_code =
      journal_u64(payload, "exit");
  const std::optional<std::uint64_t> experiments =
      journal_u64(payload, "experiments");
  if (!exit_code || !experiments) return std::nullopt;
  outcome.counts.exit_code = static_cast<int>(*exit_code);
  outcome.counts.converged = journal_u64(payload, "converged").value_or(0) != 0;
  outcome.counts.campaigns = journal_u64(payload, "campaigns").value_or(0);
  outcome.counts.experiments = *experiments;
  outcome.counts.benign = journal_u64(payload, "benign").value_or(0);
  outcome.counts.sdc = journal_u64(payload, "sdc").value_or(0);
  outcome.counts.crash = journal_u64(payload, "crash").value_or(0);
  outcome.counts.detected_sdc =
      journal_u64(payload, "detected_sdc").value_or(0);
  outcome.counts.detected_total =
      journal_u64(payload, "detected_total").value_or(0);
  outcome.source = "journal";
  outcome.done = true;
  return outcome;
}

}  // namespace vulfi::study
