// The vector-width × parallelism resilience study (fleet driver).
//
// The paper's Figures 11/12 fix one vector width per ISA; Wu et al.
// (arXiv:1808.01093) show resilience shifts between serial and parallel
// executions of the same application. This subsystem answers the vector
// analogue as a first-class product: a StudyPlan enumerates the
// cross-product of registry benchmark × vector length (scalar baseline
// vs VL ∈ {4, 8, 16}) × ISA × fault-site category × detector on/off, and
// run_study() fans the cells through `vulfid` submits (bounded in-flight
// window, busy backoff, per-cell cancellation) or a local in-process
// engine cache when no socket is given.
//
// Everything downstream of a cell is a pure function of its integer
// campaign counters (experiments, benign, sdc, crash, detected_*,
// campaigns) — Wilson intervals, deltas, and scaling tables are all
// recomputed from counts at render time. That is why the study report is
// byte-identical across local vs daemon execution, any window size, and
// interrupt/resume at any cell boundary.
//
// Durability mirrors campaign checkpoints: the study journal is a
// checksummed JSONL file whose header pins the plan fingerprint and the
// build fingerprint; each completed cell appends one sealed record.
// Resuming with the same journal replays those cells with zero repeated
// work. A summary store (vulfi/summary.hpp) adds cross-run reuse: an
// unchanged (unit, config) cell is answered from its stored summary with
// zero new experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/engine_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/cancel.hpp"
#include "support/journal.hpp"

namespace vulfi::study {

/// Bumped when a study journal or report written by this build would not
/// parse — or would mean something different — under the previous one.
constexpr unsigned kStudySchemaVersion = 1;

/// One point of the cross-product. `vl` is always explicit here (1 =
/// scalar serial baseline), even when it equals the ISA's native width.
struct StudyCell {
  std::string benchmark;
  unsigned vl = 8;
  std::string isa = "avx";             ///< avx | sse
  std::string category = "pure-data";  ///< canonical category name
  bool detectors = false;

  /// Stable identity used by journals and logs: "dot|vl4|avx|control|det0".
  std::string key() const;
};

/// Report/journal order: (benchmark, vl, isa, category, detectors),
/// regardless of the order cells complete in.
bool cell_order(const StudyCell& a, const StudyCell& b);

/// The ISA's native vector width (avx 8, sse 4) — the width a plain
/// submit without a vl override runs at.
unsigned native_width(const std::string& isa);

/// Axes of the cross-product plus the campaign knobs every cell shares.
/// Per-cell fields of `base` (benchmark, category, isa, detectors, vl,
/// seed) are overwritten by StudyPlan::request_for; the rest (experiment
/// and campaign counts, confidence, margin, jobs, backend, toggles)
/// apply to all cells.
struct StudyPlanConfig {
  std::vector<std::string> benchmarks;
  std::vector<unsigned> widths = {1, 4, 8, 16};
  std::vector<std::string> isas = {"avx", "sse"};
  std::vector<std::string> categories = {"pure-data", "control", "address"};
  bool detectors_off = true;
  bool detectors_on = true;
  serve::CampaignRequest base;
};

/// The enumerated, validated, sorted cross-product.
class StudyPlan {
 public:
  /// Validates the axes (registry benchmark names, known widths/ISAs/
  /// categories, at least one detector mode) and enumerates the cells in
  /// report order. nullopt with `error` set on any invalid axis value.
  static std::optional<StudyPlan> make(const StudyPlanConfig& config,
                                       std::string* error);

  const StudyPlanConfig& config() const { return config_; }
  const std::vector<StudyCell>& cells() const { return cells_; }

  /// FNV-1a over the schema version, every cell key, and every base
  /// campaign knob the statistics depend on (experiments, campaign
  /// bounds, seed, confidence/margin bit patterns, exactness toggles).
  /// Deliberately excludes jobs, backend, window, fsync, and transport —
  /// proven statistics-neutral. Pinned by the study journal header.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// The submit request of one cell: base with the cell's axes applied,
  /// an explicit vl, a per-cell decorrelated seed, and no checkpoint or
  /// sharding (cells are the unit of resumability here).
  serve::CampaignRequest request_for(const StudyCell& cell) const;

  /// Per-cell seed: derive_stream_seed over the FNV of the cell key, so
  /// every cell owns an independent stream regardless of plan shape.
  static std::uint64_t cell_seed(std::uint64_t base_seed,
                                 const StudyCell& cell);

  /// Deterministic {"t":"study-plan",...} dump for `vulfi study --plan`.
  std::string to_json() const;

 private:
  StudyPlanConfig config_;
  std::vector<StudyCell> cells_;
  std::uint64_t fingerprint_ = 0;
};

/// The integer campaign counters of one finished cell — the complete
/// input of every report figure.
struct CellCounts {
  std::uint64_t campaigns = 0;
  std::uint64_t experiments = 0;
  std::uint64_t benign = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t detected_sdc = 0;
  std::uint64_t detected_total = 0;
  int exit_code = 3;
  bool converged = false;

  double rate(std::uint64_t count) const {
    return experiments == 0
               ? 0.0
               : static_cast<double>(count) / static_cast<double>(experiments);
  }
};

/// One cell's result with its provenance. `source` is "local", "daemon",
/// "journal" (resumed), or "store" (summary reuse); it never feeds the
/// report, which depends on counts alone.
struct StudyCellOutcome {
  StudyCell cell;
  CellCounts counts;
  std::string source;
  bool done = false;
  std::string error;
};

/// {"t":"study-cell",...} journal payload (unsealed) for one finished
/// cell. Deliberately free of provenance: a record written by a local
/// run, a daemon-fanned run, or the {"op":"study"} server op is byte-
/// identical, so journals are interchangeable across execution modes.
std::string study_cell_payload(const StudyCell& cell,
                               const CellCounts& counts);
/// Parses a study-cell payload back; nullopt when malformed.
std::optional<StudyCellOutcome> parse_study_cell(const std::string& payload);

/// {"t":"study-header",...} payload pinning schema, plan fingerprint,
/// build fingerprint, and cell count.
std::string study_header_payload(const StudyPlan& plan);

struct StudyOptions {
  /// vulfid socket; empty = local in-process execution (same engines,
  /// same campaign code, bit-identical counts by construction).
  std::string socket;
  /// Bounded in-flight window: cells dispatched concurrently.
  unsigned window = 4;
  /// Busy backoff for daemon submits (serve/client.hpp).
  serve::RetryPolicy retry;
  /// Study journal path; "" = no journal (no resume).
  std::string journal_path;
  JournalSync journal_sync = JournalSync::Always;
  /// Summary-store directory (vulfi/summary.hpp); "" = no reuse.
  std::string summaries_dir;
  /// Local execution: per-cell thread clamp (0 = the request's own jobs)
  /// and the engine cache to lease from (nullptr = a private one).
  unsigned max_jobs = 0;
  serve::EngineCache* cache = nullptr;
  /// Cooperative cancellation: checked at cell boundaries and threaded
  /// into every in-flight cell (local campaign token / daemon cancel
  /// frame), so one ^C interrupts the whole fleet cleanly.
  const CancellationToken* cancel = nullptr;
  std::function<void(const std::string&)> log;
  /// Deterministic interruption for tests and CI: once this many cells
  /// have completed in this run, stop dispatching and exit as
  /// interrupted (5). 0 = off.
  unsigned stop_after_cells = 0;
  /// Streaming hook, fired in completion order as each cell resolves
  /// (journal replays first). The {"op":"study"} server op streams
  /// sealed study-cell records from here.
  std::function<void(const StudyCellOutcome&)> on_cell;
};

struct StudyResult {
  std::uint64_t plan_fingerprint = 0;
  /// Plan order (cell_order), independent of completion order.
  std::vector<StudyCellOutcome> cells;
  unsigned cells_total = 0;
  unsigned cells_completed = 0;
  unsigned cells_from_journal = 0;
  unsigned cells_from_store = 0;
  unsigned cells_executed = 0;
  /// Experiments actually injected this run (journal/store cells add 0).
  std::uint64_t new_experiments = 0;
  bool interrupted = false;
  std::string error;
  /// Exit contract (shared with campaigns): 0 every cell converged,
  /// 3 internal error, 4 complete but some cell unconverged,
  /// 5 interrupted (resume with the same journal).
  int exit_code = 3;

  bool complete() const {
    return cells_total != 0 && cells_completed == cells_total;
  }
};

/// Runs (or resumes) the study. See the file comment for the invariants.
StudyResult run_study(const StudyPlan& plan, const StudyOptions& options);

// --- report ----------------------------------------------------------------

/// Stable JSON: per-cell counts + rates + Wilson CIs, per-category SDC
/// deltas across vector widths (scalar baseline when present), detector
/// efficacy deltas, and serial-vs-vector scaling tables. Cells are
/// sorted by cell_order internally, so completion order never leaks into
/// the bytes. Doubles travel as 16-hex-digit bit patterns.
std::string study_report_json(const StudyPlan& plan,
                              const StudyResult& result);
/// Human-readable rendering of the same figures (fixed %.4f formatting).
std::string study_report_markdown(const StudyPlan& plan,
                                  const StudyResult& result);
/// One CSV row per cell, header included.
std::string study_report_csv(const StudyPlan& plan,
                             const StudyResult& result);

// --- wire ------------------------------------------------------------------

/// {"op":"study"} request: the plan axes plus the shared campaign knobs.
struct StudyRequest {
  StudyPlanConfig plan;
  unsigned window = 4;
};

std::string serialize_study_request(const StudyRequest& request);
std::optional<StudyRequest> parse_study_request(const std::string& payload,
                                                std::string* error);

/// Submits one whole study to a daemon. The response stream carries one
/// sealed "study-cell" record per finished cell (append them to a file
/// and you hold a resumable study journal); the "done" frame's stats
/// slice is the study report JSON.
serve::SubmitOutcome submit_study(const std::string& socket_path,
                                  const StudyRequest& request,
                                  const serve::StreamCallbacks& callbacks = {},
                                  int frame_timeout_ms = 600000);

/// Registers {"op":"study"} on `server` (must be called before start()).
/// The op runs the study locally inside the daemon against the server's
/// own engine cache and job quota, streaming sealed study-cell records.
void register_study_op(serve::CampaignServer& server);

}  // namespace vulfi::study
