#include "ir/verifier.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ir/basic_block.hpp"
#include "ir/function.hpp"
#include "ir/module.hpp"
#include "ir/printer.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::ir {

namespace {

class FunctionVerifier {
 public:
  explicit FunctionVerifier(const Function& fn) : fn_(fn) {}

  std::vector<std::string> run() {
    if (!fn_.is_definition()) return {};
    if (fn_.num_blocks() == 0) {
      report("definition has no basic blocks");
      return errors_;
    }
    index_blocks();
    check_block_structure();
    check_phis();
    check_operands();
    compute_dominators();
    check_dominance();
    return errors_;
  }

 private:
  void report(const std::string& msg) {
    errors_.push_back(strf("function @%s: %s", fn_.name().c_str(),
                           msg.c_str()));
  }

  void report_inst(const Instruction& inst, const std::string& msg) {
    report(strf("'%s': %s", to_string(inst).c_str(), msg.c_str()));
  }

  void index_blocks() {
    for (const auto& block : fn_) {
      block_ids_[block.get()] = static_cast<int>(blocks_.size());
      blocks_.push_back(block.get());
    }
  }

  void check_block_structure() {
    for (const BasicBlock* block : blocks_) {
      if (block->empty()) {
        report(strf("block %%%s is empty", block->name().c_str()));
        continue;
      }
      if (!block->terminator()) {
        report(strf("block %%%s lacks a terminator",
                    block->name().c_str()));
      }
      bool seen_terminator = false;
      bool seen_non_phi = false;
      for (const auto& inst : *block) {
        if (seen_terminator) {
          report_inst(*inst, "instruction after terminator");
        }
        if (inst->is_terminator()) seen_terminator = true;
        if (inst->opcode() == Opcode::Phi) {
          if (seen_non_phi) report_inst(*inst, "phi after non-phi");
        } else {
          seen_non_phi = true;
        }
        for (unsigned i = 0; i < inst->num_successors(); ++i) {
          const BasicBlock* succ = inst->successor(i);
          if (!block_ids_.count(succ)) {
            report_inst(*inst, "successor block not in this function");
          }
        }
      }
    }
    // Entry block must not have predecessors (phi handling assumes it).
    if (!fn_.predecessors(blocks_.front()).empty()) {
      report("entry block has predecessors");
    }
  }

  void check_phis() {
    for (const BasicBlock* block : blocks_) {
      auto preds = fn_.predecessors(block);
      std::unordered_set<const BasicBlock*> pred_set(preds.begin(),
                                                     preds.end());
      for (const auto& inst : *block) {
        if (inst->opcode() != Opcode::Phi) continue;
        const auto& incoming = inst->phi_incoming_blocks();
        if (incoming.size() != pred_set.size()) {
          report_inst(*inst,
                      strf("phi has %zu incoming entries but block has %zu "
                           "predecessors",
                           incoming.size(), pred_set.size()));
        }
        std::unordered_set<const BasicBlock*> seen;
        for (const BasicBlock* in : incoming) {
          if (!pred_set.count(in)) {
            report_inst(*inst, strf("phi incoming block %%%s is not a "
                                    "predecessor",
                                    in->name().c_str()));
          }
          if (!seen.insert(in).second) {
            report_inst(*inst, strf("phi lists block %%%s twice",
                                    in->name().c_str()));
          }
        }
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          if (inst->operand(i)->type() != inst->type()) {
            report_inst(*inst, "phi incoming value type mismatch");
          }
        }
      }
    }
  }

  void check_operand_types(const Instruction& inst) {
    const Opcode op = inst.opcode();
    auto expect = [&](bool cond, const char* msg) {
      if (!cond) report_inst(inst, msg);
    };
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::SDiv: case Opcode::UDiv: case Opcode::SRem:
      case Opcode::URem: case Opcode::Shl: case Opcode::LShr:
      case Opcode::AShr: case Opcode::And: case Opcode::Or:
      case Opcode::Xor:
        expect(inst.num_operands() == 2, "binary op needs two operands");
        expect(inst.operand(0)->type() == inst.type() &&
                   inst.operand(1)->type() == inst.type(),
               "integer binary op operand/result type mismatch");
        expect(inst.type().is_integer(), "integer op on non-integer type");
        break;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FRem:
        expect(inst.num_operands() == 2, "binary op needs two operands");
        expect(inst.operand(0)->type() == inst.type() &&
                   inst.operand(1)->type() == inst.type(),
               "fp binary op operand/result type mismatch");
        expect(inst.type().is_float(), "fp op on non-float type");
        break;
      case Opcode::FNeg:
        expect(inst.num_operands() == 1 &&
                   inst.operand(0)->type() == inst.type() &&
                   inst.type().is_float(),
               "fneg typing violation");
        break;
      case Opcode::ICmp:
      case Opcode::FCmp:
        expect(inst.num_operands() == 2 &&
                   inst.operand(0)->type() == inst.operand(1)->type(),
               "cmp operand type mismatch");
        expect(inst.type().kind() == TypeKind::I1 &&
                   inst.type().lanes() == inst.operand(0)->type().lanes(),
               "cmp result must be i1 with matching lanes");
        break;
      case Opcode::Load:
        expect(inst.num_operands() == 1 &&
                   inst.operand(0)->type() == Type::ptr(),
               "load needs a scalar pointer operand");
        break;
      case Opcode::Store:
        expect(inst.num_operands() == 2 &&
                   inst.operand(1)->type() == Type::ptr(),
               "store needs (value, pointer) operands");
        break;
      case Opcode::GetElementPtr:
        expect(inst.num_operands() >= 2 &&
                   inst.operand(0)->type() == Type::ptr(),
               "gep needs pointer base and at least one index");
        expect(inst.gep_strides().size() + 1 == inst.num_operands(),
               "gep stride/index count mismatch");
        break;
      case Opcode::ExtractElement:
        expect(inst.operand(0)->type().is_vector() &&
                   inst.type() == inst.operand(0)->type().element(),
               "extractelement typing violation");
        break;
      case Opcode::InsertElement:
        expect(inst.operand(0)->type().is_vector() &&
                   inst.type() == inst.operand(0)->type() &&
                   inst.operand(1)->type() ==
                       inst.operand(0)->type().element(),
               "insertelement typing violation");
        break;
      case Opcode::ShuffleVector: {
        expect(inst.operand(0)->type() == inst.operand(1)->type() &&
                   inst.operand(0)->type().is_vector(),
               "shuffle needs two vectors of the same type");
        const int limit = 2 * static_cast<int>(inst.operand(0)->type().lanes());
        for (int m : inst.shuffle_mask()) {
          expect(m < limit, "shuffle mask index out of range");
        }
        break;
      }
      case Opcode::Select:
        expect(inst.num_operands() == 3 &&
                   inst.operand(0)->type().kind() == TypeKind::I1 &&
                   inst.operand(1)->type() == inst.type() &&
                   inst.operand(2)->type() == inst.type(),
               "select typing violation");
        break;
      case Opcode::Call: {
        const Function* callee = inst.callee();
        if (callee->num_args() != inst.num_operands()) {
          report_inst(inst, "call argument count mismatch");
          break;
        }
        for (unsigned i = 0; i < inst.num_operands(); ++i) {
          if (inst.operand(i)->type() != callee->arg(i)->type()) {
            report_inst(inst, strf("call argument %u type mismatch", i));
          }
        }
        expect(inst.type() == callee->return_type(),
               "call result type mismatch");
        break;
      }
      case Opcode::CondBr:
        expect(inst.operand(0)->type() == Type::i1(),
               "conditional branch needs a scalar i1 condition");
        break;
      case Opcode::Ret:
        if (inst.num_operands() == 0) {
          expect(fn_.return_type().is_void(),
                 "ret void in non-void function");
        } else {
          expect(inst.operand(0)->type() == fn_.return_type(),
                 "ret value type mismatch");
        }
        break;
      default:
        break;
    }
  }

  void check_operands() {
    for (const BasicBlock* block : blocks_) {
      for (const auto& inst : *block) {
        check_operand_types(*inst);
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          const Value* operand = inst->operand(i);
          if (const auto* def =
                  dynamic_cast<const Instruction*>(operand)) {
            if (def->function() != &fn_) {
              report_inst(*inst,
                          "operand defined in a different function");
            }
          } else if (const auto* arg =
                         dynamic_cast<const Argument*>(operand)) {
            if (arg->parent() != &fn_) {
              report_inst(*inst, "argument from a different function");
            }
          }
        }
      }
    }
  }

  /// Cooper–Harvey–Kennedy iterative dominator computation over RPO.
  void compute_dominators() {
    const int n = static_cast<int>(blocks_.size());
    // Reverse postorder from entry.
    std::vector<int> postorder;
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    std::vector<std::pair<int, std::size_t>> stack;  // (block id, next succ)
    stack.emplace_back(0, 0);
    visited[0] = 1;
    std::vector<std::vector<int>> successor_ids(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      for (BasicBlock* succ : blocks_[static_cast<std::size_t>(b)]->successors()) {
        auto it = block_ids_.find(succ);
        if (it != block_ids_.end()) {
          successor_ids[static_cast<std::size_t>(b)].push_back(it->second);
        }
      }
    }
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      const auto& succs = successor_ids[static_cast<std::size_t>(block)];
      if (next < succs.size()) {
        const int succ = succs[next++];
        if (!visited[static_cast<std::size_t>(succ)]) {
          visited[static_cast<std::size_t>(succ)] = 1;
          stack.emplace_back(succ, 0);
        }
      } else {
        postorder.push_back(block);
        stack.pop_back();
      }
    }
    rpo_number_.assign(static_cast<std::size_t>(n), -1);
    std::vector<int> rpo(postorder.rbegin(), postorder.rend());
    for (int i = 0; i < static_cast<int>(rpo.size()); ++i) {
      rpo_number_[static_cast<std::size_t>(rpo[static_cast<std::size_t>(i)])] = i;
    }

    idom_.assign(static_cast<std::size_t>(n), -1);
    idom_[0] = 0;
    std::vector<std::vector<int>> pred_ids(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      for (int succ : successor_ids[static_cast<std::size_t>(b)]) {
        pred_ids[static_cast<std::size_t>(succ)].push_back(b);
      }
    }
    auto intersect = [&](int a, int b) {
      while (a != b) {
        while (rpo_number_[static_cast<std::size_t>(a)] >
               rpo_number_[static_cast<std::size_t>(b)]) {
          a = idom_[static_cast<std::size_t>(a)];
        }
        while (rpo_number_[static_cast<std::size_t>(b)] >
               rpo_number_[static_cast<std::size_t>(a)]) {
          b = idom_[static_cast<std::size_t>(b)];
        }
      }
      return a;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (int b : rpo) {
        if (b == 0) continue;
        int new_idom = -1;
        for (int pred : pred_ids[static_cast<std::size_t>(b)]) {
          if (idom_[static_cast<std::size_t>(pred)] == -1) continue;
          new_idom = new_idom == -1 ? pred : intersect(pred, new_idom);
        }
        if (new_idom != -1 && idom_[static_cast<std::size_t>(b)] != new_idom) {
          idom_[static_cast<std::size_t>(b)] = new_idom;
          changed = true;
        }
      }
    }
  }

  bool block_dominates(int a, int b) const {
    // Unreachable blocks (idom == -1, rpo == -1) vacuously dominate nothing
    // and are dominated by everything; skip dominance checks for them.
    if (idom_[static_cast<std::size_t>(b)] == -1 && b != 0) return true;
    while (b != a && b != 0) {
      b = idom_[static_cast<std::size_t>(b)];
      if (b == -1) return false;
    }
    return b == a;
  }

  void check_dominance() {
    // Map each instruction to (block id, position) for intra-block order.
    std::unordered_map<const Instruction*, std::pair<int, int>> positions;
    for (const BasicBlock* block : blocks_) {
      const int bid = block_ids_.at(block);
      int idx = 0;
      for (const auto& inst : *block) {
        positions[inst.get()] = {bid, idx++};
      }
    }
    for (const BasicBlock* block : blocks_) {
      const int bid = block_ids_.at(block);
      // Skip unreachable blocks entirely.
      if (bid != 0 && idom_[static_cast<std::size_t>(bid)] == -1) continue;
      for (const auto& inst : *block) {
        const bool is_phi = inst->opcode() == Opcode::Phi;
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          const auto* def = dynamic_cast<const Instruction*>(inst->operand(i));
          if (!def) continue;
          auto it = positions.find(def);
          if (it == positions.end()) {
            report_inst(*inst, "operand not attached to any block");
            continue;
          }
          const auto [def_block, def_idx] = it->second;
          if (is_phi) {
            // Phi operand must dominate the end of the incoming block.
            const BasicBlock* incoming = inst->phi_incoming_blocks()[i];
            auto inc_it = block_ids_.find(incoming);
            if (inc_it == block_ids_.end()) continue;
            if (!block_dominates(def_block, inc_it->second)) {
              report_inst(*inst,
                          "phi operand does not dominate incoming edge");
            }
            continue;
          }
          const auto [use_block, use_idx] = positions.at(inst.get());
          if (def_block == use_block) {
            if (def_idx >= use_idx) {
              report_inst(*inst, "use before definition within block");
            }
          } else if (!block_dominates(def_block, use_block)) {
            report_inst(*inst, "operand definition does not dominate use");
          }
        }
      }
    }
  }

  const Function& fn_;
  std::vector<std::string> errors_;
  std::vector<const BasicBlock*> blocks_;
  std::unordered_map<const BasicBlock*, int> block_ids_;
  std::vector<int> idom_;
  std::vector<int> rpo_number_;
};

}  // namespace

std::vector<std::string> verify(const Function& function) {
  return FunctionVerifier(function).run();
}

std::vector<std::string> verify(const Module& module) {
  std::vector<std::string> errors;
  for (const auto& fn : module.functions()) {
    auto fn_errors = verify(*fn);
    errors.insert(errors.end(), fn_errors.begin(), fn_errors.end());
  }
  return errors;
}

void verify_or_die(const Module& module) {
  const auto errors = verify(module);
  if (!errors.empty()) {
    VULFI_ASSERT(false, errors.front().c_str());
  }
}

}  // namespace vulfi::ir
