#include "ir/verifier.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "ir/basic_block.hpp"
#include "ir/dominators.hpp"
#include "ir/function.hpp"
#include "ir/module.hpp"
#include "ir/printer.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::ir {

namespace {

class FunctionVerifier {
 public:
  explicit FunctionVerifier(const Function& fn) : fn_(fn) {}

  std::vector<std::string> run() {
    if (!fn_.is_definition()) return {};
    if (fn_.num_blocks() == 0) {
      report("definition has no basic blocks");
      return errors_;
    }
    index_blocks();
    check_block_structure();
    check_phis();
    check_operands();
    check_dominance();
    return errors_;
  }

 private:
  void report(const std::string& msg) {
    errors_.push_back(strf("function @%s: %s", fn_.name().c_str(),
                           msg.c_str()));
  }

  void report_inst(const Instruction& inst, const std::string& msg) {
    report(strf("'%s': %s", to_string(inst).c_str(), msg.c_str()));
  }

  void index_blocks() {
    for (const auto& block : fn_) {
      block_set_.insert(block.get());
      blocks_.push_back(block.get());
    }
  }

  void check_block_structure() {
    for (const BasicBlock* block : blocks_) {
      if (block->empty()) {
        report(strf("block %%%s is empty", block->name().c_str()));
        continue;
      }
      if (!block->terminator()) {
        report(strf("block %%%s lacks a terminator",
                    block->name().c_str()));
      }
      bool seen_terminator = false;
      bool seen_non_phi = false;
      for (const auto& inst : *block) {
        if (seen_terminator) {
          report_inst(*inst, "instruction after terminator");
        }
        if (inst->is_terminator()) seen_terminator = true;
        if (inst->opcode() == Opcode::Phi) {
          if (seen_non_phi) report_inst(*inst, "phi after non-phi");
        } else {
          seen_non_phi = true;
        }
        for (unsigned i = 0; i < inst->num_successors(); ++i) {
          const BasicBlock* succ = inst->successor(i);
          if (!block_set_.count(succ)) {
            report_inst(*inst, "successor block not in this function");
          }
        }
      }
    }
    // Entry block must not have predecessors (phi handling assumes it).
    if (!fn_.predecessors(blocks_.front()).empty()) {
      report("entry block has predecessors");
    }
  }

  void check_phis() {
    for (const BasicBlock* block : blocks_) {
      auto preds = fn_.predecessors(block);
      std::unordered_set<const BasicBlock*> pred_set(preds.begin(),
                                                     preds.end());
      for (const auto& inst : *block) {
        if (inst->opcode() != Opcode::Phi) continue;
        const auto& incoming = inst->phi_incoming_blocks();
        if (incoming.size() != pred_set.size()) {
          report_inst(*inst,
                      strf("phi has %zu incoming entries but block has %zu "
                           "predecessors",
                           incoming.size(), pred_set.size()));
        }
        std::unordered_set<const BasicBlock*> seen;
        for (const BasicBlock* in : incoming) {
          if (!pred_set.count(in)) {
            report_inst(*inst, strf("phi incoming block %%%s is not a "
                                    "predecessor",
                                    in->name().c_str()));
          }
          if (!seen.insert(in).second) {
            report_inst(*inst, strf("phi lists block %%%s twice",
                                    in->name().c_str()));
          }
        }
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          if (inst->operand(i)->type() != inst->type()) {
            report_inst(*inst, "phi incoming value type mismatch");
          }
        }
      }
    }
  }

  /// Mask-width rules for a call to a masked vector intrinsic: the
  /// execution mask must cover the data lanes one-to-one, lane widths
  /// included (the runtime's MSB-per-lane activity test silently reads
  /// garbage otherwise).
  void check_masked_call(const Instruction& inst) {
    const Function* callee = inst.callee();
    const IntrinsicInfo& info = callee->intrinsic_info();
    if (!info.is_masked()) return;
    if (info.mask_operand < 0 ||
        static_cast<unsigned>(info.mask_operand) >= inst.num_operands()) {
      report_inst(inst, "masked intrinsic mask operand index out of range");
      return;
    }
    const Type mask = inst.operand(static_cast<unsigned>(info.mask_operand))
                          ->type();
    Type data;
    if (info.id == IntrinsicId::MaskStore) {
      if (info.data_operand < 0 ||
          static_cast<unsigned>(info.data_operand) >= inst.num_operands()) {
        report_inst(inst, "masked intrinsic data operand index out of range");
        return;
      }
      data = inst.operand(static_cast<unsigned>(info.data_operand))->type();
    } else {
      data = inst.type();
    }
    if (mask.lanes() != data.lanes()) {
      report_inst(inst, "mask lane count does not match data lane count");
    }
    if (mask.element_bits() != data.element_bits()) {
      report_inst(inst, "mask element width does not match data element "
                        "width");
    }
  }

  void check_operand_types(const Instruction& inst) {
    const Opcode op = inst.opcode();
    auto expect = [&](bool cond, const char* msg) {
      if (!cond) report_inst(inst, msg);
    };
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::SDiv: case Opcode::UDiv: case Opcode::SRem:
      case Opcode::URem: case Opcode::Shl: case Opcode::LShr:
      case Opcode::AShr: case Opcode::And: case Opcode::Or:
      case Opcode::Xor:
        expect(inst.num_operands() == 2, "binary op needs two operands");
        expect(inst.operand(0)->type() == inst.type() &&
                   inst.operand(1)->type() == inst.type(),
               "integer binary op operand/result type mismatch");
        expect(inst.type().is_integer(), "integer op on non-integer type");
        break;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FRem:
        expect(inst.num_operands() == 2, "binary op needs two operands");
        expect(inst.operand(0)->type() == inst.type() &&
                   inst.operand(1)->type() == inst.type(),
               "fp binary op operand/result type mismatch");
        expect(inst.type().is_float(), "fp op on non-float type");
        break;
      case Opcode::FNeg:
        expect(inst.num_operands() == 1 &&
                   inst.operand(0)->type() == inst.type() &&
                   inst.type().is_float(),
               "fneg typing violation");
        break;
      case Opcode::ICmp:
      case Opcode::FCmp:
        expect(inst.num_operands() == 2 &&
                   inst.operand(0)->type() == inst.operand(1)->type(),
               "cmp operand type mismatch");
        expect(inst.type().kind() == TypeKind::I1 &&
                   inst.type().lanes() == inst.operand(0)->type().lanes(),
               "cmp result must be i1 with matching lanes");
        if (op == Opcode::FCmp) {
          expect(inst.num_operands() == 2 &&
                     inst.operand(0)->type().is_float(),
                 "fcmp needs floating-point operands");
        }
        break;
      case Opcode::Load:
        expect(inst.num_operands() == 1 &&
                   inst.operand(0)->type() == Type::ptr(),
               "load needs a scalar pointer operand");
        break;
      case Opcode::Store:
        expect(inst.num_operands() == 2 &&
                   inst.operand(1)->type() == Type::ptr(),
               "store needs (value, pointer) operands");
        break;
      case Opcode::GetElementPtr:
        expect(inst.num_operands() >= 2 &&
                   inst.operand(0)->type() == Type::ptr(),
               "gep needs pointer base and at least one index");
        expect(inst.gep_strides().size() + 1 == inst.num_operands(),
               "gep stride/index count mismatch");
        break;
      case Opcode::ExtractElement:
        expect(inst.operand(0)->type().is_vector() &&
                   inst.type() == inst.operand(0)->type().element(),
               "extractelement typing violation");
        break;
      case Opcode::InsertElement:
        expect(inst.operand(0)->type().is_vector() &&
                   inst.type() == inst.operand(0)->type() &&
                   inst.operand(1)->type() ==
                       inst.operand(0)->type().element(),
               "insertelement typing violation");
        break;
      case Opcode::ShuffleVector: {
        expect(inst.operand(0)->type() == inst.operand(1)->type() &&
                   inst.operand(0)->type().is_vector(),
               "shuffle needs two vectors of the same type");
        expect(inst.type().lanes() ==
                       static_cast<unsigned>(inst.shuffle_mask().size()) &&
                   inst.type().kind() == inst.operand(0)->type().kind(),
               "shuffle result must have one lane per mask entry");
        const int limit = 2 * static_cast<int>(inst.operand(0)->type().lanes());
        for (int m : inst.shuffle_mask()) {
          expect(m < limit, "shuffle mask index out of range");
          expect(m >= -1, "shuffle mask index out of range");
        }
        break;
      }
      case Opcode::Select:
        expect(inst.num_operands() == 3 &&
                   inst.operand(0)->type().kind() == TypeKind::I1 &&
                   inst.operand(1)->type() == inst.type() &&
                   inst.operand(2)->type() == inst.type(),
               "select typing violation");
        if (inst.num_operands() == 3 &&
            inst.operand(0)->type().is_vector()) {
          expect(inst.operand(0)->type().lanes() == inst.type().lanes(),
                 "select condition lane count mismatch");
        }
        break;
      case Opcode::Call: {
        const Function* callee = inst.callee();
        if (callee->num_args() != inst.num_operands()) {
          report_inst(inst, "call argument count mismatch");
          break;
        }
        for (unsigned i = 0; i < inst.num_operands(); ++i) {
          if (inst.operand(i)->type() != callee->arg(i)->type()) {
            report_inst(inst, strf("call argument %u type mismatch", i));
          }
        }
        expect(inst.type() == callee->return_type(),
               "call result type mismatch");
        check_masked_call(inst);
        break;
      }
      case Opcode::CondBr:
        expect(inst.operand(0)->type() == Type::i1(),
               "conditional branch needs a scalar i1 condition");
        break;
      case Opcode::Ret:
        if (inst.num_operands() == 0) {
          expect(fn_.return_type().is_void(),
                 "ret void in non-void function");
        } else {
          expect(inst.operand(0)->type() == fn_.return_type(),
                 "ret value type mismatch");
        }
        break;
      default:
        break;
    }
  }

  void check_operands() {
    for (const BasicBlock* block : blocks_) {
      for (const auto& inst : *block) {
        check_operand_types(*inst);
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          const Value* operand = inst->operand(i);
          if (const auto* def =
                  dynamic_cast<const Instruction*>(operand)) {
            if (def->function() != &fn_) {
              report_inst(*inst,
                          "operand defined in a different function");
            }
          } else if (const auto* arg =
                         dynamic_cast<const Argument*>(operand)) {
            if (arg->parent() != &fn_) {
              report_inst(*inst, "argument from a different function");
            }
          }
        }
      }
    }
  }

  /// SSA dominance: every use dominated by its definition, phi incoming
  /// values dominating the end of their incoming block. Built on the
  /// shared ir::DominatorTree (Cooper–Harvey–Kennedy).
  void check_dominance() {
    const DominatorTree domtree(fn_);
    for (const BasicBlock* block : blocks_) {
      // Skip unreachable blocks entirely (their "definitions" never
      // execute, so dominance is vacuous there).
      if (!domtree.reachable(block)) continue;
      for (const auto& inst : *block) {
        const bool is_phi = inst->opcode() == Opcode::Phi;
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          const auto* def = dynamic_cast<const Instruction*>(inst->operand(i));
          if (!def) continue;
          if (def->function() != &fn_) {
            report_inst(*inst, "operand not attached to any block");
            continue;
          }
          if (is_phi) {
            // Phi operand must dominate the end of the incoming block.
            if (i >= inst->phi_incoming_blocks().size()) continue;
            const BasicBlock* incoming = inst->phi_incoming_blocks()[i];
            if (!block_set_.count(incoming)) continue;
            if (!domtree.dominates_block_end(def, incoming)) {
              report_inst(*inst,
                          "phi operand does not dominate incoming edge");
            }
            continue;
          }
          if (!domtree.dominates(def, inst.get())) {
            if (def->parent() == inst->parent()) {
              report_inst(*inst, "use before definition within block");
            } else {
              report_inst(*inst, "operand definition does not dominate use");
            }
          }
        }
      }
    }
  }

  const Function& fn_;
  std::vector<std::string> errors_;
  std::vector<const BasicBlock*> blocks_;
  std::unordered_set<const BasicBlock*> block_set_;
};

/// Declaration-level checks for masked intrinsics: the metadata the
/// instrumentor and interpreter trust (operand indices, mask shape) must
/// be internally consistent.
void verify_intrinsic_decl(const Function& fn,
                           std::vector<std::string>& errors) {
  const IntrinsicInfo& info = fn.intrinsic_info();
  if (!info.is_masked()) return;
  auto report = [&](const char* msg) {
    errors.push_back(strf("function @%s: %s", fn.name().c_str(), msg));
  };
  if (static_cast<unsigned>(info.mask_operand) >= fn.num_args()) {
    report("masked intrinsic mask operand index out of range");
    return;
  }
  const Type mask = fn.arg(static_cast<unsigned>(info.mask_operand))->type();
  Type data;
  if (info.id == IntrinsicId::MaskStore) {
    if (info.data_operand < 0 ||
        static_cast<unsigned>(info.data_operand) >= fn.num_args()) {
      report("masked intrinsic data operand index out of range");
      return;
    }
    data = fn.arg(static_cast<unsigned>(info.data_operand))->type();
  } else {
    data = fn.return_type();
  }
  if (mask.lanes() != data.lanes()) {
    report("mask lane count does not match data lane count");
  }
  if (mask.element_bits() != data.element_bits()) {
    report("mask element width does not match data element width");
  }
}

}  // namespace

std::vector<std::string> verify(const Function& function) {
  if (!function.is_definition()) {
    std::vector<std::string> errors;
    verify_intrinsic_decl(function, errors);
    return errors;
  }
  return FunctionVerifier(function).run();
}

std::vector<std::string> verify(const Module& module) {
  std::vector<std::string> errors;
  for (const auto& fn : module.functions()) {
    auto fn_errors = verify(*fn);
    errors.insert(errors.end(), fn_errors.begin(), fn_errors.end());
  }
  return errors;
}

void verify_or_die(const Module& module) {
  const auto errors = verify(module);
  if (!errors.empty()) {
    VULFI_ASSERT(false, errors.front().c_str());
  }
}

}  // namespace vulfi::ir
